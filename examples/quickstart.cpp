// Quickstart: the yanc "hello world".
//
// Boots a one-switch network, mounts the yanc file system at /net, and
// does everything the paper's introduction promises with plain file I/O:
//   * the driver materializes the switch directory (Fig. 3)
//   * `echo`-style writes create a committed flow (§3.4)
//   * `echo 1 > config.port_down` takes a port down (§3.1)
//   * `tree /net` shows the whole network as a file hierarchy (Fig. 2)
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/shell/coreutils.hpp"
#include "yanc/sw/switch.hpp"

using namespace yanc;

namespace {

void run_to_quiescence(driver::OfDriver& driver, sw::Switch& sw,
                       net::Scheduler& scheduler) {
  for (int round = 0; round < 60; ++round) {
    std::size_t work =
        driver.poll() + sw.pump() + scheduler.run_until_idle();
    if (work == 0) break;
  }
}

}  // namespace

int main() {
  // --- the controller host: a VFS with the yanc FS mounted at /net -------
  auto vfs = std::make_shared<vfs::Vfs>();
  if (!netfs::mount_yanc_fs(*vfs).ok()) {
    std::fprintf(stderr, "cannot mount yanc fs\n");
    return 1;
  }
  driver::OfDriver driver(vfs);  // OpenFlow 1.0 driver (§4.1)

  // --- the network: one software switch with three ports -----------------
  net::Scheduler scheduler;
  net::Network network(scheduler);
  sw::SwitchOptions opts;
  opts.datapath_id = 0x42;
  sw::Switch sw1("datapath-42", opts, network);
  for (std::uint16_t p = 1; p <= 3; ++p)
    sw1.add_port(p, MacAddress::from_u64(0x020000000100ull | p),
                 "eth" + std::to_string(p));

  // The switch "dials the controller" and the driver builds the FS tree.
  sw1.connect(driver.listener().connect());
  run_to_quiescence(driver, sw1, scheduler);

  std::printf("== after the OpenFlow handshake, the switch is a directory:\n");
  std::printf("%s\n", shell::ls(*vfs, "/net/switches", true)->c_str());
  std::printf("$ cat /net/switches/sw1/id -> %s\n\n",
              shell::cat(*vfs, "/net/switches/sw1/id")->c_str());

  // --- program a flow with nothing but file writes (§3.4) ----------------
  std::printf("== writing a flow entry with file I/O:\n");
  const std::string flow = "/net/switches/sw1/flows/arp-flood";
  (void)vfs->mkdir(flow);
  (void)shell::echo_to(*vfs, flow + "/match.dl_type", "0x0806");
  (void)shell::echo_to(*vfs, flow + "/action.out", "flood");
  (void)shell::echo_to(*vfs, flow + "/priority", "10");
  // Nothing reaches hardware until the version commit...
  run_to_quiescence(driver, sw1, scheduler);
  std::printf("  before commit: switch has %zu flows\n", sw1.table().size());
  (void)shell::echo_to(*vfs, flow + "/version", "1");
  run_to_quiescence(driver, sw1, scheduler);
  std::printf("  after  commit: switch has %zu flows (%s)\n\n",
              sw1.table().size(),
              sw1.table().entries()[0].spec.to_string().c_str());

  // --- port administration (§3.1) ----------------------------------------
  std::printf("== echo 1 > ports/2/config.port_down\n");
  (void)shell::echo_to(*vfs, "/net/switches/sw1/ports/2/config.port_down",
                       "1");
  run_to_quiescence(driver, sw1, scheduler);
  std::printf("  switch reports port 2 down: %s\n\n",
              sw1.ports().at(2).desc.port_down ? "yes" : "no");

  // --- the whole network, as a tree (Fig. 2 / Fig. 3) --------------------
  std::printf("== tree /net/switches/sw1/flows\n%s\n",
              shell::tree(*vfs, "/net/switches/sw1/flows")->c_str());
  return 0;
}
