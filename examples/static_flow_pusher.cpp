// The paper's §8 demo app: a "static flow pusher" that writes flows to
// switches from a plain text spec — the library equivalent of the shell
// script, plus the paper's §5.4 one-liners over the result.
//
// Usage: ./build/examples/static_flow_pusher [spec-file]
// Without an argument a built-in demo spec is used.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "yanc/apps/static_flow_pusher.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/shell/coreutils.hpp"
#include "yanc/sw/switch.hpp"

using namespace yanc;

namespace {

constexpr const char* kDemoSpec = R"(# demo policy
# arp everywhere, ssh firewalled to port 2, web dropped on sw2
switch=sw1 flow=arp match.dl_type=0x0806 action.out=flood priority=5
switch=sw1 flow=ssh-fw match.dl_type=0x0800 match.nw_proto=6 match.tp_dst=22 action.out=2 priority=100
switch=sw2 flow=web-drop match.dl_type=0x0800 match.tp_dst=80 action.drop=1 priority=200
switch=sw2 flow=default action.out=controller priority=1
)";

}  // namespace

int main(int argc, char** argv) {
  std::string spec = kDemoSpec;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    spec = buf.str();
  }

  auto vfs = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*vfs);
  driver::OfDriver driver(vfs);
  net::Scheduler scheduler;
  net::Network network(scheduler);

  std::vector<std::unique_ptr<sw::Switch>> switches;
  for (std::uint64_t dpid : {1, 2}) {
    sw::SwitchOptions opts;
    opts.datapath_id = dpid;
    auto s = std::make_unique<sw::Switch>("dp" + std::to_string(dpid), opts,
                                          network);
    for (std::uint16_t p = 1; p <= 3; ++p)
      s->add_port(p, MacAddress::from_u64((dpid << 8) | p), "eth");
    s->connect(driver.listener().connect());
    switches.push_back(std::move(s));
  }
  auto settle = [&] {
    for (int round = 0; round < 60; ++round) {
      std::size_t work = driver.poll() + scheduler.run_until_idle();
      for (auto& s : switches) work += s->pump();
      if (!work) break;
    }
  };
  settle();

  std::printf("== pushing spec (%zu bytes)\n", spec.size());
  auto report = apps::push_flows(*vfs, spec);
  std::printf("   flows written: %zu, lines skipped: %zu, errors: %zu\n",
              report.flows_written, report.lines_skipped,
              report.errors.size());
  for (const auto& err : report.errors)
    std::printf("   ! %s\n", err.c_str());
  settle();

  for (const auto& s : switches)
    std::printf("== %s now holds %zu hardware flow entries\n",
                s->name().c_str(), s->table().size());

  // §5.4: "find /net -name tp.dst -exec grep 22" — which flows touch ssh?
  auto ssh_flows = shell::flows_matching_port(*vfs, "/net", 22);
  std::printf("\n== flows matching tcp port 22:\n");
  for (const auto& dir : *ssh_flows) std::printf("   %s\n", dir.c_str());

  std::printf("\n== ls -l /net/switches\n%s",
              shell::ls(*vfs, "/net/switches", true)->c_str());
  return report.errors.empty() ? 0 : 1;
}
