// yancsh — a tiny shell over the yanc file system (§5.4).
//
// Boots a two-switch demo network, then executes commands either from the
// command line (joined by ';') or from a built-in demo script:
//
//   ./build/examples/yancsh                                  # demo script
//   ./build/examples/yancsh 'ls -l /net/switches; tree /net/switches/sw1'
//
// Supported commands:
//   ls [-l] PATH        cat PATH          echo VALUE > PATH
//   tree PATH           find ROOT GLOB    grep PATTERN ROOT
//   mkdir PATH          rm PATH           cp FROM TO      mv FROM TO
//   trace ID|FILTER     (span trees from /yanc/.trace/by-id)
//   sync                (drive the controller/switches to quiescence)
//
// `./build/examples/yancsh cluster` runs the active-cluster demo instead:
// three controller nodes share the switches per-dpid through replicated
// lease files, the demo kills the owner of shard 1 and shows the lease,
// the epoch bump and the switch re-homing — all read back through the
// file system (docs/ROBUSTNESS.md "Cluster failover").
#include <cstdio>

#include "yanc/cluster/harness.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/faults/faults_fs.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/obs/stats_fs.hpp"
#include "yanc/obs/trace_fs.hpp"
#include "yanc/shell/coreutils.hpp"
#include "yanc/sw/switch.hpp"
#include "yanc/util/strings.hpp"

using namespace yanc;

namespace {

constexpr const char* kDemoScript =
    "ls -l /net/switches;"
    "cat /net/switches/sw1/id;"
    "mkdir /net/switches/sw1/flows/ssh;"
    "echo 0x0800 > /net/switches/sw1/flows/ssh/match.dl_type;"
    "echo 22 > /net/switches/sw1/flows/ssh/match.tp_dst;"
    "echo 2 > /net/switches/sw1/flows/ssh/action.out;"
    "echo 1 > /net/switches/sw1/flows/ssh/version;"
    "sync;"
    "tree /net/switches/sw1/flows;"
    "find /net match.tp_dst;"
    "grep 22 /net/switches;"
    "cp /net/switches/sw1/flows/ssh /net/switches/sw2/flows/ssh;"
    "echo 1 > /net/switches/sw2/flows/ssh/version;"
    "sync;"
    "ls /net/switches/sw2/flows;"
    // The controller's own telemetry is a filesystem too (/yanc/.stats):
    "cat /yanc/.stats/driver/of/packet_in_total;"
    "cat /yanc/.stats/driver/of/flow_mod_total;"
    "ls /yanc/.stats/vfs;"
    // Fault injection is a filesystem too (/yanc/.faults): make the
    // switch links lossy, commit a flow through the drops, and watch the
    // driver retry/audit machinery repair the damage — then heal.
    "cat /yanc/.faults/seed;"
    "echo drop=0.4 > /yanc/.faults/channel/policy;"
    "cat /yanc/.faults/channel/policy;"
    "mkdir /net/switches/sw1/flows/web;"
    "echo 0x0800 > /net/switches/sw1/flows/web/match.dl_type;"
    "echo 80 > /net/switches/sw1/flows/web/match.tp_dst;"
    "echo 2 > /net/switches/sw1/flows/web/action.out;"
    "echo 1 > /net/switches/sw1/flows/web/version;"
    "sync;"
    "sync;"
    "echo off > /yanc/.faults/channel/policy;"
    "sync;"
    "cat /yanc/.stats/faults/drop_total;"
    "cat /yanc/.stats/driver/of/retry_total;"
    "cat /yanc/.stats/driver/of/audit_total;"
    // Causal tracing is a filesystem too (/yanc/.trace): arm capture,
    // commit a flow, then reconstruct its span tree straight from a file.
    "echo start > /yanc/.trace/ctl;"
    "mkdir /net/switches/sw1/flows/dns;"
    "echo 0x0800 > /net/switches/sw1/flows/dns/match.dl_type;"
    "echo 53 > /net/switches/sw1/flows/dns/match.tp_dst;"
    "echo 2 > /net/switches/sw1/flows/dns/action.out;"
    "echo 1 > /net/switches/sw1/flows/dns/version;"
    "sync;"
    "echo stop > /yanc/.trace/ctl;"
    "cat /yanc/.trace/status;"
    "trace /net/switches/sw1/flows/dns";

struct World {
  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
  net::Scheduler scheduler;
  net::Network network{scheduler};
  std::shared_ptr<faults::Injector> injector =
      std::make_shared<faults::Injector>(1);
  std::unique_ptr<driver::OfDriver> driver;
  std::vector<std::unique_ptr<sw::Switch>> switches;
  std::shared_ptr<obs::StatsFs> stats;

  World() {
    (void)netfs::mount_yanc_fs(*vfs);
    // Shrink the recovery timers so the fault-injection demo converges
    // within a couple of sync calls (defaults are sized for real tests).
    driver::DriverOptions opts;
    opts.keepalive_interval = 8;
    opts.keepalive_timeout = 64;
    opts.request_timeout = 4;
    opts.audit_interval = 16;
    driver = std::make_unique<driver::OfDriver>(vfs, opts);
    driver->listener().set_fault_hook_factory(
        faults::channel_hook_factory(injector));
    (void)faults::mount_faults_fs(*vfs, injector);
    if (auto fs = obs::mount_stats_fs(*vfs)) stats = *fs;
    (void)obs::mount_trace_fs(*vfs);
    for (std::uint64_t dpid : {1, 2}) {
      sw::SwitchOptions opts;
      opts.datapath_id = dpid;
      auto s = std::make_unique<sw::Switch>("dp" + std::to_string(dpid),
                                            opts, network);
      for (std::uint16_t p = 1; p <= 3; ++p)
        s->add_port(p, MacAddress::from_u64((dpid << 8) | p), "eth");
      s->bind_metrics(*vfs->metrics());
      s->connect(driver->listener().connect());
      switches.push_back(std::move(s));
    }
    sync();
  }

  void sync() {
    // Keep ticking a while after the network goes idle: the driver's
    // recovery timers (request retries, table audits, keepalives) run on
    // poll ticks, and a dropped message leaves no visible work behind.
    for (int round = 0; round < 60; ++round) {
      std::size_t work = driver->poll() + scheduler.run_until_idle();
      for (auto& s : switches) work += s->pump();
      if (!work && round >= 32) break;
    }
    if (stats) stats->refresh();
  }
};

void fail(const std::string& cmd, const std::error_code& ec) {
  std::printf("yancsh: %s: %s\n", cmd.c_str(), ec.message().c_str());
}

int run_command(World& world, const std::string& line) {
  auto args = split_nonempty(trim(line), ' ');
  if (args.empty()) return 0;
  auto& vfs = *world.vfs;
  const std::string& cmd = args[0];

  if (cmd == "sync") {
    world.sync();
    return 0;
  }
  if (cmd == "ls") {
    bool long_format = args.size() > 1 && args[1] == "-l";
    std::string path = args.back();
    auto out = shell::ls(vfs, path, long_format);
    if (!out) return fail(cmd, out.error()), 1;
    std::fputs(out->c_str(), stdout);
    return 0;
  }
  if (cmd == "cat" && args.size() == 2) {
    auto out = shell::cat(vfs, args[1]);
    if (!out) return fail(cmd, out.error()), 1;
    std::printf("%s\n", std::string(trim(*out)).c_str());
    return 0;
  }
  if (cmd == "echo" && args.size() == 4 && args[2] == ">") {
    if (auto ec = shell::echo_to(vfs, args[3], args[1]))
      return fail(cmd, ec), 1;
    return 0;
  }
  if (cmd == "tree" && args.size() == 2) {
    auto out = shell::tree(vfs, args[1]);
    if (!out) return fail(cmd, out.error()), 1;
    std::fputs(out->c_str(), stdout);
    return 0;
  }
  if (cmd == "find" && args.size() == 3) {
    auto hits = shell::find_name(vfs, args[1], args[2]);
    if (!hits) return fail(cmd, hits.error()), 1;
    for (const auto& hit : *hits) std::printf("%s\n", hit.c_str());
    return 0;
  }
  if (cmd == "grep" && args.size() == 3) {
    auto hits = shell::grep_recursive(vfs, args[2], args[1]);
    if (!hits) return fail(cmd, hits.error()), 1;
    for (const auto& hit : *hits)
      std::printf("%s: %s\n", hit.path.c_str(), hit.line.c_str());
    return 0;
  }
  if (cmd == "mkdir" && args.size() == 2) {
    if (auto ec = vfs.mkdir(args[1])) return fail(cmd, ec), 1;
    return 0;
  }
  if (cmd == "rm" && args.size() == 2) {
    if (auto ec = vfs.remove_all(args[1])) return fail(cmd, ec), 1;
    return 0;
  }
  if (cmd == "cp" && args.size() == 3) {
    if (auto ec = shell::cp(vfs, args[1], args[2])) return fail(cmd, ec), 1;
    return 0;
  }
  if (cmd == "mv" && args.size() == 3) {
    if (auto ec = shell::mv(vfs, args[1], args[2])) return fail(cmd, ec), 1;
    return 0;
  }
  if (cmd == "trace" && args.size() == 2) {
    auto out = shell::trace_show(vfs, args[1]);
    if (!out) return fail(cmd, out.error()), 1;
    std::fputs(out->c_str(), stdout);
    return 0;
  }
  std::printf("yancsh: unknown or malformed command: %s\n", line.c_str());
  return 1;
}

// The cluster demo: everything it prints is read back through a node's
// file system — the shard map IS the lease files.
void print_shard_map(cluster::Harness& h) {
  std::printf("  %-6s %-30s %s\n", "shard", "lease", "primary");
  for (std::uint64_t dpid = 1; dpid <= h.options().switches; ++dpid) {
    std::string lease = "(none)";
    for (std::size_t n = 0; n < h.options().nodes; ++n) {
      if (!h.alive(n)) continue;
      if (auto text = h.vfs(n)->read_file(
              "/yanc/.cluster/shards/" + std::to_string(dpid) + "/lease")) {
        lease = std::string(trim(*text));
        break;
      }
    }
    auto owner = h.owner_of(dpid);
    std::printf("  %-6llu %-30s %s\n",
                static_cast<unsigned long long>(dpid), lease.c_str(),
                owner ? ("node " + std::to_string(*owner)).c_str() : "-");
  }
}

int run_cluster_demo() {
  cluster::HarnessOptions options;
  options.nodes = 3;
  options.switches = 4;
  cluster::Harness h(options);
  h.settle();

  std::printf("== 3 nodes, 4 switches: shard map after the first "
              "elections ==\n");
  print_shard_map(h);

  auto victim = h.owner_of(1);
  if (!victim) return std::printf("shard 1 never elected a primary\n"), 1;
  std::printf("== killing node %zu (primary for shard 1) ==\n", *victim);
  h.kill(*victim);
  h.settle(30);

  std::printf("== shard map after failover (note the epoch bump) ==\n");
  print_shard_map(h);

  std::printf("== switch 1 from the fence's chair ==\n");
  std::printf("  master_epoch=%llu max_epoch=%llu fenced_mods=%llu\n",
              static_cast<unsigned long long>(h.switch_at(1).master_epoch()),
              static_cast<unsigned long long>(h.switch_at(1).max_epoch()),
              static_cast<unsigned long long>(h.switch_at(1).fenced_mods()));

  std::printf("== failover telemetry (/yanc/.stats/cluster) ==\n");
  for (std::size_t n = 0; n < options.nodes; ++n) {
    if (!h.alive(n)) continue;
    auto reg = h.vfs(n)->metrics();
    std::printf("  node %zu: elections=%llu takeovers=%llu renews=%llu\n", n,
                static_cast<unsigned long long>(
                    reg->counter("cluster/election_total")->value()),
                static_cast<unsigned long long>(
                    reg->counter("cluster/takeover_total")->value()),
                static_cast<unsigned long long>(
                    reg->counter("cluster/lease_renew_total")->value()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "cluster") return run_cluster_demo();
  World world;
  std::string script = argc > 1 ? argv[1] : kDemoScript;
  int failures = 0;
  for (const auto& line : split_nonempty(script, ';')) {
    std::printf("$ %s\n", std::string(trim(line)).c_str());
    failures += run_command(world, line);
  }
  // Show the effect on the data plane: how many hardware flows landed.
  world.sync();
  for (const auto& s : world.switches)
    std::printf("[%s holds %zu hardware flow entries]\n", s->name().c_str(),
                s->table().size());
  return failures == 0 ? 0 : 1;
}
