// The paper's §8 control plane, assembled: topology daemon (LLDP, peer
// symlinks) + reactive router daemon (table misses -> exact-match paths)
// over a three-switch line fabric with two hosts.  The router never talks
// to a switch: everything crosses the yanc file system.
//
// Usage: ./build/examples/reactive_router
#include <cstdio>

#include "yanc/apps/router.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/shell/coreutils.hpp"
#include "yanc/sw/switch.hpp"
#include "yanc/topo/discovery.hpp"

using namespace yanc;

int main() {
  auto vfs = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*vfs);
  driver::OfDriver driver(vfs);
  net::Scheduler scheduler;
  net::Network network(scheduler);

  // Fabric: sw1:3 -- 1:sw2:3 -- 1:sw3 ; h1 on sw1:1, h2 on sw3:2.
  std::vector<std::unique_ptr<sw::Switch>> switches;
  for (std::uint64_t dpid : {1, 2, 3}) {
    sw::SwitchOptions opts;
    opts.datapath_id = dpid;
    auto s = std::make_unique<sw::Switch>("dp" + std::to_string(dpid), opts,
                                          network);
    for (std::uint16_t p = 1; p <= 3; ++p)
      s->add_port(p, MacAddress::from_u64((dpid << 8) | p), "eth");
    s->connect(driver.listener().connect());
    switches.push_back(std::move(s));
  }
  (void)network.add_link(*switches[0], 3, *switches[1], 1);
  (void)network.add_link(*switches[1], 3, *switches[2], 1);
  net::Host h1("h1", *MacAddress::parse("0a:00:00:00:00:01"),
               *Ipv4Address::parse("10.0.0.1"), network);
  net::Host h2("h2", *MacAddress::parse("0a:00:00:00:00:02"),
               *Ipv4Address::parse("10.0.0.2"), network);
  (void)network.add_link(*switches[0], 1, h1, 0);
  (void)network.add_link(*switches[2], 2, h2, 0);

  apps::RouterDaemon router(vfs);
  (void)router.poll();  // register the events/ buffer before traffic

  auto settle = [&] {
    for (int round = 0; round < 80; ++round) {
      std::size_t work = driver.poll() + scheduler.run_until_idle();
      for (auto& s : switches) work += s->pump();
      if (auto handled = router.poll()) work += *handled;
      if (!work) break;
    }
  };
  settle();

  // Topology discovery (§4.3): LLDP probes become peer symlinks.
  topo::DiscoveryDaemon discovery(vfs);
  (void)discovery.step(0);
  settle();
  (void)discovery.consume(0);
  settle();
  std::printf("== discovered links (peer symlinks):\n");
  auto graph = topo::read_topology(*vfs);
  for (const auto& link : graph->links())
    std::printf("   %s:%u <-> %s:%u\n", link.a.switch_name.c_str(),
                link.a.port_no, link.b.switch_name.c_str(), link.b.port_no);

  // h1 pings h2: ARP flood, host learning, path setup, then pure
  // data-plane forwarding.
  std::printf("\n== h1 ping h2 (first packet goes to the controller)\n");
  h1.ping(h2.ip());
  settle();
  std::printf("   echo requests seen by h2: %llu\n",
              static_cast<unsigned long long>(h2.echo_requests_received()));
  std::printf("   echo replies  seen by h1: %llu\n",
              static_cast<unsigned long long>(h1.echo_replies_received()));
  std::printf("   hosts learned: %llu, paths installed: %llu\n",
              static_cast<unsigned long long>(router.hosts_learned()),
              static_cast<unsigned long long>(router.paths_installed()));

  std::printf("\n== learned host registry (ls /net/hosts):\n%s",
              shell::ls(*vfs, "/net/hosts")->c_str());

  std::printf("\n== second ping rides installed flows (no controller):\n");
  auto floods_before = router.floods();
  h1.ping(h2.ip(), 2);
  settle();
  std::printf("   replies now: %llu, new floods: %llu\n",
              static_cast<unsigned long long>(h1.echo_replies_received()),
              static_cast<unsigned long long>(router.floods() -
                                              floods_before));

  std::printf("\n== flows on sw2 (the middle hop):\n%s",
              shell::ls(*vfs, "/net/switches/sw2/flows")->c_str());
  return h1.echo_replies_received() == 2 ? 0 : 1;
}
