// The §6 proof of concept, reproduced: two controller nodes each mount a
// replica of the yanc file system; a distributed file system underneath
// turns them into one logically centralized controller.  The switch is
// attached to node B; the administrator works on node A; neither the
// driver nor the admin tools know replication exists.
//
// Also demonstrates per-subtree consistency via xattr (§5.1) and a
// partition diverging + healing under the eventual mode.
//
// Usage: ./build/examples/distributed_controller
#include <cstdio>

#include "yanc/dist/replicated.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/handles.hpp"
#include "yanc/shell/coreutils.hpp"
#include "yanc/sw/switch.hpp"

using namespace yanc;

int main() {
  net::Scheduler scheduler;
  net::Network network(scheduler);

  // Two replicas over a 200us link; node 0 is the strict-mode primary.
  dist::Cluster cluster(
      scheduler,
      dist::ClusterOptions{.nodes = 2,
                           .link_latency = std::chrono::microseconds(200),
                           .default_mode = dist::Mode::strict});

  auto vfs_a = std::make_shared<vfs::Vfs>();  // controller node A
  auto vfs_b = std::make_shared<vfs::Vfs>();  // controller node B
  (void)vfs_a->mkdir("/net");
  (void)vfs_b->mkdir("/net");
  (void)vfs_a->mount("/net", cluster.fs(0));
  (void)vfs_b->mount("/net", cluster.fs(1));

  // Node B hosts the driver; a switch connects to it.
  driver::OfDriver driver_b(vfs_b);
  sw::SwitchOptions opts;
  opts.datapath_id = 0x42;
  sw::Switch s("dp42", opts, network);
  for (std::uint16_t p = 1; p <= 2; ++p)
    s.add_port(p, MacAddress::from_u64(p), "eth" + std::to_string(p));
  s.connect(driver_b.listener().connect());

  auto settle = [&] {
    for (int round = 0; round < 60; ++round) {
      std::size_t work =
          driver_b.poll() + s.pump() + scheduler.run_until_idle();
      if (!work) break;
    }
  };
  settle();

  std::printf("== node A never ran a driver, yet sees the switch that\n"
              "   node B's driver created (replication is below the FS):\n");
  std::printf("%s\n", shell::ls(*vfs_a, "/net/switches", true)->c_str());

  // The admin on node A programs a flow with ordinary file writes.
  std::printf("== admin on node A writes a flow...\n");
  netfs::NetDir net_a(vfs_a);
  flow::FlowSpec spec;
  spec.match.dl_type = 0x0806;
  spec.actions = {flow::Action::flood()};
  (void)net_a.switch_at("sw1").add_flow("arp", spec);
  settle();
  std::printf("   ...and node B's driver programmed the hardware: "
              "%zu entries (%s)\n\n",
              s.table().size(),
              s.table().entries()[0].spec.to_string().c_str());

  // Strict-mode cost is visible on the non-primary node (§8.1-adjacent).
  std::printf("== replication accounting: node B paid %llu ns of primary\n"
              "   round trips for %llu local ops; %llu ops replicated in,\n"
              "   %llu messages / %llu bytes on the wire\n\n",
              static_cast<unsigned long long>(cluster.fs(1)->sync_delay_ns()),
              static_cast<unsigned long long>(cluster.fs(1)->local_ops()),
              static_cast<unsigned long long>(
                  cluster.fs(1)->remote_ops_applied()),
              static_cast<unsigned long long>(
                  cluster.transport().messages_sent()),
              static_cast<unsigned long long>(
                  cluster.transport().bytes_sent()));

  // Per-subtree consistency (§5.1): the events tree runs eventual.
  std::printf("== setxattr user.yanc.consistency=eventual on /net/events\n");
  std::string mode = "eventual";
  (void)vfs_a->setxattr("/net/events", dist::kConsistencyXattr,
                        {mode.begin(), mode.end()});
  settle();

  // Partition the nodes; node A keeps writing into the eventual subtree.
  std::printf("== partition A|B, write events on A, heal, converge:\n");
  cluster.partition(0, 1);
  (void)vfs_a->mkdir("/net/events/during-partition");
  settle();
  auto on_b = vfs_b->stat("/net/events/during-partition");
  std::printf("   during partition, node B sees it: %s\n",
              on_b.ok() ? "yes (?!)" : "no (diverged, as expected)");
  cluster.heal(0, 1);
  settle();
  on_b = vfs_b->stat("/net/events/during-partition");
  std::printf("   after heal,       node B sees it: %s\n",
              on_b.ok() ? "yes (converged)" : "no");
  return on_b.ok() ? 0 : 1;
}
