// Network views (§4.2) in action: a slicer confines a tenant to ssh
// traffic on a port subset; a namespaced tenant application (§5.3)
// programs flows inside its view without ever being able to name the
// master tree; and a big-switch virtualizer collapses the fabric into a
// single virtual switch for a second tenant.
//
// Usage: ./build/examples/sliced_network
#include <cstdio>

#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/shell/coreutils.hpp"
#include "yanc/sw/switch.hpp"
#include "yanc/view/bigswitch.hpp"
#include "yanc/view/slicer.hpp"

using namespace yanc;

int main() {
  auto vfs = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*vfs);
  driver::OfDriver driver(vfs);
  net::Scheduler scheduler;
  net::Network network(scheduler);

  std::vector<std::unique_ptr<sw::Switch>> switches;
  for (std::uint64_t dpid : {1, 2}) {
    sw::SwitchOptions opts;
    opts.datapath_id = dpid;
    auto s = std::make_unique<sw::Switch>("dp" + std::to_string(dpid), opts,
                                          network);
    for (std::uint16_t p = 1; p <= 4; ++p)
      s->add_port(p, MacAddress::from_u64((dpid << 8) | p), "eth");
    s->connect(driver.listener().connect());
    switches.push_back(std::move(s));
  }
  // Fabric link sw1:4 <-> sw2:4, declared via peer symlinks so the big
  // switch can route across it.
  auto settle = [&] {
    for (int round = 0; round < 60; ++round) {
      std::size_t work = driver.poll() + scheduler.run_until_idle();
      for (auto& s : switches) work += s->pump();
      if (!work) break;
    }
  };
  settle();
  (void)vfs->symlink("/net/switches/sw2/ports/4",
                     "/net/switches/sw1/ports/4/peer");
  (void)vfs->symlink("/net/switches/sw1/ports/4",
                     "/net/switches/sw2/ports/4/peer");

  // --- tenant A: an ssh-only slice of sw1 ports 1-2 ----------------------
  view::SliceConfig cfg;
  cfg.name = "ssh-tenant";
  cfg.predicate.dl_type = 0x0800;
  cfg.predicate.nw_proto = 6;
  cfg.predicate.tp_dst = 22;
  cfg.switches = {"sw1"};
  cfg.ports = {{"sw1", {1, 2}}};
  view::Slicer slicer(vfs, "/net", cfg);
  (void)slicer.init();

  std::printf("== the tenant's world (mkdir views/ssh-tenant made it, §3.1):\n%s\n",
              shell::tree(*vfs, "/net/views/ssh-tenant/switches")->c_str());

  // The tenant runs inside a namespace rooted at its view (§5.3): it
  // literally cannot name the master tree.
  vfs::Namespace tenant(vfs, "/net/views/ssh-tenant",
                        vfs::Credentials::user(2000, 2000));
  std::printf("== tenant (namespaced) sees /switches: %s",
              shell::ls(*vfs, "/net/views/ssh-tenant/switches")->c_str());

  // Tenant writes a match-ALL flow — the slicer confines it to ssh.
  (void)vfs->mkdir("/net/views/ssh-tenant/switches/sw1/flows/mine");
  (void)shell::echo_to(*vfs,
                       "/net/views/ssh-tenant/switches/sw1/flows/mine/action.out",
                       "2");
  (void)shell::echo_to(
      *vfs, "/net/views/ssh-tenant/switches/sw1/flows/mine/version", "1");
  (void)slicer.poll();
  settle();

  auto installed = netfs::read_flow(*vfs,
                                    "/net/switches/sw1/flows/view_ssh-tenant__mine");
  std::printf("\n== what actually reached the master view:\n   %s\n",
              installed->to_string().c_str());
  std::printf("   hardware entries on sw1: %zu (confined to tp_dst=22)\n",
              switches[0]->table().size());

  // --- tenant B: the whole fabric as one big switch -----------------------
  view::BigSwitchConfig big_cfg;
  big_cfg.view_name = "onebig";
  big_cfg.edge_ports = {{"sw1", 1}, {"sw2", 2}};
  view::BigSwitch big(vfs, "/net", big_cfg);
  (void)big.init();
  std::printf("\n== tenant B's virtual switch (ports map to fabric edges):\n%s",
              shell::ls(*vfs, "/net/views/onebig/switches/big0/ports", true)
                  ->c_str());

  flow::FlowSpec cross;
  cross.match.in_port = 1;
  cross.actions = {flow::Action::output(2)};
  (void)netfs::write_flow(*vfs,
                          "/net/views/onebig/switches/big0/flows/cross",
                          cross);
  (void)big.poll();
  settle();
  std::printf("\n== one virtual flow compiled into per-hop entries:\n");
  for (const auto& s : switches)
    std::printf("   %s: %zu hardware flows\n", s->name().c_str(),
                s->table().size());
  return 0;
}
