// Tests for yanc::faults: the deterministic RNG, the FaultPlan policy
// format, the injector's per-message decisions, the channel fault hook,
// the /yanc/.faults control file system, and the lossy transport glue.
#include <gtest/gtest.h>

#include "yanc/dist/transport.hpp"
#include "yanc/faults/faults_fs.hpp"
#include "yanc/faults/injector.hpp"
#include "yanc/obs/metrics.hpp"
#include "yanc/util/rng.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::faults {
namespace {

// --- util::Rng -----------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1), b(2);
  bool differed = false;
  for (int i = 0; i < 16 && !differed; ++i)
    differed = a.next_u64() != b.next_u64();
  EXPECT_TRUE(differed);
}

TEST(Rng, ReseedRestartsTheStream) {
  util::Rng rng(7);
  std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(7);
  EXPECT_EQ(rng.next_u64(), first);
  EXPECT_EQ(rng.seed(), 7u);
}

TEST(Rng, ChanceAlwaysConsumesADraw) {
  // Two streams that roll different probabilities must stay aligned:
  // chance() burns exactly one draw whether or not it fires.
  util::Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    a.chance(0.0);
    b.chance(1.0);
  }
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoublesAreInUnitInterval) {
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.below(0), 0u);
  for (int i = 0; i < 100; ++i) ASSERT_LT(rng.below(13), 13u);
}

// --- FaultPlan -----------------------------------------------------------------

TEST(FaultPlanTest, ParseFormatRoundTrips) {
  auto plan = FaultPlan::parse("drop=0.05 duplicate=0.01 delay_msgs=4");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->drop, 0.05);
  EXPECT_DOUBLE_EQ(plan->duplicate, 0.01);
  EXPECT_EQ(plan->delay_msgs, 4u);
  auto again = FaultPlan::parse(plan->format());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *plan);
}

TEST(FaultPlanTest, OffAndEmptyClear) {
  for (const char* text : {"off", "clear", "", "   "}) {
    auto plan = FaultPlan::parse(text);
    ASSERT_TRUE(plan.ok()) << "'" << text << "'";
    EXPECT_FALSE(plan->any()) << "'" << text << "'";
  }
  auto dup = FaultPlan::parse("dup=0.5");  // alias
  ASSERT_TRUE(dup.ok());
  EXPECT_DOUBLE_EQ(dup->duplicate, 0.5);
}

TEST(FaultPlanTest, StrictRejections) {
  EXPECT_FALSE(FaultPlan::parse("bogus=1").ok());
  EXPECT_FALSE(FaultPlan::parse("drop=1.5").ok());
  EXPECT_FALSE(FaultPlan::parse("drop=-0.1").ok());
  EXPECT_FALSE(FaultPlan::parse("drop=nan").ok());
  EXPECT_FALSE(FaultPlan::parse("drop").ok());
  EXPECT_FALSE(FaultPlan::parse("delay_msgs=0").ok());
  EXPECT_FALSE(FaultPlan::parse("delay_msgs=9999").ok());
}

TEST(FaultPlanTest, PartitionGrammar) {
  auto plan = FaultPlan::parse("partition=1->2 partition=0<->2");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->any());
  ASSERT_EQ(plan->partitions.size(), 3u);  // 1->2, 0->2, 2->0
  EXPECT_TRUE(plan->is_partitioned(1, 2));
  EXPECT_FALSE(plan->is_partitioned(2, 1));  // asymmetric cut
  EXPECT_TRUE(plan->is_partitioned(0, 2));
  EXPECT_TRUE(plan->is_partitioned(2, 0));
  EXPECT_FALSE(plan->is_partitioned(0, 1));
  auto again = FaultPlan::parse(plan->format());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *plan);
  // Duplicate edges collapse; "off" clears partitions like everything else.
  auto dup = FaultPlan::parse("partition=1->2 partition=1<->2");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->partitions.size(), 2u);
  EXPECT_FALSE(FaultPlan::parse("off")->any());
}

TEST(FaultPlanTest, PartitionRejections) {
  EXPECT_FALSE(FaultPlan::parse("partition=1->1").ok());  // self-cut
  EXPECT_FALSE(FaultPlan::parse("partition=1").ok());
  EXPECT_FALSE(FaultPlan::parse("partition=a->b").ok());
  EXPECT_FALSE(FaultPlan::parse("partition=1->").ok());
  EXPECT_FALSE(FaultPlan::parse("partition=->2").ok());
}

// --- Injector ------------------------------------------------------------------

TEST(InjectorTest, QuietPlanTouchesNothing) {
  Injector inj(5);
  std::vector<std::uint8_t> msg{1, 2, 3};
  for (int i = 0; i < 100; ++i) {
    auto fate = inj.decide(Scope::channel, msg);
    ASSERT_TRUE(fate.has_value());
    EXPECT_FALSE(fate->drop || fate->duplicate || fate->reorder ||
                 fate->delay);
  }
  EXPECT_EQ(msg, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(InjectorTest, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    Injector inj(seed);
    FaultPlan plan;
    plan.drop = 0.3;
    plan.duplicate = 0.2;
    plan.reorder = 0.1;
    inj.set_plan(Scope::channel, plan);
    std::string trace;
    std::vector<std::uint8_t> msg{0};
    for (int i = 0; i < 200; ++i) {
      auto fate = inj.decide(Scope::channel, msg);
      if (!fate) {
        trace += 'X';
        continue;
      }
      trace += fate->drop ? 'd' : fate->duplicate ? '2'
                                : fate->reorder  ? 'r'
                                                 : '.';
    }
    return trace;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(InjectorTest, ScopesHaveIndependentPlans) {
  Injector inj(1);
  FaultPlan lossy;
  lossy.drop = 1.0;
  inj.set_plan(Scope::transport, lossy);
  std::vector<std::uint8_t> msg{0};
  auto channel_fate = inj.decide(Scope::channel, msg);
  ASSERT_TRUE(channel_fate.has_value());
  EXPECT_FALSE(channel_fate->drop);  // channel plan still quiet
  auto transport_fate = inj.decide(Scope::transport, msg);
  ASSERT_TRUE(transport_fate.has_value());
  EXPECT_TRUE(transport_fate->drop);
}

TEST(InjectorTest, CorruptFlipsExactlyOneBitInPlace) {
  Injector inj(1);
  FaultPlan plan;
  plan.corrupt = 1.0;
  inj.set_plan(Scope::channel, plan);
  std::vector<std::uint8_t> msg{0xaa, 0xbb, 0xcc};
  auto original = msg;
  auto fate = inj.decide(Scope::channel, msg);
  ASSERT_TRUE(fate.has_value());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < msg.size(); ++i)
    flipped_bits += __builtin_popcount(msg[i] ^ original[i]);
  EXPECT_EQ(flipped_bits, 1);
}

TEST(InjectorTest, DisconnectSeversAndCounts) {
  Injector inj(1);
  obs::Registry reg;
  inj.bind_metrics(reg);
  FaultPlan plan;
  plan.disconnect = 1.0;
  inj.set_plan(Scope::channel, plan);
  std::vector<std::uint8_t> msg{0};
  EXPECT_FALSE(inj.decide(Scope::channel, msg).has_value());
  EXPECT_EQ(reg.counter("faults/disconnect_total")->value(), 1u);
}

// --- the channel hook ----------------------------------------------------------

std::pair<net::Channel, net::Channel> hooked_pair(
    std::shared_ptr<Injector> inj) {
  auto [a, b] = net::Channel::make_pair();
  a.set_fault_hook(channel_hook_factory(std::move(inj))());
  return {std::move(a), std::move(b)};
}

TEST(ChannelFaultsTest, DropVanishesSilently) {
  auto inj = std::make_shared<Injector>(1);
  FaultPlan plan;
  plan.drop = 1.0;
  inj->set_plan(Scope::channel, plan);
  auto [a, b] = hooked_pair(inj);
  EXPECT_TRUE(a.send({1}));  // send "succeeds": losses are silent
  EXPECT_FALSE(b.try_recv().has_value());
  EXPECT_TRUE(a.connected());
}

TEST(ChannelFaultsTest, DuplicateDeliversTwice) {
  auto inj = std::make_shared<Injector>(1);
  FaultPlan plan;
  plan.duplicate = 1.0;
  inj->set_plan(Scope::channel, plan);
  auto [a, b] = hooked_pair(inj);
  ASSERT_TRUE(a.send({7}));
  ASSERT_TRUE(b.try_recv().has_value());
  auto second = b.try_recv();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)[0], 7);
}

TEST(ChannelFaultsTest, ReorderSwapsWithPreviousMessage) {
  auto inj = std::make_shared<Injector>(1);
  FaultPlan plan;
  plan.reorder = 1.0;
  inj->set_plan(Scope::channel, plan);
  auto [a, b] = hooked_pair(inj);
  ASSERT_TRUE(a.send({1}));
  ASSERT_TRUE(a.send({2}));  // rolled reorder: inserted before {1}
  auto first = b.try_recv();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 2);
}

TEST(ChannelFaultsTest, DisconnectSeversTheChannel) {
  auto inj = std::make_shared<Injector>(1);
  FaultPlan plan;
  plan.disconnect = 1.0;
  inj->set_plan(Scope::channel, plan);
  auto [a, b] = hooked_pair(inj);
  EXPECT_FALSE(a.send({1}));
  EXPECT_FALSE(a.connected());
  EXPECT_FALSE(b.connected());
}

TEST(ChannelFaultsTest, DelayedMessageEventuallyArrives) {
  auto inj = std::make_shared<Injector>(1);
  FaultPlan plan;
  plan.delay = 1.0;
  plan.delay_msgs = 2;
  inj->set_plan(Scope::channel, plan);
  auto [a, b] = hooked_pair(inj);
  ASSERT_TRUE(a.send({1}));  // held back
  // Nothing else in flight: the receiver must still get it eventually
  // (the hook flushes stashed messages rather than starving the reader).
  std::optional<net::Message> got;
  for (int i = 0; i < 10 && !got; ++i) got = b.try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[0], 1);
}

TEST(ChannelFaultsTest, HookDeterminismAcrossPairs) {
  auto run = [](std::uint64_t seed) {
    auto inj = std::make_shared<Injector>(seed);
    FaultPlan plan;
    plan.drop = 0.4;
    plan.duplicate = 0.2;
    inj->set_plan(Scope::channel, plan);
    auto [a, b] = net::Channel::make_pair();
    a.set_fault_hook(channel_hook_factory(inj)());
    std::size_t received = 0;
    for (std::uint8_t i = 0; i < 100; ++i) {
      (void)a.send({i});
      while (b.try_recv()) ++received;
    }
    return received;
  };
  EXPECT_EQ(run(77), run(77));
}

// --- FaultsFs ------------------------------------------------------------------

class FaultsFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    injector = std::make_shared<Injector>(1);
    auto mounted = mount_faults_fs(*vfs, injector);
    ASSERT_TRUE(mounted.ok());
  }

  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
  std::shared_ptr<Injector> injector;
};

TEST_F(FaultsFsTest, TreeLayout) {
  auto names = vfs->readdir("/yanc/.faults");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 3u);
  EXPECT_EQ((*names)[0].name, "channel");
  EXPECT_EQ((*names)[1].name, "seed");
  EXPECT_EQ((*names)[2].name, "transport");
  EXPECT_TRUE(vfs->stat("/yanc/.faults/channel/policy").ok());
  EXPECT_TRUE(vfs->stat("/yanc/.faults/transport/policy").ok());
}

TEST_F(FaultsFsTest, PolicyWriteTakesEffect) {
  ASSERT_FALSE(
      vfs->write_file("/yanc/.faults/channel/policy", "drop=0.25"));
  EXPECT_DOUBLE_EQ(injector->plan(Scope::channel).drop, 0.25);
  EXPECT_DOUBLE_EQ(injector->plan(Scope::transport).drop, 0.0);
  // cat shows the canonical live plan.
  auto text = vfs->read_file("/yanc/.faults/channel/policy");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("drop=0.25"), std::string::npos);
}

TEST_F(FaultsFsTest, InvalidPolicyRejectedOldPlanSurvives) {
  ASSERT_FALSE(
      vfs->write_file("/yanc/.faults/channel/policy", "drop=0.25"));
  auto ec = vfs->write_file("/yanc/.faults/channel/policy", "drop=7");
  EXPECT_EQ(ec, make_error_code(Errc::invalid_argument));
  EXPECT_DOUBLE_EQ(injector->plan(Scope::channel).drop, 0.25);
}

TEST_F(FaultsFsTest, SeedWriteReseeds) {
  ASSERT_FALSE(vfs->write_file("/yanc/.faults/seed", "99"));
  EXPECT_EQ(injector->seed(), 99u);
  auto text = vfs->read_file("/yanc/.faults/seed");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "99\n");
  EXPECT_TRUE(vfs->write_file("/yanc/.faults/seed", "not-a-number"));
}

TEST_F(FaultsFsTest, TreeIsImmutable) {
  EXPECT_TRUE(vfs->mkdir("/yanc/.faults/extra"));
  EXPECT_TRUE(vfs->rmdir("/yanc/.faults/channel"));
}

// --- lossy transport -----------------------------------------------------------

TEST(TransportFaults, DropFilterLosesMessages) {
  net::Scheduler scheduler;
  dist::Transport transport(scheduler, {});
  std::size_t received = 0;
  auto a = transport.join([&](auto, const auto&) { ++received; });
  auto b = transport.join([&](auto, const auto&) {});
  auto inj = std::make_shared<Injector>(1);
  FaultPlan plan;
  plan.drop = 1.0;
  inj->set_plan(Scope::transport, plan);
  dist::attach_faults(transport, inj);
  // All ten are eaten by the drop filter: send reports the loss.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(transport.send(b, a, {1}));
  scheduler.run_until_idle();
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(transport.messages_dropped(), 10u);

  // Healing: remove the filter, traffic flows again.
  dist::attach_faults(transport, nullptr);
  EXPECT_TRUE(transport.send(b, a, {1}));
  scheduler.run_until_idle();
  EXPECT_EQ(received, 1u);
}

TEST(TransportFaults, PlannedPartitionEatsDirectedTraffic) {
  net::Scheduler scheduler;
  dist::Transport transport(scheduler, {});
  std::size_t at_a = 0, at_b = 0;
  auto a = transport.join([&](auto, const auto&) { ++at_a; });
  auto b = transport.join([&](auto, const auto&) { ++at_b; });
  auto inj = std::make_shared<Injector>(1);
  auto plan = FaultPlan::parse("partition=0->1");
  ASSERT_TRUE(plan.ok());
  inj->set_plan(Scope::transport, *plan);
  dist::attach_faults(transport, inj);
  // a->b is cut hard (eaten, not queued); b->a stays alive.
  EXPECT_FALSE(transport.send(a, b, {1}));
  EXPECT_TRUE(transport.send(b, a, {2}));
  scheduler.run_until_idle();
  EXPECT_EQ(at_b, 0u);
  EXPECT_EQ(at_a, 1u);
  EXPECT_EQ(transport.messages_dropped(), 1u);
  // Clearing the plan heals the link.
  inj->set_plan(Scope::transport, {});
  EXPECT_TRUE(transport.send(a, b, {3}));
  scheduler.run_until_idle();
  EXPECT_EQ(at_b, 1u);
}

TEST(TransportFaults, DuplicateDeliversTwice) {
  net::Scheduler scheduler;
  dist::Transport transport(scheduler, {});
  std::size_t received = 0;
  auto a = transport.join([&](auto, const auto&) { ++received; });
  auto b = transport.join([&](auto, const auto&) {});
  auto inj = std::make_shared<Injector>(1);
  FaultPlan plan;
  plan.duplicate = 1.0;
  inj->set_plan(Scope::transport, plan);
  dist::attach_faults(transport, inj);
  EXPECT_TRUE(transport.send(b, a, {1}));
  scheduler.run_until_idle();
  EXPECT_EQ(received, 2u);
}

}  // namespace
}  // namespace yanc::faults
