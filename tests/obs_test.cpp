// Tests for yanc::obs: the metrics registry, histogram percentile math,
// the trace ring, and the /yanc/.stats procfs-style subtree — including
// reading it through the shell coreutils, exactly how an administrator
// would (paper §5.4 applied to the controller's own telemetry).
#include <gtest/gtest.h>

#include "yanc/dist/replicated.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/obs/stats_fs.hpp"
#include "yanc/obs/trace.hpp"
#include "yanc/shell/coreutils.hpp"
#include "yanc/sw/switch.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::obs {
namespace {

// --- Registry -----------------------------------------------------------

TEST(RegistryTest, GetOrCreateReturnsStableHandles) {
  Registry reg;
  Counter* c = reg.counter("vfs/lookup_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reg.counter("vfs/lookup_total"), c);  // same handle
  c->add();
  c->add(4);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_TRUE(reg.contains("vfs/lookup_total"));
  EXPECT_FALSE(reg.contains("vfs/nope"));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  Registry reg;
  ASSERT_NE(reg.counter("x/metric_total"), nullptr);
  EXPECT_EQ(reg.gauge("x/metric_total"), nullptr);
  EXPECT_EQ(reg.histogram("x/metric_total"), nullptr);
  // The original registration is untouched.
  EXPECT_NE(reg.counter("x/metric_total"), nullptr);
}

TEST(RegistryTest, GenerationBumpsOnlyOnNewNames) {
  Registry reg;
  auto g0 = reg.generation();
  reg.counter("a/one_total");
  auto g1 = reg.generation();
  EXPECT_GT(g1, g0);
  reg.counter("a/one_total");  // get, not create
  EXPECT_EQ(reg.generation(), g1);
}

TEST(RegistryTest, ValueOfResolvesHistogramSuffixes) {
  Registry reg;
  reg.counter("vfs/read_total")->add(7);
  reg.gauge("netfs/watch_queue_depth")->set(-3);
  Histogram* h = reg.histogram("vfs/op_ns");
  for (int i = 0; i < 100; ++i) h->record(1000);

  EXPECT_EQ(reg.value_of("vfs/read_total").value_or(""), "7");
  EXPECT_EQ(reg.value_of("netfs/watch_queue_depth").value_or(""), "-3");
  EXPECT_EQ(reg.value_of("vfs/op_ns_count").value_or(""), "100");
  EXPECT_FALSE(reg.value_of("vfs/op_ns").has_value());  // bare histogram name
  EXPECT_FALSE(reg.value_of("vfs/missing_total").has_value());
  auto p99 = reg.value_of("vfs/op_ns_p99");
  ASSERT_TRUE(p99.has_value());
  // All samples identical: every percentile lands in the 1000 bucket.
  auto v = parse_u64(*p99);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(static_cast<double>(*v), 1000.0, 1000.0 * 0.07);
}

TEST(RegistryTest, ExportPathsAreSortedAndExpanded) {
  Registry reg;
  reg.histogram("b/lat_ns");
  reg.counter("a/ops_total");
  auto paths = reg.export_paths();
  ASSERT_EQ(paths.size(), 5u);
  EXPECT_EQ(paths[0], "a/ops_total");
  EXPECT_EQ(paths[1], "b/lat_ns_count");
  EXPECT_EQ(paths[2], "b/lat_ns_p50");
  EXPECT_EQ(paths[3], "b/lat_ns_p90");
  EXPECT_EQ(paths[4], "b/lat_ns_p99");
}

// --- Histogram percentile math ------------------------------------------

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  // Values below 16 get one bucket each: percentiles are exact.
  for (std::uint64_t v = 0; v < 10; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.percentile(10), 0u);
  EXPECT_EQ(h.percentile(50), 4u);
  EXPECT_EQ(h.percentile(100), 9u);
}

TEST(HistogramTest, UniformDistributionPercentiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.sum(), 10000ull * 10001 / 2);
  // Log-linear with 16 sub-buckets bounds relative error to ~6%; allow 10%.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 5000.0, 500.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(90)), 9000.0, 900.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 9900.0, 990.0);
}

TEST(HistogramTest, BimodalDistribution) {
  Histogram h;
  // 90% fast ops at ~100ns, 10% slow at ~1ms: p50 must report the fast
  // mode and p99 the slow mode — the whole point of keeping a histogram
  // instead of a mean (mean here is ~100,090ns, representing neither).
  for (int i = 0; i < 900; ++i) h.record(100);
  for (int i = 0; i < 100; ++i) h.record(1'000'000);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 100.0, 10.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 1e6, 1e5);
}

TEST(HistogramTest, EmptyAndOutlierClamp) {
  Histogram h;
  EXPECT_EQ(h.percentile(99), 0u);
  h.record(~0ull);  // beyond 2^40: clamped into the last decade, not UB
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.percentile(50), 1ull << 38);
}

// --- TraceRing ----------------------------------------------------------

TEST(TraceRingTest, RecordsAndDumps) {
  TraceRing ring(8);
  ring.event(100, "driver", "packet_in");
  ring.span(200, 50, "vfs", "write");
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "packet_in");
  EXPECT_EQ(events[1].dur_ns, 50u);
  EXPECT_EQ(ring.dump(), "0 100 0 driver packet_in\n1 200 50 vfs write\n");
}

TEST(TraceRingTest, WrapsKeepingNewestAndCountsDrops) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    ring.event(i * 10, "t", name);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest, and exactly the newest four survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    std::string expected = "e";
    expected += std::to_string(6 + i);
    EXPECT_EQ(events[i].name, expected);
  }
}

// --- StatsFs ------------------------------------------------------------

TEST(StatsFsTest, MaterializesRegistryAsTree) {
  auto vfs = std::make_shared<vfs::Vfs>();
  auto mounted = mount_stats_fs(*vfs);
  ASSERT_TRUE(mounted.ok());

  // The Vfs registered its own metrics at construction; they must be
  // visible as files, via plain readdir/cat.
  auto entries = vfs->readdir("/yanc/.stats/vfs");
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> names;
  for (const auto& e : *entries) names.push_back(e.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "lookup_total"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "op_ns_p99"), names.end());
}

TEST(StatsFsTest, CountersReadThroughShellAndIncreaseMonotonically) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(mount_stats_fs(*vfs).ok());

  auto read_counter = [&](const std::string& path) {
    auto text = shell::cat(*vfs, path);
    EXPECT_TRUE(text.ok()) << path;
    auto v = parse_u64(trim(*text));
    EXPECT_TRUE(v.ok()) << *text;
    return *v;
  };

  std::uint64_t before = read_counter("/yanc/.stats/vfs/lookup_total");
  for (int i = 0; i < 128; ++i) (void)vfs->stat("/yanc");
  std::uint64_t after = read_counter("/yanc/.stats/vfs/lookup_total");
  EXPECT_GT(after, before);
  // Monotonic: a third read can only move forward.
  EXPECT_GE(read_counter("/yanc/.stats/vfs/lookup_total"), after);

  // The latency histogram samples 1-in-64 ops; 128 stats guarantee a hit.
  EXPECT_GT(read_counter("/yanc/.stats/vfs/op_ns_count"), 0u);
}

TEST(StatsFsTest, IsReadOnly) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(mount_stats_fs(*vfs).ok());
  EXPECT_TRUE(vfs->write_file("/yanc/.stats/vfs/lookup_total", "0"));
  EXPECT_TRUE(vfs->mkdir("/yanc/.stats/mine"));
  EXPECT_TRUE(vfs->unlink("/yanc/.stats/vfs/lookup_total"));
  // ...but stat and readdir are world-accessible.
  vfs::Credentials nobody;
  nobody.uid = 1000;
  nobody.gid = 1000;
  EXPECT_TRUE(vfs->stat("/yanc/.stats/vfs/lookup_total", nobody).ok());
}

TEST(StatsFsTest, NewMetricsAppearWithoutRemount) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(mount_stats_fs(*vfs).ok());
  EXPECT_FALSE(vfs->stat("/yanc/.stats/apps/route_total").ok());
  vfs->metrics()->counter("apps/route_total")->add(3);
  auto text = shell::cat(*vfs, "/yanc/.stats/apps/route_total");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(trim(*text), "3");
}

TEST(StatsFsTest, RefreshEmitsModifiedEventsForWatchers) {
  auto vfs = std::make_shared<vfs::Vfs>();
  auto mounted = mount_stats_fs(*vfs);
  ASSERT_TRUE(mounted.ok());
  auto stats = *mounted;

  auto queue = std::make_shared<vfs::WatchQueue>();
  auto watch =
      vfs->watch("/yanc/.stats/vfs/read_total", vfs::event::modified, queue);
  ASSERT_TRUE(watch.ok());

  (void)vfs->read_file("/yanc/.stats/vfs/lookup_total");  // bump read_total
  EXPECT_GT(stats->refresh(), 0u);
  auto event = queue->try_pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->is(vfs::event::modified));

  // No traffic => no change => no event.
  stats->refresh();
  std::size_t steady = queue->drain().size();
  stats->refresh();
  EXPECT_EQ(queue->drain().size(), steady - steady);  // empty after drain
}

TEST(StatsFsTest, TraceRingExposedAsFile) {
  auto vfs = std::make_shared<vfs::Vfs>();
  auto trace = std::make_shared<TraceRing>(16);
  ASSERT_TRUE(mount_stats_fs(*vfs, "/yanc/.stats", trace).ok());
  trace->event(42, "driver", "packet_in");
  auto text = shell::cat(*vfs, "/yanc/.stats/trace");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("driver packet_in"), std::string::npos);
}

// --- Cross-subsystem wiring ---------------------------------------------

TEST(ObsIntegrationTest, NetfsValidationMetrics) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  ASSERT_TRUE(mount_stats_fs(*vfs).ok());
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));

  auto& reg = *vfs->metrics();
  std::uint64_t writes = reg.counter("netfs/typed_write_total")->value();
  std::uint64_t fails = reg.counter("netfs/validation_fail_total")->value();

  // A valid typed write counts once; an invalid one also fails the count.
  EXPECT_FALSE(vfs->write_file("/net/switches/sw1/id", "0xab"));
  EXPECT_TRUE(vfs->write_file("/net/switches/sw1/id", "not hex"));
  EXPECT_GE(reg.counter("netfs/typed_write_total")->value(), writes + 2);
  EXPECT_EQ(reg.counter("netfs/validation_fail_total")->value(), fails + 1);
}

TEST(ObsIntegrationTest, SwitchHitMissCounters) {
  net::Scheduler scheduler;
  net::Network network(scheduler);
  Registry reg;

  sw::SwitchOptions opts;
  opts.datapath_id = 0x1;
  sw::Switch dp("dp1", opts, network);
  dp.add_port(1, MacAddress::from_u64(0x101), "eth0");
  dp.bind_metrics(reg);

  net::Host h1("h1", MacAddress::from_u64(0xa1), Ipv4Address(0x0a000001),
               network);
  ASSERT_TRUE(network.add_link(dp, 1, h1, 0).ok());
  h1.send_arp_request(Ipv4Address(0x0a000002));
  scheduler.run_until_idle();

  // No flow table entries yet: the frame is a miss.
  EXPECT_EQ(reg.counter("sw/flow_hit_total")->value(), 0u);
  EXPECT_GE(reg.counter("sw/flow_miss_total")->value(), 1u);
}

TEST(ObsIntegrationTest, ReplicationLagHistogram) {
  net::Scheduler scheduler;
  dist::ClusterOptions options;
  options.nodes = 2;
  options.link_latency = std::chrono::microseconds(500);
  dist::Cluster cluster(scheduler, options);

  Registry reg;
  cluster.fs(1)->bind_metrics(reg);

  auto fs0 = cluster.fs(0);
  auto switches = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(switches.ok());
  ASSERT_TRUE(fs0->mkdir(*switches, "sw1", 0755, {}).ok());
  scheduler.run_until_idle();

  Histogram* lag = reg.histogram("dist/replication_lag_ns");
  ASSERT_GE(lag->count(), 1u);
  // One simulated hop from the primary: lag == link latency (500us),
  // reported within the histogram's ~6% bucket resolution.
  EXPECT_NEAR(static_cast<double>(lag->percentile(50)), 500'000.0, 35'000.0);
  EXPECT_GE(reg.counter("dist/replication_apply_total")->value(), 1u);
}

}  // namespace
}  // namespace yanc::obs
