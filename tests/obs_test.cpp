// Tests for yanc::obs: the metrics registry, histogram percentile math,
// the trace ring, and the /yanc/.stats procfs-style subtree — including
// reading it through the shell coreutils, exactly how an administrator
// would (paper §5.4 applied to the controller's own telemetry).
#include <gtest/gtest.h>

#include "yanc/dist/replicated.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/obs/stats_fs.hpp"
#include "yanc/obs/trace.hpp"
#include "yanc/obs/trace_fs.hpp"
#include "yanc/obs/tracer.hpp"
#include "yanc/shell/coreutils.hpp"
#include "yanc/sw/switch.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::obs {
namespace {

// --- Registry -----------------------------------------------------------

TEST(RegistryTest, GetOrCreateReturnsStableHandles) {
  Registry reg;
  Counter* c = reg.counter("vfs/lookup_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reg.counter("vfs/lookup_total"), c);  // same handle
  c->add();
  c->add(4);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_TRUE(reg.contains("vfs/lookup_total"));
  EXPECT_FALSE(reg.contains("vfs/nope"));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  Registry reg;
  ASSERT_NE(reg.counter("x/metric_total"), nullptr);
  EXPECT_EQ(reg.gauge("x/metric_total"), nullptr);
  EXPECT_EQ(reg.histogram("x/metric_total"), nullptr);
  // The original registration is untouched.
  EXPECT_NE(reg.counter("x/metric_total"), nullptr);
}

TEST(RegistryTest, GenerationBumpsOnlyOnNewNames) {
  Registry reg;
  auto g0 = reg.generation();
  reg.counter("a/one_total");
  auto g1 = reg.generation();
  EXPECT_GT(g1, g0);
  reg.counter("a/one_total");  // get, not create
  EXPECT_EQ(reg.generation(), g1);
}

TEST(RegistryTest, ValueOfResolvesHistogramSuffixes) {
  Registry reg;
  reg.counter("vfs/read_total")->add(7);
  reg.gauge("netfs/watch_queue_depth")->set(-3);
  Histogram* h = reg.histogram("vfs/op_ns");
  for (int i = 0; i < 100; ++i) h->record(1000);

  EXPECT_EQ(reg.value_of("vfs/read_total").value_or(""), "7");
  EXPECT_EQ(reg.value_of("netfs/watch_queue_depth").value_or(""), "-3");
  EXPECT_EQ(reg.value_of("vfs/op_ns_count").value_or(""), "100");
  EXPECT_FALSE(reg.value_of("vfs/op_ns").has_value());  // bare histogram name
  EXPECT_FALSE(reg.value_of("vfs/missing_total").has_value());
  auto p99 = reg.value_of("vfs/op_ns_p99");
  ASSERT_TRUE(p99.has_value());
  // All samples identical: every percentile lands in the 1000 bucket.
  auto v = parse_u64(*p99);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(static_cast<double>(*v), 1000.0, 1000.0 * 0.07);
}

TEST(RegistryTest, ExportPathsAreSortedAndExpanded) {
  Registry reg;
  reg.histogram("b/lat_ns");
  reg.counter("a/ops_total");
  auto paths = reg.export_paths();
  ASSERT_EQ(paths.size(), 5u);
  EXPECT_EQ(paths[0], "a/ops_total");
  EXPECT_EQ(paths[1], "b/lat_ns_count");
  EXPECT_EQ(paths[2], "b/lat_ns_p50");
  EXPECT_EQ(paths[3], "b/lat_ns_p90");
  EXPECT_EQ(paths[4], "b/lat_ns_p99");
}

// --- Histogram percentile math ------------------------------------------

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  // Values below 16 get one bucket each: percentiles are exact.
  for (std::uint64_t v = 0; v < 10; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.percentile(10), 0u);
  EXPECT_EQ(h.percentile(50), 4u);
  EXPECT_EQ(h.percentile(100), 9u);
}

TEST(HistogramTest, UniformDistributionPercentiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.sum(), 10000ull * 10001 / 2);
  // Log-linear with 16 sub-buckets bounds relative error to ~6%; allow 10%.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 5000.0, 500.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(90)), 9000.0, 900.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 9900.0, 990.0);
}

TEST(HistogramTest, BimodalDistribution) {
  Histogram h;
  // 90% fast ops at ~100ns, 10% slow at ~1ms: p50 must report the fast
  // mode and p99 the slow mode — the whole point of keeping a histogram
  // instead of a mean (mean here is ~100,090ns, representing neither).
  for (int i = 0; i < 900; ++i) h.record(100);
  for (int i = 0; i < 100; ++i) h.record(1'000'000);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 100.0, 10.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 1e6, 1e5);
}

TEST(HistogramTest, EmptyAndOutlierClamp) {
  Histogram h;
  EXPECT_EQ(h.percentile(99), 0u);
  h.record(~0ull);  // beyond 2^40: clamped into the last decade, not UB
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.percentile(50), 1ull << 38);
}

// --- TraceRing ----------------------------------------------------------

TEST(TraceRingTest, RecordsAndDumps) {
  TraceRing ring(8);
  ring.event(100, "driver", "packet_in");
  ring.span(200, 50, "vfs", "write");
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "packet_in");
  EXPECT_EQ(events[1].dur_ns, 50u);
  EXPECT_EQ(ring.dump(), "0 100 0 driver packet_in\n1 200 50 vfs write\n");
}

TEST(TraceRingTest, WrapsKeepingNewestAndCountsDrops) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    ring.event(i * 10, "t", name);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest, and exactly the newest four survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    std::string expected = "e";
    expected += std::to_string(6 + i);
    EXPECT_EQ(events[i].name, expected);
  }
}

TEST(TraceRingTest, DumpAfterWrapIsOldestFirstAndKeepsLinkage) {
  TraceRing ring(4);
  // Six legacy records (no linkage), then four with causal fields; the
  // wrap must retain exactly the newest four, oldest first, and the
  // legacy line format must survive the linkage extension unchanged.
  for (std::uint64_t i = 0; i < 6; ++i) ring.event(i * 10, "t", "legacy");
  for (std::uint64_t i = 0; i < 4; ++i) {
    TraceEvent e;
    e.ts_ns = 100 + i;
    e.dur_ns = 7;
    e.component = "driver";
    e.name = "commit";
    e.trace_id = 42;
    e.span_id = 50 + i;
    e.parent_span_id = 42;
    e.queue_ns = 3;
    if (i == 3) e.note = "retry 1";
    ring.record(std::move(e));
  }
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);  // strictly increasing across the wrap
    EXPECT_EQ(events[i].span_id, 50 + i);
  }
  std::string dump = ring.dump();
  EXPECT_EQ(dump.find("legacy"), std::string::npos);  // evicted
  EXPECT_NE(dump.find("6 100 7 driver commit trace=42 span=50 parent=42 "
                      "queue_ns=3\n"),
            std::string::npos);
  EXPECT_NE(dump.find("9 103 7 driver commit trace=42 span=53 parent=42 "
                      "queue_ns=3 note=retry 1\n"),
            std::string::npos);
}

// --- Tracer -------------------------------------------------------------

TEST(TracerTest, MintIsGatedOnEnableAndSampling) {
  Tracer tracer;
  EXPECT_FALSE(bool(tracer.mint("vfs", "write")));  // off: zero ref
  tracer.start();
  auto a = tracer.mint("vfs", "write");
  EXPECT_TRUE(bool(a));
  EXPECT_EQ(a.trace_id, a.span_id);  // root span carries the trace id
  tracer.set_sample_every(4);
  std::size_t minted = 0;
  for (int i = 0; i < 16; ++i)
    if (tracer.mint("vfs", "write")) ++minted;
  EXPECT_EQ(minted, 4u);  // exactly 1-in-4
}

TEST(TracerTest, ChildSpansLinkToParents) {
  Tracer tracer;
  tracer.start();
  auto root = tracer.mint("sw", "packet_in", "port 3");
  auto child = tracer.child(root, "driver", "packet_in", 100, 250, 40);
  ASSERT_TRUE(bool(child));
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
  auto events = tracer.ring().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].note, "port 3");
  EXPECT_EQ(events[1].parent_span_id, root.span_id);
  EXPECT_EQ(events[1].dur_ns, 150u);
  EXPECT_EQ(events[1].queue_ns, 40u);
  // A zero parent disarms everything downstream.
  EXPECT_FALSE(bool(tracer.child({}, "driver", "packet_in", 0, 1, 0)));
}

TEST(TracerTest, TraceScopeInstallsAndRestores) {
  EXPECT_FALSE(bool(current_trace()));
  TraceRef outer{7, 9};
  {
    TraceScope scope(outer);
    EXPECT_EQ(current_trace().span_id, 9u);
    {
      TraceScope inner(TraceRef{7, 11});
      EXPECT_EQ(current_trace().span_id, 11u);
    }
    EXPECT_EQ(current_trace().span_id, 9u);
    // Regression: a zero scope is inert — it must NOT sever the active
    // context.  Nested ingress points (write_flow calling Vfs::write_file)
    // each open a scope on a possibly-zero mint; the inner zero must keep
    // the outer trace flowing into the watch events emitted under it.
    {
      TraceScope inert{TraceRef{}};
      EXPECT_EQ(current_trace().span_id, 9u);
    }
  }
  EXPECT_FALSE(bool(current_trace()));
}

TEST(TracerTest, SpanGuardRecordsServiceTimeAtDestruction) {
  Tracer& t = tracer();
  t.clear();
  t.start();
  auto root = t.mint("sw", "packet_in");
  {
    Span span(root, "driver", "packet_in", 11);
    ASSERT_TRUE(bool(span));
    EXPECT_EQ(span.ref().trace_id, root.trace_id);
    span.note("shard 2");
    // ref() is usable while still open: nested stages parent to it.
    TraceScope scope(span.ref());
    EXPECT_EQ(current_trace().span_id, span.ref().span_id);
  }
  auto events = t.ring().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].component, "driver");
  EXPECT_EQ(events[1].parent_span_id, root.span_id);
  EXPECT_EQ(events[1].queue_ns, 11u);
  EXPECT_EQ(events[1].note, "shard 2");
  // Inert span: no clock reads, no record, zero ref.
  { Span inert({}, "driver", "packet_in"); EXPECT_FALSE(bool(inert)); }
  EXPECT_EQ(t.ring().snapshot().size(), 2u);
  t.stop();
  t.clear();
}

TEST(TracerTest, WireAndPathHandoffsMeasureQueueWait) {
  Tracer tracer;
  tracer.start();
  auto ref = tracer.mint("sw", "packet_in");
  tracer.wire_put(1, 77, ref);
  tracer.path_put("/net/apps/l2/pkt_0", ref);
  EXPECT_EQ(tracer.inflight(), 2u);
  auto wire = tracer.wire_take(1, 77);
  ASSERT_TRUE(bool(wire));
  EXPECT_EQ(wire.ref.span_id, ref.span_id);
  EXPECT_GT(wire.ts_ns, 0u);
  EXPECT_FALSE(bool(tracer.wire_take(1, 77)));  // claimed exactly once
  auto path = tracer.path_take("/net/apps/l2/pkt_0");
  EXPECT_TRUE(bool(path));
  EXPECT_EQ(tracer.inflight(), 0u);
  // Zero refs are dropped at put(): a lost sampling draw costs nothing.
  tracer.wire_put(1, 78, {});
  EXPECT_EQ(tracer.inflight(), 0u);
}

TEST(TracerTest, TriggerKeepsAnchorsButFiltersFastSpans) {
  Tracer tracer;
  tracer.start();
  tracer.set_trigger_ns(1000);
  auto root = tracer.mint("vfs", "write");        // anchor: always kept
  (void)tracer.child(root, "driver", "commit", 100, 200, 0);    // 100ns: cut
  (void)tracer.child(root, "driver", "commit", 100, 200, 950);  // q+s >= 1µs
  tracer.annotate(root, "driver", "train_fault", "retry 1");  // always kept
  auto events = tracer.ring().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "write");
  EXPECT_EQ(events[1].queue_ns, 950u);
  EXPECT_EQ(events[2].note, "retry 1");
}

TEST(TracerTest, ClearDropsRingAndInflightEntries) {
  Tracer tracer;
  tracer.start();
  auto ref = tracer.mint("sw", "packet_in");
  tracer.wire_put(9, 1, ref);
  tracer.clear();
  EXPECT_EQ(tracer.ring().snapshot().size(), 0u);
  EXPECT_EQ(tracer.inflight(), 0u);
  // Ids keep rising: refs already in flight stay unique after clear().
  auto next = tracer.mint("sw", "packet_in");
  EXPECT_GT(next.trace_id, ref.trace_id);
}

// --- TraceFs ------------------------------------------------------------

class TraceFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(vfs->mkdir_p("/yanc/.trace", 0555, vfs::Credentials::root()));
    ASSERT_FALSE(
        vfs->mount("/yanc/.trace", std::make_shared<TraceFs>(&tracer)));
  }
  Status ctl(std::string_view line) {
    return vfs->write_file("/yanc/.trace/ctl", line);
  }
  std::string status() { return *vfs->read_file("/yanc/.trace/status"); }
  Tracer tracer;
  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
};

TEST_F(TraceFsTest, CtlGrammarDrivesTheTracer) {
  EXPECT_FALSE(tracer.enabled());
  ASSERT_FALSE(ctl("start"));
  EXPECT_TRUE(tracer.enabled());
  ASSERT_FALSE(ctl("sample_every=8 trigger=dur_ns>1ms capacity=512"));
  EXPECT_EQ(tracer.sample_every(), 8u);
  EXPECT_EQ(tracer.trigger_ns(), 1000000u);
  EXPECT_EQ(tracer.ring().capacity(), 512u);
  std::string st = status();
  EXPECT_NE(st.find("enabled 1"), std::string::npos);
  EXPECT_NE(st.find("sample_every 8"), std::string::npos);
  EXPECT_NE(st.find("trigger_ns 1000000"), std::string::npos);
  EXPECT_NE(st.find("capacity 512"), std::string::npos);
  ASSERT_FALSE(ctl("trigger=off stop"));
  EXPECT_EQ(tracer.trigger_ns(), 0u);
  EXPECT_FALSE(tracer.enabled());
}

TEST_F(TraceFsTest, CtlParsesThenAppliesSoBadLinesChangeNothing) {
  ASSERT_FALSE(ctl("start sample_every=4"));
  // One bad token poisons the whole line: nothing applies.
  EXPECT_EQ(ctl("sample_every=2 bogus=1"),
            make_error_code(Errc::invalid_argument));
  EXPECT_EQ(ctl("start stop"), make_error_code(Errc::invalid_argument));
  EXPECT_EQ(ctl("trigger=dur_ns>fast"),
            make_error_code(Errc::invalid_argument));
  EXPECT_TRUE(tracer.enabled());
  EXPECT_EQ(tracer.sample_every(), 4u);
  // Only ctl is writable.
  EXPECT_EQ(vfs->write_file("/yanc/.trace/status", "x"),
            make_error_code(Errc::access_denied));
  EXPECT_EQ(vfs->mkdir("/yanc/.trace/by-id/99"),
            make_error_code(Errc::not_permitted));
}

TEST_F(TraceFsTest, ByIdListsAndRendersSpanTrees) {
  tracer.start();
  auto root = tracer.mint("vfs", "write", "/net/switches/sw1/flows/f");
  auto commit = tracer.child(root, "driver", "commit", 2000, 2500, 300);
  (void)tracer.child(commit, "sw", "flow_mod", 2600, 2650, 50);
  auto other = tracer.mint("sw", "packet_in");
  ASSERT_TRUE(bool(other));

  auto ids = shell::ls(*vfs, "/yanc/.trace/by-id");
  ASSERT_TRUE(ids.ok());
  EXPECT_NE(ids->find(std::to_string(root.trace_id)), std::string::npos);
  EXPECT_NE(ids->find(std::to_string(other.trace_id)), std::string::npos);

  auto rendered =
      vfs->read_file("/yanc/.trace/by-id/" + std::to_string(root.trace_id));
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered->find("trace " + std::to_string(root.trace_id) +
                           ": 3 spans"),
            std::string::npos);
  // Children indent under their parents, queue/service split visible.
  EXPECT_NE(rendered->find("vfs/write"), std::string::npos);
  EXPECT_NE(rendered->find("\n  driver/commit"), std::string::npos);
  EXPECT_NE(rendered->find("\n    sw/flow_mod"), std::string::npos);
  EXPECT_NE(rendered->find("queue=300ns dur=500ns"), std::string::npos);
  // The other trace's spans stay out of this file.
  EXPECT_EQ(rendered->find("packet_in"), std::string::npos);

  EXPECT_EQ(vfs->read_file("/yanc/.trace/by-id/123456").error(),
            make_error_code(Errc::not_found));
}

TEST_F(TraceFsTest, ExportJsonIsChromeTraceEventShaped) {
  tracer.start();
  auto root = tracer.mint("vfs", "write", "a \"quoted\"\npath");
  (void)tracer.child(root, "driver", "commit", 1000, 4000, 500);
  auto json = vfs->read_file("/yanc/.trace/export.json");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->front(), '{');
  EXPECT_EQ(json->substr(json->size() - 3), "]}\n");
  EXPECT_NE(json->find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json->find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json->find("\"name\":\"driver/commit\""), std::string::npos);
  EXPECT_NE(json->find("\"queue_ns\":500"), std::string::npos);
  // Notes are escaped into valid JSON string literals; the body itself is
  // one line (the only newline is the trailing one).
  EXPECT_NE(json->find("a \\\"quoted\\\"\\npath"), std::string::npos);
  EXPECT_EQ(json->find('\n'), json->size() - 1);
}

TEST_F(TraceFsTest, ClearResetsCaptureAndByIdNamespace) {
  tracer.start();
  auto root = tracer.mint("vfs", "write");
  std::string file = "/yanc/.trace/by-id/" + std::to_string(root.trace_id);
  ASSERT_TRUE(vfs->read_file(file).ok());
  ASSERT_FALSE(ctl("clear"));
  EXPECT_EQ(tracer.ring().snapshot().size(), 0u);
  EXPECT_EQ(vfs->read_file(file).error(), make_error_code(Errc::not_found));
  EXPECT_NE(status().find("events 0"), std::string::npos);
}

// --- StatsFs ------------------------------------------------------------

TEST(StatsFsTest, MaterializesRegistryAsTree) {
  auto vfs = std::make_shared<vfs::Vfs>();
  auto mounted = mount_stats_fs(*vfs);
  ASSERT_TRUE(mounted.ok());

  // The Vfs registered its own metrics at construction; they must be
  // visible as files, via plain readdir/cat.
  auto entries = vfs->readdir("/yanc/.stats/vfs");
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> names;
  for (const auto& e : *entries) names.push_back(e.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "lookup_total"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "op_ns_p99"), names.end());
}

TEST(StatsFsTest, CountersReadThroughShellAndIncreaseMonotonically) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(mount_stats_fs(*vfs).ok());

  auto read_counter = [&](const std::string& path) {
    auto text = shell::cat(*vfs, path);
    EXPECT_TRUE(text.ok()) << path;
    auto v = parse_u64(trim(*text));
    EXPECT_TRUE(v.ok()) << *text;
    return *v;
  };

  std::uint64_t before = read_counter("/yanc/.stats/vfs/lookup_total");
  for (int i = 0; i < 128; ++i) (void)vfs->stat("/yanc");
  std::uint64_t after = read_counter("/yanc/.stats/vfs/lookup_total");
  EXPECT_GT(after, before);
  // Monotonic: a third read can only move forward.
  EXPECT_GE(read_counter("/yanc/.stats/vfs/lookup_total"), after);

  // The latency histogram samples 1-in-64 ops; 128 stats guarantee a hit.
  EXPECT_GT(read_counter("/yanc/.stats/vfs/op_ns_count"), 0u);
}

TEST(StatsFsTest, IsReadOnly) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(mount_stats_fs(*vfs).ok());
  EXPECT_TRUE(vfs->write_file("/yanc/.stats/vfs/lookup_total", "0"));
  EXPECT_TRUE(vfs->mkdir("/yanc/.stats/mine"));
  EXPECT_TRUE(vfs->unlink("/yanc/.stats/vfs/lookup_total"));
  // ...but stat and readdir are world-accessible.
  vfs::Credentials nobody;
  nobody.uid = 1000;
  nobody.gid = 1000;
  EXPECT_TRUE(vfs->stat("/yanc/.stats/vfs/lookup_total", nobody).ok());
}

TEST(StatsFsTest, NewMetricsAppearWithoutRemount) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(mount_stats_fs(*vfs).ok());
  EXPECT_FALSE(vfs->stat("/yanc/.stats/apps/route_total").ok());
  vfs->metrics()->counter("apps/route_total")->add(3);
  auto text = shell::cat(*vfs, "/yanc/.stats/apps/route_total");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(trim(*text), "3");
}

TEST(StatsFsTest, RefreshEmitsModifiedEventsForWatchers) {
  auto vfs = std::make_shared<vfs::Vfs>();
  auto mounted = mount_stats_fs(*vfs);
  ASSERT_TRUE(mounted.ok());
  auto stats = *mounted;

  auto queue = std::make_shared<vfs::WatchQueue>();
  auto watch =
      vfs->watch("/yanc/.stats/vfs/read_total", vfs::event::modified, queue);
  ASSERT_TRUE(watch.ok());

  (void)vfs->read_file("/yanc/.stats/vfs/lookup_total");  // bump read_total
  EXPECT_GT(stats->refresh(), 0u);
  auto event = queue->try_pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->is(vfs::event::modified));

  // No traffic => no change => no event.
  stats->refresh();
  std::size_t steady = queue->drain().size();
  stats->refresh();
  EXPECT_EQ(queue->drain().size(), steady - steady);  // empty after drain
}

TEST(StatsFsTest, TraceRingExposedAsFile) {
  auto vfs = std::make_shared<vfs::Vfs>();
  auto trace = std::make_shared<TraceRing>(16);
  ASSERT_TRUE(mount_stats_fs(*vfs, "/yanc/.stats", trace).ok());
  trace->event(42, "driver", "packet_in");
  auto text = shell::cat(*vfs, "/yanc/.stats/trace");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("driver packet_in"), std::string::npos);
}

TEST(StatsFsTest, LockEdgeGraphExposedAsFile) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(mount_stats_fs(*vfs).ok());
  auto text = shell::cat(*vfs, "/yanc/.stats/dbg/lock_edges");
  ASSERT_TRUE(text.ok());
#if YANC_DBG_LOCKS
  // Mounting alone nests stats_fs over obs_metrics (metric values are
  // read under the tree lock), so the dump already contains that edge,
  // in the "<held> <acquired> <site> <site>" format yanc-analyze diffs.
  EXPECT_NE(text->find("stats_fs obs_metrics "), std::string::npos);
#else
  EXPECT_TRUE(text->empty());  // release builds record no graph
#endif
}

// --- Cross-subsystem wiring ---------------------------------------------

TEST(ObsIntegrationTest, NetfsValidationMetrics) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  ASSERT_TRUE(mount_stats_fs(*vfs).ok());
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));

  auto& reg = *vfs->metrics();
  std::uint64_t writes = reg.counter("netfs/typed_write_total")->value();
  std::uint64_t fails = reg.counter("netfs/validation_fail_total")->value();

  // A valid typed write counts once; an invalid one also fails the count.
  EXPECT_FALSE(vfs->write_file("/net/switches/sw1/id", "0xab"));
  EXPECT_TRUE(vfs->write_file("/net/switches/sw1/id", "not hex"));
  EXPECT_GE(reg.counter("netfs/typed_write_total")->value(), writes + 2);
  EXPECT_EQ(reg.counter("netfs/validation_fail_total")->value(), fails + 1);
}

TEST(ObsIntegrationTest, SwitchHitMissCounters) {
  net::Scheduler scheduler;
  net::Network network(scheduler);
  Registry reg;

  sw::SwitchOptions opts;
  opts.datapath_id = 0x1;
  sw::Switch dp("dp1", opts, network);
  dp.add_port(1, MacAddress::from_u64(0x101), "eth0");
  dp.bind_metrics(reg);

  net::Host h1("h1", MacAddress::from_u64(0xa1), Ipv4Address(0x0a000001),
               network);
  ASSERT_TRUE(network.add_link(dp, 1, h1, 0).ok());
  h1.send_arp_request(Ipv4Address(0x0a000002));
  scheduler.run_until_idle();

  // No flow table entries yet: the frame is a miss.
  EXPECT_EQ(reg.counter("sw/flow_hit_total")->value(), 0u);
  EXPECT_GE(reg.counter("sw/flow_miss_total")->value(), 1u);
}

TEST(ObsIntegrationTest, ReplicationLagHistogram) {
  net::Scheduler scheduler;
  dist::ClusterOptions options;
  options.nodes = 2;
  options.link_latency = std::chrono::microseconds(500);
  dist::Cluster cluster(scheduler, options);

  Registry reg;
  cluster.fs(1)->bind_metrics(reg);

  auto fs0 = cluster.fs(0);
  auto switches = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(switches.ok());
  ASSERT_TRUE(fs0->mkdir(*switches, "sw1", 0755, {}).ok());
  scheduler.run_until_idle();

  Histogram* lag = reg.histogram("dist/replication_lag_ns");
  ASSERT_GE(lag->count(), 1u);
  // One simulated hop from the primary: lag == link latency (500us),
  // reported within the histogram's ~6% bucket resolution.
  EXPECT_NEAR(static_cast<double>(lag->percentile(50)), 500'000.0, 35'000.0);
  EXPECT_GE(reg.counter("dist/replication_apply_total")->value(), 1u);
}

}  // namespace
}  // namespace yanc::obs
