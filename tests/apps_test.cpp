// Tests for the system applications — and the Figure-1 architecture
// integration: switches <-> driver <-> yanc fs <-> {topology daemon,
// router, ARP responder, DHCP, auditor}, every box from the paper's
// diagram wired together over the simulated data plane.
#include <gtest/gtest.h>

#include "yanc/apps/arp_responder.hpp"
#include "yanc/apps/auditor.hpp"
#include "yanc/apps/dhcp_server.hpp"
#include "yanc/apps/learning_switch.hpp"
#include "yanc/apps/router.hpp"
#include "yanc/apps/static_flow_pusher.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/sw/switch.hpp"
#include "yanc/topo/discovery.hpp"

namespace yanc::apps {
namespace {

using flow::Action;
using flow::FlowSpec;

/// Full controller harness: N switches on a line topology, a host on the
/// first port of the first switch and the last port of the last switch.
class ControlPlane : public ::testing::Test {
 protected:
  ControlPlane() : network(scheduler) {}

  void SetUp() override {
    ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
    driver = std::make_unique<driver::OfDriver>(vfs);
  }

  sw::Switch* add_switch(std::uint64_t dpid, int ports = 3) {
    sw::SwitchOptions opts;
    opts.datapath_id = dpid;
    auto s = std::make_unique<sw::Switch>("dp" + std::to_string(dpid), opts,
                                          network);
    for (int p = 1; p <= ports; ++p)
      s->add_port(static_cast<std::uint16_t>(p),
                  MacAddress::from_u64((dpid << 8) | p), "eth");
    s->connect(driver->listener().connect());
    switches.push_back(std::move(s));
    return switches.back().get();
  }

  net::Host* add_host(const char* name, const char* mac, const char* ip,
                      sw::Switch* sw, std::uint16_t port) {
    hosts.push_back(std::make_unique<net::Host>(
        name, *MacAddress::parse(mac), *Ipv4Address::parse(ip), network));
    EXPECT_TRUE(network.add_link(*sw, port, *hosts.back(), 0).ok());
    return hosts.back().get();
  }

  /// Runs everything (driver, switches, apps hooked via `apps_poll`) to
  /// quiescence.
  void settle(const std::function<std::size_t()>& apps_poll = {}) {
    for (int round = 0; round < 60; ++round) {
      std::size_t work = driver->poll();
      for (auto& s : switches) work += s->pump();
      work += scheduler.run_until_idle();
      if (apps_poll) work += apps_poll();
      if (work == 0) break;
    }
  }

  /// Runs LLDP discovery to convergence.
  void discover() {
    topo::DiscoveryDaemon daemon(vfs);
    ASSERT_TRUE(daemon.step(0).ok());
    settle();
    ASSERT_TRUE(daemon.consume(0).ok());
    settle();
  }

  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
  net::Scheduler scheduler;
  net::Network network;
  std::unique_ptr<driver::OfDriver> driver;
  std::vector<std::unique_ptr<sw::Switch>> switches;
  std::vector<std::unique_ptr<net::Host>> hosts;
};

// --- static flow pusher ---------------------------------------------------------

TEST_F(ControlPlane, StaticFlowPusherSpecFormat) {
  auto* s1 = add_switch(1);
  settle();
  const char* spec = R"(
# comments and blank lines are skipped

switch=sw1 flow=arp match.dl_type=0x0806 action.out=flood priority=5
switch=sw1 flow=ssh-block match.tp_dst=22 action.drop=1 priority=200
bogus-line-without-equals switch=sw1
switch=sw1 flow=bad match.tp_dst=notanumber
)";
  auto report = push_flows(*vfs, spec);
  EXPECT_EQ(report.flows_written, 2u);
  EXPECT_EQ(report.lines_skipped, 4u);  // 2 blanks + comment + trailing
  EXPECT_EQ(report.errors.size(), 2u);
  settle();
  // Both good flows reached the switch.
  EXPECT_EQ(s1->table().size(), 2u);
  // The drop flow wins on priority for ssh.
  flow::FieldValues ssh;
  ssh.dl_type = 0x0800;
  ssh.nw_proto = 6;
  ssh.tp_dst = 22;
  const auto* hit = s1->mutable_table().lookup(ssh, 0, 64, false);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->spec.actions.empty());  // drop
}

// --- router end to end -------------------------------------------------------------

TEST_F(ControlPlane, Fig1Architecture_ReactiveRouterPingAcrossFabric) {
  // sw1:3 <-> sw2:3; h1 on sw1:1, h2 on sw2:2.
  auto* s1 = add_switch(1);
  auto* s2 = add_switch(2);
  ASSERT_TRUE(network.add_link(*s1, 3, *s2, 3).ok());
  auto* h1 = add_host("h1", "0a:00:00:00:00:01", "10.0.0.1", s1, 1);
  auto* h2 = add_host("h2", "0a:00:00:00:00:02", "10.0.0.2", s2, 2);
  settle();
  discover();

  RouterDaemon router(vfs);
  auto apps_poll = [&]() -> std::size_t {
    auto handled = router.poll();
    return handled ? *handled : 0;
  };
  // Prime the router's event buffer before traffic flows.
  ASSERT_TRUE(router.poll().ok());

  h1->ping(h2->ip());
  settle(apps_poll);

  EXPECT_EQ(h2->echo_requests_received(), 1u);
  EXPECT_EQ(h1->echo_replies_received(), 1u);
  EXPECT_GE(router.hosts_learned(), 2u);
  EXPECT_GE(router.paths_installed(), 1u);
  // The learned hosts are in hosts/ with resolvable locations.
  auto hosts_list = vfs->readdir("/net/hosts");
  ASSERT_TRUE(hosts_list.ok());
  EXPECT_EQ(hosts_list->size(), 2u);
  // Flows were installed on both switches (reactive exact-match paths).
  EXPECT_GE(s1->table().size(), 1u);
  EXPECT_GE(s2->table().size(), 1u);

  // A second ping rides the installed flows with no new controller work.
  auto floods_before = router.floods();
  h1->ping(h2->ip(), 2);
  settle(apps_poll);
  EXPECT_EQ(h1->echo_replies_received(), 2u);
  EXPECT_EQ(router.floods(), floods_before);
}

// --- ARP responder -------------------------------------------------------------------

TEST_F(ControlPlane, ArpResponderAnswersFromRegistry) {
  auto* s1 = add_switch(1);
  auto* h1 = add_host("h1", "0a:00:00:00:00:01", "10.0.0.1", s1, 1);
  settle();
  // h2 is known administratively (not attached anywhere near h1).
  netfs::NetDir net(vfs);
  ASSERT_FALSE(net.add_host("h2", *MacAddress::parse("0a:00:00:00:00:02"),
                            *Ipv4Address::parse("10.0.0.2")));

  ArpResponder responder(vfs);
  ASSERT_TRUE(responder.poll().ok());  // open the buffer
  h1->send_arp_request(*Ipv4Address::parse("10.0.0.2"));
  settle([&]() -> std::size_t {
    auto n = responder.poll();
    return n ? *n : 0;
  });
  EXPECT_EQ(responder.replies_sent(), 1u);
  EXPECT_EQ(h1->arp_lookup(*Ipv4Address::parse("10.0.0.2"))->to_string(),
            "0a:00:00:00:00:02");
  // Requests for unknown addresses are ignored.
  h1->send_arp_request(*Ipv4Address::parse("10.0.0.99"));
  settle([&]() -> std::size_t {
    auto n = responder.poll();
    return n ? *n : 0;
  });
  EXPECT_EQ(responder.replies_sent(), 1u);
}

// --- learning switch --------------------------------------------------------------------

TEST_F(ControlPlane, LearningSwitchLearnsAndInstalls) {
  auto* s1 = add_switch(1);
  auto* h1 = add_host("h1", "0a:00:00:00:00:01", "10.0.0.1", s1, 1);
  auto* h2 = add_host("h2", "0a:00:00:00:00:02", "10.0.0.2", s1, 2);
  settle();

  LearningSwitch l2(vfs);
  ASSERT_TRUE(l2.poll().ok());
  auto apps_poll = [&]() -> std::size_t {
    auto n = l2.poll();
    return n ? *n : 0;
  };

  h1->ping(h2->ip());
  settle(apps_poll);
  EXPECT_EQ(h1->echo_replies_received(), 1u);
  EXPECT_GE(l2.table_size(), 2u);       // learned both MACs
  EXPECT_GE(l2.flows_installed(), 1u);  // installed at least one flow
  EXPECT_GE(s1->table().size(), 1u);
}

// --- DHCP ------------------------------------------------------------------------------

TEST(DhcpCodec, RoundTrip) {
  DhcpMessage m;
  m.op = 1;
  m.xid = 0x12345678;
  m.chaddr = *MacAddress::parse("0a:00:00:00:00:07");
  m.msg_type = dhcp_type::request;
  m.requested_ip = *Ipv4Address::parse("10.0.0.100");
  auto decoded = decode_dhcp(encode_dhcp(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->xid, 0x12345678u);
  EXPECT_EQ(decoded->chaddr, m.chaddr);
  EXPECT_EQ(decoded->msg_type, dhcp_type::request);
  ASSERT_TRUE(decoded->requested_ip.has_value());
  EXPECT_EQ(decoded->requested_ip->to_string(), "10.0.0.100");
  // Garbage rejected.
  EXPECT_FALSE(decode_dhcp(std::vector<std::uint8_t>(10, 0)).ok());
}

TEST_F(ControlPlane, DhcpDiscoverOfferRequestAck) {
  auto* s1 = add_switch(1);
  auto* h1 = add_host("h1", "0a:00:00:00:00:01", "0.0.0.0", s1, 1);
  settle();

  DhcpServer server(vfs);
  ASSERT_TRUE(server.poll().ok());
  auto apps_poll = [&]() -> std::size_t {
    auto n = server.poll();
    return n ? *n : 0;
  };

  // The client broadcasts DISCOVER then REQUEST (hand-built frames).
  DhcpMessage discover;
  discover.op = 1;
  discover.xid = 0xaa;
  discover.chaddr = h1->mac();
  discover.msg_type = dhcp_type::discover;
  auto bcast = MacAddress::from_u64(0xffffffffffffull);
  h1->send_frame(net::build_udp(bcast, h1->mac(),
                                *Ipv4Address::parse("0.0.0.0"),
                                *Ipv4Address::parse("255.255.255.255"), 68,
                                67, encode_dhcp(discover)));
  settle(apps_poll);
  EXPECT_EQ(server.offers_sent(), 1u);

  DhcpMessage request = discover;
  request.msg_type = dhcp_type::request;
  request.requested_ip = *Ipv4Address::parse("10.0.0.100");
  h1->send_frame(net::build_udp(bcast, h1->mac(),
                                *Ipv4Address::parse("0.0.0.0"),
                                *Ipv4Address::parse("255.255.255.255"), 68,
                                67, encode_dhcp(request)));
  settle(apps_poll);
  EXPECT_EQ(server.acks_sent(), 1u);
  ASSERT_EQ(server.leases().size(), 1u);
  EXPECT_EQ(server.leases().begin()->second.to_string(), "10.0.0.100");
  // The lease registered a host object for the rest of the control plane.
  auto hosts_list = vfs->readdir("/net/hosts");
  ASSERT_TRUE(hosts_list.ok());
  ASSERT_EQ(hosts_list->size(), 1u);
  EXPECT_EQ(*vfs->read_file("/net/hosts/" + (*hosts_list)[0].name + "/ip"),
            "10.0.0.100");
}

// --- auditor -----------------------------------------------------------------------------

TEST_F(ControlPlane, AuditorCleanOnHealthyNetwork) {
  auto* s1 = add_switch(1);
  auto* s2 = add_switch(2);
  ASSERT_TRUE(network.add_link(*s1, 3, *s2, 3).ok());
  settle();
  discover();
  FlowSpec spec;
  spec.actions = {Action::output(3)};
  netfs::NetDir net(vfs);
  ASSERT_FALSE(net.switch_at("sw1").add_flow("good", spec));
  settle();

  auto report = run_audit(*vfs);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->to_text();
  EXPECT_EQ(report->switches, 2u);
  EXPECT_EQ(report->flows, 1u);
  EXPECT_EQ(report->committed_flows, 1u);
  EXPECT_EQ(report->links, 2u);  // both directions counted
}

TEST_F(ControlPlane, AuditorFindsProblems) {
  add_switch(1);
  settle();
  netfs::NetDir net(vfs);
  // Flow outputs to a port that does not exist.
  FlowSpec bad;
  bad.actions = {Action::output(99)};
  ASSERT_FALSE(net.switch_at("sw1").add_flow("bad-port", bad));
  // One-sided topology link.
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/ports/9"));
  ASSERT_FALSE(vfs->symlink("/net/switches/sw1/ports/1",
                            "/net/switches/sw1/ports/9/peer"));
  settle();

  auto report = run_audit(*vfs);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean());
  bool saw_port = false, saw_link = false;
  for (const auto& f : report->findings) {
    if (f.message.find("nonexistent port") != std::string::npos)
      saw_port = true;
    if (f.message.find("one-sided") != std::string::npos) saw_link = true;
  }
  EXPECT_TRUE(saw_port);
  EXPECT_TRUE(saw_link);

  // Cron-style: write the report into the filesystem.
  auto written = run_audit_to_file(*vfs);
  ASSERT_TRUE(written.ok());
  auto text = vfs->read_file("/var/log/yanc-audit.txt");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("ERROR"), std::string::npos);
}

}  // namespace
}  // namespace yanc::apps
