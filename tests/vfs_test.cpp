// Tests for the VFS substrate: MemFs POSIX semantics, ACLs, watches, the
// mount/resolution layer, namespaces, and file handles.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "yanc/obs/metrics.hpp"
#include "yanc/obs/tracer.hpp"
#include "yanc/vfs/memfs.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::vfs {
namespace {

Credentials alice() { return Credentials::user(1000, 100); }
Credentials bob() { return Credentials::user(1001, 100); }
Credentials carol() {
  Credentials c = Credentials::user(1002, 200);
  c.groups = {300};
  return c;
}

std::error_code err(Errc e) { return make_error_code(e); }

// --- MemFs basics ----------------------------------------------------------

class MemFsTest : public ::testing::Test {
 protected:
  // Tests exercise non-root identities directly in "/", so make it
  // world-writable (like /tmp without the sticky bit).
  void SetUp() override { ASSERT_FALSE(fs.chmod(fs.root(), 0777, root)); }
  MemFs fs;
  Credentials root = Credentials::root();
};

TEST_F(MemFsTest, RootExists) {
  auto st = fs.getattr(fs.root());
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->is_dir());
  EXPECT_EQ(st->nlink, 2u);
}

TEST_F(MemFsTest, CreateLookupReadWrite) {
  auto file = fs.create(fs.root(), "hello", 0644, root);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(*fs.lookup(fs.root(), "hello"), *file);

  auto n = fs.write(*file, 0, "world", root);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(*fs.read(*file, 0, 100, root), "world");
  EXPECT_EQ(*fs.read(*file, 2, 2, root), "rl");
  EXPECT_EQ(*fs.read(*file, 10, 5, root), "");  // past EOF
}

TEST_F(MemFsTest, SparseWriteZeroFills) {
  auto file = fs.create(fs.root(), "sparse", 0644, root);
  ASSERT_TRUE(fs.write(*file, 4, "x", root).ok());
  auto data = fs.read(*file, 0, 100, root);
  EXPECT_EQ(*data, std::string("\0\0\0\0x", 5));
}

TEST_F(MemFsTest, DuplicateCreateFails) {
  ASSERT_TRUE(fs.create(fs.root(), "a", 0644, root).ok());
  EXPECT_EQ(fs.create(fs.root(), "a", 0644, root).error(), err(Errc::exists));
  EXPECT_EQ(fs.mkdir(fs.root(), "a", 0755, root).error(), err(Errc::exists));
}

TEST_F(MemFsTest, InvalidNamesRejected) {
  EXPECT_EQ(fs.create(fs.root(), "", 0644, root).error(),
            err(Errc::invalid_argument));
  EXPECT_EQ(fs.create(fs.root(), ".", 0644, root).error(),
            err(Errc::invalid_argument));
  EXPECT_EQ(fs.create(fs.root(), "..", 0644, root).error(),
            err(Errc::invalid_argument));
  EXPECT_EQ(fs.create(fs.root(), "a/b", 0644, root).error(),
            err(Errc::invalid_argument));
  EXPECT_EQ(fs.create(fs.root(), std::string(300, 'x'), 0644, root).error(),
            err(Errc::name_too_long));
}

TEST_F(MemFsTest, MkdirNlinkAccounting) {
  auto dir = fs.mkdir(fs.root(), "d", 0755, root);
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(fs.getattr(fs.root())->nlink, 3u);  // root, root/., d/..
  auto sub = fs.mkdir(*dir, "sub", 0755, root);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(fs.getattr(*dir)->nlink, 3u);
  ASSERT_FALSE(fs.rmdir(*dir, "sub", root));
  EXPECT_EQ(fs.getattr(*dir)->nlink, 2u);
}

TEST_F(MemFsTest, ReaddirSorted) {
  ASSERT_TRUE(fs.create(fs.root(), "b", 0644, root).ok());
  ASSERT_TRUE(fs.create(fs.root(), "a", 0644, root).ok());
  ASSERT_TRUE(fs.mkdir(fs.root(), "c", 0755, root).ok());
  auto entries = fs.readdir(fs.root());
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "a");
  EXPECT_EQ((*entries)[1].name, "b");
  EXPECT_EQ((*entries)[2].name, "c");
  EXPECT_EQ((*entries)[2].type, FileType::directory);
}

TEST_F(MemFsTest, ReaddirOnFileFails) {
  auto f = fs.create(fs.root(), "f", 0644, root);
  EXPECT_EQ(fs.readdir(*f).error(), err(Errc::not_dir));
  EXPECT_EQ(fs.lookup(*f, "x").error(), err(Errc::not_dir));
}

TEST_F(MemFsTest, UnlinkFrees) {
  auto f = fs.create(fs.root(), "f", 0644, root);
  ASSERT_TRUE(fs.write(*f, 0, "data", root).ok());
  EXPECT_EQ(fs.bytes_used(), 4u);
  ASSERT_FALSE(fs.unlink(fs.root(), "f", root));
  EXPECT_EQ(fs.bytes_used(), 0u);
  EXPECT_EQ(fs.getattr(*f).error(), err(Errc::not_found));
  EXPECT_EQ(fs.unlink(fs.root(), "f", root), err(Errc::not_found));
}

TEST_F(MemFsTest, UnlinkDirectoryFails) {
  ASSERT_TRUE(fs.mkdir(fs.root(), "d", 0755, root).ok());
  EXPECT_EQ(fs.unlink(fs.root(), "d", root), err(Errc::is_dir));
}

TEST_F(MemFsTest, RmdirNonEmptyFails) {
  auto d = fs.mkdir(fs.root(), "d", 0755, root);
  ASSERT_TRUE(fs.create(*d, "f", 0644, root).ok());
  EXPECT_EQ(fs.rmdir(fs.root(), "d", root), err(Errc::not_empty));
  ASSERT_FALSE(fs.unlink(*d, "f", root));
  EXPECT_FALSE(fs.rmdir(fs.root(), "d", root));
}

TEST_F(MemFsTest, HardLinks) {
  auto f = fs.create(fs.root(), "f", 0644, root);
  auto d = fs.mkdir(fs.root(), "d", 0755, root);
  ASSERT_FALSE(fs.link(*f, *d, "f2", root));
  EXPECT_EQ(fs.getattr(*f)->nlink, 2u);
  ASSERT_TRUE(fs.write(*f, 0, "shared", root).ok());
  EXPECT_EQ(*fs.read(*fs.lookup(*d, "f2"), 0, 100, root), "shared");
  // Unlinking one name keeps the inode alive.
  ASSERT_FALSE(fs.unlink(fs.root(), "f", root));
  EXPECT_EQ(fs.getattr(*f)->nlink, 1u);
  EXPECT_EQ(*fs.read(*f, 0, 100, root), "shared");
  // Hard links to directories are forbidden.
  EXPECT_EQ(fs.link(*d, fs.root(), "d2", root), err(Errc::not_permitted));
}

TEST_F(MemFsTest, SymlinkReadlink) {
  auto link = fs.symlink(fs.root(), "l", "/target/path", root);
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(*fs.readlink(*link), "/target/path");
  EXPECT_TRUE(fs.getattr(*link)->is_symlink());
  auto f = fs.create(fs.root(), "f", 0644, root);
  EXPECT_EQ(fs.readlink(*f).error(), err(Errc::invalid_argument));
}

TEST_F(MemFsTest, RenameBasic) {
  auto f = fs.create(fs.root(), "a", 0644, root);
  ASSERT_TRUE(fs.write(*f, 0, "x", root).ok());
  ASSERT_FALSE(fs.rename(fs.root(), "a", fs.root(), "b", root));
  EXPECT_EQ(fs.lookup(fs.root(), "a").error(), err(Errc::not_found));
  EXPECT_EQ(*fs.lookup(fs.root(), "b"), *f);
}

TEST_F(MemFsTest, RenameReplacesFile) {
  auto a = fs.create(fs.root(), "a", 0644, root);
  auto b = fs.create(fs.root(), "b", 0644, root);
  ASSERT_TRUE(fs.write(*b, 0, "old", root).ok());
  ASSERT_FALSE(fs.rename(fs.root(), "a", fs.root(), "b", root));
  EXPECT_EQ(*fs.lookup(fs.root(), "b"), *a);
  EXPECT_EQ(fs.getattr(*b).error(), err(Errc::not_found));
}

TEST_F(MemFsTest, RenameDirOverNonEmptyDirFails) {
  auto a = fs.mkdir(fs.root(), "a", 0755, root);
  auto b = fs.mkdir(fs.root(), "b", 0755, root);
  ASSERT_TRUE(fs.create(*b, "f", 0644, root).ok());
  EXPECT_EQ(fs.rename(fs.root(), "a", fs.root(), "b", root),
            err(Errc::not_empty));
  ASSERT_FALSE(fs.unlink(*b, "f", root));
  EXPECT_FALSE(fs.rename(fs.root(), "a", fs.root(), "b", root));
  EXPECT_EQ(*fs.lookup(fs.root(), "b"), *a);
}

TEST_F(MemFsTest, RenameTypeMismatch) {
  ASSERT_TRUE(fs.mkdir(fs.root(), "d", 0755, root).ok());
  ASSERT_TRUE(fs.create(fs.root(), "f", 0644, root).ok());
  EXPECT_EQ(fs.rename(fs.root(), "d", fs.root(), "f", root),
            err(Errc::not_dir));
  EXPECT_EQ(fs.rename(fs.root(), "f", fs.root(), "d", root),
            err(Errc::is_dir));
}

TEST_F(MemFsTest, RenameIntoOwnSubtreeFails) {
  auto a = fs.mkdir(fs.root(), "a", 0755, root);
  auto b = fs.mkdir(*a, "b", 0755, root);
  EXPECT_EQ(fs.rename(fs.root(), "a", *b, "a2", root),
            err(Errc::invalid_argument));
}

TEST_F(MemFsTest, RenameNoopSamePath) {
  ASSERT_TRUE(fs.create(fs.root(), "a", 0644, root).ok());
  EXPECT_FALSE(fs.rename(fs.root(), "a", fs.root(), "a", root));
}

TEST_F(MemFsTest, TruncateGrowsAndShrinks) {
  auto f = fs.create(fs.root(), "f", 0644, root);
  ASSERT_TRUE(fs.write(*f, 0, "abcdef", root).ok());
  ASSERT_FALSE(fs.truncate(*f, 3, root));
  EXPECT_EQ(*fs.read(*f, 0, 100, root), "abc");
  ASSERT_FALSE(fs.truncate(*f, 5, root));
  EXPECT_EQ(*fs.read(*f, 0, 100, root), std::string("abc\0\0", 5));
  EXPECT_EQ(fs.bytes_used(), 5u);
}

TEST_F(MemFsTest, VersionBumpsOnChange) {
  auto f = fs.create(fs.root(), "f", 0644, root);
  auto v0 = fs.getattr(*f)->version;
  ASSERT_TRUE(fs.write(*f, 0, "x", root).ok());
  auto v1 = fs.getattr(*f)->version;
  EXPECT_GT(v1, v0);
  ASSERT_FALSE(fs.chmod(*f, 0600, root));
  EXPECT_GT(fs.getattr(*f)->version, v1);
}

// --- permissions -------------------------------------------------------------

TEST_F(MemFsTest, OwnerGroupOtherBits) {
  auto f = fs.create(fs.root(), "f", 0640, alice());
  ASSERT_TRUE(f.ok());
  // Owner: read+write.
  EXPECT_FALSE(fs.access(*f, 6, alice()));
  // Same group (bob gid=100): read only.
  EXPECT_FALSE(fs.access(*f, 4, bob()));
  EXPECT_EQ(fs.access(*f, 2, bob()), err(Errc::access_denied));
  // Other (carol): nothing.
  EXPECT_EQ(fs.access(*f, 4, carol()), err(Errc::access_denied));
  // Root bypasses.
  EXPECT_FALSE(fs.access(*f, 7, root));
}

TEST_F(MemFsTest, SupplementaryGroups) {
  auto f = fs.create(fs.root(), "f", 0040, Credentials{1000, 300, {}});
  // carol has supplementary group 300.
  EXPECT_FALSE(fs.access(*f, 4, carol()));
  EXPECT_EQ(fs.access(*f, 4, bob()), err(Errc::access_denied));
}

TEST_F(MemFsTest, WriteDeniedWithoutPermission) {
  auto f = fs.create(fs.root(), "f", 0444, alice());
  EXPECT_EQ(fs.write(*f, 0, "x", bob()).error(), err(Errc::access_denied));
  EXPECT_EQ(fs.truncate(*f, 0, bob()), err(Errc::access_denied));
  // Even the owner respects mode bits (no write bit set).
  EXPECT_EQ(fs.write(*f, 0, "x", alice()).error(), err(Errc::access_denied));
}

TEST_F(MemFsTest, CreateRequiresParentWrite) {
  auto dir = fs.mkdir(fs.root(), "d", 0555, alice());
  EXPECT_EQ(fs.create(*dir, "f", 0644, alice()).error(),
            err(Errc::access_denied));
  EXPECT_EQ(fs.mkdir(*dir, "sub", 0755, bob()).error(),
            err(Errc::access_denied));
}

TEST_F(MemFsTest, ChmodOnlyOwnerOrRoot) {
  auto f = fs.create(fs.root(), "f", 0644, alice());
  EXPECT_EQ(fs.chmod(*f, 0600, bob()), err(Errc::not_permitted));
  EXPECT_FALSE(fs.chmod(*f, 0600, alice()));
  EXPECT_EQ(fs.getattr(*f)->mode, 0600u);
  EXPECT_FALSE(fs.chmod(*f, 0644, root));
}

TEST_F(MemFsTest, ChownRules) {
  auto f = fs.create(fs.root(), "f", 0644, alice());
  // Non-root cannot give the file away.
  EXPECT_EQ(fs.chown(*f, 1001, 100, alice()), err(Errc::not_permitted));
  // Owner may change group to one of their groups.
  Credentials alice_with_group = alice();
  alice_with_group.groups = {250};
  EXPECT_FALSE(fs.chown(*f, 1000, 250, alice_with_group));
  EXPECT_EQ(fs.getattr(*f)->gid, 250u);
  // Root can do anything.
  EXPECT_FALSE(fs.chown(*f, 1, 2, root));
}

TEST_F(MemFsTest, StickyDirectoryDeletion) {
  auto shared = fs.mkdir(fs.root(), "tmp", 01777, root);
  auto f = fs.create(*shared, "af", 0644, alice());
  ASSERT_TRUE(f.ok());
  // bob cannot delete alice's file from a sticky dir.
  EXPECT_EQ(fs.unlink(*shared, "af", bob()), err(Errc::not_permitted));
  // alice (file owner) can.
  EXPECT_FALSE(fs.unlink(*shared, "af", alice()));
}

// --- ACLs -----------------------------------------------------------------

TEST(AclTest, FromModeMatchesModeBits) {
  Acl acl = Acl::from_mode(0640);
  EXPECT_FALSE(acl.validate());
  EXPECT_TRUE(acl.permits(Credentials::user(10, 20), 10, 20, 6));
  EXPECT_TRUE(acl.permits(Credentials::user(11, 20), 10, 20, 4));
  EXPECT_FALSE(acl.permits(Credentials::user(11, 20), 10, 20, 2));
  EXPECT_FALSE(acl.permits(Credentials::user(11, 21), 10, 20, 4));
}

TEST(AclTest, NamedUserEntryWithMask) {
  auto acl = Acl::parse_text("user::rw-,group::r--,other::---,"
                             "user:1000:rw-,mask::r--");
  ASSERT_TRUE(acl.ok());
  // Named user is capped by the mask: rw- & r-- = r--.
  EXPECT_TRUE(acl->permits(Credentials::user(1000, 5), 1, 2, 4));
  EXPECT_FALSE(acl->permits(Credentials::user(1000, 5), 1, 2, 2));
}

TEST(AclTest, GroupEntriesAnyMatchGrants) {
  auto acl = Acl::parse_text("user::rwx,group::---,other::---,"
                             "group:300:rw-,mask::rwx");
  ASSERT_TRUE(acl.ok());
  Credentials c = Credentials::user(50, 200);
  c.groups = {300};
  EXPECT_TRUE(acl->permits(c, 1, 200, 6));
  // Group matched (group_obj with ---), so "other" is NOT consulted.
  auto acl2 = Acl::parse_text("user::rwx,group::---,other::rwx");
  ASSERT_TRUE(acl2.ok());
  EXPECT_FALSE(acl2->permits(Credentials::user(50, 7), 1, 7, 4));
}

TEST(AclTest, ValidationRules) {
  EXPECT_TRUE(Acl::parse_text("user::rw-").error());  // missing entries
  EXPECT_TRUE(
      Acl::parse_text("user::rw-,group::r--,other::r--,user:5:rw-").error());
  EXPECT_FALSE(Acl::parse_text(
      "user::rw-,group::r--,other::r--,user:5:rw-,mask::rw-").error());
  EXPECT_TRUE(Acl::parse_text("bogus::rw-").error());
  EXPECT_TRUE(Acl::parse_text("user::rwz").error());
}

TEST(AclTest, EncodeDecodeRoundTrip) {
  auto acl = *Acl::parse_text("user::rwx,group::r-x,other::--x,"
                              "user:42:rw-,mask::rwx");
  auto decoded = Acl::decode(acl.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, acl);
  EXPECT_EQ(decoded->to_text(), acl.to_text());
  EXPECT_TRUE(Acl::decode({9, 9, 9}).error());
}

TEST_F(MemFsTest, AclOverridesModeBits) {
  auto f = fs.create(fs.root(), "f", 0600, alice());
  Acl acl = Acl::from_mode(0600);
  acl.add({AclTag::user, 1001, 6});  // grant bob rw
  acl.add({AclTag::mask, 0, 7});
  ASSERT_FALSE(fs.setxattr(*f, kAclXattr, acl.encode(), alice()));
  EXPECT_FALSE(fs.access(*f, 6, bob()));
  EXPECT_EQ(fs.access(*f, 4, carol()), err(Errc::access_denied));
  // Removing the ACL restores plain mode checks.
  ASSERT_FALSE(fs.removexattr(*f, kAclXattr, alice()));
  EXPECT_EQ(fs.access(*f, 4, bob()), err(Errc::access_denied));
}

TEST_F(MemFsTest, InvalidAclRejected) {
  auto f = fs.create(fs.root(), "f", 0600, alice());
  EXPECT_EQ(fs.setxattr(*f, kAclXattr, {1, 2, 3}, alice()),
            err(Errc::invalid_argument));
}

// --- xattrs ------------------------------------------------------------------

TEST_F(MemFsTest, XattrCrud) {
  auto f = fs.create(fs.root(), "f", 0644, alice());
  ASSERT_FALSE(fs.setxattr(*f, "user.consistency", {'e', 'v'}, alice()));
  ASSERT_FALSE(fs.setxattr(*f, "user.note", {'x'}, alice()));
  auto v = fs.getxattr(*f, "user.consistency");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<std::uint8_t>{'e', 'v'}));
  auto names = fs.listxattr(*f);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
  ASSERT_FALSE(fs.removexattr(*f, "user.note", alice()));
  EXPECT_EQ(fs.getxattr(*f, "user.note").error(), err(Errc::not_found));
}

TEST_F(MemFsTest, SystemXattrNeedsOwnership) {
  auto f = fs.create(fs.root(), "f", 0666, alice());
  EXPECT_EQ(fs.setxattr(*f, "system.thing", {1}, bob()),
            err(Errc::not_permitted));
  EXPECT_FALSE(fs.setxattr(*f, "user.thing", {1}, bob()));  // has write perm
}

// --- quotas -------------------------------------------------------------------

TEST(MemFsQuota, InodeLimit) {
  MemFs fs(MemFsOptions{.max_inodes = 3});  // root + 2
  Credentials root;
  ASSERT_TRUE(fs.create(fs.root(), "a", 0644, root).ok());
  ASSERT_TRUE(fs.create(fs.root(), "b", 0644, root).ok());
  EXPECT_EQ(fs.create(fs.root(), "c", 0644, root).error(),
            err(Errc::no_space));
  // Deleting frees quota.
  ASSERT_FALSE(fs.unlink(fs.root(), "a", root));
  EXPECT_TRUE(fs.create(fs.root(), "c", 0644, root).ok());
}

TEST(MemFsQuota, ByteLimit) {
  MemFs fs(MemFsOptions{.max_bytes = 10});
  Credentials root;
  auto f = fs.create(fs.root(), "f", 0644, root);
  ASSERT_TRUE(fs.write(*f, 0, "0123456789", root).ok());
  EXPECT_EQ(fs.write(*f, 10, "x", root).error(), err(Errc::no_space));
  // Overwrite in place is fine.
  EXPECT_TRUE(fs.write(*f, 0, "abc", root).ok());
}

// --- watches ------------------------------------------------------------------

TEST_F(MemFsTest, WatchCreateDelete) {
  auto q = std::make_shared<WatchQueue>();
  ASSERT_TRUE(fs.watch(fs.root(), event::created | event::deleted, q).ok());
  ASSERT_TRUE(fs.create(fs.root(), "f", 0644, root).ok());
  ASSERT_FALSE(fs.unlink(fs.root(), "f", root));
  auto e1 = q->try_pop();
  ASSERT_TRUE(e1.has_value());
  EXPECT_TRUE(e1->is(event::created));
  EXPECT_EQ(e1->name, "f");
  auto e2 = q->try_pop();
  ASSERT_TRUE(e2.has_value());
  EXPECT_TRUE(e2->is(event::deleted));
  EXPECT_FALSE(q->try_pop().has_value());
}

TEST_F(MemFsTest, WatchMaskFilters) {
  auto q = std::make_shared<WatchQueue>();
  ASSERT_TRUE(fs.watch(fs.root(), event::deleted, q).ok());
  ASSERT_TRUE(fs.create(fs.root(), "f", 0644, root).ok());  // not delivered
  EXPECT_FALSE(q->try_pop().has_value());
}

TEST_F(MemFsTest, WatchModifyOnFileAndParent) {
  auto f = fs.create(fs.root(), "f", 0644, root);
  auto qf = std::make_shared<WatchQueue>();
  auto qd = std::make_shared<WatchQueue>();
  ASSERT_TRUE(fs.watch(*f, event::modified, qf).ok());
  ASSERT_TRUE(fs.watch(fs.root(), event::modified, qd).ok());
  ASSERT_TRUE(fs.write(*f, 0, "x", root).ok());
  auto ef = qf->try_pop();
  ASSERT_TRUE(ef.has_value());
  EXPECT_TRUE(ef->name.empty());
  auto ed = qd->try_pop();
  ASSERT_TRUE(ed.has_value());
  EXPECT_EQ(ed->name, "f");  // directory watch names the child
}

TEST_F(MemFsTest, RenameEmitsPairedCookies) {
  auto d1 = fs.mkdir(fs.root(), "d1", 0755, root);
  auto d2 = fs.mkdir(fs.root(), "d2", 0755, root);
  ASSERT_TRUE(fs.create(*d1, "f", 0644, root).ok());
  auto q1 = std::make_shared<WatchQueue>();
  auto q2 = std::make_shared<WatchQueue>();
  ASSERT_TRUE(fs.watch(*d1, event::all, q1).ok());
  ASSERT_TRUE(fs.watch(*d2, event::all, q2).ok());
  ASSERT_FALSE(fs.rename(*d1, "f", *d2, "g", root));
  auto from = q1->try_pop();
  auto to = q2->try_pop();
  ASSERT_TRUE(from.has_value());
  ASSERT_TRUE(to.has_value());
  EXPECT_TRUE(from->is(event::moved_from));
  EXPECT_TRUE(to->is(event::moved_to));
  EXPECT_EQ(from->cookie, to->cookie);
  EXPECT_NE(from->cookie, 0u);
  EXPECT_EQ(from->name, "f");
  EXPECT_EQ(to->name, "g");
}

TEST_F(MemFsTest, DeleteSelfOnWatchedNode) {
  auto f = fs.create(fs.root(), "f", 0644, root);
  auto q = std::make_shared<WatchQueue>();
  ASSERT_TRUE(fs.watch(*f, event::delete_self, q).ok());
  ASSERT_FALSE(fs.unlink(fs.root(), "f", root));
  auto e = q->try_pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->is(event::delete_self));
}

TEST(WatchQueueTest, OverflowCollapsesTail) {
  WatchQueue q(2);
  q.push({event::created, 1, "a", 0});
  q.push({event::created, 1, "b", 0});
  q.push({event::created, 1, "c", 0});  // overflow marker
  q.push({event::created, 1, "d", 0});  // dropped silently
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.overflowed());
  q.drain();
  EXPECT_FALSE(q.overflowed());
  q.push({event::created, 1, "e", 0});
  EXPECT_EQ(q.size(), 1u);
}

TEST(WatchQueueTest, PopWaitTimesOut) {
  WatchQueue q;
  EXPECT_FALSE(q.pop_wait(std::chrono::milliseconds(5)).has_value());
  q.push({event::created, 1, "a", 0});
  EXPECT_TRUE(q.pop_wait(std::chrono::milliseconds(5)).has_value());
}

TEST(WatchQueueTest, TryPopBatchDrainsInOrder) {
  WatchQueue q;
  q.push({event::created, 1, "a", 0});
  q.push({event::modified, 1, "a", 0});
  q.push({event::deleted, 1, "a", 0});
  std::vector<Event> out;
  EXPECT_EQ(q.try_pop_batch(out, 2), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].is(event::created));
  EXPECT_TRUE(out[1].is(event::modified));
  out.clear();
  EXPECT_EQ(q.try_pop_batch(out, 10), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].is(event::deleted));
  out.clear();
  EXPECT_EQ(q.try_pop_batch(out, 10), 0u);
}

TEST(WatchQueueTest, PopWaitBatchTimesOutThenDrains) {
  WatchQueue q;
  EXPECT_TRUE(q.pop_wait_batch(4, std::chrono::milliseconds(5)).empty());
  q.push({event::created, 1, "a", 0});
  q.push({event::created, 1, "b", 0});
  q.push({event::created, 1, "c", 0});
  auto got = q.pop_wait_batch(2, std::chrono::milliseconds(5));
  ASSERT_EQ(got.size(), 2u);  // capped at max, front first
  EXPECT_EQ(got[0].name, "a");
  EXPECT_EQ(got[1].name, "b");
  got = q.pop_wait_batch(2, std::chrono::milliseconds(5));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].name, "c");
}

TEST(WatchQueueTest, CoalescingMergesOnlyAdjacentSamePathModify) {
  WatchQueue q;
  q.set_coalescing(true);
  obs::Registry registry;
  auto* coalesced = registry.counter("q/coalesced");
  q.bind_metrics(registry.gauge("q/depth"), registry.counter("q/drops"),
                 coalesced);
  q.push({event::modified, 1, "v", 0});
  q.push({event::modified, 1, "v", 0});  // tail duplicate: merged
  q.push({event::modified, 1, "v", 0});  // merged again
  q.push({event::modified, 2, "v", 0});  // different node: kept
  q.push({event::modified, 1, "v", 0});  // no longer adjacent: kept
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(coalesced->value(), 2u);
}

TEST(WatchQueueTest, CoalescingNeverCrossesTerminalOrMixedEvents) {
  WatchQueue q;
  q.set_coalescing(true);
  // A modify after a terminal event on the same path must survive: it
  // announces the *new* incarnation's state.
  q.push({event::modified, 1, "v", 0});
  q.push({event::deleted, 1, "v", 0});
  q.push({event::modified, 1, "v", 0});
  EXPECT_EQ(q.size(), 3u);
  // Mixed-mask events never merge even when adjacent and same-path.
  WatchQueue q2;
  q2.set_coalescing(true);
  q2.push({event::created, 1, "v", 0});
  q2.push({event::modified, 1, "v", 0});
  EXPECT_EQ(q2.size(), 2u);
}

TEST(WatchQueueTest, CoalescingMergesAbsorbedTraceRefs) {
  WatchQueue q;
  q.set_coalescing(true);
  auto traced = [](std::uint64_t span, std::uint64_t ts) {
    Event e{event::modified, 1, "v", 0};
    e.trace.push_back(obs::TraceRef{7, span});
    e.trace_ts_ns = ts;
    return e;
  };
  q.push(traced(10, 500));
  q.push(traced(11, 900));  // merged into the tail: ref absorbed
  Event untraced{event::modified, 1, "v", 0};
  q.push(untraced);         // merged; nothing to absorb
  auto got = q.try_pop();
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->trace.size(), 2u);
  EXPECT_EQ(got->trace[0].span_id, 10u);
  EXPECT_EQ(got->trace[1].span_id, 11u);
  // Queue-wait is measured from the OLDEST absorbed work.
  EXPECT_EQ(got->trace_ts_ns, 500u);
  EXPECT_FALSE(q.try_pop().has_value());

  // The absorbed-ref list is bounded: a hot path cannot grow one event
  // without limit.
  WatchQueue q2;
  q2.set_coalescing(true);
  for (std::uint64_t i = 0; i < kMaxTraceRefs + 8; ++i)
    q2.push(traced(100 + i, 1000 + i));
  auto capped = q2.try_pop();
  ASSERT_TRUE(capped.has_value());
  EXPECT_EQ(capped->trace.size(), kMaxTraceRefs);
  EXPECT_EQ(capped->trace_ts_ns, 1000u);
}

TEST(WatchQueueTest, CoalescingOffKeepsDuplicates) {
  WatchQueue q;  // default: no coalescing
  q.push({event::modified, 1, "v", 0});
  q.push({event::modified, 1, "v", 0});
  EXPECT_EQ(q.size(), 2u);
}

TEST(WatchQueueTest, OverflowPushWakesBlockedConsumer) {
  // Regression: push() used to enqueue the overflow marker without
  // notifying the condition variable, so a consumer already blocked in
  // pop_wait slept through it until the full timeout expired (wait_until's
  // final predicate check would then find the marker — masking the lost
  // wakeup as latency, not loss).  Capacity 0 makes every push take the
  // overflow branch, so the consumer is deterministically blocked on an
  // empty queue when the marker lands.
  WatchQueue q(0);
  obs::Registry registry;
  auto* depth = registry.gauge("q/depth");
  auto* drops = registry.counter("q/drops");
  q.bind_metrics(depth, drops);

  std::optional<Event> got;
  std::chrono::steady_clock::duration waited{};
  std::thread consumer([&] {
    auto start = std::chrono::steady_clock::now();
    got = q.pop_wait(std::chrono::seconds(3));
    waited = std::chrono::steady_clock::now() - start;
  });
  // Let the consumer block, then flood.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  q.push({event::created, 1, "a", 0});
  consumer.join();

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->is(event::overflow));
  // Well under the 3 s timeout: the push itself woke the consumer.
  EXPECT_LT(waited, std::chrono::seconds(1));
  EXPECT_GE(drops->value(), 1u);  // the original event was dropped
  EXPECT_EQ(depth->value(), 0);  // gauge tracked the marker in and out
}

TEST(WatchQueueTest, OverflowPushUpdatesDepthGauge) {
  WatchQueue q(1);
  obs::Registry registry;
  auto* depth = registry.gauge("q/depth");
  q.bind_metrics(depth, nullptr);
  q.push({event::created, 1, "a", 0});
  EXPECT_EQ(depth->value(), 1);
  q.push({event::created, 1, "b", 0});  // overflow marker
  EXPECT_EQ(depth->value(), 2);         // gauge saw the marker enqueue
  q.push({event::created, 1, "c", 0});  // dropped, nothing enqueued
  EXPECT_EQ(depth->value(), 2);
}

TEST(WatchQueueTest, PopWaitDeadlineIsAbsolute) {
  // pop_wait must honour one absolute deadline: a stream of wakeups that
  // never leaves an event for this consumer cannot extend the wait.  A
  // churn thread pushes and a stealer drains, so the blocked consumer is
  // woken repeatedly while usually finding the queue empty.
  WatchQueue q;
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load()) {
      q.push({event::created, 1, "x", 0});
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::thread stealer([&] {
    while (!stop.load()) (void)q.try_pop();
  });

  auto start = std::chrono::steady_clock::now();
  (void)q.pop_wait(std::chrono::milliseconds(150));
  auto waited = std::chrono::steady_clock::now() - start;
  stop.store(true);
  churn.join();
  stealer.join();
  // The consumer may win an event (early return) but may never overshoot
  // the deadline by more than scheduling slack.
  EXPECT_LT(waited, std::chrono::milliseconds(1000));
}

TEST_F(MemFsTest, UnwatchStopsDelivery) {
  auto q = std::make_shared<WatchQueue>();
  auto id = fs.watch(fs.root(), event::all, q);
  ASSERT_TRUE(id.ok());
  fs.unwatch(*id);
  ASSERT_TRUE(fs.create(fs.root(), "f", 0644, root).ok());
  EXPECT_FALSE(q->try_pop().has_value());
}

// --- Vfs: mounts and resolution -------------------------------------------

class VfsTest : public ::testing::Test {
 protected:
  std::shared_ptr<Vfs> vfs = std::make_shared<Vfs>();
  Credentials root = Credentials::root();
};

TEST_F(VfsTest, NormalizePath) {
  EXPECT_EQ(normalize_path(""), "/");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path("a/b"), "/a/b");
  EXPECT_EQ(normalize_path("//a///b/"), "/a/b");
  EXPECT_EQ(normalize_path("/a/./b/."), "/a/b");
  EXPECT_EQ(normalize_path("/a/../b"), "/a/../b");  // ".." kept for resolver
}

TEST_F(VfsTest, WriteReadFile) {
  ASSERT_FALSE(vfs->mkdir("/etc"));
  ASSERT_FALSE(vfs->write_file("/etc/conf", "hello"));
  EXPECT_EQ(*vfs->read_file("/etc/conf"), "hello");
  ASSERT_FALSE(vfs->write_file("/etc/conf", "shorter"));
  EXPECT_EQ(*vfs->read_file("/etc/conf"), "shorter");  // truncated
  ASSERT_FALSE(vfs->append_file("/etc/conf", "+x"));
  EXPECT_EQ(*vfs->read_file("/etc/conf"), "shorter+x");
}

TEST_F(VfsTest, MissingPathsReportEnoent) {
  EXPECT_EQ(vfs->read_file("/nope").error(), err(Errc::not_found));
  EXPECT_EQ(vfs->stat("/a/b/c").error(), err(Errc::not_found));
  EXPECT_EQ(vfs->mkdir("/a/b"), err(Errc::not_found));  // no /a
}

TEST_F(VfsTest, FileAsDirectoryReportsEnotdir) {
  ASSERT_FALSE(vfs->write_file("/f", "x"));
  EXPECT_EQ(vfs->read_file("/f/sub").error(), err(Errc::not_dir));
}

TEST_F(VfsTest, MkdirP) {
  ASSERT_FALSE(vfs->mkdir_p("/a/b/c/d"));
  EXPECT_TRUE(vfs->stat("/a/b/c/d")->is_dir());
  // Idempotent.
  EXPECT_FALSE(vfs->mkdir_p("/a/b/c/d"));
  // Fails through a file.
  ASSERT_FALSE(vfs->write_file("/a/file", "x"));
  EXPECT_EQ(vfs->mkdir_p("/a/file/sub"), err(Errc::not_dir));
}

TEST_F(VfsTest, RemoveAll) {
  ASSERT_FALSE(vfs->mkdir_p("/t/x/y"));
  ASSERT_FALSE(vfs->write_file("/t/f1", "1"));
  ASSERT_FALSE(vfs->write_file("/t/x/f2", "2"));
  ASSERT_FALSE(vfs->symlink("/t/f1", "/t/x/l"));
  ASSERT_FALSE(vfs->remove_all("/t"));
  EXPECT_EQ(vfs->stat("/t").error(), err(Errc::not_found));
}

TEST_F(VfsTest, SymlinkResolution) {
  ASSERT_FALSE(vfs->mkdir_p("/data/real"));
  ASSERT_FALSE(vfs->write_file("/data/real/file", "payload"));
  ASSERT_FALSE(vfs->symlink("/data/real", "/link-abs"));
  ASSERT_FALSE(vfs->symlink("real/file", "/data/link-rel"));
  EXPECT_EQ(*vfs->read_file("/link-abs/file"), "payload");
  EXPECT_EQ(*vfs->read_file("/data/link-rel"), "payload");
  // lstat does not follow, stat does.
  EXPECT_TRUE(vfs->lstat("/link-abs")->is_symlink());
  EXPECT_TRUE(vfs->stat("/link-abs")->is_dir());
  EXPECT_EQ(*vfs->readlink("/link-abs"), "/data/real");
}

TEST_F(VfsTest, SymlinkLoopDetected) {
  ASSERT_FALSE(vfs->symlink("/b", "/a"));
  ASSERT_FALSE(vfs->symlink("/a", "/b"));
  EXPECT_EQ(vfs->read_file("/a").error(), err(Errc::symlink_loop));
}

TEST_F(VfsTest, DotDotResolution) {
  ASSERT_FALSE(vfs->mkdir_p("/a/b"));
  ASSERT_FALSE(vfs->write_file("/a/f", "top"));
  EXPECT_EQ(*vfs->read_file("/a/b/../f"), "top");
  EXPECT_EQ(*vfs->read_file("/a/b/../../a/f"), "top");
  // ".." above root stays at root.
  EXPECT_EQ(*vfs->read_file("/../../a/f"), "top");
}

TEST_F(VfsTest, DotDotThroughSymlink) {
  ASSERT_FALSE(vfs->mkdir_p("/x/deep"));
  ASSERT_FALSE(vfs->mkdir_p("/y"));
  ASSERT_FALSE(vfs->write_file("/x/marker", "in-x"));
  ASSERT_FALSE(vfs->symlink("/x/deep", "/y/link"));
  // POSIX: ".." applies to the symlink target's directory, not /y.
  EXPECT_EQ(*vfs->read_file("/y/link/../marker"), "in-x");
}

TEST_F(VfsTest, MountAndCross) {
  auto extra = std::make_shared<MemFs>();
  ASSERT_FALSE(vfs->mkdir("/net"));
  ASSERT_FALSE(vfs->mount("/net", extra));
  ASSERT_FALSE(vfs->write_file("/net/inside", "net-data"));
  EXPECT_EQ(*vfs->read_file("/net/inside"), "net-data");
  // Data landed in the mounted fs, not the root fs.
  EXPECT_TRUE(extra->lookup(extra->root(), "inside").ok());
  // ".." crosses back out of the mount.
  ASSERT_FALSE(vfs->write_file("/outside", "root-data"));
  EXPECT_EQ(*vfs->read_file("/net/../outside"), "root-data");
}

TEST_F(VfsTest, MountRequiresExistingDirectory) {
  auto extra = std::make_shared<MemFs>();
  EXPECT_EQ(vfs->mount("/missing", extra), err(Errc::not_found));
  ASSERT_FALSE(vfs->write_file("/file", "x"));
  EXPECT_EQ(vfs->mount("/file", extra), err(Errc::not_dir));
}

TEST_F(VfsTest, MountPointBusyRules) {
  auto extra = std::make_shared<MemFs>();
  ASSERT_FALSE(vfs->mkdir("/net"));
  ASSERT_FALSE(vfs->mount("/net", extra));
  EXPECT_EQ(vfs->mount("/net", std::make_shared<MemFs>()), err(Errc::busy));
  EXPECT_EQ(vfs->rmdir("/net"), err(Errc::busy));
  EXPECT_EQ(vfs->rename("/net", "/net2"), err(Errc::busy));
  ASSERT_FALSE(vfs->umount("/net"));
  EXPECT_EQ(vfs->umount("/net"), err(Errc::not_found));
  EXPECT_FALSE(vfs->rmdir("/net"));
}

TEST_F(VfsTest, UmountRefusedWithSubmount) {
  ASSERT_FALSE(vfs->mkdir("/a"));
  ASSERT_FALSE(vfs->mount("/a", std::make_shared<MemFs>()));
  ASSERT_FALSE(vfs->mkdir("/a/b"));
  ASSERT_FALSE(vfs->mount("/a/b", std::make_shared<MemFs>()));
  EXPECT_EQ(vfs->umount("/a"), err(Errc::busy));
  ASSERT_FALSE(vfs->umount("/a/b"));
  EXPECT_FALSE(vfs->umount("/a"));
}

TEST_F(VfsTest, ReadOnlyMount) {
  auto extra = std::make_shared<MemFs>();
  // Pre-populate, then mount read-only.
  ASSERT_TRUE(extra->create(extra->root(), "f", 0644, root).ok());
  ASSERT_FALSE(vfs->mkdir("/ro"));
  ASSERT_FALSE(vfs->mount("/ro", extra, MountOptions{.read_only = true}));
  EXPECT_EQ(vfs->write_file("/ro/f", "x"), err(Errc::read_only));
  EXPECT_EQ(vfs->mkdir("/ro/d"), err(Errc::read_only));
  EXPECT_EQ(vfs->unlink("/ro/f"), err(Errc::read_only));
  EXPECT_EQ(vfs->chmod("/ro/f", 0600), err(Errc::read_only));
  EXPECT_TRUE(vfs->read_file("/ro/f").ok());
}

TEST_F(VfsTest, RenameAcrossMountsIsExdev) {
  ASSERT_FALSE(vfs->mkdir("/m"));
  ASSERT_FALSE(vfs->mount("/m", std::make_shared<MemFs>()));
  ASSERT_FALSE(vfs->write_file("/src", "x"));
  EXPECT_EQ(vfs->rename("/src", "/m/dst"), err(Errc::cross_device));
  EXPECT_EQ(vfs->link("/src", "/m/l"), err(Errc::cross_device));
}

TEST_F(VfsTest, ExecutePermissionGatesTraversal) {
  ASSERT_FALSE(vfs->mkdir("/locked", 0700, root));
  ASSERT_FALSE(vfs->write_file("/locked/f", "secret", root));
  EXPECT_EQ(vfs->read_file("/locked/f", alice()).error(),
            err(Errc::access_denied));
}

TEST_F(VfsTest, OpenFlagsSemantics) {
  namespace of = open_flags;
  // O_CREAT|O_EXCL on existing file.
  ASSERT_FALSE(vfs->write_file("/f", "abc"));
  EXPECT_EQ(vfs->open("/f", of::write_only | of::create | of::excl, 0644,
                      root).error(),
            err(Errc::exists));
  // O_TRUNC clears.
  auto h = vfs->open("/f", of::write_only | of::truncate, 0644, root);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(vfs->stat("/f")->size, 0u);
  // Write-only handle cannot read; read-only cannot write.
  EXPECT_EQ((*h)->read(10).error(), err(Errc::bad_handle));
  auto r = vfs->open("/f", of::read_only, 0, root);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->write("x").error(), err(Errc::bad_handle));
  // Directories cannot be opened.
  ASSERT_FALSE(vfs->mkdir("/d"));
  EXPECT_EQ(vfs->open("/d", of::read_only, 0, root).error(),
            err(Errc::is_dir));
}

TEST_F(VfsTest, AppendHandleSeeksToEnd) {
  namespace of = open_flags;
  ASSERT_FALSE(vfs->write_file("/log", "start:"));
  auto h = vfs->open("/log", of::write_only | of::append, 0644, root);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE((*h)->write("a").ok());
  // Another writer extends the file; append must still go to the new end.
  ASSERT_FALSE(vfs->append_file("/log", "b"));
  ASSERT_TRUE((*h)->write("c").ok());
  EXPECT_EQ(*vfs->read_file("/log"), "start:abc");
}

TEST_F(VfsTest, HandleSequentialReads) {
  namespace of = open_flags;
  ASSERT_FALSE(vfs->write_file("/f", "abcdef"));
  auto h = vfs->open("/f", of::read_only, 0, root);
  EXPECT_EQ(*(*h)->read(2), "ab");
  EXPECT_EQ(*(*h)->read(2), "cd");
  EXPECT_EQ(*(*h)->pread(0, 3), "abc");  // pread does not move offset
  EXPECT_EQ(*(*h)->read(10), "ef");
}

TEST_F(VfsTest, WatchThroughVfsPath) {
  ASSERT_FALSE(vfs->mkdir("/w"));
  auto q = std::make_shared<WatchQueue>();
  auto handle = vfs->watch("/w", event::created, q);
  ASSERT_TRUE(handle.ok());
  ASSERT_FALSE(vfs->write_file("/w/new", "x"));
  auto e = q->try_pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->name, "new");
  handle->reset();  // RAII unregister
  ASSERT_FALSE(vfs->write_file("/w/new2", "x"));
  EXPECT_FALSE(q->try_pop().has_value());
}

TEST_F(VfsTest, CountersTrackOps) {
  vfs->reset_counters();
  ASSERT_FALSE(vfs->mkdir_p("/a/b"));
  ASSERT_FALSE(vfs->write_file("/a/b/f", "x"));
  (void)vfs->read_file("/a/b/f");
  EXPECT_GT(vfs->counters().total.load(), 0u);
  EXPECT_GT(vfs->counters().lookups.load(), 0u);
  EXPECT_GE(vfs->counters().writes.load(), 1u);
  EXPECT_GE(vfs->counters().reads.load(), 1u);
}

TEST_F(VfsTest, AclRoundTripThroughVfs) {
  ASSERT_FALSE(vfs->write_file("/f", "x"));
  Acl acl = Acl::from_mode(0640);
  acl.add({AclTag::user, 1000, 4});
  acl.add({AclTag::mask, 0, 7});
  ASSERT_FALSE(vfs->set_acl("/f", acl));
  auto got = vfs->get_acl("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, acl);
  EXPECT_FALSE(vfs->access("/f", 4, alice()));
  EXPECT_EQ(vfs->access("/f", 2, alice()), err(Errc::access_denied));
}

TEST_F(VfsTest, RenameOverwriteEmitsDeleteSelfOnVictim) {
  ASSERT_FALSE(vfs->write_file("/a", "new"));
  ASSERT_FALSE(vfs->write_file("/b", "old"));
  auto victim = vfs->resolve("/b", Credentials::root());
  ASSERT_TRUE(victim.ok());
  auto q = std::make_shared<WatchQueue>();
  ASSERT_TRUE(victim->fs->watch(victim->node, event::delete_self, q).ok());
  ASSERT_FALSE(vfs->rename("/a", "/b"));
  auto e = q->try_pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->is(event::delete_self));
  EXPECT_EQ(*vfs->read_file("/b"), "new");
}

TEST_F(VfsTest, HardLinkSurvivesRenameOfOtherName) {
  ASSERT_FALSE(vfs->write_file("/f", "shared"));
  ASSERT_FALSE(vfs->link("/f", "/g"));
  ASSERT_FALSE(vfs->rename("/f", "/f2"));
  EXPECT_EQ(*vfs->read_file("/g"), "shared");
  EXPECT_EQ(*vfs->read_file("/f2"), "shared");
  // Writing through one name is visible through the other.
  ASSERT_FALSE(vfs->write_file("/g", "updated"));
  EXPECT_EQ(*vfs->read_file("/f2"), "updated");
}

TEST_F(VfsTest, MkdirPThroughSymlink) {
  ASSERT_FALSE(vfs->mkdir_p("/real/base"));
  ASSERT_FALSE(vfs->symlink("/real/base", "/alias"));
  ASSERT_FALSE(vfs->mkdir_p("/alias/x/y"));
  EXPECT_TRUE(vfs->stat("/real/base/x/y")->is_dir());
}

TEST_F(VfsTest, ListxattrAfterRemoveStaysConsistent) {
  ASSERT_FALSE(vfs->write_file("/f", "x"));
  ASSERT_FALSE(vfs->setxattr("/f", "user.a", {1}));
  ASSERT_FALSE(vfs->setxattr("/f", "user.b", {2}));
  ASSERT_FALSE(vfs->removexattr("/f", "user.a"));
  auto names = vfs->listxattr("/f");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"user.b"});
  EXPECT_EQ(vfs->removexattr("/f", "user.a"), err(Errc::not_found));
}

TEST_F(VfsTest, NamespaceOverReadOnlyMount) {
  auto extra = std::make_shared<MemFs>();
  ASSERT_TRUE(extra->mkdir(extra->root(), "sub", 0755, root).ok());
  ASSERT_FALSE(vfs->mkdir("/ro"));
  ASSERT_FALSE(vfs->mount("/ro", extra, MountOptions{.read_only = true}));
  Namespace ns(vfs, "/ro", Credentials::root());
  EXPECT_TRUE(ns.stat("/sub")->is_dir());
  EXPECT_EQ(ns.write_file("/sub/f", "x"), err(Errc::read_only));
}

TEST_F(VfsTest, ConcurrentMutationSmoke) {
  // Two writers and a reader hammer one MemFs; nothing crashes, counts
  // add up.  (The per-fs mutex is the concurrency story; this is a smoke
  // test, not a linearizability proof.)
  ASSERT_FALSE(vfs->mkdir("/t"));
  constexpr int kPerThread = 500;
  auto writer = [&](int id) {
    for (int i = 0; i < kPerThread; ++i) {
      std::string path =
          "/t/w" + std::to_string(id) + "_" + std::to_string(i);
      (void)vfs->write_file(path, "data");
    }
  };
  std::thread a(writer, 0), b(writer, 1);
  std::size_t reads = 0;
  for (int i = 0; i < 200; ++i) {
    auto entries = vfs->readdir("/t");
    if (entries) reads += entries->size();
  }
  a.join();
  b.join();
  auto entries = vfs->readdir("/t");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u * kPerThread);
  EXPECT_GE(reads, 0u);
}

// --- mounts reached via ".." and symlinks -----------------------------------

TEST_F(VfsTest, DotDotPathCrossesIntoMount) {
  auto extra = std::make_shared<MemFs>();
  ASSERT_FALSE(vfs->mkdir("/a"));
  ASSERT_FALSE(vfs->mkdir("/mnt"));
  ASSERT_FALSE(vfs->mount("/mnt", extra));
  ASSERT_FALSE(vfs->write_file("/a/../mnt/f", "inside"));
  // The write crossed into the mounted fs, not the covered directory.
  EXPECT_TRUE(extra->lookup(extra->root(), "f").ok());
  EXPECT_EQ(*vfs->read_file("/a/../mnt/f"), "inside");
  EXPECT_EQ(*vfs->read_file("/mnt/f"), "inside");
}

TEST_F(VfsTest, MountKeyedOnResolvedPath) {
  // Mounting via a ".." spelling must produce the same mount as the plain
  // one: the table keys on the resolved logical path, so the resolver can
  // actually find it and a second mount at the same place is EBUSY.
  auto extra = std::make_shared<MemFs>();
  ASSERT_FALSE(vfs->mkdir("/a"));
  ASSERT_FALSE(vfs->mkdir("/mnt"));
  ASSERT_FALSE(vfs->mount("/a/../mnt", extra));
  ASSERT_FALSE(vfs->write_file("/mnt/f", "x"));
  EXPECT_TRUE(extra->lookup(extra->root(), "f").ok());
  EXPECT_EQ(vfs->mount("/mnt", std::make_shared<MemFs>()), err(Errc::busy));
  // umount accepts either spelling.
  ASSERT_FALSE(vfs->umount("/a/../mnt"));
  EXPECT_EQ(vfs->umount("/mnt"), err(Errc::not_found));
}

TEST_F(VfsTest, MountRootProtectedFromDotDotSpellings) {
  // Pre-fix, the EBUSY guard compared the lexical path against the mount
  // table, so "/a/../mnt" slipped past it and rmdir removed the directory
  // under a live mount.
  ASSERT_FALSE(vfs->mkdir("/a"));
  ASSERT_FALSE(vfs->mkdir("/mnt"));
  ASSERT_FALSE(vfs->mount("/mnt", std::make_shared<MemFs>()));
  EXPECT_EQ(vfs->rmdir("/a/../mnt"), err(Errc::busy));
  EXPECT_EQ(vfs->rename("/a/../mnt", "/zz"), err(Errc::busy));
  ASSERT_FALSE(vfs->write_file("/src", "x"));
  EXPECT_EQ(vfs->rename("/src", "/a/../mnt"), err(Errc::busy));
  EXPECT_TRUE(vfs->stat("/mnt").ok());
}

TEST_F(VfsTest, MountRootProtectedThroughSymlinkedParent) {
  ASSERT_FALSE(vfs->mkdir("/mnt"));
  ASSERT_FALSE(vfs->mount("/mnt", std::make_shared<MemFs>()));
  // /s resolves to /, so "/s/mnt" names the mount root.
  ASSERT_FALSE(vfs->symlink("/", "/s"));
  EXPECT_EQ(vfs->rmdir("/s/mnt"), err(Errc::busy));
  EXPECT_EQ(vfs->rename("/s/mnt", "/zz"), err(Errc::busy));
  EXPECT_TRUE(vfs->stat("/mnt").ok());
}

// --- resolution (dentry) cache ----------------------------------------------

TEST_F(VfsTest, DentryCacheHitsRepeatedResolutions) {
  ASSERT_FALSE(vfs->mkdir_p("/a/b"));
  ASSERT_FALSE(vfs->write_file("/a/b/f", "x"));
  auto* hits = vfs->metrics()->counter("vfs/dcache_hit_total");
  auto before = hits->value();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(*vfs->read_file("/a/b/f"), "x");
  EXPECT_GE(hits->value(), before + 7);  // first read may miss, rest hit
}

TEST_F(VfsTest, DentryCacheInvalidatedOnUnlink) {
  ASSERT_FALSE(vfs->write_file("/f", "x"));
  EXPECT_TRUE(vfs->stat("/f").ok());  // populate the cache
  ASSERT_FALSE(vfs->unlink("/f"));
  EXPECT_EQ(vfs->stat("/f").error(), err(Errc::not_found));
}

TEST_F(VfsTest, DentryCacheInvalidatedOnRename) {
  ASSERT_FALSE(vfs->mkdir("/d"));
  ASSERT_FALSE(vfs->write_file("/d/f", "v1"));
  EXPECT_EQ(*vfs->read_file("/d/f"), "v1");  // populate the cache
  ASSERT_FALSE(vfs->rename("/d/f", "/d/g"));
  EXPECT_EQ(vfs->read_file("/d/f").error(), err(Errc::not_found));
  EXPECT_EQ(*vfs->read_file("/d/g"), "v1");
  // Renaming a directory invalidates cached paths through it.
  ASSERT_FALSE(vfs->rename("/d", "/e"));
  EXPECT_EQ(vfs->read_file("/d/g").error(), err(Errc::not_found));
  EXPECT_EQ(*vfs->read_file("/e/g"), "v1");
}

TEST_F(VfsTest, DentryCacheInvalidatedOnChmod) {
  ASSERT_FALSE(vfs->mkdir("/p", 0755));
  ASSERT_FALSE(vfs->write_file("/p/f", "x"));
  ASSERT_FALSE(vfs->chmod("/p/f", 0644));
  EXPECT_EQ(*vfs->read_file("/p/f", alice()), "x");  // cached for alice
  // Locking the directory must take effect despite the cached resolution.
  ASSERT_FALSE(vfs->chmod("/p", 0700));
  EXPECT_EQ(vfs->read_file("/p/f", alice()).error(),
            err(Errc::access_denied));
}

TEST_F(VfsTest, DentryCacheInvalidatedOnUmount) {
  auto extra = std::make_shared<MemFs>();
  ASSERT_TRUE(extra->create(extra->root(), "f", 0644,
                            Credentials::root()).ok());
  ASSERT_FALSE(vfs->mkdir("/mnt"));
  ASSERT_FALSE(vfs->mount("/mnt", extra));
  EXPECT_TRUE(vfs->stat("/mnt/f").ok());  // resolves into the mount
  ASSERT_FALSE(vfs->umount("/mnt"));
  EXPECT_EQ(vfs->stat("/mnt/f").error(), err(Errc::not_found));
}

TEST_F(VfsTest, DentryCacheIsPerCredential) {
  ASSERT_FALSE(vfs->mkdir("/locked", 0700, root));
  ASSERT_FALSE(vfs->write_file("/locked/f", "secret", root));
  // Root's successful (cached) resolution must not leak to alice, whose
  // walk fails the execute check on /locked.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(vfs->stat("/locked/f", root).ok());
  EXPECT_EQ(vfs->stat("/locked/f", alice()).error(),
            err(Errc::access_denied));
}

// --- multi-threaded stress ----------------------------------------------------

TEST_F(VfsTest, MultiThreadedReadersAndMutators) {
  // N readers resolve and read a shared tree while writers rewrite file
  // contents and a renamer shuffles a directory back and forth.  The test
  // asserts no crashes, no torn reads (file contents are always one of the
  // values some writer produced), and a consistent final state.  Run under
  // TSan via scripts/sanitize.sh tsan, this is the data-race gate for the
  // sharded locking.
  constexpr int kFiles = 16;
  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kIters = 400;
  ASSERT_FALSE(vfs->mkdir("/t"));
  ASSERT_FALSE(vfs->mkdir("/t/stable"));
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_FALSE(vfs->write_file("/t/stable/f" + std::to_string(i), "w0_0"));
  }
  ASSERT_FALSE(vfs->mkdir("/t/flip"));

  std::atomic<int> torn{0};
  auto reader = [&](int seed) {
    for (int i = 0; i < kIters; ++i) {
      std::string path =
          "/t/stable/f" + std::to_string((seed + i) % kFiles);
      auto data = vfs->read_file(path);
      ASSERT_TRUE(data.ok()) << path;
      // Every valid content is "w<writer>_<iter>"; a torn read would mix.
      if (data->empty() || (*data)[0] != 'w') torn.fetch_add(1);
      (void)vfs->stat(path);
      (void)vfs->readdir("/t/stable");
    }
  };
  auto writer = [&](int id) {
    for (int i = 0; i < kIters; ++i) {
      std::string path =
          "/t/stable/f" + std::to_string((id * 7 + i) % kFiles);
      std::string value =
          "w" + std::to_string(id) + "_" + std::to_string(i);
      ASSERT_FALSE(vfs->write_file(path, value));
    }
  };
  auto renamer = [&] {
    for (int i = 0; i < kIters; ++i) {
      std::string from = (i % 2) ? "/t/flop" : "/t/flip";
      std::string to = (i % 2) ? "/t/flip" : "/t/flop";
      ASSERT_FALSE(vfs->rename(from, to));
      (void)vfs->stat(to);
    }
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) threads.emplace_back(reader, r);
  for (int w = 0; w < kWriters; ++w) threads.emplace_back(writer, w);
  threads.emplace_back(renamer);
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0);
  auto entries = vfs->readdir("/t/stable");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<std::size_t>(kFiles));
}

TEST_F(VfsTest, ConcurrentDistinctFileWritesAndReads) {
  // Writers on distinct files take mu_ shared + their own shard; readers
  // of other files must never observe partial content.
  constexpr int kThreads = 6;
  constexpr int kIters = 300;
  ASSERT_FALSE(vfs->mkdir("/w"));
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_FALSE(
        vfs->write_file("/w/f" + std::to_string(t), std::string(64, 'a')));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string mine = "/w/f" + std::to_string(t);
      std::string other = "/w/f" + std::to_string((t + 1) % kThreads);
      for (int i = 0; i < kIters; ++i) {
        char c = static_cast<char>('a' + (i % 26));
        ASSERT_FALSE(vfs->write_file(mine, std::string(64, c)));
        auto data = vfs->read_file(other);
        ASSERT_TRUE(data.ok());
        ASSERT_EQ(data->size(), 64u);
        // Single-writer-per-file: content is always 64 copies of one byte.
        EXPECT_EQ(data->find_first_not_of((*data)[0]), std::string::npos);
      }
    });
  }
  for (auto& t : threads) t.join();
}

// --- namespaces ---------------------------------------------------------------

class NamespaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(vfs->mkdir_p("/net/views/v1/switches"));
    ASSERT_FALSE(vfs->write_file("/net/views/v1/inside", "view-data"));
    ASSERT_FALSE(vfs->write_file("/net/secret", "master-only"));
  }
  std::shared_ptr<Vfs> vfs = std::make_shared<Vfs>();
};

TEST_F(NamespaceTest, SeesOwnSubtreeAtRoot) {
  Namespace ns(vfs, "/net/views/v1", Credentials::root());
  EXPECT_EQ(*ns.read_file("/inside"), "view-data");
  EXPECT_TRUE(ns.stat("/switches")->is_dir());
  auto entries = ns.readdir("/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(NamespaceTest, CannotEscapeWithDotDot) {
  Namespace ns(vfs, "/net/views/v1", Credentials::root());
  EXPECT_EQ(ns.read_file("/../secret").error(), err(Errc::not_found));
  EXPECT_EQ(ns.read_file("/../../net/secret").error(), err(Errc::not_found));
}

TEST_F(NamespaceTest, AbsoluteSymlinkReanchorsAtNamespaceRoot) {
  // A symlink pointing at "/inside" must resolve inside the namespace even
  // though the underlying path is /net/views/v1/inside.
  ASSERT_FALSE(vfs->symlink("/inside", "/net/views/v1/alias"));
  Namespace ns(vfs, "/net/views/v1", Credentials::root());
  EXPECT_EQ(*ns.read_file("/alias"), "view-data");
}

TEST_F(NamespaceTest, WritesLandInSubtree) {
  Namespace ns(vfs, "/net/views/v1", Credentials::root());
  ASSERT_FALSE(ns.write_file("/newfile", "hello"));
  EXPECT_EQ(*vfs->read_file("/net/views/v1/newfile"), "hello");
}

TEST_F(NamespaceTest, CarriesCredentials) {
  ASSERT_FALSE(vfs->chmod("/net/views/v1/inside", 0600));
  ASSERT_FALSE(vfs->chown("/net/views/v1/inside", 0, 0));
  Namespace ns(vfs, "/net/views/v1", alice());
  EXPECT_EQ(ns.read_file("/inside").error(), err(Errc::access_denied));
}

}  // namespace
}  // namespace yanc::vfs
