// Property-based tests: randomized (seeded, reproducible) sweeps over the
// core invariants that unit tests can only spot-check.
//
//   * Match algebra: intersection commutes, is subsumed by both operands,
//     and agrees with packet-level evaluation.
//   * Wire codecs: encode(decode(x)) == x for random FlowSpecs, both
//     OpenFlow versions.
//   * flowio: write_flow/read_flow round-trips random specs through a real
//     yanc FS.
//   * FlowTable: behaves identically to a naive reference model under
//     random add/remove/lookup sequences.
//   * VFS: a random tree built with mkdir_p/write_file is fully reclaimed
//     by remove_all (no inode or byte leaks).
//   * ReplicatedYancFs: two eventually-consistent replicas converge to
//     identical trees after random concurrent ops and partitions.
#include <gtest/gtest.h>

#include <random>

#include "yanc/dist/replicated.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/net/packet.hpp"
#include "yanc/ofp/codec.hpp"
#include "yanc/sw/flow_table.hpp"

namespace yanc {
namespace {

using flow::Action;
using flow::ActionKind;
using flow::FieldValues;
using flow::FlowSpec;
using flow::Match;

// --- generators -----------------------------------------------------------

class Rng {
 public:
  explicit Rng(std::uint32_t seed) : gen_(seed) {}
  std::uint32_t u32(std::uint32_t lo, std::uint32_t hi) {
    return std::uniform_int_distribution<std::uint32_t>(lo, hi)(gen_);
  }
  bool chance(double p) {
    return std::uniform_real_distribution<>(0, 1)(gen_) < p;
  }

  Match match() {
    Match m;
    if (chance(0.3)) m.in_port = static_cast<std::uint16_t>(u32(1, 8));
    if (chance(0.3)) m.dl_src = MacAddress::from_u64(u32(1, 4));
    if (chance(0.3)) m.dl_dst = MacAddress::from_u64(u32(1, 4));
    if (chance(0.4))
      m.dl_type = chance(0.5) ? 0x0800 : 0x0806;
    if (chance(0.2)) m.dl_vlan = static_cast<std::uint16_t>(u32(1, 100));
    if (chance(0.3)) {
      int prefix = static_cast<int>(u32(8, 32));
      m.nw_src = Cidr(Ipv4Address(0x0a000000u | u32(0, 0xffff)), prefix);
    }
    if (chance(0.3)) {
      int prefix = static_cast<int>(u32(8, 32));
      m.nw_dst = Cidr(Ipv4Address(0x0a000000u | u32(0, 0xffff)), prefix);
    }
    if (chance(0.3)) m.nw_proto = chance(0.5) ? 6 : 17;
    if (chance(0.2)) m.nw_tos = static_cast<std::uint8_t>(u32(0, 63) << 2);
    if (chance(0.3)) m.tp_src = static_cast<std::uint16_t>(u32(1, 1024));
    if (chance(0.3)) m.tp_dst = static_cast<std::uint16_t>(u32(1, 1024));
    return m;
  }

  FieldValues packet() {
    FieldValues f;
    f.in_port = static_cast<std::uint16_t>(u32(1, 8));
    f.dl_src = MacAddress::from_u64(u32(1, 4));
    f.dl_dst = MacAddress::from_u64(u32(1, 4));
    f.dl_type = chance(0.5) ? 0x0800 : 0x0806;
    f.dl_vlan = chance(0.8) ? 0xffff : static_cast<std::uint16_t>(u32(1, 100));
    f.nw_src = Ipv4Address(0x0a000000u | u32(0, 0xffff));
    f.nw_dst = Ipv4Address(0x0a000000u | u32(0, 0xffff));
    f.nw_proto = chance(0.5) ? 6 : 17;
    f.nw_tos = static_cast<std::uint8_t>(u32(0, 63) << 2);
    f.tp_src = static_cast<std::uint16_t>(u32(1, 1024));
    f.tp_dst = static_cast<std::uint16_t>(u32(1, 1024));
    return f;
  }

  std::vector<Action> actions() {
    std::vector<Action> out;
    if (chance(0.1)) return out;  // drop
    if (chance(0.3))
      out.push_back(Action{ActionKind::set_dl_dst,
                           MacAddress::from_u64(u32(1, 99))});
    if (chance(0.2))
      out.push_back(Action{ActionKind::set_nw_src,
                           Ipv4Address(0x0a000000u | u32(0, 255))});
    if (chance(0.2))
      out.push_back(Action{ActionKind::set_tp_dst,
                           static_cast<std::uint16_t>(u32(1, 60000))});
    out.push_back(Action::output(static_cast<std::uint16_t>(u32(1, 8))));
    if (chance(0.3))
      out.push_back(Action::output(static_cast<std::uint16_t>(u32(1, 8))));
    return out;
  }

  FlowSpec spec(bool of13_features) {
    FlowSpec s;
    s.match = match();
    s.actions = actions();
    s.priority = static_cast<std::uint16_t>(u32(0, 0xffff));
    s.idle_timeout = static_cast<std::uint16_t>(u32(0, 300));
    s.hard_timeout = static_cast<std::uint16_t>(u32(0, 300));
    s.cookie = u32(0, 0xffffffff);
    if (of13_features) {
      s.table_id = static_cast<std::uint8_t>(u32(0, 3));
      if (chance(0.3))
        s.goto_table = static_cast<int>(u32(s.table_id + 1, 7));
    }
    return s;
  }

 private:
  std::mt19937 gen_;
};

// --- match algebra ------------------------------------------------------------

class MatchProperty : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MatchProperty, ::testing::Range(1u, 21u));

TEST_P(MatchProperty, IntersectionCommutesAndIsSubsumed) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    Match a = rng.match();
    Match b = rng.match();
    auto ab = a.intersect(b);
    auto ba = b.intersect(a);
    ASSERT_EQ(ab.has_value(), ba.has_value());
    if (!ab) continue;
    EXPECT_EQ(*ab, *ba);
    // Both operands subsume the intersection.
    EXPECT_TRUE(a.subsumes(*ab)) << a.to_string() << " !>= "
                                 << ab->to_string();
    EXPECT_TRUE(b.subsumes(*ab));
  }
}

TEST_P(MatchProperty, MatchAllIsIdentity) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    Match m = rng.match();
    auto i = m.intersect(Match{});
    ASSERT_TRUE(i.has_value());
    EXPECT_EQ(*i, m);
    EXPECT_TRUE(Match{}.subsumes(m));
  }
}

TEST_P(MatchProperty, IntersectionAgreesWithEvaluation) {
  Rng rng(GetParam());
  for (int round = 0; round < 500; ++round) {
    Match a = rng.match();
    Match b = rng.match();
    FieldValues pkt = rng.packet();
    bool both = a.matches(pkt) && b.matches(pkt);
    auto i = a.intersect(b);
    if (both) {
      // A packet matching both must match the (necessarily nonempty)
      // intersection.
      ASSERT_TRUE(i.has_value());
      EXPECT_TRUE(i->matches(pkt));
    } else if (i) {
      EXPECT_FALSE(i->matches(pkt));
    }
  }
}

TEST_P(MatchProperty, SubsumptionIsEvaluationContainment) {
  Rng rng(GetParam());
  for (int round = 0; round < 500; ++round) {
    Match wide = rng.match();
    Match narrow = rng.match();
    if (!wide.subsumes(narrow)) continue;
    FieldValues pkt = rng.packet();
    if (narrow.matches(pkt)) {
      EXPECT_TRUE(wide.matches(pkt))
          << wide.to_string() << " should contain " << narrow.to_string();
    }
  }
}

// --- codec round trips -----------------------------------------------------------

class CodecProperty : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Range(1u, 11u));

TEST_P(CodecProperty, FlowModRoundTripsBothVersions) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    for (auto version : {ofp::Version::of10, ofp::Version::of13}) {
      bool of13 = version == ofp::Version::of13;
      ofp::FlowMod fm;
      fm.spec = rng.spec(of13);
      auto bytes = ofp::encode(version, 1, fm);
      ASSERT_TRUE(bytes.ok()) << fm.spec.to_string();
      auto decoded = ofp::decode(*bytes);
      ASSERT_TRUE(decoded.ok());
      auto& got = std::get<ofp::FlowMod>(decoded->message);
      EXPECT_EQ(got.spec.match, fm.spec.match);
      EXPECT_EQ(got.spec.actions, fm.spec.actions);
      EXPECT_EQ(got.spec.priority, fm.spec.priority);
      EXPECT_EQ(got.spec.cookie, fm.spec.cookie);
      if (of13) {
        EXPECT_EQ(got.spec.table_id, fm.spec.table_id);
        EXPECT_EQ(got.spec.goto_table, fm.spec.goto_table);
      }
    }
  }
}

TEST_P(CodecProperty, TruncationNeverCrashes) {
  // Every truncation of a valid message must decode to an error, never
  // crash or read out of bounds.
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    ofp::FlowMod fm;
    fm.spec = rng.spec(true);
    auto bytes = ofp::encode(ofp::Version::of13, 1, fm);
    ASSERT_TRUE(bytes.ok());
    for (std::size_t len = 0; len < bytes->size(); ++len) {
      std::vector<std::uint8_t> cut(bytes->begin(),
                                    bytes->begin() + static_cast<long>(len));
      if (len >= 4) {  // keep the claimed length honest
        cut[2] = static_cast<std::uint8_t>(len >> 8);
        cut[3] = static_cast<std::uint8_t>(len);
      }
      auto result = ofp::decode(cut);
      // Any outcome is fine; it must simply not crash or over-read.
      (void)result.ok();
    }
  }
}

TEST_P(CodecProperty, PacketParserSurvivesRandomBytes) {
  // parse_frame / parse_lldp must never crash or over-read, whatever the
  // wire carries.
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 2000; ++round) {
    net::Frame frame(rng.u32(0, 128));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.u32(0, 255));
    auto parsed = net::parse_frame(frame);
    (void)parsed.ok();
    auto lldp = net::parse_lldp(frame);
    (void)lldp.ok();
  }
}

TEST_P(CodecProperty, PacketBuildParseRoundTrip) {
  Rng rng(GetParam() + 2000);
  for (int round = 0; round < 300; ++round) {
    auto src = MacAddress::from_u64(rng.u32(1, 0xffffff));
    auto dst = MacAddress::from_u64(rng.u32(1, 0xffffff));
    Ipv4Address sip(rng.u32(1, 0xffffffff));
    Ipv4Address dip(rng.u32(1, 0xffffffff));
    std::uint16_t sport = static_cast<std::uint16_t>(rng.u32(1, 0xffff));
    std::uint16_t dport = static_cast<std::uint16_t>(rng.u32(1, 0xffff));
    std::vector<std::uint8_t> payload(rng.u32(0, 64));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.u32(0, 255));

    bool udp = rng.chance(0.5);
    auto frame = udp ? net::build_udp(dst, src, sip, dip, sport, dport,
                                      payload)
                     : net::build_tcp(dst, src, sip, dip, sport, dport,
                                      payload);
    auto parsed = net::parse_frame(frame);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->dl_src, src);
    EXPECT_EQ(parsed->dl_dst, dst);
    ASSERT_TRUE(parsed->ipv4.has_value());
    EXPECT_EQ(parsed->ipv4->src, sip);
    EXPECT_EQ(parsed->ipv4->dst, dip);
    ASSERT_TRUE(parsed->l4.has_value());
    EXPECT_EQ(parsed->l4->src_port, sport);
    EXPECT_EQ(parsed->l4->dst_port, dport);
    EXPECT_EQ(parsed->l4_payload, payload);
    // And survives a VLAN tag round trip.
    EXPECT_EQ(net::without_vlan_tag(net::with_vlan_tag(frame, 5, 1)), frame);
  }
}

// --- flowio round trips --------------------------------------------------------

class FlowIoProperty : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FlowIoProperty, ::testing::Range(1u, 6u));

TEST_P(FlowIoProperty, WriteReadRoundTripsRandomSpecs) {
  Rng rng(GetParam());
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  for (int round = 0; round < 100; ++round) {
    FlowSpec spec = rng.spec(true);
    const std::string dir = "/net/switches/sw1/flows/f";
    ASSERT_FALSE(netfs::write_flow(*vfs, dir, spec));
    auto got = netfs::read_flow(*vfs, dir);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->match, spec.match);
    EXPECT_EQ(got->actions, spec.actions);
    EXPECT_EQ(got->priority, spec.priority);
    EXPECT_EQ(got->idle_timeout, spec.idle_timeout);
    EXPECT_EQ(got->hard_timeout, spec.hard_timeout);
    EXPECT_EQ(got->cookie, spec.cookie);
    EXPECT_EQ(got->table_id, spec.table_id);
    EXPECT_EQ(got->goto_table, spec.goto_table);
    ASSERT_FALSE(vfs->rmdir(dir));
  }
}

// --- FlowTable vs reference model -------------------------------------------------

// The reference: a plain list, scanned by (priority desc, insertion order).
struct ReferenceTable {
  struct Entry {
    FlowSpec spec;
    std::uint64_t seq;
  };
  std::vector<Entry> entries;
  std::uint64_t next_seq = 0;

  void add(const FlowSpec& spec) {
    for (auto& e : entries) {
      if (e.spec.priority == spec.priority && e.spec.match == spec.match) {
        std::uint64_t seq = e.seq;
        e = Entry{spec, seq};
        return;
      }
    }
    entries.push_back(Entry{spec, next_seq++});
  }
  void remove(const Match& match, std::uint16_t priority, bool strict) {
    std::erase_if(entries, [&](const Entry& e) {
      return strict ? (e.spec.match == match && e.spec.priority == priority)
                    : match.subsumes(e.spec.match);
    });
  }
  const FlowSpec* lookup(const FieldValues& pkt) const {
    const Entry* best = nullptr;
    for (const auto& e : entries) {
      if (!e.spec.match.matches(pkt)) continue;
      if (!best || e.spec.priority > best->spec.priority ||
          (e.spec.priority == best->spec.priority && e.seq < best->seq))
        best = &e;
    }
    return best ? &best->spec : nullptr;
  }
};

class FlowTableProperty : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableProperty, ::testing::Range(1u, 11u));

TEST_P(FlowTableProperty, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  sw::FlowTable table;
  ReferenceTable reference;
  for (int op = 0; op < 500; ++op) {
    double dice = rng.chance(0.5) ? 0.0 : 1.0;
    if (op % 5 == 4) {
      Match m = rng.match();
      bool strict = dice == 0.0;
      std::uint16_t priority = static_cast<std::uint16_t>(rng.u32(0, 3));
      table.remove(m, priority, strict);
      reference.remove(m, priority, strict);
    } else {
      FlowSpec spec = rng.spec(false);
      spec.priority = static_cast<std::uint16_t>(rng.u32(0, 3));
      spec.idle_timeout = spec.hard_timeout = 0;  // no expiry here
      table.add(spec, 0, 0);
      reference.add(spec);
    }
    ASSERT_EQ(table.size(), reference.entries.size()) << "op " << op;
    // Probe with random packets.
    for (int probe = 0; probe < 5; ++probe) {
      FieldValues pkt = rng.packet();
      const auto* got = table.lookup(pkt, 0, 64, false);
      const auto* want = reference.lookup(pkt);
      ASSERT_EQ(got != nullptr, want != nullptr) << "op " << op;
      if (got) {
        EXPECT_EQ(got->spec.priority, want->priority);
        EXPECT_EQ(got->spec.match, want->match);
      }
    }
  }
}

// --- VFS tree reclamation ----------------------------------------------------------

class VfsTreeProperty : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, VfsTreeProperty, ::testing::Range(1u, 6u));

TEST_P(VfsTreeProperty, RandomTreeIsFullyReclaimed) {
  Rng rng(GetParam());
  auto fs = std::make_shared<vfs::MemFs>();
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_FALSE(vfs->mkdir("/root"));
  ASSERT_FALSE(vfs->mount("/root", fs));
  std::size_t baseline_inodes = fs->inode_count();

  std::vector<std::string> dirs{"/root"};
  for (int op = 0; op < 300; ++op) {
    const std::string& parent = dirs[rng.u32(0, static_cast<std::uint32_t>(
                                                    dirs.size() - 1))];
    std::string name = "n" + std::to_string(op);
    if (rng.chance(0.4)) {
      ASSERT_FALSE(vfs->mkdir(parent + "/" + name));
      dirs.push_back(parent + "/" + name);
    } else if (rng.chance(0.8)) {
      std::string content(rng.u32(0, 64), 'x');
      ASSERT_FALSE(vfs->write_file(parent + "/" + name, content));
    } else {
      ASSERT_FALSE(vfs->symlink("/root", parent + "/" + name));
    }
  }
  ASSERT_GT(fs->inode_count(), baseline_inodes);
  // Tear down everything under /root (but not /root itself: mount point).
  auto entries = vfs->readdir("/root");
  ASSERT_TRUE(entries.ok());
  for (const auto& e : *entries)
    ASSERT_FALSE(vfs->remove_all("/root/" + e.name));
  EXPECT_EQ(fs->inode_count(), baseline_inodes);
  EXPECT_EQ(fs->bytes_used(), 0u);
}

// --- replicated convergence ----------------------------------------------------------

namespace {

// Canonical serialization of a whole filesystem tree (names, types,
// contents, symlink targets), for replica equality checks.
std::string serialize_tree(vfs::Filesystem& fs, vfs::NodeId node) {
  auto st = fs.getattr(node);
  if (!st) return "?";
  if (st->is_symlink()) return "l:" + *fs.readlink(node);
  if (st->is_file()) {
    auto data = fs.read(node, 0, 1 << 20, {});
    return "f:" + (data ? *data : "?");
  }
  std::string out = "d{";
  auto entries = fs.readdir(node);
  if (entries) {
    for (const auto& e : *entries) {
      out += e.name + "=";
      out += serialize_tree(fs, e.node);
      out += ";";
    }
  }
  return out + "}";
}

}  // namespace

class ConvergenceProperty : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceProperty,
                         ::testing::Range(1u, 6u));

TEST_P(ConvergenceProperty, EventualReplicasConverge) {
  Rng rng(GetParam());
  net::Scheduler scheduler;
  dist::Cluster cluster(
      scheduler,
      dist::ClusterOptions{.nodes = 2,
                           .link_latency = std::chrono::microseconds(50),
                           .default_mode = dist::Mode::eventual});
  std::vector<std::shared_ptr<vfs::Vfs>> nodes;
  for (std::size_t n = 0; n < 2; ++n) {
    auto v = std::make_shared<vfs::Vfs>();
    (void)v->mkdir("/net");
    (void)v->mount("/net", cluster.fs(n));
    nodes.push_back(v);
  }

  bool partitioned = false;
  for (int op = 0; op < 200; ++op) {
    auto& v = *nodes[rng.u32(0, 1)];
    switch (rng.u32(0, 4)) {
      case 0:
        (void)v.mkdir("/net/switches/sw" + std::to_string(rng.u32(0, 9)));
        break;
      case 1: {
        std::string sw = "sw" + std::to_string(rng.u32(0, 9));
        (void)v.mkdir("/net/switches/" + sw + "/flows/f" +
                      std::to_string(rng.u32(0, 4)));
        break;
      }
      case 2: {
        std::string path = "/net/switches/sw" +
                           std::to_string(rng.u32(0, 9)) + "/id";
        (void)v.write_file(path, "0x" + std::to_string(rng.u32(1, 999)));
        break;
      }
      case 3:
        (void)v.rmdir("/net/switches/sw" + std::to_string(rng.u32(0, 9)));
        break;
      case 4:
        if (!partitioned && rng.chance(0.3)) {
          cluster.partition(0, 1);
          partitioned = true;
        } else if (partitioned) {
          cluster.heal(0, 1);
          partitioned = false;
        }
        break;
    }
    if (rng.chance(0.2)) scheduler.run_until_idle();
  }
  if (partitioned) cluster.heal(0, 1);
  scheduler.run_until_idle();

  std::string tree0 = serialize_tree(*cluster.fs(0), cluster.fs(0)->root());
  std::string tree1 = serialize_tree(*cluster.fs(1), cluster.fs(1)->root());
  EXPECT_EQ(tree0, tree1) << "replicas diverged (seed " << GetParam() << ")";
}

}  // namespace
}  // namespace yanc
