// Tests for libyanc (§8.1): arena, SPSC ring, atomic flow batches, the
// zero-copy packet pool, and the driver-side consumer — including the
// property that a published batch reaches the wire *and* the mirror FS.
#include <gtest/gtest.h>

#include <thread>

#include "yanc/fast/arena.hpp"
#include "yanc/fast/consumer.hpp"
#include "yanc/fast/packet_pool.hpp"
#include "yanc/fast/ring.hpp"
#include "yanc/fast/syscall_model.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/netfs/yancfs.hpp"

namespace yanc::fast {
namespace {

using flow::Action;
using flow::FlowSpec;

TEST(ArenaTest, BumpAllocatesAligned) {
  ShmArena arena(1024);
  auto* a = arena.alloc(10);
  auto* b = arena.alloc(10, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Alignment is relative to the arena base (a real shm segment is mapped
  // page-aligned, so offset alignment is the meaningful contract).  `a`
  // sits at offset 0.
  EXPECT_EQ(static_cast<std::size_t>(b - a) % 64, 0u);
  EXPECT_GE(arena.used(), 20u);
  EXPECT_EQ(arena.alloc(2000), nullptr);  // exhausted
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_NE(arena.alloc(1000), nullptr);
}

TEST(RingTest, FifoOrder) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));  // full
  for (int i = 0; i < 4; ++i) EXPECT_EQ(*ring.pop(), i);
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(RingTest, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(RingTest, CrossThreadStress) {
  SpscRing<std::uint64_t> ring(256);
  constexpr std::uint64_t kCount = 100'000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t received = 0;
    while (received < kCount) {
      if (auto v = ring.pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  for (std::uint64_t i = 1; i <= kCount;) {
    if (ring.push(i)) ++i;
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(FlowChannelTest, BatchesArriveInOrder) {
  FlowChannel channel(8);
  FlowBatch b1{"sw1", {{"f1", FlowSpec{}}}};
  FlowBatch b2{"sw2", {{"f2", FlowSpec{}}, {"f3", FlowSpec{}}}};
  EXPECT_TRUE(channel.submit(std::move(b1)));
  EXPECT_TRUE(channel.submit(std::move(b2)));
  EXPECT_EQ(channel.pending(), 2u);
  auto got1 = channel.take();
  ASSERT_TRUE(got1.has_value());
  EXPECT_EQ(got1->switch_name, "sw1");
  auto got2 = channel.take();
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(got2->entries.size(), 2u);
  EXPECT_EQ(channel.submitted(), 2u);
  EXPECT_EQ(channel.taken(), 2u);
}

TEST(PacketPoolTest, ZeroCopyFanOut) {
  PacketPool pool(4, 256);
  std::vector<std::uint8_t> frame{1, 2, 3, 4};
  auto ref = pool.emplace(frame, /*datapath=*/7, /*in_port=*/3);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(pool.slots_free(), 3u);

  // Fan out to three "applications": all see the same bytes at the same
  // address (zero copies).
  PacketRef a = *ref, b = *ref, c = *ref;
  EXPECT_EQ(a.data().data(), b.data().data());
  EXPECT_EQ(b.data().data(), c.data().data());
  EXPECT_EQ(a.in_port(), 3);
  EXPECT_EQ(a.datapath(), 7u);
  EXPECT_EQ(std::vector<std::uint8_t>(a.data().begin(), a.data().end()),
            frame);

  // The slot is reclaimed only when the last reference drops.
  *ref = PacketRef{};
  a = PacketRef{};
  b = PacketRef{};
  EXPECT_EQ(pool.slots_free(), 3u);
  c = PacketRef{};
  EXPECT_EQ(pool.slots_free(), 4u);
}

TEST(PacketPoolTest, ExhaustionAndOversize) {
  PacketPool pool(1, 16);
  std::vector<std::uint8_t> small{1};
  auto first = pool.emplace(small, 0, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(pool.emplace(small, 0, 0).error(),
            make_error_code(Errc::no_space));
  std::vector<std::uint8_t> big(17, 0);
  EXPECT_EQ(pool.emplace(big, 0, 0).error(),
            make_error_code(Errc::no_space));
  *first = PacketRef{};
  EXPECT_TRUE(pool.emplace(small, 0, 0).ok());
}

TEST(ConsumerTest, DrainsEncodesAndMirrors) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));

  FlowChannel channel;
  FlowSpec spec;
  spec.match.tp_dst = 22;
  spec.actions = {Action::output(2)};
  ASSERT_TRUE(channel.submit(FlowBatch{"sw1", {{"ssh", spec}}}));

  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> wire;
  auto stats = drain_flow_channel(
      channel, ofp::Version::of10,
      [&](const std::string& sw, std::vector<std::uint8_t> bytes) {
        wire.emplace_back(sw, std::move(bytes));
      },
      vfs.get());

  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.flows, 1u);
  EXPECT_EQ(stats.encode_failures, 0u);
  ASSERT_EQ(wire.size(), 1u);
  EXPECT_EQ(wire[0].first, "sw1");
  // The bytes are a decodable FLOW_MOD carrying the spec.
  auto decoded = ofp::decode(wire[0].second);
  ASSERT_TRUE(decoded.ok());
  auto& fm = std::get<ofp::FlowMod>(decoded->message);
  EXPECT_EQ(fm.spec.match.tp_dst, 22);
  // And the mirror made the flow visible to FS users.
  auto mirrored = netfs::read_flow(*vfs, "/net/switches/sw1/flows/ssh");
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(mirrored->match.tp_dst, 22);
  EXPECT_GE(mirrored->version, 1u);
}

TEST(SyscallModelTest, OverheadScalesWithOps) {
  SyscallCostModel model{.cost_ns = 700};
  EXPECT_EQ(model.overhead_ns(10), 7000u);
  vfs::Vfs v;
  v.reset_counters();
  (void)v.write_file("/f", "x");
  (void)v.read_file("/f");
  EXPECT_GT(model.overhead_ns(v.counters()), 0u);
}

}  // namespace
}  // namespace yanc::fast
