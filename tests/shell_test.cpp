// Tests for the shell utilities (§5.4), including the paper's two
// flagship one-liners against a real yanc FS.
#include <gtest/gtest.h>

#include "yanc/netfs/handles.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/obs/trace_fs.hpp"
#include "yanc/shell/coreutils.hpp"

namespace yanc::shell {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
    netfs::NetDir net(vfs);
    ASSERT_FALSE(net.add_switch("sw1"));
    ASSERT_FALSE(net.add_switch("sw2"));
    flow::FlowSpec ssh;
    ssh.match.tp_dst = 22;
    ssh.actions = {flow::Action::output(2)};
    ASSERT_FALSE(net.switch_at("sw1").add_flow("ssh-fw", ssh));
    flow::FlowSpec web;
    web.match.tp_dst = 80;
    web.actions = {flow::Action::output(3)};
    ASSERT_FALSE(net.switch_at("sw2").add_flow("web", web));
  }
  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
};

TEST_F(ShellTest, LsSwitches) {
  // "$ ls -l /net/switches" (§5.4)
  auto out = ls(*vfs, "/net/switches");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "sw1\nsw2\n");
  auto long_out = ls(*vfs, "/net/switches", true);
  ASSERT_TRUE(long_out.ok());
  EXPECT_NE(long_out->find("drwxr-xr-x"), std::string::npos);
}

TEST_F(ShellTest, LsSingleFile) {
  auto out = ls(*vfs, "/net/switches/sw1/id");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "/net/switches/sw1/id\n");
  EXPECT_EQ(ls(*vfs, "/net/nope").error(),
            make_error_code(Errc::not_found));
}

TEST_F(ShellTest, CatAndEcho) {
  ASSERT_FALSE(echo_to(*vfs, "/net/switches/sw1/id", "0x1234"));
  auto out = cat(*vfs, "/net/switches/sw1/id");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "0x1234");
}

TEST_F(ShellTest, TreeShowsHierarchyAndLinks) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/ports/1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw2/ports/2"));
  ASSERT_FALSE(vfs->symlink("/net/switches/sw2/ports/2",
                            "/net/switches/sw1/ports/1/peer"));
  auto out = tree(*vfs, "/net/switches/sw1/ports");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("└── 1"), std::string::npos);
  EXPECT_NE(out->find("peer -> /net/switches/sw2/ports/2"),
            std::string::npos);
  EXPECT_NE(out->find("counters"), std::string::npos);
}

TEST_F(ShellTest, FindByName) {
  auto hits = find_name(*vfs, "/net", "match.tp_dst");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, (std::vector<std::string>{
                       "/net/switches/sw1/flows/ssh-fw/match.tp_dst",
                       "/net/switches/sw2/flows/web/match.tp_dst"}));
  // Globbing works on names.
  auto globbed = find_name(*vfs, "/net", "action.*");
  ASSERT_TRUE(globbed.ok());
  EXPECT_EQ(globbed->size(), 2u);
}

TEST_F(ShellTest, GrepFindsContent) {
  auto hits = grep_recursive(*vfs, "/net", "32768");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);  // both flows have default priority files
}

TEST_F(ShellTest, PaperOneLinerSshFlows) {
  // "$ find /net -name tp.dst -exec grep 22" (§5.4)
  auto flows = flows_matching_port(*vfs, "/net", 22);
  ASSERT_TRUE(flows.ok());
  ASSERT_EQ(flows->size(), 1u);
  EXPECT_EQ((*flows)[0], "/net/switches/sw1/flows/ssh-fw");
  // Port 443: nothing.
  EXPECT_TRUE(flows_matching_port(*vfs, "/net", 443)->empty());
}

TEST_F(ShellTest, CpCopiesTreesAndMvRenames) {
  // §7.2's elastic middlebox story relies on cp/mv of state subtrees.
  ASSERT_FALSE(vfs->mkdir("/net/middleboxes/ids1"));
  ASSERT_FALSE(vfs->write_file("/net/middleboxes/ids1/state/sig-a", "A"));
  ASSERT_FALSE(vfs->write_file("/net/middleboxes/ids1/state/sig-b", "B"));
  ASSERT_FALSE(vfs->mkdir("/net/middleboxes/ids2"));
  // Replicate the whole signature state to the new instance.
  ASSERT_FALSE(cp(*vfs, "/net/middleboxes/ids1/state",
                  "/net/middleboxes/ids2/state"));
  EXPECT_EQ(*cat(*vfs, "/net/middleboxes/ids2/state/sig-a"), "A");
  EXPECT_EQ(*cat(*vfs, "/net/middleboxes/ids2/state/sig-b"), "B");
  // Source unchanged (cp, not mv).
  EXPECT_EQ(vfs->readdir("/net/middleboxes/ids1/state")->size(), 2u);
  // mv renames.
  ASSERT_FALSE(mv(*vfs, "/net/middleboxes/ids2/state/sig-b",
                  "/net/middleboxes/ids2/state/sig-b2"));
  EXPECT_FALSE(vfs->stat("/net/middleboxes/ids2/state/sig-b").ok());
  EXPECT_EQ(*cat(*vfs, "/net/middleboxes/ids2/state/sig-b2"), "B");
  // cp of a missing source reports the error.
  EXPECT_EQ(cp(*vfs, "/net/nope", "/net/middleboxes/ids2/state/x"),
            make_error_code(Errc::not_found));
}

TEST_F(ShellTest, TraceShowReadsCapturedTraces) {
  // `yancsh trace <id|filter>` over a mounted /yanc/.trace subtree.
  obs::Tracer tracer;
  tracer.start();
  auto root =
      tracer.mint("netfs", "write_flow", "/net/switches/sw1/flows/dns");
  ASSERT_TRUE(bool(root));
  std::uint64_t t0 = obs::Tracer::now_ns();
  (void)tracer.child(root, "driver", "commit", t0, t0 + 1000, 250);
  ASSERT_FALSE(vfs->mkdir_p("/yanc/.trace", 0555, vfs::Credentials::root()));
  ASSERT_FALSE(
      vfs->mount("/yanc/.trace", std::make_shared<obs::TraceFs>(&tracer)));

  // A captured trace id resolves directly to its span tree.
  auto by_id = trace_show(*vfs, std::to_string(root.trace_id));
  ASSERT_TRUE(by_id.ok());
  EXPECT_NE(by_id->find("netfs/write_flow"), std::string::npos);
  EXPECT_NE(by_id->find("driver/commit"), std::string::npos);

  // A non-id argument filters by content: the flow path rode in on the
  // ingress note, so it selects the same trace.
  auto filtered = trace_show(*vfs, "/net/switches/sw1/flows/dns");
  ASSERT_TRUE(filtered.ok());
  EXPECT_NE(filtered->find("driver/commit"), std::string::npos);

  EXPECT_EQ(trace_show(*vfs, "no-such-thing").error(),
            make_error_code(Errc::not_found));
}

TEST_F(ShellTest, PermissionsRespected) {
  ASSERT_FALSE(vfs->chmod("/net/switches/sw1/id", 0600));
  ASSERT_FALSE(vfs->chown("/net/switches/sw1/id", 0, 0));
  auto denied = cat(*vfs, "/net/switches/sw1/id",
                    vfs::Credentials::user(1000, 1000));
  EXPECT_EQ(denied.error(), make_error_code(Errc::access_denied));
}

}  // namespace
}  // namespace yanc::shell
