// Integration tests for the OpenFlow driver: the §4.1 translation layer
// between the yanc file system and switches.  Each test wires a real
// YancFs, a real software switch, and the driver over an in-memory
// channel, then drives both sides to quiescence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "yanc/driver/of_driver.hpp"
#include "yanc/driver/text_driver.hpp"
#include "yanc/faults/injector.hpp"
#include "yanc/netfs/handles.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/obs/tracer.hpp"
#include "yanc/sw/switch.hpp"

namespace yanc::driver {
namespace {

using flow::Action;
using flow::FlowSpec;

class DriverTest : public ::testing::TestWithParam<ofp::Version> {
 protected:
  DriverTest() : network(scheduler) {}

  void SetUp() override {
    ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
    DriverOptions opts;
    opts.version = GetParam();
    driver = std::make_unique<OfDriver>(vfs, opts);
  }

  std::unique_ptr<sw::Switch> make_switch(std::uint64_t dpid,
                                          int ports = 3,
                                          std::uint8_t tables = 1) {
    sw::SwitchOptions opts;
    opts.datapath_id = dpid;
    opts.version = GetParam();
    opts.n_tables = tables;
    auto s = std::make_unique<sw::Switch>("dp" + std::to_string(dpid), opts,
                                          network);
    for (int p = 1; p <= ports; ++p)
      s->add_port(static_cast<std::uint16_t>(p),
                  MacAddress::from_u64(0x020000000000ull | (dpid << 8) |
                                       static_cast<std::uint64_t>(p)),
                  "eth" + std::to_string(p));
    s->connect(driver->listener().connect());
    return s;
  }

  /// Runs driver, switches, and the simulated network to quiescence.
  void settle(std::initializer_list<sw::Switch*> switches) {
    for (int round = 0; round < 30; ++round) {
      std::size_t work = driver->poll();
      for (auto* s : switches) work += s->pump();
      work += scheduler.run_until_idle();
      if (work == 0) break;
    }
  }

  netfs::NetDir net() { return netfs::NetDir(vfs); }

  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
  net::Scheduler scheduler;
  net::Network network;
  std::unique_ptr<OfDriver> driver;
};

INSTANTIATE_TEST_SUITE_P(Versions, DriverTest,
                         ::testing::Values(ofp::Version::of10,
                                           ofp::Version::of13),
                         [](const auto& info) {
                           return info.param == ofp::Version::of10 ? "of10"
                                                                   : "of13";
                         });

TEST_P(DriverTest, HandshakePopulatesSwitchDirectory) {
  auto s = make_switch(0x42);
  settle({s.get()});
  EXPECT_EQ(driver->connected_switches(), 1u);

  auto name = driver->switch_name(0x42);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "sw1");
  auto sw_handle = net().switch_at("sw1");
  ASSERT_TRUE(sw_handle.exists());
  EXPECT_EQ(*sw_handle.datapath_id(), 0x42u);
  EXPECT_TRUE(*sw_handle.connected());
  EXPECT_EQ(*sw_handle.protocol_version(),
            ofp::version_name(GetParam()));
  // Ports appear under ports/ for both versions (1.0 via features,
  // 1.3 via the port-desc multipart).
  auto ports = sw_handle.port_names();
  ASSERT_TRUE(ports.ok());
  EXPECT_EQ(*ports, (std::vector<std::string>{"1", "2", "3"}));
  // Identity strings came from desc stats.
  EXPECT_EQ(*sw_handle.read_field("manufacturer"), "yanc project");
}

TEST_P(DriverTest, CommittedFlowReachesHardware) {
  auto s = make_switch(0x42);
  settle({s.get()});

  FlowSpec spec;
  spec.match.dl_type = 0x0806;
  spec.actions = {Action::flood()};
  spec.priority = 200;
  ASSERT_FALSE(net().switch_at("sw1").add_flow("arp", spec));
  settle({s.get()});

  ASSERT_EQ(s->table().size(), 1u);
  EXPECT_EQ(s->table().entries()[0].spec.match.dl_type, 0x0806);
  EXPECT_EQ(s->table().entries()[0].spec.priority, 200);
  // The driver tracked the flow_mod in the switch counters.
  EXPECT_EQ(*net().switch_at("sw1").read_field("counters/flow_mods"), "1");
}

TEST_P(DriverTest, CommitBurstShipsAsOneTrain) {
  auto s = make_switch(0x42);
  settle({s.get()});
  auto* trains = vfs->metrics()->histogram("driver/of/batch_size");
  const auto trains_before = trains->count();
  const auto mods_before = trains->sum();

  // Twenty commits land on the shard queue before the driver polls
  // again: the batched drain must dedup each flow to one push and ship
  // the whole burst as a single train (20 FLOW_MODs, one barrier).
  for (int i = 0; i < 20; ++i) {
    FlowSpec spec;
    spec.match.tp_dst = static_cast<std::uint16_t>(1000 + i);
    spec.actions = {Action::output(1)};
    ASSERT_FALSE(
        net().switch_at("sw1").add_flow("b" + std::to_string(i), spec));
  }
  settle({s.get()});

  EXPECT_EQ(s->table().size(), 20u);
  EXPECT_EQ(*net().switch_at("sw1").read_field("counters/flow_mods"), "20");
  EXPECT_EQ(trains->count() - trains_before, 1u);
  EXPECT_EQ(trains->sum() - mods_before, 20u);
}

TEST_P(DriverTest, UncommittedFieldsStayOffHardware) {
  auto s = make_switch(0x42);
  settle({s.get()});
  // Stage fields without bumping the version (§3.4).
  const std::string flow = "/net/switches/sw1/flows/staged";
  ASSERT_FALSE(vfs->mkdir(flow));
  ASSERT_FALSE(vfs->write_file(flow + "/match.tp_dst", "22"));
  ASSERT_FALSE(vfs->write_file(flow + "/action.out", "2"));
  settle({s.get()});
  EXPECT_EQ(s->table().size(), 0u);
  // Commit: now it lands.
  ASSERT_TRUE(netfs::commit_flow(*vfs, flow).ok());
  settle({s.get()});
  ASSERT_EQ(s->table().size(), 1u);
  EXPECT_EQ(s->table().entries()[0].spec.match.tp_dst, 22);
}

TEST_P(DriverTest, RecommitWithNewMatchReplacesHardwareEntry) {
  auto s = make_switch(0x42);
  settle({s.get()});
  auto sw_handle = net().switch_at("sw1");
  FlowSpec spec;
  spec.match.tp_dst = 22;
  spec.actions = {Action::output(2)};
  ASSERT_FALSE(sw_handle.add_flow("f", spec));
  settle({s.get()});
  ASSERT_EQ(s->table().size(), 1u);

  // Change the match and recommit: the old entry must not linger.
  spec.match.tp_dst = 80;
  ASSERT_FALSE(sw_handle.flow_at("f").write(spec));
  settle({s.get()});
  ASSERT_EQ(s->table().size(), 1u);
  EXPECT_EQ(s->table().entries()[0].spec.match.tp_dst, 80);
}

TEST_P(DriverTest, RmdirDeletesHardwareFlow) {
  auto s = make_switch(0x42);
  settle({s.get()});
  FlowSpec spec;
  spec.actions = {Action::output(1)};
  ASSERT_FALSE(net().switch_at("sw1").add_flow("f", spec));
  settle({s.get()});
  ASSERT_EQ(s->table().size(), 1u);
  ASSERT_FALSE(net().switch_at("sw1").remove_flow("f"));
  settle({s.get()});
  EXPECT_EQ(s->table().size(), 0u);
}

TEST_P(DriverTest, PacketInLandsInEveryEventBuffer) {
  auto s = make_switch(0x42);
  settle({s.get()});
  auto buf_a = net().open_events("router");
  auto buf_b = net().open_events("monitor");
  ASSERT_TRUE(buf_a.ok() && buf_b.ok());

  auto frame = net::build_ethernet(MacAddress{}, MacAddress{}, 0x1234, {7});
  s->handle_frame(2, frame);
  settle({s.get()});

  for (auto* buf : {&*buf_a, &*buf_b}) {
    auto events = buf->drain();
    ASSERT_TRUE(events.ok());
    ASSERT_EQ(events->size(), 1u) << buf->path();
    EXPECT_EQ((*events)[0].datapath, "sw1");
    EXPECT_EQ((*events)[0].in_port, 2);
    EXPECT_EQ((*events)[0].reason, "no_match");
    EXPECT_EQ((*events)[0].data,
              std::string(frame.begin(), frame.end()));
  }
  EXPECT_EQ(*net().switch_at("sw1").read_field("counters/packet_ins"), "1");
}

TEST_P(DriverTest, PacketOutThroughFilesystem) {
  auto s = make_switch(0x42);
  settle({s.get()});
  net::Host h("h", *MacAddress::parse("0a:00:00:00:00:01"),
              *Ipv4Address::parse("10.0.0.1"), network);
  ASSERT_TRUE(network.add_link(*s, 2, h, 0).ok());

  auto frame = net::build_ethernet(h.mac(), MacAddress{}, 0x1234, {1, 2});
  const std::string dir = "/net/switches/sw1/packet_out/req1";
  ASSERT_FALSE(vfs->mkdir(dir));
  ASSERT_FALSE(vfs->write_file(dir + "/out", "2"));
  ASSERT_FALSE(vfs->write_file(
      dir + "/data",
      std::string_view(reinterpret_cast<const char*>(frame.data()),
                       frame.size())));
  ASSERT_FALSE(vfs->write_file(dir + "/send", "1"));
  settle({s.get()});

  EXPECT_EQ(h.frames_received(), 1u);
  EXPECT_EQ(h.received_log()[0], frame);
  // The request directory was consumed.
  EXPECT_FALSE(vfs->stat(dir).ok());
  EXPECT_EQ(*net().switch_at("sw1").read_field("counters/packet_outs"), "1");
}

TEST_P(DriverTest, PortDownWriteBecomesPortMod) {
  auto s = make_switch(0x42);
  settle({s.get()});
  // "# echo 1 > port_2/config.port_down" (§3.1)
  ASSERT_FALSE(
      vfs->write_file("/net/switches/sw1/ports/2/config.port_down", "1"));
  settle({s.get()});
  EXPECT_TRUE(s->ports().at(2).desc.port_down);
  // And back up.
  ASSERT_FALSE(
      vfs->write_file("/net/switches/sw1/ports/2/config.port_down", "0"));
  settle({s.get()});
  EXPECT_FALSE(s->ports().at(2).desc.port_down);
}

TEST_P(DriverTest, LinkDownReflectedInPortState) {
  auto s = make_switch(0x42);
  settle({s.get()});
  net::Host h("h", MacAddress{}, Ipv4Address{}, network);
  auto link = network.add_link(*s, 1, h, 0);
  ASSERT_TRUE(link.ok());
  ASSERT_FALSE(network.set_link_up(*link, false));
  settle({s.get()});
  EXPECT_TRUE(*net().switch_at("sw1").port_at(1).link_down());
}

TEST_P(DriverTest, HardwareExpiryRemovesFlowDirectory) {
  auto s = make_switch(0x42);
  settle({s.get()});
  FlowSpec spec;
  spec.hard_timeout = 1;
  spec.actions = {Action::output(1)};
  ASSERT_FALSE(net().switch_at("sw1").add_flow("transient", spec));
  settle({s.get()});
  ASSERT_EQ(s->table().size(), 1u);

  scheduler.schedule_after(std::chrono::seconds(2), [] {});
  scheduler.run_until_idle();
  s->expire_flows();
  settle({s.get()});
  EXPECT_EQ(s->table().size(), 0u);
  EXPECT_FALSE(net().switch_at("sw1").flow_at("transient").exists());
  EXPECT_EQ(*net().switch_at("sw1").read_field("counters/flow_expirations"),
            "1");
}

TEST_P(DriverTest, StatsSyncFillsCounters) {
  auto s = make_switch(0x42);
  settle({s.get()});
  net::Host h("h", MacAddress{}, Ipv4Address{}, network);
  ASSERT_TRUE(network.add_link(*s, 2, h, 0).ok());

  FlowSpec spec;
  spec.actions = {Action::output(2)};
  ASSERT_FALSE(net().switch_at("sw1").add_flow("all", spec));
  settle({s.get()});

  auto frame = net::build_ethernet(MacAddress{}, MacAddress{}, 0x1234,
                                   std::vector<std::uint8_t>(86, 0));
  s->handle_frame(1, frame);
  s->handle_frame(1, frame);
  scheduler.run_until_idle();

  driver->request_stats();
  settle({s.get()});
  auto stats = net().switch_at("sw1").flow_at("all").stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->packets, 2u);
  EXPECT_EQ(stats->bytes, 2u * frame.size());
  EXPECT_EQ(*net().switch_at("sw1").port_at(2).counter("tx_packets"), 2u);
}

TEST_P(DriverTest, QueueStatsSurfaceAsQueueDirectories) {
  auto s = make_switch(0x42);
  settle({s.get()});
  net::Host h("h", MacAddress{}, Ipv4Address{}, network);
  ASSERT_TRUE(network.add_link(*s, 2, h, 0).ok());

  // A flow enqueues onto port 2, queue 1 (§8's missing piece, done).
  FlowSpec spec;
  spec.actions = {Action{flow::ActionKind::enqueue,
                         std::uint32_t{(2u << 16) | 1u}}};
  ASSERT_FALSE(net().switch_at("sw1").add_flow("q", spec));
  settle({s.get()});

  auto frame = net::build_ethernet(MacAddress{}, MacAddress{}, 0x1234,
                                   std::vector<std::uint8_t>(50, 0));
  s->handle_frame(1, frame);
  s->handle_frame(1, frame);
  scheduler.run_until_idle();
  EXPECT_EQ(h.frames_received(), 2u);

  driver->request_stats();
  settle({s.get()});
  const std::string q = "/net/switches/sw1/ports/2/queues/q1";
  ASSERT_TRUE(vfs->stat(q).ok());
  EXPECT_EQ(*vfs->read_file(q + "/counters/tx_packets"), "2");
  auto bytes = vfs->read_file(q + "/counters/tx_bytes");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, std::to_string(2 * frame.size()));
}

TEST_P(DriverTest, MultipleSwitchesGetDistinctDirectories) {
  auto s1 = make_switch(0x1);
  auto s2 = make_switch(0x2);
  settle({s1.get(), s2.get()});
  EXPECT_EQ(driver->connected_switches(), 2u);
  auto names = net().switch_names();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
  EXPECT_EQ(*driver->switch_name(0x1), "sw1");
  EXPECT_EQ(*driver->switch_name(0x2), "sw2");
}

TEST_P(DriverTest, ReconnectReusesDirectoryAndReinstallsFlows) {
  auto s = make_switch(0x42);
  settle({s.get()});
  FlowSpec spec;
  spec.match.tp_dst = 443;
  spec.actions = {Action::output(3)};
  ASSERT_FALSE(net().switch_at("sw1").add_flow("https", spec));
  settle({s.get()});
  ASSERT_EQ(s->table().size(), 1u);

  // The switch reboots: connection drops, tables are empty.
  s = make_switch(0x42);
  settle({s.get()});
  EXPECT_EQ(*driver->switch_name(0x42), "sw1");  // same directory
  EXPECT_TRUE(*net().switch_at("sw1").connected());
  // The committed flow was re-pushed from the FS.
  ASSERT_EQ(s->table().size(), 1u);
  EXPECT_EQ(s->table().entries()[0].spec.match.tp_dst, 443);
}

TEST_P(DriverTest, EndToEndForwardingAfterFsFlow) {
  auto s = make_switch(0x42);
  settle({s.get()});
  net::Host h1("h1", *MacAddress::parse("0a:00:00:00:00:01"),
               *Ipv4Address::parse("10.0.0.1"), network);
  net::Host h2("h2", *MacAddress::parse("0a:00:00:00:00:02"),
               *Ipv4Address::parse("10.0.0.2"), network);
  ASSERT_TRUE(network.add_link(*s, 1, h1, 0).ok());
  ASSERT_TRUE(network.add_link(*s, 2, h2, 0).ok());

  // Bidirectional port-based forwarding written purely through the FS.
  FlowSpec to2;
  to2.match.in_port = 1;
  to2.actions = {Action::output(2)};
  FlowSpec to1;
  to1.match.in_port = 2;
  to1.actions = {Action::output(1)};
  ASSERT_FALSE(net().switch_at("sw1").add_flow("p1to2", to2));
  ASSERT_FALSE(net().switch_at("sw1").add_flow("p2to1", to1));
  settle({s.get()});

  h1.ping(h2.ip());
  settle({s.get()});
  EXPECT_EQ(h1.echo_replies_received(), 1u);
  EXPECT_EQ(h2.echo_requests_received(), 1u);
}

// A tiny event queue forces inotify-style overflow; the driver must
// recover by rescanning and still converge every committed flow onto the
// switch.
TEST(DriverOverflowRecovery, RescanAfterQueueOverflow) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  net::Scheduler scheduler;
  net::Network network(scheduler);
  DriverOptions opts;
  opts.fs_queue_capacity = 4;  // absurdly small on purpose
  OfDriver driver(vfs, opts);

  sw::SwitchOptions sopts;
  sopts.datapath_id = 0x42;
  sw::Switch s("dp42", sopts, network);
  s.add_port(1, MacAddress::from_u64(1), "eth1");
  s.connect(driver.listener().connect());
  auto settle = [&] {
    for (int round = 0; round < 60; ++round) {
      std::size_t work =
          driver.poll() + s.pump() + scheduler.run_until_idle();
      if (!work) break;
    }
  };
  settle();

  // Burst of 20 flows — far beyond the 4-slot event queue — written
  // between driver polls.
  netfs::NetDir net(vfs);
  for (int i = 0; i < 20; ++i) {
    FlowSpec spec;
    spec.match.tp_dst = static_cast<std::uint16_t>(1000 + i);
    spec.actions = {Action::output(1)};
    ASSERT_FALSE(net.switch_at("sw1").add_flow("f" + std::to_string(i),
                                               spec));
  }
  settle();
  EXPECT_EQ(s.table().size(), 20u);  // all converged despite the overflow
}

// OpenFlow 1.3 multi-table pipelines work end-to-end through the FS: a
// table-0 flow with goto_table and a table-1 flow, both committed as
// files, land in their respective hardware tables.
TEST(Driver13, MultiTablePipelineThroughFs) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  net::Scheduler scheduler;
  net::Network network(scheduler);
  DriverOptions opts;
  opts.version = ofp::Version::of13;
  OfDriver driver(vfs, opts);

  sw::SwitchOptions sopts;
  sopts.datapath_id = 0x7;
  sopts.version = ofp::Version::of13;
  sopts.n_tables = 2;
  sw::Switch s("dp7", sopts, network);
  s.add_port(1, MacAddress::from_u64(1), "eth1");
  s.add_port(2, MacAddress::from_u64(2), "eth2");
  s.connect(driver.listener().connect());
  auto settle = [&] {
    for (int round = 0; round < 60; ++round) {
      std::size_t work =
          driver.poll() + s.pump() + scheduler.run_until_idle();
      if (!work) break;
    }
  };
  settle();

  // table 0: rewrite + goto table 1; table 1: match rewritten dst, output.
  const std::string t0 = "/net/switches/sw1/flows/classify";
  ASSERT_FALSE(vfs->mkdir(t0));
  ASSERT_FALSE(vfs->write_file(t0 + "/table_id", "0"));
  ASSERT_FALSE(vfs->write_file(t0 + "/goto_table", "1"));
  ASSERT_FALSE(
      vfs->write_file(t0 + "/action.set_dl_dst", "02:00:00:00:00:aa"));
  ASSERT_FALSE(vfs->write_file(t0 + "/version", "1"));
  const std::string t1 = "/net/switches/sw1/flows/forward";
  ASSERT_FALSE(vfs->mkdir(t1));
  ASSERT_FALSE(vfs->write_file(t1 + "/table_id", "1"));
  ASSERT_FALSE(vfs->write_file(t1 + "/match.dl_dst", "02:00:00:00:00:aa"));
  ASSERT_FALSE(vfs->write_file(t1 + "/action.out", "2"));
  ASSERT_FALSE(vfs->write_file(t1 + "/version", "1"));
  settle();

  ASSERT_EQ(s.table(0).size(), 1u);
  ASSERT_EQ(s.table(1).size(), 1u);
  EXPECT_EQ(s.table(0).entries()[0].spec.goto_table, 1);

  // And the pipeline actually forwards: a frame in port 1 leaves port 2
  // with the rewritten MAC.
  net::Host h("h", *MacAddress::parse("02:00:00:00:00:aa"),
              *Ipv4Address::parse("10.0.0.9"), network);
  ASSERT_TRUE(network.add_link(s, 2, h, 0).ok());
  auto frame = net::build_ethernet(*MacAddress::parse("02:00:00:00:00:bb"),
                                   MacAddress::from_u64(1), 0x1234, {});
  s.handle_frame(1, frame);
  settle();
  ASSERT_EQ(h.frames_received(), 1u);
  EXPECT_EQ(net::parse_frame(h.received_log()[0])->dl_dst.to_string(),
            "02:00:00:00:00:aa");
}

// Failure injection: hostile or confused switches must not wedge the
// driver or corrupt the file system.
TEST_P(DriverTest, GarbageBytesCloseConnectionOthersSurvive) {
  auto good = make_switch(0x1);
  settle({good.get()});
  ASSERT_EQ(driver->connected_switches(), 1u);

  // A rogue peer connects and sends garbage instead of OpenFlow.
  auto rogue = driver->listener().connect();
  ASSERT_TRUE(rogue.send({0xde, 0xad, 0xbe, 0xef}));
  settle({good.get()});
  EXPECT_FALSE(rogue.connected());  // hung up on
  EXPECT_EQ(driver->connected_switches(), 1u);  // the good switch is fine

  // And the good switch still works end to end.
  FlowSpec spec;
  spec.actions = {Action::output(1)};
  ASSERT_FALSE(net().switch_at("sw1").add_flow("still-works", spec));
  settle({good.get()});
  EXPECT_EQ(good->table().size(), 1u);
}

TEST_P(DriverTest, SwitchErrorMessagesAreTolerated) {
  auto s = make_switch(0x1);
  settle({s.get()});
  // Inject an OpenFlow ERROR from the switch side.
  auto bytes = ofp::encode(GetParam(), 9, ofp::Error{3, 2, {}});
  ASSERT_TRUE(bytes.ok());
  // (reach the driver through a fresh channel pair is not possible here;
  // use the switch's own channel by making the switch emit it)
  // Simplest: drive a flow_mod to a missing table on a 1.3 switch.
  if (GetParam() == ofp::Version::of13) {
    FlowSpec spec;
    spec.table_id = 99;  // the switch only has 1 table
    spec.actions = {Action::output(1)};
    ASSERT_FALSE(net().switch_at("sw1").add_flow("bad-table", spec));
    settle({s.get()});
    // The switch rejected it; the driver logged and carried on.
    EXPECT_EQ(s->table().size(), 0u);
    EXPECT_EQ(driver->connected_switches(), 1u);
  }
}

TEST_P(DriverTest, DisconnectMarksFsAndKeepsState) {
  auto s = make_switch(0x42);
  settle({s.get()});
  FlowSpec spec;
  spec.actions = {Action::output(1)};
  ASSERT_FALSE(net().switch_at("sw1").add_flow("f", spec));
  settle({s.get()});
  ASSERT_TRUE(*net().switch_at("sw1").connected());

  s.reset();  // destroys the switch; channel closes on next send attempt
  // Closing happens via the channel shared state: force it.
  settle({});
  // The driver notices on its next poll that the channel is gone only
  // when the switch closed it; Switch's destructor does not close, so
  // simulate an explicit close via reconnecting a new switch with the
  // same dpid (reboot), which reuses the directory.
  auto reborn = make_switch(0x42);
  settle({reborn.get()});
  EXPECT_TRUE(*net().switch_at("sw1").connected());
  // Committed flow re-pushed from the FS after the reboot.
  EXPECT_EQ(reborn->table().size(), 1u);
}

// §4.1's punchline: a driver for an experimental protocol coexists with
// the OpenFlow drivers on the same file system, and the applications
// cannot tell the difference.
TEST(TextDriver, ExperimentalProtocolCoexists) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  net::Scheduler scheduler;
  net::Network network(scheduler);

  // An OpenFlow switch on the OpenFlow driver...
  OfDriver of_driver(vfs);
  sw::SwitchOptions sopts;
  sopts.datapath_id = 0x1;
  sw::Switch of_switch("dp1", sopts, network);
  of_switch.add_port(1, MacAddress::from_u64(1), "eth1");
  of_switch.connect(of_driver.listener().connect());

  // ...and a TEXT/1 device on the experimental driver.
  TextDriver text_driver(vfs);
  net::Channel device = text_driver.listener().connect();
  ASSERT_TRUE(
      device.send({'H', 'E', 'L', 'L', 'O', ' ', 'i', 'd', '=', '9', '9', ' ',
                   'p', 'o', 'r', 't', 's', '=', '1', ',', '2'}));

  auto settle = [&] {
    for (int round = 0; round < 60; ++round) {
      std::size_t work = of_driver.poll() + text_driver.poll() +
                         of_switch.pump() + scheduler.run_until_idle();
      if (!work) break;
    }
  };
  settle();
  EXPECT_EQ(of_driver.connected_switches(), 1u);
  EXPECT_EQ(text_driver.connected_devices(), 1u);

  // Both appear side by side under switches/ with their protocol marked.
  netfs::NetDir net(vfs);
  auto names = net.switch_names();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"sw1", "xsw1"}));
  EXPECT_EQ(*net.switch_at("sw1").protocol_version(), "1.0");
  EXPECT_EQ(*net.switch_at("xsw1").protocol_version(), "text/1");

  // The same application code programs both (it has no idea which driver
  // serves which directory).
  FlowSpec spec;
  spec.match.tp_dst = 22;
  spec.actions = {Action::output(1)};
  ASSERT_FALSE(net.switch_at("sw1").add_flow("ssh", spec));
  ASSERT_FALSE(net.switch_at("xsw1").add_flow("ssh", spec));
  settle();

  // OpenFlow switch got a FLOW_MOD; the TEXT device got a FLOW line.
  EXPECT_EQ(of_switch.table().size(), 1u);
  auto msg = device.try_recv();
  ASSERT_TRUE(msg.has_value());
  std::string line(msg->begin(), msg->end());
  EXPECT_EQ(line.rfind("FLOW ssh ", 0), 0u) << line;
  EXPECT_NE(line.find("tp_dst=22"), std::string::npos);

  // Flow deletion reaches the device as UNFLOW.
  ASSERT_FALSE(net.switch_at("xsw1").remove_flow("ssh"));
  settle();
  msg = device.try_recv();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::string(msg->begin(), msg->end()), "UNFLOW ssh");

  // And device packet-ins land in the same events/ buffers.
  auto buf = net.open_events("app");
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(
      device.send({'P', 'A', 'C', 'K', 'E', 'T', 'I', 'N', ' ', 'p', 'o', 'r',
                   't', '=', '2', ' ', 'd', 'a', 't', 'a', '=', '0', '1', 'f',
                   'f'}));
  settle();
  auto events = buf->drain();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].datapath, "xsw1");
  EXPECT_EQ((*events)[0].in_port, 2);
  EXPECT_EQ((*events)[0].data, std::string("\x01\xff"));
}

// --- failure domains (docs/ROBUSTNESS.md) --------------------------------------

// A switch that stops answering keepalives is declared dead: status=down,
// connected=0, connection reaped.
TEST(DriverLiveness, KeepaliveTimeoutMarksSwitchDown) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  net::Scheduler scheduler;
  net::Network network(scheduler);
  DriverOptions opts;
  opts.keepalive_interval = 4;
  opts.keepalive_timeout = 16;
  OfDriver driver(vfs, opts);

  sw::SwitchOptions sopts;
  sopts.datapath_id = 0x42;
  sw::Switch s("dp42", sopts, network);
  s.add_port(1, MacAddress::from_u64(1), "eth1");
  s.connect(driver.listener().connect());
  for (int round = 0; round < 30; ++round) {
    std::size_t work = driver.poll() + s.pump() + scheduler.run_until_idle();
    if (!work) break;
  }
  netfs::NetDir net(vfs);
  ASSERT_TRUE(*net.switch_at("sw1").connected());
  ASSERT_EQ(*net.switch_at("sw1").read_field("status"), "up");

  // The switch wedges: it never pumps its control channel again.  The
  // driver pings after 4 quiet ticks and gives up after 16.
  for (int round = 0; round < 40; ++round) {
    driver.poll();
    scheduler.run_until_idle();
  }
  EXPECT_EQ(driver.connected_switches(), 0u);
  EXPECT_EQ(*net.switch_at("sw1").read_field("status"), "down");
  EXPECT_FALSE(*net.switch_at("sw1").connected());
  EXPECT_GE(
      vfs->metrics()->counter("driver/of/keepalive_timeout_total")->value(),
      1u);
}

// Switch death in the middle of a flow commit: the FS keeps the committed
// record, the directory is marked down, and a reborn switch with the same
// dpid is restored to the full table from the FS alone (§3.4).
TEST(DriverLiveness, SwitchDeathMidCommitThenResync) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  net::Scheduler scheduler;
  net::Network network(scheduler);
  DriverOptions opts;
  opts.keepalive_interval = 4;
  opts.keepalive_timeout = 16;
  opts.request_timeout = 4;
  opts.max_retries = 3;
  OfDriver driver(vfs, opts);

  auto spawn = [&](const char* name) {
    sw::SwitchOptions sopts;
    sopts.datapath_id = 0x42;
    auto s = std::make_unique<sw::Switch>(name, sopts, network);
    s->add_port(1, MacAddress::from_u64(1), "eth1");
    s->connect(driver.listener().connect());
    return s;
  };
  auto settle = [&](sw::Switch* s) {
    for (int round = 0; round < 60; ++round) {
      std::size_t work = driver.poll() + (s ? s->pump() : 0) +
                         scheduler.run_until_idle();
      if (!work) break;
    }
  };

  auto s = spawn("dp42a");
  settle(s.get());
  netfs::NetDir net(vfs);
  FlowSpec https;
  https.match.tp_dst = 443;
  https.actions = {Action::output(1)};
  ASSERT_FALSE(net.switch_at("sw1").add_flow("https", https));
  settle(s.get());
  ASSERT_EQ(s->table().size(), 1u);

  // Commit a second flow and kill the switch before it can process the
  // FLOW_MOD.
  FlowSpec ssh;
  ssh.match.tp_dst = 22;
  ssh.actions = {Action::output(1)};
  ASSERT_FALSE(net.switch_at("sw1").add_flow("ssh", ssh));
  s->disconnect();
  settle(nullptr);

  EXPECT_EQ(driver.connected_switches(), 0u);
  EXPECT_EQ(*net.switch_at("sw1").read_field("status"), "down");
  auto names = net.switch_at("sw1").flow_names();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);  // the FS record survived the death

  // Reborn with the same dpid: the full table comes back from the FS.
  auto reborn = spawn("dp42b");
  settle(reborn.get());
  EXPECT_EQ(*net.switch_at("sw1").read_field("status"), "up");
  ASSERT_EQ(reborn->table().size(), 2u);
  EXPECT_GT(vfs->metrics()->counter("driver/of/resync_total")->value(), 0u);
}

// Regression for the overflow rescan: a flow deleted and recreated during
// the lost-event window leaves the driver holding a watch on a dead
// version node.  The rescan must re-arm the watch (so a later commit still
// lands) and must reconcile deletions it never saw.
TEST(DriverOverflowRecovery, RescanRearmsWatchesAndReconcilesDeletions) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  net::Scheduler scheduler;
  net::Network network(scheduler);
  DriverOptions opts;
  opts.fs_queue_capacity = 4;
  OfDriver driver(vfs, opts);

  sw::SwitchOptions sopts;
  sopts.datapath_id = 0x42;
  sw::Switch s("dp42", sopts, network);
  s.add_port(1, MacAddress::from_u64(1), "eth1");
  s.connect(driver.listener().connect());
  auto settle = [&] {
    for (int round = 0; round < 60; ++round) {
      std::size_t work =
          driver.poll() + s.pump() + scheduler.run_until_idle();
      if (!work) break;
    }
  };
  settle();

  netfs::NetDir net(vfs);
  FlowSpec del;
  del.match.tp_dst = 1;
  del.actions = {Action::output(1)};
  ASSERT_FALSE(net.switch_at("sw1").add_flow("f_del", del));
  FlowSpec rearm;
  rearm.match.tp_dst = 2;
  rearm.actions = {Action::output(1)};
  ASSERT_FALSE(net.switch_at("sw1").add_flow("f_rearm", rearm));
  settle();
  ASSERT_EQ(s.table().size(), 2u);

  // Burst between polls, far beyond the 4-slot queue: f_del disappears,
  // f_rearm is deleted and recreated (same name, new nodes, uncommitted),
  // plus enough noise to guarantee the overflow.
  ASSERT_FALSE(net.switch_at("sw1").remove_flow("f_del"));
  ASSERT_FALSE(net.switch_at("sw1").remove_flow("f_rearm"));
  FlowSpec rearm2;
  rearm2.match.tp_dst = 3;
  rearm2.actions = {Action::output(1)};
  ASSERT_FALSE(net.switch_at("sw1").add_flow("f_rearm", rearm2,
                                             /*commit=*/false));
  for (int i = 0; i < 10; ++i) {
    FlowSpec noise;
    noise.match.tp_dst = static_cast<std::uint16_t>(1000 + i);
    noise.actions = {Action::output(1)};
    ASSERT_FALSE(
        net.switch_at("sw1").add_flow("n" + std::to_string(i), noise));
  }
  settle();

  // The missed deletion was reconciled off the hardware, the noise flows
  // landed, and the uncommitted f_rearm is not on the wire yet.
  EXPECT_EQ(s.table().size(), 10u);
  for (const auto& e : s.table().entries()) {
    EXPECT_NE(e.spec.match.tp_dst, 1) << "f_del survived on hardware";
    EXPECT_NE(e.spec.match.tp_dst, 2) << "old f_rearm survived on hardware";
    EXPECT_NE(e.spec.match.tp_dst, 3) << "uncommitted f_rearm was pushed";
  }

  // The commit AFTER the rescan proves the watch was re-armed onto the
  // recreated version node.
  ASSERT_TRUE(
      netfs::commit_flow(*vfs, "/net/switches/sw1/flows/f_rearm").ok());
  settle();
  EXPECT_EQ(s.table().size(), 11u);
  bool found = false;
  for (const auto& e : s.table().entries())
    found = found || e.spec.match.tp_dst == 3;
  EXPECT_TRUE(found) << "commit after rescan never reached hardware";
}

// The acceptance scenario: kill a switch mid-commit, reconnect the same
// dpid behind a 5% lossy link, and require the wire flow table to end up
// byte-identical to the committed flows/ directory — for ten consecutive
// RNG seeds (override the base with YANC_FAULT_SEED).  Runs once per
// pipeline: batched trains and the per-event path must converge to the
// same hardware table under the same faults.
void run_reconnect_resync_matrix(bool batching) {
  const char* env = std::getenv("YANC_FAULT_SEED");
  const std::uint64_t base = env ? std::strtoull(env, nullptr, 10) : 1;
  for (std::uint64_t seed = base; seed < base + 10; ++seed) {
    SCOPED_TRACE("YANC_FAULT_SEED=" + std::to_string(seed));
    auto vfs = std::make_shared<vfs::Vfs>();
    ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
    net::Scheduler scheduler;
    net::Network network(scheduler);
    DriverOptions opts;
    opts.keepalive_interval = 8;
    opts.keepalive_timeout = 64;
    opts.request_timeout = 4;
    opts.max_retries = 8;
    opts.audit_interval = 16;
    opts.batching = batching;
    OfDriver driver(vfs, opts);
    auto injector = std::make_shared<faults::Injector>(seed);
    driver.listener().set_fault_hook_factory(
        faults::channel_hook_factory(injector));
    // Causal tracing rides along the whole matrix: every handoff a fault
    // strands must be reclaimed (no leaks), and the faults themselves
    // must surface as span annotations.
    obs::tracer().clear();
    obs::tracer().start();

    auto spawn = [&](const char* name) {
      sw::SwitchOptions sopts;
      sopts.datapath_id = 0x42;
      auto s = std::make_unique<sw::Switch>(name, sopts, network);
      s->add_port(1, MacAddress::from_u64(1), "eth1");
      s->connect(driver.listener().connect());
      return s;
    };
    auto run_rounds = [&](sw::Switch* s, int rounds) {
      for (int round = 0; round < rounds; ++round) {
        driver.poll();
        if (s) s->pump();
        scheduler.run_until_idle();
      }
    };
    netfs::NetDir net(vfs);
    auto fs_flows = [&] {
      std::vector<std::string> out;
      auto names = net.switch_at("sw1").flow_names();
      if (!names.ok()) return out;
      for (const auto& name : *names) {
        auto spec = net.switch_at("sw1").flow_at(name).read();
        if (spec.ok() && spec->version > 0) out.push_back(spec->to_string());
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    auto hw_flows = [&](sw::Switch& s) {
      std::vector<std::string> out;
      for (const auto& e : s.table().entries())
        out.push_back(e.spec.to_string());
      std::sort(out.begin(), out.end());
      return out;
    };

    // Clean phase: connect and commit five flows fault-free.
    auto s = spawn("a");
    run_rounds(s.get(), 30);
    ASSERT_EQ(driver.connected_switches(), 1u);
    for (int i = 0; i < 5; ++i) {
      FlowSpec spec;
      spec.match.tp_dst = static_cast<std::uint16_t>(100 + i);
      spec.actions = {Action::output(1)};
      ASSERT_FALSE(
          net.switch_at("sw1").add_flow("f" + std::to_string(i), spec));
    }
    run_rounds(s.get(), 30);
    ASSERT_EQ(s->table().size(), 5u);

    // Total loss: a sixth commit goes into the void; the driver's tracked
    // barrier must start retrying.
    faults::FaultPlan blackout;
    blackout.drop = 1.0;
    injector->set_plan(faults::Scope::channel, blackout);
    FlowSpec mid;
    mid.match.tp_dst = 999;
    mid.actions = {Action::output(1)};
    ASSERT_FALSE(net.switch_at("sw1").add_flow("f_mid", mid));
    run_rounds(s.get(), 20);

    // Kill the switch mid-commit, then reconnect the same dpid behind a
    // 5% lossy link.
    s->disconnect();
    faults::FaultPlan lossy;
    lossy.drop = 0.05;
    injector->set_plan(faults::Scope::channel, lossy);
    auto reborn = spawn("b");
    for (int round = 0; round < 600; ++round) {
      driver.poll();
      reborn->pump();
      scheduler.run_until_idle();
      if (reborn->table().size() == 6 && hw_flows(*reborn) == fs_flows())
        break;
    }

    EXPECT_EQ(*net.switch_at("sw1").read_field("status"), "up");
    EXPECT_EQ(hw_flows(*reborn), fs_flows());  // byte-identical recovery
    EXPECT_GT(vfs->metrics()->counter("driver/of/retry_total")->value(), 0u);
    EXPECT_GT(vfs->metrics()->counter("driver/of/resync_total")->value(),
              0u);
    // Spans closed, not leaked: the blackout train was reclaimed by the
    // retry path, the in-flight train by mark_down on disconnect, and the
    // lossy reconnect's drops by their retries — so nothing is stranded
    // in the correlation maps, and the fault annotations are in the ring.
    EXPECT_EQ(obs::tracer().inflight(), 0u);
    EXPECT_NE(obs::tracer().ring().dump().find("train_fault"),
              std::string::npos);
    obs::tracer().stop();
    obs::tracer().clear();
  }
}

TEST(DriverFaultMatrix, ReconnectResyncUnderLossTenSeeds) {
  run_reconnect_resync_matrix(/*batching=*/true);
}

TEST(DriverFaultMatrix, ReconnectResyncUnderLossTenSeedsUnbatched) {
  run_reconnect_resync_matrix(/*batching=*/false);
}

TEST(DriverVersionMismatch, WrongDialectClosed) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  net::Scheduler scheduler;
  net::Network network(scheduler);
  DriverOptions opts;
  opts.version = ofp::Version::of10;
  OfDriver driver(vfs, opts);

  sw::SwitchOptions sopts;
  sopts.datapath_id = 9;
  sopts.version = ofp::Version::of13;  // wrong dialect for this driver
  sw::Switch s("dp9", sopts, network);
  s.connect(driver.listener().connect());
  for (int i = 0; i < 10; ++i) {
    driver.poll();
    s.pump();
  }
  EXPECT_EQ(driver.connected_switches(), 0u);
  EXPECT_FALSE(s.connected());
}

}  // namespace
}  // namespace yanc::driver
