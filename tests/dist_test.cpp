// Tests for the distributed file system (§6): transport behaviour,
// strict/eventual replication, per-subtree consistency via xattr,
// conflicts, partitions, and the flagship scenario — a flow written on one
// controller node appearing on another.
#include <gtest/gtest.h>

#include "yanc/dist/replicated.hpp"
#include "yanc/faults/injector.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/netfs/handles.hpp"
#include "yanc/obs/metrics.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::dist {
namespace {

using flow::Action;
using flow::FlowSpec;

TEST(TransportTest, DeliversWithLatency) {
  net::Scheduler scheduler;
  Transport transport(scheduler, std::chrono::milliseconds(5));
  std::vector<std::string> received;
  auto a = transport.join([&](auto, const auto& m) {
    received.push_back(std::string(m.begin(), m.end()));
  });
  auto b = transport.join([&](auto, const auto&) {});
  ASSERT_TRUE(transport.send(b, a, {'h', 'i'}));
  EXPECT_TRUE(received.empty());  // not yet: latency
  scheduler.run_for(std::chrono::milliseconds(4));
  EXPECT_TRUE(received.empty());
  scheduler.run_for(std::chrono::milliseconds(1));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hi");
  EXPECT_EQ(transport.messages_sent(), 1u);
  EXPECT_EQ(transport.bytes_sent(), 2u);
}

TEST(TransportTest, PartitionQueuesAndHealsInOrder) {
  net::Scheduler scheduler;
  Transport transport(scheduler, {});
  std::vector<std::string> received;
  auto a = transport.join([&](auto, const auto& m) {
    received.push_back(std::string(m.begin(), m.end()));
  });
  auto b = transport.join([&](auto, const auto&) {});
  transport.set_partitioned(a, b, true);
  ASSERT_TRUE(transport.send(b, a, {'1'}));
  ASSERT_TRUE(transport.send(b, a, {'2'}));
  scheduler.run_until_idle();
  EXPECT_TRUE(received.empty());
  transport.set_partitioned(a, b, false);
  scheduler.run_until_idle();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], "1");
  EXPECT_EQ(received[1], "2");
}

TEST(TransportTest, AsymmetricPartitionBlocksOneDirection) {
  net::Scheduler scheduler;
  Transport transport(scheduler, {});
  std::vector<std::string> at_a, at_b;
  auto a = transport.join([&](auto, const auto& m) {
    at_a.push_back(std::string(m.begin(), m.end()));
  });
  auto b = transport.join([&](auto, const auto& m) {
    at_b.push_back(std::string(m.begin(), m.end()));
  });
  transport.set_partitioned_oneway(a, b, true);
  EXPECT_TRUE(transport.partitioned(a, b));
  EXPECT_FALSE(transport.partitioned(b, a));
  ASSERT_TRUE(transport.send(a, b, {'x'}));  // queued behind the cut
  ASSERT_TRUE(transport.send(b, a, {'y'}));  // reverse path stays alive
  scheduler.run_until_idle();
  EXPECT_TRUE(at_b.empty());
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0], "y");
  transport.set_partitioned_oneway(a, b, false);
  scheduler.run_until_idle();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0], "x");
}

// Regression (ISSUE 7): a message held back by a delay fault must not be
// delivered after its link is partitioned — the delayed copy would
// resurrect on a link the test already declared dead.
TEST(TransportTest, DelayedMessageDroppedWhenPartitionOvertakesIt) {
  net::Scheduler scheduler;
  Transport transport(scheduler, std::chrono::milliseconds(1));
  std::vector<std::string> received;
  auto a = transport.join([&](auto, const auto&) {});
  auto b = transport.join([&](auto, const auto& m) {
    received.push_back(std::string(m.begin(), m.end()));
  });
  obs::Registry registry;
  transport.bind_metrics(registry);
  transport.set_fault_filter([](auto, auto, std::vector<std::uint8_t>&) {
    Transport::LinkFate fate;
    fate.extra_delay = std::chrono::milliseconds(50);
    return fate;
  });
  ASSERT_TRUE(transport.send(a, b, {'z'}));
  transport.set_fault_filter(nullptr);
  // The partition lands while the delayed message is still in flight.
  transport.set_partitioned(a, b, true);
  scheduler.run_until_idle();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(transport.send_failures(), 1u);
  EXPECT_EQ(*registry.value_of("dist/send_fail_total"), "1");
  // Healing afterwards must not replay it either: it died on the wire.
  transport.set_partitioned(a, b, false);
  scheduler.run_until_idle();
  EXPECT_TRUE(received.empty());
}

// Regression (ISSUE 7): in-flight traffic addressed to a node that left
// (or re-registered) is dropped, not delivered to the next incarnation.
TEST(TransportTest, InFlightMessageDroppedAcrossLeaveAndRejoin) {
  net::Scheduler scheduler;
  Transport transport(scheduler, std::chrono::milliseconds(5));
  std::vector<std::string> first_life, second_life;
  auto a = transport.join([&](auto, const auto&) {});
  auto b = transport.join([&](auto, const auto& m) {
    first_life.push_back(std::string(m.begin(), m.end()));
  });
  ASSERT_TRUE(transport.send(a, b, {'1'}));
  transport.leave(b);
  EXPECT_FALSE(transport.alive(b));
  scheduler.run_until_idle();
  EXPECT_TRUE(first_life.empty());
  EXPECT_EQ(transport.send_failures(), 1u);

  // Sends addressed to a departed node fail at the call site.
  EXPECT_FALSE(transport.send(a, b, {'2'}));
  EXPECT_EQ(transport.send_failures(), 2u);

  transport.rejoin(b, [&](auto, const auto& m) {
    second_life.push_back(std::string(m.begin(), m.end()));
  });
  EXPECT_TRUE(transport.alive(b));
  ASSERT_TRUE(transport.send(a, b, {'3'}));
  // A message put on the wire before a re-register belongs to the old
  // incarnation: rejoin again mid-flight and it must die too.
  transport.rejoin(b, [&](auto, const auto& m) {
    second_life.push_back(std::string(m.begin(), m.end()));
  });
  scheduler.run_until_idle();
  EXPECT_TRUE(second_life.empty());
  EXPECT_EQ(transport.send_failures(), 3u);
  ASSERT_TRUE(transport.send(a, b, {'4'}));
  scheduler.run_until_idle();
  ASSERT_EQ(second_life.size(), 1u);
  EXPECT_EQ(second_life[0], "4");
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest()
      : cluster(scheduler, ClusterOptions{.nodes = 3,
                                          .link_latency =
                                              std::chrono::microseconds(100),
                                          .default_mode = Mode::strict}) {}

  void settle() { scheduler.run_until_idle(); }

  /// Convenience: file content on a node's replica, "" when missing.
  std::string content(std::size_t node, const std::string& path) {
    auto fs = cluster.fs(node);
    vfs::NodeId id = fs->root();
    for (const auto& comp : split_nonempty(path, '/')) {
      auto next = fs->lookup(id, comp);
      if (!next) return "<missing>";
      id = *next;
    }
    auto data = fs->read(id, 0, 1 << 20, {});
    return data ? *data : "<unreadable>";
  }

  net::Scheduler scheduler;
  Cluster cluster;
};

TEST_F(ClusterTest, MkdirReplicatesWithSchema) {
  auto fs0 = cluster.fs(0);
  // Creating a switch on the primary...
  auto switches = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(switches.ok());
  ASSERT_TRUE(fs0->mkdir(*switches, "sw1", 0755, {}).ok());
  settle();
  // ...materializes on every node, with its schema children auto-created
  // locally (the op log carries one mkdir, not the whole subtree).
  for (std::size_t node : {1u, 2u}) {
    auto fs = cluster.fs(node);
    auto sw = fs->lookup(*fs->lookup(fs->root(), "switches"), "sw1");
    ASSERT_TRUE(sw.ok()) << "node " << node;
    EXPECT_TRUE(fs->lookup(*sw, "flows").ok());
    EXPECT_TRUE(fs->lookup(*sw, "id").ok());
  }
  EXPECT_EQ(cluster.fs(1)->remote_ops_applied(), 1u);
}

TEST_F(ClusterTest, WritesReplicateContent) {
  auto fs0 = cluster.fs(0);
  auto switches = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(fs0->mkdir(*switches, "sw1", 0755, {}).ok());
  settle();
  auto sw = fs0->lookup(*switches, "sw1");
  auto id_file = fs0->lookup(*sw, "id");
  ASSERT_TRUE(fs0->write(*id_file, 0, "0xabc", {}).ok());
  settle();
  EXPECT_EQ(content(1, "/switches/sw1/id"), "0xabc");
  EXPECT_EQ(content(2, "/switches/sw1/id"), "0xabc");
}

TEST_F(ClusterTest, StrictModeChargesRoundTripOnSecondary) {
  auto fs1 = cluster.fs(1);  // not the primary
  auto switches = fs1->lookup(fs1->root(), "switches");
  ASSERT_TRUE(fs1->mkdir(*switches, "sw9", 0755, {}).ok());
  // 2 x 100us round trip charged to the writer.
  EXPECT_EQ(fs1->sync_delay_ns(), 200'000u);
  // The primary never pays it.
  auto fs0 = cluster.fs(0);
  ASSERT_TRUE(fs0->mkdir(*fs0->lookup(fs0->root(), "switches"), "sw8", 0755,
                         {}).ok());
  EXPECT_EQ(fs0->sync_delay_ns(), 0u);
  settle();
  // Both objects visible everywhere (secondary's op routed via primary).
  for (std::size_t node = 0; node < 3; ++node) {
    EXPECT_NE(content(node, "/switches/sw9/id"), "<missing>") << node;
    EXPECT_NE(content(node, "/switches/sw8/id"), "<missing>") << node;
  }
}

TEST_F(ClusterTest, EventualSubtreeSkipsPrimaryRoundTrip) {
  auto fs1 = cluster.fs(1);
  // Mark the events subtree eventual on every replica (xattrs replicate,
  // but set it locally first so the mode applies to the next op).
  auto events = fs1->lookup(fs1->root(), "events");
  ASSERT_TRUE(events.ok());
  std::string value = "eventual";
  ASSERT_FALSE(fs1->setxattr(*events, kConsistencyXattr,
                             {value.begin(), value.end()}, {}));
  auto before = fs1->sync_delay_ns();
  ASSERT_TRUE(fs1->mkdir(*events, "app1", 0755, {}).ok());
  EXPECT_EQ(fs1->sync_delay_ns(), before);  // no round trip charged
  settle();
  // Still replicated.
  auto fs2 = cluster.fs(2);
  EXPECT_TRUE(
      fs2->lookup(*fs2->lookup(fs2->root(), "events"), "app1").ok());
}

TEST_F(ClusterTest, LastWriterWinsOnConflict) {
  net::Scheduler s2;
  Cluster eventual(s2, ClusterOptions{.nodes = 2,
                                      .link_latency =
                                          std::chrono::microseconds(100),
                                      .default_mode = Mode::eventual});
  auto fs0 = eventual.fs(0);
  auto fs1 = eventual.fs(1);
  auto sw0 = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(fs0->mkdir(*sw0, "sw1", 0755, {}).ok());
  s2.run_until_idle();

  // Concurrent writes to the same file on both nodes (before either
  // replica saw the other's op).
  auto id0 = fs0->lookup(*fs0->lookup(*sw0, "sw1"), "id");
  auto sw1 = fs1->lookup(fs1->root(), "switches");
  auto id1 = fs1->lookup(*fs1->lookup(*sw1, "sw1"), "id");
  ASSERT_TRUE(fs0->write(*id0, 0, "0xa", {}).ok());
  ASSERT_TRUE(fs1->write(*id1, 0, "0xb", {}).ok());
  s2.run_until_idle();

  // Both converge on the same value (the later Lamport ts wins; ties break
  // toward the higher node id).
  auto read = [&](std::size_t n) {
    auto fs = eventual.fs(n);
    auto id = fs->lookup(*fs->lookup(*fs->lookup(fs->root(), "switches"),
                                     "sw1"),
                         "id");
    return *fs->read(*id, 0, 100, {});
  };
  EXPECT_EQ(read(0), read(1));
  EXPECT_EQ(eventual.fs(0)->conflicts_ignored() +
                eventual.fs(1)->conflicts_ignored(),
            1u);
}

TEST_F(ClusterTest, PartitionDivergesThenConverges) {
  net::Scheduler s2;
  Cluster eventual(s2, ClusterOptions{.nodes = 2,
                                      .link_latency = {},
                                      .default_mode = Mode::eventual});
  auto fs0 = eventual.fs(0);
  auto fs1 = eventual.fs(1);
  eventual.partition(0, 1);

  auto sw0 = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(fs0->mkdir(*sw0, "only-on-0", 0755, {}).ok());
  s2.run_until_idle();
  auto sw1 = fs1->lookup(fs1->root(), "switches");
  EXPECT_FALSE(fs1->lookup(*sw1, "only-on-0").ok());  // diverged

  eventual.heal(0, 1);
  s2.run_until_idle();
  EXPECT_TRUE(fs1->lookup(*sw1, "only-on-0").ok());  // converged
}

TEST_F(ClusterTest, RmdirReplicatesRecursiveRemoval) {
  auto fs0 = cluster.fs(0);
  auto switches = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(fs0->mkdir(*switches, "sw1", 0755, {}).ok());
  settle();
  ASSERT_FALSE(fs0->rmdir(*switches, "sw1", {}));
  settle();
  auto fs1 = cluster.fs(1);
  EXPECT_FALSE(
      fs1->lookup(*fs1->lookup(fs1->root(), "switches"), "sw1").ok());
}

TEST_F(ClusterTest, SymlinkAndRenameReplicate) {
  auto fs0 = cluster.fs(0);
  auto switches = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(fs0->mkdir(*switches, "sw1", 0755, {}).ok());
  ASSERT_TRUE(fs0->mkdir(*switches, "sw2", 0755, {}).ok());
  settle();
  // Topology symlink on node 0...
  auto sw1 = fs0->lookup(*switches, "sw1");
  auto ports = fs0->lookup(*sw1, "ports");
  ASSERT_TRUE(fs0->mkdir(*ports, "1", 0755, {}).ok());
  settle();
  auto port1 = fs0->lookup(*ports, "1");
  ASSERT_TRUE(
      fs0->symlink(*port1, "peer", "/switches/sw2/ports/9", {}).ok());
  settle();
  auto fs2 = cluster.fs(2);
  auto r_ports = fs2->lookup(
      *fs2->lookup(*fs2->lookup(fs2->root(), "switches"), "sw1"), "ports");
  auto r_port1 = fs2->lookup(*r_ports, "1");
  auto r_peer = fs2->lookup(*r_port1, "peer");
  ASSERT_TRUE(r_peer.ok());
  EXPECT_EQ(*fs2->readlink(*r_peer), "/switches/sw2/ports/9");

  // Rename replicates too (switch renamed, §3.2).
  ASSERT_FALSE(fs0->rename(*switches, "sw2", *switches, "edge-2", {}));
  settle();
  auto r_switches = fs2->lookup(fs2->root(), "switches");
  EXPECT_TRUE(fs2->lookup(*r_switches, "edge-2").ok());
  EXPECT_FALSE(fs2->lookup(*r_switches, "sw2").ok());
}

// --- the §6 flagship: distributed controller ----------------------------------

TEST(DistributedController, FlowWrittenOnNodeAVisibleOnNodeB) {
  net::Scheduler scheduler;
  Cluster cluster(scheduler,
                  ClusterOptions{.nodes = 2,
                                 .link_latency = std::chrono::milliseconds(1),
                                 .default_mode = Mode::strict});
  // Each controller node mounts ITS replica at /net in its own Vfs —
  // applications on each node are oblivious to the replication.
  auto vfs_a = std::make_shared<vfs::Vfs>();
  auto vfs_b = std::make_shared<vfs::Vfs>();
  ASSERT_FALSE(vfs_a->mkdir("/net"));
  ASSERT_FALSE(vfs_b->mkdir("/net"));
  ASSERT_FALSE(vfs_a->mount("/net", cluster.fs(0)));
  ASSERT_FALSE(vfs_b->mount("/net", cluster.fs(1)));

  // Node A's administrator writes a flow with plain file I/O.
  netfs::NetDir net_a(vfs_a);
  ASSERT_FALSE(net_a.add_switch("sw1"));
  FlowSpec spec;
  spec.match.tp_dst = 22;
  spec.actions = {Action::output(2)};
  ASSERT_FALSE(net_a.switch_at("sw1").add_flow("ssh", spec));
  scheduler.run_until_idle();

  // Node B's driver (or shell user) sees the committed flow.
  netfs::NetDir net_b(vfs_b);
  auto names = net_b.switch_at("sw1").flow_names();
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(*names, std::vector<std::string>{"ssh"});
  auto got = net_b.switch_at("sw1").flow_at("ssh").read();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->match.tp_dst, 22);
  EXPECT_GE(got->version, 1u);
}

// --- anti-entropy: convergence despite genuinely lost messages -----------------

// The partition model retransmits (TCP-style); the fault filter actually
// loses messages.  Op-log replication cannot recover from that — the
// anti-entropy pass must.
TEST(AntiEntropy, LossyLinkDivergenceHealed) {
  net::Scheduler scheduler;
  Cluster cluster(scheduler, ClusterOptions{.nodes = 2,
                                            .link_latency = {},
                                            .default_mode = Mode::eventual});
  auto fs0 = cluster.fs(0);
  auto fs1 = cluster.fs(1);

  // 100% loss on the replica links.
  auto inj = std::make_shared<faults::Injector>(1);
  faults::FaultPlan plan;
  plan.drop = 1.0;
  inj->set_plan(faults::Scope::transport, plan);
  attach_faults(cluster.transport(), inj);

  auto switches0 = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(fs0->mkdir(*switches0, "sw1", 0755, {}).ok());
  auto sw0 = fs0->lookup(*switches0, "sw1");
  auto id0 = fs0->lookup(*sw0, "id");
  ASSERT_TRUE(fs0->write(*id0, 0, "0x42", {}).ok());
  scheduler.run_until_idle();

  auto switches1 = fs1->lookup(fs1->root(), "switches");
  EXPECT_FALSE(fs1->lookup(*switches1, "sw1").ok());  // diverged
  EXPECT_GT(cluster.transport().messages_dropped(), 0u);

  // Heal the link.  The lost ops stay lost; only anti-entropy repairs.
  attach_faults(cluster.transport(), nullptr);
  scheduler.run_until_idle();
  EXPECT_FALSE(fs1->lookup(*switches1, "sw1").ok());

  cluster.anti_entropy_round();
  scheduler.run_until_idle();
  cluster.anti_entropy_round();
  scheduler.run_until_idle();

  auto sw1 = fs1->lookup(*switches1, "sw1");
  ASSERT_TRUE(sw1.ok());
  auto id1 = fs1->lookup(*sw1, "id");
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*fs1->read(*id1, 0, 100, {}), "0x42");
  EXPECT_GT(fs1->repairs_applied(), 0u);
}

// A lost rmdir must not let the other replica's snapshot resurrect the
// directory: the tombstone wins on both sides.
TEST(AntiEntropy, TombstonePreventsResurrection) {
  net::Scheduler scheduler;
  Cluster cluster(scheduler, ClusterOptions{.nodes = 2,
                                            .link_latency = {},
                                            .default_mode = Mode::eventual});
  auto fs0 = cluster.fs(0);
  auto fs1 = cluster.fs(1);

  // Replicate a directory cleanly first.
  auto switches0 = fs0->lookup(fs0->root(), "switches");
  ASSERT_TRUE(fs0->mkdir(*switches0, "doomed", 0755, {}).ok());
  scheduler.run_until_idle();
  auto switches1 = fs1->lookup(fs1->root(), "switches");
  ASSERT_TRUE(fs1->lookup(*switches1, "doomed").ok());

  // The rmdir is lost on the wire: node 1 keeps the directory.
  auto inj = std::make_shared<faults::Injector>(1);
  faults::FaultPlan plan;
  plan.drop = 1.0;
  inj->set_plan(faults::Scope::transport, plan);
  attach_faults(cluster.transport(), inj);
  ASSERT_FALSE(fs0->rmdir(*switches0, "doomed", {}));
  scheduler.run_until_idle();
  ASSERT_TRUE(fs1->lookup(*switches1, "doomed").ok());  // diverged

  attach_faults(cluster.transport(), nullptr);
  for (int round = 0; round < 2; ++round) {
    cluster.anti_entropy_round();
    scheduler.run_until_idle();
  }
  // Deleted everywhere, resurrected nowhere.
  EXPECT_FALSE(fs0->lookup(*switches0, "doomed").ok());
  EXPECT_FALSE(fs1->lookup(*switches1, "doomed").ok());
}

}  // namespace
}  // namespace yanc::dist
