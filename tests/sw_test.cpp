// Tests for the software switch and flow table: priority matching,
// OpenFlow add/modify/delete semantics, timeouts on virtual time, the
// packet pipeline (flood, controller, rewrites, goto-table), buffering,
// and the control-channel behaviours (handshake, echo, stats, port_mod).
#include <gtest/gtest.h>

#include "yanc/net/simnet.hpp"
#include "yanc/sw/switch.hpp"

namespace yanc::sw {
namespace {

using flow::Action;
using flow::ActionKind;
using flow::FieldValues;
using flow::FlowSpec;
using flow::Match;

FieldValues tcp_packet_fields(std::uint16_t in_port, std::uint16_t tp_dst) {
  FieldValues f;
  f.in_port = in_port;
  f.dl_type = 0x0800;
  f.nw_proto = 6;
  f.tp_dst = tp_dst;
  return f;
}

// --- FlowTable ----------------------------------------------------------------

TEST(FlowTableTest, PriorityOrderWins) {
  FlowTable t;
  FlowSpec low;
  low.priority = 1;
  low.actions = {Action::output(1)};
  FlowSpec high;
  high.priority = 100;
  high.match.tp_dst = 22;
  high.actions = {Action::output(2)};
  t.add(low, 0, 0);
  t.add(high, 0, 0);
  auto* hit = t.lookup(tcp_packet_fields(1, 22), 0, 64);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->spec.actions[0].port(), 2);
  // Non-ssh traffic falls to the low-priority match-all.
  hit = t.lookup(tcp_packet_fields(1, 80), 0, 64);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->spec.actions[0].port(), 1);
}

TEST(FlowTableTest, TieBrokenByInsertionOrder) {
  FlowTable t;
  FlowSpec a, b;
  a.actions = {Action::output(1)};
  b.actions = {Action::output(2)};
  b.match.tp_dst = 22;  // different match, same priority
  t.add(a, 0, 0);
  t.add(b, 0, 0);
  auto* hit = t.lookup(tcp_packet_fields(1, 22), 0, 64);
  EXPECT_EQ(hit->spec.actions[0].port(), 1);  // first added wins
}

TEST(FlowTableTest, AddIdenticalReplacesAndResetsCounters) {
  FlowTable t;
  FlowSpec spec;
  spec.match.tp_dst = 22;
  spec.actions = {Action::output(1)};
  t.add(spec, 0, 0);
  (void)t.lookup(tcp_packet_fields(1, 22), 0, 100);
  EXPECT_EQ(t.entries()[0].packet_count, 1u);
  spec.actions = {Action::output(9)};
  t.add(spec, 0, 5);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.entries()[0].packet_count, 0u);
  EXPECT_EQ(t.entries()[0].spec.actions[0].port(), 9);
}

TEST(FlowTableTest, CountersAccumulate) {
  FlowTable t;
  FlowSpec spec;
  spec.actions = {Action::output(1)};
  t.add(spec, 0, 0);
  (void)t.lookup(tcp_packet_fields(1, 80), 1, 100);
  (void)t.lookup(tcp_packet_fields(1, 81), 2, 50);
  EXPECT_EQ(t.entries()[0].packet_count, 2u);
  EXPECT_EQ(t.entries()[0].byte_count, 150u);
  EXPECT_EQ(t.entries()[0].last_hit_ns, 2u);
}

TEST(FlowTableTest, ModifyNonStrictUpdatesSubsumed) {
  FlowTable t;
  FlowSpec narrow;
  narrow.match.tp_dst = 22;
  narrow.priority = 10;
  narrow.actions = {Action::output(1)};
  t.add(narrow, 0, 0);
  FlowSpec wide;  // match-all modify hits everything
  wide.actions = {Action::output(5)};
  EXPECT_EQ(t.modify(wide, false), 1u);
  EXPECT_EQ(t.entries()[0].spec.actions[0].port(), 5);
  // Strict modify with different priority misses.
  FlowSpec strict = narrow;
  strict.priority = 11;
  strict.actions = {Action::output(7)};
  EXPECT_EQ(t.modify(strict, true), 0u);
}

TEST(FlowTableTest, RemoveStrictAndNonStrict) {
  FlowTable t;
  FlowSpec a;
  a.match.tp_dst = 22;
  a.priority = 10;
  a.actions = {Action::output(1)};
  FlowSpec b;
  b.match.tp_dst = 80;
  b.priority = 20;
  b.actions = {Action::output(2)};
  t.add(a, 0, 0);
  t.add(b, 0, 0);
  // Strict with wrong priority removes nothing.
  EXPECT_TRUE(t.remove(a.match, 11, true).empty());
  // Non-strict match-all removes everything.
  auto removed = t.remove(Match{}, 0, false);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTableTest, RemoveFilteredByOutPort) {
  FlowTable t;
  FlowSpec a;
  a.actions = {Action::output(1)};
  FlowSpec b;
  b.match.tp_dst = 80;
  b.actions = {Action::output(2)};
  t.add(a, 0, 0);
  t.add(b, 0, 0);
  auto removed = t.remove(Match{}, 0, false, /*out_port=*/2);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].spec.actions[0].port(), 2);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowTableTest, HardTimeoutExpires) {
  FlowTable t;
  FlowSpec spec;
  spec.hard_timeout = 10;  // seconds
  spec.actions = {Action::output(1)};
  t.add(spec, 0, 0);
  EXPECT_TRUE(t.expire(9'999'999'999ull).empty());
  auto expired = t.expire(10'000'000'000ull);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_TRUE(expired[0].hard);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTableTest, IdleTimeoutResetsOnHit) {
  FlowTable t;
  FlowSpec spec;
  spec.idle_timeout = 5;
  spec.actions = {Action::output(1)};
  t.add(spec, 0, 0);
  // Traffic at t=4s keeps it alive past t=5s.
  (void)t.lookup(tcp_packet_fields(1, 80), 4'000'000'000ull, 64);
  EXPECT_TRUE(t.expire(8'999'999'999ull).empty());
  auto expired = t.expire(9'000'000'000ull);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_FALSE(expired[0].hard);
}

// --- Switch harness -----------------------------------------------------------

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest() : network(scheduler) {}

  std::unique_ptr<Switch> make_switch(ofp::Version version,
                                      std::uint8_t n_tables = 1) {
    SwitchOptions opts;
    opts.datapath_id = 0x42;
    opts.version = version;
    opts.n_tables = n_tables;
    auto sw = std::make_unique<Switch>("sw1", opts, network);
    sw->add_port(1, *MacAddress::parse("02:00:00:00:01:01"), "eth1");
    sw->add_port(2, *MacAddress::parse("02:00:00:00:01:02"), "eth2");
    sw->add_port(3, *MacAddress::parse("02:00:00:00:01:03"), "eth3");
    auto [controller_end, switch_end] = net::Channel::make_pair();
    controller = controller_end;
    sw->connect(switch_end);
    return sw;
  }

  /// Drains and decodes everything the switch sent to the controller.
  std::vector<ofp::Decoded> recv_all() {
    std::vector<ofp::Decoded> out;
    while (auto msg = controller.try_recv()) {
      auto d = ofp::decode(*msg);
      if (d.ok()) out.push_back(std::move(*d));
    }
    return out;
  }

  void send(Switch& sw, const ofp::Message& m, std::uint32_t xid = 1) {
    auto bytes = ofp::encode(sw.options().version, xid, m);
    ASSERT_TRUE(bytes.ok());
    ASSERT_TRUE(controller.send(std::move(*bytes)));
    sw.pump();
  }

  net::Scheduler scheduler;
  net::Network network;
  net::Channel controller;
};

TEST_F(SwitchTest, HandshakeFeatures) {
  auto sw = make_switch(ofp::Version::of10);
  auto msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);  // HELLO on connect
  EXPECT_TRUE(std::holds_alternative<ofp::Hello>(msgs[0].message));

  send(*sw, ofp::FeaturesRequest{}, 9);
  msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].header.xid, 9u);
  auto& feats = std::get<ofp::FeaturesReply>(msgs[0].message);
  EXPECT_EQ(feats.datapath_id, 0x42u);
  EXPECT_EQ(feats.ports.size(), 3u);  // 1.0 carries ports inline
}

TEST_F(SwitchTest, EchoReplyPreservesPayloadAndXid) {
  auto sw = make_switch(ofp::Version::of13);
  recv_all();
  send(*sw, ofp::EchoRequest{{7, 8}}, 123);
  auto msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].header.xid, 123u);
  EXPECT_EQ(std::get<ofp::EchoReply>(msgs[0].message).data,
            (std::vector<std::uint8_t>{7, 8}));
}

TEST_F(SwitchTest, TableMissSendsPacketIn) {
  auto sw = make_switch(ofp::Version::of10);
  recv_all();
  auto frame = net::build_arp(net::arp_op::request,
                              *MacAddress::parse("0a:00:00:00:00:01"),
                              *Ipv4Address::parse("10.0.0.1"), MacAddress{},
                              *Ipv4Address::parse("10.0.0.2"));
  sw->handle_frame(1, frame);
  auto msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  auto& pi = std::get<ofp::PacketIn>(msgs[0].message);
  EXPECT_EQ(pi.in_port, 1);
  EXPECT_EQ(pi.reason, ofp::PacketIn::Reason::no_match);
  EXPECT_EQ(pi.data, frame);
  EXPECT_NE(pi.buffer_id, ofp::kNoBuffer);
}

TEST_F(SwitchTest, FlowModThenForwards) {
  auto sw = make_switch(ofp::Version::of10);
  recv_all();
  ofp::FlowMod fm;
  fm.spec.match.dl_type = 0x0806;
  fm.spec.actions = {Action::output(2)};
  send(*sw, fm);
  EXPECT_EQ(sw->table().size(), 1u);

  // Wire port 2 to a host so forwarding is observable.
  net::Host h2("h2", *MacAddress::parse("0a:00:00:00:00:02"),
               *Ipv4Address::parse("10.0.0.2"), network);
  ASSERT_TRUE(network.add_link(*sw, 2, h2, 0).ok());

  // Target an address h2 does not own, so it does not ARP-reply back
  // through the switch.
  auto frame = net::build_arp(net::arp_op::request,
                              *MacAddress::parse("0a:00:00:00:00:01"),
                              *Ipv4Address::parse("10.0.0.1"), MacAddress{},
                              *Ipv4Address::parse("10.0.0.9"));
  sw->handle_frame(1, frame);
  scheduler.run_until_idle();
  EXPECT_EQ(h2.frames_received(), 1u);
  EXPECT_TRUE(recv_all().empty());  // no packet-in: it matched
  EXPECT_EQ(sw->table().entries()[0].packet_count, 1u);
}

TEST_F(SwitchTest, FloodSkipsIngressAndDownPorts) {
  auto sw = make_switch(ofp::Version::of10);
  recv_all();
  ofp::FlowMod fm;
  fm.spec.actions = {Action::flood()};
  send(*sw, fm);

  net::Host h1("h1", MacAddress{}, Ipv4Address{}, network);
  net::Host h2("h2", MacAddress{}, Ipv4Address{}, network);
  net::Host h3("h3", MacAddress{}, Ipv4Address{}, network);
  ASSERT_TRUE(network.add_link(*sw, 1, h1, 0).ok());
  ASSERT_TRUE(network.add_link(*sw, 2, h2, 0).ok());
  ASSERT_TRUE(network.add_link(*sw, 3, h3, 0).ok());

  // Bring port 3 administratively down first.
  ofp::PortMod pm;
  pm.port_no = 3;
  pm.port_down = true;
  send(*sw, pm);

  auto frame = net::build_ethernet(MacAddress::from_u64(0xffffffffffffull),
                                   MacAddress{}, 0x1234, {1, 2, 3});
  sw->handle_frame(1, frame);
  scheduler.run_until_idle();
  EXPECT_EQ(h1.frames_received(), 0u);  // ingress excluded
  EXPECT_EQ(h2.frames_received(), 1u);
  EXPECT_EQ(h3.frames_received(), 0u);  // port down
}

TEST_F(SwitchTest, OutputToControllerIsActionPacketIn) {
  auto sw = make_switch(ofp::Version::of13);
  recv_all();
  ofp::FlowMod fm;
  fm.spec.actions = {Action::to_controller()};
  send(*sw, fm);
  auto frame = net::build_ethernet(MacAddress{}, MacAddress{}, 0x1234, {});
  sw->handle_frame(2, frame);
  auto msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  auto& pi = std::get<ofp::PacketIn>(msgs[0].message);
  EXPECT_EQ(pi.reason, ofp::PacketIn::Reason::action);
  EXPECT_EQ(pi.in_port, 2);
}

TEST_F(SwitchTest, RewriteActionsChangeForwardedFrame) {
  auto sw = make_switch(ofp::Version::of10);
  recv_all();
  ofp::FlowMod fm;
  fm.spec.match.dl_type = 0x0800;
  fm.spec.actions = {
      Action{ActionKind::set_nw_dst, *Ipv4Address::parse("192.168.9.9")},
      Action{ActionKind::set_dl_dst, *MacAddress::parse("02:00:00:00:00:99")},
      Action::output(2)};
  send(*sw, fm);

  net::Host h2("h2", *MacAddress::parse("02:00:00:00:00:99"),
               *Ipv4Address::parse("192.168.9.9"), network);
  ASSERT_TRUE(network.add_link(*sw, 2, h2, 0).ok());

  auto frame = net::build_udp(*MacAddress::parse("02:00:00:00:00:02"),
                              *MacAddress::parse("02:00:00:00:00:01"),
                              *Ipv4Address::parse("10.0.0.1"),
                              *Ipv4Address::parse("10.0.0.2"), 1000, 2000,
                              {0xaa});
  sw->handle_frame(1, frame);
  scheduler.run_until_idle();
  ASSERT_EQ(h2.frames_received(), 1u);
  auto got = net::parse_frame(h2.received_log()[0]);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ipv4->dst.to_string(), "192.168.9.9");
  EXPECT_EQ(got->dl_dst.to_string(), "02:00:00:00:00:99");
  // The host accepted it as UDP addressed to itself.
  EXPECT_EQ(h2.udp_received().size(), 1u);
}

TEST_F(SwitchTest, PacketOutWithBufferId) {
  auto sw = make_switch(ofp::Version::of10);
  recv_all();
  net::Host h2("h2", MacAddress{}, Ipv4Address{}, network);
  ASSERT_TRUE(network.add_link(*sw, 2, h2, 0).ok());

  // Cause a buffered packet-in.
  auto frame = net::build_ethernet(MacAddress{}, MacAddress{}, 0x1234, {9});
  sw->handle_frame(1, frame);
  auto msgs = recv_all();
  auto& pi = std::get<ofp::PacketIn>(msgs[0].message);
  ASSERT_NE(pi.buffer_id, ofp::kNoBuffer);

  // Release the buffer out port 2.
  ofp::PacketOut po;
  po.buffer_id = pi.buffer_id;
  po.in_port = pi.in_port;
  po.actions = {Action::output(2)};
  send(*sw, po);
  scheduler.run_until_idle();
  EXPECT_EQ(h2.frames_received(), 1u);
  EXPECT_EQ(h2.received_log()[0], frame);

  // Reusing the consumed buffer is an error.
  send(*sw, po);
  msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<ofp::Error>(msgs[0].message));
}

TEST_F(SwitchTest, FlowModReleasesBufferedPacket) {
  auto sw = make_switch(ofp::Version::of10);
  recv_all();
  net::Host h2("h2", MacAddress{}, Ipv4Address{}, network);
  ASSERT_TRUE(network.add_link(*sw, 2, h2, 0).ok());

  auto frame = net::build_ethernet(MacAddress{}, MacAddress{}, 0x1234, {7});
  sw->handle_frame(1, frame);
  auto pi = std::get<ofp::PacketIn>(recv_all()[0].message);

  ofp::FlowMod fm;
  fm.spec.match.in_port = 1;
  fm.spec.actions = {Action::output(2)};
  fm.buffer_id = pi.buffer_id;
  send(*sw, fm);
  scheduler.run_until_idle();
  EXPECT_EQ(h2.frames_received(), 1u);
  EXPECT_EQ(sw->table().entries()[0].packet_count, 1u);
}

TEST_F(SwitchTest, GotoTablePipeline13) {
  auto sw = make_switch(ofp::Version::of13, /*n_tables=*/2);
  recv_all();
  net::Host h2("h2", MacAddress{}, Ipv4Address{}, network);
  ASSERT_TRUE(network.add_link(*sw, 2, h2, 0).ok());

  // Table 0 rewrites dl_dst then sends to table 1; table 1 matches on the
  // rewritten address and outputs.
  ofp::FlowMod t0;
  t0.spec.table_id = 0;
  t0.spec.goto_table = 1;
  t0.spec.actions = {
      Action{ActionKind::set_dl_dst, *MacAddress::parse("02:00:00:00:00:aa")}};
  send(*sw, t0);
  ofp::FlowMod t1;
  t1.spec.table_id = 1;
  t1.spec.match.dl_dst = *MacAddress::parse("02:00:00:00:00:aa");
  t1.spec.actions = {Action::output(2)};
  send(*sw, t1);

  auto frame = net::build_ethernet(*MacAddress::parse("02:00:00:00:00:bb"),
                                   MacAddress{}, 0x1234, {});
  sw->handle_frame(1, frame);
  scheduler.run_until_idle();
  ASSERT_EQ(h2.frames_received(), 1u);
  EXPECT_EQ(net::parse_frame(h2.received_log()[0])->dl_dst.to_string(),
            "02:00:00:00:00:aa");
}

TEST_F(SwitchTest, ExpiredFlowSendsFlowRemoved) {
  auto sw = make_switch(ofp::Version::of10);
  recv_all();
  ofp::FlowMod fm;
  fm.spec.hard_timeout = 1;
  fm.spec.actions = {Action::output(2)};
  fm.flags = ofp::kFlagSendFlowRemoved;
  send(*sw, fm);

  scheduler.schedule_after(std::chrono::seconds(2), [] {});
  scheduler.run_until_idle();
  sw->expire_flows();
  auto msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  auto& fr = std::get<ofp::FlowRemoved>(msgs[0].message);
  EXPECT_EQ(fr.reason, ofp::FlowRemoved::Reason::hard_timeout);
  EXPECT_EQ(sw->table().size(), 0u);
}

TEST_F(SwitchTest, StatsDescAndFlow) {
  auto sw = make_switch(ofp::Version::of13);
  recv_all();
  ofp::FlowMod fm;
  fm.spec.match.dl_type = 0x0800;
  fm.spec.actions = {Action::output(2)};
  send(*sw, fm);

  ofp::StatsRequest desc;
  desc.kind = ofp::StatsKind::desc;
  send(*sw, desc, 5);
  auto msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(std::get<ofp::StatsReply>(msgs[0].message).manufacturer,
            "yanc project");

  ofp::StatsRequest flows;
  flows.kind = ofp::StatsKind::flow;
  send(*sw, flows, 6);
  msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  auto& reply = std::get<ofp::StatsReply>(msgs[0].message);
  ASSERT_EQ(reply.flows.size(), 1u);
  EXPECT_EQ(reply.flows[0].spec.match.dl_type, 0x0800);
}

TEST_F(SwitchTest, PortDescMultipart13) {
  auto sw = make_switch(ofp::Version::of13);
  recv_all();
  ofp::StatsRequest req;
  req.kind = ofp::StatsKind::port_desc;
  send(*sw, req, 7);
  auto msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(std::get<ofp::StatsReply>(msgs[0].message).port_descs.size(), 3u);
}

TEST_F(SwitchTest, LinkStatusEmitsPortStatus) {
  auto sw = make_switch(ofp::Version::of10);
  recv_all();
  net::Host h1("h1", MacAddress{}, Ipv4Address{}, network);
  auto link = network.add_link(*sw, 1, h1, 0);
  ASSERT_TRUE(link.ok());
  ASSERT_FALSE(network.set_link_up(*link, false));
  scheduler.run_until_idle();
  auto msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  auto& ps = std::get<ofp::PortStatus>(msgs[0].message);
  EXPECT_EQ(ps.desc.port_no, 1);
  EXPECT_TRUE(ps.desc.link_down);
}

// --- epoch fencing (docs/ROBUSTNESS.md "Cluster failover") -------------

TEST_F(SwitchTest, EpochFenceRejectsStaleMutations) {
  auto sw = make_switch(ofp::Version::of10);  // `controller`, epoch 0
  recv_all();

  // A successor connects with a higher fencing token and takes mastership.
  auto [c2, s2] = net::Channel::make_pair();
  sw->connect(std::move(s2), 2);
  EXPECT_EQ(sw->master_epoch(), 2u);
  EXPECT_EQ(sw->max_epoch(), 2u);

  // The deposed channel's FLOW_MOD is fenced: Error{BAD_REQUEST, EPERM},
  // table untouched.
  ofp::FlowMod fm;
  fm.spec.match.tp_dst = 22;
  fm.spec.actions = {flow::Action::output(2)};
  send(*sw, fm, 9);
  EXPECT_EQ(sw->table().size(), 0u);
  EXPECT_EQ(sw->fenced_mods(), 1u);
  auto msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  auto& err = std::get<ofp::Error>(msgs[0].message);
  EXPECT_EQ(err.type, 1);
  EXPECT_EQ(err.code, 5);
  EXPECT_EQ(msgs[0].header.xid, 9u);

  // Reads stay open to stale connections (the audit path depends on it).
  send(*sw, ofp::EchoRequest{{1, 2, 3}}, 10);
  msgs = recv_all();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<ofp::EchoReply>(msgs[0].message));

  // The master's FLOW_MOD lands.
  auto bytes = ofp::encode(sw->options().version, 11, fm);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(c2.send(std::move(*bytes)));
  sw->pump();
  EXPECT_EQ(sw->table().size(), 1u);
  EXPECT_EQ(sw->fenced_mods(), 1u);
}

TEST_F(SwitchTest, MaxEpochSurvivesDisconnect) {
  auto sw = make_switch(ofp::Version::of10);
  recv_all();
  {
    auto [c2, s2] = net::Channel::make_pair();
    sw->connect(std::move(s2), 3);
    EXPECT_EQ(sw->max_epoch(), 3u);
    c2.close();  // the epoch-3 primary dies
  }
  sw->pump();

  // A deposed primary reconnecting with its old token stays fenced: the
  // high-water mark did not roll back with the disconnect.
  auto [c3, s3] = net::Channel::make_pair();
  sw->connect(std::move(s3), 2);
  EXPECT_EQ(sw->max_epoch(), 3u);
  ofp::FlowMod fm;
  fm.spec.match.tp_dst = 80;
  fm.spec.actions = {flow::Action::output(2)};
  auto bytes = ofp::encode(sw->options().version, 5, fm);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(c3.send(std::move(*bytes)));
  sw->pump();
  EXPECT_EQ(sw->table().size(), 0u);
  EXPECT_EQ(sw->fenced_mods(), 1u);

  // Only a fresher token (the next elected epoch) may mutate again.
  auto [c4, s4] = net::Channel::make_pair();
  sw->connect(std::move(s4), 4);
  bytes = ofp::encode(sw->options().version, 6, fm);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(c4.send(std::move(*bytes)));
  sw->pump();
  EXPECT_EQ(sw->table().size(), 1u);
}

}  // namespace
}  // namespace yanc::sw
