// Tests for the flow model: match evaluation, subsumption, intersection
// (the slicer's core operation), and action parsing/formatting.
#include <gtest/gtest.h>

#include "yanc/flow/builder.hpp"
#include "yanc/flow/flowspec.hpp"

namespace yanc::flow {
namespace {

FieldValues http_packet() {
  FieldValues f;
  f.in_port = 1;
  f.dl_src = *MacAddress::parse("02:00:00:00:00:01");
  f.dl_dst = *MacAddress::parse("02:00:00:00:00:02");
  f.dl_type = 0x0800;
  f.nw_src = *Ipv4Address::parse("10.0.0.1");
  f.nw_dst = *Ipv4Address::parse("10.0.0.2");
  f.nw_proto = 6;
  f.tp_src = 49152;
  f.tp_dst = 80;
  return f;
}

TEST(Match, MatchAllMatchesEverything) {
  Match m;
  EXPECT_TRUE(m.is_match_all());
  EXPECT_TRUE(m.matches(http_packet()));
  EXPECT_TRUE(m.matches(FieldValues{}));
  EXPECT_EQ(m.wildcard_count(), 12);
  EXPECT_EQ(m.to_string(), "");
}

TEST(Match, ExactFieldsFilter) {
  Match m;
  m.dl_type = 0x0800;
  m.tp_dst = 80;
  EXPECT_TRUE(m.matches(http_packet()));
  auto pkt = http_packet();
  pkt.tp_dst = 443;
  EXPECT_FALSE(m.matches(pkt));
  pkt = http_packet();
  pkt.dl_type = 0x0806;
  EXPECT_FALSE(m.matches(pkt));
}

TEST(Match, CidrPrefixMatching) {
  Match m;
  m.nw_src = *Cidr::parse("10.0.0.0/8");
  EXPECT_TRUE(m.matches(http_packet()));
  auto pkt = http_packet();
  pkt.nw_src = *Ipv4Address::parse("192.168.0.1");
  EXPECT_FALSE(m.matches(pkt));
}

TEST(Match, ExactFromRoundTrip) {
  auto pkt = http_packet();
  Match m = Match::exact_from(pkt);
  EXPECT_EQ(m.wildcard_count(), 0);
  EXPECT_TRUE(m.matches(pkt));
  auto other = pkt;
  other.tp_src = 1;
  EXPECT_FALSE(m.matches(other));
}

TEST(Match, Subsumption) {
  Match all;
  Match narrow;
  narrow.dl_type = 0x0800;
  narrow.nw_dst = *Cidr::parse("10.1.0.0/16");
  EXPECT_TRUE(all.subsumes(narrow));
  EXPECT_FALSE(narrow.subsumes(all));
  EXPECT_TRUE(narrow.subsumes(narrow));

  Match wider_prefix;
  wider_prefix.nw_dst = *Cidr::parse("10.0.0.0/8");
  EXPECT_TRUE(wider_prefix.subsumes(narrow));
  EXPECT_FALSE(narrow.subsumes(wider_prefix));
}

TEST(Match, IntersectDisjointFieldsIsEmpty) {
  Match a, b;
  a.tp_dst = 22;
  b.tp_dst = 80;
  EXPECT_FALSE(a.intersect(b).has_value());
}

TEST(Match, IntersectMergesFields) {
  Match slice;  // "ssh traffic"
  slice.dl_type = 0x0800;
  slice.nw_proto = 6;
  slice.tp_dst = 22;
  Match app;  // "traffic from 10.1/16"
  app.nw_src = *Cidr::parse("10.1.0.0/16");
  auto merged = slice.intersect(app);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->tp_dst, 22);
  EXPECT_EQ(merged->nw_src->to_string(), "10.1.0.0/16");
  EXPECT_EQ(merged->dl_type, 0x0800);
  // Intersection commutes.
  EXPECT_EQ(app.intersect(slice), merged);
}

TEST(Match, IntersectCidrPicksNarrower) {
  Match a, b;
  a.nw_dst = *Cidr::parse("10.0.0.0/8");
  b.nw_dst = *Cidr::parse("10.5.0.0/16");
  auto m = a.intersect(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->nw_dst->to_string(), "10.5.0.0/16");
  // Disjoint prefixes do not intersect.
  Match c;
  c.nw_dst = *Cidr::parse("192.168.0.0/16");
  EXPECT_FALSE(a.intersect(c).has_value());
}

TEST(Match, ToStringListsFields) {
  Match m;
  m.dl_type = 0x0800;
  m.tp_dst = 22;
  EXPECT_EQ(m.to_string(), "dl_type=0x0800,tp_dst=22");
}

TEST(Action, OutputHelpers) {
  EXPECT_EQ(Action::output(7).port(), 7);
  EXPECT_EQ(Action::to_controller().port(), port_no::controller);
  EXPECT_EQ(Action::flood().port(), port_no::flood);
  EXPECT_EQ(Action::output(7).to_string(), "out:7");
  EXPECT_EQ(Action::flood().value_text(), "flood");
}

TEST(Action, ParseOut) {
  EXPECT_EQ(parse_action("out", "3")->port(), 3);
  EXPECT_EQ(parse_action("out", "controller")->port(), port_no::controller);
  EXPECT_EQ(parse_action("out", " flood \n")->port(), port_no::flood);
  EXPECT_FALSE(parse_action("out", "70000").ok());
  EXPECT_FALSE(parse_action("out", "").ok());
}

TEST(Action, ParseSetters) {
  auto vlan = parse_action("set_vlan", "100");
  ASSERT_TRUE(vlan.ok());
  EXPECT_EQ(vlan->kind, ActionKind::set_vlan);
  EXPECT_FALSE(parse_action("set_vlan", "5000").ok());  // > 4095

  auto mac = parse_action("set_dl_dst", "02:00:00:00:00:09");
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(mac->mac().to_string(), "02:00:00:00:00:09");

  auto ip = parse_action("set_nw_src", "1.2.3.4");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->ip().to_string(), "1.2.3.4");

  auto tos = parse_action("set_nw_tos", "32");
  ASSERT_TRUE(tos.ok());
  EXPECT_EQ(tos->value_text(), "32");

  EXPECT_FALSE(parse_action("unknown_action", "1").ok());
}

TEST(Action, ParseEnqueue) {
  auto q = parse_action("enqueue", "2:1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->value_text(), "2:1");
  EXPECT_FALSE(parse_action("enqueue", "2").ok());
  EXPECT_FALSE(parse_action("enqueue", "2:x").ok());
}

TEST(Action, FileNameRoundTrip) {
  for (auto kind : {ActionKind::output, ActionKind::set_vlan,
                    ActionKind::strip_vlan, ActionKind::set_dl_src,
                    ActionKind::set_nw_dst, ActionKind::set_tp_src,
                    ActionKind::enqueue}) {
    EXPECT_FALSE(action_file_name(kind).empty());
  }
}

TEST(FlowSpec, ToStringReadable) {
  FlowSpec spec;
  spec.match.tp_dst = 22;
  spec.actions = {Action::output(2)};
  spec.priority = 10;
  spec.idle_timeout = 5;
  EXPECT_EQ(spec.to_string(),
            "prio=10 match=[tp_dst=22] actions=[out:2] idle=5");
  FlowSpec drop;
  EXPECT_EQ(drop.to_string(), "prio=32768 match=[*] actions=[drop]");
}

TEST(FlowBuilder, FluentAssembly) {
  auto spec = FlowBuilder()
                  .dl_type(0x0800)
                  .nw_proto(6)
                  .tp_dst(22)
                  .set_dl_dst(*MacAddress::parse("02:00:00:00:00:09"))
                  .output(2)
                  .priority(100)
                  .idle_timeout(30)
                  .build();
  EXPECT_EQ(spec.match.dl_type, 0x0800);
  EXPECT_EQ(spec.match.tp_dst, 22);
  ASSERT_EQ(spec.actions.size(), 2u);
  EXPECT_EQ(spec.actions[0].kind, ActionKind::set_dl_dst);
  EXPECT_EQ(spec.actions[1].port(), 2);
  EXPECT_EQ(spec.priority, 100);
  EXPECT_EQ(spec.idle_timeout, 30);
}

TEST(FlowBuilder, DropClearsActions) {
  auto spec = FlowBuilder().output(1).flood().drop().build();
  EXPECT_TRUE(spec.actions.empty());
}

TEST(FlowBuilder, MultiTable13) {
  auto spec = FlowBuilder().table(1).goto_table(2).output(3).build();
  EXPECT_EQ(spec.table_id, 1);
  EXPECT_EQ(spec.goto_table, 2);
}

TEST(FlowSpec, ActionsToString) {
  EXPECT_EQ(actions_to_string({}), "drop");
  EXPECT_EQ(actions_to_string({Action::output(1), Action::output(2)}),
            "out:1 out:2");
}

}  // namespace
}  // namespace yanc::flow
