// Active controller cluster (docs/ROBUSTNESS.md "Cluster failover"):
// lease grammar, per-shard elections, node-kill failover with the FS
// resync, epoch fencing against deposed primaries, split-brain provoked
// by asymmetric partitions — and the chaos sweep, which asserts the two
// cluster invariants under randomized kill/partition/delay schedules:
//
//   1. every shard converges to exactly one epoch-fenced primary;
//   2. no committed flow is lost — the surviving primary's switch ends
//      byte-identical to the replicated flows/ directory.
#include <gtest/gtest.h>

#include <cstdlib>

#include "yanc/cluster/harness.hpp"
#include "yanc/cluster/lease.hpp"
#include "yanc/faults/injector.hpp"
#include "yanc/obs/metrics.hpp"
#include "yanc/util/log.hpp"
#include "yanc/util/rng.hpp"

namespace yanc::cluster {
namespace {

using flow::Action;
using flow::FlowSpec;

FlowSpec make_spec(std::uint16_t port) {
  FlowSpec spec;
  spec.match.tp_dst = port;
  spec.actions = {Action::output(1)};
  return spec;
}

// --- lease grammar ------------------------------------------------------------

TEST(LeaseTest, FormatParseRoundTrip) {
  Lease lease{.holder = 2, .epoch = 7, .expiry = 190};
  EXPECT_EQ(lease.format(), "holder=2 epoch=7 expiry=190\n");
  auto back = Lease::parse(lease.format());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, lease);
}

TEST(LeaseTest, ParseRejectsMangledFiles) {
  // A lease file a partial write or merge mangled must read as invalid
  // (forcing an election), never as some other lease.
  for (const char* bad : {
           "",                                  // empty
           "holder=1 epoch=2",                  // missing expiry
           "holder=1 epoch=2 expiry=3 x=4",     // trailing junk
           "epoch=2 holder=1 expiry=3",         // wrong order
           "holder=a epoch=2 expiry=3",         // non-numeric
           "holder=-1 epoch=2 expiry=3",        // sign
           "holder=1 epoch= expiry=3",          // empty value
           "holder 1 epoch 2 expiry 3",         // no '='
       }) {
    EXPECT_FALSE(Lease::parse(bad).ok()) << "accepted: " << bad;
  }
  // Whitespace tolerance (trailing newline is the canonical form).
  EXPECT_TRUE(Lease::parse("  holder=1 epoch=2 expiry=3  \n").ok());
}

// --- steady state -------------------------------------------------------------

TEST(ClusterTest, EveryShardConvergesToExactlyOnePrimary) {
  Harness h(HarnessOptions{.nodes = 3, .switches = 3});
  h.settle();
  for (std::uint64_t dpid = 1; dpid <= 3; ++dpid) {
    auto owners = h.owners_of(dpid);
    ASSERT_EQ(owners.size(), 1u) << "dpid " << dpid;
    // The owner's driver finished the handshake: the replicated tree has
    // the switch directory.
    EXPECT_TRUE(h.switch_dir(*h.owner_of(dpid), dpid).ok());
    EXPECT_TRUE(h.switch_at(dpid).connected());
    EXPECT_EQ(h.switch_at(dpid).master_epoch(), 1u);
  }
  // The dpid-rotated rank spreads 3 shards across 3 live nodes.
  EXPECT_NE(*h.owner_of(1), *h.owner_of(2));
  EXPECT_NE(*h.owner_of(2), *h.owner_of(3));
}

TEST(ClusterTest, CommittedFlowReachesOwnedSwitchFromAnyNode) {
  Harness h(HarnessOptions{.nodes = 3, .switches = 1});
  h.settle();
  ASSERT_TRUE(h.owner_of(1).has_value());
  // Commit through a NON-owner node: replication carries it to the
  // owner, whose driver pushes it to hardware.
  std::size_t other = (*h.owner_of(1) + 1) % 3;
  ASSERT_FALSE(h.commit_flow(other, 1, "ssh", make_spec(22)));
  h.settle();
  auto fs = h.fs_flows(*h.owner_of(1), 1);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(h.hw_flows(1), fs);
}

// --- failover (the smoke_cluster_failover ctest entry) ------------------------

TEST(ClusterTest, NodeKillFailsOverAndResyncsCommittedFlows) {
  Harness h(HarnessOptions{.nodes = 3, .switches = 2});
  h.settle();
  ASSERT_TRUE(h.owner_of(1).has_value());
  std::size_t old_owner = *h.owner_of(1);
  for (int i = 0; i < 5; ++i)
    ASSERT_FALSE(h.commit_flow(old_owner, 1, "f" + std::to_string(i),
                               make_spec(static_cast<std::uint16_t>(100 + i))));
  h.settle();
  ASSERT_EQ(h.hw_flows(1).size(), 5u);
  std::uint64_t old_epoch = h.switch_at(1).max_epoch();

  h.kill(old_owner);
  h.settle(30);

  auto owners = h.owners_of(1);
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_NE(owners[0], old_owner);
  // The successor claimed under a strictly higher epoch and the switch
  // fenced up to it.
  EXPECT_GT(h.switch_at(1).max_epoch(), old_epoch);
  EXPECT_EQ(h.switch_at(1).master_epoch(), h.switch_at(1).max_epoch());
  // No committed flow lost: the reconnect resync replayed the replicated
  // flows/ directory onto the hardware.
  auto fs = h.fs_flows(owners[0], 1);
  ASSERT_EQ(fs.size(), 5u);
  EXPECT_EQ(h.hw_flows(1), fs);
  // Failover observability: latency histogram populated, takeover
  // counted (under /yanc/.stats/cluster/ on the successor's node).
  auto& reg = *h.vfs(owners[0])->metrics();
  EXPECT_GE(reg.counter("cluster/takeover_total")->value(), 1u);
  EXPECT_GE(reg.histogram("cluster/failover_latency_ns")->count(), 1u);
}

TEST(ClusterTest, CommitsDuringFailoverSurviveOnTheSuccessor) {
  Harness h(HarnessOptions{.nodes = 3, .switches = 1});
  h.settle();
  std::size_t old_owner = *h.owner_of(1);
  ASSERT_FALSE(h.commit_flow(old_owner, 1, "before", make_spec(1)));
  h.settle();

  h.kill(old_owner);
  // Commit through a survivor while the shard is leaderless.
  std::size_t survivor = (old_owner + 1) % 3;
  ASSERT_FALSE(h.commit_flow(survivor, 1, "during", make_spec(2)));
  h.settle(30);

  auto owners = h.owners_of(1);
  ASSERT_EQ(owners.size(), 1u);
  auto fs = h.fs_flows(owners[0], 1);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(h.hw_flows(1), fs);
}

TEST(ClusterTest, RevivedNodeReleasesStaleOwnershipAndStaysFenced) {
  Harness h(HarnessOptions{.nodes = 3, .switches = 1});
  h.settle();
  std::size_t old_owner = *h.owner_of(1);
  ASSERT_FALSE(h.commit_flow(old_owner, 1, "f0", make_spec(1)));
  h.settle();

  h.kill(old_owner);
  h.settle(30);
  auto owners = h.owners_of(1);
  ASSERT_EQ(owners.size(), 1u);
  std::uint64_t new_epoch = h.switch_at(1).max_epoch();

  // The dead node still believes it owns the shard (its manager never
  // observed the takeover) — revival must fix that before its driver
  // says a word: the first tick reads the higher-epoch lease and
  // releases, and the egress gate stays shut throughout.
  EXPECT_TRUE(h.manager(old_owner).owns(1));
  h.revive(old_owner);
  h.settle();
  EXPECT_FALSE(h.manager(old_owner).owns(1));
  ASSERT_EQ(h.owners_of(1).size(), 1u);
  EXPECT_EQ(h.switch_at(1).max_epoch(), new_epoch);  // fence undisturbed
  EXPECT_GE(h.vfs(old_owner)
                ->metrics()
                ->counter("cluster/ownership_lost_total")
                ->value(),
            1u);
}

// --- lease edge cases ---------------------------------------------------------

TEST(ClusterTest, ExpiryDuringTakeoverStillConverges) {
  // Cut the successor off mid-claim: its claim lease replicates nowhere
  // and expires unconfirmed.  Once the partition heals, some node's next
  // claim must win cleanly — no shard may stay leaderless forever and no
  // epoch may regress.
  Harness h(HarnessOptions{.nodes = 3, .switches = 1});
  h.settle();
  std::size_t old_owner = *h.owner_of(1);
  h.kill(old_owner);

  std::size_t a = (old_owner + 1) % 3, b = (old_owner + 2) % 3;
  h.transport().set_partitioned(a, b, true);
  // Let claims get written and expire across the cut (TTL is 8 ticks).
  h.settle(20);
  h.transport().set_partitioned(a, b, false);
  h.settle(30);

  auto owners = h.owners_of(1);
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_GE(h.switch_at(1).max_epoch(), 2u);
  EXPECT_EQ(h.switch_at(1).master_epoch(), h.switch_at(1).max_epoch());
}

TEST(ClusterTest, RacingClaimantsResolveToSingleOwner) {
  // Split-brain on demand: kill the owner, then cut the two survivors
  // from each other.  Each sees the other's heartbeat go stale, elects
  // itself, and writes a claim — the two-claimants-one-epoch race the
  // LWW confirm re-read exists to resolve.
  Harness h(HarnessOptions{.nodes = 3, .switches = 1});
  h.settle();
  std::size_t old_owner = *h.owner_of(1);
  ASSERT_FALSE(h.commit_flow(old_owner, 1, "f0", make_spec(9)));
  h.settle();

  h.kill(old_owner);
  std::size_t a = (old_owner + 1) % 3, b = (old_owner + 2) % 3;
  h.transport().set_partitioned(a, b, true);
  h.settle(20);
  // While cut, both may claim; split ownership is permitted only during
  // the partition.  Heal: LWW settles the lease file, the loser's next
  // confirm re-read fails, and it releases.
  h.transport().set_partitioned(a, b, false);
  h.settle(30);

  auto owners = h.owners_of(1);
  ASSERT_EQ(owners.size(), 1u);
  // The committed flow survived the whole affair on hardware.
  auto fs = h.fs_flows(owners[0], 1);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(h.hw_flows(1), fs);
  // The switch's fence is at the surviving claim's epoch; the loser
  // never regressed it.
  EXPECT_EQ(h.switch_at(1).master_epoch(), h.switch_at(1).max_epoch());
}

TEST(ClusterTest, AsymmetricPartitionCannotSplitBrainForever) {
  // One-way cut: the owner's heartbeats stop reaching a peer, but the
  // peer's claims DO reach the owner (and everyone else).  The usurper's
  // higher-epoch lease replicates to the owner, which must stand down.
  Harness h(HarnessOptions{.nodes = 3, .switches = 1});
  h.settle();
  std::size_t owner = *h.owner_of(1);
  std::size_t peer = (owner + 1) % 3;
  h.transport().set_partitioned_oneway(owner, peer, true);
  h.settle(40);
  h.transport().set_partitioned_oneway(owner, peer, false);
  h.settle(30);
  EXPECT_EQ(h.owners_of(1).size(), 1u);
  EXPECT_EQ(h.switch_at(1).master_epoch(), h.switch_at(1).max_epoch());
}

TEST(ClusterTest, TombstonedThenRecreatedShardDirReElects) {
  Harness h(HarnessOptions{.nodes = 3, .switches = 1});
  h.settle();
  std::size_t owner = *h.owner_of(1);

  // Administrative removal of the shard: every manager drops it (the
  // owner releases) and the dist tombstone stops anti-entropy from
  // resurrecting the old lease.
  ASSERT_FALSE(h.vfs(owner)->remove_all("/net/.cluster/shards/1"));
  h.settle();
  EXPECT_TRUE(h.owners_of(1).empty());

  // Recreate: discovery via the shards/ watch, fresh election.  The old
  // lease is gone, so the epoch restarts — the switch's high-water fence
  // keeps monotonicity on the wire regardless.
  ASSERT_FALSE(h.manager(owner).add_shard(1));
  h.settle(30);
  EXPECT_EQ(h.owners_of(1).size(), 1u);
}

// --- chaos sweep (stress tier sweeps YANC_FAULT_SEED) -------------------------

// Randomized schedule of node kills/revives, symmetric and asymmetric
// partitions, lease-delaying lossy links — interleaved with flow commits
// through surviving nodes.  After the storm: heal, revive, settle, one
// anti-entropy round; then both invariants must hold on every shard.
TEST(ClusterChaos, ConvergesToOneFencedPrimaryWithNoLostFlows) {
  // YANC_LOG=1 narrates driver/cluster recovery decisions on a replay.
  if (std::getenv("YANC_LOG")) set_log_level(LogLevel::error);
  const char* env = std::getenv("YANC_FAULT_SEED");
  const std::uint64_t base = env ? std::strtoull(env, nullptr, 10) : 1;
  for (std::uint64_t seed = base; seed < base + 2; ++seed) {
    SCOPED_TRACE("YANC_FAULT_SEED=" + std::to_string(seed));
    constexpr std::size_t kNodes = 3;
    constexpr std::size_t kSwitches = 8;
    Harness h(HarnessOptions{.nodes = kNodes, .switches = kSwitches});
    auto injector = std::make_shared<faults::Injector>(seed);
    h.settle(20);

    util::Rng rng(seed * 7919 + 17);
    std::vector<bool> dead(kNodes, false);
    std::size_t n_dead = 0;
    int committed = 0;
    auto commit_somewhere = [&](std::uint64_t dpid) {
      for (std::size_t n = 0; n < kNodes; ++n) {
        if (dead[n]) continue;
        if (!h.commit_flow(n, dpid,
                           "c" + std::to_string(committed),
                           make_spec(static_cast<std::uint16_t>(
                               1000 + committed)))) {
          ++committed;
          return;
        }
      }
    };

    for (int step = 0; step < 40; ++step) {
      switch (rng.next_u64() % 6) {
        case 0: {  // kill (keep a majority alive)
          std::size_t n = rng.next_u64() % kNodes;
          if (!dead[n] && n_dead + 1 < kNodes) {
            h.kill(n);
            dead[n] = true;
            ++n_dead;
          }
          break;
        }
        case 1: {  // revive
          std::size_t n = rng.next_u64() % kNodes;
          if (dead[n]) {
            h.revive(n);
            dead[n] = false;
            --n_dead;
          }
          break;
        }
        case 2: {  // asymmetric partition, healed a few steps later
          std::size_t a = rng.next_u64() % kNodes;
          std::size_t b = (a + 1 + rng.next_u64() % (kNodes - 1)) % kNodes;
          h.transport().set_partitioned_oneway(a, b, true);
          h.tick();
          h.tick();
          h.transport().set_partitioned_oneway(a, b, false);
          break;
        }
        case 3: {  // lossy + delaying links for a burst
          faults::FaultPlan plan;
          plan.drop = 0.10;
          plan.delay = 0.20;
          injector->set_plan(faults::Scope::transport, plan);
          dist::attach_faults(h.transport(), injector);
          h.tick();
          h.tick();
          dist::attach_faults(h.transport(), nullptr);
          break;
        }
        default:
          commit_somewhere(rng.next_u64() % kSwitches + 1);
          break;
      }
      h.tick();
    }

    // Calm after the storm.
    dist::attach_faults(h.transport(), nullptr);
    for (std::size_t n = 0; n < kNodes; ++n)
      if (dead[n]) {
        h.revive(n);
        dead[n] = false;
      }
    h.settle(40);
    h.anti_entropy();
    h.settle(20);

    ASSERT_GT(committed, 0);
    for (std::uint64_t dpid = 1; dpid <= kSwitches; ++dpid) {
      SCOPED_TRACE("dpid=" + std::to_string(dpid));
      auto owners = h.owners_of(dpid);
      ASSERT_EQ(owners.size(), 1u);  // invariant 1: one primary
      EXPECT_EQ(h.switch_at(dpid).master_epoch(),
                h.switch_at(dpid).max_epoch());  // ...epoch-fenced
      // Invariant 2: hardware == replicated committed state.
      auto fs = h.fs_flows(owners[0], dpid);
      EXPECT_EQ(h.hw_flows(dpid), fs);
      // And the replicas agree with each other (anti-entropy converged).
      for (std::size_t n = 0; n < kNodes; ++n)
        EXPECT_EQ(h.fs_flows(n, dpid), fs) << "node " << n << " diverged";
    }
  }
}

}  // namespace
}  // namespace yanc::cluster
