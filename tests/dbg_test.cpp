// yanc::dbg lockdep tests: the ranked wrappers validate order, catch
// inversions with both sites in the report, tolerate the legitimate
// out-of-order release pattern, and stay data-race-free under contention
// (this suite runs under scripts/sanitize.sh tsan).
//
// Death tests use the reserved ranks (dist_transport, driver): the edge
// graph is process-global, and reserved ranks guarantee no interference
// with edges the library itself establishes in sibling tests.
#include "yanc/dbg/lockdep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace yanc::dbg {
namespace {

#if YANC_DBG_LOCKS

// Checked builds: the wrappers are real types, not the std aliases.
static_assert(!std::is_same_v<Mutex<Rank::vfs_namespace>, std::mutex>);
static_assert(
    !std::is_same_v<SharedMutex<Rank::vfs_namespace>, std::shared_mutex>);

TEST(LockdepTest, RankNamesAreStable) {
  EXPECT_STREQ(rank_name(Rank::vfs_namespace), "vfs_namespace");
  EXPECT_STREQ(rank_name(Rank::watch_queue), "watch_queue");
  EXPECT_STREQ(rank_name(Rank::driver), "driver");
}

TEST(LockdepTest, GuardsMaintainHeldDepth) {
  EXPECT_EQ(detail::held_depth(), 0);
  Mutex<Rank::dist_transport> a;
  Mutex<Rank::driver> b;
  {
    LockGuard ga(a);
    EXPECT_EQ(detail::held_depth(), 1);
    LockGuard gb(b);
    EXPECT_EQ(detail::held_depth(), 2);
  }
  EXPECT_EQ(detail::held_depth(), 0);
}

TEST(LockdepTest, TryLockFailureLeavesNothingHeld) {
  Mutex<Rank::dist_transport> m;
  m.lock();
  std::thread t([&] {
    // Contended from another thread: the attempt must fail and must not
    // leave a phantom entry on this thread's held stack.
    EXPECT_FALSE(m.try_lock());
    EXPECT_EQ(detail::held_depth(), 0);
  });
  t.join();
  m.unlock();
  EXPECT_TRUE(m.try_lock());
  EXPECT_EQ(detail::held_depth(), 1);
  m.unlock();
  EXPECT_EQ(detail::held_depth(), 0);
}

TEST(LockdepTest, OutOfOrderReleaseIsSupported) {
  // The MutationScope hand-off pattern: take namespace then emit, release
  // namespace first while emit stays held.  Ranks mirror the real pair, so
  // the edge recorded here is one the library itself establishes.
  SharedMutex<Rank::vfs_namespace> ns;
  Mutex<Rank::vfs_emit> emit;
  {
    UniqueLock lk(ns);
    LockGuard order(emit);
    EXPECT_EQ(detail::held_depth(), 2);
    lk.unlock();
    EXPECT_EQ(detail::held_depth(), 1);
    EXPECT_FALSE(lk.owns_lock());
  }
  EXPECT_EQ(detail::held_depth(), 0);
}

TEST(LockdepTest, CondVarWaitRelocksAndRetracks) {
  Mutex<Rank::driver> m;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    UniqueLock lk(m);
    cv.wait(lk, [&] { return ready; });
    // Re-locked by wait(): tracked again on this thread.
    EXPECT_EQ(detail::held_depth(), 1);
    EXPECT_TRUE(lk.owns_lock());
  });
  {
    LockGuard g(m);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

TEST(LockdepTest, ConsistentOrderAcrossThreadsIsClean) {
  // The TSan target: four threads hammer the same two ranks in the same
  // order.  No violation, no race in the edge graph's fast path.
  Mutex<Rank::dist_transport> outer;
  Mutex<Rank::driver> inner;
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        LockGuard a(outer);
        LockGuard b(inner);
        count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(count.load(), 4000);
}

TEST(LockdepTest, SharedAcquisitionsFeedTheSameGraph) {
  SharedMutex<Rank::vfs_namespace> ns;
  SharedMutex<Rank::vfs_data_shard> shard;
  {
    SharedLock rns(ns);
    SharedLock rshard(shard);
    EXPECT_EQ(detail::held_depth(), 2);
  }
  EXPECT_EQ(detail::held_depth(), 0);
}

TEST(LockdepTest, EdgeGraphSnapshotRecordsNestingWithSites) {
  // Establish dist_transport -> driver (also used by sibling tests, so
  // it may pre-exist; the snapshot must contain it either way).
  Mutex<Rank::dist_transport> outer;
  Mutex<Rank::driver> inner;
  {
    LockGuard a(outer);
    LockGuard b(inner);
  }
  bool found = false;
  for (const LockEdge& e : lock_edges()) {
    EXPECT_NE(e.held, e.acquired);  // same-rank edges can never be recorded
    if (e.held == Rank::dist_transport && e.acquired == Rank::driver) {
      found = true;
      // First-observation sites: both ends must point at a real file.
      EXPECT_NE(std::string(e.holder_file).find("dbg_test"),
                std::string::npos);
      EXPECT_GT(e.holder_line, 0u);
      EXPECT_GT(e.acquire_line, 0u);
    }
  }
  EXPECT_TRUE(found);

  // The text dump is the parseable contract yanc-analyze consumes:
  // "<held> <acquired> <holder_file>:<line> <acquire_file>:<line>".
  std::string text = dump_lock_edges();
  auto pos = text.find("dist_transport driver ");
  ASSERT_NE(pos, std::string::npos);
  auto eol = text.find('\n', pos);
  ASSERT_NE(eol, std::string::npos);
  EXPECT_NE(text.substr(pos, eol - pos).find("dbg_test"), std::string::npos);
}

TEST(LockdepDeathTest, InversionAbortsWithBothRanksAndSites) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex<Rank::dist_transport> a;
        Mutex<Rank::driver> b;
        {  // Establish dist_transport -> driver.
          LockGuard ga(a);
          LockGuard gb(b);
        }
        {  // Close the cycle: acquire dist_transport while holding driver.
          LockGuard gb(b);
          LockGuard ga(a);
        }
      },
      "lock-order violation(\n|.)*"
      "acquiring dist_transport(\n|.)*dbg_test\\.cpp(\n|.)*"
      "while holding driver(\n|.)*dbg_test\\.cpp(\n|.)*"
      "dist_transport -> driver");
}

TEST(LockdepDeathTest, SameRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex<Rank::driver> first;
        Mutex<Rank::driver> second;
        LockGuard g1(first);
        LockGuard g2(second);
      },
      "same-rank nesting(\n|.)*driver(\n|.)*"
      "first  acquired at(\n|.)*dbg_test\\.cpp(\n|.)*"
      "second acquired at(\n|.)*dbg_test\\.cpp");
}

TEST(LockdepDeathTest, UnownedReleaseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex<Rank::driver> m;
        m.unlock();
      },
      "release of driver which is not held");
}

#else  // !YANC_DBG_LOCKS

// Release builds: the ranked types ARE the raw standard types (the
// header's own static_asserts enforce this too); nothing to test at
// runtime, but the suite still links and passes so an OFF configuration
// can run the full ctest tier.
TEST(LockdepTest, ReleaseModeAliasesRawTypes) {
  static_assert(std::is_same_v<Mutex<Rank::vfs_namespace>, std::mutex>);
  static_assert(
      std::is_same_v<SharedMutex<Rank::vfs_namespace>, std::shared_mutex>);
  static_assert(std::is_same_v<LockGuard<std::mutex>,
                               std::lock_guard<std::mutex>>);
  static_assert(std::is_same_v<CondVar, std::condition_variable>);
  SUCCEED();
}

#endif  // YANC_DBG_LOCKS

}  // namespace
}  // namespace yanc::dbg
