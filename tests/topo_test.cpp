// Tests for the topology module: graph reading from peer symlinks, path
// computation, and the LLDP discovery daemon running against a live
// simulated network through the driver.
#include <gtest/gtest.h>

#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/sw/switch.hpp"
#include "yanc/topo/discovery.hpp"

namespace yanc::topo {
namespace {

TEST(PortRefTest, PathRoundTrip) {
  PortRef ref{"sw1", 3};
  EXPECT_EQ(ref.path("/net"), "/net/switches/sw1/ports/3");
  auto parsed = PortRef::from_path("/net/switches/sw1/ports/3");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ref);
  // Relative form also parses.
  EXPECT_TRUE(PortRef::from_path("switches/sw2/ports/1").has_value());
  // Non-port paths do not.
  EXPECT_FALSE(PortRef::from_path("/net/switches/sw1/flows/f").has_value());
  EXPECT_FALSE(PortRef::from_path("/net/switches/sw1/ports/x").has_value());
  EXPECT_FALSE(PortRef::from_path("ports/1").has_value());
}

TEST(GraphTest, ShortestPathLinear) {
  Graph g;
  // sw1:2 -- 1:sw2:2 -- 1:sw3
  g.add_link({"sw1", 2}, {"sw2", 1});
  g.add_link({"sw2", 2}, {"sw3", 1});
  auto path = g.shortest_path("sw1", "sw3");
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0], (PortRef{"sw1", 2}));
  EXPECT_EQ((*path)[1], (PortRef{"sw2", 2}));
  EXPECT_TRUE(g.shortest_path("sw1", "sw1")->empty());
}

TEST(GraphTest, ShortestPathPrefersFewerHops) {
  Graph g;
  // Triangle: sw1-sw2, sw2-sw3, sw1-sw3 (direct).
  g.add_link({"sw1", 1}, {"sw2", 1});
  g.add_link({"sw2", 2}, {"sw3", 1});
  g.add_link({"sw1", 2}, {"sw3", 2});
  auto path = g.shortest_path("sw1", "sw3");
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0], (PortRef{"sw1", 2}));
}

TEST(GraphTest, UnreachableIsNullopt) {
  Graph g;
  g.add_switch("island");
  g.add_link({"sw1", 1}, {"sw2", 1});
  EXPECT_FALSE(g.shortest_path("sw1", "island").has_value());
  EXPECT_FALSE(g.shortest_path("sw1", "nowhere").has_value());
}

TEST(GraphTest, HostPathEndsAtHostPort) {
  Graph g;
  g.add_link({"sw1", 2}, {"sw2", 1});
  HostAttachment h1{"h1", MacAddress::from_u64(1), Ipv4Address(1),
                    {"sw1", 10}};
  HostAttachment h2{"h2", MacAddress::from_u64(2), Ipv4Address(2),
                    {"sw2", 10}};
  g.add_host(h1);
  g.add_host(h2);
  auto path = g.host_path(h1, h2);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0], (PortRef{"sw1", 2}));
  EXPECT_EQ((*path)[1], (PortRef{"sw2", 10}));
  EXPECT_EQ(g.find_host(h1.mac)->host_name, "h1");
  EXPECT_EQ(g.find_host(h2.ip)->host_name, "h2");
  EXPECT_EQ(g.find_host(Ipv4Address(99)), nullptr);
}

TEST(ReadTopologyTest, ParsesPeerSymlinksAndHosts) {
  auto vfs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
  for (const char* sw : {"sw1", "sw2"})
    ASSERT_FALSE(vfs->mkdir(std::string("/net/switches/") + sw));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/ports/2"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw2/ports/1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/ports/10"));
  ASSERT_FALSE(vfs->symlink("/net/switches/sw2/ports/1",
                            "/net/switches/sw1/ports/2/peer"));
  ASSERT_FALSE(vfs->symlink("/net/switches/sw1/ports/2",
                            "/net/switches/sw2/ports/1/peer"));
  ASSERT_FALSE(vfs->mkdir("/net/hosts/h1"));
  ASSERT_FALSE(vfs->write_file("/net/hosts/h1/mac", "0a:00:00:00:00:01"));
  ASSERT_FALSE(vfs->write_file("/net/hosts/h1/ip", "10.0.0.1"));
  ASSERT_FALSE(vfs->symlink("/net/switches/sw1/ports/10",
                            "/net/hosts/h1/location"));

  auto graph = read_topology(*vfs);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->links().size(), 1u);  // bidirectional pair = one link
  EXPECT_EQ(graph->hosts().size(), 1u);
  EXPECT_EQ(graph->hosts()[0].location, (PortRef{"sw1", 10}));
  auto path = graph->shortest_path("sw1", "sw2");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

// --- discovery end to end ------------------------------------------------------

class DiscoveryTest : public ::testing::Test {
 protected:
  DiscoveryTest() : network(scheduler) {}

  void SetUp() override {
    ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
    driver = std::make_unique<driver::OfDriver>(vfs);
    // Two switches, linked sw1:2 <-> sw2:1, each with an edge port.
    s1 = make_switch(1);
    s2 = make_switch(2);
    ASSERT_TRUE(network.add_link(*s1, 2, *s2, 1).ok());
    settle();
  }

  std::unique_ptr<sw::Switch> make_switch(std::uint64_t dpid) {
    sw::SwitchOptions opts;
    opts.datapath_id = dpid;
    auto s = std::make_unique<sw::Switch>("dp" + std::to_string(dpid), opts,
                                          network);
    for (int p = 1; p <= 3; ++p)
      s->add_port(static_cast<std::uint16_t>(p), MacAddress::from_u64(p),
                  "eth");
    s->connect(driver->listener().connect());
    return s;
  }

  void settle() {
    for (int i = 0; i < 30; ++i) {
      std::size_t w = driver->poll() + s1->pump() + s2->pump() +
                      scheduler.run_until_idle();
      if (!w) break;
    }
  }

  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
  net::Scheduler scheduler;
  net::Network network;
  std::unique_ptr<driver::OfDriver> driver;
  std::unique_ptr<sw::Switch> s1, s2;
};

TEST_F(DiscoveryTest, LldpProbesCreatePeerSymlinks) {
  DiscoveryDaemon daemon(vfs);
  ASSERT_TRUE(daemon.step(0).ok());  // send probes
  settle();                          // probes traverse, packet-ins deliver
  auto links = daemon.consume(0);
  ASSERT_TRUE(links.ok());
  EXPECT_EQ(*links, 2u);  // both directions confirmed

  EXPECT_EQ(*vfs->readlink("/net/switches/sw1/ports/2/peer"),
            "/net/switches/sw2/ports/1");
  EXPECT_EQ(*vfs->readlink("/net/switches/sw2/ports/1/peer"),
            "/net/switches/sw1/ports/2");
  // Edge ports got no links.
  EXPECT_FALSE(vfs->readlink("/net/switches/sw1/ports/1/peer").ok());

  auto graph = read_topology(*vfs);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->links().size(), 1u);
}

TEST_F(DiscoveryTest, StaleLinksExpire) {
  DiscoveryDaemon daemon(vfs);
  ASSERT_TRUE(daemon.step(0).ok());
  settle();
  ASSERT_TRUE(daemon.consume(0).ok());
  ASSERT_EQ(daemon.known_links(), 2u);

  // The physical link goes away; probes stop confirming it.
  // (Remove by tearing the simulated link down.)
  // Advance virtual time past the TTL without reconfirmation.
  auto links = daemon.consume(20'000'000'000ull);  // 20s later
  ASSERT_TRUE(links.ok());
  EXPECT_EQ(*links, 0u);
  EXPECT_FALSE(vfs->readlink("/net/switches/sw1/ports/2/peer").ok());
}

}  // namespace
}  // namespace yanc::topo
