// Unit tests for yanc::util — parsing, globbing, byte codecs, errors.
#include <gtest/gtest.h>

#include "yanc/util/bytes.hpp"
#include "yanc/util/clock.hpp"
#include "yanc/util/error.hpp"
#include "yanc/util/net_types.hpp"
#include "yanc/util/strings.hpp"

namespace yanc {
namespace {

TEST(Error, CategoryRoundTrip) {
  std::error_code ec = make_error_code(Errc::not_found);
  EXPECT_TRUE(ec);
  EXPECT_EQ(ec.category().name(), std::string("yanc"));
  EXPECT_EQ(ec.message(), "no such file or directory");
  EXPECT_EQ(errc_name(Errc::not_found), "ENOENT");
  EXPECT_EQ(errc_name(Errc::symlink_loop), "ELOOP");
}

TEST(Result, ValueAndError) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_FALSE(good.error());

  Result<int> bad(Errc::exists);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), make_error_code(Errc::exists));
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_nonempty("/a//b/", '/'),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_nonempty("", '/'), std::vector<std::string>{});
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b"}, '/'), "a/b");
  EXPECT_EQ(join({}, '/'), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("noop"), "noop");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(*parse_u64("0"), 0u);
  EXPECT_EQ(*parse_u64(" 123 \n"), 123u);
  EXPECT_EQ(*parse_u64("18446744073709551615"),
            18446744073709551615ull);
  EXPECT_FALSE(parse_u64("18446744073709551616").ok());  // overflow
  EXPECT_FALSE(parse_u64("-1").ok());
  EXPECT_FALSE(parse_u64("12x").ok());
  EXPECT_FALSE(parse_u64("").ok());
}

TEST(Strings, ParseHex) {
  EXPECT_EQ(*parse_hex_u64("0xff"), 0xffu);
  EXPECT_EQ(*parse_hex_u64("DEADbeef"), 0xdeadbeefu);
  EXPECT_FALSE(parse_hex_u64("0x").ok());
  EXPECT_FALSE(parse_hex_u64("12345678901234567").ok());  // >16 digits
  EXPECT_FALSE(parse_hex_u64("zz").ok());
}

TEST(Strings, ToHex) {
  EXPECT_EQ(to_hex(0xabc, 2), "0abc");
  EXPECT_EQ(to_hex(0, 8), "0000000000000000");
  EXPECT_EQ(to_hex(0x0000000000000001ull, 8), "0000000000000001");
}

TEST(Strings, GlobBasics) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("match.*", "match.nw_src"));
  EXPECT_FALSE(glob_match("match.*", "action.out"));
  EXPECT_TRUE(glob_match("sw?", "sw1"));
  EXPECT_FALSE(glob_match("sw?", "sw12"));
  EXPECT_TRUE(glob_match("*.dst", "tp.dst"));
  EXPECT_TRUE(glob_match("a*b*c", "axxbyyc"));
  EXPECT_FALSE(glob_match("a*b*c", "axxbyy"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(Strings, GlobSets) {
  EXPECT_TRUE(glob_match("sw[0-9]", "sw5"));
  EXPECT_FALSE(glob_match("sw[0-9]", "swx"));
  EXPECT_TRUE(glob_match("[!a]x", "bx"));
  EXPECT_FALSE(glob_match("[!a]x", "ax"));
  EXPECT_TRUE(glob_match("f[kl]ow*", "flow_7"));
  EXPECT_FALSE(glob_match("f[abc]ow*", "flow_7"));
}

TEST(Mac, ParseFormat) {
  auto mac = MacAddress::parse("aa:BB:0c:00:01:ff");
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(mac->to_string(), "aa:bb:0c:00:01:ff");
  EXPECT_EQ(mac->to_u64(), 0xaabb0c0001ffull);
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee").ok());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:gg").ok());
  EXPECT_FALSE(MacAddress::parse("aabbccddeeff").ok());
}

TEST(Mac, Properties) {
  EXPECT_TRUE(MacAddress::parse("ff:ff:ff:ff:ff:ff")->is_broadcast());
  EXPECT_TRUE(MacAddress::parse("01:00:5e:00:00:01")->is_multicast());
  EXPECT_FALSE(MacAddress::parse("00:11:22:33:44:55")->is_multicast());
  EXPECT_EQ(MacAddress::from_u64(0x0000010203040506ull & 0xffffffffffffull)
                .to_string(),
            "01:02:03:04:05:06");
}

TEST(Ipv4, ParseFormat) {
  auto ip = Ipv4Address::parse("10.0.0.1");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->value(), 0x0a000001u);
  EXPECT_EQ(ip->to_string(), "10.0.0.1");
  EXPECT_FALSE(Ipv4Address::parse("10.0.0").ok());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.256").ok());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.1.2").ok());
}

TEST(Cidr, ParseContains) {
  auto net = Cidr::parse("10.1.0.0/16");
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->to_string(), "10.1.0.0/16");
  EXPECT_TRUE(net->contains(*Ipv4Address::parse("10.1.2.3")));
  EXPECT_FALSE(net->contains(*Ipv4Address::parse("10.2.0.0")));
  // Bare address means /32.
  auto host = Cidr::parse("192.168.1.1");
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host->prefix_len(), 32);
  // Non-canonical base address is masked down.
  EXPECT_EQ(Cidr::parse("10.1.2.3/16")->to_string(), "10.1.0.0/16");
  EXPECT_FALSE(Cidr::parse("10.0.0.0/33").ok());
}

TEST(Cidr, NestedContainment) {
  auto wide = *Cidr::parse("10.0.0.0/8");
  auto narrow = *Cidr::parse("10.5.0.0/16");
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  auto zero = *Cidr::parse("0.0.0.0/0");
  EXPECT_TRUE(zero.contains(wide));
}

TEST(Clock, AdvanceMonotonic) {
  VirtualClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.advance(std::chrono::microseconds(5));
  EXPECT_EQ(clock.now_ns(), 5000u);
  clock.advance(std::chrono::nanoseconds(-10));  // ignored
  EXPECT_EQ(clock.now_ns(), 5000u);
  clock.advance_to(std::chrono::nanoseconds(4000));  // in the past: no-op
  EXPECT_EQ(clock.now_ns(), 5000u);
  clock.advance_to(std::chrono::nanoseconds(9000));
  EXPECT_EQ(clock.now_ns(), 9000u);
}

TEST(Bytes, WriterReaderRoundTrip) {
  BufWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  w.u64(0x1122334455667788ull);
  w.padded_string("eth0", 8);
  std::vector<std::uint8_t> payload{1, 2, 3};
  w.bytes(payload);
  ASSERT_EQ(w.size(), 1u + 2 + 4 + 8 + 8 + 3);

  BufReader r(w.data());
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789abcdeu);
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_EQ(r.padded_string(8), "eth0");
  EXPECT_EQ(r.bytes(3), payload);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, ReaderPoisonsOnUnderflow) {
  std::vector<std::uint8_t> two{0xab, 0xcd};
  BufReader r(two);
  EXPECT_EQ(r.u32(), 0u);  // underflow -> zero
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays poisoned
}

TEST(Bytes, PatchU16) {
  BufWriter w;
  w.u16(0);  // placeholder length
  w.u32(0xdeadbeef);
  w.patch_u16(0, static_cast<std::uint16_t>(w.size()));
  BufReader r(w.data());
  EXPECT_EQ(r.u16(), 6u);
}

TEST(Bytes, SubReader) {
  BufWriter w;
  w.u16(0x0102);
  w.u16(0x0304);
  BufReader r(w.data());
  BufReader inner = r.sub(2);
  EXPECT_EQ(inner.u16(), 0x0102u);
  EXPECT_EQ(r.u16(), 0x0304u);
  BufReader bad = r.sub(10);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(bad.remaining(), 0u);
}

}  // namespace
}  // namespace yanc
