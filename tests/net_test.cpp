// Tests for the simulated data plane: packet build/parse round trips,
// header rewrites, channels, the event scheduler, links, and host
// behaviours (ARP resolution, ping).
#include <gtest/gtest.h>

#include "yanc/net/channel.hpp"
#include "yanc/net/simnet.hpp"

namespace yanc::net {
namespace {

MacAddress mac(const char* s) { return *MacAddress::parse(s); }
Ipv4Address ip(const char* s) { return *Ipv4Address::parse(s); }

// --- packets -----------------------------------------------------------------

TEST(Packet, EthernetRoundTrip) {
  auto frame = build_ethernet(mac("02:00:00:00:00:02"),
                              mac("02:00:00:00:00:01"), 0x88b5, {1, 2, 3});
  auto p = parse_frame(frame);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->dl_dst.to_string(), "02:00:00:00:00:02");
  EXPECT_EQ(p->dl_src.to_string(), "02:00:00:00:00:01");
  EXPECT_EQ(p->dl_type, 0x88b5);
  EXPECT_EQ(p->vlan_id, 0xffff);  // untagged
  EXPECT_FALSE(p->ipv4.has_value());
}

TEST(Packet, TruncatedFrameRejected) {
  Frame tiny{1, 2, 3};
  EXPECT_FALSE(parse_frame(tiny).ok());
}

TEST(Packet, ArpRoundTrip) {
  auto frame = build_arp(arp_op::request, mac("02:00:00:00:00:01"),
                         ip("10.0.0.1"), MacAddress{}, ip("10.0.0.2"));
  auto p = parse_frame(frame);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->dl_type, ethertype::arp);
  EXPECT_TRUE(p->dl_dst.is_broadcast());  // requests broadcast
  ASSERT_TRUE(p->arp.has_value());
  EXPECT_EQ(p->arp->op, arp_op::request);
  EXPECT_EQ(p->arp->sender_ip.to_string(), "10.0.0.1");
  EXPECT_EQ(p->arp->target_ip.to_string(), "10.0.0.2");
  // ARP maps onto nw_src/nw_dst/nw_proto for OpenFlow matching.
  auto fields = p->fields(4);
  EXPECT_EQ(fields.in_port, 4);
  EXPECT_EQ(fields.nw_src.to_string(), "10.0.0.1");
  EXPECT_EQ(fields.nw_proto, arp_op::request);
}

TEST(Packet, UdpRoundTrip) {
  auto frame = build_udp(mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"),
                         ip("10.0.0.1"), ip("10.0.0.2"), 5000, 53,
                         {0xca, 0xfe});
  auto p = parse_frame(frame);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p->ipv4.has_value());
  EXPECT_EQ(p->ipv4->proto, ipproto::udp);
  ASSERT_TRUE(p->l4.has_value());
  EXPECT_EQ(p->l4->src_port, 5000);
  EXPECT_EQ(p->l4->dst_port, 53);
  EXPECT_EQ(p->l4_payload, (std::vector<std::uint8_t>{0xca, 0xfe}));
}

TEST(Packet, TcpRoundTrip) {
  auto frame = build_tcp(mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"),
                         ip("10.0.0.1"), ip("10.0.0.2"), 49152, 22, {'s'});
  auto p = parse_frame(frame);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ipv4->proto, ipproto::tcp);
  EXPECT_EQ(p->l4->dst_port, 22);
  EXPECT_EQ(p->l4_payload, std::vector<std::uint8_t>{'s'});
  auto fields = p->fields(1);
  EXPECT_EQ(fields.tp_dst, 22);
  EXPECT_EQ(fields.nw_proto, 6);
}

TEST(Packet, IcmpEchoRoundTrip) {
  auto frame =
      build_icmp_echo(mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"),
                      ip("10.0.0.1"), ip("10.0.0.2"), icmp_type::echo_request,
                      0x77, 3, {9, 9});
  auto p = parse_frame(frame);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p->icmp.has_value());
  EXPECT_EQ(p->icmp->type, icmp_type::echo_request);
  EXPECT_EQ(p->icmp->id, 0x77);
  EXPECT_EQ(p->icmp->seq, 3);
}

TEST(Packet, LldpRoundTrip) {
  auto frame = build_lldp("0000000000000042", "3", 120);
  auto info = parse_lldp(frame);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->chassis_id, "0000000000000042");
  EXPECT_EQ(info->port_id, "3");
  EXPECT_EQ(info->ttl, 120);
  // Non-LLDP frames are rejected.
  auto other = build_ethernet(MacAddress{}, MacAddress{}, 0x0800, {});
  EXPECT_FALSE(parse_lldp(other).ok());
}

TEST(Packet, VlanTagInsertAndStrip) {
  auto frame = build_udp(mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"),
                         ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, {});
  auto tagged = with_vlan_tag(frame, 100, 5);
  auto p = parse_frame(tagged);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->vlan_id, 100);
  EXPECT_EQ(p->vlan_pcp, 5);
  EXPECT_EQ(p->dl_type, ethertype::ipv4);  // inner type preserved
  EXPECT_TRUE(p->ipv4.has_value());        // l3 parse crosses the tag
  // Retagging replaces rather than stacks.
  auto retagged = with_vlan_tag(tagged, 200, 0);
  EXPECT_EQ(parse_frame(retagged)->vlan_id, 200);
  EXPECT_EQ(retagged.size(), tagged.size());
  // Strip restores the original bytes.
  EXPECT_EQ(without_vlan_tag(tagged), frame);
  EXPECT_EQ(without_vlan_tag(frame), frame);  // no-op when untagged
}

TEST(Packet, RewritesApplyAndFixChecksum) {
  auto frame = build_udp(mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"),
                         ip("10.0.0.1"), ip("10.0.0.2"), 1000, 2000, {1});
  ASSERT_FALSE(apply_rewrite(
      frame, flow::Action{flow::ActionKind::set_nw_dst, ip("10.9.9.9")}));
  ASSERT_FALSE(apply_rewrite(
      frame, flow::Action{flow::ActionKind::set_tp_dst, std::uint16_t{53}}));
  ASSERT_FALSE(apply_rewrite(
      frame,
      flow::Action{flow::ActionKind::set_dl_src, mac("02:aa:aa:aa:aa:aa")}));
  auto p = parse_frame(frame);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ipv4->dst.to_string(), "10.9.9.9");
  EXPECT_EQ(p->l4->dst_port, 53);
  EXPECT_EQ(p->dl_src.to_string(), "02:aa:aa:aa:aa:aa");
  // Output is not a rewrite.
  EXPECT_TRUE(apply_rewrite(frame, flow::Action::output(1)));
  // L4 rewrite on an ARP frame fails cleanly.
  auto arp = build_arp(arp_op::request, MacAddress{}, ip("1.1.1.1"),
                       MacAddress{}, ip("2.2.2.2"));
  EXPECT_TRUE(apply_rewrite(
      arp, flow::Action{flow::ActionKind::set_tp_dst, std::uint16_t{1}}));
}

// --- channels -----------------------------------------------------------------

TEST(ChannelTest, PairDelivery) {
  auto [a, b] = Channel::make_pair();
  EXPECT_TRUE(a.send({1, 2}));
  EXPECT_TRUE(b.send({3}));
  EXPECT_EQ(*b.try_recv(), (Message{1, 2}));
  EXPECT_EQ(*a.try_recv(), (Message{3}));
  EXPECT_FALSE(a.try_recv().has_value());
}

TEST(ChannelTest, CloseStopsTraffic) {
  auto [a, b] = Channel::make_pair();
  EXPECT_TRUE(a.send({1}));
  a.close();
  EXPECT_FALSE(a.connected());
  EXPECT_FALSE(b.connected());
  EXPECT_FALSE(b.send({2}));            // dropped, and send says so
  EXPECT_TRUE(b.try_recv().has_value());  // already-queued drains
}

TEST(ChannelTest, SendReportsDeliveryFate) {
  auto [a, b] = Channel::make_pair();
  EXPECT_TRUE(a.send({1}));  // live pair: delivered
  b.close();
  EXPECT_FALSE(a.send({2}));  // send-after-close: caller must notice
  EXPECT_FALSE(b.send({3}));
  // The pre-close message still drains; nothing sent after it does.
  EXPECT_EQ(*b.try_recv(), (Message{1}));
  EXPECT_FALSE(b.try_recv().has_value());
  // A default-constructed (never connected) endpoint also refuses.
  Channel empty;
  EXPECT_FALSE(empty.send({4}));
}

TEST(ChannelTest, SendBatchDeliversInOrder) {
  auto [a, b] = Channel::make_pair();
  EXPECT_TRUE(a.send_batch({{1}, {2, 3}, {4}}));
  EXPECT_EQ(b.pending(), 3u);
  EXPECT_EQ(*b.try_recv(), (Message{1}));
  EXPECT_EQ(*b.try_recv(), (Message{2, 3}));
  EXPECT_EQ(*b.try_recv(), (Message{4}));
  EXPECT_FALSE(b.try_recv().has_value());
  EXPECT_TRUE(a.send_batch({}));  // empty burst: no-op, still "delivered"
}

TEST(ChannelTest, SendBatchRefusedAfterClose) {
  auto [a, b] = Channel::make_pair();
  b.close();
  EXPECT_FALSE(a.send_batch({{1}, {2}}));
  EXPECT_FALSE(b.try_recv().has_value());
  Channel empty;
  EXPECT_FALSE(empty.send_batch({{3}}));
}

namespace {

/// Sees every message individually; severs on a chosen one.
class CountingHook : public FaultHook {
 public:
  explicit CountingHook(int sever_at = -1) : sever_at_(sever_at) {}
  bool on_send(std::deque<Message>& queue, Message message) override {
    if (seen_++ == sever_at_) return false;
    queue.push_back(std::move(message));
    return true;
  }
  int seen() const { return seen_; }

 private:
  int seen_ = 0;
  int sever_at_;
};

}  // namespace

TEST(ChannelTest, SendBatchRunsHookPerMessage) {
  auto [a, b] = Channel::make_pair();
  auto hook = std::make_shared<CountingHook>();
  a.set_fault_hook(hook);
  EXPECT_TRUE(a.send_batch({{1}, {2}, {3}}));
  EXPECT_EQ(hook->seen(), 3);  // identical schedule to three send() calls
  EXPECT_EQ(b.pending(), 3u);
}

TEST(ChannelTest, SendBatchSeveredMidBurstKeepsPrefix) {
  auto [a, b] = Channel::make_pair();
  a.set_fault_hook(std::make_shared<CountingHook>(/*sever_at=*/1));
  EXPECT_FALSE(a.send_batch({{1}, {2}, {3}}));  // hook kills message #2
  EXPECT_FALSE(a.connected());
  // The burst raced a RST: what got in before the severance still drains.
  EXPECT_EQ(*b.try_recv(), (Message{1}));
  EXPECT_FALSE(b.try_recv().has_value());
}

TEST(ChannelTest, ListenerInstallsFreshHookPerConnection) {
  // Each accepted connection gets its own hook instance, so per-channel
  // state (delay stashes) is never shared between switches.
  Listener listener;
  int built = 0;
  listener.set_fault_hook_factory([&]() -> std::shared_ptr<FaultHook> {
    ++built;
    return nullptr;
  });
  (void)listener.connect();
  (void)listener.connect();
  EXPECT_EQ(built, 2);
}

TEST(ChannelTest, ListenerAcceptQueue) {
  Listener listener;
  EXPECT_FALSE(listener.accept().has_value());
  Channel sw_end = listener.connect();
  EXPECT_EQ(listener.backlog(), 1u);
  auto ctrl_end = listener.accept();
  ASSERT_TRUE(ctrl_end.has_value());
  EXPECT_TRUE(sw_end.send({42}));
  EXPECT_EQ(*ctrl_end->try_recv(), Message{42});
}

// --- scheduler ------------------------------------------------------------------

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_after(std::chrono::microseconds(10), [&] { order.push_back(2); });
  s.schedule_after(std::chrono::microseconds(5), [&] { order.push_back(1); });
  s.schedule_after(std::chrono::microseconds(10), [&] { order.push_back(3); });
  EXPECT_EQ(s.run_until_idle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));  // FIFO among equal times
  EXPECT_EQ(s.now(), std::chrono::microseconds(10));
}

TEST(SchedulerTest, NestedScheduling) {
  Scheduler s;
  int fired = 0;
  s.schedule_now([&] {
    s.schedule_after(std::chrono::nanoseconds(1), [&] { ++fired; });
  });
  s.run_until_idle();
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, RunForStopsAtWindow) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(std::chrono::seconds(1), [&] { ++fired; });
  s.schedule_after(std::chrono::seconds(10), [&] { ++fired; });
  EXPECT_EQ(s.run_for(std::chrono::seconds(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), std::chrono::seconds(5));
  EXPECT_EQ(s.pending(), 1u);
}

// --- network + hosts ------------------------------------------------------------

class SimNetTest : public ::testing::Test {
 protected:
  SimNetTest() : network(scheduler) {}
  Scheduler scheduler;
  Network network;
};

TEST_F(SimNetTest, LinkDeliversBothWays) {
  Host a("a", mac("0a:00:00:00:00:01"), ip("10.0.0.1"), network);
  Host b("b", mac("0a:00:00:00:00:02"), ip("10.0.0.2"), network);
  ASSERT_TRUE(network.add_link(a, 0, b, 0).ok());
  a.send_frame(build_ethernet(b.mac(), a.mac(), 0x1234, {}));
  b.send_frame(build_ethernet(a.mac(), b.mac(), 0x1234, {}));
  scheduler.run_until_idle();
  EXPECT_EQ(a.frames_received(), 1u);
  EXPECT_EQ(b.frames_received(), 1u);
}

TEST_F(SimNetTest, DoubleLinkRefused) {
  Host a("a", MacAddress{}, Ipv4Address{}, network);
  Host b("b", MacAddress{}, Ipv4Address{}, network);
  Host c("c", MacAddress{}, Ipv4Address{}, network);
  ASSERT_TRUE(network.add_link(a, 0, b, 0).ok());
  EXPECT_FALSE(network.add_link(a, 0, c, 0).ok());
}

TEST_F(SimNetTest, DownLinkDropsFrames) {
  Host a("a", MacAddress{}, Ipv4Address{}, network);
  Host b("b", MacAddress{}, Ipv4Address{}, network);
  auto link = network.add_link(a, 0, b, 0);
  ASSERT_TRUE(link.ok());
  ASSERT_FALSE(network.set_link_up(*link, false));
  scheduler.run_until_idle();
  a.send_frame(build_ethernet(MacAddress{}, MacAddress{}, 0x1234, {}));
  scheduler.run_until_idle();
  EXPECT_EQ(b.frames_received(), 0u);
  EXPECT_EQ(network.frames_dropped(), 1u);
  EXPECT_FALSE(network.peer_of(a, 0).has_value());  // down link hides peer
}

TEST_F(SimNetTest, LatencyOrdersDelivery) {
  Host a("a", MacAddress{}, Ipv4Address{}, network);
  Host b("b", MacAddress{}, Ipv4Address{}, network);
  ASSERT_TRUE(
      network.add_link(a, 0, b, 0, std::chrono::microseconds(100)).ok());
  a.send_frame(build_ethernet(MacAddress{}, MacAddress{}, 0x1234, {}));
  EXPECT_EQ(scheduler.run_for(std::chrono::microseconds(99)), 0u);
  EXPECT_EQ(b.frames_received(), 0u);
  scheduler.run_for(std::chrono::microseconds(1));
  EXPECT_EQ(b.frames_received(), 1u);
}

TEST_F(SimNetTest, ArpResolutionAndPing) {
  Host a("a", mac("0a:00:00:00:00:01"), ip("10.0.0.1"), network);
  Host b("b", mac("0a:00:00:00:00:02"), ip("10.0.0.2"), network);
  ASSERT_TRUE(network.add_link(a, 0, b, 0).ok());
  // Ping with a cold ARP cache: a ARPs, b replies, the queued echo goes
  // out, b answers it.
  a.ping(b.ip());
  scheduler.run_until_idle();
  EXPECT_EQ(a.arp_lookup(b.ip())->to_string(), "0a:00:00:00:00:02");
  EXPECT_EQ(b.echo_requests_received(), 1u);
  EXPECT_EQ(a.echo_replies_received(), 1u);
}

TEST_F(SimNetTest, UdpBetweenHosts) {
  Host a("a", mac("0a:00:00:00:00:01"), ip("10.0.0.1"), network);
  Host b("b", mac("0a:00:00:00:00:02"), ip("10.0.0.2"), network);
  ASSERT_TRUE(network.add_link(a, 0, b, 0).ok());
  a.send_udp(b.ip(), 1111, 2222, {'h', 'i'});
  scheduler.run_until_idle();
  ASSERT_EQ(b.udp_received().size(), 1u);
  EXPECT_EQ(b.udp_received()[0], (std::vector<std::uint8_t>{'h', 'i'}));
}

}  // namespace
}  // namespace yanc::net
