// OpenFlow codec tests: encode/decode round trips for every message type
// under both protocol versions, plus wire-level invariants (header length,
// padding, wildcard bits, OXM TLVs) and malformed-input rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "yanc/ofp/codec.hpp"
#include "yanc/ofp/oxm.hpp"
#include "yanc/ofp/wire10.hpp"
#include "yanc/util/rng.hpp"

namespace yanc::ofp {
namespace {

using flow::Action;
using flow::ActionKind;
using flow::Match;

class CodecBothVersions : public ::testing::TestWithParam<Version> {
 protected:
  Version v = GetParam();

  /// Encodes, checks header invariants, decodes, returns the message.
  Message round_trip(const Message& m, std::uint32_t xid = 42) {
    auto bytes = encode(v, xid, m);
    EXPECT_TRUE(bytes.ok()) << message_name(m) << ": " << bytes.error().message();
    if (!bytes.ok()) return Hello{};
    auto header = peek_header(*bytes);
    EXPECT_TRUE(header.ok());
    EXPECT_EQ(header->version, v);
    EXPECT_EQ(header->length, bytes->size());
    EXPECT_EQ(header->xid, xid);
    auto decoded = decode(*bytes);
    EXPECT_TRUE(decoded.ok())
        << message_name(m) << ": " << decoded.error().message();
    if (!decoded.ok()) return Hello{};
    return decoded->message;
  }

  Match rich_match() {
    Match m;
    m.in_port = 3;
    m.dl_src = *MacAddress::parse("02:00:00:00:00:01");
    m.dl_dst = *MacAddress::parse("02:00:00:00:00:02");
    m.dl_type = 0x0800;
    m.nw_src = *Cidr::parse("10.0.0.0/8");
    m.nw_dst = *Cidr::parse("192.168.1.5");
    m.nw_proto = 6;
    m.tp_dst = 22;
    return m;
  }
};

INSTANTIATE_TEST_SUITE_P(Versions, CodecBothVersions,
                         ::testing::Values(Version::of10, Version::of13),
                         [](const auto& info) {
                           return info.param == Version::of10 ? "of10"
                                                              : "of13";
                         });

TEST_P(CodecBothVersions, Hello) {
  auto m = round_trip(Hello{});
  EXPECT_TRUE(std::holds_alternative<Hello>(m));
}

TEST_P(CodecBothVersions, Error) {
  auto m = round_trip(Error{3, 7, {0xde, 0xad}});
  auto& e = std::get<Error>(m);
  EXPECT_EQ(e.type, 3);
  EXPECT_EQ(e.code, 7);
  EXPECT_EQ(e.data, (std::vector<std::uint8_t>{0xde, 0xad}));
}

TEST_P(CodecBothVersions, Echo) {
  auto m = round_trip(EchoRequest{{1, 2, 3}});
  EXPECT_EQ(std::get<EchoRequest>(m).data, (std::vector<std::uint8_t>{1, 2, 3}));
  auto r = round_trip(EchoReply{{9}});
  EXPECT_EQ(std::get<EchoReply>(r).data, std::vector<std::uint8_t>{9});
}

TEST_P(CodecBothVersions, FeaturesReply) {
  FeaturesReply f;
  f.datapath_id = 0x00000000cafef00dull;
  f.n_buffers = 256;
  f.n_tables = 4;
  f.capabilities = 0x5;
  PortDesc p;
  p.port_no = 1;
  p.hw_addr = *MacAddress::parse("02:00:00:00:01:01");
  p.name = "eth1";
  p.link_down = true;
  f.ports = {p};
  auto m = round_trip(f);
  auto& got = std::get<FeaturesReply>(m);
  EXPECT_EQ(got.datapath_id, f.datapath_id);
  EXPECT_EQ(got.n_buffers, 256u);
  EXPECT_EQ(got.n_tables, 4);
  if (v == Version::of10) {
    // 1.0 carries ports inline.
    ASSERT_EQ(got.ports.size(), 1u);
    EXPECT_EQ(got.ports[0].port_no, 1);
    EXPECT_EQ(got.ports[0].name, "eth1");
    EXPECT_TRUE(got.ports[0].link_down);
  } else {
    EXPECT_TRUE(got.ports.empty());  // 1.3: via port_desc multipart
  }
}

TEST_P(CodecBothVersions, FlowModRoundTrip) {
  FlowMod fm;
  fm.command = FlowMod::Command::add;
  fm.spec.match = rich_match();
  fm.spec.actions = {Action{ActionKind::set_dl_dst,
                            *MacAddress::parse("02:00:00:00:00:09")},
                     Action::output(7)};
  fm.spec.priority = 100;
  fm.spec.idle_timeout = 30;
  fm.spec.hard_timeout = 300;
  fm.spec.cookie = 0xabcdef;
  fm.flags = kFlagSendFlowRemoved;
  auto m = round_trip(fm);
  auto& got = std::get<FlowMod>(m);
  EXPECT_EQ(got.command, FlowMod::Command::add);
  EXPECT_EQ(got.spec.match, fm.spec.match);
  EXPECT_EQ(got.spec.actions, fm.spec.actions);
  EXPECT_EQ(got.spec.priority, 100);
  EXPECT_EQ(got.spec.idle_timeout, 30);
  EXPECT_EQ(got.spec.hard_timeout, 300);
  EXPECT_EQ(got.spec.cookie, 0xabcdefu);
  EXPECT_EQ(got.flags, kFlagSendFlowRemoved);
}

TEST_P(CodecBothVersions, FlowModAllActionKinds) {
  FlowMod fm;
  fm.spec.actions = {
      Action{ActionKind::set_vlan, std::uint16_t{100}},
      Action{ActionKind::strip_vlan, std::monostate{}},
      Action{ActionKind::set_dl_src, *MacAddress::parse("02:aa:00:00:00:01")},
      Action{ActionKind::set_nw_src, *Ipv4Address::parse("10.0.0.9")},
      Action{ActionKind::set_nw_tos, std::uint8_t{0x20}},
      Action{ActionKind::set_tp_dst, std::uint16_t{8080}},
      Action{ActionKind::enqueue, std::uint32_t{(5u << 16) | 2u}},
      Action::flood(),
  };
  auto m = round_trip(fm);
  auto& got = std::get<FlowMod>(m);
  // strip_vlan order: 1.3 re-orders nothing; compare as sets of kinds.
  ASSERT_EQ(got.spec.actions.size(), fm.spec.actions.size());
  EXPECT_EQ(got.spec.actions, fm.spec.actions);
}

TEST_P(CodecBothVersions, FlowModMatchAll) {
  FlowMod fm;  // match-all, drop
  auto m = round_trip(fm);
  auto& got = std::get<FlowMod>(m);
  EXPECT_TRUE(got.spec.match.is_match_all());
  EXPECT_TRUE(got.spec.actions.empty());
}

TEST_P(CodecBothVersions, PacketInRoundTrip) {
  PacketIn pi;
  pi.buffer_id = 77;
  pi.total_len = 64;
  pi.in_port = 5;
  pi.reason = PacketIn::Reason::action;
  pi.data = {0xca, 0xfe, 0xba, 0xbe};
  auto m = round_trip(pi);
  auto& got = std::get<PacketIn>(m);
  EXPECT_EQ(got.buffer_id, 77u);
  EXPECT_EQ(got.total_len, 64);
  EXPECT_EQ(got.in_port, 5);
  EXPECT_EQ(got.reason, PacketIn::Reason::action);
  EXPECT_EQ(got.data, pi.data);
}

TEST_P(CodecBothVersions, PacketOutRoundTrip) {
  PacketOut po;
  po.buffer_id = kNoBuffer;
  po.in_port = 2;
  po.actions = {Action::output(3), Action::output(flow::port_no::flood)};
  po.data = {1, 2, 3, 4, 5};
  auto m = round_trip(po);
  auto& got = std::get<PacketOut>(m);
  EXPECT_EQ(got.in_port, 2);
  EXPECT_EQ(got.actions, po.actions);
  EXPECT_EQ(got.data, po.data);
}

TEST_P(CodecBothVersions, PortStatusRoundTrip) {
  PortStatus ps;
  ps.reason = PortStatus::Reason::modify;
  ps.desc.port_no = 9;
  ps.desc.hw_addr = *MacAddress::parse("02:00:00:00:00:09");
  ps.desc.name = "sw1-eth9";
  ps.desc.port_down = true;
  auto m = round_trip(ps);
  auto& got = std::get<PortStatus>(m);
  EXPECT_EQ(got.reason, PortStatus::Reason::modify);
  EXPECT_EQ(got.desc.port_no, 9);
  EXPECT_EQ(got.desc.name, "sw1-eth9");
  EXPECT_TRUE(got.desc.port_down);
}

TEST_P(CodecBothVersions, FlowRemovedRoundTrip) {
  FlowRemoved fr;
  fr.match = rich_match();
  fr.cookie = 0x1234;
  fr.priority = 7;
  fr.reason = FlowRemoved::Reason::hard_timeout;
  fr.duration_sec = 17;
  fr.packet_count = 1000;
  fr.byte_count = 64000;
  auto m = round_trip(fr);
  auto& got = std::get<FlowRemoved>(m);
  EXPECT_EQ(got.match, fr.match);
  EXPECT_EQ(got.cookie, 0x1234u);
  EXPECT_EQ(got.priority, 7);
  EXPECT_EQ(got.reason, FlowRemoved::Reason::hard_timeout);
  EXPECT_EQ(got.duration_sec, 17u);
  EXPECT_EQ(got.packet_count, 1000u);
  EXPECT_EQ(got.byte_count, 64000u);
}

TEST_P(CodecBothVersions, StatsDescRoundTrip) {
  StatsRequest req;
  req.kind = StatsKind::desc;
  auto m = round_trip(req);
  EXPECT_EQ(std::get<StatsRequest>(m).kind, StatsKind::desc);

  StatsReply rep;
  rep.kind = StatsKind::desc;
  rep.manufacturer = "yanc project";
  rep.sw_desc = "yanc-sw 1.0";
  auto r = round_trip(rep);
  auto& got = std::get<StatsReply>(r);
  EXPECT_EQ(got.manufacturer, "yanc project");
  EXPECT_EQ(got.sw_desc, "yanc-sw 1.0");
}

TEST_P(CodecBothVersions, StatsFlowRoundTrip) {
  StatsRequest req;
  req.kind = StatsKind::flow;
  req.match.dl_type = 0x0800;
  req.table_id = 0xff;
  auto m = round_trip(req);
  auto& got_req = std::get<StatsRequest>(m);
  EXPECT_EQ(got_req.match.dl_type, 0x0800);

  StatsReply rep;
  rep.kind = StatsKind::flow;
  FlowStatsEntry e;
  e.spec.match = rich_match();
  e.spec.actions = {Action::output(1)};
  e.spec.priority = 5;
  e.packet_count = 42;
  e.byte_count = 4200;
  e.duration_sec = 9;
  rep.flows = {e, e};
  auto r = round_trip(rep);
  auto& got = std::get<StatsReply>(r);
  ASSERT_EQ(got.flows.size(), 2u);
  EXPECT_EQ(got.flows[0].spec.match, e.spec.match);
  EXPECT_EQ(got.flows[0].spec.actions, e.spec.actions);
  EXPECT_EQ(got.flows[0].packet_count, 42u);
  EXPECT_EQ(got.flows[1].byte_count, 4200u);
}

TEST_P(CodecBothVersions, StatsPortRoundTrip) {
  StatsReply rep;
  rep.kind = StatsKind::port;
  PortStatsEntry p;
  p.port_no = 4;
  p.rx_packets = 11;
  p.tx_bytes = 2222;
  rep.ports = {p};
  auto r = round_trip(rep);
  auto& got = std::get<StatsReply>(r);
  ASSERT_EQ(got.ports.size(), 1u);
  EXPECT_EQ(got.ports[0].port_no, 4);
  EXPECT_EQ(got.ports[0].rx_packets, 11u);
  EXPECT_EQ(got.ports[0].tx_bytes, 2222u);
}

TEST_P(CodecBothVersions, StatsQueueRoundTrip) {
  StatsRequest req;
  req.kind = StatsKind::queue;
  req.port_no = 3;
  req.queue_id = 1;
  auto m = round_trip(req);
  auto& got_req = std::get<StatsRequest>(m);
  EXPECT_EQ(got_req.kind, StatsKind::queue);
  EXPECT_EQ(got_req.port_no, 3);
  EXPECT_EQ(got_req.queue_id, 1u);

  StatsReply rep;
  rep.kind = StatsKind::queue;
  QueueStatsEntry q;
  q.port_no = 3;
  q.queue_id = 1;
  q.tx_packets = 42;
  q.tx_bytes = 4200;
  rep.queues = {q};
  auto r = round_trip(rep);
  auto& got = std::get<StatsReply>(r);
  ASSERT_EQ(got.queues.size(), 1u);
  EXPECT_EQ(got.queues[0].port_no, 3);
  EXPECT_EQ(got.queues[0].queue_id, 1u);
  EXPECT_EQ(got.queues[0].tx_packets, 42u);
  EXPECT_EQ(got.queues[0].tx_bytes, 4200u);
}

TEST(Codec, QueueStatsWireIdDiffersAcrossVersions) {
  // OFPST_QUEUE is 5 in 1.0 but OFPMP_QUEUE is 9 in 1.3.
  StatsRequest req;
  req.kind = StatsKind::queue;
  auto b10 = encode(Version::of10, 1, req);
  auto b13 = encode(Version::of13, 1, req);
  ASSERT_TRUE(b10.ok() && b13.ok());
  EXPECT_EQ((*b10)[kHeaderSize + 1], 5);  // stats body kind (u16 low byte)
  EXPECT_EQ((*b13)[kHeaderSize + 1], 9);
}

TEST_P(CodecBothVersions, Barrier) {
  EXPECT_TRUE(std::holds_alternative<BarrierRequest>(
      round_trip(BarrierRequest{})));
  EXPECT_TRUE(std::holds_alternative<BarrierReply>(
      round_trip(BarrierReply{})));
}

TEST_P(CodecBothVersions, PortModRoundTrip) {
  PortMod pm;
  pm.port_no = 2;
  pm.hw_addr = *MacAddress::parse("02:00:00:00:00:02");
  pm.port_down = true;
  auto m = round_trip(pm);
  auto& got = std::get<PortMod>(m);
  EXPECT_EQ(got.port_no, 2);
  EXPECT_TRUE(got.port_down);
  EXPECT_FALSE(got.no_flood);
}

// --- version-specific behaviours ---------------------------------------------

TEST(Codec10, MultiTableFlowModRejected) {
  FlowMod fm;
  fm.spec.table_id = 3;
  auto bytes = encode(Version::of10, 1, fm);
  EXPECT_EQ(bytes.error(), make_error_code(Errc::not_supported));
}

TEST(Codec13, MultiTableAndGotoSurvive) {
  FlowMod fm;
  fm.spec.table_id = 2;
  fm.spec.goto_table = 3;
  fm.spec.actions = {Action::output(1)};
  auto bytes = encode(Version::of13, 1, fm);
  ASSERT_TRUE(bytes.ok());
  auto decoded = decode(*bytes);
  ASSERT_TRUE(decoded.ok());
  auto& got = std::get<FlowMod>(decoded->message);
  EXPECT_EQ(got.spec.table_id, 2);
  EXPECT_EQ(got.spec.goto_table, 3);
}

TEST(Codec13, PortDescMultipart) {
  StatsReply rep;
  rep.kind = StatsKind::port_desc;
  PortDesc p;
  p.port_no = 1;
  p.name = "eth1";
  p.curr_speed_kbps = 1'000'000;
  rep.port_descs = {p};
  auto bytes = encode(Version::of13, 5, rep);
  ASSERT_TRUE(bytes.ok());
  auto decoded = decode(*bytes);
  ASSERT_TRUE(decoded.ok());
  auto& got = std::get<StatsReply>(decoded->message);
  ASSERT_EQ(got.port_descs.size(), 1u);
  EXPECT_EQ(got.port_descs[0].name, "eth1");
  EXPECT_EQ(got.port_descs[0].curr_speed_kbps, 1'000'000u);
  // 1.0 cannot express it.
  EXPECT_FALSE(encode(Version::of10, 5, rep).ok());
}

TEST(Codec, WireTypeNumbersDifferAcrossVersions) {
  // Barrier is type 18 in 1.0 and 20 in 1.3 — a classic driver bug source.
  auto b10 = encode(Version::of10, 1, BarrierRequest{});
  auto b13 = encode(Version::of13, 1, BarrierRequest{});
  ASSERT_TRUE(b10.ok() && b13.ok());
  EXPECT_EQ((*b10)[1], 18);
  EXPECT_EQ((*b13)[1], 20);
}

TEST(Codec, RejectsMalformedInput) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{}).ok());
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{1, 2, 3}).ok());
  // Bad version byte.
  std::vector<std::uint8_t> bad_version{0x09, 0, 0, 8, 0, 0, 0, 1};
  EXPECT_EQ(decode(bad_version).error(),
            make_error_code(Errc::not_supported));
  // Header length disagrees with buffer size.
  auto hello = encode(Version::of10, 1, Hello{});
  ASSERT_TRUE(hello.ok());
  hello->push_back(0);
  EXPECT_EQ(decode(*hello).error(), make_error_code(Errc::protocol_error));
  // Truncated flow_mod body.
  auto fm = encode(Version::of10, 1, FlowMod{});
  ASSERT_TRUE(fm.ok());
  std::vector<std::uint8_t> truncated(fm->begin(), fm->begin() + 20);
  truncated[2] = 0;
  truncated[3] = 20;
  EXPECT_FALSE(decode(truncated).ok());
}

// --- wire-level details --------------------------------------------------------

TEST(Wire10, MatchWildcardBits) {
  BufWriter w;
  wire10::encode_match(w, Match{});  // match-all
  ASSERT_EQ(w.size(), wire10::kMatchSize);
  BufReader r(w.data());
  std::uint32_t wildcards = r.u32();
  // All flag bits set, 32-bit wildcard counts in both prefix fields.
  EXPECT_EQ(wildcards & 0xff, 0xffu);
  EXPECT_EQ((wildcards >> wire10::wildcard::nw_src_shift) & 0x3f, 32u);
  EXPECT_EQ((wildcards >> wire10::wildcard::nw_dst_shift) & 0x3f, 32u);
}

TEST(Wire10, CidrPrefixEncodesAsWildcardBits) {
  Match m;
  m.nw_src = *Cidr::parse("10.0.0.0/8");
  BufWriter w;
  wire10::encode_match(w, m);
  BufReader r(w.data());
  std::uint32_t wildcards = r.u32();
  EXPECT_EQ((wildcards >> wire10::wildcard::nw_src_shift) & 0x3f, 24u);
  BufReader rt(w.data());
  auto decoded = wire10::decode_match(rt);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->nw_src->to_string(), "10.0.0.0/8");
}

TEST(Oxm, MatchPaddedToEight) {
  BufWriter w;
  Match m;
  m.in_port = 1;
  oxm::encode_match(w, m);
  EXPECT_EQ(w.size() % 8, 0u);
}

TEST(Oxm, VlanNoneEncoding) {
  Match m;
  m.dl_vlan = 0xffff;  // untagged
  BufWriter w;
  oxm::encode_match(w, m);
  BufReader r(w.data());
  auto decoded = oxm::decode_match(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->dl_vlan, 0xffff);
}

TEST(Oxm, UdpPortsUseUdpFields) {
  Match m;
  m.nw_proto = 17;
  m.tp_dst = 53;
  BufWriter w;
  oxm::encode_match(w, m);
  BufReader r(w.data());
  auto decoded = oxm::decode_match(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tp_dst, 53);
  EXPECT_EQ(decoded->nw_proto, 17);
}

TEST(Oxm, ReservedPortMapping) {
  EXPECT_EQ(oxm::port_to_of13(flow::port_no::controller), 0xfffffffdu);
  EXPECT_EQ(oxm::port_from_of13(0xfffffffbu), flow::port_no::flood);
  EXPECT_EQ(oxm::port_to_of13(5), 5u);
  EXPECT_EQ(oxm::port_from_of13(5), 5);
}

TEST(Oxm, NonContiguousMaskRejected) {
  BufWriter w;
  std::size_t start = w.size();
  w.u16(1);  // OXM match type
  w.u16(4 + 4 + 8);
  w.u16(oxm::kOpenFlowBasic);
  w.u8((oxm::ipv4_src << 1) | 1);  // has_mask
  w.u8(8);
  w.u32(0x0a000000);
  w.u32(0xff00ff00);  // non-contiguous
  (void)start;
  w.zeros((8 - w.size() % 8) % 8);
  BufReader r(w.data());
  EXPECT_FALSE(oxm::decode_match(r).ok());
}

// --- batch encoder ------------------------------------------------------------

TEST_P(CodecBothVersions, BatchEncoderMatchesSingleEncodeByteForByte) {
  FlowMod fm;
  fm.spec = [&] {
    flow::FlowSpec s;
    s.match = rich_match();
    s.priority = 7;
    s.actions = {Action::output(2)};
    return s;
  }();
  EchoRequest echo;
  echo.data = {0xde, 0xad};
  const std::vector<std::pair<std::uint32_t, Message>> train = {
      {10, fm}, {11, BarrierRequest{}}, {12, echo}};

  BatchEncoder enc(v);
  std::vector<std::uint8_t> expected;
  for (const auto& [xid, m] : train) {
    ASSERT_FALSE(enc.append(xid, m));
    auto single = encode(v, xid, m);
    ASSERT_TRUE(single.ok());
    expected.insert(expected.end(), single->begin(), single->end());
  }
  EXPECT_EQ(enc.count(), 3u);
  auto packed = enc.take();
  EXPECT_EQ(packed, expected);  // framing shared with encode(): identical
  EXPECT_TRUE(enc.empty());     // reusable after take()

  auto frames = split_frames(packed);
  ASSERT_TRUE(frames.ok());
  ASSERT_EQ(frames->size(), 3u);
  for (std::size_t i = 0; i < frames->size(); ++i) {
    auto decoded = decode((*frames)[i]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->header.xid, train[i].first);
  }
}

TEST(Codec10, BatchAppendFailureRollsBackBuffer) {
  BatchEncoder enc(Version::of10);
  ASSERT_FALSE(enc.append(1, BarrierRequest{}));
  const std::size_t size_before = enc.size_bytes();

  FlowMod multi_table;
  multi_table.spec.table_id = 3;  // 1.0 cannot express non-zero tables
  EXPECT_TRUE(enc.append(2, multi_table));
  EXPECT_EQ(enc.count(), 1u);  // failed append left no partial bytes
  EXPECT_EQ(enc.size_bytes(), size_before);

  auto frames = split_frames(enc.take());
  ASSERT_TRUE(frames.ok());
  EXPECT_EQ(frames->size(), 1u);
}

TEST(Codec, SplitFramesRejectsMalformedTrains) {
  auto good = encode(Version::of10, 1, Hello{});
  ASSERT_TRUE(good.ok());

  // Truncated tail: second frame's header promises more than the buffer.
  auto train = *good;
  train.insert(train.end(), good->begin(), good->end());
  train.pop_back();
  EXPECT_FALSE(split_frames(train).ok());

  // Header length below the header size itself.
  auto liar = *good;
  liar[2] = 0;
  liar[3] = kHeaderSize - 1;
  EXPECT_FALSE(split_frames(liar).ok());

  // Empty buffer is a valid (empty) train.
  auto none = split_frames({});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// Differential fuzz (ISSUE 5): random message trains through the batch
// encoder must be byte-identical to per-message encode() output and
// survive split_frames()+decode()+re-encode unchanged, across 10k seeded
// iterations.  Override the base seed with YANC_FUZZ_SEED to explore.
TEST(BatchCodecFuzz, DifferentialRoundTripTenThousandIterations) {
  const char* env = std::getenv("YANC_FUZZ_SEED");
  const std::uint64_t base = env ? std::strtoull(env, nullptr, 10) : 1;

  auto random_message = [](util::Rng& rng, Version v) -> Message {
    switch (rng.below(5)) {
      case 0: {
        FlowMod fm;
        fm.command = static_cast<FlowMod::Command>(rng.below(5));
        flow::Match& m = fm.spec.match;
        if (rng.chance(0.5))
          m.in_port = static_cast<std::uint16_t>(rng.below(48) + 1);
        if (rng.chance(0.5))
          m.dl_src = MacAddress::from_u64(0x020000000000ull +
                                          rng.below(1 << 20));
        if (rng.chance(0.5))
          m.dl_dst = MacAddress::from_u64(0x020000000000ull +
                                          rng.below(1 << 20));
        // Respect OXM prerequisites: L3 needs dl_type, L4 needs nw_proto.
        if (rng.chance(0.6)) {
          m.dl_type = 0x0800;
          if (rng.chance(0.5)) {
            const int prefix = static_cast<int>(rng.below(25)) + 8;
            // Zero the host bits so the wire form is canonical and the
            // decode→re-encode comparison stays byte-exact.
            const std::uint32_t mask =
                prefix == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix);
            m.nw_src = Cidr(
                Ipv4Address{static_cast<std::uint32_t>(rng.next_u64()) & mask},
                prefix);
          }
          if (rng.chance(0.5)) {
            m.nw_proto = rng.chance(0.5) ? 6 : 17;
            if (rng.chance(0.5))
              m.tp_dst = static_cast<std::uint16_t>(rng.below(0xffff));
          }
        }
        fm.spec.priority = static_cast<std::uint16_t>(rng.below(0x8000));
        fm.spec.idle_timeout = static_cast<std::uint16_t>(rng.below(600));
        fm.spec.cookie = rng.next_u64();
        if (v == Version::of13)
          fm.spec.table_id = static_cast<std::uint8_t>(rng.below(4));
        std::uint64_t n_actions = rng.below(3);
        for (std::uint64_t a = 0; a < n_actions; ++a)
          fm.spec.actions.push_back(
              Action::output(static_cast<std::uint16_t>(rng.below(48) + 1)));
        fm.flags = rng.chance(0.5) ? kFlagSendFlowRemoved : 0;
        return fm;
      }
      case 1:
        return BarrierRequest{};
      case 2: {
        EchoRequest echo;
        echo.data.resize(rng.below(16));
        for (auto& b : echo.data) b = static_cast<std::uint8_t>(rng.below(256));
        return echo;
      }
      case 3: {
        PacketOut po;
        po.in_port = static_cast<std::uint16_t>(rng.below(48) + 1);
        if (rng.chance(0.8)) po.actions.push_back(Action::output(static_cast<std::uint16_t>(rng.below(48) + 1)));
        po.data.resize(rng.below(64));
        for (auto& b : po.data) b = static_cast<std::uint8_t>(rng.below(256));
        return po;
      }
      default:
        return Hello{};
    }
  };

  for (std::uint64_t iter = 0; iter < 10000; ++iter) {
    util::Rng rng(base + iter);
    const Version v = rng.chance(0.5) ? Version::of10 : Version::of13;
    const std::size_t train_len = rng.below(8) + 1;

    BatchEncoder enc(v);
    std::vector<std::uint8_t> expected;
    std::vector<std::uint32_t> xids;
    for (std::size_t i = 0; i < train_len; ++i) {
      const auto xid = static_cast<std::uint32_t>(rng.next_u64());
      Message m = random_message(rng, v);
      auto single = encode(v, xid, m);
      ASSERT_TRUE(single.ok()) << "seed " << base + iter;
      ASSERT_FALSE(enc.append(xid, m)) << "seed " << base + iter;
      expected.insert(expected.end(), single->begin(), single->end());
      xids.push_back(xid);
    }
    auto packed = enc.take();
    ASSERT_EQ(packed, expected) << "seed " << base + iter;  // byte level

    auto frames = split_frames(packed);
    ASSERT_TRUE(frames.ok()) << "seed " << base + iter;
    ASSERT_EQ(frames->size(), train_len) << "seed " << base + iter;
    for (std::size_t i = 0; i < train_len; ++i) {
      auto decoded = decode((*frames)[i]);
      ASSERT_TRUE(decoded.ok()) << "seed " << base + iter;
      ASSERT_EQ(decoded->header.xid, xids[i]) << "seed " << base + iter;
      // Field level: re-encoding the decoded message reproduces the
      // frame exactly, so every field survived the trip.
      auto again = encode(v, xids[i], decoded->message);
      ASSERT_TRUE(again.ok()) << "seed " << base + iter;
      ASSERT_EQ(std::span<const std::uint8_t>((*frames)[i]).size(),
                again->size())
          << "seed " << base + iter;
      ASSERT_TRUE(std::equal(again->begin(), again->end(),
                             (*frames)[i].begin()))
          << "seed " << base + iter;
    }
  }
}

}  // namespace
}  // namespace yanc::ofp
