// End-to-end causal-tracing smoke test (ctest -L smoke): one traced
// packet-in must yield a complete parent-linked span chain —
// sw/packet_in -> driver/packet_in -> app/packet_in -> driver/commit ->
// sw/flow_mod — reconstructible from /yanc/.trace/by-id/<id>, plus a
// well-formed Chrome trace_event export.  Capture is driven the yanc
// way, through writes to /yanc/.trace/ctl, not by poking the Tracer API.
#include <gtest/gtest.h>

#include "yanc/apps/learning_switch.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/obs/trace_fs.hpp"
#include "yanc/obs/tracer.hpp"
#include "yanc/sw/switch.hpp"

namespace yanc::apps {
namespace {

/// Minimal controller harness: one switch, two hosts, a learning switch
/// application — the smallest topology where a packet-in causes a flow
/// install (the echo reply's packet-in hits a learned destination).
class TraceSmoke : public ::testing::Test {
 protected:
  TraceSmoke() : network(scheduler) {}

  void SetUp() override {
    ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
    auto trace_fs = obs::mount_trace_fs(*vfs);
    ASSERT_TRUE(trace_fs.ok());
    driver = std::make_unique<driver::OfDriver>(vfs);
    obs::tracer().stop();
    obs::tracer().clear();
  }

  void TearDown() override {
    obs::tracer().stop();
    obs::tracer().clear();
  }

  sw::Switch* add_switch(std::uint64_t dpid, int ports = 3) {
    sw::SwitchOptions opts;
    opts.datapath_id = dpid;
    auto s = std::make_unique<sw::Switch>("dp" + std::to_string(dpid), opts,
                                          network);
    for (int p = 1; p <= ports; ++p)
      s->add_port(static_cast<std::uint16_t>(p),
                  MacAddress::from_u64((dpid << 8) | p), "eth");
    s->connect(driver->listener().connect());
    switches.push_back(std::move(s));
    return switches.back().get();
  }

  net::Host* add_host(const char* name, const char* mac, const char* ip,
                      sw::Switch* sw, std::uint16_t port) {
    hosts.push_back(std::make_unique<net::Host>(
        name, *MacAddress::parse(mac), *Ipv4Address::parse(ip), network));
    EXPECT_TRUE(network.add_link(*sw, port, *hosts.back(), 0).ok());
    return hosts.back().get();
  }

  void settle(const std::function<std::size_t()>& apps_poll = {}) {
    for (int round = 0; round < 60; ++round) {
      std::size_t work = driver->poll();
      for (auto& s : switches) work += s->pump();
      work += scheduler.run_until_idle();
      if (apps_poll) work += apps_poll();
      if (work == 0) break;
    }
  }

  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
  net::Scheduler scheduler;
  net::Network network;
  std::unique_ptr<driver::OfDriver> driver;
  std::vector<std::unique_ptr<sw::Switch>> switches;
  std::vector<std::unique_ptr<net::Host>> hosts;
};

TEST_F(TraceSmoke, OneTracedPacketInYieldsParentLinkedChain) {
  auto* s1 = add_switch(1);
  auto* h1 = add_host("h1", "0a:00:00:00:00:01", "10.0.0.1", s1, 1);
  auto* h2 = add_host("h2", "0a:00:00:00:00:02", "10.0.0.2", s1, 2);
  settle();

  LearningSwitch l2(vfs);
  ASSERT_TRUE(l2.poll().ok());
  auto apps_poll = [&]() -> std::size_t {
    auto n = l2.poll();
    return n ? *n : 0;
  };

  // Arm capture through the control file, as an operator would.
  ASSERT_FALSE(vfs->write_file("/yanc/.trace/ctl", "start"));

  h1->ping(h2->ip());
  settle(apps_poll);
  ASSERT_EQ(h1->echo_replies_received(), 1u);
  ASSERT_GE(l2.flows_installed(), 1u);

  ASSERT_FALSE(vfs->write_file("/yanc/.trace/ctl", "stop"));

  // Every side-band handoff must have been claimed: nothing leaked on
  // the wire or path correlation maps once the pipeline drained.
  EXPECT_EQ(obs::tracer().inflight(), 0u);

  // Reconstruct: scan the captured ids for the packet-in whose handling
  // installed a flow, and assert the full chain with parent-linked
  // indentation (two spaces per tree depth in the by-id rendering).
  auto ids = vfs->readdir("/yanc/.trace/by-id");
  ASSERT_TRUE(ids.ok());
  ASSERT_FALSE(ids->empty());
  std::string chain;
  for (const auto& e : *ids) {
    auto rendered = vfs->read_file("/yanc/.trace/by-id/" + e.name);
    ASSERT_TRUE(rendered.ok()) << e.name;
    if (rendered->find("sw/packet_in") != std::string::npos &&
        rendered->find("driver/commit span=") != std::string::npos) {
      chain = *rendered;
      break;
    }
  }
  ASSERT_FALSE(chain.empty())
      << "no captured trace links a packet-in to a flow commit";
  // Root anchor, then one child per pipeline stage, each one level deeper.
  EXPECT_NE(chain.find("sw/packet_in span="), std::string::npos) << chain;
  EXPECT_NE(chain.find("\n  driver/packet_in span="), std::string::npos)
      << chain;
  EXPECT_NE(chain.find("\n    app/packet_in span="), std::string::npos)
      << chain;
  EXPECT_NE(chain.find("\n      driver/commit span="), std::string::npos)
      << chain;
  EXPECT_NE(chain.find("\n        sw/flow_mod span="), std::string::npos)
      << chain;
  EXPECT_NE(chain.find("driver/commit_ack"), std::string::npos) << chain;
  // Stage spans carry the queue/service split the attribution needs.
  EXPECT_NE(chain.find("queue="), std::string::npos) << chain;
  EXPECT_NE(chain.find("dur="), std::string::npos) << chain;

  // The export is valid Chrome trace_event JSON covering the same spans.
  auto json = vfs->read_file("/yanc/.trace/export.json");
  ASSERT_TRUE(json.ok());
  ASSERT_GE(json->size(), 3u);
  EXPECT_EQ(json->front(), '{');
  EXPECT_EQ(json->substr(json->size() - 3), "]}\n");
  EXPECT_NE(json->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json->find("packet_in"), std::string::npos);
  EXPECT_NE(json->find("flow_mod"), std::string::npos);
}

}  // namespace
}  // namespace yanc::apps
