// Tests for network views (§4.2): the slicer's header-space confinement
// and the big-switch virtualizer's path compilation — including stacking.
#include <gtest/gtest.h>

#include "yanc/net/packet.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/view/bigswitch.hpp"
#include "yanc/view/slicer.hpp"

namespace yanc::view {
namespace {

using flow::Action;
using flow::FlowSpec;

class SlicerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
    // Two physical switches with a few ports each.
    netfs::NetDir net(vfs);
    for (const char* sw : {"sw1", "sw2"}) {
      ASSERT_FALSE(net.add_switch(sw));
      for (std::uint16_t p = 1; p <= 4; ++p)
        ASSERT_FALSE(net.switch_at(sw).add_port(
            p, MacAddress::from_u64(p), "eth"));
    }
  }

  SliceConfig ssh_slice() {
    SliceConfig cfg;
    cfg.name = "ssh";
    cfg.predicate.dl_type = 0x0800;
    cfg.predicate.nw_proto = 6;
    cfg.predicate.tp_dst = 22;
    cfg.switches = {"sw1"};
    cfg.ports = {{"sw1", {1, 2}}};
    return cfg;
  }

  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
};

TEST_F(SlicerTest, InitMirrorsSlicedTopology) {
  Slicer slicer(vfs, "/net", ssh_slice());
  ASSERT_FALSE(slicer.init());
  netfs::NetDir view(vfs, "/net/views/ssh");
  auto switches = view.switch_names();
  ASSERT_TRUE(switches.ok());
  EXPECT_EQ(*switches, std::vector<std::string>{"sw1"});  // sw2 excluded
  auto ports = view.switch_at("sw1").port_names();
  ASSERT_TRUE(ports.ok());
  EXPECT_EQ(*ports, (std::vector<std::string>{"1", "2"}));  // 3,4 excluded
}

TEST_F(SlicerTest, FlowConfinedToPredicate) {
  Slicer slicer(vfs, "/net", ssh_slice());
  ASSERT_FALSE(slicer.init());
  // Tenant writes a broad flow in its view.
  FlowSpec broad;
  broad.match.nw_src = *Cidr::parse("10.0.0.0/8");
  broad.actions = {Action::output(2)};
  netfs::NetDir view(vfs, "/net/views/ssh");
  ASSERT_FALSE(view.switch_at("sw1").add_flow("f", broad));
  ASSERT_TRUE(slicer.poll().ok());

  // The parent flow exists and carries the intersected match.
  auto parent = netfs::read_flow(*vfs, "/net/switches/sw1/flows/view_ssh__f");
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->match.tp_dst, 22);           // predicate applied
  EXPECT_EQ(parent->match.nw_src->to_string(), "10.0.0.0/8");
  EXPECT_EQ(parent->match.dl_type, 0x0800);
  EXPECT_GE(parent->version, 1u);                // committed for the driver
}

TEST_F(SlicerTest, DisjointFlowRejected) {
  Slicer slicer(vfs, "/net", ssh_slice());
  ASSERT_FALSE(slicer.init());
  FlowSpec http;  // tp_dst=80 cannot intersect tp_dst=22
  http.match.tp_dst = 80;
  http.actions = {Action::output(1)};
  netfs::NetDir view(vfs, "/net/views/ssh");
  ASSERT_FALSE(view.switch_at("sw1").add_flow("http", http));
  ASSERT_TRUE(slicer.poll().ok());
  EXPECT_EQ(slicer.rejected_flows(), 1u);
  EXPECT_FALSE(
      vfs->stat("/net/switches/sw1/flows/view_ssh__http").ok());
}

TEST_F(SlicerTest, OutputsConfinedToSlicePorts) {
  Slicer slicer(vfs, "/net", ssh_slice());
  ASSERT_FALSE(slicer.init());
  FlowSpec f;
  f.actions = {Action::output(2), Action::output(4)};  // 4 not in slice
  netfs::NetDir view(vfs, "/net/views/ssh");
  ASSERT_FALSE(view.switch_at("sw1").add_flow("f", f));
  ASSERT_TRUE(slicer.poll().ok());
  auto parent = netfs::read_flow(*vfs, "/net/switches/sw1/flows/view_ssh__f");
  ASSERT_TRUE(parent.ok());
  ASSERT_EQ(parent->actions.size(), 1u);
  EXPECT_EQ(parent->actions[0].port(), 2);
}

TEST_F(SlicerTest, FloodBecomesSlicePortList) {
  Slicer slicer(vfs, "/net", ssh_slice());
  ASSERT_FALSE(slicer.init());
  FlowSpec f;
  f.actions = {Action::flood()};
  netfs::NetDir view(vfs, "/net/views/ssh");
  ASSERT_FALSE(view.switch_at("sw1").add_flow("f", f));
  ASSERT_TRUE(slicer.poll().ok());
  auto parent = netfs::read_flow(*vfs, "/net/switches/sw1/flows/view_ssh__f");
  ASSERT_TRUE(parent.ok());
  ASSERT_EQ(parent->actions.size(), 2u);  // explicit ports 1 and 2
  EXPECT_EQ(parent->actions[0].port(), 1);
  EXPECT_EQ(parent->actions[1].port(), 2);
}

TEST_F(SlicerTest, ViewFlowDeletionRetractsParent) {
  Slicer slicer(vfs, "/net", ssh_slice());
  ASSERT_FALSE(slicer.init());
  FlowSpec f;
  f.actions = {Action::output(1)};
  netfs::NetDir view(vfs, "/net/views/ssh");
  ASSERT_FALSE(view.switch_at("sw1").add_flow("f", f));
  ASSERT_TRUE(slicer.poll().ok());
  ASSERT_TRUE(vfs->stat("/net/switches/sw1/flows/view_ssh__f").ok());
  ASSERT_FALSE(view.switch_at("sw1").remove_flow("f"));
  ASSERT_TRUE(slicer.poll().ok());
  EXPECT_FALSE(vfs->stat("/net/switches/sw1/flows/view_ssh__f").ok());
}

TEST_F(SlicerTest, EventsFilteredIntoView) {
  Slicer slicer(vfs, "/net", ssh_slice());
  ASSERT_FALSE(slicer.init());
  netfs::NetDir view(vfs, "/net/views/ssh");
  auto app_buf = view.open_events("tenant-app");
  ASSERT_TRUE(app_buf.ok());

  // Simulate driver delivery of two packet-ins into the slicer's parent
  // buffer: one ssh (matches the slice), one http (does not).
  auto deliver = [&](const char* name, std::uint16_t tp_dst) {
    auto frame = net::build_tcp(MacAddress::from_u64(2),
                                MacAddress::from_u64(1),
                                *Ipv4Address::parse("10.0.0.1"),
                                *Ipv4Address::parse("10.0.0.2"), 1234,
                                tp_dst, {});
    std::string dir =
        std::string("/net/events/slicer-ssh/") + name;
    ASSERT_FALSE(vfs->mkdir(dir));
    ASSERT_FALSE(vfs->write_file(dir + "/datapath", "sw1"));
    ASSERT_FALSE(vfs->write_file(dir + "/in_port", "1"));
    ASSERT_FALSE(vfs->write_file(
        dir + "/data",
        std::string_view(reinterpret_cast<const char*>(frame.data()),
                         frame.size())));
  };
  deliver("pkt_1", 22);
  deliver("pkt_2", 80);
  ASSERT_TRUE(slicer.poll().ok());

  auto events = app_buf->drain();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);  // only the ssh packet crossed
  EXPECT_EQ((*events)[0].datapath, "sw1");
}

TEST_F(SlicerTest, SlicesStack) {
  // Slice A: sw1 only.  Slice B (inside A): ssh only.
  SliceConfig outer;
  outer.name = "tenant";
  outer.switches = {"sw1"};
  Slicer outer_slicer(vfs, "/net", outer);
  ASSERT_FALSE(outer_slicer.init());

  SliceConfig inner;
  inner.name = "ssh";
  inner.predicate.tp_dst = 22;
  Slicer inner_slicer(vfs, "/net/views/tenant", inner);
  ASSERT_FALSE(inner_slicer.init());

  FlowSpec f;
  f.match.nw_proto = 6;
  f.actions = {Action::output(1)};
  netfs::NetDir innermost(vfs, "/net/views/tenant/views/ssh");
  ASSERT_FALSE(innermost.switch_at("sw1").add_flow("f", f));
  ASSERT_TRUE(inner_slicer.poll().ok());   // ssh -> tenant
  ASSERT_TRUE(outer_slicer.poll().ok());   // tenant -> master

  auto parent = netfs::read_flow(
      *vfs, "/net/switches/sw1/flows/view_tenant__view_ssh__f");
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->match.tp_dst, 22);
  EXPECT_EQ(parent->match.nw_proto, 6);
}

// --- big switch ------------------------------------------------------------------

class BigSwitchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
    netfs::NetDir net(vfs);
    // Linear fabric: sw1:2 -- 1:sw2:2 -- 1:sw3; hosts on sw1:1 and sw3:2.
    for (const char* sw : {"sw1", "sw2", "sw3"}) {
      ASSERT_FALSE(net.add_switch(sw));
      for (std::uint16_t p = 1; p <= 2; ++p)
        ASSERT_FALSE(net.switch_at(sw).add_port(
            p, MacAddress::from_u64(p), "eth"));
    }
    link({"sw1", 2}, {"sw2", 1});
    link({"sw2", 2}, {"sw3", 1});
  }

  void link(topo::PortRef a, topo::PortRef b) {
    ASSERT_FALSE(vfs->symlink(b.path("/net"), a.path("/net") + "/peer"));
    ASSERT_FALSE(vfs->symlink(a.path("/net"), b.path("/net") + "/peer"));
  }

  BigSwitchConfig config() {
    BigSwitchConfig cfg;
    cfg.view_name = "fabric";
    cfg.edge_ports = {{"sw1", 1}, {"sw3", 2}};  // vports 1 and 2
    return cfg;
  }

  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
};

TEST_F(BigSwitchTest, InitCreatesVirtualSwitch) {
  BigSwitch big(vfs, "/net", config());
  ASSERT_FALSE(big.init());
  netfs::NetDir view(vfs, "/net/views/fabric");
  EXPECT_TRUE(view.switch_at("big0").exists());
  auto ports = view.switch_at("big0").port_names();
  ASSERT_TRUE(ports.ok());
  EXPECT_EQ(*ports, (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(big.virtual_port({"sw1", 1}), 1);
  EXPECT_EQ(big.virtual_port({"sw3", 2}), 2);
  EXPECT_EQ(big.virtual_port({"sw2", 1}), 0);  // fabric-internal
}

TEST_F(BigSwitchTest, VirtualFlowCompilesToPath) {
  BigSwitch big(vfs, "/net", config());
  ASSERT_FALSE(big.init());
  // vport1 -> vport2 for ssh traffic.
  FlowSpec f;
  f.match.in_port = 1;
  f.match.tp_dst = 22;
  f.actions = {Action::output(2)};
  ASSERT_FALSE(netfs::write_flow(*vfs, big.virtual_switch_path() +
                                           "/flows/ssh", f));
  ASSERT_TRUE(big.poll().ok());
  EXPECT_EQ(big.compiled_flows(), 1u);

  // One hop flow per switch along sw1 -> sw2 -> sw3.
  for (const char* sw : {"sw1", "sw2", "sw3"}) {
    auto flows = vfs->readdir(std::string("/net/switches/") + sw + "/flows");
    ASSERT_TRUE(flows.ok());
    ASSERT_EQ(flows->size(), 1u) << sw;
    auto spec = netfs::read_flow(
        *vfs,
        std::string("/net/switches/") + sw + "/flows/" + (*flows)[0].name);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec->match.tp_dst, 22);
    ASSERT_TRUE(spec->match.in_port.has_value());
  }
  // sw1 hop enters on the edge port and leaves toward sw2.
  auto sw1_flows = vfs->readdir("/net/switches/sw1/flows");
  auto sw1_spec = netfs::read_flow(
      *vfs, "/net/switches/sw1/flows/" + (*sw1_flows)[0].name);
  EXPECT_EQ(*sw1_spec->match.in_port, 1);
  EXPECT_EQ(sw1_spec->actions[0].port(), 2);
  // sw3 (egress) outputs to the edge port 2.
  auto sw3_flows = vfs->readdir("/net/switches/sw3/flows");
  auto sw3_spec = netfs::read_flow(
      *vfs, "/net/switches/sw3/flows/" + (*sw3_flows)[0].name);
  EXPECT_EQ(sw3_spec->actions[0].port(), 2);
}

TEST_F(BigSwitchTest, RewritesApplyAtEgressOnly) {
  BigSwitch big(vfs, "/net", config());
  ASSERT_FALSE(big.init());
  FlowSpec f;
  f.match.in_port = 1;
  f.actions = {Action{flow::ActionKind::set_nw_dst,
                      *Ipv4Address::parse("10.9.9.9")},
               Action::output(2)};
  ASSERT_FALSE(
      netfs::write_flow(*vfs, big.virtual_switch_path() + "/flows/nat", f));
  ASSERT_TRUE(big.poll().ok());
  auto sw1_flows = vfs->readdir("/net/switches/sw1/flows");
  auto sw1_spec = netfs::read_flow(
      *vfs, "/net/switches/sw1/flows/" + (*sw1_flows)[0].name);
  EXPECT_EQ(sw1_spec->actions.size(), 1u);  // pure forward
  auto sw3_flows = vfs->readdir("/net/switches/sw3/flows");
  auto sw3_spec = netfs::read_flow(
      *vfs, "/net/switches/sw3/flows/" + (*sw3_flows)[0].name);
  ASSERT_EQ(sw3_spec->actions.size(), 2u);  // rewrite + output
  EXPECT_EQ(sw3_spec->actions[0].kind, flow::ActionKind::set_nw_dst);
}

TEST_F(BigSwitchTest, RemovalRetractsCompiledFlows) {
  BigSwitch big(vfs, "/net", config());
  ASSERT_FALSE(big.init());
  FlowSpec f;
  f.match.in_port = 1;
  f.actions = {Action::output(2)};
  ASSERT_FALSE(
      netfs::write_flow(*vfs, big.virtual_switch_path() + "/flows/f", f));
  ASSERT_TRUE(big.poll().ok());
  ASSERT_FALSE(vfs->rmdir(big.virtual_switch_path() + "/flows/f"));
  ASSERT_TRUE(big.poll().ok());
  for (const char* sw : {"sw1", "sw2", "sw3"}) {
    auto flows = vfs->readdir(std::string("/net/switches/") + sw + "/flows");
    ASSERT_TRUE(flows.ok());
    EXPECT_TRUE(flows->empty()) << sw;
  }
}

TEST_F(BigSwitchTest, EventsLiftWithVirtualPort) {
  BigSwitch big(vfs, "/net", config());
  ASSERT_FALSE(big.init());
  netfs::NetDir view(vfs, "/net/views/fabric");
  auto buf = view.open_events("app");
  ASSERT_TRUE(buf.ok());

  // Driver deposits a packet-in from the sw3 edge port into the
  // bigswitch's parent buffer.
  std::string dir = "/net/events/bigswitch-fabric/pkt_1";
  ASSERT_FALSE(vfs->mkdir(dir));
  ASSERT_FALSE(vfs->write_file(dir + "/datapath", "sw3"));
  ASSERT_FALSE(vfs->write_file(dir + "/in_port", "2"));
  ASSERT_FALSE(vfs->write_file(dir + "/data", "frame"));
  ASSERT_TRUE(big.poll().ok());

  auto events = buf->drain();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].datapath, "big0");  // virtual identity
  EXPECT_EQ((*events)[0].in_port, 2);        // virtual port number
}

TEST_F(BigSwitchTest, UnreachableEdgeRejected) {
  BigSwitchConfig cfg = config();
  cfg.edge_ports.push_back({"island", 1});  // not in the topology
  netfs::NetDir net(vfs);
  ASSERT_FALSE(net.add_switch("island"));
  ASSERT_FALSE(net.switch_at("island").add_port(1, MacAddress{}, "eth"));
  BigSwitch big(vfs, "/net", cfg);
  ASSERT_FALSE(big.init());
  FlowSpec f;  // match-all to vport3 (the island): no path exists
  f.match.in_port = 1;
  f.actions = {Action::output(3)};
  ASSERT_FALSE(
      netfs::write_flow(*vfs, big.virtual_switch_path() + "/flows/f", f));
  ASSERT_TRUE(big.poll().ok());
  EXPECT_EQ(big.rejected_flows(), 1u);
  // Rollback: nothing half-installed.
  auto flows = vfs->readdir("/net/switches/sw1/flows");
  EXPECT_TRUE(flows->empty());
}

}  // namespace
}  // namespace yanc::view
