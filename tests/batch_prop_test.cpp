// Property tests for the batched event pipeline's hot path (ISSUE 5):
// random interleaved creates/writes/removes against a watched directory,
// drained through the coalescing batch consumer, checked against a
// replayed model.
//
// Invariants per seed:
//   1. terminal events are never lost or merged: the delivered
//      created/deleted sequence per path equals the applied one exactly;
//   2. per-path order is preserved: replaying the event stream tracks the
//      real file system through every incarnation, and a path written
//      after its last create always delivers a modify for that (current)
//      incarnation — coalescing may drop duplicates, never the state
//      change itself, and never merges across a remove/create boundary;
//   3. conservation: delivered modifies + coalesced merges == applied
//      writes (a merge is accounted, not silently dropped).
//
// Tier-1 runs a handful of seeds; scripts/stress.sh sweeps 50 via
// YANC_PROP_SEED (each run covers [base, base+5)).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "yanc/obs/metrics.hpp"
#include "yanc/util/rng.hpp"
#include "yanc/vfs/memfs.hpp"

namespace yanc::vfs {
namespace {

constexpr std::size_t kNames = 8;
constexpr std::size_t kOps = 400;

std::string name_for(std::size_t i) { return "f" + std::to_string(i); }

struct AppliedOps {
  // Per name, the op sequence actually applied: 'C'reate, 'W'rite, 'D'elete.
  std::map<std::string, std::string> per_name;
  std::size_t writes = 0;
  std::size_t creates = 0;
  std::size_t deletes = 0;
};

struct Observed {
  std::map<std::string, std::string> per_name;  // 'c' / 'm' / 'd'
  std::size_t modifies = 0;
};

void run_case(std::uint64_t seed, bool coalesce) {
  SCOPED_TRACE("YANC_PROP_SEED=" + std::to_string(seed) +
               (coalesce ? " (coalescing)" : " (plain)"));
  util::Rng rng(seed);
  MemFs fs;
  Credentials root = Credentials::root();

  obs::Registry registry;
  auto* coalesced = registry.counter("coalesced");
  auto queue = std::make_shared<WatchQueue>(1 << 16);
  queue->set_coalescing(coalesce);
  queue->bind_metrics(registry.gauge("depth"), registry.counter("drops"),
                      coalesced);
  ASSERT_TRUE(fs.watch(fs.root(),
                       event::created | event::deleted | event::modified,
                       queue)
                  .ok());

  AppliedOps applied;
  Observed observed;
  std::map<std::string, bool> exists;        // the model's view
  std::map<std::string, bool> replay_exists;  // driven by events only
  std::vector<Event> batch;

  auto drain = [&] {
    while (queue->try_pop_batch(batch, rng.below(16) + 1) > 0) {
      for (const auto& e : batch) {
        ASSERT_FALSE(e.is(event::overflow)) << "queue sized to never drop";
        if (e.is(event::created)) {
          observed.per_name[e.name] += 'c';
          replay_exists[e.name] = true;
        } else if (e.is(event::deleted)) {
          observed.per_name[e.name] += 'd';
          replay_exists[e.name] = false;
        } else if (e.is(event::modified)) {
          observed.per_name[e.name] += 'm';
          ++observed.modifies;
        }
      }
      batch.clear();
    }
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    std::string name = name_for(rng.below(kNames));
    if (!exists[name]) {
      ASSERT_TRUE(fs.create(fs.root(), name, 0644, root).ok());
      exists[name] = true;
      applied.per_name[name] += 'C';
      ++applied.creates;
    } else if (rng.chance(0.25)) {
      ASSERT_FALSE(fs.unlink(fs.root(), name, root));
      exists[name] = false;
      applied.per_name[name] += 'D';
      ++applied.deletes;
    } else {
      auto resolved = fs.lookup(fs.root(), name);
      ASSERT_TRUE(resolved.ok());
      ASSERT_TRUE(fs.write(*resolved, 0, std::to_string(op), root).ok());
      applied.per_name[name] += 'W';
      ++applied.writes;
    }
    // Interleave consumption so batches race ongoing mutation.
    if (rng.chance(0.2)) drain();
  }
  drain();

  // Invariant 1+2: replay each path's event stream against its applied
  // op stream.  Terminal events must match one-for-one and in order;
  // each modify must land inside an incarnation that was written; an
  // incarnation with at least one write must deliver at least one modify.
  for (const auto& [name, ops] : applied.per_name) {
    const std::string& events = observed.per_name[name];
    std::size_t ei = 0;
    bool open = false;         // inside an incarnation (after 'c')
    std::size_t pending_w = 0;  // writes applied to the open incarnation
    bool delivered_m = false;   // ≥1 modify seen for the open incarnation
    auto close_incarnation = [&](const char* boundary) {
      if (pending_w > 0)
        EXPECT_TRUE(delivered_m)
            << name << ": incarnation with " << pending_w
            << " writes delivered no modify before " << boundary;
      pending_w = 0;
      delivered_m = false;
    };
    for (char o : ops) {
      if (o == 'C') {
        ASSERT_LT(ei, events.size()) << name << ": lost created event";
        // Modifies from the previous incarnation may still be queued
        // ahead of this create; they count toward that incarnation.
        while (events[ei] == 'm') {
          delivered_m = true;
          ASSERT_LT(++ei, events.size()) << name << ": lost created event";
        }
        close_incarnation("create");
        ASSERT_EQ(events[ei], 'c')
            << name << ": terminal event out of order at " << ei;
        ++ei;
        open = true;
      } else if (o == 'D') {
        ASSERT_LT(ei, events.size()) << name << ": lost deleted event";
        while (events[ei] == 'm') {
          delivered_m = true;
          ASSERT_LT(++ei, events.size()) << name << ": lost deleted event";
        }
        close_incarnation("delete");
        ASSERT_EQ(events[ei], 'd')
            << name << ": terminal event out of order at " << ei;
        ++ei;
        open = false;
      } else {  // 'W'
        ASSERT_TRUE(open) << name << ": write outside an incarnation?";
        ++pending_w;
      }
    }
    // Trailing modifies belong to the final incarnation.
    for (; ei < events.size(); ++ei) {
      ASSERT_EQ(events[ei], 'm')
          << name << ": unexpected trailing terminal event";
      delivered_m = true;
    }
    close_incarnation("end of run");
  }

  // Replaying only the event stream reproduces the final directory.
  for (const auto& [name, present] : exists)
    EXPECT_EQ(replay_exists[name], present) << name;

  // Invariant 3: conservation of state changes.
  EXPECT_EQ(observed.modifies + coalesced->value(), applied.writes);
  if (!coalesce) EXPECT_EQ(coalesced->value(), 0u);
}

TEST(BatchPipelineProperty, RandomHistoriesCoalesced) {
  const char* env = std::getenv("YANC_PROP_SEED");
  const std::uint64_t base = env ? std::strtoull(env, nullptr, 10) : 1;
  for (std::uint64_t seed = base; seed < base + 5; ++seed)
    run_case(seed, /*coalesce=*/true);
}

TEST(BatchPipelineProperty, RandomHistoriesPlain) {
  const char* env = std::getenv("YANC_PROP_SEED");
  const std::uint64_t base = env ? std::strtoull(env, nullptr, 10) : 1;
  for (std::uint64_t seed = base; seed < base + 5; ++seed)
    run_case(seed, /*coalesce=*/false);
}

// The remove/create boundary, deterministically: a modify queued for an
// old incarnation must never absorb (or be absorbed by) one from the new
// incarnation, even though both carry the same path.
TEST(BatchPipelineProperty, RecreateBoundaryNeverMerges) {
  MemFs fs;
  Credentials root = Credentials::root();
  auto queue = std::make_shared<WatchQueue>();
  queue->set_coalescing(true);
  ASSERT_TRUE(fs.watch(fs.root(),
                       event::created | event::deleted | event::modified,
                       queue)
                  .ok());
  auto f1 = fs.create(fs.root(), "f", 0644, root);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(fs.write(*f1, 0, "a", root).ok());
  ASSERT_FALSE(fs.unlink(fs.root(), "f", root));
  auto f2 = fs.create(fs.root(), "f", 0644, root);
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(fs.write(*f2, 0, "b", root).ok());

  std::string seq;
  std::vector<Event> batch;
  while (queue->try_pop_batch(batch, 64) > 0) {
    for (const auto& e : batch) {
      if (e.is(event::created)) seq += 'c';
      if (e.is(event::modified)) seq += 'm';
      if (e.is(event::deleted)) seq += 'd';
    }
    batch.clear();
  }
  EXPECT_EQ(seq, "cmdcm");  // both incarnations' modifies survive
}

}  // namespace
}  // namespace yanc::vfs
