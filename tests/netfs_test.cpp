// Tests for the yanc file system: schema semantics (§3), the Figure 2/3
// directory layouts, typed-file validation, the version commit protocol,
// and the typed handles API.
#include <gtest/gtest.h>

#include "yanc/netfs/handles.hpp"
#include "yanc/netfs/yancfs.hpp"

namespace yanc::netfs {
namespace {

using vfs::Credentials;
using vfs::Vfs;

std::error_code err(Errc e) { return make_error_code(e); }

class YancFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fs = mount_yanc_fs(*vfs);
    ASSERT_TRUE(fs.ok());
    yfs = *fs;
  }
  std::shared_ptr<Vfs> vfs = std::make_shared<Vfs>();
  std::shared_ptr<YancFs> yfs;
};

// --- FIG-2: the /net hierarchy ---------------------------------------------

TEST_F(YancFsTest, Fig2Hierarchy_RootLayout) {
  auto entries = vfs->readdir("/net");
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> names;
  for (const auto& e : *entries) names.push_back(e.name);
  // Fig. 2 shows hosts/switches/views; events/ realizes §3.5 and
  // middleboxes/ realizes §7.2 — both additions the paper itself calls for.
  EXPECT_EQ(names, (std::vector<std::string>{"events", "hosts",
                                             "middleboxes", "switches",
                                             "views"}));
}

TEST_F(YancFsTest, Fig2Hierarchy_ViewsNestRecursively) {
  // "# mkdir views/new_view will create the directory new_view, but also
  // the hosts, switches, and views subdirectories." (§3.1)
  ASSERT_FALSE(vfs->mkdir("/net/views/management-net"));
  for (const char* sub : {"hosts", "switches", "views", "events"}) {
    auto st = vfs->stat(std::string("/net/views/management-net/") + sub);
    ASSERT_TRUE(st.ok()) << sub;
    EXPECT_TRUE(st->is_dir());
  }
  // And views nest again (Fig. 2 shows views inside views).
  ASSERT_FALSE(vfs->mkdir("/net/views/management-net/views/inner"));
  EXPECT_TRUE(
      vfs->stat("/net/views/management-net/views/inner/switches")->is_dir());
}

TEST_F(YancFsTest, Fig2Hierarchy_SwitchesAppearUnderSwitches) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw2"));
  auto entries = vfs->readdir("/net/switches");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

// --- FIG-3: switch and flow layouts -----------------------------------------

TEST_F(YancFsTest, Fig3Layout_Switch) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  // Directories from Fig. 3: counters/, flows/, ports/.
  for (const char* d : {"counters", "flows", "ports"})
    EXPECT_TRUE(vfs->stat(std::string("/net/switches/sw1/") + d)->is_dir())
        << d;
  // Files from Fig. 3: actions, capabilities, id, num_buffers.
  for (const char* f : {"actions", "capabilities", "id", "num_buffers"})
    EXPECT_TRUE(vfs->stat(std::string("/net/switches/sw1/") + f)->is_file())
        << f;
  EXPECT_EQ(*vfs->read_file("/net/switches/sw1/num_buffers"), "0");
}

TEST_F(YancFsTest, Fig3Layout_Flow) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/flows/arp_flow"));
  const std::string flow = "/net/switches/sw1/flows/arp_flow";
  // Fig. 3: counters/, priority, timeout, version auto-exist.
  EXPECT_TRUE(vfs->stat(flow + "/counters")->is_dir());
  EXPECT_TRUE(vfs->stat(flow + "/priority")->is_file());
  EXPECT_TRUE(vfs->stat(flow + "/idle_timeout")->is_file());
  EXPECT_TRUE(vfs->stat(flow + "/version")->is_file());
  EXPECT_EQ(*vfs->read_file(flow + "/version"), "0");
  EXPECT_EQ(*vfs->read_file(flow + "/priority"), "32768");
  // match.* / action.* are created on demand (absence = wildcard).
  EXPECT_EQ(vfs->stat(flow + "/match.dl_type").error(), err(Errc::not_found));
  ASSERT_FALSE(vfs->write_file(flow + "/match.dl_type", "0x0806"));
  ASSERT_FALSE(vfs->write_file(flow + "/match.dl_src", "aa:bb:cc:dd:ee:ff"));
  ASSERT_FALSE(vfs->write_file(flow + "/action.out", "2"));
  EXPECT_EQ(*vfs->read_file(flow + "/match.dl_type"), "0x0806");
}

TEST_F(YancFsTest, Fig3Layout_PortWithCounters) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/ports/1"));
  const std::string port = "/net/switches/sw1/ports/1";
  for (const char* f :
       {"port_no", "hw_addr", "config.port_down", "state.link_down"})
    EXPECT_TRUE(vfs->stat(port + "/" + f)->is_file()) << f;
  EXPECT_TRUE(vfs->stat(port + "/counters/rx_packets")->is_file());
  EXPECT_EQ(*vfs->read_file(port + "/counters/tx_bytes"), "0");
}

// --- schema enforcement ------------------------------------------------------

TEST_F(YancFsTest, MkdirOutsideCollectionsRejected) {
  // The root and object dirs are not collections.
  EXPECT_EQ(vfs->mkdir("/net/random"), err(Errc::not_permitted));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  EXPECT_EQ(vfs->mkdir("/net/switches/sw1/custom"), err(Errc::not_permitted));
  EXPECT_EQ(vfs->mkdir("/net/switches/sw1/counters/deep"),
            err(Errc::not_permitted));
}

TEST_F(YancFsTest, StrictFilesRejectUnknownNames) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  EXPECT_EQ(vfs->write_file("/net/switches/sw1/bogus", "x"),
            err(Errc::not_permitted));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/flows/f1"));
  EXPECT_EQ(vfs->write_file("/net/switches/sw1/flows/f1/match.bogus", "x"),
            err(Errc::not_permitted));
  // Collections hold only objects, not files.
  EXPECT_EQ(vfs->write_file("/net/switches/readme", "x"),
            err(Errc::not_permitted));
}

TEST_F(YancFsTest, TypedWritesValidated) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/flows/f"));
  const std::string f = "/net/switches/sw1/flows/f";
  // priority is u16.
  EXPECT_EQ(vfs->write_file(f + "/priority", "99999"),
            err(Errc::invalid_argument));
  EXPECT_EQ(vfs->write_file(f + "/priority", "abc"),
            err(Errc::invalid_argument));
  EXPECT_FALSE(vfs->write_file(f + "/priority", "100"));
  EXPECT_FALSE(vfs->write_file(f + "/priority", "100\n"));  // echo-style
  // match.nw_src takes CIDR notation (§3.4).
  EXPECT_FALSE(vfs->write_file(f + "/match.nw_src", "10.0.0.0/8"));
  EXPECT_EQ(vfs->write_file(f + "/match.nw_src", "10.0.0.0/40"),
            err(Errc::invalid_argument));
  EXPECT_EQ(vfs->write_file(f + "/match.nw_src", "not-an-ip"),
            err(Errc::invalid_argument));
  // match.dl_src is a MAC.
  EXPECT_EQ(vfs->write_file(f + "/match.dl_src", "10.0.0.1"),
            err(Errc::invalid_argument));
  // action.out accepts numbers and reserved names, multi-valued.
  EXPECT_FALSE(vfs->write_file(f + "/action.out", "1 2 controller"));
  EXPECT_EQ(vfs->write_file(f + "/action.out", "nowhere"),
            err(Errc::invalid_argument));
  // A rejected write can never leave a malformed value behind: write_file
  // replaces content atomically, so validation failure keeps the previous
  // valid value — no truncate-then-fail window wiping the config.
  ASSERT_FALSE(vfs->write_file(f + "/match.dl_type", "0x0800"));
  EXPECT_EQ(vfs->write_file(f + "/match.dl_type", "junk"),
            err(Errc::invalid_argument));
  EXPECT_EQ(*vfs->read_file(f + "/match.dl_type"), "0x0800");
  auto spec = read_flow(*vfs, f);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(spec->match.dl_type.has_value());
  EXPECT_EQ(*spec->match.dl_type, 0x0800);
}

TEST_F(YancFsTest, PortConfigFlagValidation) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/ports/2"));
  // "a port can be brought down by echo 1 > port_2/config.port_down" (§3.1)
  EXPECT_FALSE(
      vfs->write_file("/net/switches/sw1/ports/2/config.port_down", "1\n"));
  EXPECT_EQ(
      vfs->write_file("/net/switches/sw1/ports/2/config.port_down", "maybe"),
      err(Errc::invalid_argument));
}

TEST_F(YancFsTest, RecursiveRmdirOfObjects) {
  // "the rmdir() call for switches is automatically recursive" (§3.2)
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/flows/f1"));
  ASSERT_FALSE(vfs->write_file("/net/switches/sw1/flows/f1/action.out", "1"));
  EXPECT_FALSE(vfs->rmdir("/net/switches/sw1"));
  EXPECT_EQ(vfs->stat("/net/switches/sw1").error(), err(Errc::not_found));
}

TEST_F(YancFsTest, FixedDirsProtected) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  EXPECT_EQ(vfs->rmdir("/net/switches/sw1/flows"), err(Errc::not_permitted));
  EXPECT_EQ(vfs->rmdir("/net/switches"), err(Errc::not_permitted));
  EXPECT_EQ(vfs->rename("/net/switches/sw1/ports", "/net/switches/sw1/px"),
            err(Errc::not_permitted));
}

TEST_F(YancFsTest, SwitchRenameAllowedWithinCollection) {
  // "Switches can be created, deleted, and renamed with the standard file
  // system calls" (§3.2).
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->write_file("/net/switches/sw1/id", "0xab"));
  ASSERT_FALSE(vfs->rename("/net/switches/sw1", "/net/switches/edge-1"));
  EXPECT_EQ(*vfs->read_file("/net/switches/edge-1/id"), "0xab");
  // But a switch cannot move into views/ (type mismatch).
  EXPECT_EQ(vfs->rename("/net/switches/edge-1", "/net/views/edge-1"),
            err(Errc::not_permitted));
  // And typed files cannot be renamed (their name is their type).
  EXPECT_EQ(vfs->rename("/net/switches/edge-1/id",
                        "/net/switches/edge-1/capabilities"),
            err(Errc::not_permitted));
}

TEST_F(YancFsTest, FlowRenameAcrossSwitchesAllowed) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw2"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/flows/f"));
  EXPECT_FALSE(vfs->rename("/net/switches/sw1/flows/f",
                           "/net/switches/sw2/flows/f"));
  EXPECT_TRUE(vfs->stat("/net/switches/sw2/flows/f")->is_dir());
}

TEST_F(YancFsTest, DeletingMatchFileWidensToWildcard) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/flows/f"));
  const std::string f = "/net/switches/sw1/flows/f";
  ASSERT_FALSE(vfs->write_file(f + "/match.tp_dst", "22"));
  ASSERT_FALSE(vfs->unlink(f + "/match.tp_dst"));
  auto spec = read_flow(*vfs, f);
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->match.tp_dst.has_value());
}

// --- peer symlinks (§3.3) ---------------------------------------------------

TEST_F(YancFsTest, PeerSymlinkTopology) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw2"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/ports/1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw2/ports/7"));
  ASSERT_FALSE(vfs->symlink("/net/switches/sw2/ports/7",
                            "/net/switches/sw1/ports/1/peer"));
  EXPECT_EQ(*vfs->readlink("/net/switches/sw1/ports/1/peer"),
            "/net/switches/sw2/ports/7");
  // Following the link lands on the peer port's files.
  EXPECT_TRUE(vfs->stat("/net/switches/sw1/ports/1/peer/hw_addr")->is_file());
}

TEST_F(YancFsTest, PeerMustPointAtAPort) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/ports/1"));
  // "It is currently an error to point this symbolic link at anything
  // other than a port." (§3.3)
  EXPECT_EQ(vfs->symlink("/net/switches/sw2",
                         "/net/switches/sw1/ports/1/peer"),
            err(Errc::invalid_argument));
  // Other symlink names are not allowed in a port dir at all.
  EXPECT_EQ(vfs->symlink("/net/switches/sw2/ports/7",
                         "/net/switches/sw1/ports/1/buddy"),
            err(Errc::not_permitted));
}

// --- events (§3.5) -----------------------------------------------------------

TEST_F(YancFsTest, EventBufferLifecycle) {
  ASSERT_FALSE(vfs->mkdir("/net/events/router"));
  // The driver deposits a packet-in as a directory of files.
  ASSERT_FALSE(vfs->mkdir("/net/events/router/pkt_0000001"));
  const std::string pkt = "/net/events/router/pkt_0000001";
  EXPECT_TRUE(vfs->stat(pkt + "/data")->is_file());
  ASSERT_FALSE(vfs->write_file(pkt + "/datapath", "sw1"));
  ASSERT_FALSE(vfs->write_file(pkt + "/in_port", "3"));
  ASSERT_FALSE(vfs->write_file(pkt + "/data", std::string("\x01\x02", 2)));
  // The application consumes it with rmdir (recursive).
  EXPECT_FALSE(vfs->rmdir(pkt));
}

// --- middleboxes (§7.2) ------------------------------------------------------

TEST_F(YancFsTest, MiddleboxObjectLayout) {
  ASSERT_FALSE(vfs->mkdir("/net/middleboxes/fw1"));
  for (const char* f : {"kind", "vendor", "instances", "connected"})
    EXPECT_TRUE(vfs->stat(std::string("/net/middleboxes/fw1/") + f)
                    ->is_file())
        << f;
  EXPECT_TRUE(vfs->stat("/net/middleboxes/fw1/state")->is_dir());
  ASSERT_FALSE(vfs->write_file("/net/middleboxes/fw1/kind", "firewall"));
  // State is unstructured: the middlebox driver stores whatever records
  // the box exposes.
  ASSERT_FALSE(vfs->write_file("/net/middleboxes/fw1/state/conn-10.0.0.1",
                               "established tcp 10.0.0.1:4431"));
  // The attachment link must point at a port, like peer (§3.3).
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/ports/3"));
  EXPECT_FALSE(vfs->symlink("/net/switches/sw1/ports/3",
                            "/net/middleboxes/fw1/attachment"));
  EXPECT_EQ(vfs->symlink("/net/switches/sw1",
                         "/net/middleboxes/fw2x/attachment"),
            err(Errc::not_found));
}

TEST_F(YancFsTest, MiddleboxStateMigratesWithMv) {
  // §7.2: "we can use command line utilities such as cp or mv to move
  // state around rather than custom protocols" (Split/Merge-style elastic
  // scaling).
  ASSERT_FALSE(vfs->mkdir("/net/middleboxes/fw1"));
  ASSERT_FALSE(vfs->mkdir("/net/middleboxes/fw2"));
  for (int c = 0; c < 4; ++c)
    ASSERT_FALSE(vfs->write_file(
        "/net/middleboxes/fw1/state/conn" + std::to_string(c),
        "flow-record-" + std::to_string(c)));
  // Scale out: move half the connection state to the new instance.
  ASSERT_FALSE(vfs->rename("/net/middleboxes/fw1/state/conn2",
                           "/net/middleboxes/fw2/state/conn2"));
  ASSERT_FALSE(vfs->rename("/net/middleboxes/fw1/state/conn3",
                           "/net/middleboxes/fw2/state/conn3"));
  EXPECT_EQ(vfs->readdir("/net/middleboxes/fw1/state")->size(), 2u);
  EXPECT_EQ(vfs->readdir("/net/middleboxes/fw2/state")->size(), 2u);
  EXPECT_EQ(*vfs->read_file("/net/middleboxes/fw2/state/conn3"),
            "flow-record-3");
  // Scale in: removing an instance removes its subtree (recursive rmdir).
  EXPECT_FALSE(vfs->rmdir("/net/middleboxes/fw2"));
}

// --- version commit protocol (§3.4) ------------------------------------------

TEST_F(YancFsTest, VersionCommitSignalsWatchers) {
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/flows/f"));
  const std::string f = "/net/switches/sw1/flows/f";
  auto q = std::make_shared<vfs::WatchQueue>();
  auto watch = vfs->watch(f + "/version", vfs::event::modified, q);
  ASSERT_TRUE(watch.ok());
  // Field writes do not touch the version file.
  ASSERT_FALSE(vfs->write_file(f + "/action.out", "2"));
  EXPECT_FALSE(q->try_pop().has_value());
  // Commit bumps it and the watcher fires.
  auto v = commit_flow(*vfs, f);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1u);
  EXPECT_TRUE(q->try_pop().has_value());
}

// --- flowio round trip ---------------------------------------------------------

class FlowIoTest : public YancFsTest {
 protected:
  void SetUp() override {
    YancFsTest::SetUp();
    ASSERT_FALSE(vfs->mkdir("/net/switches/sw1"));
  }
  const std::string flow_dir = "/net/switches/sw1/flows/f";
};

TEST_F(FlowIoTest, WriteReadRoundTrip) {
  flow::FlowSpec spec;
  spec.match.in_port = 3;
  spec.match.dl_type = 0x0800;
  spec.match.nw_src = *Cidr::parse("10.1.0.0/16");
  spec.match.tp_dst = 22;
  spec.actions = {flow::Action{flow::ActionKind::set_dl_dst,
                               *MacAddress::parse("02:00:00:00:00:01")},
                  flow::Action::output(2), flow::Action::output(5)};
  spec.priority = 100;
  spec.idle_timeout = 30;
  spec.cookie = 0xdeadbeef;

  ASSERT_FALSE(write_flow(*vfs, flow_dir, spec));
  auto got = read_flow(*vfs, flow_dir);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->match, spec.match);
  EXPECT_EQ(got->actions, spec.actions);
  EXPECT_EQ(got->priority, 100);
  EXPECT_EQ(got->idle_timeout, 30);
  EXPECT_EQ(got->cookie, 0xdeadbeefu);
  EXPECT_EQ(got->version, 1u);  // committed once
}

TEST_F(FlowIoTest, RewriteRemovesStaleFields) {
  flow::FlowSpec spec;
  spec.match.tp_dst = 22;
  spec.actions = {flow::Action::output(1)};
  ASSERT_FALSE(write_flow(*vfs, flow_dir, spec));

  flow::FlowSpec wider;
  wider.actions = {flow::Action::flood()};
  ASSERT_FALSE(write_flow(*vfs, flow_dir, wider));
  auto got = read_flow(*vfs, flow_dir);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->match.tp_dst.has_value());  // stale match removed
  ASSERT_EQ(got->actions.size(), 1u);
  EXPECT_EQ(got->actions[0].port(), flow::port_no::flood);
  EXPECT_EQ(got->version, 2u);
}

TEST_F(FlowIoTest, EmptyActionsMeansDrop) {
  flow::FlowSpec spec;  // no actions
  ASSERT_FALSE(write_flow(*vfs, flow_dir, spec));
  EXPECT_EQ(*vfs->read_file(flow_dir + "/action.drop"), "1");
  auto got = read_flow(*vfs, flow_dir);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->actions.empty());
}

TEST_F(FlowIoTest, DefaultsWhenFilesAbsent) {
  ASSERT_FALSE(vfs->mkdir(flow_dir));
  // Remove the auto-created priority file: reader falls back to default.
  ASSERT_FALSE(vfs->unlink(flow_dir + "/priority"));
  auto got = read_flow(*vfs, flow_dir);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->priority, flow::kDefaultPriority);
  EXPECT_TRUE(got->match.is_match_all());
}

TEST_F(FlowIoTest, StatsRoundTrip) {
  ASSERT_FALSE(vfs->mkdir(flow_dir));
  ASSERT_FALSE(write_flow_stats(*vfs, flow_dir, {123, 45678}));
  auto stats = read_flow_stats(*vfs, flow_dir);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->packets, 123u);
  EXPECT_EQ(stats->bytes, 45678u);
}

// --- typed handles ---------------------------------------------------------------

class HandlesTest : public YancFsTest {
 protected:
  NetDir net() { return NetDir(vfs); }
};

TEST_F(HandlesTest, SwitchLifecycle) {
  NetDir n = net();
  ASSERT_FALSE(n.add_switch("sw1"));
  ASSERT_FALSE(n.add_switch("sw2"));
  auto names = n.switch_names();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"sw1", "sw2"}));

  auto sw = n.switch_at("sw1");
  EXPECT_TRUE(sw.exists());
  ASSERT_FALSE(sw.set_datapath_id(0x42));
  EXPECT_EQ(*sw.datapath_id(), 0x42u);
  ASSERT_FALSE(sw.set_connected(true));
  EXPECT_TRUE(*sw.connected());

  ASSERT_FALSE(n.remove_switch("sw2"));
  EXPECT_FALSE(n.switch_at("sw2").exists());
}

TEST_F(HandlesTest, PortsAndPeers) {
  NetDir n = net();
  ASSERT_FALSE(n.add_switch("sw1"));
  ASSERT_FALSE(n.add_switch("sw2"));
  auto sw1 = n.switch_at("sw1");
  auto sw2 = n.switch_at("sw2");
  ASSERT_FALSE(sw1.add_port(1, *MacAddress::parse("02:00:00:00:01:01"),
                            "sw1-eth1"));
  ASSERT_FALSE(sw2.add_port(2, *MacAddress::parse("02:00:00:00:02:02"),
                            "sw2-eth2"));
  auto p1 = sw1.port_at(1);
  EXPECT_EQ(*p1.port_no(), 1u);
  EXPECT_EQ(p1.hw_addr()->to_string(), "02:00:00:00:01:01");
  ASSERT_FALSE(p1.set_peer("/net/switches/sw2/ports/2"));
  EXPECT_EQ(*p1.peer(), "/net/switches/sw2/ports/2");
  ASSERT_FALSE(p1.clear_peer());
  EXPECT_EQ(p1.peer().error(), err(Errc::not_found));
}

TEST_F(HandlesTest, FlowsViaHandles) {
  NetDir n = net();
  ASSERT_FALSE(n.add_switch("sw1"));
  auto sw = n.switch_at("sw1");
  flow::FlowSpec spec;
  spec.match.dl_type = 0x0806;
  spec.actions = {flow::Action::flood()};
  ASSERT_FALSE(sw.add_flow("arp", spec));
  auto names = sw.flow_names();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"arp"});
  auto got = sw.flow_at("arp").read();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->match.dl_type, 0x0806);
  ASSERT_FALSE(sw.remove_flow("arp"));
  EXPECT_FALSE(sw.flow_at("arp").exists());
}

TEST_F(HandlesTest, HostsWithLocation) {
  NetDir n = net();
  ASSERT_FALSE(n.add_switch("sw1"));
  ASSERT_FALSE(n.switch_at("sw1").add_port(
      1, *MacAddress::parse("02:00:00:00:01:01"), "eth1"));
  ASSERT_FALSE(n.add_host("h1", *MacAddress::parse("0a:00:00:00:00:01"),
                          *Ipv4Address::parse("10.0.0.1")));
  auto h = n.host_at("h1");
  EXPECT_EQ(h.ip()->to_string(), "10.0.0.1");
  ASSERT_FALSE(h.set_location("/net/switches/sw1/ports/1"));
  EXPECT_EQ(*h.location(), "/net/switches/sw1/ports/1");
}

TEST_F(HandlesTest, ViewsNestAsNetDirs) {
  NetDir n = net();
  ASSERT_FALSE(n.create_view("http"));
  NetDir v = n.view("http");
  ASSERT_FALSE(v.add_switch("vsw"));
  EXPECT_TRUE(v.switch_at("vsw").exists());
  // The view's switch is not a master switch.
  auto master = n.switch_names();
  ASSERT_TRUE(master.ok());
  EXPECT_TRUE(master->empty());
  // Views enumerate.
  EXPECT_EQ(*n.view_names(), std::vector<std::string>{"http"});
}

TEST_F(HandlesTest, EventBufferDrain) {
  NetDir n = net();
  auto buf = n.open_events("router");
  ASSERT_TRUE(buf.ok());
  // Simulate the driver depositing two packet-ins.
  for (int i = 0; i < 2; ++i) {
    std::string pkt = buf->path() + "/pkt_" + std::to_string(i);
    ASSERT_FALSE(vfs->mkdir(pkt));
    ASSERT_FALSE(vfs->write_file(pkt + "/datapath", "sw1"));
    ASSERT_FALSE(vfs->write_file(pkt + "/in_port", std::to_string(10 + i)));
    ASSERT_FALSE(vfs->write_file(pkt + "/data", "payload"));
  }
  auto events = buf->drain();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].in_port, 10);
  EXPECT_EQ((*events)[1].in_port, 11);
  EXPECT_EQ((*events)[0].data, "payload");
  EXPECT_TRUE(buf->pending()->empty());
}

TEST_F(HandlesTest, EventBufferWatch) {
  NetDir n = net();
  auto buf = n.open_events("app");
  ASSERT_TRUE(buf.ok());
  auto q = std::make_shared<vfs::WatchQueue>();
  auto watch = buf->watch(q);
  ASSERT_TRUE(watch.ok());
  ASSERT_FALSE(vfs->mkdir(buf->path() + "/pkt_1"));
  auto e = q->try_pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->name, "pkt_1");
}

// --- validate_field unit coverage (parameterized) ----------------------------

struct FieldCase {
  FieldType type;
  const char* value;
  bool ok;
};

class ValidateFieldTest : public ::testing::TestWithParam<FieldCase> {};

TEST_P(ValidateFieldTest, Validates) {
  const auto& c = GetParam();
  EXPECT_EQ(!validate_field(c.type, c.value), c.ok)
      << "value: " << c.value;
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ValidateFieldTest,
    ::testing::Values(
        FieldCase{FieldType::u64, "184467", true},
        FieldCase{FieldType::u64, "-1", false},
        FieldCase{FieldType::u16, "65535", true},
        FieldCase{FieldType::u16, "65536", false},
        FieldCase{FieldType::u8, "255", true},
        FieldCase{FieldType::u8, "256", false},
        FieldCase{FieldType::flag, "0", true},
        FieldCase{FieldType::flag, "1\n", true},
        FieldCase{FieldType::flag, "2", false},
        FieldCase{FieldType::hex64, "0xdeadbeef", true},
        FieldCase{FieldType::hex64, "xyz", false},
        FieldCase{FieldType::hex16, "0xffff", true},
        FieldCase{FieldType::hex16, "0x10000", false},
        FieldCase{FieldType::mac, "02:00:00:00:00:01", true},
        FieldCase{FieldType::mac, "02:00:00:00:00", false},
        FieldCase{FieldType::ipv4, "192.168.0.1", true},
        FieldCase{FieldType::ipv4, "192.168.0.256", false},
        FieldCase{FieldType::cidr, "10.0.0.0/8", true},
        FieldCase{FieldType::cidr, "10.0.0.0/83", false},
        FieldCase{FieldType::port_ref, "controller", true},
        FieldCase{FieldType::port_ref, "1 2 flood", true},
        FieldCase{FieldType::port_ref, "", false},
        FieldCase{FieldType::port_ref, "seven", false},
        FieldCase{FieldType::enqueue, "2:1", true},
        FieldCase{FieldType::enqueue, "2", false},
        FieldCase{FieldType::text, "hello world", true},
        FieldCase{FieldType::text, "two\nlines", false},
        FieldCase{FieldType::blob, "\x01\x02\x03", true}));

}  // namespace
}  // namespace yanc::netfs
