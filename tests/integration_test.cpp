// Figure-1 architecture integration (FIG-1 in DESIGN.md): every box of
// the paper's diagram wired together —
//
//   apps (router / pusher / shell)   master view
//          |                            |
//        yanc fs  <---- slicer ----> view subtrees, namespaced apps
//          |
//        drivers  <--- OpenFlow ---> software switches + hosts
//          |
//   distributed fs (replicated across controller nodes)
//
// plus the end-to-end checks that only make sense across modules.
#include <gtest/gtest.h>

#include "yanc/apps/router.hpp"
#include "yanc/apps/static_flow_pusher.hpp"
#include "yanc/dist/replicated.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/net/packet.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/obs/stats_fs.hpp"
#include "yanc/shell/coreutils.hpp"
#include "yanc/sw/switch.hpp"
#include "yanc/topo/discovery.hpp"
#include "yanc/util/strings.hpp"
#include "yanc/view/slicer.hpp"

namespace yanc {
namespace {

using flow::Action;
using flow::FlowSpec;

class Fig1Architecture : public ::testing::Test {
 protected:
  Fig1Architecture() : network(scheduler) {}

  void SetUp() override {
    ASSERT_TRUE(netfs::mount_yanc_fs(*vfs).ok());
    driver = std::make_unique<driver::OfDriver>(vfs);
  }

  sw::Switch* add_switch(std::uint64_t dpid, int ports = 4) {
    sw::SwitchOptions opts;
    opts.datapath_id = dpid;
    auto s = std::make_unique<sw::Switch>("dp" + std::to_string(dpid), opts,
                                          network);
    for (int p = 1; p <= ports; ++p)
      s->add_port(static_cast<std::uint16_t>(p),
                  MacAddress::from_u64((dpid << 8) | p), "eth");
    s->connect(driver->listener().connect());
    switches.push_back(std::move(s));
    return switches.back().get();
  }

  void settle(const std::function<std::size_t()>& extra = {}) {
    for (int round = 0; round < 60; ++round) {
      std::size_t work = driver->poll();
      for (auto& s : switches) work += s->pump();
      work += scheduler.run_until_idle();
      if (extra) work += extra();
      if (work == 0) break;
    }
  }

  std::shared_ptr<vfs::Vfs> vfs = std::make_shared<vfs::Vfs>();
  net::Scheduler scheduler;
  net::Network network;
  std::unique_ptr<driver::OfDriver> driver;
  std::vector<std::unique_ptr<sw::Switch>> switches;
};

// The slicer sits between a tenant's view and the master view while a real
// driver executes the result on a real switch.
TEST_F(Fig1Architecture, SlicedTenantFlowReachesHardwareConfined) {
  auto* s1 = add_switch(1);
  settle();

  view::SliceConfig cfg;
  cfg.name = "tenant";
  cfg.predicate.dl_type = 0x0800;
  cfg.predicate.tp_dst = 443;
  view::Slicer slicer(vfs, "/net", cfg);
  ASSERT_FALSE(slicer.init());

  // The tenant writes a match-all flow inside its view.
  netfs::NetDir tenant_view(vfs, "/net/views/tenant");
  FlowSpec broad;
  broad.actions = {Action::output(2)};
  ASSERT_FALSE(tenant_view.switch_at("sw1").add_flow("mine", broad));
  settle([&]() -> std::size_t {
    auto w = slicer.poll();
    return w ? *w : 0;
  });

  // The hardware entry is the *confined* flow.
  ASSERT_EQ(s1->table().size(), 1u);
  const auto& entry = s1->table().entries()[0];
  EXPECT_EQ(entry.spec.match.tp_dst, 443);
  EXPECT_EQ(entry.spec.match.dl_type, 0x0800);

  // Data-plane check: only port-443 traffic uses the tenant's flow.
  flow::FieldValues https;
  https.dl_type = 0x0800;
  https.tp_dst = 443;
  flow::FieldValues ssh = https;
  ssh.tp_dst = 22;
  EXPECT_NE(s1->mutable_table().lookup(https, 0, 64, false), nullptr);
  EXPECT_EQ(s1->mutable_table().lookup(ssh, 0, 64, false), nullptr);
}

// A namespaced application (Linux-namespace stand-in, §5.3) can only see
// and touch its own view.
TEST_F(Fig1Architecture, NamespacedAppIsConfinedToItsView) {
  add_switch(1);
  settle();
  view::SliceConfig cfg;
  cfg.name = "tenant";
  view::Slicer slicer(vfs, "/net", cfg);
  ASSERT_FALSE(slicer.init());

  vfs::Namespace ns(vfs, "/net/views/tenant", vfs::Credentials::root());
  // Inside the namespace the view's subtree appears at the root.
  auto entries = ns.readdir("/switches");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
  // Escape attempts are clamped at the namespace root (chroot semantics):
  // "/../../switches" is still the VIEW's switches dir, not the master's.
  // Prove it by marking the view's subtree and reading it back through
  // the ".." path.
  ASSERT_FALSE(ns.mkdir("/switches/marker"));
  auto escaped = ns.readdir("/../../switches");
  ASSERT_TRUE(escaped.ok());
  bool saw_marker = false;
  for (const auto& e : *escaped) saw_marker |= e.name == "marker";
  EXPECT_TRUE(saw_marker);
  // The master tree has no such switch.
  EXPECT_FALSE(vfs->stat("/net/switches/marker").ok());
  // But writes inside the namespace land in the view.
  ASSERT_FALSE(ns.mkdir("/switches/sw1/flows/ns-flow"));
  EXPECT_TRUE(
      vfs->stat("/net/views/tenant/switches/sw1/flows/ns-flow").ok());
}

// Shell tools, the pusher, and the audit trail compose over one live FS.
TEST_F(Fig1Architecture, ShellAndPusherComposeOverLiveFs) {
  auto* s1 = add_switch(1);
  settle();
  auto report = apps::push_flows(
      *vfs, "switch=sw1 flow=ssh match.tp_dst=22 action.out=2\n");
  ASSERT_TRUE(report.errors.empty());
  settle();
  ASSERT_EQ(s1->table().size(), 1u);

  // The paper's find|grep one-liner locates the flow the pusher wrote.
  auto flows = shell::flows_matching_port(*vfs, "/net", 22);
  ASSERT_TRUE(flows.ok());
  ASSERT_EQ(flows->size(), 1u);
  EXPECT_EQ((*flows)[0], "/net/switches/sw1/flows/ssh");

  // `ls -l` over switches shows the connected switch.
  auto listing = shell::ls(*vfs, "/net/switches", true);
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing->find("sw1"), std::string::npos);
}

// §5.1: "the network operating system can implement fine-grained control
// of network resources using permissions ... while individual flows can be
// protected for specific processes, so too can an entire switch."
TEST_F(Fig1Architecture, PermissionsProtectSwitchesAndFlows) {
  auto* s1 = add_switch(1);
  (void)s1;
  settle();
  auto alice = vfs::Credentials::user(1000, 100);
  auto bob = vfs::Credentials::user(1001, 100);

  // Hand the switch's flows/ directory to alice.
  ASSERT_FALSE(vfs->chown("/net/switches/sw1/flows", 1000, 100));
  ASSERT_FALSE(vfs->chmod("/net/switches/sw1/flows", 0755));

  // Alice programs a flow; bob cannot create one at all.
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/flows/alices", 0755, alice));
  EXPECT_EQ(vfs->mkdir("/net/switches/sw1/flows/bobs", 0755, bob),
            make_error_code(Errc::access_denied));
  // Nor can bob tamper with alice's flow (her object, 0755).
  EXPECT_EQ(vfs->write_file("/net/switches/sw1/flows/alices/priority",
                            "1", bob),
            make_error_code(Errc::access_denied));

  // An ACL grants bob exactly one flow directory, nothing else (§5.1).
  vfs::Acl acl = vfs::Acl::from_mode(0755);
  acl.add({vfs::AclTag::user, 1001, 7});
  acl.add({vfs::AclTag::mask, 0, 7});
  ASSERT_FALSE(vfs->set_acl("/net/switches/sw1/flows", acl,
                            vfs::Credentials::root()));
  ASSERT_FALSE(vfs->mkdir("/net/switches/sw1/flows/bobs", 0700, bob));
  EXPECT_FALSE(vfs->write_file("/net/switches/sw1/flows/bobs/priority",
                               "7", bob));
  // Alice in turn cannot touch bob's 0700 flow.
  EXPECT_EQ(vfs->write_file("/net/switches/sw1/flows/bobs/priority", "9",
                            alice),
            make_error_code(Errc::access_denied));
}

// The controller's own telemetry is a file system too (/yanc/.stats,
// procfs-style): drive real traffic through the Figure-1 stack, then read
// the counters back with the same shell coreutils an administrator would
// use.  Counters must only ever go up.
TEST_F(Fig1Architecture, StatsSubtreeObservesLiveTraffic) {
  auto stats = obs::mount_stats_fs(*vfs);
  ASSERT_TRUE(stats.ok());
  auto* s1 = add_switch(1);
  settle();
  (*stats)->refresh();

  auto counter = [&](const std::string& path) -> std::uint64_t {
    auto text = shell::cat(*vfs, path);
    EXPECT_TRUE(text.ok()) << path;
    if (!text) return 0;
    auto value = parse_u64(trim(*text));
    EXPECT_TRUE(value.ok()) << path << " = " << *text;
    return value ? *value : 0;
  };

  // The handshake alone walked the file system and exchanged messages.
  const std::uint64_t lookups0 = counter("/yanc/.stats/vfs/lookup_total");
  EXPECT_GT(lookups0, 0u);
  EXPECT_GT(counter("/yanc/.stats/driver/of/msg_in_total"), 0u);
  EXPECT_GT(counter("/yanc/.stats/driver/of/msg_out_total"), 0u);
  const std::uint64_t pkt0 = counter("/yanc/.stats/driver/of/packet_in_total");

  // A table miss on the data plane becomes a packet_in at the controller.
  auto frame = net::build_ethernet(MacAddress{}, MacAddress{}, 0x1234, {7});
  s1->handle_frame(2, frame);
  settle();
  (*stats)->refresh();
  const std::uint64_t pkt1 = counter("/yanc/.stats/driver/of/packet_in_total");
  EXPECT_EQ(pkt1, pkt0 + 1);

  // More traffic, strictly larger counters: monotonically increasing.
  s1->handle_frame(3, frame);
  driver->ping_switches();
  settle();
  (*stats)->refresh();
  EXPECT_GT(counter("/yanc/.stats/driver/of/packet_in_total"), pkt1);
  EXPECT_GT(counter("/yanc/.stats/vfs/lookup_total"), lookups0);
  // The echo round-trip landed in the RTT histogram.
  EXPECT_GE(counter("/yanc/.stats/driver/of/echo_rtt_ns_count"), 1u);

  // The subtree is part of the namespace like anything else.
  auto listing = shell::ls(*vfs, "/yanc/.stats");
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing->find("vfs"), std::string::npos);
  EXPECT_NE(listing->find("driver"), std::string::npos);
}

// The §6/§7.1 story end-to-end: two controller nodes over a replicated
// file system; the switch connects to node B's driver; an administrator
// writes the flow on node A.  The flow crosses the replication layer and
// lands in the switch via node B's driver — neither side knows about the
// other.
TEST(DistributedControllerIntegration, FlowWrittenOnNodeAProgramsSwitchOnNodeB) {
  net::Scheduler scheduler;
  net::Network network(scheduler);
  dist::Cluster cluster(
      scheduler, dist::ClusterOptions{
                     .nodes = 2,
                     .link_latency = std::chrono::microseconds(200),
                     .default_mode = dist::Mode::strict});

  auto vfs_a = std::make_shared<vfs::Vfs>();
  auto vfs_b = std::make_shared<vfs::Vfs>();
  for (auto& [v, node] :
       {std::pair{&vfs_a, 0}, std::pair{&vfs_b, 1}}) {
    ASSERT_FALSE((*v)->mkdir("/net"));
    ASSERT_FALSE((*v)->mount("/net", cluster.fs(
                                         static_cast<std::size_t>(node))));
  }

  // Node B runs the driver; the switch connects there.
  driver::OfDriver driver_b(vfs_b);
  sw::SwitchOptions opts;
  opts.datapath_id = 0x42;
  sw::Switch s("dp42", opts, network);
  s.add_port(1, MacAddress::from_u64(1), "eth1");
  s.add_port(2, MacAddress::from_u64(2), "eth2");
  s.connect(driver_b.listener().connect());

  auto settle = [&] {
    for (int round = 0; round < 60; ++round) {
      std::size_t work = driver_b.poll() + s.pump() +
                         scheduler.run_until_idle();
      if (!work) break;
    }
  };
  settle();
  ASSERT_EQ(driver_b.connected_switches(), 1u);

  // Node A sees the switch directory that node B's driver created.
  netfs::NetDir net_a(vfs_a);
  auto names = net_a.switch_names();
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(*names, std::vector<std::string>{"sw1"});

  // Node A's administrator writes and commits a flow, pure file I/O.
  FlowSpec spec;
  spec.match.dl_type = 0x0806;
  spec.actions = {Action::flood()};
  ASSERT_FALSE(net_a.switch_at("sw1").add_flow("arp", spec));
  settle();

  // It reached the hardware through node B's driver.
  ASSERT_EQ(s.table().size(), 1u);
  EXPECT_EQ(s.table().entries()[0].spec.match.dl_type, 0x0806);

  // And the reverse direction: hardware state surfaced by node B's driver
  // (counters, ports) is readable on node A.
  EXPECT_TRUE(*net_a.switch_at("sw1").connected());
  EXPECT_EQ(net_a.switch_at("sw1").port_names()->size(), 2u);
}

// Two controller nodes, each with its OWN driver and its own switch, over
// one replicated FS (the paper's full multi-machine deployment).  Each
// driver must pick a distinct directory name even though both count from
// 1, and flows written on either node reach the right hardware.
TEST(DistributedControllerIntegration, TwoDriversTwoNodesNoNameCollision) {
  net::Scheduler scheduler;
  net::Network network(scheduler);
  dist::Cluster cluster(
      scheduler,
      dist::ClusterOptions{.nodes = 2,
                           .link_latency = std::chrono::microseconds(100),
                           .default_mode = dist::Mode::strict});
  auto vfs_a = std::make_shared<vfs::Vfs>();
  auto vfs_b = std::make_shared<vfs::Vfs>();
  ASSERT_FALSE(vfs_a->mkdir("/net"));
  ASSERT_FALSE(vfs_b->mkdir("/net"));
  ASSERT_FALSE(vfs_a->mount("/net", cluster.fs(0)));
  ASSERT_FALSE(vfs_b->mount("/net", cluster.fs(1)));

  driver::OfDriver driver_a(vfs_a);
  driver::OfDriver driver_b(vfs_b);

  sw::SwitchOptions oa;
  oa.datapath_id = 0xa;
  sw::Switch switch_a("dpa", oa, network);
  switch_a.add_port(1, MacAddress::from_u64(0xa1), "eth1");
  sw::SwitchOptions ob;
  ob.datapath_id = 0xb;
  sw::Switch switch_b("dpb", ob, network);
  switch_b.add_port(1, MacAddress::from_u64(0xb1), "eth1");

  auto settle = [&] {
    for (int round = 0; round < 80; ++round) {
      std::size_t work = driver_a.poll() + driver_b.poll() +
                         switch_a.pump() + switch_b.pump() +
                         scheduler.run_until_idle();
      if (!work) break;
    }
  };

  // Connect A first so its directory replicates before B names its own.
  switch_a.connect(driver_a.listener().connect());
  settle();
  switch_b.connect(driver_b.listener().connect());
  settle();

  // Two distinct directories; ids intact (no clobbering).
  netfs::NetDir net_a(vfs_a);
  auto names = net_a.switch_names();
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ(*net_a.switch_at((*names)[0]).datapath_id(), 0xau);
  EXPECT_EQ(*net_a.switch_at((*names)[1]).datapath_id(), 0xbu);

  // A flow written on node A for switch B's directory reaches switch B
  // through node B's driver.
  std::string b_name = *driver_b.switch_name(0xb);
  FlowSpec spec;
  spec.match.tp_dst = 8080;
  spec.actions = {Action::output(1)};
  ASSERT_FALSE(net_a.switch_at(b_name).add_flow("via-a", spec));
  settle();
  ASSERT_EQ(switch_b.table().size(), 1u);
  EXPECT_EQ(switch_b.table().entries()[0].spec.match.tp_dst, 8080);
  EXPECT_EQ(switch_a.table().size(), 0u);  // only B got it
}

// Watches + distributed FS: a node-A watcher fires for a change that
// originated on node B (the §5.2 + §6 composition).
TEST(DistributedControllerIntegration, WatchFiresAcrossNodes) {
  net::Scheduler scheduler;
  dist::Cluster cluster(
      scheduler,
      dist::ClusterOptions{.nodes = 2,
                           .link_latency = std::chrono::microseconds(100),
                           .default_mode = dist::Mode::strict});
  auto vfs_a = std::make_shared<vfs::Vfs>();
  auto vfs_b = std::make_shared<vfs::Vfs>();
  ASSERT_FALSE(vfs_a->mkdir("/net"));
  ASSERT_FALSE(vfs_b->mkdir("/net"));
  ASSERT_FALSE(vfs_a->mount("/net", cluster.fs(0)));
  ASSERT_FALSE(vfs_b->mount("/net", cluster.fs(1)));

  auto queue = std::make_shared<vfs::WatchQueue>();
  auto watch = vfs_a->watch("/net/switches", vfs::event::created, queue);
  ASSERT_TRUE(watch.ok());

  netfs::NetDir net_b(vfs_b);
  ASSERT_FALSE(net_b.add_switch("remote-switch"));
  scheduler.run_until_idle();

  auto event = queue->try_pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->name, "remote-switch");
}

}  // namespace
}  // namespace yanc
