// Fixture: checked, assigned, (void)-cast, std::ignore'd, and declaration
// sites are all clean.
#include <tuple>

template <typename T> class Result {};
struct NodeId {};

struct Fs {
  [[nodiscard]] int remove(int node);
  Result<NodeId> mkdir(int parent);
};

[[nodiscard]] bool send_frame(int port);

bool g(Fs& fs) {
  int st = fs.remove(1);
  auto r = fs.mkdir(2);
  (void)r;
  (void)fs.remove(3);
  std::ignore = fs.mkdir(4);
  if (send_frame(5)) return true;
  return st == 0 && send_frame(6);
}
