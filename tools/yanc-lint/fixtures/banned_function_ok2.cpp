// Fixture: lexer hardening — banned names inside raw string literals
// (prefixed or not) and numbers with digit separators must stay opaque.
// Before the prefix-aware lexer, LR"(...)" tokenized as identifier `LR`
// plus an ordinary string, and the raw body leaked into the token stream.
#include <cstdio>

const char* a = R"(sprintf(buf, "%s", src))";
const wchar_t* b = LR"(strcpy(dst, src))";
const char* c = u8R"delim(strtok(line, ","))delim";
const char16_t* d = uR"(rand())";
const char32_t* e = UR"x(srand(1))x";
const wchar_t* f = L"gmtime(&t)";
const char* g = u8"localtime(&t)";

// Digit separators must not swallow an adjacent quote into the number.
int counts[] = {1'000'000, 0xfff'f, 0b1010'0110};
char h = u8's';
long big = 2'000'000'000;
