// Fixture: legacy C functions must be flagged, qualified or not.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

void f(char* dst, const char* src, char* buf) {
  strcpy(dst, src);
  std::sprintf(buf, "%s", src);
  int r = ::rand();
  (void)r;
  std::time_t t = 0;
  (void)gmtime(&t);
  (void)strtok(buf, ",");
}
