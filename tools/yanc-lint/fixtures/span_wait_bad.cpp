// Fixture: blocking waits while an obs::Span guard is live must be
// flagged — the wait would be booked as the stage's service time.
#include <chrono>

namespace yanc {

void drain_one(Queue& q, obs::TraceRef parent) {
  obs::Span span(parent, "driver", "drain");
  auto ev = q.pop_wait(std::chrono::milliseconds(10));  // BAD: under span
  handle(ev);
}

void drain_nested(Queue& q, Cv& cv, Lk& lk, obs::TraceRef parent) {
  obs::Span span(parent, "driver", "drain");
  if (q.empty()) {
    cv.wait_until(lk, deadline());  // BAD: span still live in outer scope
  }
}

Task co_drain(Queue& q, obs::TraceRef parent) {
  obs::Span span(parent, "driver", "drain");
  co_await q.next();  // BAD: suspension under a service-time guard
}

}  // namespace yanc
