// Fixture: discarding [[nodiscard]] / Result-returning calls must be flagged.
template <typename T> class Result {};
struct NodeId {};

struct Fs {
  [[nodiscard]] int remove(int node);
  Result<NodeId> mkdir(int parent);
};

[[nodiscard]] bool send_frame(int port);

void f(Fs& fs, Fs* p) {
  fs.remove(1);
  p->mkdir(2);
  send_frame(3);
  if (true) fs.remove(4);
}
