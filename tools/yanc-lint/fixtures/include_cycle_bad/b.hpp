#pragma once
#include "a.hpp"
inline int b_func() { return 7; }
