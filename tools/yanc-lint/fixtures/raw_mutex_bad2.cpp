// Fixture: a waiver with no justification text does not suppress.
#include <mutex>

struct S {
  std::mutex mu;  // yanc-lint: allow(raw-mutex)
};
