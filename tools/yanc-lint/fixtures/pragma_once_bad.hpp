// Fixture: header with no #pragma once.
#include <cstdint>

inline std::uint32_t answer() { return 42; }
