// Fixture: lexer hardening — the token stream must recover cleanly after
// prefixed raw strings and separator-laden numbers, so a real banned call
// following them is still seen.
#include <cstring>

const wchar_t* fmt = LR"(this "quoted" body \ has both hazards)";
int window = 1'000'000;

void f(char* dst, const char* src) {
  strcpy(dst, src);
}
