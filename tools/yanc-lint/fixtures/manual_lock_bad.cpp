// Fixture: manual lock()/unlock() calls must be flagged.
struct M { void lock(); void unlock(); void lock_shared(); };

void f(M& m, M* p) {
  m.lock();
  p->unlock();
  m.lock_shared();
}
