// Fixture: raw std lock primitives must be flagged.
#include <mutex>
#include <shared_mutex>

struct S {
  std::mutex mu;
  std::shared_mutex smu;
};

void f(S& s) {
  std::lock_guard g(s.mu);
  std::shared_lock sl(s.smu);
}
