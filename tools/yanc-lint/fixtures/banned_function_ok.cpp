// Fixture: safe equivalents, member functions, and project functions that
// merely share a banned name are all clean.
#include <cstdio>

namespace myns { int rand(); }
struct Dice { int rand(); };

void f(char* buf, unsigned long n, Dice& d) {
  std::snprintf(buf, n, "%lu", n);
  int a = myns::rand();   // project-qualified, not std/global
  int b = d.rand();       // member call
  (void)a;
  (void)b;
}
