#pragma once
#include "c.hpp"
inline int b_func() { return c_func(); }
