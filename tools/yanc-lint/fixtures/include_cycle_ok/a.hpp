#pragma once
#include "b.hpp"
inline int a_func() { return b_func() + 1; }
