#pragma once
inline int c_func() { return 7; }
