// Fixture: the compliant shapes — wait first and account it as queue_ns,
// scope the span so it closes before the wait, or carry a justified
// waiver.
#include <chrono>

namespace yanc {

void drain_one(Queue& q, obs::TraceRef parent) {
  // Wait *before* opening the span; the measured wait becomes queue_ns.
  auto t0 = now_ns();
  auto ev = q.pop_wait(std::chrono::milliseconds(10));
  obs::Span span(parent, "driver", "drain", now_ns() - t0);
  handle(ev);
}

void drain_scoped(Queue& q, obs::TraceRef parent) {
  {
    obs::Span span(parent, "driver", "drain");
    handle(q.pop());
  }  // span closed here
  q.pop_wait(std::chrono::milliseconds(10));  // OK: no live guard
}

void drain_waived(Queue& q, Cv& cv, Lk& lk, obs::TraceRef parent) {
  obs::Span span(parent, "driver", "drain");
  // yanc-lint: allow(span-wait) bounded 1us handshake, measured as service
  cv.wait_for(lk, std::chrono::microseconds(1));
}

}  // namespace yanc
