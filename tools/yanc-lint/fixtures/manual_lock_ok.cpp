// Fixture: RAII guards, method definitions, and a justified hand-off are ok.
struct M { void lock(); void unlock(); };
template <typename T> struct Guard { explicit Guard(T&); };

struct Wrapper {
  // Defining lock()/unlock() is not *calling* them.
  void lock() {}
  void unlock() {}
};

void f(M& m) {
  Guard g(m);
  // yanc-lint: allow(manual-lock) ordered hand-off documented in CORRECTNESS.md
  m.unlock();
}
