// Fixture: ranked wrappers and a justified waiver are both clean.
namespace yanc::dbg {
enum class Rank { watch_queue };
template <Rank R> struct Mutex { void lock(); void unlock(); };
template <typename M> struct LockGuard { explicit LockGuard(M&); };
}  // namespace yanc::dbg

struct S {
  yanc::dbg::Mutex<yanc::dbg::Rank::watch_queue> mu;
  // yanc-lint: allow(raw-mutex) lockdep's own graph lock cannot rank itself
  std::mutex meta_mu;
};

void f(S& s) { yanc::dbg::LockGuard g(s.mu); }
