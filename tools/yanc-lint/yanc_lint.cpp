// yanc-lint — the repo-invariant gate (ISSUE 4, tentpole part 2).
//
// A self-contained C++20 source scanner: no libclang, no compiler, no
// network — hermetic enough to run as a plain ctest test everywhere the
// tree builds.  It walks the given directories and enforces invariants
// that are *policy*, not syntax, so no off-the-shelf tool checks them:
//
//   raw-mutex         std::mutex/std::shared_mutex/std::lock_guard/... in
//                     src/yanc/ outside src/yanc/dbg/ — all locks must be
//                     ranked dbg wrappers so lock-order validation sees them.
//   manual-lock       .lock()/.unlock()/.lock_shared()/... calls in
//                     src/yanc/ outside dbg/ — RAII guards only.
//   banned-function   sprintf/strcpy/strcat/strtok/gmtime/localtime/rand/
//                     srand/rand_r — non-reentrant or unbounded C legacy.
//   include-cycle     #include cycles among project headers.
//   discarded-result  a call to a [[nodiscard]]-annotated yanc API (or any
//                     Result<T>-returning API) used as a bare statement.
//   pragma-once       every header carries #pragma once.
//   span-wait         a blocking wait (pop_wait/wait/wait_for/wait_until/
//                     sleep*/co_await/co_yield) while an obs::Span guard is
//                     live in the same scope — the wait would be booked as
//                     service time, corrupting the queue/service split.
//
// Suppression: a finding on line N is waived when line N or N-1 carries a
// comment of the form
//     // yanc-lint: allow(<rule>) <justification>
// and the justification is non-empty — silent waivers are themselves a
// violation.  docs/CORRECTNESS.md catalogues the rules.
//
// Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lexer.hpp"

namespace fs = std::filesystem;
using yanclint::LexedFile;
using yanclint::TokKind;
using yanclint::Token;

namespace {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  fs::path path;          // as discovered
  std::string display;    // relative to root, '/'-separated
  LexedFile lex;
  bool is_header = false;
};

const std::unordered_set<std::string> kBannedFunctions = {
    "sprintf", "vsprintf", "strcpy", "strcat", "strtok",
    "gmtime",  "localtime", "rand",  "srand",  "rand_r"};

const std::unordered_set<std::string> kRawLockTypes = {
    "mutex",          "shared_mutex", "recursive_mutex",
    "timed_mutex",    "shared_timed_mutex", "recursive_timed_mutex",
    "lock_guard",     "unique_lock",  "shared_lock",
    "scoped_lock",    "condition_variable", "condition_variable_any"};

const std::unordered_set<std::string> kManualLockCalls = {
    "lock", "unlock", "try_lock", "lock_shared", "unlock_shared",
    "try_lock_shared"};

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string display_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec || rel.empty() ? p : rel).generic_string();
  return s;
}

/// Lock-discipline rules only bind library code: the wrappers themselves
/// (src/yanc/dbg/) and everything outside src/yanc/ (tests may use raw
/// primitives for scaffolding) are exempt.
bool in_lock_scope(const std::string& display) {
  if (display.find("src/yanc/") == std::string::npos &&
      display.rfind("yanc/", 0) != 0)
    return false;
  return display.find("/dbg/") == std::string::npos &&
         display.rfind("src/yanc/dbg", 0) != 0;
}

/// True when `line` (or the line above) carries a well-formed waiver for
/// `rule`.  `bad_waiver` reports a matching allow() with an empty
/// justification so the caller can flag it instead of honouring it.
bool suppressed(const LexedFile& lex, int line, const std::string& rule,
                std::string* bad_waiver) {
  static const std::regex re(R"(yanc-lint:\s*allow\(([a-z-]+)\)\s*(.*))");
  for (int l = line; l >= line - 1 && l >= 1; --l) {
    auto it = lex.comments.find(l);
    if (it == lex.comments.end()) continue;
    std::smatch m;
    std::string text = it->second;
    if (!std::regex_search(text, m, re)) continue;
    if (m[1].str() != rule) continue;
    // Justification: anything beyond the allow() itself (block comments
    // may close on the same line; strip the terminator before judging).
    std::string why = m[2].str();
    while (!why.empty() &&
           (why.back() == '/' || why.back() == '*' || isspace((unsigned char)why.back())))
      why.pop_back();
    if (why.size() >= 3) return true;
    if (bad_waiver) *bad_waiver = rule;
  }
  return false;
}

void report(std::vector<Finding>& findings, const SourceFile& sf, int line,
            std::string rule, std::string message) {
  std::string bad;
  if (suppressed(sf.lex, line, rule, &bad)) return;
  if (!bad.empty())
    findings.push_back(Finding{sf.display, line, rule,
                               "allow(" + bad +
                                   ") without justification text — "
                                   "say why or remove the waiver"});
  findings.push_back(Finding{sf.display, line, std::move(rule),
                             std::move(message)});
}

// --- per-file token rules --------------------------------------------------

void rule_raw_mutex(const SourceFile& sf, std::vector<Finding>& out) {
  const auto& t = sf.lex.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == TokKind::identifier && t[i].text == "std" &&
        t[i + 1].text == "::" && t[i + 2].kind == TokKind::identifier &&
        kRawLockTypes.count(t[i + 2].text)) {
      report(out, sf, t[i].line, "raw-mutex",
             "std::" + t[i + 2].text +
                 " — use the ranked yanc::dbg wrappers and guards "
                 "(docs/CORRECTNESS.md)");
    }
  }
}

void rule_manual_lock(const SourceFile& sf, std::vector<Finding>& out) {
  const auto& t = sf.lex.tokens;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier || !kManualLockCalls.count(t[i].text))
      continue;
    if (t[i - 1].text != "." && t[i - 1].text != "->") continue;
    if (t[i + 1].text != "(") continue;
    report(out, sf, t[i].line, "manual-lock",
           "." + t[i].text +
               "() — acquire through RAII guards (dbg::LockGuard/"
               "UniqueLock/SharedLock) so every exit path releases");
  }
}

void rule_banned_function(const SourceFile& sf, std::vector<Finding>& out) {
  const auto& t = sf.lex.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier || !kBannedFunctions.count(t[i].text))
      continue;
    if (t[i + 1].text != "(") continue;
    if (i > 0) {
      const std::string& prev = t[i - 1].text;
      if (prev == "." || prev == "->") continue;  // member of another type
      // `int rand(...)` is a declaration of a project function, not a call;
      // a call is never directly preceded by a plain identifier unless that
      // identifier is a statement keyword.
      static const std::unordered_set<std::string> kCallKeywords = {
          "return", "co_return", "co_await", "co_yield", "throw",
          "else",   "do",        "case"};
      if (t[i - 1].kind == TokKind::identifier && !kCallKeywords.count(prev))
        continue;
      if (prev == "::") {
        // std::rand is as banned as ::rand; other qualifiers name project
        // functions that merely share the name.
        bool std_qualified =
            i >= 2 && t[i - 2].kind == TokKind::identifier &&
            t[i - 2].text == "std";
        bool global_qualified = i < 2 || t[i - 2].kind != TokKind::identifier;
        if (!std_qualified && !global_qualified) continue;
      }
    }
    report(out, sf, t[i].line, "banned-function",
           t[i].text +
               "() is banned (non-reentrant/unbounded); use the yanc "
               "equivalents (util::Rng, strings.hpp, snprintf)");
  }
}

void rule_pragma_once(const SourceFile& sf, std::vector<Finding>& out) {
  if (!sf.is_header) return;
  for (const Token& tok : sf.lex.tokens) {
    if (tok.kind == TokKind::preproc &&
        tok.text.find("pragma") != std::string::npos &&
        tok.text.find("once") != std::string::npos)
      return;
  }
  report(out, sf, 1, "pragma-once",
         "header without #pragma once (every yanc header is include-guarded "
         "this way)");
}

// --- span-wait -------------------------------------------------------------

/// Blocking calls that must not run under a live obs::Span guard: the
/// guard measures *service* time, and a wait inside it books queue time
/// as work, corrupting the per-stage attribution `/yanc/.trace` reports.
const std::unordered_set<std::string> kBlockingWaits = {
    "pop_wait", "wait", "wait_for", "wait_until",
    "sleep",    "sleep_for", "sleep_until"};

void rule_span_wait(const SourceFile& sf, std::vector<Finding>& out) {
  const auto& t = sf.lex.tokens;
  struct OpenSpan {
    int depth;
    int line;
    std::string name;
  };
  std::vector<OpenSpan> open;
  int depth = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "{") {
      ++depth;
      continue;
    }
    if (s == "}") {
      // Guards declared in the closing scope are destroyed here.
      while (!open.empty() && open.back().depth >= depth) open.pop_back();
      --depth;
      continue;
    }
    if (t[i].kind != TokKind::identifier) continue;
    // A guard declaration: `obs :: Span name (` inside a function body.
    // The qualifier requirement keeps `Span make();` member declarations
    // (the most-vexing-parse twin) from registering phantom guards.
    if (s == "Span" && depth >= 1 && i >= 2 && i + 2 < t.size() &&
        t[i - 2].text == "obs" && t[i - 1].text == "::" &&
        t[i + 1].kind == TokKind::identifier && t[i + 2].text == "(") {
      open.push_back({depth, t[i].line, t[i + 1].text});
      continue;
    }
    bool blocking = s == "co_await" || s == "co_yield";
    if (!blocking && kBlockingWaits.count(s) && i + 1 < t.size() &&
        t[i + 1].text == "(")
      blocking = true;
    if (blocking && !open.empty())
      report(out, sf, t[i].line, "span-wait",
             s + " while span guard '" + open.back().name + "' (line " +
                 std::to_string(open.back().line) +
                 ") is live — the wait is booked as service time; close "
                 "the span first or measure the wait as queue_ns");
  }
}

// --- discarded-result ------------------------------------------------------

/// Pass A: names of functions whose result must not be ignored — any
/// declaration carrying [[nodiscard]], plus anything returning Result<...>
/// (the Result type itself is [[nodiscard]]).
///
/// Names that collide with common std container/string members are skipped:
/// without type resolution a call to std::map::emplace is indistinguishable
/// from PacketPool::emplace, and flagging every container insert would bury
/// the signal.  Discarded Result<T> on those names is still caught — by the
/// compiler, since Result is a [[nodiscard]] class type (-Wunused-result).
const std::unordered_set<std::string> kStdMemberNames = {
    "emplace", "replace", "insert", "erase",  "swap",  "merge",
    "find",    "count",   "at",     "get",    "reset", "release",
    "extract", "assign",  "substr", "c_str"};

/// Collects into `names` the must-check function names, and into `plain`
/// every name that is *also* declared somewhere with an unannotated return
/// type.  The caller subtracts: a name shared between, say, an app's
/// `Result<std::size_t> poll()` and a driver's `std::size_t poll()` is
/// ambiguous at token level, and a gate must not cry wolf — ambiguous names
/// are left to the compiler's own [[nodiscard]] diagnostics.
void collect_nodiscard_names(const SourceFile& sf,
                             std::unordered_set<std::string>& names,
                             std::unordered_set<std::string>& plain) {
  const auto& t = sf.lex.tokens;
  // Declaration-shaped sites: identifier followed by '(' and preceded by a
  // type-ish token.  If nothing in the preceding few tokens says nodiscard
  // or Result, the name's result is droppable somewhere in the tree.
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier || t[i + 1].text != "(") continue;
    const Token& p = t[i - 1];
    bool typeish = (p.kind == TokKind::identifier &&
                    p.text != "return" && p.text != "co_return" &&
                    p.text != "throw" && p.text != "else" &&
                    p.text != "do" && p.text != "case") ||
                   p.text == "*" || p.text == "&" || p.text == ">";
    if (!typeish) continue;
    bool annotated = false;
    for (std::size_t k = i, steps = 0; k > 0 && steps < 14; --k, ++steps) {
      const std::string& s = t[k - 1].text;
      if (s == ";" || s == "{" || s == "}" || s == "(") break;
      if (s == "nodiscard" || s == "Result") {
        annotated = true;
        break;
      }
    }
    if (!annotated) plain.insert(t[i].text);
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "[[" && t[i + 1].text == "nodiscard") {
      // Take the next identifier directly followed by '(' before the
      // declaration ends; skip over the return type (template args
      // included).
      for (std::size_t j = i + 2; j < t.size() && j < i + 48; ++j) {
        const std::string& s = t[j].text;
        if (s == ";" || s == "{" || s == "}" || s == "=") break;
        if (t[j].kind == TokKind::identifier && s != "operator" &&
            j + 1 < t.size() && t[j + 1].text == "(") {
          if (!kStdMemberNames.count(s)) names.insert(s);
          break;
        }
      }
    }
    if (t[i].kind == TokKind::identifier && t[i].text == "Result" &&
        t[i + 1].text == "<") {
      int depth = 1;
      std::size_t j = i + 2;
      for (; j < t.size() && depth > 0; ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") --depth;
        if (t[j].text == ">>") depth -= 2;
        if (t[j].text == ";" || t[j].text == "{") break;
      }
      if (depth <= 0 && j + 1 < t.size() &&
          t[j].kind == TokKind::identifier && t[j].text != "operator" &&
          t[j + 1].text == "(" && !kStdMemberNames.count(t[j].text))
        names.insert(t[j].text);
    }
  }
}

/// Pass B: a call to a collected name whose value dies as a bare
/// expression-statement.  Token-level heuristic: walk back over the
/// member/qualifier chain (a.b->c::name) to the statement context; the
/// contexts that discard are statement starts and single-statement control
/// bodies.  (void)-casts and std::ignore assignments read as uses.
void rule_discarded_result(const SourceFile& sf,
                           const std::unordered_set<std::string>& names,
                           std::vector<Finding>& out) {
  const auto& t = sf.lex.tokens;
  // Bracket matcher for jumping over (...) and [...] while walking back.
  std::vector<int> match(t.size(), -1);
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[") stack.push_back(i);
      else if ((s == ")" || s == "]") && !stack.empty()) {
        match[i] = static_cast<int>(stack.back());
        match[stack.back()] = static_cast<int>(i);
        stack.pop_back();
      }
    }
  }
  auto is_control = [&](int open) {
    return open > 0 && t[open - 1].kind == TokKind::identifier &&
           (t[open - 1].text == "if" || t[open - 1].text == "while" ||
            t[open - 1].text == "for" || t[open - 1].text == "switch");
  };
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier || !names.count(t[i].text)) continue;
    if (t[i + 1].text != "(") continue;
    // Walk back over the call chain to find what precedes the statement.
    std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) - 1;
    while (j >= 0) {
      const std::string& s = t[j].text;
      if (s == "." || s == "->" || s == "::") {
        --j;
        if (j >= 0 && (t[j].kind == TokKind::identifier ||
                       t[j].text == ")" || t[j].text == "]")) {
          if (t[j].kind != TokKind::identifier && match[j] >= 0)
            j = match[j];  // jump over (...) / [...]
          --j;
          continue;
        }
        break;
      }
      break;
    }
    bool discarded = false;
    if (j < 0) {
      discarded = true;  // file starts with the statement (fixtures)
    } else {
      const Token& prev = t[j];
      if (prev.kind == TokKind::preproc) discarded = true;
      else if (prev.text == ";" || prev.text == "{" || prev.text == "}" ||
               prev.text == "else" || prev.text == "do")
        discarded = true;
      else if (prev.text == ")" && match[j] >= 0 && is_control(match[j]))
        discarded = true;
    }
    if (discarded)
      report(out, sf, t[i].line, "discarded-result",
             "result of " + t[i].text +
                 "() is discarded — check it, log it, or assign to "
                 "std::ignore with a comment saying why");
  }
}

// --- include-cycle ---------------------------------------------------------

std::vector<std::string> includes_of(const SourceFile& sf) {
  std::vector<std::string> out;
  static const std::regex re(R"(#\s*include\s+\"([^\"]+)\")");
  for (const Token& tok : sf.lex.tokens) {
    if (tok.kind != TokKind::preproc) continue;
    std::smatch m;
    if (std::regex_search(tok.text, m, re)) out.push_back(m[1].str());
  }
  return out;
}

void rule_include_cycle(const std::vector<SourceFile>& files,
                        const fs::path& root, std::vector<Finding>& out) {
  // Graph over headers only (a cycle must pass exclusively through them).
  std::map<std::string, const SourceFile*> by_canonical;
  for (const auto& sf : files) {
    if (!sf.is_header) continue;
    std::error_code ec;
    fs::path canon = fs::weakly_canonical(sf.path, ec);
    by_canonical[(ec ? sf.path : canon).generic_string()] = &sf;
  }
  std::map<std::string, std::vector<std::string>> edges;
  for (const auto& [canon, sf] : by_canonical) {
    for (const std::string& inc : includes_of(*sf)) {
      for (const fs::path& cand :
           {root / "src" / inc, sf->path.parent_path() / inc}) {
        std::error_code ec;
        fs::path canon_inc = fs::weakly_canonical(cand, ec);
        if (ec) continue;
        std::string key = canon_inc.generic_string();
        if (by_canonical.count(key)) {
          edges[canon].push_back(key);
          break;
        }
      }
    }
  }
  // Iterative DFS with colour marking; report each cycle once.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    colour[u] = 1;
    stack.push_back(u);
    for (const std::string& v : edges[u]) {
      if (colour[v] == 1) {
        auto it = std::find(stack.begin(), stack.end(), v);
        std::string cycle;
        for (; it != stack.end(); ++it) {
          cycle += by_canonical[*it]->display;
          cycle += " -> ";
        }
        cycle += by_canonical[v]->display;
        if (reported.insert(cycle).second) {
          const SourceFile* sf = by_canonical[v];
          out.push_back(Finding{sf->display, 1, "include-cycle",
                                "header include cycle: " + cycle});
        }
      } else if (colour[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    colour[u] = 2;
  };
  for (const auto& [node, _] : by_canonical)
    if (colour[node] == 0) dfs(node);
}

// --- driver ----------------------------------------------------------------

bool lintable(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool load(const fs::path& p, const fs::path& root,
          std::vector<SourceFile>& files) {
  std::string text;
  if (!read_file(p, text)) {
    std::fprintf(stderr, "yanc-lint: cannot read %s\n", p.string().c_str());
    return false;
  }
  SourceFile sf;
  sf.path = p;
  sf.display = display_path(p, root);
  sf.lex = yanclint::lex(text);
  std::string ext = p.extension().string();
  sf.is_header = ext == ".hpp" || ext == ".h";
  files.push_back(std::move(sf));
  return true;
}

bool gather(const fs::path& target, const fs::path& root,
            std::vector<SourceFile>& files) {
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(target, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && lintable(it->path()))
        paths.push_back(it->path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths)
      if (!load(p, root, files)) return false;
    return true;
  }
  if (fs::is_regular_file(target, ec)) return load(target, root, files);
  std::fprintf(stderr, "yanc-lint: no such file or directory: %s\n",
               target.string().c_str());
  return false;
}

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const fs::path& root, bool all_scopes) {
  std::vector<Finding> findings;
  std::unordered_set<std::string> nodiscard_names, plain_names;
  for (const auto& sf : files)
    collect_nodiscard_names(sf, nodiscard_names, plain_names);
  for (const auto& name : plain_names) nodiscard_names.erase(name);
  for (const auto& sf : files) {
    if (all_scopes || in_lock_scope(sf.display)) {
      rule_raw_mutex(sf, findings);
      rule_manual_lock(sf, findings);
    }
    rule_banned_function(sf, findings);
    rule_pragma_once(sf, findings);
    rule_span_wait(sf, findings);
    rule_discarded_result(sf, nodiscard_names, findings);
  }
  rule_include_cycle(files, root, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

int self_test(const fs::path& fixtures) {
  static const std::regex name_re(R"(^([a-z_]+?)_(bad|ok)[0-9]*$)");
  int failures = 0;
  int cases = 0;
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(fixtures))
    entries.push_back(e.path());
  std::sort(entries.begin(), entries.end());
  for (const auto& entry : entries) {
    std::string stem = fs::is_directory(entry)
                           ? entry.filename().string()
                           : entry.stem().string();
    std::smatch m;
    if (!std::regex_match(stem, m, name_re)) {
      std::fprintf(stderr, "self-test: unrecognised fixture name %s\n",
                   stem.c_str());
      ++failures;
      continue;
    }
    std::string rule = m[1].str();
    std::replace(rule.begin(), rule.end(), '_', '-');
    bool expect_findings = m[2].str() == "bad";
    std::vector<SourceFile> files;
    if (!gather(entry, fixtures, files)) {
      ++failures;
      continue;
    }
    auto findings = run_rules(files, fixtures, /*all_scopes=*/true);
    int matching = 0;
    for (const auto& f : findings)
      if (f.rule == rule) ++matching;
    bool pass = expect_findings ? matching > 0 : matching == 0;
    ++cases;
    if (!pass) {
      ++failures;
      std::fprintf(stderr, "self-test FAIL %s: expected %s finding(s) of %s, got %d\n",
                   stem.c_str(), expect_findings ? ">=1" : "0", rule.c_str(),
                   matching);
      for (const auto& f : findings)
        std::fprintf(stderr, "  %s:%d: [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.message.c_str());
    }
  }
  std::printf("yanc-lint self-test: %d case(s), %d failure(s)\n", cases,
              failures);
  return failures == 0 && cases > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  bool all_scopes = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--self-test") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: yanc-lint --self-test <fixtures-dir>\n");
        return 2;
      }
      return self_test(argv[i + 1]);
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "yanc-lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--all-scopes") {
      all_scopes = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: yanc-lint [--root DIR] [--all-scopes] [paths...]\n"
          "       yanc-lint --self-test FIXTURES_DIR\n"
          "paths default to src tests bench (relative to --root).\n");
      return 0;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) targets = {"src", "tests", "bench"};

  std::vector<SourceFile> files;
  for (const std::string& t : targets) {
    fs::path p(t);
    if (p.is_relative()) p = root / p;
    if (!gather(p, root, files)) return 2;
  }
  auto findings = run_rules(files, root, all_scopes);
  for (const auto& f : findings)
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  if (!findings.empty()) {
    std::printf("yanc-lint: %zu finding(s) in %zu file(s) scanned\n",
                findings.size(), files.size());
    return 1;
  }
  return 0;
}
