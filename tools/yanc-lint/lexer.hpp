// Minimal C++ tokenizer for yanc-lint.
//
// Deliberately NOT a compiler frontend: yanc-lint is hermetic (no libclang,
// no include resolution, no preprocessing) so it can gate CI on any machine
// the cpp toolchain builds on.  The rules it serves need exactly this much:
// identifiers, punctuation, literals skipped as opaque blobs, preprocessor
// directives captured whole, and comments retained per line so suppression
// annotations (// yanc-lint: allow(<rule>) <why>) can be honoured.
#pragma once

#include <cctype>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace yanclint {

enum class TokKind {
  identifier,  // identifiers and keywords, undistinguished
  number,
  string_lit,  // "..."/'...'/R"(...)" — content dropped
  punct,       // one punctuator character sequence, e.g. "::", "->", "["
  preproc,     // one whole preprocessor directive (continuations folded)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  // line -> concatenated comment text appearing on that line (both // and
  // /* */ forms); the suppression scanner reads this.
  std::unordered_map<int, std::string> comments;
  int last_line = 1;
};

inline LexedFile lex(std::string_view src) {
  LexedFile out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments — recorded, not tokenized.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      out.comments[line] += std::string(src.substr(start, i - start));
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      int start_line = line;
      std::size_t start = i;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) i += 2;
      // A block comment annotates every line it touches.
      std::string text(src.substr(start, i - start));
      for (int l = start_line; l <= line; ++l) out.comments[l] += text;
      continue;
    }
    // Preprocessor directive: swallow to end of line, folding backslash
    // continuations, and emit as one token.
    if (c == '#') {
      int start_line = line;
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          text += ' ';
          continue;
        }
        if (src[i] == '\n') break;
        // Comments end a directive for our purposes.
        if (src[i] == '/' && (peek(1) == '/' || peek(1) == '*')) break;
        text += src[i++];
      }
      out.tokens.push_back(Token{TokKind::preproc, text, start_line});
      continue;
    }
    // Raw string literal: R"delim(...)delim", with or without an encoding
    // prefix (LR, u8R, uR, UR — the identifier branch below routes those
    // here).  Consumed as one opaque token; the body is never escaped, so
    // the ordinary quote scanner must not see it.
    auto lex_raw_string = [&](std::size_t lit_start) -> bool {
      // i points at the opening '"' of R"...; lit_start at the prefix.
      std::size_t delim_start = i + 1;
      std::size_t paren = src.find('(', delim_start);
      if (paren == std::string_view::npos) return false;
      std::string close =
          ")" + std::string(src.substr(delim_start, paren - delim_start)) +
          "\"";
      std::size_t end = src.find(close, paren + 1);
      int start_line = line;
      std::size_t stop =
          end == std::string_view::npos ? n : end + close.size();
      for (std::size_t k = lit_start; k < stop; ++k)
        if (src[k] == '\n') ++line;
      i = stop;
      out.tokens.push_back(Token{TokKind::string_lit, "R\"...\"", start_line});
      return true;
    };
    if (c == 'R' && peek(1) == '"') {
      std::size_t lit_start = i;
      ++i;  // onto the '"'
      if (lex_raw_string(lit_start)) continue;
      i = lit_start;  // malformed (no '('): fall through to other branches
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      int start_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        else if (src[i] == '\n') ++line;  // unterminated; keep counting
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back(Token{TokKind::string_lit,
                                 quote == '"' ? "\"...\"" : "'...'",
                                 start_line});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_'))
        ++i;
      std::string_view id = src.substr(start, i - start);
      // Encoding prefixes glue to the literal that follows.  Without this,
      // LR"(...)" lexes as identifier `LR` plus an ordinary string, and the
      // raw body's unescaped quotes/backslashes corrupt every token after.
      if (i < n && src[i] == '"' &&
          (id == "R" || id == "LR" || id == "u8R" || id == "uR" ||
           id == "UR")) {
        if (lex_raw_string(start)) continue;
      }
      if (i < n && (src[i] == '"' || src[i] == '\'') &&
          (id == "L" || id == "u8" || id == "u" || id == "U")) {
        continue;  // the quote branch consumes the literal next iteration
      }
      out.tokens.push_back(Token{TokKind::identifier, std::string(id), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < n) {
        char d = src[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.') {
          ++i;
          continue;
        }
        // Digit separator: a ' inside a number only when flanked by
        // alphanumerics (1'000'000, 0xfff'f).  A bare trailing ' belongs
        // to the next token (a char literal), not to this number.
        if (d == '\'' && i + 1 < n &&
            std::isalnum(static_cast<unsigned char>(src[i + 1]))) {
          ++i;
          continue;
        }
        break;
      }
      out.tokens.push_back(
          Token{TokKind::number, std::string(src.substr(start, i - start)),
                line});
      continue;
    }
    // Punctuation: greedily match the few multi-char operators the rules
    // care about; everything else is a single character.
    static constexpr std::string_view kMulti[] = {"->*", "<<=", ">>=", "...",
                                                  "::", "->", "[[", "]]",
                                                  "<<", ">>", "<=", ">=",
                                                  "==", "!=", "&&", "||",
                                                  "+=", "-=", "*=", "/=",
                                                  "++", "--"};
    std::string text(1, c);
    for (std::string_view m : kMulti) {
      if (src.substr(i, m.size()) == m) {
        text = std::string(m);
        break;
      }
    }
    i += text.size();
    out.tokens.push_back(Token{TokKind::punct, std::move(text), line});
  }
  out.last_line = line;
  return out;
}

}  // namespace yanclint
