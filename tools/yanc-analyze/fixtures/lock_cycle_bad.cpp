// Two paths take ranks a and b in opposite orders: the classic ABBA
// deadlock.  The analyzer must find it without either path running.
namespace dbg {
enum class Rank { a, b };
}

class Pair {
 public:
  void ab() {
    dbg::LockGuard ga(a_);
    dbg::LockGuard gb(b_);
  }
  void ba() {
    dbg::LockGuard gb(b_);
    dbg::LockGuard ga(a_);
  }

 private:
  dbg::Mutex<dbg::Rank::a> a_;
  dbg::Mutex<dbg::Rank::b> b_;
};
