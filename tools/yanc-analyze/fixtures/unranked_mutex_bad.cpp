// A raw standard mutex outside dbg/: a lock the rank graph cannot see.
class Legacy {
  std::mutex m_;
};
