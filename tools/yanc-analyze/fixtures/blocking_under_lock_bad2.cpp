// The blocking call hides one level down: Queue::pop waits on a condvar,
// and Outer::drain calls it while holding rank a.  Only the may-block
// fixpoint over the call graph sees it.
namespace dbg {
enum class Rank { a, b };
}

class Queue {
 public:
  void pop() {
    dbg::UniqueLock lk(m_);
    cv_.wait(lk);
  }

 private:
  dbg::Mutex<dbg::Rank::b> m_;
  dbg::CondVar cv_;
};

class Outer {
 public:
  void drain() {
    dbg::LockGuard g(a_);
    q_.pop();
  }

 private:
  dbg::Mutex<dbg::Rank::a> a_;
  Queue q_;
};
