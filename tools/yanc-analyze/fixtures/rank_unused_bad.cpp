// Rank b is declared but no Mutex/SharedMutex ever instantiates it:
// dead rank or missing lock.
namespace dbg {
enum class Rank { a, b };
}

class Only {
  dbg::Mutex<dbg::Rank::a> a_;
};
