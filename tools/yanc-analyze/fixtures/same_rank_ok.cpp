// Sequential (non-nested) acquisitions of one rank are fine: the first
// guard's scope closes before the second opens.
namespace dbg {
enum class Rank { a };
}

class Sequential {
 public:
  void one_then_other() {
    {
      dbg::LockGuard g1(first_);
    }
    {
      dbg::LockGuard g2(second_);
    }
  }

 private:
  dbg::Mutex<dbg::Rank::a> first_;
  dbg::Mutex<dbg::Rank::a> second_;
};
