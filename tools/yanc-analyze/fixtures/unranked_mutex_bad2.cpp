// Raw condition variables are just as invisible to the graph as raw
// mutexes: their waits cannot be checked against held ranks.
class Legacy {
  std::condition_variable cv_;
  std::shared_timed_mutex m_;
};
