// The inversion hides behind a call: helper() acquires b, and ba() takes
// b directly before re-acquiring a.  Only the transitive closure over the
// call graph sees the a->b / b->a cycle.
namespace dbg {
enum class Rank { a, b };
}

class Pair {
 public:
  void ab() {
    dbg::LockGuard ga(a_);
    helper();
  }
  void ba() {
    dbg::LockGuard gb(b_);
    dbg::LockGuard ga(a_);
  }

 private:
  void helper() { dbg::LockGuard gb(b_); }

  dbg::Mutex<dbg::Rank::a> a_;
  dbg::Mutex<dbg::Rank::b> b_;
};
