// A guard over an expression the variable->rank map cannot resolve: the
// map must stay total, so this is a finding, not a silent skip.
class Box {
 public:
  void touch() {
    dbg::LockGuard g(mystery_mu());
  }
};
