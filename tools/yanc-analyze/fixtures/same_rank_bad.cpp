// Two locks of one rank held at once: forbidden (it would hide A-B/B-A
// inversions between instances of the rank).
namespace dbg {
enum class Rank { a };
}

class Twice {
 public:
  void both() {
    dbg::LockGuard g1(first_);
    dbg::LockGuard g2(second_);
  }

 private:
  dbg::Mutex<dbg::Rank::a> first_;
  dbg::Mutex<dbg::Rank::a> second_;
};
