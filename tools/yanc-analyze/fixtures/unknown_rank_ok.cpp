// Every resolvable guard shape: member, parameter, nested member, and a
// rank-returning accessor.
namespace dbg {
enum class Rank { a, b };
}

class Inner {
 public:
  dbg::Mutex<dbg::Rank::b> mu;
};

class Box {
 public:
  void direct() { dbg::LockGuard g(mu_); }
  void through(dbg::Mutex<dbg::Rank::a>& m) { dbg::LockGuard g(m); }
  void nested() { dbg::LockGuard g(inner_.mu); }
  void accessor() { dbg::LockGuard g(shard_of(0)); }

 private:
  dbg::Mutex<dbg::Rank::a>& shard_of(int i) { return mu_; }

  dbg::Mutex<dbg::Rank::a> mu_;
  Inner inner_;
};
