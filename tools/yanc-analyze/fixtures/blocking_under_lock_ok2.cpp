// Dropping the lock before the blocking call is the fix the rule pushes
// toward; guard.unlock() must be modeled as a release.
namespace dbg {
enum class Rank { a };
}

class Careful {
 public:
  void nap() {
    dbg::UniqueLock g(a_);
    g.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

 private:
  dbg::Mutex<dbg::Rank::a> a_;
};
