// Doc table and enum agree on names, order, and count.
namespace dbg {
enum class Rank { vfs, watch, stats };
}

class Use {
  dbg::Mutex<dbg::Rank::vfs> a_;
  dbg::Mutex<dbg::Rank::watch> b_;
  dbg::Mutex<dbg::Rank::stats> c_;
};
