// A reserved rank with a justified waiver is allowed (the real tree
// reserves dist_transport and driver this way).
namespace dbg {
enum class Rank {
  a,
  // yanc-analyze: allow(rank-unused) reserved for the single-threaded layer
  b,
};
}

class Only {
  dbg::Mutex<dbg::Rank::a> a_;
};
