// A condvar wait releases the guard passed to it: waiting with only that
// lock held is the intended pattern, not a finding.
namespace dbg {
enum class Rank { b };
}

class Queue {
 public:
  void pop() {
    dbg::UniqueLock lk(m_);
    cv_.wait(lk);
  }

 private:
  dbg::Mutex<dbg::Rank::b> m_;
  dbg::CondVar cv_;
};
