// The ranked wrappers are the sanctioned spelling.
namespace dbg {
enum class Rank { a };
}

class Modern {
  dbg::Mutex<dbg::Rank::a> m_;
  dbg::CondVar cv_;
};
