// Policy-blocking callee: Channel::send backpressures on a bounded queue
// in the real tree, so it is seeded as blocking even though this mini
// body contains no wait.
namespace dbg {
enum class Rank { a };
}

class Channel {
 public:
  void send() {}
};

class Fan {
 public:
  void push() {
    dbg::LockGuard g(a_);
    ch_.send();
  }

 private:
  dbg::Mutex<dbg::Rank::a> a_;
  Channel ch_;
};
