// Every declared rank has an instantiation (one mutex, one shared).
namespace dbg {
enum class Rank { a, b };
}

class Both {
  dbg::Mutex<dbg::Rank::a> a_;
  dbg::SharedMutex<dbg::Rank::b> b_;
};
