// Both paths agree on the order a -> b: no cycle, nothing to report.
namespace dbg {
enum class Rank { a, b };
}

class Pair {
 public:
  void one() {
    dbg::LockGuard ga(a_);
    dbg::LockGuard gb(b_);
  }
  void two() {
    dbg::LockGuard ga(a_);
    helper();
  }

 private:
  void helper() { dbg::LockGuard gb(b_); }

  dbg::Mutex<dbg::Rank::a> a_;
  dbg::Mutex<dbg::Rank::b> b_;
};
