// Sleeping while holding a ranked lock: every other thread that wants
// rank a is parked for the duration.
namespace dbg {
enum class Rank { a };
}

class Sleepy {
 public:
  void nap() {
    dbg::LockGuard g(a_);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

 private:
  dbg::Mutex<dbg::Rank::a> a_;
};
