// yanc-analyze symbol layer: grows the yanc-lint tokenizer into the
// lightweight program model the static lock-order pass runs on.
//
// Pass 1 (this header) walks every file's token stream once and harvests:
//   * classes/structs: name, base classes, member variables with their
//     declared types — specifically which members are ranked mutexes
//     (dbg::Mutex<Rank::X>), condition variables (dbg::CondVar), or member
//     lock guards (dbg::UniqueLock<...> held for the object's lifetime,
//     which makes the class a *scope guard* — MemFs::MutationScope);
//   * type aliases (using X = ...), resolved transitively so
//     `WatchQueuePtr` reads as `WatchQueue`;
//   * the dbg::Rank enum, in declaration order;
//   * every function/method *definition*: qualified name, parameter
//     types, body token range, constructor init-list acquisitions, and —
//     for accessors like MemFs::shard_of — a ranked-mutex return type.
//
// Deliberately NOT a compiler frontend, same contract as yanc-lint: no
// preprocessing, no overload resolution, no templates.  The consumer
// (yanc_analyze.cpp) compensates with the same ambiguity-aware discipline
// as the discarded-result lint rule: a name that cannot be resolved to
// exactly one plausible definition set is skipped, never guessed at.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "../yanc-lint/lexer.hpp"

namespace yancanalyze {

using yanclint::LexedFile;
using yanclint::TokKind;
using yanclint::Token;

struct SourceFile {
  std::string path;     // as opened
  std::string display;  // relative to root, '/'-separated
  LexedFile lex;
  bool is_header = false;
  std::vector<int> brace_match;  // token index of matching {/} (-1 if none)
  std::vector<int> paren_match;  // token index of matching (/) (-1 if none)
};

struct MemberVar {
  std::vector<std::string> type_tokens;  // declared type, as written
  std::string mutex_rank;   // non-empty: ranked dbg::Mutex/SharedMutex member
  std::string guard_rank;   // non-empty: member lock guard (UniqueLock<...>)
  bool condvar = false;
  int line = 0;
};

struct ClassInfo {
  std::string name;  // short name (MutationScope)
  std::string qual;  // qualified (MemFs::MutationScope)
  const SourceFile* sf = nullptr;
  int line = 0;
  std::vector<std::string> bases;  // short names as written (MemFs)
  std::map<std::string, MemberVar> members;
  std::map<std::string, int> method_decls;  // declared-or-defined methods
  std::map<std::string, std::string> method_return_rank;
  // Ranks of member guards: constructing an instance acquires these and
  // holds them until destruction (the scope-guard pattern).
  std::vector<std::string> scope_guard_ranks;
};

struct FuncDef {
  std::string cls;   // short class name, "" for free functions
  std::string name;  // may start with '~'
  const SourceFile* sf = nullptr;
  int line = 0;
  std::size_t lparen = 0;     // token index of the parameter list '('
  std::size_t body_open = 0;  // token index of '{'
  std::size_t body_close = 0;
  std::map<std::string, std::vector<std::string>> params;  // name -> type
  // Constructor init-list entries that acquire a ranked mutex through a
  // member guard: (rank, line).
  std::vector<std::pair<std::string, int>> init_acquires;

  // Filled by the analysis passes (yanc_analyze.cpp):
  std::set<std::string> may_acquire;  // ranks possibly acquired during call
  bool may_block = false;             // may park the calling thread
  bool visited = false;
};

struct Index {
  std::deque<ClassInfo> classes;
  std::map<std::string, std::vector<ClassInfo*>> classes_by_name;
  std::map<std::string, std::vector<std::string>> aliases;
  std::deque<FuncDef> funcs;
  std::multimap<std::pair<std::string, std::string>, FuncDef*> funcs_by_cls;
  std::multimap<std::string, FuncDef*> funcs_by_name;
  // dbg::Rank enum, in declaration order, with the line each enumerator
  // was declared on (for rank-unused reporting and doc diffing).
  std::vector<std::string> rank_names;
  std::map<std::string, int> rank_lines;
  const SourceFile* rank_file = nullptr;
  // Ranks that appear as a Mutex<Rank::X>/SharedMutex<Rank::X> template
  // argument anywhere in the scanned set.
  std::set<std::string> instantiated_ranks;

  ClassInfo* class_named(const std::string& short_name,
                         const ClassInfo* context) const {
    auto it = classes_by_name.find(short_name);
    if (it == classes_by_name.end() || it->second.empty()) return nullptr;
    if (it->second.size() == 1) return it->second.front();
    // Ambiguous short name (several nested `Node` structs): prefer the one
    // nested inside the context class, else give up rather than guess.
    if (context) {
      for (ClassInfo* c : it->second)
        if (c->qual == context->qual + "::" + short_name) return c;
    }
    return nullptr;
  }

  const MemberVar* find_member(const ClassInfo* cls, const std::string& name,
                               const ClassInfo** owner = nullptr,
                               int depth = 0) const {
    if (!cls || depth > 6) return nullptr;
    auto it = cls->members.find(name);
    if (it != cls->members.end()) {
      if (owner) *owner = cls;
      return &it->second;
    }
    for (const std::string& base : cls->bases)
      if (const MemberVar* m = find_member(class_named(base, nullptr), name,
                                           owner, depth + 1))
        return m;
    return nullptr;
  }

  bool class_derives_from(const ClassInfo* derived, const ClassInfo* base,
                          int depth = 0) const {
    if (!derived || depth > 6) return false;
    for (const std::string& b : derived->bases) {
      ClassInfo* bc = class_named(b, nullptr);
      if (bc == base || class_derives_from(bc, base, depth + 1)) return true;
    }
    return false;
  }
};

namespace detail {

inline bool is_ident(const Token& t) { return t.kind == TokKind::identifier; }

inline const std::set<std::string>& control_keywords() {
  static const std::set<std::string> k = {
      "if",     "while", "for",    "switch", "catch",  "return",
      "sizeof", "else",  "do",     "case",   "static_assert",
      "alignof", "decltype", "new", "delete", "throw", "assert"};
  return k;
}

/// Names that must never be alias-expanded: lockdep.hpp's release branch
/// defines `using Mutex = std::mutex;` etc., and expanding through those
/// would erase the very spellings the rank scanner keys on.
inline bool reserved_type_name(const std::string& t) {
  return t == "Mutex" || t == "SharedMutex" || t == "LockGuard" ||
         t == "UniqueLock" || t == "SharedLock" || t == "CondVar" ||
         t == "Rank";
}

/// Expands alias chains: `WatchQueuePtr` -> tokens of its definition.
/// Bounded depth; cycles terminate.
inline void expand_type_tokens(const Index& index,
                               const std::vector<std::string>& in,
                               std::vector<std::string>& out, int depth = 0) {
  for (const std::string& t : in) {
    auto it = index.aliases.find(t);
    if (it != index.aliases.end() && depth < 4 && !reserved_type_name(t))
      expand_type_tokens(index, it->second, out, depth + 1);
    else
      out.push_back(t);
  }
}

/// Rank named by a Mutex<...Rank::X...>/SharedMutex<...> type spelling,
/// or "" when the tokens name no ranked mutex.
inline std::string rank_of_tokens(const Index& index,
                                  const std::vector<std::string>& raw) {
  std::vector<std::string> toks;
  expand_type_tokens(index, raw, toks);
  bool saw_mutex = false;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i] == "Mutex" || toks[i] == "SharedMutex") saw_mutex = true;
    if (saw_mutex && toks[i] == "Rank" && i + 2 < toks.size() &&
        toks[i + 1] == "::")
      return toks[i + 2];
  }
  return "";
}

inline bool tokens_contain(const std::vector<std::string>& toks,
                           const char* what) {
  for (const auto& t : toks)
    if (t == what) return true;
  return false;
}

/// First project class a type spelling mentions (alias-expanded):
/// `std::vector<WatchQueuePtr>` -> WatchQueue.
inline ClassInfo* class_of_tokens(const Index& index,
                                  const std::vector<std::string>& raw,
                                  const ClassInfo* context) {
  std::vector<std::string> toks;
  expand_type_tokens(index, raw, toks);
  for (const std::string& t : toks)
    if (ClassInfo* c = index.class_named(t, context)) return c;
  return nullptr;
}

}  // namespace detail

/// Computes brace/paren matchings for a lexed file.
inline void compute_matches(SourceFile& sf) {
  const auto& t = sf.lex.tokens;
  sf.brace_match.assign(t.size(), -1);
  sf.paren_match.assign(t.size(), -1);
  std::vector<std::size_t> braces, parens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "{") braces.push_back(i);
    else if (s == "}" && !braces.empty()) {
      sf.brace_match[i] = static_cast<int>(braces.back());
      sf.brace_match[braces.back()] = static_cast<int>(i);
      braces.pop_back();
    } else if (s == "(") parens.push_back(i);
    else if (s == ")" && !parens.empty()) {
      sf.paren_match[i] = static_cast<int>(parens.back());
      sf.paren_match[parens.back()] = static_cast<int>(i);
      parens.pop_back();
    }
  }
}

// --- pass 1: harvest one file into the index -------------------------------

class Harvester {
 public:
  Harvester(const SourceFile& sf, Index& index) : sf_(sf), index_(index) {}

  void run() {
    scan_instantiated_ranks();
    walk(0, sf_.lex.tokens.size(), /*cls=*/nullptr, /*qual_prefix=*/"");
  }

 private:
  const SourceFile& sf_;
  Index& index_;

  const std::vector<Token>& toks() const { return sf_.lex.tokens; }

  void scan_instantiated_ranks() {
    const auto& t = toks();
    for (std::size_t i = 0; i + 4 < t.size(); ++i) {
      if ((t[i].text == "Mutex" || t[i].text == "SharedMutex") &&
          t[i + 1].text == "<") {
        // Template argument list: find Rank::X within the next few tokens.
        for (std::size_t j = i + 2; j < t.size() && j < i + 10; ++j) {
          if (t[j].text == ">" || t[j].text == ";") break;
          if (t[j].text == "Rank" && j + 2 < t.size() &&
              t[j + 1].text == "::" && detail::is_ident(t[j + 2]))
            index_.instantiated_ranks.insert(t[j + 2].text);
        }
      }
    }
  }

  /// Splits [begin, end) on top-level `,` (paren/angle/brace aware).
  std::vector<std::pair<std::size_t, std::size_t>> split_commas(
      std::size_t begin, std::size_t end) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    int paren = 0, angle = 0, brace = 0;
    std::size_t start = begin;
    for (std::size_t i = begin; i < end; ++i) {
      const std::string& s = toks()[i].text;
      if (s == "(" || s == "[") ++paren;
      else if (s == ")" || s == "]") --paren;
      else if (s == "{") ++brace;
      else if (s == "}") --brace;
      else if (s == "<") ++angle;
      else if (s == ">") angle = angle > 0 ? angle - 1 : 0;
      else if (s == ">>") angle = angle > 1 ? angle - 2 : 0;
      else if (s == "," && paren == 0 && angle == 0 && brace == 0) {
        if (i > start) out.emplace_back(start, i);
        start = i + 1;
      }
    }
    if (end > start) out.emplace_back(start, end);
    return out;
  }

  /// Harvests the enumerators of `enum class Rank` bodies.
  void harvest_rank_enum(std::size_t body_open, std::size_t body_close) {
    bool take = true;  // at '{' or just after ','
    for (std::size_t i = body_open + 1; i < body_close; ++i) {
      const Token& t = toks()[i];
      if (t.text == ",") { take = true; continue; }
      if (take && detail::is_ident(t)) {
        index_.rank_names.push_back(t.text);
        index_.rank_lines[t.text] = t.line;
        take = false;
      } else if (t.text == "=") {
        take = false;  // skip explicit values until the next comma
      }
    }
    index_.rank_file = &sf_;
  }

  /// Member-variable declaration inside a class body: [begin, end) is the
  /// segment up to (not including) ';'.  Returns quietly on anything it
  /// cannot shape-match.
  void harvest_member_var(ClassInfo& cls, std::size_t begin, std::size_t end) {
    // Strip a trailing initializer: `= ...` or `{...}` at top level.
    int paren = 0, angle = 0;
    std::size_t stop = end;
    for (std::size_t i = begin; i < end; ++i) {
      const std::string& s = toks()[i].text;
      if (s == "(" || s == "[") ++paren;
      else if (s == ")" || s == "]") --paren;
      else if (s == "<") ++angle;
      else if (s == ">") angle = angle > 0 ? angle - 1 : 0;
      else if (s == ">>") angle = angle > 1 ? angle - 2 : 0;
      else if ((s == "=" || s == "{") && paren == 0 && angle == 0) {
        stop = i;
        break;
      }
    }
    if (stop <= begin) return;
    // Name: last identifier, skipping a trailing array extent.
    std::size_t k = stop;
    while (k > begin && (toks()[k - 1].text == "]" ||
                         toks()[k - 1].text == "[" ||
                         toks()[k - 1].kind == TokKind::number))
      --k;
    if (k == begin || !detail::is_ident(toks()[k - 1])) return;
    const Token& name_tok = toks()[k - 1];
    std::vector<std::string> type;
    for (std::size_t i = begin; i + 1 < k; ++i) type.push_back(toks()[i].text);
    if (type.empty()) return;
    MemberVar mv;
    mv.type_tokens = type;
    mv.line = name_tok.line;
    mv.mutex_rank = detail::rank_of_tokens(index_, type);
    if (mv.mutex_rank.empty()) {
      // keep it as a plain member
    } else if (detail::tokens_contain(type, "UniqueLock") ||
               detail::tokens_contain(type, "LockGuard") ||
               detail::tokens_contain(type, "SharedLock")) {
      mv.guard_rank = mv.mutex_rank;
      mv.mutex_rank.clear();
      cls.scope_guard_ranks.push_back(mv.guard_rank);
    }
    if (detail::tokens_contain(type, "CondVar") ||
        detail::tokens_contain(type, "condition_variable") ||
        detail::tokens_contain(type, "condition_variable_any"))
      mv.condvar = true;
    cls.members[name_tok.text] = std::move(mv);
  }

  /// Parameter list [lparen+1, rparen): name -> type tokens.
  void harvest_params(FuncDef& fn, std::size_t lparen, std::size_t rparen) {
    for (auto [b, e] : split_commas(lparen + 1, rparen)) {
      // Drop default argument.
      int paren = 0, angle = 0;
      std::size_t stop = e;
      for (std::size_t i = b; i < e; ++i) {
        const std::string& s = toks()[i].text;
        if (s == "(") ++paren;
        else if (s == ")") --paren;
        else if (s == "<") ++angle;
        else if (s == ">") angle = angle > 0 ? angle - 1 : 0;
        else if (s == "=" && paren == 0 && angle == 0) { stop = i; break; }
      }
      if (stop <= b || !detail::is_ident(toks()[stop - 1])) continue;
      std::vector<std::string> type;
      for (std::size_t i = b; i + 1 < stop; ++i)
        type.push_back(toks()[i].text);
      if (!type.empty()) fn.params[toks()[stop - 1].text] = std::move(type);
    }
  }

  /// Constructor init list [begin, end): record member-guard acquisitions,
  /// e.g. MutationScope's `lock_(fs.mu_)`.
  void harvest_init_list(FuncDef& fn, ClassInfo* cls, std::size_t begin,
                         std::size_t end) {
    if (!cls) return;
    for (auto [b, e] : split_commas(begin, end)) {
      if (e - b < 3 || !detail::is_ident(toks()[b])) continue;
      const std::string& member = toks()[b].text;
      auto it = cls->members.find(member);
      if (it == cls->members.end() || it->second.guard_rank.empty()) continue;
      fn.init_acquires.emplace_back(it->second.guard_rank, toks()[b].line);
    }
  }

  /// Walks [begin, end) at one scope level.  `cls` non-null inside a class
  /// body.  Function and enum bodies are skipped (recorded, not descended).
  void walk(std::size_t begin, std::size_t end, ClassInfo* cls,
            const std::string& qual_prefix) {
    std::size_t seg = begin;
    for (std::size_t i = begin; i < end; ++i) {
      const std::string& s = toks()[i].text;
      if (s == ";") {
        if (cls) harvest_class_decl(*cls, seg, i);
        else harvest_ns_decl(seg, i);
        seg = i + 1;
        continue;
      }
      if (detail::is_ident(toks()[i]) &&
          (s == "public" || s == "private" || s == "protected") &&
          i + 1 < end && toks()[i + 1].text == ":") {
        seg = i + 2;
        ++i;
        continue;
      }
      if (s != "{") continue;
      int close = sf_.brace_match[i];
      std::size_t body_close =
          close < 0 ? end : static_cast<std::size_t>(close);
      classify_and_descend(seg, i, body_close, cls, qual_prefix);
      i = body_close;
      seg = body_close + 1;
    }
  }

  void classify_and_descend(std::size_t seg, std::size_t brace,
                            std::size_t body_close, ClassInfo* cls,
                            const std::string& qual_prefix) {
    // Scan the declaration segment.
    bool has_namespace = false, has_enum = false;
    std::size_t class_kw = SIZE_MAX;
    std::size_t first_paren = SIZE_MAX;
    int paren = 0, angle = 0;
    for (std::size_t i = seg; i < brace; ++i) {
      const std::string& s = toks()[i].text;
      if (s == "(") {
        if (paren == 0 && angle == 0 && first_paren == SIZE_MAX)
          first_paren = i;
        ++paren;
      } else if (s == ")") --paren;
      else if (s == "<") ++angle;
      else if (s == ">") angle = angle > 0 ? angle - 1 : 0;
      else if (s == ">>") angle = angle > 1 ? angle - 2 : 0;
      else if (paren == 0 && angle == 0 && detail::is_ident(toks()[i])) {
        if (s == "namespace") has_namespace = true;
        else if (s == "enum") has_enum = true;
        else if ((s == "class" || s == "struct" || s == "union") &&
                 class_kw == SIZE_MAX && !has_enum)
          class_kw = i;
      }
    }
    if (has_namespace) {
      walk(brace + 1, body_close, nullptr, qual_prefix);
      return;
    }
    if (has_enum) {
      // enum [class] Name [: base] { ... }
      std::string name;
      for (std::size_t i = seg; i < brace; ++i)
        if (detail::is_ident(toks()[i]) && toks()[i].text != "enum" &&
            toks()[i].text != "class" && toks()[i].text != "struct")
          { name = toks()[i].text; break; }
      if (name == "Rank") harvest_rank_enum(brace, body_close);
      return;
    }
    if (class_kw != SIZE_MAX) {
      // class/struct Name [final] [: bases] { ... }
      std::string name;
      std::size_t name_idx = SIZE_MAX;
      for (std::size_t i = class_kw + 1; i < brace; ++i) {
        if (toks()[i].text == ":" || toks()[i].text == "{") break;
        if (detail::is_ident(toks()[i]) && toks()[i].text != "final" &&
            toks()[i].text != "alignas") {
          name = toks()[i].text;
          name_idx = i;
        }
      }
      if (name.empty()) {  // anonymous struct: walk as plain block
        walk(brace + 1, body_close, cls, qual_prefix);
        return;
      }
      index_.classes.push_back(ClassInfo{});
      ClassInfo& ci = index_.classes.back();
      ci.name = name;
      ci.qual = qual_prefix.empty() ? name : qual_prefix + "::" + name;
      ci.sf = &sf_;
      ci.line = toks()[class_kw].line;
      // Bases: after the first top-level ':' that is not '::'.
      for (std::size_t i = name_idx + 1; i < brace; ++i) {
        if (toks()[i].text != ":") continue;
        for (auto [b, e] : split_commas(i + 1, brace)) {
          std::string last;
          for (std::size_t k = b; k < e; ++k) {
            const std::string& bs = toks()[k].text;
            if (detail::is_ident(toks()[k]) && bs != "public" &&
                bs != "protected" && bs != "private" && bs != "virtual")
              last = bs;
            if (bs == "<") break;  // template base: take the template name
          }
          if (!last.empty()) ci.bases.push_back(last);
        }
        break;
      }
      index_.classes_by_name[name].push_back(&ci);
      walk(brace + 1, body_close, &ci, ci.qual);
      return;
    }
    if (first_paren != SIZE_MAX) {
      harvest_function(seg, first_paren, brace, body_close, cls);
      return;
    }
    // Anything else (initializer braces, extern "C", try blocks at odd
    // levels): don't descend — nothing harvestable at this layer.
  }

  void harvest_function(std::size_t seg, std::size_t lparen,
                        std::size_t brace, std::size_t body_close,
                        ClassInfo* cls) {
    // Name tokens immediately before '(': [~]name, optionally qualified.
    std::size_t k = lparen;
    if (k == seg || !detail::is_ident(toks()[k - 1])) return;  // operator etc.
    std::string name = toks()[k - 1].text;
    if (name == "operator") return;
    std::size_t name_idx = k - 1;
    if (detail::control_keywords().count(name)) return;
    if (name_idx > seg && toks()[name_idx - 1].text == "~") name = "~" + name;
    // Qualifiers: A :: B :: name — class is the last qualifier component.
    std::string owner = cls ? cls->name : "";
    std::size_t q = name_idx;
    if (q > seg && toks()[q - 1].text == "~") --q;
    while (q >= seg + 2 && toks()[q - 1].text == "::" &&
           detail::is_ident(toks()[q - 2])) {
      if (owner.empty() || q == name_idx || toks()[q - 1].text == "::")
        owner = toks()[q - 2].text;
      q -= 2;
      break;  // nearest qualifier is the owning class
    }
    int rp = sf_.paren_match[lparen];
    if (rp < 0 || static_cast<std::size_t>(rp) > brace) return;
    auto rparen = static_cast<std::size_t>(rp);

    index_.funcs.push_back(FuncDef{});
    FuncDef& fn = index_.funcs.back();
    fn.cls = owner;
    fn.name = name;
    fn.sf = &sf_;
    fn.line = toks()[name_idx].line;
    fn.lparen = lparen;
    fn.body_open = brace;
    fn.body_close = body_close;
    harvest_params(fn, lparen, rparen);
    // Constructor init list between ')' and '{'.
    if (rparen + 1 < brace && toks()[rparen + 1].text == ":") {
      ClassInfo* owning = index_.class_named(owner, cls);
      harvest_init_list(fn, owning ? owning : cls, rparen + 2, brace);
    }
    index_.funcs_by_cls.emplace(std::make_pair(owner, name), &fn);
    index_.funcs_by_name.emplace(name, &fn);
    if (cls) {
      cls->method_decls.emplace(name, fn.line);
      std::vector<std::string> ret;
      for (std::size_t i = seg; i < name_idx; ++i)
        ret.push_back(toks()[i].text);
      std::string rank = detail::rank_of_tokens(index_, ret);
      if (!rank.empty()) cls->method_return_rank[name] = rank;
    }
  }

  /// Declaration ending in ';' inside a class body: a method declaration,
  /// a member variable, or an alias.
  void harvest_class_decl(ClassInfo& cls, std::size_t seg, std::size_t semi) {
    if (semi <= seg) return;
    if (toks()[seg].text == "using" || toks()[seg].text == "typedef") {
      harvest_alias(seg, semi);
      return;
    }
    if (toks()[seg].text == "friend" || toks()[seg].text == "template" ||
        toks()[seg].text == "static_assert")
      return;
    // Method declaration: identifier directly before a top-level '(' with
    // no '=' before it (which would make it an initialized variable).
    int paren = 0, angle = 0;
    for (std::size_t i = seg; i < semi; ++i) {
      const std::string& s = toks()[i].text;
      if (s == "=" && paren == 0 && angle == 0) break;
      if (s == "<") ++angle;
      else if (s == ">") angle = angle > 0 ? angle - 1 : 0;
      else if (s == ">>") angle = angle > 1 ? angle - 2 : 0;
      else if (s == "(") {
        if (paren == 0 && angle == 0) {
          if (i > seg && detail::is_ident(toks()[i - 1]) &&
              toks()[i - 1].text != "operator") {
            std::string name = toks()[i - 1].text;
            if (i - 1 > seg && toks()[i - 2].text == "~") name = "~" + name;
            cls.method_decls.emplace(name, toks()[i - 1].line);
            std::vector<std::string> ret;
            for (std::size_t r = seg; r + 1 < i; ++r)
              ret.push_back(toks()[r].text);
            std::string rank = detail::rank_of_tokens(index_, ret);
            if (!rank.empty()) cls.method_return_rank[name] = rank;
          }
          return;
        }
        ++paren;
      } else if (s == ")") --paren;
    }
    harvest_member_var(cls, seg, semi);
  }

  void harvest_ns_decl(std::size_t seg, std::size_t semi) {
    if (semi <= seg) return;
    if (toks()[seg].text == "using" || toks()[seg].text == "typedef")
      harvest_alias(seg, semi);
  }

  /// `using X = tokens...;` (skips using-declarations without '=').
  void harvest_alias(std::size_t seg, std::size_t semi) {
    if (toks()[seg].text == "typedef") {
      // typedef tokens... Name;
      if (semi - seg < 3 || !detail::is_ident(toks()[semi - 1])) return;
      std::vector<std::string> type;
      for (std::size_t i = seg + 1; i + 1 < semi; ++i)
        type.push_back(toks()[i].text);
      index_.aliases[toks()[semi - 1].text] = std::move(type);
      return;
    }
    if (semi - seg < 4 || !detail::is_ident(toks()[seg + 1]) ||
        toks()[seg + 2].text != "=")
      return;
    std::vector<std::string> type;
    for (std::size_t i = seg + 3; i < semi; ++i)
      type.push_back(toks()[i].text);
    index_.aliases[toks()[seg + 1].text] = std::move(type);
  }
};

}  // namespace yancanalyze
