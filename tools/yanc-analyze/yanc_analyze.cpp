// yanc-analyze — whole-program static lock-order and blocking-call
// verification (ISSUE 9 tentpole).
//
// PR 4's runtime lockdep proves lock orderings for the interleavings a
// test happens to exercise; this pass proves them for every ordering the
// code can reach.  It builds the symbol layer in symbols.hpp over the
// yanc-lint tokenizer, then:
//
//   1. harvests every dbg::Mutex<Rank::X>/SharedMutex<Rank::X> declaration
//      into a variable -> rank map, and every LockGuard/UniqueLock/
//      SharedLock/CondVar site into guard scopes;
//   2. constructs a conservative two-pass, name-qualified call graph (the
//      same ambiguity-aware technique as the discarded-Result lint rule: a
//      receiver or name that does not resolve to exactly one plausible
//      definition set is skipped, never guessed at) and computes, by
//      fixpoint over per-function may-acquire/may-block summaries, the
//      whole-program static acquired-while-held edge set;
//   3. reports rank cycles and same-rank nesting reachable through any
//      call path, blocking calls under a held lock, and rank drift.
//
// Rules:
//   lock-cycle          the static acquired-while-held graph has a cycle
//                       among distinct ranks — a deadlock on the right
//                       schedule, even if no test ever interleaves it.
//   same-rank           a path acquires a rank while already holding it
//                       (runtime lockdep aborts on this; statically it is
//                       reachable through ANY call path, not just tested).
//   blocking-under-lock a call that can park the thread — CondVar::wait*,
//                       WatchQueue::pop_wait*, Channel::send*,
//                       Transport::send, sleep_for/sleep_until — while a
//                       ranked lock is held (the condvar's own lock is
//                       exempt: wait releases it).
//   unknown-rank        a dbg guard whose mutex expression the analyzer
//                       cannot map to a rank — fix the spelling or waive
//                       it, so the variable->rank map stays total.
//   rank-unused         a dbg::Rank enumerator never instantiated as
//                       Mutex<Rank::X>/SharedMutex<Rank::X> anywhere.
//   unranked-mutex      std::mutex & friends outside dbg/ (rank drift:
//                       a lock the edge graph cannot see).
//   doc-rank-drift      the docs/CORRECTNESS.md rank table disagrees with
//                       the enum (missing/extra/misordered rows).
//
// Suppression mirrors yanc-lint: a finding on line N is waived when line N
// or N-1 carries
//     // yanc-analyze: allow(<rule>) <justification>
// with a non-empty justification.
//
// With --runtime-edges FILE (the dump produced by YANC_LOCK_EDGES_OUT or
// /yanc/.stats/dbg/lock_edges), prints a static-vs-runtime coverage
// report: statically-possible edges no test exercised, and runtime edges
// the analyzer failed to derive (blind spots).
//
// Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage/IO.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "symbols.hpp"

namespace fs = std::filesystem;
using namespace yancanalyze;
using detail::is_ident;

namespace {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// --- suppressions (same mechanics as yanc-lint) ----------------------------

bool suppressed(const LexedFile& lex, int line, const std::string& rule,
                bool* bad_waiver) {
  static const std::regex kAllow(
      R"(yanc-analyze:\s*allow\(([a-z-]+)\)\s*(.*))");
  for (int l : {line, line - 1}) {
    auto it = lex.comments.find(l);
    if (it == lex.comments.end()) continue;
    std::smatch m;
    std::string text = it->second;
    if (std::regex_search(text, m, kAllow) && m[1].str() == rule) {
      std::string why = m[2].str();
      while (!why.empty() && (why.back() == '/' || why.back() == ' '))
        why.pop_back();
      if (why.empty()) {
        if (bad_waiver) *bad_waiver = true;
        return false;
      }
      return true;
    }
  }
  return false;
}

void report(std::vector<Finding>& findings, const SourceFile& sf, int line,
            std::string rule, std::string message) {
  bool bad = false;
  if (suppressed(sf.lex, line, rule, &bad)) return;
  if (bad) {
    findings.push_back(Finding{sf.display, line, rule,
                               "suppression without justification (say why)"});
    return;
  }
  findings.push_back(
      Finding{sf.display, line, std::move(rule), std::move(message)});
}

// --- the analysis ----------------------------------------------------------

struct Ev {
  enum Kind {
    brace_open,
    brace_close,
    guard_open,   // dbg guard local: acquires `rank`
    scope_open,   // scope-guard object local: acquires `ranks`, dtor at close
    unlock,       // guard.unlock(): releases newest `rank`
    relock,       // guard.lock(): re-acquires `rank`
    call,         // resolved call sites: `targets`
    block         // direct blocking call; `exempt` rank is released by it
  } kind;
  int line = 0;
  int depth = 0;

  Ev(Kind k, int l, int d) : kind(k), line(l), depth(d) {}

  std::string rank;
  std::vector<std::string> ranks;      // scope_open
  std::vector<FuncDef*> targets;       // call / scope_open (dtor)
  std::string desc;                    // callee or blocking-call description
  std::string exempt;                  // block: rank the wait releases
};

struct EdgeInfo {
  std::string file;
  int line = 0;         // acquisition / call site
  int holder_line = 0;  // where the held lock was taken
  std::string via;      // "" for a direct acquisition, else callee
  std::string func;     // qualified function the edge was derived in
};

using EdgeKey = std::pair<std::string, std::string>;

std::string qual_name(const FuncDef& f) {
  return f.cls.empty() ? f.name : f.cls + "::" + f.name;
}

bool in_dbg_dir(const SourceFile& sf) {
  return sf.display.find("dbg/") == 0 ||
         sf.display.find("/dbg/") != std::string::npos;
}

const std::set<std::string>& guard_spellings() {
  static const std::set<std::string> k = {"LockGuard", "UniqueLock",
                                          "SharedLock"};
  return k;
}

const std::set<std::string>& wait_methods() {
  static const std::set<std::string> k = {"wait", "wait_for", "wait_until"};
  return k;
}

// Calls that park the thread by policy even though their bodies contain no
// condvar wait reachable in this tree (bounded queues backpressure).
// CondVar waits themselves propagate automatically through the fixpoint.
bool policy_blocking(const std::string& cls, const std::string& name) {
  if (cls == "Channel" && (name == "send" || name == "send_batch"))
    return true;
  if (cls == "Transport" && name == "send") return true;
  if (cls == "WatchQueue" && (name == "pop_wait" || name == "pop_wait_batch"))
    return true;
  return false;
}

class Analyzer {
 public:
  Analyzer(Index& index, std::vector<Finding>& findings)
      : index_(index), findings_(findings) {}

  std::map<EdgeKey, EdgeInfo> edges;

  void run() {
    for (FuncDef& f : index_.funcs) {
      if (in_dbg_dir(*f.sf)) continue;  // dbg/ implements the primitives
      extract_events(f);
    }
    seed_policy_blocking();
    fixpoint();
    for (FuncDef& f : index_.funcs) {
      if (in_dbg_dir(*f.sf)) continue;
      walk_edges(f);
    }
    rule_cycles();
  }

 private:
  Index& index_;
  std::vector<Finding>& findings_;
  std::map<const FuncDef*, std::vector<Ev>> events_;
  std::map<const FuncDef*, std::string> block_reason_;

  const std::vector<Token>& toks(const FuncDef& f) const {
    return f.sf->lex.tokens;
  }

  // --- event extraction (one linear sweep per function body) --------------

  struct Local {
    ClassInfo* cls = nullptr;
    std::string guard_rank;  // non-empty: a dbg guard local
  };

  void extract_events(FuncDef& f) {
    const auto& t = toks(f);
    std::vector<Ev>& evs = events_[&f];
    ClassInfo* cur = index_.class_named(f.cls, nullptr);
    std::map<std::string, Local> locals;
    int depth = 1;
    bool stmt_start = true;

    auto angle_skip = [&](std::size_t i) -> std::size_t {
      // i at '<': best-effort skip of a template argument list.
      int angle = 0;
      for (std::size_t k = i; k < f.body_close; ++k) {
        if (t[k].text == "<") ++angle;
        else if (t[k].text == ">") { if (--angle == 0) return k + 1; }
        else if (t[k].text == ">>") { angle -= 2; if (angle <= 0) return k + 1; }
        else if (t[k].text == ";" || t[k].text == "{") break;
      }
      return i;
    };

    for (std::size_t i = f.body_open + 1; i < f.body_close; ++i) {
      const std::string& s = t[i].text;
      if (s == "{") {
        ++depth;
        evs.push_back(Ev{Ev::brace_open, t[i].line, depth});
        stmt_start = true;
        continue;
      }
      if (s == "}") {
        evs.push_back(Ev{Ev::brace_close, t[i].line, depth});
        --depth;
        stmt_start = true;
        continue;
      }
      if (s == ";") {
        stmt_start = true;
        continue;
      }
      if (!is_ident(t[i])) {
        if (s != "*" && s != "&" && s != "::") stmt_start = false;
        continue;
      }

      // dbg guard declaration: [dbg ::] LockGuard|UniqueLock|SharedLock
      // [<...>] name ( expr ) — CTAD is the idiom, template args allowed.
      if (guard_spellings().count(s)) {
        std::size_t j = i + 1;
        if (j < f.body_close && t[j].text == "<") j = angle_skip(j);
        if (j + 1 < f.body_close && is_ident(t[j]) && t[j + 1].text == "(") {
          int rp = f.sf->paren_match[j + 1];
          if (rp > 0 && static_cast<std::size_t>(rp) < f.body_close) {
            const std::string name = t[j].text;
            std::string rank =
                resolve_expr_rank(f, cur, locals, j + 2,
                                  static_cast<std::size_t>(rp));
            if (rank.empty()) {
              report(findings_, *f.sf, t[j].line, "unknown-rank",
                     "cannot map the mutex expression of guard '" + name +
                         "' to a dbg::Rank; the variable->rank map must "
                         "stay total (fix the spelling or waive)");
            } else {
              Ev e{Ev::guard_open, t[j].line, depth};
              e.rank = rank;
              evs.push_back(e);
              locals[name] = Local{nullptr, rank};
            }
            i = static_cast<std::size_t>(rp);
            stmt_start = false;
            continue;
          }
        }
      }

      // Scope-guard object local: `MutationScope scope(*this);` — a class
      // whose member guards hold ranks for the object's lifetime.
      if (stmt_start && i + 2 < f.body_close && is_ident(t[i + 1]) &&
          (t[i + 2].text == "(" || t[i + 2].text == "{") &&
          (i == f.body_open + 1 || t[i - 1].text != "::")) {
        ClassInfo* sc = index_.class_named(s, cur);
        if (sc && !sc->scope_guard_ranks.empty()) {
          Ev e{Ev::scope_open, t[i + 1].line, depth};
          e.ranks = sc->scope_guard_ranks;
          e.desc = sc->name;
          auto dt = index_.funcs_by_cls.equal_range(
              {sc->name, "~" + sc->name});
          for (auto it2 = dt.first; it2 != dt.second; ++it2)
            e.targets.push_back(it2->second);
          evs.push_back(e);
          locals[t[i + 1].text] = Local{sc, ""};
          if (t[i + 2].text == "(") {
            int rp = f.sf->paren_match[i + 2];
            if (rp > 0) i = static_cast<std::size_t>(rp);
          }
          stmt_start = false;
          continue;
        }
      }

      // Plain local declaration (receiver typing): `Type name ...` /
      // `Type* name = ...` / range-for element.  Only when the statement
      // starts with a resolvable project type.
      if (stmt_start) {
        std::size_t after = try_local_decl(f, cur, locals, i);
        if (after > i) {
          i = after - 1;
          stmt_start = false;
          continue;
        }
      }
      if (s == "for" && i + 1 < f.body_close && t[i + 1].text == "(") {
        harvest_range_for(f, cur, locals, i + 1);
        // fall through: the loop body is scanned normally
      }

      // Call site: identifier followed by '('.
      if (i + 1 < f.body_close && t[i + 1].text == "(" &&
          !detail::control_keywords().count(s)) {
        handle_call(f, cur, locals, evs, i, depth);
      }
      stmt_start = false;
    }
  }

  // Resolves the mutex expression of a guard: `mu_`, `fs_.emit_mu_`,
  // `shared_->mu`, `shard_of(node)`, `fs.mu_`, `*mu`.
  std::string resolve_expr_rank(const FuncDef& f, ClassInfo* cur,
                                const std::map<std::string, Local>& locals,
                                std::size_t b, std::size_t e) {
    const auto& t = toks(f);
    while (b < e && (t[b].text == "*" || t[b].text == "&")) ++b;
    ClassInfo* recv = cur;  // implicit `this`
    for (std::size_t i = b; i < e;) {
      if (!is_ident(t[i])) return "";
      const std::string& name = t[i].text;
      bool is_call = i + 1 < e && t[i + 1].text == "(";
      std::size_t next = i + 1;
      if (is_call) {
        int rp = f.sf->paren_match[i + 1];
        if (rp < 0) return "";
        next = static_cast<std::size_t>(rp) + 1;
      }
      bool last = next >= e;
      if (name == "this") {
        recv = cur;
      } else if (is_call) {
        // Method returning a ranked mutex reference (MemFs::shard_of).
        if (!recv) return "";
        auto it = recv->method_return_rank.find(name);
        if (it == recv->method_return_rank.end()) {
          // walk bases
          std::string r = base_method_return_rank(recv, name);
          if (r.empty() || !last) return "";
          return r;
        }
        if (!last) return "";
        return it->second;
      } else {
        // First element may be a local or parameter; later ones members.
        const MemberVar* mv = nullptr;
        if (i == b) {
          auto lit = locals.find(name);
          if (lit != locals.end() && lit->second.cls) {
            recv = lit->second.cls;
            mv = reinterpret_cast<const MemberVar*>(-1);  // resolved as obj
          } else {
            auto pit = f.params.find(name);
            if (pit != f.params.end()) {
              // A ranked-mutex parameter itself?
              std::string r = detail::rank_of_tokens(index_, pit->second);
              if (!r.empty() && last) return r;
              ClassInfo* pc =
                  detail::class_of_tokens(index_, pit->second, cur);
              if (pc) {
                recv = pc;
                mv = reinterpret_cast<const MemberVar*>(-1);
              }
            }
          }
        }
        if (!mv) {
          const MemberVar* m = index_.find_member(recv, name);
          if (!m) return "";
          if (last) return m->mutex_rank;  // "" when not a ranked mutex
          ClassInfo* mc = detail::class_of_tokens(index_, m->type_tokens, cur);
          if (!mc) return "";
          recv = mc;
        }
      }
      i = next;
      if (i < e) {
        if (t[i].text != "." && t[i].text != "->") return "";
        ++i;
      }
    }
    return "";
  }

  std::string base_method_return_rank(ClassInfo* cls, const std::string& name,
                                      int depth = 0) {
    if (!cls || depth > 6) return "";
    auto it = cls->method_return_rank.find(name);
    if (it != cls->method_return_rank.end()) return it->second;
    for (const std::string& b : cls->bases)
      if (std::string r = base_method_return_rank(
              index_.class_named(b, nullptr), name, depth + 1);
          !r.empty())
        return r;
    return "";
  }

  // `Type name ...` local declaration at statement start.  Returns the
  // token index just past the declared name on success, else `i`.
  std::size_t try_local_decl(const FuncDef& f, ClassInfo* cur,
                             std::map<std::string, Local>& locals,
                             std::size_t i) {
    const auto& t = toks(f);
    std::vector<std::string> type;
    std::size_t k = i;
    int angle = 0;
    while (k < f.body_close && k < i + 16) {
      const std::string& s = t[k].text;
      // Never consume a guard declaration: `dbg::SharedLock lock(mu_)`
      // must reach the guard branch, which starts at the SharedLock token.
      if (detail::reserved_type_name(s)) return i;
      if (s == "<") ++angle;
      else if (s == ">") angle = angle > 0 ? angle - 1 : 0;
      else if (s == ">>") angle = angle > 1 ? angle - 2 : 0;
      else if (angle == 0 && (s == ";" || s == "=" || s == "(" || s == "{" ||
                              s == ")" || s == "," || s == "." ||
                              s == "->" || s == "[")) break;
      if (angle == 0 && is_ident(t[k]) && k + 1 < f.body_close) {
        const std::string& nx = t[k + 1].text;
        if ((nx == ";" || nx == "=" || nx == "(" || nx == "{") &&
            t[k == 0 ? 0 : k - 1].text != "::" && k > i) {
          // t[k] is the declared name; everything before is the type.
          ClassInfo* c = detail::class_of_tokens(index_, type, cur);
          if (!c) return i;
          locals[t[k].text] = Local{c, ""};
          return k + 1;
        }
      }
      type.push_back(s);
      ++k;
    }
    return i;
  }

  // `for ( [Type|auto&] name : container )` — types the element.
  void harvest_range_for(const FuncDef& f, ClassInfo* cur,
                         std::map<std::string, Local>& locals,
                         std::size_t lparen) {
    const auto& t = toks(f);
    int rp = f.sf->paren_match[lparen];
    if (rp < 0) return;
    auto rparen = static_cast<std::size_t>(rp);
    std::size_t colon = 0;
    for (std::size_t i = lparen + 1; i < rparen; ++i)
      if (t[i].text == ":" &&
          (i + 1 >= rparen || t[i + 1].text != ":") &&
          (i == 0 || t[i - 1].text != ":")) {
        colon = i;
        break;
      }
    if (!colon || colon <= lparen + 1 || !is_ident(t[colon - 1])) return;
    const std::string& name = t[colon - 1].text;
    std::vector<std::string> type;
    for (std::size_t i = lparen + 1; i + 1 < colon; ++i)
      type.push_back(t[i].text);
    ClassInfo* c = detail::class_of_tokens(index_, type, cur);
    if (!c) {
      // auto element: take the container's project class, if any —
      // `for (auto& q : targets)` where targets is vector<WatchQueuePtr>.
      if (colon + 1 < rparen && is_ident(t[colon + 1])) {
        const std::string& cont = t[colon + 1].text;
        auto lit = locals.find(cont);
        if (lit != locals.end()) c = lit->second.cls;
        if (!c && cur) {
          const MemberVar* mv = index_.find_member(cur, cont);
          if (mv) c = detail::class_of_tokens(index_, mv->type_tokens, cur);
        }
      }
    }
    if (c) locals[name] = Local{c, ""};
  }

  // Call handling: resolve receiver chain and method; emit call / block /
  // unlock / relock events.
  void handle_call(const FuncDef& f, ClassInfo* cur,
                   std::map<std::string, Local>& locals, std::vector<Ev>& evs,
                   std::size_t i, int depth) {
    const auto& t = toks(f);
    const std::string& name = t[i].text;
    const int line = t[i].line;

    // sleep_for / sleep_until, however qualified.
    if (name == "sleep_for" || name == "sleep_until") {
      Ev e{Ev::block, line, depth};
      e.desc = name;
      evs.push_back(e);
      return;
    }

    // Walk the receiver chain backwards: a . b -> name(
    std::vector<std::string> chain;
    std::size_t k = i;
    bool broken = false;
    while (k >= 2 && (t[k - 1].text == "." || t[k - 1].text == "->")) {
      if (!is_ident(t[k - 2])) {
        broken = true;  // foo(x)->bar(), arr[i].bar(): receiver unknowable
        break;
      }
      chain.insert(chain.begin(), t[k - 2].text);
      k -= 2;
    }
    bool qualified = !broken && chain.empty() && k >= 2 &&
                     t[k - 1].text == "::" && is_ident(t[k - 2]);

    // Guard manipulation: guard.unlock() / guard.lock().
    if (!broken && chain.size() == 1 && (name == "unlock" || name == "lock")) {
      std::string rank;
      auto lit = locals.find(chain[0]);
      if (lit != locals.end() && !lit->second.guard_rank.empty())
        rank = lit->second.guard_rank;
      else if (cur) {
        const MemberVar* mv = index_.find_member(cur, chain[0]);
        if (mv && !mv->guard_rank.empty()) rank = mv->guard_rank;
      }
      if (!rank.empty()) {
        Ev e{name == "unlock" ? Ev::unlock : Ev::relock, line, depth};
        e.rank = rank;
        evs.push_back(e);
        return;
      }
    }

    if (broken) return;

    // Resolve the receiver class, if any.
    ClassInfo* recv = nullptr;
    bool have_recv = false;
    if (!chain.empty()) {
      std::string first = chain.front();
      if (first == "this") {
        recv = cur;
      } else {
        auto lit = locals.find(first);
        if (lit != locals.end() && lit->second.cls) recv = lit->second.cls;
        if (!recv) {
          auto pit = f.params.find(first);
          if (pit != f.params.end())
            recv = detail::class_of_tokens(index_, pit->second, cur);
        }
        if (!recv && cur) {
          const MemberVar* mv = index_.find_member(cur, first);
          if (mv) {
            // CondVar wait through a member: cv_.wait_until(lock, ...).
            if (chain.size() == 1 && mv->condvar &&
                wait_methods().count(name)) {
              Ev e{Ev::block, line, depth};
              e.desc = chain[0] + "." + name;
              e.exempt = wait_exempt_rank(f, locals, cur, i + 1);
              evs.push_back(e);
              return;
            }
            recv = detail::class_of_tokens(index_, mv->type_tokens, cur);
          }
        }
        if (!recv) {
          // Unresolvable first element: give up on this chain.
          have_recv = false;
          recv = nullptr;
        }
      }
      // Later chain elements are members of the previous class.
      for (std::size_t c = 1; recv && c < chain.size(); ++c) {
        const MemberVar* mv = index_.find_member(recv, chain[c]);
        recv = mv ? detail::class_of_tokens(index_, mv->type_tokens, cur)
                  : nullptr;
      }
      have_recv = recv != nullptr;
      if (!have_recv) return;  // ambiguous receiver: skip, never guess
    } else if (qualified) {
      recv = index_.class_named(t[k - 2].text, cur);
      if (!recv) return;  // std::..., dbg::... — outside the model
      have_recv = true;
    }

    // Local CondVar? (none in tree, but fixtures use them)
    std::vector<FuncDef*> targets;
    if (have_recv) {
      collect_method_defs(recv, name, targets);
    } else {
      // Bare name: method of the enclosing class (incl. bases/overrides),
      // else a uniquely-named free function, else uniquely named overall.
      if (cur) collect_method_defs(cur, name, targets);
      if (targets.empty()) {
        auto r = index_.funcs_by_cls.equal_range({std::string(), name});
        for (auto it = r.first; it != r.second; ++it)
          targets.push_back(it->second);
      }
      if (targets.empty()) {
        // unique across the program?
        auto r = index_.funcs_by_name.equal_range(name);
        std::size_t cnt = std::distance(r.first, r.second);
        if (cnt == 1) targets.push_back(r.first->second);
      }
    }
    if (targets.empty()) return;
    Ev e{Ev::call, line, depth};
    e.targets = std::move(targets);
    e.desc = qual_name(*e.targets.front());
    evs.push_back(e);
  }

  // First argument of a condvar wait: the guard it releases.
  std::string wait_exempt_rank(const FuncDef& f,
                               const std::map<std::string, Local>& locals,
                               ClassInfo* cur, std::size_t lparen) {
    const auto& t = toks(f);
    if (lparen + 1 >= f.body_close || !is_ident(t[lparen + 1])) return "";
    const std::string& arg = t[lparen + 1].text;
    auto lit = locals.find(arg);
    if (lit != locals.end()) return lit->second.guard_rank;
    if (cur) {
      const MemberVar* mv = index_.find_member(cur, arg);
      if (mv) return mv->guard_rank;
    }
    return "";
  }

  // Definitions of Class::name: the class itself, its bases (inherited
  // methods), and every override in derived classes (virtual dispatch is
  // over-approximated by including all of them).
  void collect_method_defs(ClassInfo* cls, const std::string& name,
                           std::vector<FuncDef*>& out, int depth = 0) {
    if (!cls || depth > 6) return;
    auto add = [&](ClassInfo* c) {
      auto r = index_.funcs_by_cls.equal_range({c->name, name});
      for (auto it = r.first; it != r.second; ++it) {
        if (std::find(out.begin(), out.end(), it->second) == out.end())
          out.push_back(it->second);
      }
    };
    add(cls);
    // Derived overrides (any class transitively deriving from cls that
    // declares `name`).
    for (auto& [short_name, cand] : index_.classes_by_name) {
      (void)short_name;
      for (ClassInfo* d : cand) {
        if (d != cls && d->method_decls.count(name) &&
            index_.class_derives_from(d, cls))
          add(d);
      }
    }
    if (!out.empty()) return;
    for (const std::string& b : cls->bases)
      collect_method_defs(index_.class_named(b, nullptr), name, out,
                          depth + 1);
  }

  // --- fixpoint over may-acquire / may-block summaries --------------------

  void seed_policy_blocking() {
    for (FuncDef& f : index_.funcs) {
      if (policy_blocking(f.cls, f.name)) {
        f.may_block = true;
        block_reason_[&f] = qual_name(f) + " blocks by policy (backpressure)";
      }
    }
  }

  void fixpoint() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (FuncDef& f : index_.funcs) {
        std::size_t before = f.may_acquire.size();
        bool blocked = f.may_block;
        for (auto& [rank, line] : f.init_acquires) {
          (void)line;
          f.may_acquire.insert(rank);
        }
        auto evit = events_.find(&f);
        if (evit != events_.end()) {
          for (const Ev& e : evit->second) {
            switch (e.kind) {
              case Ev::guard_open:
              case Ev::relock:
                f.may_acquire.insert(e.rank);
                break;
              case Ev::scope_open:
                f.may_acquire.insert(e.ranks.begin(), e.ranks.end());
                for (FuncDef* d : e.targets) {
                  f.may_acquire.insert(d->may_acquire.begin(),
                                       d->may_acquire.end());
                  if (d->may_block && !f.may_block) {
                    f.may_block = true;
                    block_reason_[&f] = "destroys " + e.desc + ", " +
                                        reason_of(d);
                  }
                }
                break;
              case Ev::call:
                for (FuncDef* d : e.targets) {
                  f.may_acquire.insert(d->may_acquire.begin(),
                                       d->may_acquire.end());
                  if (d->may_block && !f.may_block) {
                    f.may_block = true;
                    block_reason_[&f] =
                        "calls " + qual_name(*d) + ", " + reason_of(d);
                  }
                }
                break;
              case Ev::block:
                if (!f.may_block) {
                  f.may_block = true;
                  block_reason_[&f] = "waits at " + e.desc;
                }
                break;
              default:
                break;
            }
          }
        }
        if (f.may_acquire.size() != before || f.may_block != blocked)
          changed = true;
      }
    }
  }

  std::string reason_of(const FuncDef* f) {
    auto it = block_reason_.find(f);
    return it == block_reason_.end() ? std::string("which may block")
                                     : it->second;
  }

  // --- final walk: edges + same-rank + blocking-under-lock ----------------

  struct Held {
    std::string rank;
    int line = 0;
    int depth = 0;

    Held() = default;
    Held(std::string r, int l, int d) : rank(std::move(r)), line(l), depth(d) {}

    bool scope = false;               // scope-guard object
    std::vector<std::string> ranks;   // live ranks of a scope object
    std::vector<FuncDef*> dtors;
    std::string desc;

    std::vector<std::string> live_ranks() const {
      if (scope) return ranks;
      return {rank};
    }
  };

  void add_edge(const std::string& from, const std::string& to,
                const FuncDef& f, int line, int holder_line,
                const std::string& via) {
    EdgeKey key{from, to};
    if (edges.count(key)) return;
    edges[key] = EdgeInfo{f.sf->display, line, holder_line, via, qual_name(f)};
  }

  void walk_edges(FuncDef& f) {
    auto evit = events_.find(&f);
    std::vector<Held> held;
    ClassInfo* cur = index_.class_named(f.cls, nullptr);
    // A scope-guard destructor runs with its member-guard ranks held.
    if (!f.name.empty() && f.name[0] == '~' && cur)
      for (const std::string& r : cur->scope_guard_ranks)
        held.push_back(Held{r, f.line, 0});
    // Constructor init-list acquisitions, in order.
    for (auto& [rank, line] : f.init_acquires) {
      acquire(f, held, rank, line, 0);
    }
    if (evit == events_.end()) return;
    for (const Ev& e : evit->second) {
      switch (e.kind) {
        case Ev::guard_open:
        case Ev::relock:
          acquire(f, held, e.rank, e.line, e.depth);
          break;
        case Ev::scope_open: {
          for (const std::string& r : e.ranks) acquire(f, held, r, e.line,
                                                       e.depth);
          // Collapse the pushed entries into one scope record so the
          // destructor edges can be computed at close.
          for (std::size_t n = 0; n < e.ranks.size(); ++n) held.pop_back();
          Held h;
          h.rank = e.ranks.empty() ? "" : e.ranks.front();
          h.ranks = e.ranks;
          h.line = e.line;
          h.depth = e.depth;
          h.scope = true;
          h.dtors = e.targets;
          h.desc = e.desc;
          held.push_back(h);
          break;
        }
        case Ev::brace_close: {
          // Pop everything opened at this depth; scope objects run their
          // destructors against what remains held.
          std::vector<Held> closing;
          while (!held.empty() && held.back().depth >= e.depth) {
            closing.push_back(held.back());
            held.pop_back();
          }
          for (const Held& h : closing) {
            if (!h.scope) continue;
            for (FuncDef* d : h.dtors) {
              for (const Held& outer : held)
                for (const std::string& hr : outer.live_ranks())
                  for (const std::string& r : d->may_acquire)
                    add_edge(hr, r, f, e.line, outer.line, "~" + h.desc);
              if (d->may_block && !held.empty())
                report(findings_, *f.sf, h.line, "blocking-under-lock",
                       "destroying " + h.desc + " may block (" +
                           reason_of(d) + ") while holding " +
                           held_names(held));
            }
          }
          break;
        }
        case Ev::unlock:
          release(held, e.rank);
          break;
        case Ev::call: {
          if (held.empty()) break;
          for (FuncDef* d : e.targets) {
            for (const std::string& r : d->may_acquire)
              for (const Held& h : held)
                for (const std::string& hr : h.live_ranks())
                  add_edge(hr, r, f, e.line, h.line, e.desc);
            if (d->may_block)
              report(findings_, *f.sf, e.line, "blocking-under-lock",
                     "call to " + e.desc + " may block (" + reason_of(d) +
                         ") while holding " + held_names(held));
          }
          break;
        }
        case Ev::block: {
          // The wait releases its own lock; anything else held is a bug.
          bool other = false;
          for (const Held& h : held)
            for (const std::string& hr : h.live_ranks())
              if (hr != e.exempt) other = true;
          if (other)
            report(findings_, *f.sf, e.line, "blocking-under-lock",
                   "blocking wait " + e.desc + " while holding " +
                       held_names(held, e.exempt));
          break;
        }
        default:
          break;
      }
    }
  }

  void acquire(FuncDef& f, std::vector<Held>& held, const std::string& rank,
               int line, int depth) {
    for (const Held& h : held) {
      for (const std::string& hr : h.live_ranks()) {
        add_edge(hr, rank, f, line, h.line, "");
        if (hr == rank)
          report(findings_, *f.sf, line, "same-rank",
                 "acquires rank '" + rank + "' while already holding it "
                 "(taken at line " + std::to_string(h.line) +
                 "); runtime lockdep aborts on this path");
      }
    }
    held.push_back(Held{rank, line, depth});
  }

  void release(std::vector<Held>& held, const std::string& rank) {
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
      if (!it->scope && it->rank == rank) {
        held.erase(std::next(it).base());
        return;
      }
      if (it->scope) {
        auto& rs = it->ranks;
        auto f = std::find(rs.begin(), rs.end(), rank);
        if (f != rs.end()) {
          rs.erase(f);
          return;
        }
      }
    }
  }

  static std::string held_names(const std::vector<Held>& held,
                                const std::string& exempt = "") {
    std::string out;
    for (const Held& h : held)
      for (const std::string& r : h.live_ranks()) {
        if (r == exempt) continue;
        if (!out.empty()) out += ", ";
        out += r;
      }
    return out.empty() ? std::string("(released)") : out;
  }

  // --- rank-cycle detection over the static edge graph --------------------

  void rule_cycles() {
    // DFS from every rank; report each cycle once (smallest rotation).
    std::map<std::string, std::vector<std::string>> adj;
    for (auto& [key, info] : edges) {
      (void)info;
      if (key.first != key.second) adj[key.first].push_back(key.second);
    }
    std::set<std::string> reported;
    for (auto& [start, outs] : adj) {
      (void)outs;
      std::vector<std::string> path{start};
      std::set<std::string> on_path{start};
      dfs_cycle(start, start, path, on_path, adj, reported);
    }
  }

  void dfs_cycle(const std::string& start, const std::string& at,
                 std::vector<std::string>& path, std::set<std::string>& on,
                 std::map<std::string, std::vector<std::string>>& adj,
                 std::set<std::string>& reported) {
    auto it = adj.find(at);
    if (it == adj.end()) return;
    for (const std::string& next : it->second) {
      if (next == start && path.size() > 1) {
        // Canonical form: rotate so the lexicographically smallest rank
        // leads, to report each cycle once.
        std::vector<std::string> cyc = path;
        auto mn = std::min_element(cyc.begin(), cyc.end());
        std::rotate(cyc.begin(), mn, cyc.end());
        std::string key;
        for (auto& r : cyc) key += r + ">";
        if (!reported.insert(key).second) continue;
        std::string msg = "static lock-order cycle: ";
        for (auto& r : cyc) msg += r + " -> ";
        msg += cyc.front() + "; edges:";
        for (std::size_t i = 0; i < cyc.size(); ++i) {
          const EdgeInfo& e = edges[{cyc[i], cyc[(i + 1) % cyc.size()]}];
          msg += " [" + cyc[i] + "->" + cyc[(i + 1) % cyc.size()] + " at " +
                 e.file + ":" + std::to_string(e.line) +
                 (e.via.empty() ? "" : " via " + e.via) + "]";
        }
        const EdgeInfo& anchor = edges[{cyc[0], cyc[1 % cyc.size()]}];
        // Anchor the finding at one edge's source file.
        Finding fd;
        fd.file = anchor.file;
        fd.line = anchor.line;
        fd.rule = "lock-cycle";
        fd.message = msg;
        findings_.push_back(fd);
        continue;
      }
      if (on.count(next)) continue;
      on.insert(next);
      path.push_back(next);
      dfs_cycle(start, next, path, on, adj, reported);
      path.pop_back();
      on.erase(next);
    }
  }

};

// --- non-flow rules --------------------------------------------------------

void rule_rank_unused(const Index& index, std::vector<Finding>& out) {
  if (!index.rank_file) return;
  for (const std::string& r : index.rank_names) {
    if (index.instantiated_ranks.count(r)) continue;
    const SourceFile& sf = *index.rank_file;
    int line = index.rank_lines.count(r) ? index.rank_lines.at(r) : 1;
    report(out, sf, line, "rank-unused",
           "rank '" + r +
               "' is never instantiated as Mutex<Rank::" + r +
               ">/SharedMutex<Rank::" + r +
               "> — dead rank or missing lock (waive if reserved)");
  }
}

const std::set<std::string>& raw_lock_types() {
  static const std::set<std::string> k = {
      "mutex",       "shared_mutex",       "recursive_mutex",
      "timed_mutex", "shared_timed_mutex", "recursive_timed_mutex",
      "condition_variable", "condition_variable_any"};
  return k;
}

void rule_unranked_mutex(const SourceFile& sf, std::vector<Finding>& out) {
  if (in_dbg_dir(sf)) return;  // dbg/ wraps the raw primitives by design
  const auto& t = sf.lex.tokens;
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (!is_ident(t[i]) || !raw_lock_types().count(t[i].text)) continue;
    if (t[i - 1].text == "::" && is_ident(t[i - 2]) &&
        t[i - 2].text == "std")
      report(out, sf, t[i].line, "unranked-mutex",
             "std::" + t[i].text +
                 " outside dbg/ — a lock the rank graph cannot see; use "
                 "the ranked dbg wrappers");
  }
}

// docs/CORRECTNESS.md rank table vs the enum: names, order, count.
void rule_doc_rank_drift(const Index& index, const std::string& doc_path,
                         std::vector<Finding>& out) {
  if (!index.rank_file || index.rank_names.empty()) return;
  std::ifstream in(doc_path);
  if (!in) {
    out.push_back(Finding{doc_path, 0, "doc-rank-drift",
                          "cannot open the rank-table document"});
    return;
  }
  std::vector<std::pair<std::string, int>> rows;  // (rank, line)
  std::string line;
  int lineno = 0;
  bool in_section = false, in_table = false;
  static const std::regex kRow(R"(^\|\s*`([A-Za-z_][A-Za-z0-9_]*)`)");
  while (std::getline(in, line)) {
    ++lineno;
    if (line.rfind("#", 0) == 0) {
      std::string lower = line;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      in_section = lower.find("lock rank") != std::string::npos;
      in_table = false;
      continue;
    }
    if (!in_section) continue;
    std::smatch m;
    if (std::regex_search(line, m, kRow)) {
      std::string name = m[1].str();
      if (name == "Rank" || name == "rank") continue;  // header row
      rows.emplace_back(name, lineno);
      in_table = true;
    } else if (in_table && line.rfind("|", 0) != 0) {
      break;  // table ended
    }
  }
  if (rows.empty()) {
    out.push_back(Finding{doc_path, 0, "doc-rank-drift",
                          "no rank table found under a 'lock rank' heading"});
    return;
  }
  const auto& en = index.rank_names;
  std::size_t n = std::min(rows.size(), en.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (rows[i].first != en[i]) {
      out.push_back(Finding{
          doc_path, rows[i].second, "doc-rank-drift",
          "rank table row " + std::to_string(i + 1) + " is `" +
              rows[i].first + "` but the enum declares `" + en[i] +
              "` at this position — doc and dbg::Rank have drifted"});
      return;  // first divergence only; fixing it re-aligns the rest
    }
  }
  if (rows.size() != en.size())
    out.push_back(Finding{
        doc_path, rows.back().second, "doc-rank-drift",
        "rank table lists " + std::to_string(rows.size()) +
            " ranks but the enum declares " + std::to_string(en.size()) +
            " (kRankCount) — document every rank"});
}

// --- runtime-edge diff (lock coverage report) ------------------------------

struct Coverage {
  std::set<EdgeKey> static_edges, runtime_edges;
  std::vector<EdgeKey> static_only, runtime_only, common;
  bool loaded = false;
};

Coverage diff_runtime(const std::map<EdgeKey, EdgeInfo>& edges,
                      const std::string& path) {
  Coverage cov;
  for (auto& [k, v] : edges) {
    (void)v;
    cov.static_edges.insert(k);
  }
  std::ifstream in(path);
  if (!in) return cov;
  cov.loaded = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string held, acquired;
    if (!(ss >> held >> acquired)) continue;
    cov.runtime_edges.insert({held, acquired});
  }
  for (const EdgeKey& k : cov.static_edges) {
    if (cov.runtime_edges.count(k)) cov.common.push_back(k);
    else cov.static_only.push_back(k);
  }
  for (const EdgeKey& k : cov.runtime_edges)
    if (!cov.static_edges.count(k)) cov.runtime_only.push_back(k);
  return cov;
}

// --- output ----------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<Finding>& findings,
                const std::map<EdgeKey, EdgeInfo>& edges,
                const Coverage* cov) {
  std::printf("{\n  \"findings\": [");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::printf("%s\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
                "\"message\": \"%s\"}",
                i ? "," : "", json_escape(f.file).c_str(), f.line,
                json_escape(f.rule).c_str(), json_escape(f.message).c_str());
  }
  std::printf("\n  ],\n  \"edges\": [");
  std::size_t i = 0;
  for (auto& [k, e] : edges) {
    std::printf("%s\n    {\"from\": \"%s\", \"to\": \"%s\", \"file\": "
                "\"%s\", \"line\": %d, \"func\": \"%s\", \"via\": \"%s\"}",
                i++ ? "," : "", json_escape(k.first).c_str(),
                json_escape(k.second).c_str(), json_escape(e.file).c_str(),
                e.line, json_escape(e.func).c_str(),
                json_escape(e.via).c_str());
  }
  std::printf("\n  ]");
  if (cov && cov->loaded) {
    std::printf(",\n  \"coverage\": {\"static\": %zu, \"runtime\": %zu, "
                "\"common\": %zu, \"static_only\": [",
                cov->static_edges.size(), cov->runtime_edges.size(),
                cov->common.size());
    for (std::size_t j = 0; j < cov->static_only.size(); ++j)
      std::printf("%s[\"%s\", \"%s\"]", j ? ", " : "",
                  cov->static_only[j].first.c_str(),
                  cov->static_only[j].second.c_str());
    std::printf("], \"runtime_only\": [");
    for (std::size_t j = 0; j < cov->runtime_only.size(); ++j)
      std::printf("%s[\"%s\", \"%s\"]", j ? ", " : "",
                  cov->runtime_only[j].first.c_str(),
                  cov->runtime_only[j].second.c_str());
    std::printf("]}");
  }
  std::printf("\n}\n");
}

void print_coverage(const std::map<EdgeKey, EdgeInfo>& edges,
                    const Coverage& cov) {
  std::printf("\n== lock coverage: static-possible vs runtime-observed ==\n");
  std::printf("static edges: %zu   runtime edges: %zu   exercised: %zu\n",
              cov.static_edges.size(), cov.runtime_edges.size(),
              cov.common.size());
  if (!cov.static_only.empty()) {
    std::printf(
        "\nstatically-reachable edges NO test exercised (%zu) — runtime\n"
        "lockdep has never validated these orderings:\n",
        cov.static_only.size());
    for (const EdgeKey& k : cov.static_only) {
      const EdgeInfo& e = edges.at(k);
      std::printf("  %-16s -> %-16s  %s:%d in %s%s%s\n", k.first.c_str(),
                  k.second.c_str(), e.file.c_str(), e.line, e.func.c_str(),
                  e.via.empty() ? "" : " via ",
                  e.via.empty() ? "" : e.via.c_str());
    }
  }
  if (!cov.runtime_only.empty()) {
    std::printf(
        "\nruntime-observed edges the analyzer did NOT derive (%zu) — "
        "static blind spots:\n",
        cov.runtime_only.size());
    for (const EdgeKey& k : cov.runtime_only)
      std::printf("  %-16s -> %-16s\n", k.first.c_str(), k.second.c_str());
  }
  std::printf("\n");
}

// --- driver ----------------------------------------------------------------

bool should_scan(const fs::path& p) {
  auto ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::string display_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec || rel.empty()) ? p.generic_string()
                                      : rel.generic_string();
  return s;
}

int load_files(const std::vector<std::string>& paths, const fs::path& root,
               std::deque<SourceFile>& files) {
  std::vector<fs::path> found;
  for (const std::string& ps : paths) {
    fs::path p = fs::path(ps).is_absolute() ? fs::path(ps) : root / ps;
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      found.push_back(p);
    } else if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it)
        if (it->is_regular_file() && should_scan(it->path()))
          found.push_back(it->path());
    } else {
      std::fprintf(stderr, "yanc-analyze: no such path: %s\n",
                   p.string().c_str());
      return 2;
    }
  }
  std::sort(found.begin(), found.end());
  for (const fs::path& p : found) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "yanc-analyze: cannot read %s\n",
                   p.string().c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string src = ss.str();
    files.push_back(SourceFile{});
    SourceFile& sf = files.back();
    sf.path = p.string();
    sf.display = display_path(p, root);
    sf.lex = yanclint::lex(src);
    sf.is_header = p.extension() == ".hpp" || p.extension() == ".h";
    compute_matches(sf);
  }
  return 0;
}

struct RunResult {
  std::vector<Finding> findings;
  std::map<EdgeKey, EdgeInfo> edges;
};

RunResult run_analysis(std::deque<SourceFile>& files,
                       const std::string& doc_path) {
  RunResult rr;
  Index index;
  for (SourceFile& sf : files) {
    Harvester h(sf, index);
    h.run();
  }
  Analyzer a(index, rr.findings);
  a.run();
  rr.edges = std::move(a.edges);
  rule_rank_unused(index, rr.findings);
  for (const SourceFile& sf : files) rule_unranked_mutex(sf, rr.findings);
  if (!doc_path.empty()) rule_doc_rank_drift(index, doc_path, rr.findings);
  std::sort(rr.findings.begin(), rr.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return rr;
}

// --- self-test -------------------------------------------------------------

int self_test(const fs::path& fixtures_arg) {
  // Absolute from here on: load_files resolves relative paths against the
  // analysis root, and fixture paths already carry the directory prefix.
  fs::path fixtures = fs::absolute(fixtures_arg);
  if (!fs::is_directory(fixtures)) {
    std::fprintf(stderr, "yanc-analyze: not a directory: %s\n",
                 fixtures.string().c_str());
    return 2;
  }
  static const std::regex kName(R"(^([a-z_]+?)_(bad|ok)[0-9]*$)");
  int failures = 0, cases = 0;
  std::vector<fs::path> entries;
  for (const auto& de : fs::directory_iterator(fixtures))
    entries.push_back(de.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    std::string stem = p.stem().string();
    std::smatch m;
    if (!std::regex_match(stem, m, kName)) continue;
    std::string rule = m[1].str();
    std::replace(rule.begin(), rule.end(), '_', '-');
    bool expect_bad = m[2].str() == "bad";
    ++cases;

    std::deque<SourceFile> files;
    std::string doc;
    std::vector<std::string> paths;
    if (fs::is_directory(p)) {
      for (const auto& de : fs::directory_iterator(p)) {
        if (de.path().filename() == "CORRECTNESS.md")
          doc = de.path().string();
        else if (should_scan(de.path()))
          paths.push_back(de.path().string());
      }
    } else {
      paths.push_back(p.string());
    }
    if (load_files(paths, fixtures, files) != 0) {
      ++failures;
      continue;
    }
    RunResult rr = run_analysis(files, doc);
    int hits = 0;
    for (const Finding& f : rr.findings)
      if (f.rule == rule) ++hits;
    bool pass = expect_bad ? hits > 0 : hits == 0;
    if (!pass) {
      ++failures;
      std::fprintf(stderr, "FAIL %s: expected %s finding(s) of '%s', got %d\n",
                   stem.c_str(), expect_bad ? ">0" : "0", rule.c_str(), hits);
      for (const Finding& f : rr.findings)
        std::fprintf(stderr, "  saw %s:%d [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.message.c_str());
    }
  }
  std::printf("yanc-analyze self-test: %d case(s), %d failure(s)\n", cases,
              failures);
  if (cases == 0) {
    std::fprintf(stderr, "yanc-analyze: no fixtures matched\n");
    return 2;
  }
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string doc, runtime_edges;
  bool json = false, dump_edges = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "yanc-analyze: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--self-test") {
      return self_test(need_value("--self-test"));
    } else if (arg == "--root") {
      root = need_value("--root");
    } else if (arg == "--doc") {
      doc = need_value("--doc");
    } else if (arg == "--runtime-edges") {
      runtime_edges = need_value("--runtime-edges");
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--dump-edges") {
      dump_edges = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: yanc-analyze [--root DIR] [--doc FILE] [--json]\n"
          "                    [--dump-edges] [--runtime-edges FILE]\n"
          "                    [paths...]     (default: src/yanc)\n"
          "       yanc-analyze --self-test <fixtures-dir>\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "yanc-analyze: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths.push_back("src/yanc");

  std::deque<SourceFile> files;
  if (int rc = load_files(paths, root, files)) return rc;
  if (files.empty()) {
    std::fprintf(stderr, "yanc-analyze: nothing to analyze\n");
    return 2;
  }

  RunResult rr = run_analysis(files, doc);
  Coverage cov;
  if (!runtime_edges.empty()) {
    cov = diff_runtime(rr.edges, runtime_edges);
    if (!cov.loaded)
      std::fprintf(stderr,
                   "yanc-analyze: warning: cannot read runtime edges %s\n",
                   runtime_edges.c_str());
  }

  if (json) {
    print_json(rr.findings, rr.edges,
               runtime_edges.empty() ? nullptr : &cov);
  } else {
    for (const Finding& f : rr.findings)
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    if (dump_edges) {
      std::printf("# static acquired-while-held edges (%zu)\n",
                  rr.edges.size());
      for (auto& [k, e] : rr.edges)
        std::printf("%s %s  # %s:%d in %s%s%s\n", k.first.c_str(),
                    k.second.c_str(), e.file.c_str(), e.line, e.func.c_str(),
                    e.via.empty() ? "" : " via ",
                    e.via.empty() ? "" : e.via.c_str());
    }
    if (cov.loaded) print_coverage(rr.edges, cov);
    if (!rr.findings.empty())
      std::printf("yanc-analyze: %zu finding(s)\n", rr.findings.size());
  }
  return rr.findings.empty() ? 0 : 1;
}

