// Errno-style error vocabulary used across every yanc subsystem.
//
// The paper's whole premise is that network state behaves like a POSIX file
// system, so the library speaks POSIX error semantics: ENOENT when a switch
// directory is missing, EACCES when an application lacks permission on a
// flow, ELOOP on symlink cycles in the topology, and so on.  Errors are
// carried as std::error_code with a dedicated category so they compose with
// the standard library and remain cheap to pass around.
#pragma once

#include <string>
#include <system_error>

namespace yanc {

/// POSIX-flavoured error conditions used by the VFS and everything above it.
enum class Errc : int {
  ok = 0,
  not_found,          // ENOENT
  exists,             // EEXIST
  not_dir,            // ENOTDIR
  is_dir,             // EISDIR
  not_empty,          // ENOTEMPTY
  access_denied,      // EACCES
  not_permitted,      // EPERM
  invalid_argument,   // EINVAL
  name_too_long,      // ENAMETOOLONG
  symlink_loop,       // ELOOP
  cross_device,       // EXDEV
  no_space,           // ENOSPC
  bad_handle,         // EBADF
  busy,               // EBUSY
  read_only,          // EROFS
  not_supported,      // ENOTSUP
  would_block,        // EWOULDBLOCK
  overflow,           // EOVERFLOW
  timed_out,          // ETIMEDOUT
  not_connected,      // ENOTCONN
  protocol_error,     // EPROTO
  io_error,           // EIO
};

/// Category instance for yanc::Errc (singleton).
const std::error_category& yanc_category() noexcept;

inline std::error_code make_error_code(Errc e) noexcept {
  return {static_cast<int>(e), yanc_category()};
}

/// Short uppercase POSIX-style name, e.g. "ENOENT", for diagnostics.
std::string errc_name(Errc e);

}  // namespace yanc

template <>
struct std::is_error_code_enum<yanc::Errc> : std::true_type {};
