// Bounds-checked big-endian byte buffer codecs.
//
// The OpenFlow wire protocol (yanc::ofp) and the packet library (yanc::net)
// both serialize network byte order; both go through these two classes so
// every length check lives in one place.  A BufReader never reads out of
// bounds: once any read fails, the reader is poisoned (ok() == false) and
// subsequent reads return zeros, so codecs can decode a whole struct and
// check ok() once at the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace yanc {

/// Append-only big-endian writer backed by a growable byte vector.
class BufWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// Fixed-width field: copies up to `width` chars and zero-pads the rest.
  void padded_string(const std::string& s, std::size_t width) {
    std::size_t n = s.size() < width ? s.size() : width;
    buf_.insert(buf_.end(), s.begin(), s.begin() + static_cast<long>(n));
    zeros(width - n);
  }

  /// Patches a previously written big-endian u16 (used for length fields
  /// whose value is only known after the body is serialized).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  /// Discards everything written at or past `size` (rollback of a
  /// partially serialized trailing record; `size` must not exceed size()).
  void truncate(std::size_t size) { buf_.resize(size); }

  std::size_t size() const noexcept { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked big-endian reader over a borrowed byte span.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return read_fail_ ? take_fail() : take<1>(); }
  std::uint16_t u16() {
    return static_cast<std::uint16_t>(read_fail_ ? take_fail() : take<2>());
  }
  std::uint32_t u32() {
    return static_cast<std::uint32_t>(read_fail_ ? take_fail() : take<4>());
  }
  std::uint64_t u64() { return read_fail_ ? take_fail() : take<8>(); }

  void bytes(std::span<std::uint8_t> out) {
    if (remaining() < out.size()) {
      read_fail_ = true;
      std::memset(out.data(), 0, out.size());
      return;
    }
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
  }

  /// Reads `n` bytes into a fresh vector (empty + poisoned on underflow).
  std::vector<std::uint8_t> bytes(std::size_t n) {
    if (remaining() < n) {
      read_fail_ = true;
      return {};
    }
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Fixed-width zero-padded string field.
  std::string padded_string(std::size_t width) {
    auto raw = bytes(width);
    std::size_t len = 0;
    while (len < raw.size() && raw[len] != 0) ++len;
    return std::string(raw.begin(), raw.begin() + static_cast<long>(len));
  }

  void skip(std::size_t n) {
    if (remaining() < n)
      read_fail_ = true;
    else
      pos_ += n;
  }

  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool ok() const noexcept { return !read_fail_; }

  /// Sub-reader over the next n bytes (poisons on underflow).
  BufReader sub(std::size_t n) {
    if (remaining() < n) {
      read_fail_ = true;
      return BufReader({});
    }
    BufReader r(data_.subspan(pos_, n));
    pos_ += n;
    return r;
  }

 private:
  template <std::size_t N>
  std::uint64_t take() {
    if (remaining() < N) return take_fail();
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < N; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += N;
    return v;
  }
  std::uint64_t take_fail() {
    read_fail_ = true;
    return 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool read_fail_ = false;
};

}  // namespace yanc
