// Small string toolkit used by the path resolver, the netfs schema engine
// (typed file parsing), and the shell utilities.  Parsing helpers return
// Result<> rather than throwing; the yanc FS is fed by untrusted file writes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "yanc/util/result.hpp"

namespace yanc {

/// Splits on a single character; empty fields are kept ("a//b" -> a,"",b).
std::vector<std::string> split(std::string_view s, char sep);

/// Splits and drops empty fields ("/a//b/" with '/' -> a,b).
std::vector<std::string> split_nonempty(std::string_view s, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parses a decimal unsigned integer; rejects junk, sign, overflow.
Result<std::uint64_t> parse_u64(std::string_view s);

/// Parses "0x..."-prefixed or plain hex.
Result<std::uint64_t> parse_hex_u64(std::string_view s);

/// Lower-case hex without prefix, zero-padded to width*2 chars.
std::string to_hex(std::uint64_t v, int width_bytes);

/// Shell-style glob match supporting '*', '?' and '[set]'.  Used by the
/// find/grep utilities (§5.4) and by watch filters.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace yanc
