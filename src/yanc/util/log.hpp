// Minimal leveled logger.  Off by default so tests and benchmarks stay
// quiet; examples turn it on to narrate what the controller is doing.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace yanc {

enum class LogLevel : int { off = 0, error = 1, warn = 2, info = 3, debug = 4 };

/// Process-wide log threshold (defaults to off).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emits "[level] component: message" to stderr when enabled.  The line is
/// formatted into one buffer and written with a single fwrite, so lines
/// from concurrent threads never interleave mid-line.
void log(LogLevel level, std::string_view component, std::string_view message);

inline void log_error(std::string_view component, std::string_view message) {
  log(LogLevel::error, component, message);
}
inline void log_warn(std::string_view component, std::string_view message) {
  log(LogLevel::warn, component, message);
}
inline void log_info(std::string_view component, std::string_view message) {
  log(LogLevel::info, component, message);
}
inline void log_debug(std::string_view component, std::string_view message) {
  log(LogLevel::debug, component, message);
}

}  // namespace yanc
