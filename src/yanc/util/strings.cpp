#include "yanc/util/strings.hpp"

#include <cctype>
#include <limits>

namespace yanc {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(s, sep))
    if (!part.empty()) out.push_back(std::move(part));
  return out;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<std::uint64_t> parse_u64(std::string_view s) {
  s = trim(s);
  if (s.empty()) return Errc::invalid_argument;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return Errc::invalid_argument;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      return Errc::overflow;
    v = v * 10 + digit;
  }
  return v;
}

Result<std::uint64_t> parse_hex_u64(std::string_view s) {
  s = trim(s);
  if (starts_with(s, "0x") || starts_with(s, "0X")) s.remove_prefix(2);
  if (s.empty() || s.size() > 16) return Errc::invalid_argument;
  std::uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F')
      digit = c - 'A' + 10;
    else
      return Errc::invalid_argument;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

std::string to_hex(std::uint64_t v, int width_bytes) {
  static const char* digits = "0123456789abcdef";
  int chars = width_bytes * 2;
  std::string out(static_cast<std::size_t>(chars), '0');
  for (int i = chars - 1; i >= 0 && v; --i, v >>= 4)
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
  return out;
}

namespace {

bool set_match(std::string_view set, char c, std::size_t* consumed) {
  // `set` starts just past '['.  Supports negation and a-z ranges.
  bool negate = false;
  std::size_t i = 0;
  if (i < set.size() && (set[i] == '!' || set[i] == '^')) {
    negate = true;
    ++i;
  }
  bool matched = false;
  bool closed = false;
  bool first = true;
  for (; i < set.size(); ++i) {
    if (set[i] == ']' && !first) {
      closed = true;
      ++i;
      break;
    }
    first = false;
    if (i + 2 < set.size() && set[i + 1] == '-' && set[i + 2] != ']') {
      if (c >= set[i] && c <= set[i + 2]) matched = true;
      i += 2;
    } else if (set[i] == c) {
      matched = true;
    }
  }
  if (!closed) return false;  // malformed set: treat as literal mismatch
  *consumed = i;
  return matched != negate;
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative wildcard matcher with backtracking on the most recent '*'.
  std::size_t p = 0, t = 0;
  std::size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '[') {
      std::size_t consumed = 0;
      if (set_match(pattern.substr(p + 1), text[t], &consumed)) {
        p += consumed + 1;
        ++t;
      } else if (star_p != std::string_view::npos) {
        p = star_p + 1;
        t = ++star_t;
      } else {
        return false;
      }
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace yanc
