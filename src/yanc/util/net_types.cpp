#include "yanc/util/net_types.hpp"

#include <cstdio>

#include "yanc/util/strings.hpp"

namespace yanc {

MacAddress MacAddress::from_u64(std::uint64_t v) {
  std::array<std::uint8_t, 6> b{};
  for (int i = 5; i >= 0; --i) {
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return MacAddress(b);
}

Result<MacAddress> MacAddress::parse(std::string_view s) {
  auto parts = split(trim(s), ':');
  if (parts.size() != 6) return Errc::invalid_argument;
  std::array<std::uint8_t, 6> b{};
  for (std::size_t i = 0; i < 6; ++i) {
    if (parts[i].empty() || parts[i].size() > 2)
      return Errc::invalid_argument;
    auto v = parse_hex_u64(parts[i]);
    if (!v) return v.error();
    b[i] = static_cast<std::uint8_t>(*v);
  }
  return MacAddress(b);
}

std::uint64_t MacAddress::to_u64() const noexcept {
  std::uint64_t v = 0;
  for (auto byte : bytes_) v = (v << 8) | byte;
  return v;
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

bool MacAddress::is_broadcast() const noexcept {
  for (auto b : bytes_)
    if (b != 0xff) return false;
  return true;
}

Result<Ipv4Address> Ipv4Address::parse(std::string_view s) {
  auto parts = split(trim(s), '.');
  if (parts.size() != 4) return Errc::invalid_argument;
  std::uint32_t v = 0;
  for (const auto& p : parts) {
    auto octet = parse_u64(p);
    if (!octet || *octet > 255) return Errc::invalid_argument;
    v = (v << 8) | static_cast<std::uint32_t>(*octet);
  }
  return Ipv4Address(v);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Cidr::Cidr(Ipv4Address addr, int prefix_len)
    : addr_(Ipv4Address(addr.value() &
                        (prefix_len == 0
                             ? 0u
                             : ~0u << (32 - prefix_len)))),
      prefix_len_(prefix_len) {}

Result<Cidr> Cidr::parse(std::string_view s) {
  s = trim(s);
  auto slash = s.find('/');
  std::string_view addr_part = s.substr(0, slash);
  int prefix = 32;
  if (slash != std::string_view::npos) {
    auto p = parse_u64(s.substr(slash + 1));
    if (!p || *p > 32) return Errc::invalid_argument;
    prefix = static_cast<int>(*p);
  }
  auto addr = Ipv4Address::parse(addr_part);
  if (!addr) return addr.error();
  return Cidr(*addr, prefix);
}

std::uint32_t Cidr::mask() const noexcept {
  return prefix_len_ == 0 ? 0u : ~0u << (32 - prefix_len_);
}

bool Cidr::contains(Ipv4Address a) const noexcept {
  return (a.value() & mask()) == addr_.value();
}

bool Cidr::contains(const Cidr& other) const noexcept {
  return other.prefix_len_ >= prefix_len_ && contains(other.addr_);
}

std::string Cidr::to_string() const {
  return addr_.to_string() + "/" + std::to_string(prefix_len_);
}

}  // namespace yanc
