#include "yanc/util/error.hpp"

namespace yanc {
namespace {

struct NameMessage {
  const char* name;
  const char* message;
};

NameMessage describe(Errc e) {
  switch (e) {
    case Errc::ok: return {"OK", "success"};
    case Errc::not_found: return {"ENOENT", "no such file or directory"};
    case Errc::exists: return {"EEXIST", "file exists"};
    case Errc::not_dir: return {"ENOTDIR", "not a directory"};
    case Errc::is_dir: return {"EISDIR", "is a directory"};
    case Errc::not_empty: return {"ENOTEMPTY", "directory not empty"};
    case Errc::access_denied: return {"EACCES", "permission denied"};
    case Errc::not_permitted: return {"EPERM", "operation not permitted"};
    case Errc::invalid_argument: return {"EINVAL", "invalid argument"};
    case Errc::name_too_long: return {"ENAMETOOLONG", "file name too long"};
    case Errc::symlink_loop:
      return {"ELOOP", "too many levels of symbolic links"};
    case Errc::cross_device: return {"EXDEV", "cross-device link"};
    case Errc::no_space: return {"ENOSPC", "no space left on device"};
    case Errc::bad_handle: return {"EBADF", "bad file descriptor"};
    case Errc::busy: return {"EBUSY", "device or resource busy"};
    case Errc::read_only: return {"EROFS", "read-only file system"};
    case Errc::not_supported: return {"ENOTSUP", "operation not supported"};
    case Errc::would_block: return {"EWOULDBLOCK", "operation would block"};
    case Errc::overflow: return {"EOVERFLOW", "value too large"};
    case Errc::timed_out: return {"ETIMEDOUT", "operation timed out"};
    case Errc::not_connected: return {"ENOTCONN", "not connected"};
    case Errc::protocol_error: return {"EPROTO", "protocol error"};
    case Errc::io_error: return {"EIO", "input/output error"};
  }
  return {"EUNKNOWN", "unknown error"};
}

class YancCategory final : public std::error_category {
 public:
  const char* name() const noexcept override { return "yanc"; }
  std::string message(int condition) const override {
    return describe(static_cast<Errc>(condition)).message;
  }
};

}  // namespace

const std::error_category& yanc_category() noexcept {
  static YancCategory category;
  return category;
}

std::string errc_name(Errc e) { return describe(e).name; }

}  // namespace yanc
