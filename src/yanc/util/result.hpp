// Result<T>: a minimal expected-like type (std::expected is C++23; this
// project targets C++20).  A Result either holds a value or an
// std::error_code from yanc_category().  Used as the return type of every
// fallible operation in the library; exceptions are reserved for programmer
// errors (precondition violations).
#pragma once

#include <cassert>
#include <system_error>
#include <utility>
#include <variant>

#include "yanc/util/error.hpp"

namespace yanc {

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Errc e) : state_(std::in_place_index<1>, make_error_code(e)) {
    assert(e != Errc::ok && "use a value for success");
  }
  Result(std::error_code ec) : state_(std::in_place_index<1>, ec) {
    assert(ec && "use a value for success");
  }

  bool ok() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// Error code; default-constructed (falsy) when ok().
  std::error_code error() const noexcept {
    return ok() ? std::error_code{} : std::get<1>(state_);
  }

  T& value() & {
    assert(ok());
    return std::get<0>(state_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<0>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<0>(state_));
  }

  T value_or(T fallback) const& { return ok() ? value() : fallback; }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

 private:
  std::variant<T, std::error_code> state_;
};

/// Result<void> analogue: success or an error code.  Falsy error means ok.
using Status = std::error_code;

inline Status ok_status() noexcept { return {}; }

}  // namespace yanc
