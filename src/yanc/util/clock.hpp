// Virtual time.  Everything in the simulated data plane, the flow-timeout
// machinery, and the distributed transport is driven from a VirtualClock so
// tests and benchmarks are deterministic and can fast-forward through idle
// periods (e.g. flow idle-timeouts) instantly.
#pragma once

#include <chrono>
#include <cstdint>

namespace yanc {

/// Monotonic virtual clock with nanosecond resolution.
///
/// Not a std::chrono clock on purpose: instances are advanced explicitly by
/// the simulation scheduler, so several independent simulations can coexist
/// in one process (and in one test binary) without sharing time.
class VirtualClock {
 public:
  using duration = std::chrono::nanoseconds;

  /// Current virtual time since the clock's epoch (construction).
  duration now() const noexcept { return duration(now_ns_); }
  std::uint64_t now_ns() const noexcept { return now_ns_; }

  /// Advances time.  Virtual time never goes backwards.
  void advance(duration d) noexcept {
    if (d.count() > 0) now_ns_ += static_cast<std::uint64_t>(d.count());
  }
  void advance_ns(std::uint64_t ns) noexcept { now_ns_ += ns; }

  /// Jump directly to an absolute virtual time (no-op if in the past).
  void advance_to(duration t) noexcept {
    if (static_cast<std::uint64_t>(t.count()) > now_ns_)
      now_ns_ = static_cast<std::uint64_t>(t.count());
  }

 private:
  std::uint64_t now_ns_ = 0;
};

}  // namespace yanc
