#include "yanc/util/log.hpp"

#include <atomic>

namespace yanc {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::off)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::error: return "error";
    case LogLevel::warn: return "warn";
    case LogLevel::info: return "info";
    case LogLevel::debug: return "debug";
    default: return "off";
  }
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view component,
         std::string_view message) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed))
    return;
  // Build the whole line first: stdio only guarantees atomicity per call,
  // so a multi-part fprintf from two threads can interleave mid-line.
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += component;
  line += ": ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace yanc
