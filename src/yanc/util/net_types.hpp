// Network address value types shared by the packet library, the OpenFlow
// codecs, and the netfs typed-file parsers (match.dl_src is a MAC in text
// form, match.nw_src takes CIDR notation per §3.4 of the paper).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "yanc/util/result.hpp"

namespace yanc {

/// 48-bit Ethernet MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> bytes)
      : bytes_(bytes) {}

  /// From the low 48 bits of an integer (byte 0 = most significant).
  static MacAddress from_u64(std::uint64_t v);
  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive).
  static Result<MacAddress> parse(std::string_view s);

  const std::array<std::uint8_t, 6>& bytes() const noexcept { return bytes_; }
  std::uint64_t to_u64() const noexcept;
  std::string to_string() const;

  bool is_broadcast() const noexcept;
  bool is_multicast() const noexcept { return bytes_[0] & 0x01; }

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

/// IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}

  /// Parses dotted-quad "10.0.0.1".
  static Result<Ipv4Address> parse(std::string_view s);

  std::uint32_t value() const noexcept { return value_; }
  std::string to_string() const;

  auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv4 prefix in CIDR notation; "10.0.0.0/8" or a bare address (/32).
class Cidr {
 public:
  constexpr Cidr() = default;
  Cidr(Ipv4Address addr, int prefix_len);

  static Result<Cidr> parse(std::string_view s);

  Ipv4Address address() const noexcept { return addr_; }
  int prefix_len() const noexcept { return prefix_len_; }
  std::uint32_t mask() const noexcept;

  bool contains(Ipv4Address a) const noexcept;
  /// True if every address in `other` is in *this.
  bool contains(const Cidr& other) const noexcept;

  std::string to_string() const;

  auto operator<=>(const Cidr&) const = default;

 private:
  Ipv4Address addr_;
  int prefix_len_ = 32;
};

}  // namespace yanc
