// Deterministic random numbers for fault schedules and stress tests.
//
// Every source of randomness in yanc goes through an explicitly seeded
// Rng so a failing run is a (seed, schedule) pair anyone can replay:
// xoshiro256++ for the stream, splitmix64 to expand the one-word seed
// into the full state (the construction recommended by the xoshiro
// authors).  Not a cryptographic generator, and deliberately not
// std::mt19937: the standard engines are implementation-toleranced in
// distribution code, while this is bit-exact everywhere.
#pragma once

#include <cstdint>

namespace yanc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

  /// Resets the stream; the same seed always yields the same sequence.
  void reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// The seed this stream was built from (print it in test failures).
  std::uint64_t seed() const noexcept { return seed_; }

  std::uint64_t next_u64() {
    const std::uint64_t result =
        rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (p <= 0 never, p >= 1 always).  Always
  /// consumes one draw so schedules stay aligned across plan changes.
  bool chance(double p) { return next_double() < p; }

  /// Uniform in [0, bound); bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_ = 0;
  std::uint64_t state_[4] = {};
};

}  // namespace yanc::util
