// FlowBuilder: a fluent way to assemble FlowSpecs in application code.
//
//   auto spec = FlowBuilder()
//                   .dl_type(0x0800).nw_proto(6).tp_dst(22)
//                   .output(2).priority(100).idle_timeout(30)
//                   .build();
//
// Purely a convenience over FlowSpec — everything it produces can equally
// be written as match.* / action.* files by hand (§3.4).
#pragma once

#include "yanc/flow/flowspec.hpp"

namespace yanc::flow {

class FlowBuilder {
 public:
  // --- match fields -----------------------------------------------------
  FlowBuilder& in_port(std::uint16_t port) {
    spec_.match.in_port = port;
    return *this;
  }
  FlowBuilder& dl_src(const MacAddress& mac) {
    spec_.match.dl_src = mac;
    return *this;
  }
  FlowBuilder& dl_dst(const MacAddress& mac) {
    spec_.match.dl_dst = mac;
    return *this;
  }
  FlowBuilder& dl_type(std::uint16_t ethertype) {
    spec_.match.dl_type = ethertype;
    return *this;
  }
  FlowBuilder& dl_vlan(std::uint16_t vid) {
    spec_.match.dl_vlan = vid;
    return *this;
  }
  FlowBuilder& nw_src(const Cidr& cidr) {
    spec_.match.nw_src = cidr;
    return *this;
  }
  FlowBuilder& nw_dst(const Cidr& cidr) {
    spec_.match.nw_dst = cidr;
    return *this;
  }
  FlowBuilder& nw_proto(std::uint8_t proto) {
    spec_.match.nw_proto = proto;
    return *this;
  }
  FlowBuilder& tp_src(std::uint16_t port) {
    spec_.match.tp_src = port;
    return *this;
  }
  FlowBuilder& tp_dst(std::uint16_t port) {
    spec_.match.tp_dst = port;
    return *this;
  }

  // --- actions --------------------------------------------------------------
  FlowBuilder& output(std::uint16_t port) {
    spec_.actions.push_back(Action::output(port));
    return *this;
  }
  FlowBuilder& flood() {
    spec_.actions.push_back(Action::flood());
    return *this;
  }
  FlowBuilder& to_controller() {
    spec_.actions.push_back(Action::to_controller());
    return *this;
  }
  FlowBuilder& set_dl_dst(const MacAddress& mac) {
    spec_.actions.push_back(Action{ActionKind::set_dl_dst, mac});
    return *this;
  }
  FlowBuilder& set_dl_src(const MacAddress& mac) {
    spec_.actions.push_back(Action{ActionKind::set_dl_src, mac});
    return *this;
  }
  FlowBuilder& set_nw_dst(const Ipv4Address& ip) {
    spec_.actions.push_back(Action{ActionKind::set_nw_dst, ip});
    return *this;
  }
  FlowBuilder& set_nw_src(const Ipv4Address& ip) {
    spec_.actions.push_back(Action{ActionKind::set_nw_src, ip});
    return *this;
  }
  FlowBuilder& set_tp_dst(std::uint16_t port) {
    spec_.actions.push_back(Action{ActionKind::set_tp_dst, port});
    return *this;
  }
  /// Drop = no actions; clears anything added so far.
  FlowBuilder& drop() {
    spec_.actions.clear();
    return *this;
  }

  // --- entry metadata ---------------------------------------------------------
  FlowBuilder& priority(std::uint16_t p) {
    spec_.priority = p;
    return *this;
  }
  FlowBuilder& idle_timeout(std::uint16_t seconds) {
    spec_.idle_timeout = seconds;
    return *this;
  }
  FlowBuilder& hard_timeout(std::uint16_t seconds) {
    spec_.hard_timeout = seconds;
    return *this;
  }
  FlowBuilder& cookie(std::uint64_t value) {
    spec_.cookie = value;
    return *this;
  }
  FlowBuilder& table(std::uint8_t id) {
    spec_.table_id = id;
    return *this;
  }
  FlowBuilder& goto_table(std::uint8_t id) {
    spec_.goto_table = id;
    return *this;
  }

  FlowSpec build() const { return spec_; }

 private:
  FlowSpec spec_;
};

}  // namespace yanc::flow
