#include "yanc/flow/match.hpp"

#include <sstream>

#include "yanc/util/strings.hpp"

namespace yanc::flow {
namespace {

template <typename T>
bool field_matches(const std::optional<T>& want, const T& have) {
  return !want || *want == have;
}

// Narrower-or-equal for scalar (exact) fields.
template <typename T>
bool field_subsumes(const std::optional<T>& wide,
                    const std::optional<T>& narrow) {
  if (!wide) return true;          // wildcard subsumes anything
  if (!narrow) return false;       // exact cannot subsume wildcard
  return *wide == *narrow;
}

bool cidr_subsumes(const std::optional<Cidr>& wide,
                   const std::optional<Cidr>& narrow) {
  if (!wide) return true;
  if (!narrow) return false;
  return wide->contains(*narrow);
}

// Intersects two optional exact fields; returns false when disjoint.
template <typename T>
bool intersect_field(const std::optional<T>& a, const std::optional<T>& b,
                     std::optional<T>& out) {
  if (!a) {
    out = b;
    return true;
  }
  if (!b) {
    out = a;
    return true;
  }
  if (*a != *b) return false;
  out = a;
  return true;
}

bool intersect_cidr(const std::optional<Cidr>& a, const std::optional<Cidr>& b,
                    std::optional<Cidr>& out) {
  if (!a) {
    out = b;
    return true;
  }
  if (!b) {
    out = a;
    return true;
  }
  if (a->contains(*b)) {
    out = b;  // the narrower prefix
    return true;
  }
  if (b->contains(*a)) {
    out = a;
    return true;
  }
  return false;  // disjoint prefixes
}

}  // namespace

bool Match::matches(const FieldValues& f) const {
  return field_matches(in_port, f.in_port) &&
         field_matches(dl_src, f.dl_src) &&
         field_matches(dl_dst, f.dl_dst) &&
         field_matches(dl_type, f.dl_type) &&
         field_matches(dl_vlan, f.dl_vlan) &&
         field_matches(dl_vlan_pcp, f.dl_vlan_pcp) &&
         (!nw_src || nw_src->contains(f.nw_src)) &&
         (!nw_dst || nw_dst->contains(f.nw_dst)) &&
         field_matches(nw_proto, f.nw_proto) &&
         field_matches(nw_tos, f.nw_tos) &&
         field_matches(tp_src, f.tp_src) &&
         field_matches(tp_dst, f.tp_dst);
}

bool Match::subsumes(const Match& other) const {
  return field_subsumes(in_port, other.in_port) &&
         field_subsumes(dl_src, other.dl_src) &&
         field_subsumes(dl_dst, other.dl_dst) &&
         field_subsumes(dl_type, other.dl_type) &&
         field_subsumes(dl_vlan, other.dl_vlan) &&
         field_subsumes(dl_vlan_pcp, other.dl_vlan_pcp) &&
         cidr_subsumes(nw_src, other.nw_src) &&
         cidr_subsumes(nw_dst, other.nw_dst) &&
         field_subsumes(nw_proto, other.nw_proto) &&
         field_subsumes(nw_tos, other.nw_tos) &&
         field_subsumes(tp_src, other.tp_src) &&
         field_subsumes(tp_dst, other.tp_dst);
}

std::optional<Match> Match::intersect(const Match& other) const {
  Match out;
  if (!intersect_field(in_port, other.in_port, out.in_port) ||
      !intersect_field(dl_src, other.dl_src, out.dl_src) ||
      !intersect_field(dl_dst, other.dl_dst, out.dl_dst) ||
      !intersect_field(dl_type, other.dl_type, out.dl_type) ||
      !intersect_field(dl_vlan, other.dl_vlan, out.dl_vlan) ||
      !intersect_field(dl_vlan_pcp, other.dl_vlan_pcp, out.dl_vlan_pcp) ||
      !intersect_cidr(nw_src, other.nw_src, out.nw_src) ||
      !intersect_cidr(nw_dst, other.nw_dst, out.nw_dst) ||
      !intersect_field(nw_proto, other.nw_proto, out.nw_proto) ||
      !intersect_field(nw_tos, other.nw_tos, out.nw_tos) ||
      !intersect_field(tp_src, other.tp_src, out.tp_src) ||
      !intersect_field(tp_dst, other.tp_dst, out.tp_dst))
    return std::nullopt;
  return out;
}

int Match::wildcard_count() const {
  int n = 0;
  n += !in_port;
  n += !dl_src;
  n += !dl_dst;
  n += !dl_type;
  n += !dl_vlan;
  n += !dl_vlan_pcp;
  n += !nw_src;
  n += !nw_dst;
  n += !nw_proto;
  n += !nw_tos;
  n += !tp_src;
  n += !tp_dst;
  return n;
}

Match Match::exact_from(const FieldValues& f) {
  Match m;
  m.in_port = f.in_port;
  m.dl_src = f.dl_src;
  m.dl_dst = f.dl_dst;
  m.dl_type = f.dl_type;
  m.dl_vlan = f.dl_vlan;
  m.dl_vlan_pcp = f.dl_vlan_pcp;
  m.nw_src = Cidr(f.nw_src, 32);
  m.nw_dst = Cidr(f.nw_dst, 32);
  m.nw_proto = f.nw_proto;
  m.nw_tos = f.nw_tos;
  m.tp_src = f.tp_src;
  m.tp_dst = f.tp_dst;
  return m;
}

std::string Match::to_string() const {
  std::ostringstream out;
  bool first = true;
  auto emit = [&](const char* name, const std::string& value) {
    if (!first) out << ',';
    first = false;
    out << name << '=' << value;
  };
  if (in_port) emit("in_port", std::to_string(*in_port));
  if (dl_src) emit("dl_src", dl_src->to_string());
  if (dl_dst) emit("dl_dst", dl_dst->to_string());
  if (dl_type) emit("dl_type", "0x" + to_hex(*dl_type, 2));
  if (dl_vlan) emit("dl_vlan", std::to_string(*dl_vlan));
  if (dl_vlan_pcp) emit("dl_vlan_pcp", std::to_string(*dl_vlan_pcp));
  if (nw_src) emit("nw_src", nw_src->to_string());
  if (nw_dst) emit("nw_dst", nw_dst->to_string());
  if (nw_proto) emit("nw_proto", std::to_string(*nw_proto));
  if (nw_tos) emit("nw_tos", std::to_string(*nw_tos));
  if (tp_src) emit("tp_src", std::to_string(*tp_src));
  if (tp_dst) emit("tp_dst", std::to_string(*tp_dst));
  return out.str();
}

}  // namespace yanc::flow
