// FlowSpec: one complete flow entry — what a flow directory (§3.4, Fig. 3)
// denotes once its version file is committed.  The single source of truth
// passed between the yanc FS, drivers, views, and the software switch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "yanc/flow/action.hpp"
#include "yanc/flow/match.hpp"

namespace yanc::flow {

inline constexpr std::uint16_t kDefaultPriority = 32768;

struct FlowSpec {
  Match match;
  std::vector<Action> actions;  // empty list = drop
  std::uint16_t priority = kDefaultPriority;
  std::uint16_t idle_timeout = 0;  // seconds; 0 = never
  std::uint16_t hard_timeout = 0;
  std::uint64_t cookie = 0;
  std::uint8_t table_id = 0;   // OpenFlow 1.3 only; table 0 under 1.0
  int goto_table = -1;         // OpenFlow 1.3 goto-table instruction; -1 = none
  std::uint64_t version = 0;   // commit counter from the version file

  bool operator==(const FlowSpec&) const = default;

  std::string to_string() const;
};

/// Statistics mirrored into a flow's counters/ directory.
struct FlowStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

}  // namespace yanc::flow
