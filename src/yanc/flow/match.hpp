// The protocol-neutral flow match model.
//
// A Match is the 12-tuple the paper's flow directories expose as match.*
// files (§3.4): every field is optional, and an absent field means
// wildcard.  The same model is compiled to OpenFlow 1.0 fixed matches and
// OpenFlow 1.3 OXM TLVs by yanc::ofp, evaluated against packets by the
// software switch, and intersected by the slicer (views restrict flows to
// a header-space slice).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "yanc/util/net_types.hpp"

namespace yanc::flow {

/// Concrete header values extracted from one packet; what a Match is
/// evaluated against.
struct FieldValues {
  std::uint16_t in_port = 0;
  MacAddress dl_src;
  MacAddress dl_dst;
  std::uint16_t dl_type = 0;
  std::uint16_t dl_vlan = 0xffff;  // 0xffff = untagged (OF 1.0 convention)
  std::uint8_t dl_vlan_pcp = 0;
  Ipv4Address nw_src;
  Ipv4Address nw_dst;
  std::uint8_t nw_proto = 0;
  std::uint8_t nw_tos = 0;
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;
};

/// A flow table match; every field optional (wildcard when absent).
/// IPv4 source/destination carry a prefix length via Cidr, as the paper's
/// match.nw_src file takes CIDR notation.
struct Match {
  std::optional<std::uint16_t> in_port;
  std::optional<MacAddress> dl_src;
  std::optional<MacAddress> dl_dst;
  std::optional<std::uint16_t> dl_type;
  std::optional<std::uint16_t> dl_vlan;
  std::optional<std::uint8_t> dl_vlan_pcp;
  std::optional<Cidr> nw_src;
  std::optional<Cidr> nw_dst;
  std::optional<std::uint8_t> nw_proto;
  std::optional<std::uint8_t> nw_tos;
  std::optional<std::uint16_t> tp_src;
  std::optional<std::uint16_t> tp_dst;

  bool operator==(const Match&) const = default;

  /// True when this match is satisfied by the packet's field values.
  bool matches(const FieldValues& fields) const;

  /// True when every packet matching `other` also matches *this (i.e.
  /// *this is the same or wider).
  bool subsumes(const Match& other) const;

  /// Intersection of two matches: the match satisfied exactly by packets
  /// satisfying both; nullopt when the intersection is empty.  Used by the
  /// slicer to confine a view's flows to its slice predicate.
  std::optional<Match> intersect(const Match& other) const;

  /// Number of wildcarded fields (12 = match-all).
  int wildcard_count() const;
  bool is_match_all() const { return wildcard_count() == 12; }

  /// Exact-match constructor from concrete packet fields.
  static Match exact_from(const FieldValues& fields);

  /// "dl_type=0x0800,nw_src=10.0.0.0/8,..." (empty string = match-all).
  std::string to_string() const;
};

}  // namespace yanc::flow
