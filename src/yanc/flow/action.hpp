// Flow actions: what the action.* files in a flow directory denote (§3.4).
// The set mirrors OpenFlow 1.0 actions (a strict subset of 1.3's), which is
// also exactly what the software switch executes.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "yanc/util/net_types.hpp"
#include "yanc/util/result.hpp"

namespace yanc::flow {

/// Reserved output "ports" (values mirror OpenFlow 1.0 ofp_port).
namespace port_no {
inline constexpr std::uint16_t max = 0xff00;        // highest physical port
inline constexpr std::uint16_t in_port = 0xfff8;    // bounce out the ingress
inline constexpr std::uint16_t flood = 0xfffb;      // all except ingress
inline constexpr std::uint16_t all = 0xfffc;        // all ports
inline constexpr std::uint16_t controller = 0xfffd;  // packet-in to control
inline constexpr std::uint16_t local = 0xfffe;
inline constexpr std::uint16_t none = 0xffff;
}  // namespace port_no

enum class ActionKind : std::uint8_t {
  output,       // forward out a port (or reserved port)
  drop,         // explicit drop (empty action list also drops)
  set_vlan,     // set VLAN id
  strip_vlan,
  set_dl_src,
  set_dl_dst,
  set_nw_src,
  set_nw_dst,
  set_nw_tos,
  set_tp_src,
  set_tp_dst,
  enqueue,      // output to a port's queue
};

/// One action.  The value variant's active member depends on kind:
/// ports/vlan/tp -> u16, tos -> u8, dl -> MacAddress, nw -> Ipv4Address,
/// enqueue -> (port, queue) packed into u32 (port << 16 | queue).
struct Action {
  ActionKind kind = ActionKind::drop;
  std::variant<std::monostate, std::uint16_t, std::uint8_t, std::uint32_t,
               MacAddress, Ipv4Address>
      value;

  bool operator==(const Action&) const = default;

  static Action output(std::uint16_t port) {
    return {ActionKind::output, port};
  }
  static Action to_controller() { return output(port_no::controller); }
  static Action flood() { return output(port_no::flood); }

  std::uint16_t port() const { return std::get<std::uint16_t>(value); }
  MacAddress mac() const { return std::get<MacAddress>(value); }
  Ipv4Address ip() const { return std::get<Ipv4Address>(value); }

  /// File-system text form used in action.* files ("2", "flood",
  /// "aa:bb:...", "10.0.0.1").  The action *name* is the file name.
  std::string value_text() const;

  std::string to_string() const;
};

/// Parses the value text of an action.<name> file.  `name` is the suffix
/// after "action." ("out", "set_dl_src", ...).
Result<Action> parse_action(std::string_view name, std::string_view value);

/// The file-name suffix for an action ("out" for output, ...).
std::string action_file_name(ActionKind kind);

/// Renders an action list as "output:2 set_vlan:10 ...".
std::string actions_to_string(const std::vector<Action>& actions);

}  // namespace yanc::flow
