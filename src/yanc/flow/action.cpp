#include "yanc/flow/action.hpp"

#include "yanc/util/strings.hpp"

namespace yanc::flow {
namespace {

Result<std::uint16_t> parse_port_value(std::string_view s) {
  s = trim(s);
  if (s == "controller") return port_no::controller;
  if (s == "flood") return port_no::flood;
  if (s == "all") return port_no::all;
  if (s == "in_port") return port_no::in_port;
  if (s == "local") return port_no::local;
  auto v = parse_u64(s);
  if (!v || *v > 0xffff) return Errc::invalid_argument;
  return static_cast<std::uint16_t>(*v);
}

Result<std::uint16_t> parse_u16(std::string_view s, std::uint64_t max) {
  auto v = parse_u64(trim(s));
  if (!v || *v > max) return Errc::invalid_argument;
  return static_cast<std::uint16_t>(*v);
}

std::string port_text(std::uint16_t port) {
  switch (port) {
    case port_no::controller: return "controller";
    case port_no::flood: return "flood";
    case port_no::all: return "all";
    case port_no::in_port: return "in_port";
    case port_no::local: return "local";
    default: return std::to_string(port);
  }
}

}  // namespace

std::string Action::value_text() const {
  switch (kind) {
    case ActionKind::output: return port_text(port());
    case ActionKind::drop:
    case ActionKind::strip_vlan: return "1";
    case ActionKind::set_vlan:
    case ActionKind::set_tp_src:
    case ActionKind::set_tp_dst: return std::to_string(port());
    case ActionKind::set_nw_tos:
      return std::to_string(std::get<std::uint8_t>(value));
    case ActionKind::set_dl_src:
    case ActionKind::set_dl_dst: return mac().to_string();
    case ActionKind::set_nw_src:
    case ActionKind::set_nw_dst: return ip().to_string();
    case ActionKind::enqueue: {
      std::uint32_t packed = std::get<std::uint32_t>(value);
      return std::to_string(packed >> 16) + ":" +
             std::to_string(packed & 0xffff);
    }
  }
  return {};
}

std::string Action::to_string() const {
  return action_file_name(kind) + ":" + value_text();
}

std::string action_file_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::output: return "out";
    case ActionKind::drop: return "drop";
    case ActionKind::set_vlan: return "set_vlan";
    case ActionKind::strip_vlan: return "strip_vlan";
    case ActionKind::set_dl_src: return "set_dl_src";
    case ActionKind::set_dl_dst: return "set_dl_dst";
    case ActionKind::set_nw_src: return "set_nw_src";
    case ActionKind::set_nw_dst: return "set_nw_dst";
    case ActionKind::set_nw_tos: return "set_nw_tos";
    case ActionKind::set_tp_src: return "set_tp_src";
    case ActionKind::set_tp_dst: return "set_tp_dst";
    case ActionKind::enqueue: return "enqueue";
  }
  return {};
}

Result<Action> parse_action(std::string_view name, std::string_view value) {
  Action a;
  if (name == "out") {
    auto port = parse_port_value(value);
    if (!port) return port.error();
    return Action::output(*port);
  }
  if (name == "drop") {
    a.kind = ActionKind::drop;
    return a;
  }
  if (name == "strip_vlan") {
    a.kind = ActionKind::strip_vlan;
    return a;
  }
  if (name == "set_vlan") {
    auto v = parse_u16(value, 4095);
    if (!v) return v.error();
    return Action{ActionKind::set_vlan, *v};
  }
  if (name == "set_tp_src" || name == "set_tp_dst") {
    auto v = parse_u16(value, 0xffff);
    if (!v) return v.error();
    return Action{name == "set_tp_src" ? ActionKind::set_tp_src
                                       : ActionKind::set_tp_dst,
                  *v};
  }
  if (name == "set_nw_tos") {
    auto v = parse_u64(trim(value));
    if (!v || *v > 0xff) return Errc::invalid_argument;
    return Action{ActionKind::set_nw_tos, static_cast<std::uint8_t>(*v)};
  }
  if (name == "set_dl_src" || name == "set_dl_dst") {
    auto mac = MacAddress::parse(value);
    if (!mac) return mac.error();
    return Action{name == "set_dl_src" ? ActionKind::set_dl_src
                                       : ActionKind::set_dl_dst,
                  *mac};
  }
  if (name == "set_nw_src" || name == "set_nw_dst") {
    auto ip = Ipv4Address::parse(value);
    if (!ip) return ip.error();
    return Action{name == "set_nw_src" ? ActionKind::set_nw_src
                                       : ActionKind::set_nw_dst,
                  *ip};
  }
  if (name == "enqueue") {
    auto parts = split(trim(value), ':');
    if (parts.size() != 2) return Errc::invalid_argument;
    auto port = parse_u64(parts[0]);
    auto queue = parse_u64(parts[1]);
    if (!port || !queue || *port > 0xffff || *queue > 0xffff)
      return Errc::invalid_argument;
    return Action{ActionKind::enqueue,
                  static_cast<std::uint32_t>((*port << 16) | *queue)};
  }
  return Errc::invalid_argument;
}

std::string actions_to_string(const std::vector<Action>& actions) {
  std::string out;
  for (const auto& a : actions) {
    if (!out.empty()) out += ' ';
    out += a.to_string();
  }
  return out.empty() ? "drop" : out;
}

}  // namespace yanc::flow
