#include "yanc/flow/flowspec.hpp"

#include <sstream>

namespace yanc::flow {

std::string FlowSpec::to_string() const {
  std::ostringstream out;
  out << "prio=" << priority;
  if (table_id) out << " table=" << static_cast<int>(table_id);
  std::string m = match.to_string();
  out << " match=[" << (m.empty() ? "*" : m) << "]";
  out << " actions=[" << actions_to_string(actions) << "]";
  if (idle_timeout) out << " idle=" << idle_timeout;
  if (hard_timeout) out << " hard=" << hard_timeout;
  return out.str();
}

}  // namespace yanc::flow
