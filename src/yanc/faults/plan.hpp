// FaultPlan: the on-disk policy format of the /yanc/.faults subtree.
//
// A plan is one line of `key=value` pairs, each key a fault primitive and
// each value its per-message probability:
//
//   drop=0.05 duplicate=0.01 reorder=0.02 corrupt=0 delay=0 disconnect=0
//
// plus `delay_msgs=N` (how many later sends a delayed message is held
// behind) and directed partitions: `partition=1->2` cuts node 1's traffic
// to node 2 while leaving 2->1 alive (the asymmetric failure that
// provokes split-brain), `partition=1<->2` cuts both directions.  `off`,
// `clear`, or an empty write resets everything to zero.  Parsing is
// strict — an unknown key or an out-of-range probability fails with
// EINVAL and the previous plan stays in force, the same
// validate-before-apply contract the typed netfs files follow.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "yanc/util/result.hpp"

namespace yanc::faults {

struct FaultPlan {
  double drop = 0;        // message vanishes
  double duplicate = 0;   // message delivered twice
  double reorder = 0;     // message overtaken by the next one
  double corrupt = 0;     // one random byte flipped
  double delay = 0;       // message held behind `delay_msgs` later sends
  double disconnect = 0;  // connection severed mid-send
  std::uint32_t delay_msgs = 2;

  /// One directed link cut (transport scope): messages from `from` to
  /// `to` are eaten on the wire.  `partition=a<->b` parses into the two
  /// directed edges.
  struct Edge {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    bool operator==(const Edge&) const = default;
  };
  std::vector<Edge> partitions;

  bool is_partitioned(std::uint64_t from, std::uint64_t to) const;

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           delay > 0 || disconnect > 0 || !partitions.empty();
  }

  static Result<FaultPlan> parse(std::string_view text);
  /// Canonical single-line form; parse(format()) round-trips.
  std::string format() const;

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace yanc::faults
