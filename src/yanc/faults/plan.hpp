// FaultPlan: the on-disk policy format of the /yanc/.faults subtree.
//
// A plan is one line of `key=value` pairs, each key a fault primitive and
// each value its per-message probability:
//
//   drop=0.05 duplicate=0.01 reorder=0.02 corrupt=0 delay=0 disconnect=0
//
// plus `delay_msgs=N` (how many later sends a delayed message is held
// behind).  `off`, `clear`, or an empty write resets everything to zero.
// Parsing is strict — an unknown key or an out-of-range probability fails
// with EINVAL and the previous plan stays in force, the same
// validate-before-apply contract the typed netfs files follow.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "yanc/util/result.hpp"

namespace yanc::faults {

struct FaultPlan {
  double drop = 0;        // message vanishes
  double duplicate = 0;   // message delivered twice
  double reorder = 0;     // message overtaken by the next one
  double corrupt = 0;     // one random byte flipped
  double delay = 0;       // message held behind `delay_msgs` later sends
  double disconnect = 0;  // connection severed mid-send
  std::uint32_t delay_msgs = 2;

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           delay > 0 || disconnect > 0;
  }

  static Result<FaultPlan> parse(std::string_view text);
  /// Canonical single-line form; parse(format()) round-trips.
  std::string format() const;

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace yanc::faults
