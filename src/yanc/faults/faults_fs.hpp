// FaultsFs: the fault injector's control knobs as a writable file system.
//
// The yanc way to configure anything is a file write, so fault injection
// is driven from the shell like everything else:
//
//   $ cat /yanc/.faults/seed
//   1
//   $ echo 'drop=0.05' > /yanc/.faults/channel/policy      # switch links
//   $ echo 'drop=0.3'  > /yanc/.faults/transport/policy    # replica links
//   $ echo 7 > /yanc/.faults/seed                          # replay seed 7
//   $ echo off > /yanc/.faults/channel/policy              # heal
//
// Reads format the live plan (cat always shows what is in force); writes
// parse-then-apply, so an invalid policy fails with EINVAL and never
// becomes visible.  Mounted at /yanc/.faults, a sibling of /yanc/.stats —
// one subtree injects the failures, the other watches the recovery.
#pragma once

#include <memory>

#include "yanc/faults/injector.hpp"
#include "yanc/vfs/filesystem.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::faults {

class FaultsFs : public vfs::Filesystem {
 public:
  explicit FaultsFs(std::shared_ptr<Injector> injector);

  vfs::NodeId root() const override { return kRoot; }

  // --- namespace ----------------------------------------------------------
  Result<vfs::NodeId> lookup(vfs::NodeId parent,
                             const std::string& name) override;
  Result<vfs::Stat> getattr(vfs::NodeId node) override;
  Result<std::vector<vfs::DirEntry>> readdir(vfs::NodeId dir) override;
  Result<std::string> readlink(vfs::NodeId node) override;
  Result<std::string> read(vfs::NodeId node, std::uint64_t offset,
                           std::uint64_t size,
                           const vfs::Credentials& creds) override;
  Result<std::vector<std::uint8_t>> getxattr(vfs::NodeId node,
                                             const std::string& name) override;
  Result<std::vector<std::string>> listxattr(vfs::NodeId node) override;
  Status access(vfs::NodeId node, std::uint8_t want,
                const vfs::Credentials& creds) override;

  // --- control writes -----------------------------------------------------
  Result<std::uint64_t> write(vfs::NodeId node, std::uint64_t offset,
                              std::string_view data,
                              const vfs::Credentials& creds) override;
  Status truncate(vfs::NodeId node, std::uint64_t size,
                  const vfs::Credentials& creds) override;

  // --- namespace mutations: the tree is fixed -----------------------------
  Result<vfs::NodeId> mkdir(vfs::NodeId, const std::string&, std::uint32_t,
                            const vfs::Credentials&) override;
  Result<vfs::NodeId> create(vfs::NodeId, const std::string&, std::uint32_t,
                             const vfs::Credentials&) override;
  Result<vfs::NodeId> symlink(vfs::NodeId, const std::string&,
                              const std::string&,
                              const vfs::Credentials&) override;
  Status link(vfs::NodeId, vfs::NodeId, const std::string&,
              const vfs::Credentials&) override;
  Status unlink(vfs::NodeId, const std::string&,
                const vfs::Credentials&) override;
  Status rmdir(vfs::NodeId, const std::string&,
               const vfs::Credentials&) override;
  Status rename(vfs::NodeId, const std::string&, vfs::NodeId,
                const std::string&, const vfs::Credentials&) override;
  Status chmod(vfs::NodeId, std::uint32_t, const vfs::Credentials&) override;
  Status chown(vfs::NodeId, vfs::Uid, vfs::Gid,
               const vfs::Credentials&) override;
  Status setxattr(vfs::NodeId, const std::string&,
                  std::vector<std::uint8_t>, const vfs::Credentials&) override;
  Status removexattr(vfs::NodeId, const std::string&,
                     const vfs::Credentials&) override;

  // --- monitoring ---------------------------------------------------------
  Result<vfs::WatchRegistry::WatchId> watch(vfs::NodeId node,
                                            std::uint32_t mask,
                                            vfs::WatchQueuePtr queue) override;
  void unwatch(vfs::WatchRegistry::WatchId id) override;

  const std::shared_ptr<Injector>& injector() const noexcept {
    return injector_;
  }

 private:
  // The whole tree is six fixed nodes.
  static constexpr vfs::NodeId kRoot = 1;
  static constexpr vfs::NodeId kChannelDir = 2;
  static constexpr vfs::NodeId kTransportDir = 3;
  static constexpr vfs::NodeId kChannelPolicy = 4;
  static constexpr vfs::NodeId kTransportPolicy = 5;
  static constexpr vfs::NodeId kSeed = 6;

  static bool is_dir(vfs::NodeId node) {
    return node == kRoot || node == kChannelDir || node == kTransportDir;
  }
  static bool is_file(vfs::NodeId node) {
    return node == kChannelPolicy || node == kTransportPolicy ||
           node == kSeed;
  }
  std::string content_of(vfs::NodeId node) const;
  Status apply_write(vfs::NodeId node, std::string_view text);

  std::shared_ptr<Injector> injector_;
  dbg::Mutex<dbg::Rank::faults_fs> mu_;
  vfs::WatchRegistry watches_;
};

/// Creates a FaultsFs over `injector`, binds its counters into `vfs`'s
/// metrics registry, and mounts it at `mount_path` (creating the mount
/// point).  Sibling of obs::mount_stats_fs.
Result<std::shared_ptr<FaultsFs>> mount_faults_fs(
    vfs::Vfs& vfs, std::shared_ptr<Injector> injector,
    const std::string& mount_path = "/yanc/.faults");

}  // namespace yanc::faults
