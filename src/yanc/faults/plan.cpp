#include "yanc/faults/plan.hpp"

#include <cstdio>
#include <cstdlib>

#include "yanc/util/strings.hpp"

namespace yanc::faults {

namespace {

Result<double> parse_probability(std::string_view text) {
  std::string buf(text);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') return Errc::invalid_argument;
  if (!(v >= 0.0 && v <= 1.0)) return Errc::invalid_argument;  // rejects NaN
  return v;
}

std::string format_probability(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
  auto trimmed = trim(text);
  FaultPlan plan;
  if (trimmed.empty() || trimmed == "off" || trimmed == "clear") return plan;
  for (const auto& token : split_nonempty(trimmed, ' ')) {
    auto eq = token.find('=');
    if (eq == std::string::npos) return Errc::invalid_argument;
    auto key = token.substr(0, eq);
    auto value = token.substr(eq + 1);
    if (key == "delay_msgs") {
      auto n = parse_u64(value);
      if (!n || *n == 0 || *n > 1024) return Errc::invalid_argument;
      plan.delay_msgs = static_cast<std::uint32_t>(*n);
      continue;
    }
    auto p = parse_probability(value);
    if (!p) return p.error();
    if (key == "drop")
      plan.drop = *p;
    else if (key == "duplicate" || key == "dup")
      plan.duplicate = *p;
    else if (key == "reorder")
      plan.reorder = *p;
    else if (key == "corrupt")
      plan.corrupt = *p;
    else if (key == "delay")
      plan.delay = *p;
    else if (key == "disconnect")
      plan.disconnect = *p;
    else
      return Errc::invalid_argument;
  }
  return plan;
}

std::string FaultPlan::format() const {
  std::string out;
  out += "drop=" + format_probability(drop);
  out += " duplicate=" + format_probability(duplicate);
  out += " reorder=" + format_probability(reorder);
  out += " corrupt=" + format_probability(corrupt);
  out += " delay=" + format_probability(delay);
  out += " disconnect=" + format_probability(disconnect);
  out += " delay_msgs=" + std::to_string(delay_msgs);
  return out;
}

}  // namespace yanc::faults
