#include "yanc/faults/plan.hpp"

#include <cstdio>
#include <cstdlib>

#include "yanc/util/strings.hpp"

namespace yanc::faults {

namespace {

Result<double> parse_probability(std::string_view text) {
  std::string buf(text);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') return Errc::invalid_argument;
  if (!(v >= 0.0 && v <= 1.0)) return Errc::invalid_argument;  // rejects NaN
  return v;
}

std::string format_probability(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

// Parses "1->2" or "1<->2"; the bidirectional form appends both edges.
Status parse_partition(std::string_view value,
                       std::vector<FaultPlan::Edge>& out) {
  bool both = false;
  auto arrow = value.find("<->");
  std::size_t arrow_len = 3;
  if (arrow != std::string_view::npos) {
    both = true;
  } else {
    arrow = value.find("->");
    arrow_len = 2;
  }
  if (arrow == std::string_view::npos)
    return make_error_code(Errc::invalid_argument);
  auto from = parse_u64(value.substr(0, arrow));
  auto to = parse_u64(value.substr(arrow + arrow_len));
  if (!from || !to) return make_error_code(Errc::invalid_argument);
  if (*from == *to || *from > 0xffffffffu || *to > 0xffffffffu)
    return make_error_code(Errc::invalid_argument);
  if (out.size() + (both ? 2 : 1) > 64)
    return make_error_code(Errc::invalid_argument);
  FaultPlan::Edge forward{static_cast<std::uint32_t>(*from),
                          static_cast<std::uint32_t>(*to)};
  auto add = [&out](FaultPlan::Edge edge) {
    for (const auto& existing : out)
      if (existing == edge) return;
    out.push_back(edge);
  };
  add(forward);
  if (both) add({forward.to, forward.from});
  return ok_status();
}

}  // namespace

bool FaultPlan::is_partitioned(std::uint64_t from, std::uint64_t to) const {
  for (const auto& edge : partitions)
    if (edge.from == from && edge.to == to) return true;
  return false;
}

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
  auto trimmed = trim(text);
  FaultPlan plan;
  if (trimmed.empty() || trimmed == "off" || trimmed == "clear") return plan;
  for (const auto& token : split_nonempty(trimmed, ' ')) {
    auto eq = token.find('=');
    if (eq == std::string::npos) return Errc::invalid_argument;
    auto key = token.substr(0, eq);
    auto value = token.substr(eq + 1);
    if (key == "delay_msgs") {
      auto n = parse_u64(value);
      if (!n || *n == 0 || *n > 1024) return Errc::invalid_argument;
      plan.delay_msgs = static_cast<std::uint32_t>(*n);
      continue;
    }
    if (key == "partition") {
      if (auto st = parse_partition(value, plan.partitions); st) return st;
      continue;
    }
    auto p = parse_probability(value);
    if (!p) return p.error();
    if (key == "drop")
      plan.drop = *p;
    else if (key == "duplicate" || key == "dup")
      plan.duplicate = *p;
    else if (key == "reorder")
      plan.reorder = *p;
    else if (key == "corrupt")
      plan.corrupt = *p;
    else if (key == "delay")
      plan.delay = *p;
    else if (key == "disconnect")
      plan.disconnect = *p;
    else
      return Errc::invalid_argument;
  }
  return plan;
}

std::string FaultPlan::format() const {
  std::string out;
  out += "drop=" + format_probability(drop);
  out += " duplicate=" + format_probability(duplicate);
  out += " reorder=" + format_probability(reorder);
  out += " corrupt=" + format_probability(corrupt);
  out += " delay=" + format_probability(delay);
  out += " disconnect=" + format_probability(disconnect);
  out += " delay_msgs=" + std::to_string(delay_msgs);
  for (const auto& edge : partitions)
    out += " partition=" + std::to_string(edge.from) + "->" +
           std::to_string(edge.to);
  return out;
}

}  // namespace yanc::faults
