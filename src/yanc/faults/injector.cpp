#include "yanc/faults/injector.hpp"

#include <vector>

namespace yanc::faults {

void Injector::reseed(std::uint64_t seed) {
  dbg::LockGuard lock(mu_);
  rng_.reseed(seed);
  ++generation_;
}

std::uint64_t Injector::seed() const {
  dbg::LockGuard lock(mu_);
  return rng_.seed();
}

FaultPlan Injector::plan(Scope scope) const {
  dbg::LockGuard lock(mu_);
  return plans_[static_cast<int>(scope)];
}

void Injector::set_plan(Scope scope, FaultPlan plan) {
  dbg::LockGuard lock(mu_);
  plans_[static_cast<int>(scope)] = plan;
  ++generation_;
}

std::uint64_t Injector::generation() const {
  dbg::LockGuard lock(mu_);
  return generation_;
}

void Injector::bind_metrics(obs::Registry& registry) {
  dbg::LockGuard lock(mu_);
  counters_.drop = registry.counter("faults/drop_total");
  counters_.duplicate = registry.counter("faults/duplicate_total");
  counters_.reorder = registry.counter("faults/reorder_total");
  counters_.corrupt = registry.counter("faults/corrupt_total");
  counters_.delay = registry.counter("faults/delay_total");
  counters_.disconnect = registry.counter("faults/disconnect_total");
}

std::optional<WireFate> Injector::decide(Scope scope,
                                         std::vector<std::uint8_t>& message) {
  dbg::LockGuard lock(mu_);
  const FaultPlan& plan = plans_[static_cast<int>(scope)];
  if (!plan.any()) return WireFate{};
  // Fixed roll order keeps the schedule a pure function of (seed, plan,
  // message sequence) — the whole point of deterministic injection.
  WireFate fate;
  if (rng_.chance(plan.disconnect)) {
    if (counters_.disconnect) counters_.disconnect->add();
    return std::nullopt;
  }
  fate.drop = rng_.chance(plan.drop);
  fate.duplicate = rng_.chance(plan.duplicate);
  fate.reorder = rng_.chance(plan.reorder);
  bool corrupt = rng_.chance(plan.corrupt);
  fate.delay = rng_.chance(plan.delay);
  if (fate.drop) {
    if (counters_.drop) counters_.drop->add();
    return fate;  // nothing else matters for a dropped message
  }
  if (corrupt && !message.empty()) {
    message[rng_.below(message.size())] ^=
        static_cast<std::uint8_t>(1u << rng_.below(8));
    if (counters_.corrupt) counters_.corrupt->add();
  }
  if (fate.duplicate && counters_.duplicate) counters_.duplicate->add();
  if (fate.reorder && counters_.reorder) counters_.reorder->add();
  if (fate.delay && counters_.delay) counters_.delay->add();
  return fate;
}

namespace {

/// FaultHook over one channel pair.  Runs under the channel's lock; only
/// ever calls Injector::decide (which takes the injector's own lock), so
/// the lock order channel -> injector is fixed and cycle-free.
class ChannelFaults : public net::FaultHook {
 public:
  explicit ChannelFaults(std::shared_ptr<Injector> injector)
      : injector_(std::move(injector)) {}

  bool on_send(std::deque<net::Message>& queue,
               net::Message message) override {
    release_due(queue, /*sends=*/1);
    auto fate = injector_->decide(Scope::channel, message);
    if (!fate) return false;  // disconnect: sever the connection
    if (fate->drop) return true;
    if (fate->delay) {
      stash_.push_back(
          {&queue, message, injector_->plan(Scope::channel).delay_msgs});
      if (fate->duplicate) enqueue(queue, std::move(message), false);
      return true;
    }
    net::Message copy;
    if (fate->duplicate) copy = message;
    enqueue(queue, std::move(message), fate->reorder);
    if (fate->duplicate) enqueue(queue, std::move(copy), false);
    return true;
  }

  void on_recv(std::deque<net::Message>& queue) override {
    release_due(queue, /*sends=*/0, /*flush_if_empty=*/queue.empty());
  }

 private:
  struct Delayed {
    std::deque<net::Message>* queue;
    net::Message message;
    std::uint32_t remaining;  // later sends to let pass first
  };

  static void enqueue(std::deque<net::Message>& queue, net::Message message,
                      bool reorder) {
    // Reorder = the previous message overtakes this one: slot the new
    // message in front of the most recently queued one.
    if (reorder && !queue.empty())
      queue.insert(std::prev(queue.end()), std::move(message));
    else
      queue.push_back(std::move(message));
  }

  /// Ages the stash by `sends` and flushes entries for `queue` that have
  /// waited long enough.  When the receiver finds its queue empty
  /// (flush_if_empty), everything stashed for it is released — a delayed
  /// message must never be the one the receiver starves waiting for.
  void release_due(std::deque<net::Message>& queue, std::uint32_t sends,
                   bool flush_if_empty = false) {
    for (auto it = stash_.begin(); it != stash_.end();) {
      if (it->queue != &queue) {
        ++it;
        continue;
      }
      if (it->remaining > sends)
        it->remaining -= sends;
      else
        it->remaining = 0;
      if (it->remaining == 0 || flush_if_empty) {
        queue.push_back(std::move(it->message));
        it = stash_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::shared_ptr<Injector> injector_;
  std::vector<Delayed> stash_;
};

}  // namespace

std::function<std::shared_ptr<net::FaultHook>()> channel_hook_factory(
    std::shared_ptr<Injector> injector) {
  return [injector]() -> std::shared_ptr<net::FaultHook> {
    return std::make_shared<ChannelFaults>(injector);
  };
}

}  // namespace yanc::faults
