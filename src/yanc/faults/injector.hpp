// Injector: one seeded source of scheduled misfortune for the whole
// process.
//
// Holds a FaultPlan per scope (channel = driver<->switch connections,
// transport = inter-replica links), draws every decision from a single
// util::Rng, and counts what it did in the obs registry
// (faults/drop_total, ...) so recovery tests can assert that the faults
// they configured actually fired.  The same seed and the same plan always
// produce the same schedule — a failing stress run is replayed by its
// seed alone.
//
// Wiring:
//   listener.set_fault_hook_factory(faults::channel_hook_factory(inj));
//   dist::attach_faults(transport, inj);              // see transport.hpp
//   faults::mount_faults_fs(vfs, inj);                // /yanc/.faults
#pragma once

#include <memory>

#include "yanc/faults/plan.hpp"
#include "yanc/net/channel.hpp"
#include "yanc/obs/metrics.hpp"
#include "yanc/util/rng.hpp"

namespace yanc::faults {

enum class Scope { channel, transport };

/// What the injector decided for one wire message (transport scope).
/// Corruption, when rolled, is already applied to the message in place.
struct WireFate {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;  // deliver after messages sent later
  bool delay = false;    // deliver much later than link latency
};

class Injector {
 public:
  explicit Injector(std::uint64_t seed = 1) : rng_(seed) {}

  /// Restarts the fault schedule from `seed`.
  void reseed(std::uint64_t seed);
  std::uint64_t seed() const;

  FaultPlan plan(Scope scope) const;
  void set_plan(Scope scope, FaultPlan plan);
  /// Bumps every time a plan or the seed changes (FaultsFs cache key).
  std::uint64_t generation() const;

  /// Registers faults/{drop,duplicate,reorder,corrupt,delay,disconnect}_total.
  void bind_metrics(obs::Registry& registry);

  /// Rolls the dice for one message in `scope`; flips a byte of `message`
  /// in place when corruption fires.  Returns std::nullopt when the plan
  /// says to sever the connection instead.
  std::optional<WireFate> decide(Scope scope,
                                 std::vector<std::uint8_t>& message);

 private:
  mutable dbg::Mutex<dbg::Rank::faults_injector> mu_;
  util::Rng rng_;
  FaultPlan plans_[2];
  std::uint64_t generation_ = 0;

  struct Counters {
    obs::Counter* drop = nullptr;
    obs::Counter* duplicate = nullptr;
    obs::Counter* reorder = nullptr;
    obs::Counter* corrupt = nullptr;
    obs::Counter* delay = nullptr;
    obs::Counter* disconnect = nullptr;
  } counters_;
};

/// A per-connection net::FaultHook driven by `injector`; install via
/// Listener::set_fault_hook_factory so every connection gets its own
/// delay stash.
std::function<std::shared_ptr<net::FaultHook>()> channel_hook_factory(
    std::shared_ptr<Injector> injector);

}  // namespace yanc::faults
