#include "yanc/faults/faults_fs.hpp"

#include "yanc/util/strings.hpp"

namespace yanc::faults {

using vfs::Credentials;
using vfs::NodeId;

FaultsFs::FaultsFs(std::shared_ptr<Injector> injector)
    : injector_(std::move(injector)) {}

std::string FaultsFs::content_of(NodeId node) const {
  switch (node) {
    case kChannelPolicy:
      return injector_->plan(Scope::channel).format() + "\n";
    case kTransportPolicy:
      return injector_->plan(Scope::transport).format() + "\n";
    case kSeed:
      return std::to_string(injector_->seed()) + "\n";
    default:
      return {};
  }
}

Result<NodeId> FaultsFs::lookup(NodeId parent, const std::string& name) {
  if (is_file(parent)) return Errc::not_dir;
  if (parent == kRoot) {
    if (name == "channel") return kChannelDir;
    if (name == "transport") return kTransportDir;
    if (name == "seed") return kSeed;
  } else if (parent == kChannelDir) {
    if (name == "policy") return kChannelPolicy;
  } else if (parent == kTransportDir) {
    if (name == "policy") return kTransportPolicy;
  }
  return Errc::not_found;
}

Result<vfs::Stat> FaultsFs::getattr(NodeId node) {
  if (!is_dir(node) && !is_file(node)) return Errc::not_found;
  vfs::Stat st;
  st.ino = node;
  st.type = is_dir(node) ? vfs::FileType::directory : vfs::FileType::regular;
  st.mode = is_dir(node) ? 0755 : 0644;
  st.nlink = 1;
  st.size = is_dir(node) ? 1 : content_of(node).size();
  st.version = injector_->generation();
  return st;
}

Result<std::vector<vfs::DirEntry>> FaultsFs::readdir(NodeId dir) {
  if (is_file(dir)) return Errc::not_dir;
  std::vector<vfs::DirEntry> out;
  if (dir == kRoot) {
    out.push_back({"channel", kChannelDir, vfs::FileType::directory});
    out.push_back({"seed", kSeed, vfs::FileType::regular});
    out.push_back({"transport", kTransportDir, vfs::FileType::directory});
  } else if (dir == kChannelDir) {
    out.push_back({"policy", kChannelPolicy, vfs::FileType::regular});
  } else if (dir == kTransportDir) {
    out.push_back({"policy", kTransportPolicy, vfs::FileType::regular});
  } else {
    return Errc::not_found;
  }
  return out;
}

Result<std::string> FaultsFs::readlink(NodeId) {
  return Errc::invalid_argument;
}

Result<std::string> FaultsFs::read(NodeId node, std::uint64_t offset,
                                   std::uint64_t size, const Credentials&) {
  if (is_dir(node)) return Errc::is_dir;
  if (!is_file(node)) return Errc::not_found;
  std::string content = content_of(node);
  if (offset >= content.size()) return std::string();
  return content.substr(offset, size);
}

Result<std::vector<std::uint8_t>> FaultsFs::getxattr(NodeId,
                                                     const std::string&) {
  return Errc::not_found;
}

Result<std::vector<std::string>> FaultsFs::listxattr(NodeId) {
  return std::vector<std::string>{};
}

Status FaultsFs::access(NodeId node, std::uint8_t want, const Credentials&) {
  if (!is_dir(node) && !is_file(node)) return Errc::not_found;
  if ((want & 2) && is_dir(node)) return Errc::access_denied;
  return ok_status();
}

Status FaultsFs::apply_write(NodeId node, std::string_view text) {
  if (node == kSeed) {
    auto seed = parse_u64(trim(text));
    if (!seed) return make_error_code(Errc::invalid_argument);
    injector_->reseed(*seed);
  } else {
    auto plan = FaultPlan::parse(text);
    if (!plan) return plan.error();
    injector_->set_plan(
        node == kChannelPolicy ? Scope::channel : Scope::transport, *plan);
  }
  dbg::LockGuard lock(mu_);
  watches_.emit(node, vfs::event::modified);
  watches_.emit(node == kSeed ? kRoot
                              : (node == kChannelPolicy ? kChannelDir
                                                        : kTransportDir),
                vfs::event::modified, node == kSeed ? "seed" : "policy");
  return ok_status();
}

Result<std::uint64_t> FaultsFs::write(NodeId node, std::uint64_t offset,
                                      std::string_view data,
                                      const Credentials&) {
  if (is_dir(node)) return Errc::is_dir;
  if (!is_file(node)) return Errc::not_found;
  // Control files are whole-value writes (echo > file); partial or
  // offset writes have no sensible parse.
  if (offset != 0) return Errc::invalid_argument;
  if (auto ec = apply_write(node, data)) return ec;
  return static_cast<std::uint64_t>(data.size());
}

Status FaultsFs::truncate(NodeId node, std::uint64_t size,
                          const Credentials&) {
  if (is_dir(node)) return Errc::is_dir;
  if (!is_file(node)) return Errc::not_found;
  // O_TRUNC on open: accepted as a no-op so `echo x > policy` works; the
  // value only changes when the new content arrives in write().
  return size == 0 ? ok_status() : make_error_code(Errc::invalid_argument);
}

Result<NodeId> FaultsFs::mkdir(NodeId, const std::string&, std::uint32_t,
                               const Credentials&) {
  return Errc::not_permitted;
}
Result<NodeId> FaultsFs::create(NodeId, const std::string&, std::uint32_t,
                                const Credentials&) {
  return Errc::not_permitted;
}
Result<NodeId> FaultsFs::symlink(NodeId, const std::string&,
                                 const std::string&, const Credentials&) {
  return Errc::not_permitted;
}
Status FaultsFs::link(NodeId, NodeId, const std::string&,
                      const Credentials&) {
  return Errc::not_permitted;
}
Status FaultsFs::unlink(NodeId, const std::string&, const Credentials&) {
  return Errc::not_permitted;
}
Status FaultsFs::rmdir(NodeId, const std::string&, const Credentials&) {
  return Errc::not_permitted;
}
Status FaultsFs::rename(NodeId, const std::string&, NodeId,
                        const std::string&, const Credentials&) {
  return Errc::not_permitted;
}
Status FaultsFs::chmod(NodeId, std::uint32_t, const Credentials&) {
  return Errc::not_permitted;
}
Status FaultsFs::chown(NodeId, vfs::Uid, vfs::Gid, const Credentials&) {
  return Errc::not_permitted;
}
Status FaultsFs::setxattr(NodeId, const std::string&,
                          std::vector<std::uint8_t>, const Credentials&) {
  return Errc::not_permitted;
}
Status FaultsFs::removexattr(NodeId, const std::string&,
                             const Credentials&) {
  return Errc::not_permitted;
}

Result<vfs::WatchRegistry::WatchId> FaultsFs::watch(NodeId node,
                                                    std::uint32_t mask,
                                                    vfs::WatchQueuePtr queue) {
  if (!is_dir(node) && !is_file(node)) return Errc::not_found;
  dbg::LockGuard lock(mu_);
  return watches_.add(node, mask, std::move(queue));
}

void FaultsFs::unwatch(vfs::WatchRegistry::WatchId id) {
  dbg::LockGuard lock(mu_);
  watches_.remove(id);
}

Result<std::shared_ptr<FaultsFs>> mount_faults_fs(
    vfs::Vfs& vfs, std::shared_ptr<Injector> injector,
    const std::string& mount_path) {
  if (!injector) return Errc::invalid_argument;
  injector->bind_metrics(*vfs.metrics());
  if (auto ec = vfs.mkdir_p(mount_path, 0755, Credentials::root())) return ec;
  auto fs = std::make_shared<FaultsFs>(std::move(injector));
  if (auto ec = vfs.mount(mount_path, fs)) return ec;
  return fs;
}

}  // namespace yanc::faults
