// In-memory message channels: the stand-in for the TCP connections between
// OpenFlow switches and the controller's drivers.
//
// A channel pair is two endpoints over shared queues; each send() enqueues
// one complete message (OpenFlow messages are length-framed by their own
// header, so message-granularity is what a driver would reassemble anyway).
// A Listener models the controller's accept socket: switches connect, the
// driver accepts the peer endpoint.
//
// Fault injection hooks in here, below every protocol: a FaultHook
// installed on a channel sees each message on its way into the peer's
// queue and may drop, duplicate, reorder, corrupt, delay, or sever — the
// primitives yanc::faults builds its deterministic schedules from.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "yanc/dbg/lockdep.hpp"

namespace yanc::net {

using Message = std::vector<std::uint8_t>;

/// Intercepts channel traffic.  Both callbacks run under the channel's
/// internal lock, so implementations must not call back into the channel.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Disposition of one message headed for `queue` (the peer's inbound
  /// queue).  The hook delivers by mutating `queue` (or stashing the
  /// message for later); returning false severs the connection instead.
  virtual bool on_send(std::deque<Message>& queue, Message message) = 0;

  /// Runs before each receive pops `queue`: the release point for
  /// messages the hook held back on send.
  virtual void on_recv(std::deque<Message>& queue) { (void)queue; }
};

class Channel {
 public:
  /// Creates a connected pair of endpoints.
  static std::pair<Channel, Channel> make_pair();

  Channel() = default;

  /// True when this endpoint is usable and the peer has not closed.
  bool connected() const;
  explicit operator bool() const { return connected(); }

  /// Enqueues a message toward the peer.  Returns false once either side
  /// has closed (or when an installed fault hook severed the connection):
  /// the message was NOT delivered and the caller must treat the peer as
  /// gone — the old void signature made that failure invisible.
  [[nodiscard]] bool send(Message message);

  /// Vectored send: enqueues every message toward the peer under a single
  /// lock acquisition — one wakeup for the whole burst instead of one per
  /// message.  An installed fault hook still sees each message
  /// individually, so injected drop/dup/reorder schedules are identical
  /// to N separate send() calls.  Returns false once the channel is
  /// closed or a hook severs it mid-burst; messages enqueued before the
  /// severance stay delivered (a burst racing a RST, truncated not
  /// rolled back).
  [[nodiscard]] bool send_batch(std::vector<Message> messages);

  /// Non-blocking receive.  Still drains messages queued before close(),
  /// so a peer's final words are never lost.
  std::optional<Message> try_recv();

  /// Number of queued inbound messages.
  std::size_t pending() const;

  /// Closes both directions (peer sees connected() == false; its queue
  /// remains drainable).
  void close();

  /// Installs `hook` on the shared pair — both directions.  Pass nullptr
  /// to remove.  Delivery of already-queued messages is unaffected.
  void set_fault_hook(std::shared_ptr<FaultHook> hook);

 private:
  struct Shared {
    mutable dbg::Mutex<dbg::Rank::net_channel> mu;
    std::deque<Message> queues[2];
    bool closed = false;
    std::shared_ptr<FaultHook> hook;
  };
  Channel(std::shared_ptr<Shared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  std::shared_ptr<Shared> shared_;
  int side_ = 0;
};

/// Accept queue for incoming switch connections.
class Listener {
 public:
  /// Switch side: creates a channel pair, queues one end for accept(),
  /// returns the other to the caller.
  Channel connect();

  /// Controller side: next pending connection, if any.
  std::optional<Channel> accept();

  std::size_t backlog() const;

  /// Every subsequently connected pair gets factory() installed as its
  /// fault hook (one fresh hook per connection, so per-channel state such
  /// as delay stashes is never shared).  Pass nullptr to stop.
  void set_fault_hook_factory(
      std::function<std::shared_ptr<FaultHook>()> factory);

 private:
  mutable dbg::Mutex<dbg::Rank::net_listener> mu_;
  std::deque<Channel> pending_;
  std::function<std::shared_ptr<FaultHook>()> hook_factory_;
};

}  // namespace yanc::net
