// In-memory message channels: the stand-in for the TCP connections between
// OpenFlow switches and the controller's drivers.
//
// A channel pair is two endpoints over shared queues; each send() enqueues
// one complete message (OpenFlow messages are length-framed by their own
// header, so message-granularity is what a driver would reassemble anyway).
// A Listener models the controller's accept socket: switches connect, the
// driver accepts the peer endpoint.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace yanc::net {

using Message = std::vector<std::uint8_t>;

class Channel {
 public:
  /// Creates a connected pair of endpoints.
  static std::pair<Channel, Channel> make_pair();

  Channel() = default;

  /// True when this endpoint is usable and the peer has not closed.
  bool connected() const;
  explicit operator bool() const { return connected(); }

  /// Enqueues a message toward the peer; fails silently once closed.
  void send(Message message);

  /// Non-blocking receive.
  std::optional<Message> try_recv();

  /// Number of queued inbound messages.
  std::size_t pending() const;

  /// Closes both directions (peer sees connected() == false after
  /// draining its queue).
  void close();

 private:
  struct Shared {
    mutable std::mutex mu;
    std::deque<Message> queues[2];
    bool closed = false;
  };
  Channel(std::shared_ptr<Shared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  std::shared_ptr<Shared> shared_;
  int side_ = 0;
};

/// Accept queue for incoming switch connections.
class Listener {
 public:
  /// Switch side: creates a channel pair, queues one end for accept(),
  /// returns the other to the caller.
  Channel connect();

  /// Controller side: next pending connection, if any.
  std::optional<Channel> accept();

  std::size_t backlog() const;

 private:
  mutable std::mutex mu_;
  std::deque<Channel> pending_;
};

}  // namespace yanc::net
