#include "yanc/net/simnet.hpp"

namespace yanc::net {

// --- Scheduler ----------------------------------------------------------------

void Scheduler::schedule_after(VirtualClock::duration delay, Task task) {
  std::uint64_t at =
      clock_.now_ns() +
      static_cast<std::uint64_t>(delay.count() > 0 ? delay.count() : 0);
  queue_.push(Entry{at, next_seq_++, std::move(task)});
}

std::size_t Scheduler::run_until_idle(std::size_t max_tasks) {
  std::size_t executed = 0;
  while (!queue_.empty() && executed < max_tasks) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    clock_.advance_to(VirtualClock::duration(
        static_cast<std::int64_t>(entry.at_ns)));
    entry.task();
    ++executed;
  }
  return executed;
}

std::size_t Scheduler::run_for(VirtualClock::duration window) {
  std::uint64_t deadline =
      clock_.now_ns() +
      static_cast<std::uint64_t>(window.count() > 0 ? window.count() : 0);
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at_ns <= deadline) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    clock_.advance_to(VirtualClock::duration(
        static_cast<std::int64_t>(entry.at_ns)));
    entry.task();
    ++executed;
  }
  clock_.advance_to(VirtualClock::duration(static_cast<std::int64_t>(deadline)));
  return executed;
}

// --- Network ------------------------------------------------------------------

Result<Network::LinkId> Network::add_link(Device& a, std::uint16_t a_port,
                                          Device& b, std::uint16_t b_port,
                                          VirtualClock::duration latency) {
  bool is_a;
  if (find_link(a, a_port, &is_a) || find_link(b, b_port, &is_a))
    return Errc::busy;
  links_.push_back(Link{{&a, a_port}, {&b, b_port}, latency, true, false});
  return links_.size() - 1;
}

Status Network::remove_link(LinkId id) {
  if (id >= links_.size() || links_[id].removed)
    return make_error_code(Errc::not_found);
  links_[id].removed = true;
  return ok_status();
}

Status Network::set_link_up(LinkId id, bool up) {
  if (id >= links_.size() || links_[id].removed)
    return make_error_code(Errc::not_found);
  Link& link = links_[id];
  if (link.up == up) return ok_status();
  link.up = up;
  // Notify both endpoints asynchronously (like a PHY interrupt).
  scheduler_.schedule_now([link]() {
    link.a.device->handle_link_status(link.a.port, link.up);
    link.b.device->handle_link_status(link.b.port, link.up);
  });
  return ok_status();
}

const Network::Link* Network::find_link(const Device& device,
                                        std::uint16_t port,
                                        bool* is_a) const {
  for (const auto& link : links_) {
    if (link.removed) continue;
    if (link.a.device == &device && link.a.port == port) {
      *is_a = true;
      return &link;
    }
    if (link.b.device == &device && link.b.port == port) {
      *is_a = false;
      return &link;
    }
  }
  return nullptr;
}

std::optional<Network::Endpoint> Network::peer_of(const Device& device,
                                                  std::uint16_t port) const {
  bool is_a;
  const Link* link = find_link(device, port, &is_a);
  if (!link || !link->up) return std::nullopt;
  return is_a ? link->b : link->a;
}

void Network::transmit(const Device& from, std::uint16_t port, Frame frame) {
  bool is_a;
  const Link* link = find_link(from, port, &is_a);
  if (!link || !link->up) {
    ++dropped_;
    return;
  }
  Endpoint to = is_a ? link->b : link->a;
  ++delivered_;
  scheduler_.schedule_after(
      link->latency, [to, frame = std::move(frame)]() mutable {
        to.device->handle_frame(to.port, frame);
      });
}

// --- Host ---------------------------------------------------------------------

Host::Host(std::string name, MacAddress mac, Ipv4Address ip, Network& network)
    : Device(std::move(name)), mac_(mac), ip_(ip), network_(network) {}

void Host::handle_frame(std::uint16_t /*port*/, const Frame& frame) {
  ++frames_received_;
  log_.push_back(frame);
  auto parsed = parse_frame(frame);
  if (!parsed) return;

  if (parsed->arp) {
    const auto& arp = *parsed->arp;
    arp_cache_[arp.sender_ip.value()] = arp.sender_mac;
    // Flush packets that were waiting on this resolution.
    auto pending = arp_pending_.find(arp.sender_ip.value());
    if (pending != arp_pending_.end()) {
      for (auto& queued : pending->second) {
        // Fill in the now-known destination MAC.
        std::copy(arp.sender_mac.bytes().begin(),
                  arp.sender_mac.bytes().end(), queued.begin());
        send_frame(std::move(queued));
      }
      arp_pending_.erase(pending);
    }
    if (arp.op == arp_op::request && arp.target_ip == ip_) {
      send_frame(build_arp(arp_op::reply, mac_, ip_, arp.sender_mac,
                           arp.sender_ip));
    }
    return;
  }

  if (parsed->ipv4 && parsed->icmp && parsed->ipv4->dst == ip_) {
    if (parsed->icmp->type == icmp_type::echo_request) {
      ++echo_requests_;
      send_frame(build_icmp_echo(parsed->dl_src, mac_, ip_, parsed->ipv4->src,
                                 icmp_type::echo_reply, parsed->icmp->id,
                                 parsed->icmp->seq, parsed->l4_payload));
    } else if (parsed->icmp->type == icmp_type::echo_reply) {
      ++echo_replies_;
    }
    return;
  }

  if (parsed->ipv4 && parsed->l4 && parsed->ipv4->proto == ipproto::udp &&
      parsed->ipv4->dst == ip_) {
    udp_payloads_.push_back(parsed->l4_payload);
  }
}

void Host::send_frame(Frame frame) { network_.transmit(*this, 0, std::move(frame)); }

void Host::send_arp_request(Ipv4Address target) {
  send_frame(build_arp(arp_op::request, mac_, ip_, MacAddress{}, target));
}

void Host::deliver_or_queue(Ipv4Address next_hop, Frame frame) {
  auto it = arp_cache_.find(next_hop.value());
  if (it != arp_cache_.end()) {
    std::copy(it->second.bytes().begin(), it->second.bytes().end(),
              frame.begin());
    send_frame(std::move(frame));
    return;
  }
  arp_pending_[next_hop.value()].push_back(std::move(frame));
  send_arp_request(next_hop);
}

void Host::ping(Ipv4Address target, std::uint16_t seq) {
  // Destination MAC is patched in by deliver_or_queue once resolved.
  Frame frame = build_icmp_echo(MacAddress{}, mac_, ip_, target,
                                icmp_type::echo_request, 0x77, seq);
  deliver_or_queue(target, std::move(frame));
}

void Host::send_udp(Ipv4Address dst, std::uint16_t src_port,
                    std::uint16_t dst_port,
                    std::vector<std::uint8_t> payload) {
  Frame frame = build_udp(MacAddress{}, mac_, ip_, dst, src_port, dst_port,
                          payload);
  deliver_or_queue(dst, std::move(frame));
}

std::optional<MacAddress> Host::arp_lookup(Ipv4Address ip) const {
  auto it = arp_cache_.find(ip.value());
  if (it == arp_cache_.end()) return std::nullopt;
  return it->second;
}

}  // namespace yanc::net
