// Packet library: build and parse the frames the simulated data plane
// carries.  Ethernet (+802.1Q), ARP, IPv4, TCP, UDP, ICMP echo, and LLDP —
// everything the paper's system applications need (topology discovery via
// LLDP §4.3, ARP/DHCP daemons §2, the reactive router §8).
//
// Simplifications, documented: IPv4 header checksums are computed and
// verified; L4 checksums are set to 0 (legal for UDP, tolerated by our
// simulated hosts) to keep action-driven header rewrites cheap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "yanc/flow/action.hpp"
#include "yanc/flow/match.hpp"
#include "yanc/util/net_types.hpp"
#include "yanc/util/result.hpp"

namespace yanc::net {

using Frame = std::vector<std::uint8_t>;

namespace ethertype {
inline constexpr std::uint16_t ipv4 = 0x0800;
inline constexpr std::uint16_t arp = 0x0806;
inline constexpr std::uint16_t vlan = 0x8100;
inline constexpr std::uint16_t lldp = 0x88cc;
}  // namespace ethertype

namespace ipproto {
inline constexpr std::uint8_t icmp = 1;
inline constexpr std::uint8_t tcp = 6;
inline constexpr std::uint8_t udp = 17;
}  // namespace ipproto

namespace arp_op {
inline constexpr std::uint16_t request = 1;
inline constexpr std::uint16_t reply = 2;
}  // namespace arp_op

namespace icmp_type {
inline constexpr std::uint8_t echo_reply = 0;
inline constexpr std::uint8_t echo_request = 8;
}  // namespace icmp_type

/// Decoded view of one frame.  Optional sections are present when the
/// corresponding ethertype/protocol was recognized.
struct ParsedFrame {
  MacAddress dl_dst;
  MacAddress dl_src;
  std::uint16_t dl_type = 0;
  std::uint16_t vlan_id = 0xffff;  // 0xffff = untagged
  std::uint8_t vlan_pcp = 0;

  struct Arp {
    std::uint16_t op = 0;
    MacAddress sender_mac;
    Ipv4Address sender_ip;
    MacAddress target_mac;
    Ipv4Address target_ip;
  };
  std::optional<Arp> arp;

  struct Ipv4 {
    std::uint8_t tos = 0;
    std::uint8_t ttl = 0;
    std::uint8_t proto = 0;
    Ipv4Address src;
    Ipv4Address dst;
  };
  std::optional<Ipv4> ipv4;

  struct L4 {
    std::uint16_t src_port = 0;  // ICMP: type in src_port, code in dst_port
    std::uint16_t dst_port = 0;
  };
  std::optional<L4> l4;

  struct IcmpEcho {
    std::uint8_t type = 0;
    std::uint16_t id = 0;
    std::uint16_t seq = 0;
  };
  std::optional<IcmpEcho> icmp;

  std::vector<std::uint8_t> l4_payload;

  /// The flow-match field values of this frame (given its ingress port).
  flow::FieldValues fields(std::uint16_t in_port) const;
};

/// Parses a frame; fails only when the Ethernet header is truncated
/// (deeper truncation just leaves optional sections empty).
Result<ParsedFrame> parse_frame(const Frame& frame);

// --- builders -----------------------------------------------------------------

Frame build_ethernet(const MacAddress& dst, const MacAddress& src,
                     std::uint16_t ethertype,
                     const std::vector<std::uint8_t>& payload);

Frame build_arp(std::uint16_t op, const MacAddress& sender_mac,
                const Ipv4Address& sender_ip, const MacAddress& target_mac,
                const Ipv4Address& target_ip);

/// Builds Ethernet+IPv4 around an L4 payload.
Frame build_ipv4(const MacAddress& dst_mac, const MacAddress& src_mac,
                 const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                 std::uint8_t proto, const std::vector<std::uint8_t>& l4,
                 std::uint8_t tos = 0, std::uint8_t ttl = 64);

Frame build_udp(const MacAddress& dst_mac, const MacAddress& src_mac,
                const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                std::uint16_t src_port, std::uint16_t dst_port,
                const std::vector<std::uint8_t>& payload);

Frame build_tcp(const MacAddress& dst_mac, const MacAddress& src_mac,
                const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                std::uint16_t src_port, std::uint16_t dst_port,
                const std::vector<std::uint8_t>& payload);

Frame build_icmp_echo(const MacAddress& dst_mac, const MacAddress& src_mac,
                      const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                      std::uint8_t type, std::uint16_t id, std::uint16_t seq,
                      const std::vector<std::uint8_t>& payload = {});

/// LLDP frame carrying (chassis id, port id, ttl) — what the topology
/// daemon floods out every port (§4.3).
Frame build_lldp(const std::string& chassis_id, const std::string& port_id,
                 std::uint16_t ttl_seconds = 120);

struct LldpInfo {
  std::string chassis_id;
  std::string port_id;
  std::uint16_t ttl = 0;
};
Result<LldpInfo> parse_lldp(const Frame& frame);

// --- rewriting ------------------------------------------------------------------

/// Applies a header-rewrite action in place (set_dl_*, set_nw_*, set_tp_*,
/// set_vlan, strip_vlan).  Output/enqueue/drop are not rewrites and return
/// EINVAL.  IPv4 checksum is recomputed when IP fields change.
Status apply_rewrite(Frame& frame, const flow::Action& action);

/// 802.1Q helpers used by set_vlan/strip_vlan.
Frame with_vlan_tag(const Frame& frame, std::uint16_t vlan_id,
                    std::uint8_t pcp);
Frame without_vlan_tag(const Frame& frame);

}  // namespace yanc::net
