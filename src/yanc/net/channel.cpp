#include "yanc/net/channel.hpp"

namespace yanc::net {

std::pair<Channel, Channel> Channel::make_pair() {
  auto shared = std::make_shared<Shared>();
  return {Channel(shared, 0), Channel(shared, 1)};
}

bool Channel::connected() const {
  if (!shared_) return false;
  std::lock_guard lock(shared_->mu);
  return !shared_->closed;
}

void Channel::send(Message message) {
  if (!shared_) return;
  std::lock_guard lock(shared_->mu);
  if (shared_->closed) return;
  shared_->queues[1 - side_].push_back(std::move(message));
}

std::optional<Message> Channel::try_recv() {
  if (!shared_) return std::nullopt;
  std::lock_guard lock(shared_->mu);
  auto& q = shared_->queues[side_];
  if (q.empty()) return std::nullopt;
  Message m = std::move(q.front());
  q.pop_front();
  return m;
}

std::size_t Channel::pending() const {
  if (!shared_) return 0;
  std::lock_guard lock(shared_->mu);
  return shared_->queues[side_].size();
}

void Channel::close() {
  if (!shared_) return;
  std::lock_guard lock(shared_->mu);
  shared_->closed = true;
}

Channel Listener::connect() {
  auto [a, b] = Channel::make_pair();
  {
    std::lock_guard lock(mu_);
    pending_.push_back(std::move(b));
  }
  return a;
}

std::optional<Channel> Listener::accept() {
  std::lock_guard lock(mu_);
  if (pending_.empty()) return std::nullopt;
  Channel c = std::move(pending_.front());
  pending_.pop_front();
  return c;
}

std::size_t Listener::backlog() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

}  // namespace yanc::net
