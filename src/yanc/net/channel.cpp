#include "yanc/net/channel.hpp"

namespace yanc::net {

std::pair<Channel, Channel> Channel::make_pair() {
  auto shared = std::make_shared<Shared>();
  return {Channel(shared, 0), Channel(shared, 1)};
}

bool Channel::connected() const {
  if (!shared_) return false;
  dbg::LockGuard lock(shared_->mu);
  return !shared_->closed;
}

bool Channel::send(Message message) {
  if (!shared_) return false;
  dbg::LockGuard lock(shared_->mu);
  if (shared_->closed) return false;
  auto& queue = shared_->queues[1 - side_];
  if (shared_->hook) {
    if (!shared_->hook->on_send(queue, std::move(message))) {
      shared_->closed = true;  // fault: connection severed mid-send
      return false;
    }
    return true;
  }
  queue.push_back(std::move(message));
  return true;
}

bool Channel::send_batch(std::vector<Message> messages) {
  if (!shared_) return false;
  dbg::LockGuard lock(shared_->mu);
  if (shared_->closed) return false;
  auto& queue = shared_->queues[1 - side_];
  for (auto& message : messages) {
    if (shared_->hook) {
      if (!shared_->hook->on_send(queue, std::move(message))) {
        shared_->closed = true;  // fault: connection severed mid-burst
        return false;
      }
    } else {
      queue.push_back(std::move(message));
    }
  }
  return true;
}

std::optional<Message> Channel::try_recv() {
  if (!shared_) return std::nullopt;
  dbg::LockGuard lock(shared_->mu);
  auto& q = shared_->queues[side_];
  if (shared_->hook) shared_->hook->on_recv(q);
  if (q.empty()) return std::nullopt;
  Message m = std::move(q.front());
  q.pop_front();
  return m;
}

std::size_t Channel::pending() const {
  if (!shared_) return 0;
  dbg::LockGuard lock(shared_->mu);
  return shared_->queues[side_].size();
}

void Channel::close() {
  if (!shared_) return;
  dbg::LockGuard lock(shared_->mu);
  shared_->closed = true;
}

void Channel::set_fault_hook(std::shared_ptr<FaultHook> hook) {
  if (!shared_) return;
  dbg::LockGuard lock(shared_->mu);
  shared_->hook = std::move(hook);
}

Channel Listener::connect() {
  auto [a, b] = Channel::make_pair();
  {
    dbg::LockGuard lock(mu_);
    if (hook_factory_) a.set_fault_hook(hook_factory_());
    pending_.push_back(std::move(b));
  }
  return a;
}

std::optional<Channel> Listener::accept() {
  dbg::LockGuard lock(mu_);
  if (pending_.empty()) return std::nullopt;
  Channel c = std::move(pending_.front());
  pending_.pop_front();
  return c;
}

std::size_t Listener::backlog() const {
  dbg::LockGuard lock(mu_);
  return pending_.size();
}

void Listener::set_fault_hook_factory(
    std::function<std::shared_ptr<FaultHook>()> factory) {
  dbg::LockGuard lock(mu_);
  hook_factory_ = std::move(factory);
}

}  // namespace yanc::net
