// Simulated data plane: devices, links, hosts, and a deterministic
// discrete-event scheduler on virtual time.
//
// This replaces the physical network the paper's controller would manage.
// Software switches (yanc::sw) and Hosts are Devices; Links connect
// (device, port) pairs with a configurable latency; the Scheduler delivers
// frames in timestamp order so every test and benchmark is reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "yanc/net/packet.hpp"
#include "yanc/util/clock.hpp"
#include "yanc/util/result.hpp"

namespace yanc::net {

/// Deterministic discrete-event executor over a VirtualClock.
class Scheduler {
 public:
  using Task = std::function<void()>;

  VirtualClock::duration now() const { return clock_.now(); }
  /// The clock tasks run against; lets subsystems timestamp events in
  /// virtual time (e.g. replication lag measurement).
  const VirtualClock& clock() const noexcept { return clock_; }

  void schedule_after(VirtualClock::duration delay, Task task);
  void schedule_now(Task task) { schedule_after({}, std::move(task)); }

  /// Runs tasks in time order until none remain (or the safety cap hits).
  /// Returns the number of tasks executed.
  std::size_t run_until_idle(std::size_t max_tasks = 1'000'000);

  /// Runs tasks scheduled up to now()+window, advancing the clock.
  std::size_t run_for(VirtualClock::duration window);

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    std::uint64_t at_ns;
    std::uint64_t seq;  // FIFO among same-time entries
    Task task;
    bool operator>(const Entry& other) const {
      return at_ns != other.at_ns ? at_ns > other.at_ns : seq > other.seq;
    }
  };
  VirtualClock clock_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::uint64_t next_seq_ = 0;
};

/// Anything attached to the simulated network (switch, host, middlebox).
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  const std::string& name() const noexcept { return name_; }

  /// A frame arrived on `port`.
  virtual void handle_frame(std::uint16_t port, const Frame& frame) = 0;

  /// The link on `port` changed state.
  virtual void handle_link_status(std::uint16_t /*port*/, bool /*up*/) {}

 private:
  std::string name_;
};

/// The wiring: point-to-point links between (device, port) endpoints.
class Network {
 public:
  explicit Network(Scheduler& scheduler) : scheduler_(scheduler) {}

  struct Endpoint {
    Device* device = nullptr;
    std::uint16_t port = 0;
  };
  using LinkId = std::size_t;

  /// Connects two endpoints.  Either side may already be linked -> EBUSY.
  Result<LinkId> add_link(Device& a, std::uint16_t a_port, Device& b,
                          std::uint16_t b_port,
                          VirtualClock::duration latency = {});
  Status remove_link(LinkId id);
  Status set_link_up(LinkId id, bool up);

  /// The endpoint at the far side of (device, port), if linked and up.
  std::optional<Endpoint> peer_of(const Device& device,
                                  std::uint16_t port) const;

  /// Sends a frame out of (device, port); it arrives at the peer after the
  /// link latency.  Silently dropped when there is no live link (like a
  /// real unplugged NIC).
  void transmit(const Device& from, std::uint16_t port, Frame frame);

  Scheduler& scheduler() noexcept { return scheduler_; }

  std::uint64_t frames_delivered() const noexcept { return delivered_; }
  std::uint64_t frames_dropped() const noexcept { return dropped_; }

 private:
  struct Link {
    Endpoint a, b;
    VirtualClock::duration latency{};
    bool up = true;
    bool removed = false;
  };
  const Link* find_link(const Device& device, std::uint16_t port,
                        bool* is_a) const;

  Scheduler& scheduler_;
  std::vector<Link> links_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

/// A simulated end host with one NIC (port 0): answers ARP for its own
/// address, replies to ICMP echo, and records everything it receives.
class Host : public Device {
 public:
  Host(std::string name, MacAddress mac, Ipv4Address ip, Network& network);

  MacAddress mac() const noexcept { return mac_; }
  Ipv4Address ip() const noexcept { return ip_; }

  void handle_frame(std::uint16_t port, const Frame& frame) override;

  /// Sends an ARP request for `target` (reply populates the ARP cache).
  void send_arp_request(Ipv4Address target);
  /// Sends an ICMP echo request; ARPs first when the MAC is unknown
  /// (queued packets go out when the reply arrives).
  void ping(Ipv4Address target, std::uint16_t seq = 1);
  /// Sends a UDP datagram.
  void send_udp(Ipv4Address dst, std::uint16_t src_port,
                std::uint16_t dst_port, std::vector<std::uint8_t> payload);
  /// Sends a raw frame out the NIC.
  void send_frame(Frame frame);

  /// Resolved MAC for an IP, if the ARP cache knows it.
  std::optional<MacAddress> arp_lookup(Ipv4Address ip) const;

  // Observability for tests.
  std::uint64_t frames_received() const noexcept { return frames_received_; }
  std::uint64_t echo_replies_received() const noexcept {
    return echo_replies_;
  }
  std::uint64_t echo_requests_received() const noexcept {
    return echo_requests_;
  }
  const std::vector<Frame>& received_log() const noexcept { return log_; }
  /// UDP payloads received, most recent last.
  const std::vector<std::vector<std::uint8_t>>& udp_received()
      const noexcept {
    return udp_payloads_;
  }

 private:
  void deliver_or_queue(Ipv4Address next_hop, Frame frame);

  MacAddress mac_;
  Ipv4Address ip_;
  Network& network_;
  std::map<std::uint32_t, MacAddress> arp_cache_;
  std::map<std::uint32_t, std::vector<Frame>> arp_pending_;
  std::vector<Frame> log_;
  std::vector<std::vector<std::uint8_t>> udp_payloads_;
  std::uint64_t frames_received_ = 0;
  std::uint64_t echo_replies_ = 0;
  std::uint64_t echo_requests_ = 0;
};

}  // namespace yanc::net
