#include "yanc/net/packet.hpp"

#include "yanc/util/bytes.hpp"

namespace yanc::net {
namespace {

constexpr std::size_t kEthHeader = 14;

MacAddress read_mac(BufReader& r) {
  std::array<std::uint8_t, 6> b{};
  r.bytes(b);
  return MacAddress(b);
}

void write_mac(BufWriter& w, const MacAddress& mac) {
  w.bytes(mac.bytes());
}

std::uint16_t ipv4_checksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2)
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  if (len & 1) sum += static_cast<std::uint32_t>(data[len - 1]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

// Offset of the IPv4 header within the frame, accounting for a VLAN tag.
std::size_t l3_offset(const Frame& frame) {
  if (frame.size() >= kEthHeader) {
    std::uint16_t type =
        (static_cast<std::uint16_t>(frame[12]) << 8) | frame[13];
    if (type == ethertype::vlan) return kEthHeader + 4;
  }
  return kEthHeader;
}

void refresh_ipv4_checksum(Frame& frame) {
  std::size_t off = l3_offset(frame);
  if (frame.size() < off + 20) return;
  std::size_t ihl = (frame[off] & 0x0f) * 4u;
  if (frame.size() < off + ihl) return;
  frame[off + 10] = 0;
  frame[off + 11] = 0;
  std::uint16_t sum = ipv4_checksum(frame.data() + off, ihl);
  frame[off + 10] = static_cast<std::uint8_t>(sum >> 8);
  frame[off + 11] = static_cast<std::uint8_t>(sum);
}

}  // namespace

flow::FieldValues ParsedFrame::fields(std::uint16_t in_port) const {
  flow::FieldValues f;
  f.in_port = in_port;
  f.dl_src = dl_src;
  f.dl_dst = dl_dst;
  f.dl_type = dl_type;
  f.dl_vlan = vlan_id;
  f.dl_vlan_pcp = vlan_pcp;
  if (arp) {
    // OpenFlow 1.0 maps ARP SPA/TPA onto nw_src/nw_dst and the opcode
    // onto nw_proto.
    f.nw_src = arp->sender_ip;
    f.nw_dst = arp->target_ip;
    f.nw_proto = static_cast<std::uint8_t>(arp->op);
  }
  if (ipv4) {
    f.nw_src = ipv4->src;
    f.nw_dst = ipv4->dst;
    f.nw_proto = ipv4->proto;
    f.nw_tos = ipv4->tos;
  }
  if (l4) {
    f.tp_src = l4->src_port;
    f.tp_dst = l4->dst_port;
  }
  return f;
}

Result<ParsedFrame> parse_frame(const Frame& frame) {
  if (frame.size() < kEthHeader) return Errc::protocol_error;
  BufReader r(frame);
  ParsedFrame p;
  p.dl_dst = read_mac(r);
  p.dl_src = read_mac(r);
  p.dl_type = r.u16();
  if (p.dl_type == ethertype::vlan) {
    std::uint16_t tci = r.u16();
    p.vlan_id = tci & 0x0fff;
    p.vlan_pcp = static_cast<std::uint8_t>(tci >> 13);
    p.dl_type = r.u16();
    if (!r.ok()) return p;  // truncated after the tag
  }

  if (p.dl_type == ethertype::arp) {
    BufReader a = r;
    a.skip(6);  // htype, ptype, hlen, plen
    ParsedFrame::Arp arp;
    arp.op = a.u16();
    arp.sender_mac = read_mac(a);
    arp.sender_ip = Ipv4Address(a.u32());
    arp.target_mac = read_mac(a);
    arp.target_ip = Ipv4Address(a.u32());
    if (a.ok()) p.arp = arp;
    return p;
  }

  if (p.dl_type != ethertype::ipv4) return p;

  BufReader ip = r;
  std::uint8_t ver_ihl = ip.u8();
  if (!ip.ok() || (ver_ihl >> 4) != 4) return p;
  std::size_t ihl = (ver_ihl & 0x0f) * 4u;
  ParsedFrame::Ipv4 v4;
  v4.tos = ip.u8();
  std::uint16_t total_len = ip.u16();
  ip.skip(4);  // id, flags+frag
  v4.ttl = ip.u8();
  v4.proto = ip.u8();
  ip.skip(2);  // checksum
  v4.src = Ipv4Address(ip.u32());
  v4.dst = Ipv4Address(ip.u32());
  if (!ip.ok()) return p;
  if (ihl > 20) ip.skip(ihl - 20);
  p.ipv4 = v4;
  (void)total_len;

  if (v4.proto == ipproto::tcp || v4.proto == ipproto::udp) {
    ParsedFrame::L4 l4;
    l4.src_port = ip.u16();
    l4.dst_port = ip.u16();
    if (ip.ok()) {
      p.l4 = l4;
      // Skip the rest of the L4 header to the payload.
      if (v4.proto == ipproto::udp) {
        ip.skip(4);  // length + checksum
      } else {
        ip.skip(8);   // seq + ack
        std::uint8_t off = ip.u8();
        std::size_t hdr = (off >> 4) * 4u;
        if (hdr >= 13) ip.skip(hdr - 13);
        ip.skip(0);
      }
      if (ip.ok()) p.l4_payload = ip.bytes(ip.remaining());
    }
  } else if (v4.proto == ipproto::icmp) {
    ParsedFrame::IcmpEcho icmp;
    icmp.type = ip.u8();
    std::uint8_t code = ip.u8();
    ip.skip(2);  // checksum
    icmp.id = ip.u16();
    icmp.seq = ip.u16();
    if (ip.ok()) {
      p.icmp = icmp;
      p.l4 = ParsedFrame::L4{icmp.type, code};
      p.l4_payload = ip.bytes(ip.remaining());
    }
  }
  return p;
}

Frame build_ethernet(const MacAddress& dst, const MacAddress& src,
                     std::uint16_t type,
                     const std::vector<std::uint8_t>& payload) {
  BufWriter w;
  write_mac(w, dst);
  write_mac(w, src);
  w.u16(type);
  w.bytes(payload);
  return w.take();
}

Frame build_arp(std::uint16_t op, const MacAddress& sender_mac,
                const Ipv4Address& sender_ip, const MacAddress& target_mac,
                const Ipv4Address& target_ip) {
  BufWriter w;
  w.u16(1);  // htype: ethernet
  w.u16(ethertype::ipv4);
  w.u8(6);
  w.u8(4);
  w.u16(op);
  write_mac(w, sender_mac);
  w.u32(sender_ip.value());
  write_mac(w, target_mac);
  w.u32(target_ip.value());
  MacAddress dst = op == arp_op::request
                       ? MacAddress::from_u64(0xffffffffffffull)
                       : target_mac;
  return build_ethernet(dst, sender_mac, ethertype::arp, w.take());
}

Frame build_ipv4(const MacAddress& dst_mac, const MacAddress& src_mac,
                 const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                 std::uint8_t proto, const std::vector<std::uint8_t>& l4,
                 std::uint8_t tos, std::uint8_t ttl) {
  BufWriter w;
  w.u8(0x45);  // v4, ihl 5
  w.u8(tos);
  w.u16(static_cast<std::uint16_t>(20 + l4.size()));
  w.u32(0);  // id, flags, frag
  w.u8(ttl);
  w.u8(proto);
  w.u16(0);  // checksum placeholder
  w.u32(src_ip.value());
  w.u32(dst_ip.value());
  auto header = w.take();
  std::uint16_t sum = ipv4_checksum(header.data(), header.size());
  header[10] = static_cast<std::uint8_t>(sum >> 8);
  header[11] = static_cast<std::uint8_t>(sum);
  header.insert(header.end(), l4.begin(), l4.end());
  return build_ethernet(dst_mac, src_mac, ethertype::ipv4, header);
}

Frame build_udp(const MacAddress& dst_mac, const MacAddress& src_mac,
                const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                std::uint16_t src_port, std::uint16_t dst_port,
                const std::vector<std::uint8_t>& payload) {
  BufWriter w;
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(8 + payload.size()));
  w.u16(0);  // checksum 0: legal for UDP over IPv4
  w.bytes(payload);
  return build_ipv4(dst_mac, src_mac, src_ip, dst_ip, ipproto::udp, w.take());
}

Frame build_tcp(const MacAddress& dst_mac, const MacAddress& src_mac,
                const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                std::uint16_t src_port, std::uint16_t dst_port,
                const std::vector<std::uint8_t>& payload) {
  BufWriter w;
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(0);      // seq
  w.u32(0);      // ack
  w.u8(5 << 4);  // data offset 5 words
  w.u8(0x18);    // PSH|ACK
  w.u16(0xffff); // window
  w.u16(0);      // checksum (simplified)
  w.u16(0);      // urgent
  w.bytes(payload);
  return build_ipv4(dst_mac, src_mac, src_ip, dst_ip, ipproto::tcp, w.take());
}

Frame build_icmp_echo(const MacAddress& dst_mac, const MacAddress& src_mac,
                      const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                      std::uint8_t type, std::uint16_t id, std::uint16_t seq,
                      const std::vector<std::uint8_t>& payload) {
  BufWriter w;
  w.u8(type);
  w.u8(0);   // code
  w.u16(0);  // checksum placeholder
  w.u16(id);
  w.u16(seq);
  w.bytes(payload);
  auto icmp = w.take();
  std::uint16_t sum = ipv4_checksum(icmp.data(), icmp.size());
  icmp[2] = static_cast<std::uint8_t>(sum >> 8);
  icmp[3] = static_cast<std::uint8_t>(sum);
  return build_ipv4(dst_mac, src_mac, src_ip, dst_ip, ipproto::icmp, icmp);
}

Frame build_lldp(const std::string& chassis_id, const std::string& port_id,
                 std::uint16_t ttl_seconds) {
  BufWriter w;
  auto tlv = [&](std::uint8_t type, const std::string& value,
                 std::uint8_t subtype) {
    std::uint16_t len = static_cast<std::uint16_t>(value.size() + 1);
    w.u16(static_cast<std::uint16_t>((type << 9) | len));
    w.u8(subtype);
    w.bytes({reinterpret_cast<const std::uint8_t*>(value.data()),
             value.size()});
  };
  tlv(1, chassis_id, 7);  // chassis id, locally assigned
  tlv(2, port_id, 7);     // port id, locally assigned
  w.u16(static_cast<std::uint16_t>((3 << 9) | 2));  // ttl tlv
  w.u16(ttl_seconds);
  w.u16(0);  // end of LLDPDU
  // 01:80:c2:00:00:0e is the LLDP multicast address.
  return build_ethernet(MacAddress::from_u64(0x0180c200000eull),
                        MacAddress{}, ethertype::lldp, w.take());
}

Result<LldpInfo> parse_lldp(const Frame& frame) {
  auto parsed = parse_frame(frame);
  if (!parsed) return parsed.error();
  if (parsed->dl_type != ethertype::lldp) return Errc::protocol_error;
  BufReader r(frame);
  r.skip(kEthHeader);
  LldpInfo info;
  bool saw_chassis = false, saw_port = false;
  while (r.ok() && r.remaining() >= 2) {
    std::uint16_t head = r.u16();
    std::uint8_t type = static_cast<std::uint8_t>(head >> 9);
    std::uint16_t len = head & 0x1ff;
    if (type == 0) break;  // end of LLDPDU
    BufReader body = r.sub(len);
    if (!r.ok()) break;
    if (type == 1 && len >= 1) {
      body.u8();  // subtype
      auto bytes = body.bytes(len - 1);
      info.chassis_id.assign(bytes.begin(), bytes.end());
      saw_chassis = true;
    } else if (type == 2 && len >= 1) {
      body.u8();
      auto bytes = body.bytes(len - 1);
      info.port_id.assign(bytes.begin(), bytes.end());
      saw_port = true;
    } else if (type == 3 && len >= 2) {
      info.ttl = body.u16();
    }
  }
  if (!saw_chassis || !saw_port) return Errc::protocol_error;
  return info;
}

Frame with_vlan_tag(const Frame& frame, std::uint16_t vlan_id,
                    std::uint8_t pcp) {
  if (frame.size() < kEthHeader) return frame;
  Frame out(frame.begin(), frame.begin() + 12);
  std::uint16_t tci =
      static_cast<std::uint16_t>((pcp << 13) | (vlan_id & 0x0fff));
  bool tagged =
      ((static_cast<std::uint16_t>(frame[12]) << 8) | frame[13]) ==
      ethertype::vlan;
  out.push_back(ethertype::vlan >> 8);
  out.push_back(ethertype::vlan & 0xff);
  out.push_back(static_cast<std::uint8_t>(tci >> 8));
  out.push_back(static_cast<std::uint8_t>(tci));
  // Keep the original ethertype+payload (replacing an existing tag).
  std::size_t rest = tagged ? 16 : 12;
  out.insert(out.end(), frame.begin() + static_cast<long>(rest), frame.end());
  return out;
}

Frame without_vlan_tag(const Frame& frame) {
  if (frame.size() < kEthHeader + 4) return frame;
  bool tagged =
      ((static_cast<std::uint16_t>(frame[12]) << 8) | frame[13]) ==
      ethertype::vlan;
  if (!tagged) return frame;
  Frame out(frame.begin(), frame.begin() + 12);
  out.insert(out.end(), frame.begin() + 16, frame.end());
  return out;
}

Status apply_rewrite(Frame& frame, const flow::Action& action) {
  using flow::ActionKind;
  if (frame.size() < kEthHeader)
    return make_error_code(Errc::protocol_error);
  std::size_t ip_off = l3_offset(frame);
  auto have_ipv4 = [&] {
    return frame.size() >= ip_off + 20 &&
           ((static_cast<std::uint16_t>(frame[ip_off - 2]) << 8) |
            frame[ip_off - 1]) == ethertype::ipv4;
  };
  auto l4_off = [&]() -> std::size_t {
    return ip_off + (frame[ip_off] & 0x0f) * 4u;
  };
  switch (action.kind) {
    case ActionKind::set_dl_src:
    case ActionKind::set_dl_dst: {
      // Copy the MAC out first: mac() returns by value and two separate
      // calls would yield iterators into two different temporaries.
      const MacAddress mac = action.mac();
      auto dst = frame.begin() +
                 (action.kind == ActionKind::set_dl_src ? 6 : 0);
      std::copy(mac.bytes().begin(), mac.bytes().end(), dst);
      return ok_status();
    }
    case ActionKind::set_vlan:
      frame = with_vlan_tag(frame, action.port(), 0);
      return ok_status();
    case ActionKind::strip_vlan:
      frame = without_vlan_tag(frame);
      return ok_status();
    case ActionKind::set_nw_src:
    case ActionKind::set_nw_dst: {
      if (!have_ipv4()) return make_error_code(Errc::protocol_error);
      std::size_t off =
          ip_off + (action.kind == ActionKind::set_nw_src ? 12 : 16);
      std::uint32_t v = action.ip().value();
      for (int i = 3; i >= 0; --i) {
        frame[off + static_cast<std::size_t>(3 - i)] =
            static_cast<std::uint8_t>(v >> (i * 8));
      }
      refresh_ipv4_checksum(frame);
      return ok_status();
    }
    case ActionKind::set_nw_tos: {
      if (!have_ipv4()) return make_error_code(Errc::protocol_error);
      frame[ip_off + 1] = std::get<std::uint8_t>(action.value);
      refresh_ipv4_checksum(frame);
      return ok_status();
    }
    case ActionKind::set_tp_src:
    case ActionKind::set_tp_dst: {
      if (!have_ipv4()) return make_error_code(Errc::protocol_error);
      std::uint8_t proto = frame[ip_off + 9];
      if (proto != ipproto::tcp && proto != ipproto::udp)
        return make_error_code(Errc::protocol_error);
      std::size_t off =
          l4_off() + (action.kind == ActionKind::set_tp_src ? 0 : 2);
      if (frame.size() < off + 2)
        return make_error_code(Errc::protocol_error);
      frame[off] = static_cast<std::uint8_t>(action.port() >> 8);
      frame[off + 1] = static_cast<std::uint8_t>(action.port());
      return ok_status();
    }
    case ActionKind::output:
    case ActionKind::enqueue:
    case ActionKind::drop:
      return make_error_code(Errc::invalid_argument);
  }
  return make_error_code(Errc::invalid_argument);
}

}  // namespace yanc::net
