#include "yanc/sw/flow_table.hpp"

#include <algorithm>

namespace yanc::sw {

namespace {

bool outputs_to(const flow::FlowSpec& spec, std::uint16_t port) {
  if (port == 0xffff) return true;
  for (const auto& a : spec.actions)
    if (a.kind == flow::ActionKind::output && a.port() == port) return true;
  return false;
}

}  // namespace

void FlowTable::add(const flow::FlowSpec& spec, std::uint16_t flags,
                    std::uint64_t now_ns) {
  // Identical (match, priority) replaces in place, counters reset.
  for (auto& e : entries_) {
    if (e.spec.priority == spec.priority && e.spec.match == spec.match) {
      e.spec = spec;
      e.flags = flags;
      e.packet_count = e.byte_count = 0;
      e.installed_at_ns = e.last_hit_ns = now_ns;
      return;
    }
  }
  FlowEntry entry;
  entry.spec = spec;
  entry.flags = flags;
  entry.installed_at_ns = entry.last_hit_ns = now_ns;
  // Insert before the first strictly-lower priority so lookup can stop at
  // the first match (stable among equals: earlier adds win ties).
  auto pos = std::find_if(entries_.begin(), entries_.end(),
                          [&](const FlowEntry& e) {
                            return e.spec.priority < spec.priority;
                          });
  entries_.insert(pos, std::move(entry));
}

std::size_t FlowTable::modify(const flow::FlowSpec& spec, bool strict) {
  std::size_t changed = 0;
  for (auto& e : entries_) {
    bool match = strict ? (e.spec.match == spec.match &&
                           e.spec.priority == spec.priority)
                        : spec.match.subsumes(e.spec.match);
    if (!match) continue;
    e.spec.actions = spec.actions;
    e.spec.goto_table = spec.goto_table;
    ++changed;
  }
  return changed;
}

std::vector<FlowEntry> FlowTable::remove(const flow::Match& match,
                                         std::uint16_t priority, bool strict,
                                         std::uint16_t out_port) {
  std::vector<FlowEntry> removed;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    bool hit = strict ? (it->spec.match == match &&
                         it->spec.priority == priority)
                      : match.subsumes(it->spec.match);
    if (hit && outputs_to(it->spec, out_port)) {
      removed.push_back(std::move(*it));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

const FlowEntry* FlowTable::lookup(const flow::FieldValues& fields,
                                   std::uint64_t now_ns, std::uint64_t bytes,
                                   bool count) {
  for (auto& e : entries_) {
    if (e.spec.match.matches(fields)) {
      if (count) {
        ++e.packet_count;
        e.byte_count += bytes;
        e.last_hit_ns = now_ns;
      }
      return &e;
    }
  }
  return nullptr;
}

std::vector<ExpiredEntry> FlowTable::expire(std::uint64_t now_ns) {
  std::vector<ExpiredEntry> expired;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    const auto& spec = it->spec;
    std::uint64_t hard_ns =
        static_cast<std::uint64_t>(spec.hard_timeout) * 1'000'000'000ull;
    std::uint64_t idle_ns =
        static_cast<std::uint64_t>(spec.idle_timeout) * 1'000'000'000ull;
    bool hard = spec.hard_timeout && now_ns >= it->installed_at_ns + hard_ns;
    bool idle = spec.idle_timeout && now_ns >= it->last_hit_ns + idle_ns;
    if (hard || idle) {
      expired.push_back(ExpiredEntry{std::move(*it), hard});
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

}  // namespace yanc::sw
