// A single OpenFlow flow table: priority-ordered matching with OpenFlow
// add/modify/delete semantics, per-entry counters, and idle/hard timeout
// expiry on virtual time.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "yanc/flow/flowspec.hpp"

namespace yanc::sw {

struct FlowEntry {
  flow::FlowSpec spec;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::uint64_t installed_at_ns = 0;
  std::uint64_t last_hit_ns = 0;
  std::uint16_t flags = 0;  // OFPFF_* from the flow_mod
};

struct ExpiredEntry {
  FlowEntry entry;
  bool hard;  // true: hard timeout; false: idle timeout
};

class FlowTable {
 public:
  /// Adds an entry (OFPFC_ADD): replaces an entry with identical match and
  /// priority, per the OpenFlow overlap rule.
  void add(const flow::FlowSpec& spec, std::uint16_t flags,
           std::uint64_t now_ns);

  /// OFPFC_MODIFY / MODIFY_STRICT: updates actions of matching entries
  /// (strict also requires equal priority).  Returns entries changed.
  std::size_t modify(const flow::FlowSpec& spec, bool strict);

  /// OFPFC_DELETE / DELETE_STRICT.  `out_port` filters to entries that
  /// output to that port (0xffff = no filter).  Returns removed entries.
  std::vector<FlowEntry> remove(const flow::Match& match,
                                std::uint16_t priority, bool strict,
                                std::uint16_t out_port = 0xffff);

  /// Highest-priority entry matching the packet; ties broken by insertion
  /// order (first added wins).  Bumps counters when `count` is set.
  const FlowEntry* lookup(const flow::FieldValues& fields,
                          std::uint64_t now_ns, std::uint64_t bytes,
                          bool count = true);

  /// Removes entries whose idle/hard timeout elapsed at `now_ns`.
  std::vector<ExpiredEntry> expire(std::uint64_t now_ns);

  const std::vector<FlowEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<FlowEntry> entries_;  // kept sorted by descending priority
};

}  // namespace yanc::sw
