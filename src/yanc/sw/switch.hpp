// The software OpenFlow switch: the data-plane device the yanc controller
// manages.  Speaks real OpenFlow 1.0 or 1.3 bytes over a net::Channel,
// executes match/action semantics on simulated frames, buffers table-miss
// packets, ages flows on virtual time, and reports stats.
//
// Nothing above the channel can tell this is not a hardware switch behind
// TCP — which is the point of the substitution (see DESIGN.md).
#pragma once

#include <map>
#include <vector>

#include "yanc/net/channel.hpp"
#include "yanc/net/simnet.hpp"
#include "yanc/obs/metrics.hpp"
#include "yanc/ofp/codec.hpp"
#include "yanc/sw/flow_table.hpp"

namespace yanc::sw {

struct SwitchOptions {
  std::uint64_t datapath_id = 0;
  ofp::Version version = ofp::Version::of10;
  std::uint8_t n_tables = 1;  // >1 meaningful only for OF1.3
  std::uint32_t n_buffers = 256;
  std::string manufacturer = "yanc project";
  std::string hw_desc = "software switch";
  std::string sw_desc = "yanc-sw";
};

class Switch : public net::Device {
 public:
  Switch(std::string name, SwitchOptions options, net::Network& network);

  const SwitchOptions& options() const noexcept { return options_; }
  std::uint64_t datapath_id() const noexcept { return options_.datapath_id; }

  /// Declares a local port (wire it up separately via Network::add_link).
  void add_port(std::uint16_t port_no, MacAddress hw_addr,
                std::string if_name);

  /// Attaches a control channel (switch-side endpoint) and sends HELLO.
  ///
  /// `epoch` is the controller's fencing token (cluster lease epoch,
  /// docs/ROBUSTNESS.md).  epoch 0 keeps the single-controller semantics:
  /// the new channel replaces every previous one.  A non-zero epoch adds
  /// the channel alongside existing ones; the highest epoch (ties: latest
  /// connect) is the master — async messages go to it, and state-mutating
  /// messages (FLOW_MOD, PACKET_OUT, PORT_MOD) from any connection with a
  /// lower epoch are rejected with OFPET_BAD_REQUEST/EPERM and counted in
  /// fenced_mods().  The high-water epoch survives disconnects, so a
  /// deposed primary reconnecting with its stale token stays fenced.
  void connect(net::Channel channel, std::uint64_t epoch = 0);
  bool connected() const;
  /// Severs every control channel (switch death / control link cut).  The
  /// flow tables keep running — reconnect resync is the controller's job.
  void disconnect();
  std::size_t controllers() const noexcept { return ctrls_.size(); }
  /// Epoch high-water mark across every controller ever connected.
  std::uint64_t max_epoch() const noexcept { return max_epoch_; }
  /// Epoch of the current master connection (0 when none).
  std::uint64_t master_epoch() const;

  /// Processes pending control messages; returns how many were handled.
  /// The simulation harness calls this between events (a real switch would
  /// be woken by the socket).
  std::size_t pump();

  /// Ages flow tables; emits flow_removed for expired entries that asked
  /// for it.  Driven from the harness/scheduler.
  void expire_flows();

  // --- data plane -------------------------------------------------------
  void handle_frame(std::uint16_t port, const net::Frame& frame) override;
  void handle_link_status(std::uint16_t port, bool up) override;

  // --- introspection (tests/benches) ------------------------------------
  const FlowTable& table(std::uint8_t id = 0) const { return tables_.at(id); }
  FlowTable& mutable_table(std::uint8_t id = 0) { return tables_.at(id); }
  std::uint64_t packet_ins_sent() const noexcept { return packet_ins_; }
  std::uint64_t flow_mods_received() const noexcept { return flow_mods_; }
  std::uint64_t frames_forwarded() const noexcept { return forwarded_; }
  std::uint64_t frames_dropped() const noexcept { return dropped_; }
  /// State-mutating messages rejected because they arrived on a
  /// connection with a stale epoch.
  std::uint64_t fenced_mods() const noexcept { return fenced_; }

  struct PortState {
    ofp::PortDesc desc;
  };
  const std::map<std::uint16_t, PortState>& ports() const { return ports_; }

  /// Registers sw/flow_{hit,miss}_total in `registry` (typically the
  /// controller Vfs's).  Counters aggregate across all switches bound to
  /// the same registry; a lookup is counted per pipeline table visited.
  void bind_metrics(obs::Registry& registry);

 private:
  /// One attached controller connection and its fencing token.
  struct Ctrl {
    net::Channel channel;
    std::uint64_t epoch = 0;
  };

  /// Encodes and sends; returns the xid used (0 when nothing was sent),
  /// so callers can correlate in-flight messages (causal tracing).
  /// Replies go to the connection being pumped; async messages (packet-in,
  /// flow-removed, port-status) go to the master.
  std::uint32_t send(const ofp::Message& message, std::uint32_t xid = 0);
  /// The connection send() targets right now, nullptr when none.
  Ctrl* send_target();
  /// Drops closed connections and re-elects the master (highest epoch,
  /// ties to the latest connect).
  void prune_ctrls();
  void handle_message(const ofp::Decoded& decoded);
  void handle_flow_mod(const ofp::FlowMod& fm, std::uint32_t xid);
  void handle_packet_out(const ofp::PacketOut& po);
  void handle_stats(const ofp::StatsRequest& sr, std::uint32_t xid);
  void handle_port_mod(const ofp::PortMod& pm);

  /// Runs the action list on `frame` (rewrites mutate it in place so a
  /// later pipeline table matches the rewritten packet).
  void execute_actions(const std::vector<flow::Action>& actions,
                       net::Frame& frame, std::uint16_t in_port);
  void output_frame(std::uint16_t out_port, const net::Frame& frame,
                    std::uint16_t in_port);
  void send_packet_in(const net::Frame& frame, std::uint16_t in_port,
                      ofp::PacketIn::Reason reason);
  void send_flow_removed(const ExpiredEntry& expired);
  std::uint64_t now_ns() const;

  SwitchOptions options_;
  net::Network& network_;
  std::vector<Ctrl> ctrls_;
  /// Index into ctrls_ of the master connection (kNoCtrl when empty).
  std::size_t master_ = kNoCtrl;
  /// Connection currently being pumped (kNoCtrl outside pump()): replies
  /// route back to it, never to the master.
  std::size_t pumping_ = kNoCtrl;
  std::uint64_t max_epoch_ = 0;
  std::uint64_t fenced_ = 0;
  static constexpr std::size_t kNoCtrl = static_cast<std::size_t>(-1);
  std::map<std::uint8_t, FlowTable> tables_;
  std::map<std::uint16_t, PortState> ports_;
  std::map<std::uint32_t, net::Frame> buffers_;
  std::uint32_t next_buffer_id_ = 1;
  std::uint32_t next_xid_ = 1;
  std::uint64_t packet_ins_ = 0;
  std::uint64_t flow_mods_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  obs::Counter* hit_metric_ = nullptr;
  obs::Counter* miss_metric_ = nullptr;
  obs::Counter* fenced_metric_ = nullptr;
  // per-port (packets, bytes) counters
  std::map<std::uint16_t, std::pair<std::uint64_t, std::uint64_t>>
      port_counters_rx_, port_counters_tx_;
  // per-(port, queue) (packets, bytes) counters for enqueue actions
  std::map<std::pair<std::uint16_t, std::uint32_t>,
           std::pair<std::uint64_t, std::uint64_t>>
      queue_counters_;
};

}  // namespace yanc::sw
