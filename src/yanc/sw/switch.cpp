#include "yanc/sw/switch.hpp"

#include <tuple>

#include "yanc/obs/tracer.hpp"
#include "yanc/util/log.hpp"

namespace yanc::sw {

using flow::Action;
using flow::ActionKind;
namespace port_no = flow::port_no;

Switch::Switch(std::string name, SwitchOptions options, net::Network& network)
    : Device(std::move(name)), options_(options), network_(network) {
  std::uint8_t tables = options_.version == ofp::Version::of10
                            ? 1
                            : std::max<std::uint8_t>(1, options_.n_tables);
  for (std::uint8_t t = 0; t < tables; ++t) tables_[t];
}

std::uint64_t Switch::now_ns() const {
  return static_cast<std::uint64_t>(
      network_.scheduler().now().count());
}

void Switch::add_port(std::uint16_t no, MacAddress hw_addr,
                      std::string if_name) {
  ofp::PortDesc desc;
  desc.port_no = no;
  desc.hw_addr = hw_addr;
  desc.name = std::move(if_name);
  ports_[no] = PortState{desc};
  if (connected())
    send(ofp::PortStatus{ofp::PortStatus::Reason::add, desc});
}

void Switch::connect(net::Channel channel, std::uint64_t epoch) {
  if (epoch == 0 && max_epoch_ == 0) {
    // Single-controller semantics: the new channel replaces any old one.
    ctrls_.clear();
    master_ = kNoCtrl;
  }
  ctrls_.push_back(Ctrl{std::move(channel), epoch});
  // Highest epoch wins mastership; >= makes the latest connect win ties,
  // which is also what keeps the legacy (all-zero-epoch) path working.
  if (master_ == kNoCtrl || epoch >= max_epoch_)
    master_ = ctrls_.size() - 1;
  if (epoch > max_epoch_) max_epoch_ = epoch;
  std::size_t prev = pumping_;
  pumping_ = ctrls_.size() - 1;  // the HELLO belongs to the new connection
  send(ofp::Hello{});
  pumping_ = prev;
}

bool Switch::connected() const {
  for (const auto& ctrl : ctrls_)
    if (ctrl.channel.connected()) return true;
  return false;
}

void Switch::disconnect() {
  for (auto& ctrl : ctrls_) ctrl.channel.close();
  ctrls_.clear();
  master_ = kNoCtrl;
}

std::uint64_t Switch::master_epoch() const {
  return master_ == kNoCtrl ? 0 : ctrls_[master_].epoch;
}

Switch::Ctrl* Switch::send_target() {
  if (pumping_ != kNoCtrl && pumping_ < ctrls_.size())
    return &ctrls_[pumping_];
  if (master_ != kNoCtrl && master_ < ctrls_.size())
    return &ctrls_[master_];
  return nullptr;
}

std::uint32_t Switch::send(const ofp::Message& message, std::uint32_t xid) {
  Ctrl* target = send_target();
  if (!target || !target->channel.connected()) return 0;
  if (xid == 0) xid = next_xid_++;
  auto bytes = ofp::encode(options_.version, xid, message);
  if (!bytes) {
    log_error("sw", "encode failed for " + ofp::message_name(message));
    return 0;
  }
  // A false return means the controller end closed mid-send; pump()
  // observes the disconnect via connected() on its next pass, so the
  // lost message needs no handling here.
  std::ignore = target->channel.send(std::move(*bytes));
  return xid;
}

void Switch::prune_ctrls() {
  for (std::size_t i = ctrls_.size(); i-- > 0;) {
    if (ctrls_[i].channel.connected()) continue;
    ctrls_.erase(ctrls_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  // Re-elect: highest epoch, ties to the most recent connect.  The
  // max_epoch_ high-water mark is deliberately not rolled back — a
  // deposed primary reconnecting with its old token stays fenced.
  master_ = kNoCtrl;
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < ctrls_.size(); ++i) {
    if (master_ == kNoCtrl || ctrls_[i].epoch >= best) {
      master_ = i;
      best = ctrls_[i].epoch;
    }
  }
}

std::size_t Switch::pump() {
  std::size_t handled = 0;
  prune_ctrls();
  for (std::size_t i = 0; i < ctrls_.size(); ++i) {
    pumping_ = i;
    while (auto msg = ctrls_[i].channel.try_recv()) {
      // A batching driver packs a whole commit burst into one buffer; each
      // message still carries its own length-framed header, so split first
      // and decode the frames individually.  A lone message is a train of
      // one — the pre-batching wire format unchanged.
      auto frames = ofp::split_frames(*msg);
      if (!frames) {
        send(ofp::Error{/*type=*/1, /*code=*/0, std::move(*msg)});
        continue;
      }
      for (auto frame : *frames) {
        auto decoded = ofp::decode(frame);
        if (!decoded) {
          send(ofp::Error{/*type=*/1, /*code=*/0,
                          {frame.begin(), frame.end()}});
          continue;
        }
        handle_message(*decoded);
        ++handled;
      }
    }
  }
  pumping_ = kNoCtrl;
  return handled;
}

void Switch::handle_message(const ofp::Decoded& decoded) {
  const auto& m = decoded.message;
  std::uint32_t xid = decoded.header.xid;
  if (std::holds_alternative<ofp::Hello>(m)) return;
  // Epoch fence: state-mutating messages from a connection with a stale
  // fencing token are rejected, so a deposed primary that still believes
  // it owns this switch cannot corrupt the table (docs/ROBUSTNESS.md).
  // Reads (stats, echo, features, barrier) stay open to every connection.
  if (pumping_ != kNoCtrl && ctrls_[pumping_].epoch < max_epoch_ &&
      (std::holds_alternative<ofp::FlowMod>(m) ||
       std::holds_alternative<ofp::PacketOut>(m) ||
       std::holds_alternative<ofp::PortMod>(m))) {
    ++fenced_;
    if (fenced_metric_) fenced_metric_->add();
    send(ofp::Error{1 /*BAD_REQUEST*/, 5 /*EPERM*/, {}}, xid);
    return;
  }
  if (auto* echo = std::get_if<ofp::EchoRequest>(&m)) {
    send(ofp::EchoReply{echo->data}, xid);
    return;
  }
  if (std::holds_alternative<ofp::FeaturesRequest>(m)) {
    ofp::FeaturesReply reply;
    reply.datapath_id = options_.datapath_id;
    reply.n_buffers = options_.n_buffers;
    reply.n_tables = static_cast<std::uint8_t>(tables_.size());
    reply.capabilities = 0x1 | 0x4;  // FLOW_STATS | PORT_STATS
    reply.actions = 0xfff;           // all 1.0 action types
    for (const auto& [no, state] : ports_) reply.ports.push_back(state.desc);
    send(reply, xid);
    return;
  }
  if (auto* fm = std::get_if<ofp::FlowMod>(&m)) {
    handle_flow_mod(*fm, xid);
    return;
  }
  if (auto* po = std::get_if<ofp::PacketOut>(&m)) {
    handle_packet_out(*po);
    return;
  }
  if (auto* sr = std::get_if<ofp::StatsRequest>(&m)) {
    handle_stats(*sr, xid);
    return;
  }
  if (std::holds_alternative<ofp::BarrierRequest>(m)) {
    send(ofp::BarrierReply{}, xid);
    return;
  }
  if (auto* pm = std::get_if<ofp::PortMod>(&m)) {
    handle_port_mod(*pm);
    return;
  }
  // Anything else: a real switch replies OFPET_BAD_REQUEST.
  send(ofp::Error{1, 1, {}}, xid);
}

void Switch::handle_flow_mod(const ofp::FlowMod& fm, std::uint32_t xid) {
  ++flow_mods_;
  // Close the wire leg of a traced commit: queue-wait is the time the
  // encoded FLOW_MOD sat in the channel, service is the table mutation.
  obs::Tracer::Handoff handoff;
  if (obs::tracer().enabled())
    handoff = obs::tracer().wire_take(options_.datapath_id, xid);
  obs::Span trace_span(
      handoff.ref, "sw", "flow_mod",
      handoff ? obs::Tracer::now_ns() - handoff.ts_ns : 0);
  std::uint8_t table = options_.version == ofp::Version::of10
                           ? 0
                           : fm.spec.table_id;
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    send(ofp::Error{3 /*FLOW_MOD_FAILED*/, 2 /*BAD_TABLE_ID*/, {}});
    return;
  }
  FlowTable& t = it->second;
  switch (fm.command) {
    case ofp::FlowMod::Command::add:
      t.add(fm.spec, fm.flags, now_ns());
      break;
    case ofp::FlowMod::Command::modify:
      t.modify(fm.spec, false);
      break;
    case ofp::FlowMod::Command::modify_strict:
      t.modify(fm.spec, true);
      break;
    case ofp::FlowMod::Command::remove:
    case ofp::FlowMod::Command::remove_strict: {
      auto removed =
          t.remove(fm.spec.match, fm.spec.priority,
                   fm.command == ofp::FlowMod::Command::remove_strict,
                   fm.out_port);
      for (const auto& entry : removed) {
        if (entry.flags & ofp::kFlagSendFlowRemoved) {
          ExpiredEntry e{entry, false};
          send_flow_removed(e);
        }
      }
      break;
    }
  }
  // A flow_mod may release a buffered packet through the new rules.
  if (fm.buffer_id != ofp::kNoBuffer) {
    auto buffered = buffers_.find(fm.buffer_id);
    if (buffered != buffers_.end()) {
      net::Frame frame = std::move(buffered->second);
      buffers_.erase(buffered);
      // Re-inject as if it just arrived (in_port taken from the match).
      std::uint16_t in_port = fm.spec.match.in_port.value_or(0);
      handle_frame(in_port, frame);
    }
  }
}

void Switch::handle_packet_out(const ofp::PacketOut& po) {
  net::Frame frame;
  if (po.buffer_id != ofp::kNoBuffer) {
    auto it = buffers_.find(po.buffer_id);
    if (it == buffers_.end()) {
      send(ofp::Error{2 /*BAD_REQUEST*/, 8 /*BUFFER_UNKNOWN*/, {}});
      return;
    }
    frame = std::move(it->second);
    buffers_.erase(it);
  } else {
    frame = po.data;
  }
  execute_actions(po.actions, frame, po.in_port);
}

void Switch::handle_stats(const ofp::StatsRequest& sr, std::uint32_t xid) {
  ofp::StatsReply reply;
  reply.kind = sr.kind;
  switch (sr.kind) {
    case ofp::StatsKind::desc:
      reply.manufacturer = options_.manufacturer;
      reply.hw_desc = options_.hw_desc;
      reply.sw_desc = options_.sw_desc;
      reply.serial = "0";
      reply.dp_desc = name();
      break;
    case ofp::StatsKind::flow:
      for (const auto& [tid, table] : tables_) {
        if (sr.table_id != 0xff && sr.table_id != tid) continue;
        for (const auto& e : table.entries()) {
          if (!sr.match.subsumes(e.spec.match)) continue;
          ofp::FlowStatsEntry out;
          out.table_id = tid;
          out.spec = e.spec;
          out.duration_sec = static_cast<std::uint32_t>(
              (now_ns() - e.installed_at_ns) / 1'000'000'000ull);
          out.packet_count = e.packet_count;
          out.byte_count = e.byte_count;
          reply.flows.push_back(std::move(out));
        }
      }
      break;
    case ofp::StatsKind::port:
      for (const auto& [no, state] : ports_) {
        if (sr.port_no != 0xffff && sr.port_no != no) continue;
        ofp::PortStatsEntry p;
        p.port_no = no;
        p.rx_packets = port_counters_rx_[no].first;
        p.rx_bytes = port_counters_rx_[no].second;
        p.tx_packets = port_counters_tx_[no].first;
        p.tx_bytes = port_counters_tx_[no].second;
        reply.ports.push_back(p);
      }
      break;
    case ofp::StatsKind::queue:
      for (const auto& [key, counts] : queue_counters_) {
        if (sr.port_no != 0xffff && sr.port_no != key.first) continue;
        if (sr.queue_id != 0xffffffffu && sr.queue_id != key.second)
          continue;
        ofp::QueueStatsEntry q;
        q.port_no = key.first;
        q.queue_id = key.second;
        q.tx_packets = counts.first;
        q.tx_bytes = counts.second;
        reply.queues.push_back(q);
      }
      break;
    case ofp::StatsKind::port_desc:
      for (const auto& [no, state] : ports_)
        reply.port_descs.push_back(state.desc);
      break;
  }
  send(reply, xid);
}

void Switch::handle_port_mod(const ofp::PortMod& pm) {
  auto it = ports_.find(pm.port_no);
  if (it == ports_.end()) {
    send(ofp::Error{7 /*PORT_MOD_FAILED*/, 0 /*BAD_PORT*/, {}});
    return;
  }
  it->second.desc.port_down = pm.port_down;
  it->second.desc.no_flood = pm.no_flood;
  send(ofp::PortStatus{ofp::PortStatus::Reason::modify, it->second.desc});
}

void Switch::bind_metrics(obs::Registry& registry) {
  hit_metric_ = registry.counter("sw/flow_hit_total");
  miss_metric_ = registry.counter("sw/flow_miss_total");
  fenced_metric_ = registry.counter("sw/fenced_mod_total");
}

void Switch::handle_link_status(std::uint16_t port, bool up) {
  auto it = ports_.find(port);
  if (it == ports_.end()) return;
  it->second.desc.link_down = !up;
  if (connected())
    send(ofp::PortStatus{ofp::PortStatus::Reason::modify, it->second.desc});
}

void Switch::handle_frame(std::uint16_t port, const net::Frame& frame) {
  auto& rx = port_counters_rx_[port];
  ++rx.first;
  rx.second += frame.size();
  auto port_it = ports_.find(port);
  if (port_it != ports_.end() && port_it->second.desc.port_down) {
    ++dropped_;
    return;
  }

  auto parsed = net::parse_frame(frame);
  if (!parsed) {
    ++dropped_;
    return;
  }

  std::uint8_t table_id = 0;
  net::Frame current = frame;
  // OF1.3 pipeline: walk tables following goto-table; OF1.0 has one table.
  for (int hops = 0; hops < 64; ++hops) {
    auto fields = parsed->fields(port);
    auto entry_it = tables_.find(table_id);
    if (entry_it == tables_.end()) {
      ++dropped_;
      return;
    }
    const FlowEntry* entry =
        entry_it->second.lookup(fields, now_ns(), current.size());
    if (!entry) {
      if (miss_metric_) miss_metric_->add();
      send_packet_in(current, port, ofp::PacketIn::Reason::no_match);
      return;
    }
    if (hit_metric_) hit_metric_->add();
    execute_actions(entry->spec.actions, current, port);
    if (entry->spec.goto_table >= 0 &&
        static_cast<std::uint8_t>(entry->spec.goto_table) > table_id) {
      table_id = static_cast<std::uint8_t>(entry->spec.goto_table);
      // Later tables match the packet as rewritten so far.
      auto reparsed = net::parse_frame(current);
      if (!reparsed) {
        ++dropped_;
        return;
      }
      parsed = std::move(reparsed);
      continue;
    }
    return;
  }
}

void Switch::execute_actions(const std::vector<Action>& actions,
                             net::Frame& frame, std::uint16_t in_port) {
  if (actions.empty()) {
    ++dropped_;
    return;
  }
  net::Frame& working = frame;
  for (const auto& action : actions) {
    switch (action.kind) {
      case ActionKind::output:
        output_frame(action.port(), working, in_port);
        break;
      case ActionKind::enqueue: {
        std::uint32_t packed = std::get<std::uint32_t>(action.value);
        std::uint16_t port = static_cast<std::uint16_t>(packed >> 16);
        std::uint32_t queue = packed & 0xffff;
        // Queues share the port's link in this reproduction, but keep
        // their own transmit accounting (reported via queue stats).
        auto& qc = queue_counters_[{port, queue}];
        ++qc.first;
        qc.second += working.size();
        output_frame(port, working, in_port);
        break;
      }
      case ActionKind::drop:
        ++dropped_;
        return;
      default:
        if (auto ec = net::apply_rewrite(working, action); ec) ++dropped_;
        break;
    }
  }
}

void Switch::output_frame(std::uint16_t out_port, const net::Frame& frame,
                          std::uint16_t in_port) {
  auto transmit = [&](std::uint16_t p) {
    auto it = ports_.find(p);
    if (it == ports_.end() || it->second.desc.port_down) {
      ++dropped_;
      return;
    }
    auto& tx = port_counters_tx_[p];
    ++tx.first;
    tx.second += frame.size();
    ++forwarded_;
    network_.transmit(*this, p, frame);
  };

  if (out_port == port_no::controller) {
    send_packet_in(frame, in_port, ofp::PacketIn::Reason::action);
    return;
  }
  if (out_port == port_no::in_port) {
    transmit(in_port);
    return;
  }
  if (out_port == port_no::flood || out_port == port_no::all) {
    for (const auto& [no, state] : ports_) {
      if (no == in_port) continue;
      if (out_port == port_no::flood && state.desc.no_flood) continue;
      transmit(no);
    }
    return;
  }
  if (out_port == port_no::local || out_port == port_no::none) {
    ++dropped_;
    return;
  }
  transmit(out_port);
}

void Switch::send_packet_in(const net::Frame& frame, std::uint16_t in_port,
                            ofp::PacketIn::Reason reason) {
  if (!connected()) {
    ++dropped_;
    return;
  }
  ofp::PacketIn pi;
  pi.total_len = static_cast<std::uint16_t>(frame.size());
  pi.in_port = in_port;
  pi.reason = reason;
  pi.data = frame;
  if (buffers_.size() < options_.n_buffers) {
    pi.buffer_id = next_buffer_id_++;
    buffers_[pi.buffer_id] = frame;
  }
  ++packet_ins_;
  // Ingress of the control-plane pipeline: mint the root of a causal
  // trace and tie it to the in-flight PacketIn's (dpid, xid), so the
  // driver can pick the context up on the far side of the channel.
  obs::TraceRef trace_ref;
  if (obs::tracer().enabled())
    trace_ref = obs::tracer().mint("sw", "packet_in",
                                   "in_port=" + std::to_string(in_port));
  std::uint32_t xid = send(pi);
  if (trace_ref && xid != 0)
    obs::tracer().wire_put(options_.datapath_id, xid, trace_ref);
}

void Switch::send_flow_removed(const ExpiredEntry& expired) {
  ofp::FlowRemoved fr;
  fr.match = expired.entry.spec.match;
  fr.cookie = expired.entry.spec.cookie;
  fr.priority = expired.entry.spec.priority;
  fr.reason = expired.hard ? ofp::FlowRemoved::Reason::hard_timeout
                           : ofp::FlowRemoved::Reason::idle_timeout;
  fr.table_id = expired.entry.spec.table_id;
  fr.duration_sec = static_cast<std::uint32_t>(
      (now_ns() - expired.entry.installed_at_ns) / 1'000'000'000ull);
  fr.packet_count = expired.entry.packet_count;
  fr.byte_count = expired.entry.byte_count;
  send(fr);
}

void Switch::expire_flows() {
  for (auto& [tid, table] : tables_) {
    for (const auto& expired : table.expire(now_ns())) {
      if (expired.entry.flags & ofp::kFlagSendFlowRemoved)
        send_flow_removed(expired);
    }
  }
}

}  // namespace yanc::sw
