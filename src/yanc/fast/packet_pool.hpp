// Zero-copy packet buffers (§8.1): "the efficient, zero-copy passing of
// bulk data — packet in buffers, for example — among applications."
//
// A PacketPool owns fixed-size refcounted slots.  A packet-in payload is
// written once; fan-out to N applications passes PacketRef handles (16
// bytes each) instead of copying the payload N times — the file-system
// events/ path, by contrast, writes a private copy into every app's
// buffer.  EXP-4 measures the difference.
#pragma once

#include <atomic>
#include <cassert>
#include <cstring>
#include <span>
#include <vector>

#include "yanc/dbg/lockdep.hpp"
#include "yanc/util/result.hpp"

namespace yanc::fast {

class PacketPool;

/// A shared reference to one pooled packet.  Copying bumps a refcount;
/// the slot returns to the pool when the last reference drops.
class PacketRef {
 public:
  PacketRef() = default;
  PacketRef(const PacketRef& other) { acquire(other); }
  PacketRef& operator=(const PacketRef& other) {
    if (this != &other) {
      release();
      acquire(other);
    }
    return *this;
  }
  PacketRef(PacketRef&& other) noexcept
      : pool_(other.pool_), slot_(other.slot_) {
    other.pool_ = nullptr;
  }
  PacketRef& operator=(PacketRef&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      slot_ = other.slot_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  ~PacketRef() { release(); }

  explicit operator bool() const noexcept { return pool_ != nullptr; }
  std::span<const std::uint8_t> data() const;
  std::uint16_t in_port() const;
  std::uint64_t datapath() const;

 private:
  friend class PacketPool;
  PacketRef(PacketPool* pool, std::size_t slot) : pool_(pool), slot_(slot) {}
  void acquire(const PacketRef& other);
  void release();

  PacketPool* pool_ = nullptr;
  std::size_t slot_ = 0;
};

class PacketPool {
 public:
  PacketPool(std::size_t slots, std::size_t slot_bytes)
      : slot_bytes_(slot_bytes), payload_(slots * slot_bytes),
        meta_(slots) {
    free_.reserve(slots);
    for (std::size_t i = slots; i > 0; --i) free_.push_back(i - 1);
  }

  /// Writes the payload once and returns the first reference.
  /// Fails with ENOSPC when the pool is exhausted or the frame too large.
  Result<PacketRef> emplace(std::span<const std::uint8_t> frame,
                            std::uint64_t datapath, std::uint16_t in_port) {
    if (frame.size() > slot_bytes_) return Errc::no_space;
    std::size_t slot;
    {
      dbg::LockGuard lock(mu_);
      if (free_.empty()) return Errc::no_space;
      slot = free_.back();
      free_.pop_back();
    }
    Meta& m = meta_[slot];
    m.len = frame.size();
    m.datapath = datapath;
    m.in_port = in_port;
    m.refs.store(1, std::memory_order_relaxed);
    std::memcpy(payload_.data() + slot * slot_bytes_, frame.data(),
                frame.size());
    return PacketRef(this, slot);
  }

  std::size_t slots_free() const {
    dbg::LockGuard lock(mu_);
    return free_.size();
  }
  std::size_t slots_total() const noexcept { return meta_.size(); }

 private:
  friend class PacketRef;
  struct Meta {
    std::atomic<std::uint32_t> refs{0};
    std::size_t len = 0;
    std::uint64_t datapath = 0;
    std::uint16_t in_port = 0;
  };

  void add_ref(std::size_t slot) {
    meta_[slot].refs.fetch_add(1, std::memory_order_relaxed);
  }
  void drop_ref(std::size_t slot) {
    if (meta_[slot].refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      dbg::LockGuard lock(mu_);
      free_.push_back(slot);
    }
  }

  std::size_t slot_bytes_;
  std::vector<std::uint8_t> payload_;
  std::vector<Meta> meta_;
  mutable dbg::Mutex<dbg::Rank::packet_pool> mu_;
  std::vector<std::size_t> free_;
};

inline std::span<const std::uint8_t> PacketRef::data() const {
  assert(pool_);
  return {pool_->payload_.data() + slot_ * pool_->slot_bytes_,
          pool_->meta_[slot_].len};
}

inline std::uint16_t PacketRef::in_port() const {
  assert(pool_);
  return pool_->meta_[slot_].in_port;
}

inline std::uint64_t PacketRef::datapath() const {
  assert(pool_);
  return pool_->meta_[slot_].datapath;
}

inline void PacketRef::acquire(const PacketRef& other) {
  pool_ = other.pool_;
  slot_ = other.slot_;
  if (pool_) pool_->add_ref(slot_);
}

inline void PacketRef::release() {
  if (pool_) pool_->drop_ref(slot_);
  pool_ = nullptr;
}

}  // namespace yanc::fast
