// The cost model behind §8.1's performance argument: "Each fine-grained
// access to the file system is done through a system call ... which
// switches context from the application to the kernel."
//
// Our VFS is in-process, so crossing it costs nothing — which would make
// the FS-vs-fastpath comparison dishonest.  SyscallCostModel charges a
// configurable boundary cost per Vfs operation (the Vfs op counters supply
// the count) so benchmarks can report both raw time and modelled time
// under a realistic per-syscall price (~300-1000 ns on current kernels).
#pragma once

#include <cstdint>

#include "yanc/vfs/vfs.hpp"

namespace yanc::fast {

struct SyscallCostModel {
  /// Price of one user/kernel boundary crossing.
  std::uint64_t cost_ns = 500;

  /// Modelled overhead for `ops` boundary crossings.
  std::uint64_t overhead_ns(std::uint64_t ops) const {
    return ops * cost_ns;
  }

  /// Overhead implied by a Vfs counter delta.
  std::uint64_t overhead_ns(const vfs::OpCounters& counters,
                            std::uint64_t baseline_total = 0) const {
    return overhead_ns(counters.total.load() - baseline_total);
  }
};

/// Burns approximately `ns` of CPU (used when a benchmark wants the cost
/// to appear in wall-clock measurements rather than as a reported column).
void spin_for_ns(std::uint64_t ns);

}  // namespace yanc::fast
