// The libyanc flow fastpath (§8.1): "a fastpath for e.g. creating flow
// entries atomically and without any context switchings."
//
// Contrast with the file-system path, where one flow entry costs a dozen
// system calls (mkdir + one write per match/action field + the version
// commit).  Here the application builds a whole batch of FlowSpecs and
// publishes it with one lock-free ring push; the driver consumes the batch
// and pushes FLOW_MODs.  The batch is also mirrored into the file system
// by the consumer (so shell tools still see every flow) — but off the
// application's critical path.
#pragma once

#include <string>
#include <vector>

#include "yanc/fast/ring.hpp"
#include "yanc/flow/flowspec.hpp"

namespace yanc::fast {

struct FlowBatch {
  std::string switch_name;
  /// (flow name, committed spec) pairs; the whole batch is atomic.
  std::vector<std::pair<std::string, flow::FlowSpec>> entries;
};

class FlowChannel {
 public:
  explicit FlowChannel(std::size_t ring_slots = 4096) : ring_(ring_slots) {}

  /// Application side: publishes a batch atomically.  No system calls, no
  /// locks.  False when the ring is full (backpressure).
  bool submit(FlowBatch batch) {
    if (!ring_.push(std::move(batch))) return false;
    submitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Driver side: next pending batch.
  std::optional<FlowBatch> take() {
    auto batch = ring_.pop();
    if (batch) taken_.fetch_add(1, std::memory_order_relaxed);
    return batch;
  }

  std::uint64_t submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t taken() const noexcept {
    return taken_.load(std::memory_order_relaxed);
  }
  std::size_t pending() const noexcept { return ring_.size(); }

 private:
  SpscRing<FlowBatch> ring_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> taken_{0};
};

}  // namespace yanc::fast
