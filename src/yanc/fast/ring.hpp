// Lock-free single-producer/single-consumer ring — the queue primitive of
// the libyanc fastpath.  Bounded, wait-free on both sides, no system calls
// and no locks anywhere on the hot path (the point of §8.1).
#pragma once

#include <atomic>
#include <cassert>
#include <optional>
#include <vector>

namespace yanc::fast {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit SpscRing(std::size_t capacity = 1024) {
    std::size_t size = 1;
    while (size < capacity) size <<= 1;
    slots_.resize(size);
    mask_ = size - 1;
  }

  /// Producer side.  False when full (caller decides: retry or drop).
  bool push(T value) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;  // full
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  std::optional<T> pop() {
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;  // empty
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const noexcept { return mask_ + 1; }
  bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace yanc::fast
