// Driver-side consumer of the libyanc flow fastpath: drains published
// batches, encodes FLOW_MODs for the wire, and (optionally, off the
// application's critical path) mirrors the entries into the file system so
// every FS-based tool still sees them.
#pragma once

#include <functional>

#include "yanc/fast/flow_channel.hpp"
#include "yanc/ofp/codec.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::fast {

struct ConsumerStats {
  std::uint64_t batches = 0;
  std::uint64_t flows = 0;
  std::uint64_t encode_failures = 0;
};

/// Drains everything pending in `channel`.  For each flow, encodes a
/// FLOW_MOD of `version` and hands the bytes to `sink(switch_name, bytes)`.
/// When `mirror` is non-null the flow directory is also written under
/// `<net_root>/switches/<switch>/flows/<name>` (committed).
ConsumerStats drain_flow_channel(
    FlowChannel& channel, ofp::Version version,
    const std::function<void(const std::string&, std::vector<std::uint8_t>)>&
        sink,
    vfs::Vfs* mirror = nullptr, const std::string& net_root = "/net");

}  // namespace yanc::fast
