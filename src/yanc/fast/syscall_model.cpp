#include "yanc/fast/syscall_model.hpp"

#include <chrono>

namespace yanc::fast {

void spin_for_ns(std::uint64_t ns) {
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // busy wait
  }
}

}  // namespace yanc::fast
