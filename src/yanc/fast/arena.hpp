// libyanc shared-memory substrate (§8.1): "a set of network-centric
// library calls atop a shared memory system."
//
// ShmArena models the shared segment: one contiguous allocation that both
// sides of the fastpath address directly.  Allocation is a bump pointer —
// release is wholesale (reset), which matches the usage: batches are built,
// published, consumed, and the arena recycled.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace yanc::fast {

class ShmArena {
 public:
  explicit ShmArena(std::size_t capacity) : buffer_(capacity) {}

  /// Bump-allocates `n` bytes (aligned); nullptr when exhausted.
  std::uint8_t* alloc(std::size_t n, std::size_t align = 8) {
    std::size_t current = head_.load(std::memory_order_relaxed);
    std::size_t aligned, end;
    do {
      aligned = (current + align - 1) & ~(align - 1);
      end = aligned + n;
      if (end > buffer_.size()) return nullptr;
    } while (!head_.compare_exchange_weak(current, end,
                                          std::memory_order_acq_rel));
    return buffer_.data() + aligned;
  }

  /// Recycles the whole arena.  Only safe when no consumer holds
  /// references into it (the flow-batch protocol guarantees that).
  void reset() { head_.store(0, std::memory_order_release); }

  std::size_t used() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::atomic<std::size_t> head_{0};
};

}  // namespace yanc::fast
