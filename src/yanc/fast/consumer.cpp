#include "yanc/fast/consumer.hpp"

#include "yanc/netfs/flowio.hpp"

namespace yanc::fast {

ConsumerStats drain_flow_channel(
    FlowChannel& channel, ofp::Version version,
    const std::function<void(const std::string&, std::vector<std::uint8_t>)>&
        sink,
    vfs::Vfs* mirror, const std::string& net_root) {
  ConsumerStats stats;
  std::uint32_t xid = 1;
  while (auto batch = channel.take()) {
    ++stats.batches;
    for (auto& [name, spec] : batch->entries) {
      ofp::FlowMod fm;
      fm.command = ofp::FlowMod::Command::add;
      fm.spec = spec;
      auto bytes = ofp::encode(version, xid++, fm);
      if (!bytes) {
        ++stats.encode_failures;
        continue;
      }
      sink(batch->switch_name, std::move(*bytes));
      ++stats.flows;
      if (mirror) {
        (void)netfs::write_flow(*mirror,
                                net_root + "/switches/" +
                                    batch->switch_name + "/flows/" + name,
                                spec);
      }
    }
  }
  return stats;
}

}  // namespace yanc::fast
