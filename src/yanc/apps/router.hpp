// The reactive router daemon (§8): "a router daemon handles all table
// misses and sets up paths based on exact match through the network."
//
// Pure yanc application: consumes table-miss packet-ins from its events/
// buffer, learns host locations into hosts/ (mac, ip, location symlink),
// computes shortest paths over the peer-symlink topology, installs
// exact-match flows with an idle timeout along the path, and re-injects
// the triggering packet via packet_out so the first packet is not lost.
// Broadcast frames (ARP requests) are flooded to every edge port.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "yanc/net/packet.hpp"
#include "yanc/netfs/handles.hpp"
#include "yanc/topo/graph.hpp"

namespace yanc::apps {

struct RouterOptions {
  std::string net_root = "/net";
  std::string app_name = "router";
  std::uint16_t flow_idle_timeout = 30;
  std::uint16_t flow_priority = 100;
};

class RouterDaemon {
 public:
  RouterDaemon(std::shared_ptr<vfs::Vfs> vfs, RouterOptions options = {});

  /// Consumes pending packet-ins; returns how many were handled.
  Result<std::size_t> poll();

  std::uint64_t paths_installed() const noexcept { return paths_; }
  std::uint64_t floods() const noexcept { return floods_; }
  std::uint64_t hosts_learned() const noexcept { return learned_; }

 private:
  Status handle_packet(const netfs::PacketInInfo& pkt);
  Status learn_host(const MacAddress& mac,
                    const std::optional<Ipv4Address>& ip,
                    const topo::PortRef& where);
  Status install_path(const topo::Graph& graph,
                      const topo::HostAttachment& src,
                      const topo::HostAttachment& dst,
                      const net::ParsedFrame& parsed,
                      const std::string& data);
  Status flood_edges(const topo::Graph& graph, const topo::PortRef& origin,
                     const std::string& data);
  Status packet_out(const std::string& switch_name, std::uint16_t port,
                    const std::string& data);
  /// True when (switch, port) has no peer symlink — i.e. a host-facing
  /// edge port (inter-switch ports never learn hosts).
  bool is_edge_port(const topo::Graph& graph, const topo::PortRef& ref) const;

  std::shared_ptr<vfs::Vfs> vfs_;
  RouterOptions options_;
  std::optional<netfs::EventBufferHandle> events_;
  std::uint64_t next_out_ = 1;
  std::uint64_t next_flow_ = 1;
  std::uint64_t paths_ = 0;
  std::uint64_t floods_ = 0;
  std::uint64_t learned_ = 0;
};

}  // namespace yanc::apps
