#include "yanc/apps/static_flow_pusher.hpp"

#include "yanc/netfs/flowio.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::apps {

PushReport push_flows(vfs::Vfs& vfs, const std::string& spec_text,
                      const std::string& net_root,
                      const vfs::Credentials& creds) {
  PushReport report;
  int line_no = 0;
  for (const auto& raw_line : split(spec_text, '\n')) {
    ++line_no;
    auto line = trim(raw_line);
    if (line.empty() || line.front() == '#') {
      ++report.lines_skipped;
      continue;
    }

    std::string sw, flow_name;
    std::vector<std::pair<std::string, std::string>> fields;
    bool bad = false;
    for (const auto& token : split_nonempty(line, ' ')) {
      auto eq = token.find('=');
      if (eq == std::string::npos) {
        report.errors.push_back("line " + std::to_string(line_no) +
                                ": malformed token '" + token + "'");
        bad = true;
        break;
      }
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      if (key == "switch")
        sw = value;
      else if (key == "flow")
        flow_name = value;
      else
        fields.emplace_back(std::move(key), std::move(value));
    }
    if (bad) continue;
    if (sw.empty() || flow_name.empty()) {
      report.errors.push_back("line " + std::to_string(line_no) +
                              ": needs switch= and flow=");
      continue;
    }

    std::string dir = net_root + "/switches/" + sw + "/flows/" + flow_name;
    if (auto st = vfs.stat(dir, creds); !st) {
      if (auto ec = vfs.mkdir(dir, 0755, creds); ec) {
        report.errors.push_back("line " + std::to_string(line_no) + ": " +
                                dir + ": " + ec.message());
        continue;
      }
    }
    bool wrote_all = true;
    for (const auto& [key, value] : fields) {
      if (auto ec = vfs.write_file(dir + "/" + key, value, creds); ec) {
        report.errors.push_back("line " + std::to_string(line_no) + ": " +
                                key + "=" + value + ": " + ec.message());
        wrote_all = false;
      }
    }
    if (!wrote_all) continue;
    if (auto v = netfs::commit_flow(vfs, dir, creds); !v) {
      report.errors.push_back("line " + std::to_string(line_no) +
                              ": commit: " + v.error().message());
      continue;
    }
    ++report.flows_written;
  }
  return report;
}

}  // namespace yanc::apps
