#include "yanc/apps/router.hpp"

#include "yanc/net/packet.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::apps {

using flow::Action;
using flow::FlowSpec;
using topo::PortRef;

RouterDaemon::RouterDaemon(std::shared_ptr<vfs::Vfs> vfs,
                           RouterOptions options)
    : vfs_(std::move(vfs)), options_(std::move(options)) {}

Result<std::size_t> RouterDaemon::poll() {
  if (!events_) {
    netfs::NetDir net(vfs_, options_.net_root);
    auto buf = net.open_events(options_.app_name);
    if (!buf) return buf.error();
    events_ = *buf;
  }
  auto pending = events_->drain();
  if (!pending) return pending.error();
  std::size_t handled = 0;
  for (const auto& pkt : *pending) {
    if (auto ec = handle_packet(pkt); !ec) ++handled;
  }
  return handled;
}

bool RouterDaemon::is_edge_port(const topo::Graph& graph,
                                const PortRef& ref) const {
  for (const auto& link : graph.links())
    if (link.a == ref || link.b == ref) return false;
  return true;
}

Status RouterDaemon::handle_packet(const netfs::PacketInInfo& pkt) {
  net::Frame frame(pkt.data.begin(), pkt.data.end());
  auto parsed = net::parse_frame(frame);
  if (!parsed) return parsed.error();
  if (parsed->dl_type == net::ethertype::lldp)
    return ok_status();  // the topology daemon's traffic, not ours

  auto graph = topo::read_topology(*vfs_, options_.net_root);
  if (!graph) return graph.error();

  PortRef origin{pkt.datapath, pkt.in_port};

  // Learn the source when it arrived on an edge port.
  if (is_edge_port(*graph, origin) && !parsed->dl_src.is_multicast()) {
    std::optional<Ipv4Address> ip;
    if (parsed->arp)
      ip = parsed->arp->sender_ip;
    else if (parsed->ipv4)
      ip = parsed->ipv4->src;
    if (auto ec = learn_host(parsed->dl_src, ip, origin); ec) return ec;
    // Refresh the graph so this packet can already use the new host.
    graph = topo::read_topology(*vfs_, options_.net_root);
    if (!graph) return graph.error();
  }

  // Broadcast/multicast (ARP requests etc.): flood to the edge.
  if (parsed->dl_dst.is_broadcast() || parsed->dl_dst.is_multicast()) {
    ++floods_;
    return flood_edges(*graph, origin, pkt.data);
  }

  const auto* dst = graph->find_host(parsed->dl_dst);
  if (!dst) {
    // Unknown unicast: flood and let the reply teach us.
    ++floods_;
    return flood_edges(*graph, origin, pkt.data);
  }
  const auto* src = graph->find_host(parsed->dl_src);
  if (!src) {
    // Source unlearnable (e.g. came in on an inter-switch port); just
    // deliver directly to the destination edge.
    return packet_out(dst->location.switch_name, dst->location.port_no,
                      pkt.data);
  }
  return install_path(*graph, *src, *dst, *parsed, pkt.data);
}

Status RouterDaemon::learn_host(const MacAddress& mac,
                                const std::optional<Ipv4Address>& ip,
                                const PortRef& where) {
  // Hosts are named by their MAC with ':' replaced (paths stay tidy).
  std::string name = mac.to_string();
  for (auto& c : name)
    if (c == ':') c = '-';
  std::string dir = options_.net_root + "/hosts/" + name;
  if (auto st = vfs_->stat(dir); !st) {
    if (auto ec = vfs_->mkdir(dir); ec) return ec;
    ++learned_;
  }
  if (auto ec = vfs_->write_file(dir + "/mac", mac.to_string()); ec)
    return ec;
  if (ip)
    if (auto ec = vfs_->write_file(dir + "/ip", ip->to_string()); ec)
      return ec;
  std::string target = where.path(options_.net_root);
  auto current = vfs_->readlink(dir + "/location");
  if (!current || *current != target) {
    (void)vfs_->unlink(dir + "/location");
    return vfs_->symlink(target, dir + "/location");
  }
  return ok_status();
}

Status RouterDaemon::install_path(const topo::Graph& graph,
                                  const topo::HostAttachment& src,
                                  const topo::HostAttachment& dst,
                                  const net::ParsedFrame& parsed,
                                  const std::string& data) {
  auto path = graph.host_path(src, dst);
  if (!path) return make_error_code(Errc::not_connected);

  // Exact-match on the L2 pair (§8: "sets up paths based on exact match").
  flow::Match match;
  match.dl_src = parsed.dl_src;
  match.dl_dst = parsed.dl_dst;

  std::uint16_t hop_in = src.location.port_no;
  for (std::size_t h = 0; h < path->size(); ++h) {
    FlowSpec spec;
    spec.match = match;
    spec.match.in_port = hop_in;
    spec.priority = options_.flow_priority;
    spec.idle_timeout = options_.flow_idle_timeout;
    spec.actions = {Action::output((*path)[h].port_no)};
    std::string flow_dir = options_.net_root + "/switches/" +
                           (*path)[h].switch_name + "/flows/route_" +
                           std::to_string(next_flow_++);
    if (auto ec = netfs::write_flow(*vfs_, flow_dir, spec); ec) return ec;

    if (h + 1 < path->size()) {
      // Ingress of the next hop = far end of this link.
      bool found = false;
      for (const auto& link : graph.links()) {
        if (link.a == (*path)[h]) {
          hop_in = link.b.port_no;
          found = true;
          break;
        }
        if (link.b == (*path)[h]) {
          hop_in = link.a.port_no;
          found = true;
          break;
        }
      }
      if (!found) return make_error_code(Errc::not_connected);
    }
  }
  ++paths_;

  // Deliver the triggering packet at the destination edge so the first
  // packet is not lost while flows propagate.
  return packet_out(dst.location.switch_name, dst.location.port_no, data);
}

Status RouterDaemon::flood_edges(const topo::Graph& graph,
                                 const PortRef& origin,
                                 const std::string& data) {
  netfs::NetDir net(vfs_, options_.net_root);
  auto switches = net.switch_names();
  if (!switches) return switches.error();
  for (const auto& sw_name : *switches) {
    auto ports = net.switch_at(sw_name).port_names();
    if (!ports) continue;
    for (const auto& port_name : *ports) {
      auto no = parse_u64(port_name);
      if (!no) continue;
      PortRef ref{sw_name, static_cast<std::uint16_t>(*no)};
      if (ref == origin || !is_edge_port(graph, ref)) continue;
      if (auto ec = packet_out(sw_name, ref.port_no, data); ec) return ec;
    }
  }
  return ok_status();
}

Status RouterDaemon::packet_out(const std::string& switch_name,
                                std::uint16_t port, const std::string& data) {
  std::string dir = options_.net_root + "/switches/" + switch_name +
                    "/packet_out/rt_" + std::to_string(next_out_++);
  if (auto ec = vfs_->mkdir(dir); ec) return ec;
  if (auto ec = vfs_->write_file(dir + "/out", std::to_string(port)); ec)
    return ec;
  if (!data.empty())
    if (auto ec = vfs_->write_file(dir + "/data", data); ec) return ec;
  return vfs_->write_file(dir + "/send", "1");
}

}  // namespace yanc::apps
