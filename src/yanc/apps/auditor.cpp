#include "yanc/apps/auditor.hpp"

#include <set>
#include <sstream>

#include "yanc/netfs/flowio.hpp"
#include "yanc/topo/graph.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::apps {

using vfs::Credentials;
using vfs::Vfs;

std::string AuditReport::to_text() const {
  std::ostringstream out;
  out << "yanc audit: " << switches << " switches, " << ports << " ports, "
      << flows << " flows (" << committed_flows << " committed), " << hosts
      << " hosts, " << links << " links\n";
  if (findings.empty()) {
    out << "OK: no findings\n";
    return out.str();
  }
  for (const auto& f : findings) {
    out << (f.severity == AuditFinding::Severity::error ? "ERROR" : "WARN")
        << ' ' << f.path << ": " << f.message << '\n';
  }
  return out.str();
}

Result<AuditReport> run_audit(Vfs& vfs, const std::string& net_root,
                              const Credentials& creds) {
  AuditReport report;
  auto fail = [&](AuditFinding::Severity sev, std::string path,
                  std::string message) {
    report.findings.push_back(
        AuditFinding{sev, std::move(path), std::move(message)});
  };

  auto switches = vfs.readdir(net_root + "/switches", creds);
  if (!switches) return switches.error();

  for (const auto& sw : *switches) {
    if (sw.type != vfs::FileType::directory) continue;
    ++report.switches;
    std::string sw_dir = net_root + "/switches/" + sw.name;

    // Identity sanity.
    bool connected = false;
    if (auto c = vfs.read_file(sw_dir + "/connected", creds))
      connected = trim(*c) == "1";
    std::uint64_t dpid = 0;
    if (auto id = vfs.read_file(sw_dir + "/id", creds))
      dpid = parse_hex_u64(trim(*id)).value_or(0);
    if (connected && dpid == 0)
      fail(AuditFinding::Severity::warning, sw_dir,
           "connected switch has datapath id 0");

    // Ports + peer symmetry.
    std::set<std::uint16_t> port_numbers;
    if (auto ports = vfs.readdir(sw_dir + "/ports", creds)) {
      for (const auto& port : *ports) {
        ++report.ports;
        auto no = parse_u64(port.name);
        if (no) port_numbers.insert(static_cast<std::uint16_t>(*no));
        std::string port_dir = sw_dir + "/ports/" + port.name;
        auto peer = vfs.readlink(port_dir + "/peer", creds);
        if (!peer) continue;
        ++report.links;
        auto peer_stat = vfs.stat(port_dir + "/peer", creds);
        if (!peer_stat) {
          fail(AuditFinding::Severity::error, port_dir,
               "peer symlink does not resolve: " + *peer);
          continue;
        }
        // Symmetry: the peer's peer should point back here.
        auto back = vfs.readlink(*peer + "/peer", creds);
        std::string self = port_dir;
        if (!back)
          fail(AuditFinding::Severity::warning, port_dir,
               "one-sided link (peer has no back-link)");
        else if (vfs::normalize_path(*back) != vfs::normalize_path(self))
          fail(AuditFinding::Severity::error, port_dir,
               "asymmetric link: peer points back to " + *back);
      }
    }

    // Flows.
    if (auto flows = vfs.readdir(sw_dir + "/flows", creds)) {
      for (const auto& f : *flows) {
        ++report.flows;
        std::string flow_dir = sw_dir + "/flows/" + f.name;
        auto spec = netfs::read_flow(vfs, flow_dir, creds);
        if (!spec) {
          fail(AuditFinding::Severity::error, flow_dir,
               "unparseable flow: " + spec.error().message());
          continue;
        }
        if (spec->version > 0) ++report.committed_flows;
        for (const auto& action : spec->actions) {
          if (action.kind != flow::ActionKind::output) continue;
          std::uint16_t port = action.port();
          if (port >= flow::port_no::max) continue;  // reserved ports
          if (!port_numbers.count(port))
            fail(AuditFinding::Severity::error, flow_dir,
                 "action outputs to nonexistent port " +
                     std::to_string(port));
        }
      }
    }
  }

  // Hosts.
  if (auto hosts = vfs.readdir(net_root + "/hosts", creds)) {
    for (const auto& h : *hosts) {
      if (h.type != vfs::FileType::directory) continue;
      ++report.hosts;
      std::string host_dir = net_root + "/hosts/" + h.name;
      if (auto loc = vfs.readlink(host_dir + "/location", creds)) {
        if (!vfs.stat(host_dir + "/location", creds))
          fail(AuditFinding::Severity::error, host_dir,
               "location does not resolve: " + *loc);
      }
    }
  }
  return report;
}

Result<AuditReport> run_audit_to_file(Vfs& vfs, const std::string& net_root,
                                      const std::string& report_path,
                                      const Credentials& creds) {
  auto report = run_audit(vfs, net_root, creds);
  if (!report) return report;
  auto slash = report_path.rfind('/');
  if (slash != std::string::npos && slash > 0)
    (void)vfs.mkdir_p(report_path.substr(0, slash), 0755, creds);
  if (auto ec = vfs.write_file(report_path, report->to_text(), creds); ec)
    return ec;
  return report;
}

}  // namespace yanc::apps
