// Per-switch MAC learning (the classic first SDN app): on a table miss,
// learn the source MAC's port; when the destination is known, install a
// forwarding flow and release the packet; otherwise flood.
// Demonstrates the paper's multi-application story: it coexists with the
// router/ARP daemons because each has its own private events/ buffer.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "yanc/netfs/handles.hpp"

namespace yanc::apps {

struct LearningSwitchOptions {
  std::string net_root = "/net";
  std::string app_name = "l2switch";
  std::uint16_t flow_idle_timeout = 60;
  std::uint16_t flow_priority = 50;
};

class LearningSwitch {
 public:
  LearningSwitch(std::shared_ptr<vfs::Vfs> vfs,
                 LearningSwitchOptions options = {});

  Result<std::size_t> poll();

  std::uint64_t flows_installed() const noexcept { return installed_; }
  std::uint64_t floods() const noexcept { return floods_; }
  /// Learned (switch -> mac -> port) table size.
  std::size_t table_size() const;

 private:
  Status flood(const std::string& datapath, std::uint16_t in_port,
               const std::string& data);
  Status packet_out(const std::string& datapath, std::uint16_t out_port,
                    const std::string& data);

  std::shared_ptr<vfs::Vfs> vfs_;
  LearningSwitchOptions options_;
  std::optional<netfs::EventBufferHandle> events_;
  std::map<std::string, std::map<std::uint64_t, std::uint16_t>> tables_;
  std::uint64_t next_out_ = 1;
  std::uint64_t next_flow_ = 1;
  std::uint64_t installed_ = 0;
  std::uint64_t floods_ = 0;
};

}  // namespace yanc::apps
