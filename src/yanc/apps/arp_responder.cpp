#include "yanc/apps/arp_responder.hpp"

#include "yanc/net/packet.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::apps {

ArpResponder::ArpResponder(std::shared_ptr<vfs::Vfs> vfs,
                           ArpResponderOptions options)
    : vfs_(std::move(vfs)), options_(std::move(options)) {}

Result<std::size_t> ArpResponder::poll() {
  if (!events_) {
    netfs::NetDir net(vfs_, options_.net_root);
    auto buf = net.open_events(options_.app_name);
    if (!buf) return buf.error();
    events_ = *buf;
  }
  auto pending = events_->drain();
  if (!pending) return pending.error();

  // The registry is hosts/ itself: every host with a mac and ip file is
  // answerable, attached or not (unlike the topology graph, which only
  // tracks located hosts).
  std::map<std::uint32_t, MacAddress> registry;
  if (auto hosts = vfs_->readdir(options_.net_root + "/hosts")) {
    for (const auto& h : *hosts) {
      if (h.type != vfs::FileType::directory) continue;
      std::string dir = options_.net_root + "/hosts/" + h.name;
      auto mac_text = vfs_->read_file(dir + "/mac");
      auto ip_text = vfs_->read_file(dir + "/ip");
      if (!mac_text || !ip_text) continue;
      auto mac = MacAddress::parse(trim(*mac_text));
      auto ip = Ipv4Address::parse(trim(*ip_text));
      if (mac && ip) registry[ip->value()] = *mac;
    }
  }

  std::size_t handled = 0;
  for (const auto& pkt : *pending) {
    net::Frame frame(pkt.data.begin(), pkt.data.end());
    auto parsed = net::parse_frame(frame);
    if (!parsed || !parsed->arp ||
        parsed->arp->op != net::arp_op::request)
      continue;
    auto target = registry.find(parsed->arp->target_ip.value());
    if (target == registry.end()) continue;

    auto reply = net::build_arp(net::arp_op::reply, target->second,
                                parsed->arp->target_ip,
                                parsed->arp->sender_mac,
                                parsed->arp->sender_ip);
    // Answer out of the port the request came in on.
    std::string dir = options_.net_root + "/switches/" + pkt.datapath +
                      "/packet_out/arp_" + std::to_string(next_out_++);
    if (vfs_->mkdir(dir)) continue;
    (void)vfs_->write_file(dir + "/out", std::to_string(pkt.in_port));
    (void)vfs_->write_file(
        dir + "/data",
        std::string_view(reinterpret_cast<const char*>(reply.data()),
                         reply.size()));
    (void)vfs_->write_file(dir + "/send", "1");
    ++replies_;
    ++handled;
  }
  return handled;
}

}  // namespace yanc::apps
