#include "yanc/apps/dhcp_server.hpp"

#include "yanc/util/bytes.hpp"

namespace yanc::apps {

namespace {
constexpr std::uint32_t kDhcpMagic = 0x63825363;
}

std::vector<std::uint8_t> encode_dhcp(const DhcpMessage& m) {
  BufWriter w;
  w.u8(m.op);
  w.u8(1);  // htype ethernet
  w.u8(6);  // hlen
  w.u8(0);  // hops
  w.u32(m.xid);
  w.u16(0);  // secs
  w.u16(0x8000);  // flags: broadcast
  w.u32(0);  // ciaddr
  w.u32(m.yiaddr.value());
  w.u32(0);  // siaddr
  w.u32(0);  // giaddr
  w.bytes(m.chaddr.bytes());
  w.zeros(10);   // chaddr pad
  w.zeros(64);   // sname
  w.zeros(128);  // file
  w.u32(kDhcpMagic);
  // option 53: message type
  w.u8(53);
  w.u8(1);
  w.u8(m.msg_type);
  if (m.requested_ip) {
    w.u8(50);
    w.u8(4);
    w.u32(m.requested_ip->value());
  }
  w.u8(255);  // end
  return w.take();
}

Result<DhcpMessage> decode_dhcp(std::span<const std::uint8_t> payload) {
  BufReader r(payload);
  DhcpMessage m;
  m.op = r.u8();
  r.skip(3);
  m.xid = r.u32();
  r.skip(4);         // secs+flags
  r.skip(4);         // ciaddr
  m.yiaddr = Ipv4Address(r.u32());
  r.skip(8);         // siaddr+giaddr
  std::array<std::uint8_t, 6> mac{};
  r.bytes(mac);
  m.chaddr = MacAddress(mac);
  r.skip(10 + 64 + 128);
  if (r.u32() != kDhcpMagic) return Errc::protocol_error;
  while (r.ok() && r.remaining() >= 1) {
    std::uint8_t option = r.u8();
    if (option == 255) break;
    if (option == 0) continue;  // pad
    std::uint8_t len = r.u8();
    BufReader value = r.sub(len);
    if (!r.ok()) return Errc::protocol_error;
    if (option == 53)
      m.msg_type = value.u8();
    else if (option == 50)
      m.requested_ip = Ipv4Address(value.u32());
  }
  if (!r.ok()) return Errc::protocol_error;
  return m;
}

DhcpServer::DhcpServer(std::shared_ptr<vfs::Vfs> vfs,
                       DhcpServerOptions options)
    : vfs_(std::move(vfs)), options_(std::move(options)) {}

Result<Ipv4Address> DhcpServer::lease_for(const MacAddress& mac) {
  auto existing = leases_.find(mac.to_u64());
  if (existing != leases_.end()) return existing->second;
  if (next_offset_ >= options_.pool_size) return Errc::no_space;
  Ipv4Address addr(options_.pool_start.value() + next_offset_++);
  leases_[mac.to_u64()] = addr;
  return addr;
}

Result<std::size_t> DhcpServer::poll() {
  if (!events_) {
    netfs::NetDir net(vfs_, options_.net_root);
    auto buf = net.open_events(options_.app_name);
    if (!buf) return buf.error();
    events_ = *buf;
  }
  auto pending = events_->drain();
  if (!pending) return pending.error();
  std::size_t handled = 0;

  for (const auto& pkt : *pending) {
    net::Frame frame(pkt.data.begin(), pkt.data.end());
    auto parsed = net::parse_frame(frame);
    if (!parsed || !parsed->l4 || !parsed->ipv4 ||
        parsed->ipv4->proto != net::ipproto::udp ||
        parsed->l4->dst_port != 67)
      continue;
    auto request = decode_dhcp(parsed->l4_payload);
    if (!request || request->op != 1) continue;

    if (request->msg_type == dhcp_type::discover) {
      auto addr = lease_for(request->chaddr);
      if (!addr) continue;
      if (!reply(pkt, *request, dhcp_type::offer, *addr)) {
        ++offers_;
        ++handled;
      }
    } else if (request->msg_type == dhcp_type::request) {
      auto addr = lease_for(request->chaddr);
      if (!addr) continue;
      bool honored =
          !request->requested_ip || *request->requested_ip == *addr;
      if (!reply(pkt, *request, honored ? dhcp_type::ack : dhcp_type::nak,
                 *addr) &&
          honored) {
        ++acks_;
        ++handled;
        (void)record_host(request->chaddr, *addr);
      }
    }
  }
  return handled;
}

Status DhcpServer::reply(const netfs::PacketInInfo& pkt,
                         const DhcpMessage& request, std::uint8_t type,
                         Ipv4Address addr) {
  DhcpMessage response;
  response.op = 2;
  response.xid = request.xid;
  response.chaddr = request.chaddr;
  response.yiaddr = addr;
  response.msg_type = type;
  auto payload = encode_dhcp(response);
  auto frame = net::build_udp(request.chaddr, options_.server_mac,
                              options_.server_ip, addr, 67, 68, payload);

  std::string dir = options_.net_root + "/switches/" + pkt.datapath +
                    "/packet_out/dhcp_" + std::to_string(next_out_++);
  if (auto ec = vfs_->mkdir(dir); ec) return ec;
  (void)vfs_->write_file(dir + "/out", std::to_string(pkt.in_port));
  (void)vfs_->write_file(
      dir + "/data",
      std::string_view(reinterpret_cast<const char*>(frame.data()),
                       frame.size()));
  return vfs_->write_file(dir + "/send", "1");
}

Status DhcpServer::record_host(const MacAddress& mac, Ipv4Address ip) {
  std::string name = "lease-" + std::to_string(ip.value() & 0xff);
  netfs::NetDir net(vfs_, options_.net_root);
  auto ec = net.add_host(name, mac, ip);
  if (ec == make_error_code(Errc::exists)) {
    std::string dir = options_.net_root + "/hosts/" + name;
    (void)vfs_->write_file(dir + "/mac", mac.to_string());
    return vfs_->write_file(dir + "/ip", ip.to_string());
  }
  return ec;
}

}  // namespace yanc::apps
