// The auditor (§2: "an auditor might run periodically via a cron job").
//
// A run-occasionally program, not a daemon: each run() scans the whole
// /net tree, checks cross-object invariants, and writes a plain-text
// report — the kind of job the paper argues should NOT have to live
// inside a monolithic controller.
#pragma once

#include <string>
#include <vector>

#include "yanc/vfs/vfs.hpp"

namespace yanc::apps {

struct AuditFinding {
  enum class Severity { warning, error };
  Severity severity = Severity::warning;
  std::string path;     // object the finding refers to
  std::string message;
};

struct AuditReport {
  std::size_t switches = 0;
  std::size_t ports = 0;
  std::size_t flows = 0;
  std::size_t committed_flows = 0;
  std::size_t hosts = 0;
  std::size_t links = 0;
  std::vector<AuditFinding> findings;

  bool clean() const noexcept { return findings.empty(); }
  std::string to_text() const;
};

/// Runs the audit.  Invariants checked:
///   * flow action.out ports exist on their switch,
///   * committed flows parse into a valid FlowSpec,
///   * peer symlinks resolve to ports and are symmetric,
///   * host location links resolve,
///   * connected switches have a nonzero datapath id.
Result<AuditReport> run_audit(vfs::Vfs& vfs,
                              const std::string& net_root = "/net",
                              const vfs::Credentials& creds = {});

/// Runs the audit and writes the report to `<net_root>-audit.txt`-style
/// path (default "/var/log/yanc-audit.txt"), creating directories.
Result<AuditReport> run_audit_to_file(
    vfs::Vfs& vfs, const std::string& net_root = "/net",
    const std::string& report_path = "/var/log/yanc-audit.txt",
    const vfs::Credentials& creds = {});

}  // namespace yanc::apps
