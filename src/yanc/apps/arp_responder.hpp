// Proxy-ARP daemon (§2 names ARP as a canonical per-protocol application).
// Answers ARP requests from the hosts/ registry via packet_out, so known
// hosts resolve each other without network-wide broadcast.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "yanc/netfs/handles.hpp"

namespace yanc::apps {

struct ArpResponderOptions {
  std::string net_root = "/net";
  std::string app_name = "arp";
};

class ArpResponder {
 public:
  ArpResponder(std::shared_ptr<vfs::Vfs> vfs,
               ArpResponderOptions options = {});

  /// Consumes pending packet-ins; answers ARP requests it can resolve.
  Result<std::size_t> poll();

  std::uint64_t replies_sent() const noexcept { return replies_; }

 private:
  std::shared_ptr<vfs::Vfs> vfs_;
  ArpResponderOptions options_;
  std::optional<netfs::EventBufferHandle> events_;
  std::uint64_t next_out_ = 1;
  std::uint64_t replies_ = 0;
};

}  // namespace yanc::apps
