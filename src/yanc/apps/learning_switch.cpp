#include "yanc/apps/learning_switch.hpp"

#include "yanc/net/packet.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/obs/tracer.hpp"

namespace yanc::apps {

using flow::Action;
using flow::FlowSpec;

LearningSwitch::LearningSwitch(std::shared_ptr<vfs::Vfs> vfs,
                               LearningSwitchOptions options)
    : vfs_(std::move(vfs)), options_(std::move(options)) {}

std::size_t LearningSwitch::table_size() const {
  std::size_t n = 0;
  for (const auto& [sw, table] : tables_) n += table.size();
  return n;
}

Result<std::size_t> LearningSwitch::poll() {
  if (!events_) {
    netfs::NetDir net(vfs_, options_.net_root);
    auto buf = net.open_events(options_.app_name);
    if (!buf) return buf.error();
    events_ = *buf;
  }
  auto pending = events_->drain();
  if (!pending) return pending.error();
  std::size_t handled = 0;

  for (const auto& pkt : *pending) {
    // One span per packet, parented to the driver's handoff; the buffer
    // wait rides as queue_ns and the scope makes every FS write below
    // (flow install, packet-out) inherit this packet's trace.
    obs::Span trace_span(pkt.trace, "app", "packet_in", pkt.trace_queue_ns);
    obs::TraceScope trace_scope(trace_span.ref());
    net::Frame frame(pkt.data.begin(), pkt.data.end());
    auto parsed = net::parse_frame(frame);
    if (!parsed) continue;
    if (parsed->dl_type == net::ethertype::lldp) continue;
    auto& table = tables_[pkt.datapath];
    if (!parsed->dl_src.is_multicast())
      table[parsed->dl_src.to_u64()] = pkt.in_port;

    if (parsed->dl_dst.is_broadcast() || parsed->dl_dst.is_multicast()) {
      (void)flood(pkt.datapath, pkt.in_port, pkt.data);
      ++handled;
      continue;
    }
    auto known = table.find(parsed->dl_dst.to_u64());
    if (known == table.end()) {
      (void)flood(pkt.datapath, pkt.in_port, pkt.data);
      ++handled;
      continue;
    }

    FlowSpec spec;
    spec.match.dl_dst = parsed->dl_dst;
    spec.priority = options_.flow_priority;
    spec.idle_timeout = options_.flow_idle_timeout;
    spec.actions = {Action::output(known->second)};
    std::string flow_dir = options_.net_root + "/switches/" + pkt.datapath +
                           "/flows/l2_" + std::to_string(next_flow_++);
    if (!netfs::write_flow(*vfs_, flow_dir, spec)) ++installed_;
    (void)packet_out(pkt.datapath, known->second, pkt.data);
    ++handled;
  }
  return handled;
}

Status LearningSwitch::flood(const std::string& datapath,
                             std::uint16_t in_port, const std::string& data) {
  ++floods_;
  (void)in_port;  // the switch's flood action already excludes the ingress
  std::string dir = options_.net_root + "/switches/" + datapath +
                    "/packet_out/l2_" + std::to_string(next_out_++);
  if (auto ec = vfs_->mkdir(dir); ec) return ec;
  (void)vfs_->write_file(dir + "/in_port", std::to_string(in_port));
  (void)vfs_->write_file(dir + "/out", "flood");
  (void)vfs_->write_file(dir + "/data", data);
  return vfs_->write_file(dir + "/send", "1");
}

Status LearningSwitch::packet_out(const std::string& datapath,
                                  std::uint16_t out_port,
                                  const std::string& data) {
  std::string dir = options_.net_root + "/switches/" + datapath +
                    "/packet_out/l2_" + std::to_string(next_out_++);
  if (auto ec = vfs_->mkdir(dir); ec) return ec;
  (void)vfs_->write_file(dir + "/out", std::to_string(out_port));
  (void)vfs_->write_file(dir + "/data", data);
  return vfs_->write_file(dir + "/send", "1");
}

}  // namespace yanc::apps
