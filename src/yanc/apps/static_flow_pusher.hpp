// The static flow pusher (§8): 'A simple "static flow pusher" shell
// script can be used to write flows to switches.'
//
// This is that script as a library: a line-oriented text format in which
// each line describes one flow, compiled into file writes against the
// yanc FS.  The format mirrors the file names, so a line reads like the
// directory it creates:
//
//   # arp goes everywhere
//   switch=sw1 flow=arp match.dl_type=0x0806 action.out=flood priority=5
//   switch=sw1 flow=ssh-drop match.tp_dst=22 action.drop=1
#pragma once

#include <string>

#include "yanc/vfs/vfs.hpp"

namespace yanc::apps {

struct PushReport {
  std::size_t flows_written = 0;
  std::size_t lines_skipped = 0;  // blank/comment lines
  std::vector<std::string> errors;  // "line N: message"
};

/// Applies the spec text; flows are committed as they complete.
/// Lines with errors are reported but do not abort the rest (like a shell
/// script without -e).
PushReport push_flows(vfs::Vfs& vfs, const std::string& spec_text,
                      const std::string& net_root = "/net",
                      const vfs::Credentials& creds = {});

}  // namespace yanc::apps
