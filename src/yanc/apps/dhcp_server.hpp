// DHCP daemon (§2: "there should be a distinct application for each
// protocol the network needs to support such as DHCP, ARP, and LLDP").
//
// Minimal DHCPv4 over the packet-in/packet-out file interface:
// DISCOVER -> OFFER, REQUEST -> ACK, addresses from a configured pool.
// Granted leases are recorded as host objects (mac, ip) in hosts/, so the
// rest of the control plane (router, ARP responder, auditor) immediately
// knows every leased endpoint — applications composing through the FS.
#pragma once

#include <map>
#include <span>
#include <memory>
#include <optional>
#include <string>

#include "yanc/net/packet.hpp"
#include "yanc/netfs/handles.hpp"

namespace yanc::apps {

/// Minimal DHCP message (the fields this daemon uses).
struct DhcpMessage {
  std::uint8_t op = 1;  // 1=request, 2=reply
  std::uint32_t xid = 0;
  MacAddress chaddr;
  Ipv4Address yiaddr;       // your address (in replies)
  std::uint8_t msg_type = 0;  // option 53
  std::optional<Ipv4Address> requested_ip;  // option 50
};

namespace dhcp_type {
inline constexpr std::uint8_t discover = 1;
inline constexpr std::uint8_t offer = 2;
inline constexpr std::uint8_t request = 3;
inline constexpr std::uint8_t ack = 5;
inline constexpr std::uint8_t nak = 6;
}  // namespace dhcp_type

/// Builds the UDP payload of a DHCP message.
std::vector<std::uint8_t> encode_dhcp(const DhcpMessage& message);
Result<DhcpMessage> decode_dhcp(std::span<const std::uint8_t> payload);

struct DhcpServerOptions {
  std::string net_root = "/net";
  std::string app_name = "dhcp";
  Ipv4Address server_ip{0x0a000001};           // 10.0.0.1
  MacAddress server_mac = MacAddress::from_u64(0x02000000dc01ull);
  Ipv4Address pool_start{0x0a000064};          // 10.0.0.100
  std::uint32_t pool_size = 100;
};

class DhcpServer {
 public:
  DhcpServer(std::shared_ptr<vfs::Vfs> vfs, DhcpServerOptions options = {});

  Result<std::size_t> poll();

  std::uint64_t offers_sent() const noexcept { return offers_; }
  std::uint64_t acks_sent() const noexcept { return acks_; }
  const std::map<std::uint64_t, Ipv4Address>& leases() const noexcept {
    return leases_;
  }

 private:
  Result<Ipv4Address> lease_for(const MacAddress& mac);
  Status reply(const netfs::PacketInInfo& pkt, const DhcpMessage& request,
               std::uint8_t type, Ipv4Address addr);
  Status record_host(const MacAddress& mac, Ipv4Address ip);

  std::shared_ptr<vfs::Vfs> vfs_;
  DhcpServerOptions options_;
  std::optional<netfs::EventBufferHandle> events_;
  std::map<std::uint64_t, Ipv4Address> leases_;  // mac -> ip
  std::uint32_t next_offset_ = 0;
  std::uint64_t next_out_ = 1;
  std::uint64_t offers_ = 0;
  std::uint64_t acks_ = 0;
};

}  // namespace yanc::apps
