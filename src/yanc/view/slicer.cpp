#include "yanc/view/slicer.hpp"

#include "yanc/net/packet.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::view {

using flow::Action;
using flow::ActionKind;
using flow::FlowSpec;

Slicer::Slicer(std::shared_ptr<vfs::Vfs> vfs, std::string parent_root,
               SliceConfig config)
    : vfs_(std::move(vfs)), parent_root_(vfs::normalize_path(parent_root)),
      view_root_(parent_root_ + "/views/" + config.name),
      config_(std::move(config)) {}

bool Slicer::switch_in_slice(const std::string& name) const {
  if (config_.switches.empty()) return true;
  for (const auto& s : config_.switches)
    if (s == name) return true;
  return false;
}

bool Slicer::port_in_slice(const std::string& sw, std::uint16_t port) const {
  auto it = config_.ports.find(sw);
  if (it == config_.ports.end()) return true;
  return it->second.count(port) != 0;
}

Status Slicer::init() {
  if (auto ec = vfs_->mkdir(view_root_);
      ec && ec != make_error_code(Errc::exists))
    return ec;

  // Mirror sliced switches and their (sliced) ports into the view.
  netfs::NetDir parent(vfs_, parent_root_);
  netfs::NetDir child(vfs_, view_root_);
  auto switches = parent.switch_names();
  if (!switches) return switches.error();
  for (const auto& sw_name : *switches) {
    if (!switch_in_slice(sw_name)) continue;
    auto ec = child.add_switch(sw_name);
    if (ec && ec != make_error_code(Errc::exists)) return ec;
    auto src = parent.switch_at(sw_name);
    auto dst = child.switch_at(sw_name);
    // Identity is copied so `ls -l` in the view is meaningful.
    if (auto id = src.datapath_id()) (void)dst.set_datapath_id(*id);
    if (auto v = src.protocol_version())
      (void)dst.set_protocol_version(*v);
    if (auto c = src.connected()) (void)dst.set_connected(*c);
    auto ports = src.port_names();
    if (!ports) continue;
    for (const auto& port_name : *ports) {
      auto no = parse_u64(port_name);
      if (!no || !port_in_slice(sw_name, static_cast<std::uint16_t>(*no)))
        continue;
      auto hw = src.port_at(port_name).hw_addr();
      (void)dst.add_port(static_cast<std::uint16_t>(*no),
                         hw ? *hw : MacAddress{}, "sliced");
    }
  }

  auto events = parent.open_events("slicer-" + config_.name);
  if (!events) return events.error();
  parent_events_ = *events;
  return ok_status();
}

std::optional<FlowSpec> Slicer::translate(const std::string& sw,
                                          const FlowSpec& spec) const {
  auto confined = spec.match.intersect(config_.predicate);
  if (!confined) return std::nullopt;  // disjoint from the slice
  FlowSpec out = spec;
  out.match = *confined;
  // Outputs are confined to the slice's ports; flood becomes an explicit
  // list of the slice's ports on this switch.
  std::vector<Action> actions;
  for (const auto& a : spec.actions) {
    if (a.kind != ActionKind::output) {
      actions.push_back(a);
      continue;
    }
    std::uint16_t port = a.port();
    if (port == flow::port_no::flood || port == flow::port_no::all) {
      auto it = config_.ports.find(sw);
      if (it == config_.ports.end()) {
        actions.push_back(a);  // whole switch is in the slice
      } else {
        for (std::uint16_t p : it->second)
          actions.push_back(Action::output(p));
      }
      continue;
    }
    if (port >= flow::port_no::max || port_in_slice(sw, port))
      actions.push_back(a);
    // Outputs to out-of-slice ports are silently dropped from the list.
  }
  out.actions = std::move(actions);
  return out;
}

std::string Slicer::parent_flow_name(const std::string& sw,
                                     const std::string& name) const {
  (void)sw;
  return "view_" + config_.name + "__" + name;
}

Result<std::size_t> Slicer::poll() {
  std::size_t work = sync_flows();
  work += forward_events();
  return work;
}

std::size_t Slicer::sync_flows() {
  std::size_t work = 0;
  netfs::NetDir child(vfs_, view_root_);
  auto switches = child.switch_names();
  if (!switches) return 0;

  std::set<std::pair<std::string, std::string>> present;
  for (const auto& sw_name : *switches) {
    auto sw = child.switch_at(sw_name);
    auto flows = sw.flow_names();
    if (!flows) continue;
    for (const auto& flow_name : *flows) {
      present.insert({sw_name, flow_name});
      auto spec = sw.flow_at(flow_name).read();
      if (!spec) continue;
      if (spec->version == 0) continue;  // not committed
      auto& pushed_version = pushed_[{sw_name, flow_name}];
      if (spec->version <= pushed_version) continue;

      auto translated = translate(sw_name, *spec);
      std::string parent_flow = parent_root_ + "/switches/" + sw_name +
                                "/flows/" +
                                parent_flow_name(sw_name, flow_name);
      if (!translated) {
        ++rejected_;
        pushed_version = spec->version;
        // A previously-translated version may exist: retract it.
        (void)vfs_->rmdir(parent_flow);
        continue;
      }
      if (!netfs::write_flow(*vfs_, parent_flow, *translated)) ++work;
      pushed_version = spec->version;
    }
  }

  // View flows that disappeared retract their parent counterpart.
  for (auto it = pushed_.begin(); it != pushed_.end();) {
    if (present.count(it->first)) {
      ++it;
      continue;
    }
    const auto& [sw_name, flow_name] = it->first;
    (void)vfs_->rmdir(parent_root_ + "/switches/" + sw_name + "/flows/" +
                      parent_flow_name(sw_name, flow_name));
    it = pushed_.erase(it);
    ++work;
  }
  return work;
}

std::size_t Slicer::forward_events() {
  if (!parent_events_) return 0;
  auto pending = parent_events_->drain();
  if (!pending) return 0;
  std::size_t forwarded = 0;

  auto view_apps = vfs_->readdir(view_root_ + "/events");
  if (!view_apps) return 0;

  for (const auto& pkt : *pending) {
    if (!switch_in_slice(pkt.datapath) ||
        !port_in_slice(pkt.datapath, pkt.in_port))
      continue;
    // Only packets inside the slice's header space are visible.
    net::Frame frame(pkt.data.begin(), pkt.data.end());
    auto parsed = net::parse_frame(frame);
    if (!parsed) continue;
    if (!config_.predicate.matches(parsed->fields(pkt.in_port))) continue;

    for (const auto& app : *view_apps) {
      if (app.type != vfs::FileType::directory) continue;
      std::string dir =
          view_root_ + "/events/" + app.name + "/" + pkt.name;
      if (vfs_->mkdir(dir)) continue;
      (void)vfs_->write_file(dir + "/datapath", pkt.datapath);
      (void)vfs_->write_file(dir + "/in_port",
                             std::to_string(pkt.in_port));
      (void)vfs_->write_file(dir + "/reason", pkt.reason);
      (void)vfs_->write_file(dir + "/buffer_id",
                             std::to_string(pkt.buffer_id));
      (void)vfs_->write_file(dir + "/data", pkt.data);
      ++forwarded;
    }
  }
  return forwarded;
}

}  // namespace yanc::view
