// The slicer (§4.2): materializes a *network view* that is a slice of its
// parent — a subset of switches/ports confined to a header-space predicate
// (e.g. "tp_dst=22 traffic on sw1 and sw2").
//
// Per the paper, a view application "interacts with two portions of the
// file system simultaneously, providing a translation between them":
//   parent -> view : switch and port directories are mirrored; packet-ins
//                    that match the slice are re-delivered into the view's
//                    events/ buffers.
//   view -> parent : flows committed in the view are intersected with the
//                    slice predicate (so a tenant can never program traffic
//                    outside its slice), outputs are confined to the
//                    slice's ports, and the result is committed on the
//                    parent switch.
// Views stack arbitrarily: the parent root can itself be a view.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "yanc/flow/flowspec.hpp"
#include "yanc/netfs/handles.hpp"

namespace yanc::view {

struct SliceConfig {
  std::string name;
  /// Header-space predicate; flows in the view are intersected with it.
  flow::Match predicate;
  /// Switches included in the slice; empty = every parent switch.
  std::vector<std::string> switches;
  /// Per-switch port subsets; a switch absent from the map exposes all
  /// its ports.
  std::map<std::string, std::set<std::uint16_t>> ports;
};

class Slicer {
 public:
  Slicer(std::shared_ptr<vfs::Vfs> vfs, std::string parent_root,
         SliceConfig config);

  /// Creates the view directory and mirrors the sliced switches/ports.
  Status init();

  /// One duty cycle: push committed view flows to the parent, remove
  /// deleted ones, and re-deliver slice-matching packet-ins into the
  /// view's event buffers.  Returns units of work done.
  Result<std::size_t> poll();

  const std::string& view_root() const noexcept { return view_root_; }
  const SliceConfig& config() const noexcept { return config_; }

  /// Flows rejected because they did not intersect the slice.
  std::uint64_t rejected_flows() const noexcept { return rejected_; }

 private:
  bool switch_in_slice(const std::string& name) const;
  bool port_in_slice(const std::string& sw, std::uint16_t port) const;
  /// view spec -> parent spec; nullopt when outside the slice.
  std::optional<flow::FlowSpec> translate(const std::string& sw,
                                          const flow::FlowSpec& spec) const;
  std::string parent_flow_name(const std::string& sw,
                               const std::string& flow) const;
  std::size_t sync_flows();
  std::size_t forward_events();

  std::shared_ptr<vfs::Vfs> vfs_;
  std::string parent_root_;
  std::string view_root_;
  SliceConfig config_;
  std::optional<netfs::EventBufferHandle> parent_events_;
  // (switch, view flow name) -> version last pushed to the parent.
  std::map<std::pair<std::string, std::string>, std::uint64_t> pushed_;
  std::uint64_t rejected_ = 0;
};

}  // namespace yanc::view
