// The big-switch virtualizer (§4.2): "network virtualization ... provides
// any arbitrary transformation, such as combining multiple switches and
// forming a new topology" — here the classic one-big-switch abstraction.
//
// The view contains a single virtual switch whose ports are chosen edge
// ports of the (physical or parent-view) network.  A flow committed on the
// virtual switch is compiled into per-hop flows along shortest paths in
// the parent topology; packet-ins arriving on edge ports surface in the
// view with the *virtual* ingress port.  Stacks on top of slices and vice
// versa, because both sides are just file trees.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "yanc/netfs/handles.hpp"
#include "yanc/topo/graph.hpp"

namespace yanc::view {

struct BigSwitchConfig {
  std::string view_name;
  std::string switch_name = "big0";
  /// Virtual port i+1 maps to edge_ports[i] in the parent network.
  std::vector<topo::PortRef> edge_ports;
};

class BigSwitch {
 public:
  BigSwitch(std::shared_ptr<vfs::Vfs> vfs, std::string parent_root,
            BigSwitchConfig config);

  /// Creates the view and the virtual switch directory.
  Status init();

  /// One duty cycle: compile committed virtual flows onto parent paths,
  /// retract removed ones, lift matching packet-ins into the view.
  Result<std::size_t> poll();

  const std::string& view_root() const noexcept { return view_root_; }
  std::string virtual_switch_path() const {
    return view_root_ + "/switches/" + config_.switch_name;
  }

  /// Virtual port number for an edge port (0 when not mapped).
  std::uint16_t virtual_port(const topo::PortRef& edge) const;

  std::uint64_t compiled_flows() const noexcept { return compiled_; }
  std::uint64_t rejected_flows() const noexcept { return rejected_; }

 private:
  std::size_t sync_flows();
  std::size_t forward_events();
  /// Installs the parent flows realizing `spec` (ingress -> egress pairs).
  Status compile_flow(const std::string& flow_name,
                      const flow::FlowSpec& spec);
  void retract_flow(const std::string& flow_name);

  std::shared_ptr<vfs::Vfs> vfs_;
  std::string parent_root_;
  std::string view_root_;
  BigSwitchConfig config_;
  std::optional<netfs::EventBufferHandle> parent_events_;
  std::map<std::string, std::uint64_t> pushed_;  // flow -> version
  // flow -> parent flow paths installed for it
  std::map<std::string, std::vector<std::string>> installed_;
  std::uint64_t compiled_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace yanc::view
