#include "yanc/view/bigswitch.hpp"

#include <set>

#include "yanc/net/packet.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::view {

using flow::Action;
using flow::ActionKind;
using flow::FlowSpec;

BigSwitch::BigSwitch(std::shared_ptr<vfs::Vfs> vfs, std::string parent_root,
                     BigSwitchConfig config)
    : vfs_(std::move(vfs)), parent_root_(vfs::normalize_path(parent_root)),
      view_root_(parent_root_ + "/views/" + config.view_name),
      config_(std::move(config)) {}

std::uint16_t BigSwitch::virtual_port(const topo::PortRef& edge) const {
  for (std::size_t i = 0; i < config_.edge_ports.size(); ++i)
    if (config_.edge_ports[i] == edge)
      return static_cast<std::uint16_t>(i + 1);
  return 0;
}

Status BigSwitch::init() {
  if (auto ec = vfs_->mkdir(view_root_);
      ec && ec != make_error_code(Errc::exists))
    return ec;
  netfs::NetDir child(vfs_, view_root_);
  if (auto ec = child.add_switch(config_.switch_name);
      ec && ec != make_error_code(Errc::exists))
    return ec;
  auto vsw = child.switch_at(config_.switch_name);
  (void)vsw.set_connected(true);
  (void)vsw.set_protocol_version("virtual");
  for (std::size_t i = 0; i < config_.edge_ports.size(); ++i) {
    std::uint16_t vport = static_cast<std::uint16_t>(i + 1);
    auto ec = vsw.add_port(vport, MacAddress::from_u64(0x020000bb0000ull | vport),
                           config_.edge_ports[i].switch_name + ":" +
                               std::to_string(config_.edge_ports[i].port_no));
    if (ec && ec != make_error_code(Errc::exists)) return ec;
  }
  netfs::NetDir parent(vfs_, parent_root_);
  auto events = parent.open_events("bigswitch-" + config_.view_name);
  if (!events) return events.error();
  parent_events_ = *events;
  return ok_status();
}

Result<std::size_t> BigSwitch::poll() {
  std::size_t work = sync_flows();
  work += forward_events();
  return work;
}

std::size_t BigSwitch::sync_flows() {
  std::size_t work = 0;
  netfs::NetDir child(vfs_, view_root_);
  auto vsw = child.switch_at(config_.switch_name);
  auto flows = vsw.flow_names();
  if (!flows) return 0;

  std::set<std::string> present(flows->begin(), flows->end());
  for (const auto& flow_name : *flows) {
    auto spec = vsw.flow_at(flow_name).read();
    if (!spec || spec->version == 0) continue;
    auto& version = pushed_[flow_name];
    if (spec->version <= version) continue;
    retract_flow(flow_name);  // recompile from scratch on change
    if (compile_flow(flow_name, *spec)) {
      ++rejected_;
    } else {
      ++compiled_;
      ++work;
    }
    version = spec->version;
  }
  for (auto it = pushed_.begin(); it != pushed_.end();) {
    if (present.count(it->first)) {
      ++it;
    } else {
      retract_flow(it->first);
      it = pushed_.erase(it);
      ++work;
    }
  }
  return work;
}

Status BigSwitch::compile_flow(const std::string& flow_name,
                               const FlowSpec& spec) {
  // Supported shape: optional virtual in_port, one or more virtual output
  // ports (other actions are carried along and applied at the egress hop).
  std::vector<std::uint16_t> out_vports;
  std::vector<Action> rewrites;
  for (const auto& a : spec.actions) {
    if (a.kind == ActionKind::output) {
      std::uint16_t p = a.port();
      if (p >= flow::port_no::max)
        return make_error_code(Errc::not_supported);  // no flood on big sw
      if (p == 0 || p > config_.edge_ports.size())
        return make_error_code(Errc::invalid_argument);
      out_vports.push_back(p);
    } else {
      rewrites.push_back(a);
    }
  }
  if (out_vports.empty() && !spec.actions.empty())
    return make_error_code(Errc::not_supported);

  std::vector<std::uint16_t> in_vports;
  if (spec.match.in_port) {
    if (*spec.match.in_port == 0 ||
        *spec.match.in_port > config_.edge_ports.size())
      return make_error_code(Errc::invalid_argument);
    in_vports.push_back(*spec.match.in_port);
  } else {
    for (std::size_t i = 0; i < config_.edge_ports.size(); ++i)
      in_vports.push_back(static_cast<std::uint16_t>(i + 1));
  }

  auto graph = topo::read_topology(*vfs_, parent_root_);
  if (!graph) return graph.error();

  std::vector<std::string> installed;
  // On any failure the partial installation is rolled back so a rejected
  // virtual flow leaves no residue in the parent.
  auto rollback = [&](Status ec) {
    for (const auto& flow_path : installed) (void)vfs_->rmdir(flow_path);
    return ec;
  };
  int seq = 0;
  for (std::uint16_t vin : in_vports) {
    const topo::PortRef& ingress = config_.edge_ports[vin - 1];
    for (std::uint16_t vout : out_vports) {
      if (vout == vin) continue;
      const topo::PortRef& egress = config_.edge_ports[vout - 1];
      auto hops = graph->shortest_path(ingress.switch_name,
                                       egress.switch_name);
      if (!hops) return rollback(make_error_code(Errc::not_connected));
      // Build the hop list ending at the egress port itself.
      topo::Path path = *hops;
      path.push_back(egress);

      std::uint16_t hop_in = ingress.port_no;
      for (std::size_t h = 0; h < path.size(); ++h) {
        FlowSpec hop_spec;
        hop_spec.match = spec.match;
        hop_spec.match.in_port = hop_in;
        hop_spec.priority = spec.priority;
        hop_spec.idle_timeout = spec.idle_timeout;
        hop_spec.hard_timeout = spec.hard_timeout;
        bool last = h + 1 == path.size();
        if (last)  // header rewrites are applied at the egress hop
          hop_spec.actions = rewrites;
        hop_spec.actions.push_back(Action::output(path[h].port_no));

        std::string parent_flow =
            parent_root_ + "/switches/" + path[h].switch_name + "/flows/" +
            "big_" + config_.view_name + "__" + flow_name + "_" +
            std::to_string(seq++);
        if (auto ec = netfs::write_flow(*vfs_, parent_flow, hop_spec); ec)
          return rollback(ec);
        installed.push_back(parent_flow);

        // The next switch on the path receives the packet on the port at
        // the far end of this hop's link.
        if (!last) {
          // Find the peer of (switch, egress port) in the topology.
          bool found = false;
          for (const auto& link : graph->links()) {
            if (link.a == path[h]) {
              hop_in = link.b.port_no;
              found = true;
              break;
            }
            if (link.b == path[h]) {
              hop_in = link.a.port_no;
              found = true;
              break;
            }
          }
          if (!found) return rollback(make_error_code(Errc::not_connected));
        }
      }
    }
  }
  installed_[flow_name] = std::move(installed);
  return ok_status();
}

void BigSwitch::retract_flow(const std::string& flow_name) {
  auto it = installed_.find(flow_name);
  if (it == installed_.end()) return;
  for (const auto& path : it->second) (void)vfs_->rmdir(path);
  installed_.erase(it);
}

std::size_t BigSwitch::forward_events() {
  if (!parent_events_) return 0;
  auto pending = parent_events_->drain();
  if (!pending) return 0;
  auto view_apps = vfs_->readdir(view_root_ + "/events");
  if (!view_apps) return 0;

  std::size_t forwarded = 0;
  for (const auto& pkt : *pending) {
    std::uint16_t vport =
        virtual_port(topo::PortRef{pkt.datapath, pkt.in_port});
    if (vport == 0) continue;  // not an edge port of this big switch
    for (const auto& app : *view_apps) {
      if (app.type != vfs::FileType::directory) continue;
      std::string dir = view_root_ + "/events/" + app.name + "/" + pkt.name;
      if (vfs_->mkdir(dir)) continue;
      (void)vfs_->write_file(dir + "/datapath", config_.switch_name);
      (void)vfs_->write_file(dir + "/in_port", std::to_string(vport));
      (void)vfs_->write_file(dir + "/reason", pkt.reason);
      (void)vfs_->write_file(dir + "/data", pkt.data);
      ++forwarded;
    }
  }
  return forwarded;
}

}  // namespace yanc::view
