// OpenFlow 1.3 wire building blocks: OXM TLV matches, instruction/action
// lists, and the 64-byte ofp_port.  Used by the codec; exposed for tests.
#pragma once

#include "yanc/ofp/messages.hpp"
#include "yanc/util/bytes.hpp"

namespace yanc::ofp::oxm {

inline constexpr std::uint16_t kOpenFlowBasic = 0x8000;

/// OXM field ids (class OFPXMC_OPENFLOW_BASIC).
enum Field : std::uint8_t {
  in_port = 0,
  eth_dst = 3,
  eth_src = 4,
  eth_type = 5,
  vlan_vid = 6,
  vlan_pcp = 7,
  ip_dscp = 8,  // upper 6 bits of nw_tos
  ip_proto = 10,
  ipv4_src = 11,
  ipv4_dst = 12,
  tcp_src = 13,
  tcp_dst = 14,
  udp_src = 15,
  udp_dst = 16,
};

/// OFPVID_PRESENT: set in VLAN_VID values for tagged traffic.
inline constexpr std::uint16_t kVidPresent = 0x1000;

/// Encodes `match` as an ofp_match (type=OXM), including the trailing
/// pad-to-8.  tp_src/tp_dst compile to TCP or UDP port fields depending on
/// match.nw_proto (TCP when absent).
void encode_match(BufWriter& w, const flow::Match& match);

/// Decodes an ofp_match (consumes padding).
Result<flow::Match> decode_match(BufReader& r);

/// Encodes an apply-actions instruction list (plus goto-table when
/// `goto_table` >= 0).  Returns the byte length written.
Result<std::uint16_t> encode_instructions(
    BufWriter& w, const std::vector<flow::Action>& actions,
    int goto_table = -1);

Result<std::vector<flow::Action>> decode_instructions(BufReader& r,
                                                      std::size_t byte_len,
                                                      int* goto_table);

/// Bare action list (packet-out uses actions without instructions).
Result<std::uint16_t> encode_actions(BufWriter& w,
                                     const std::vector<flow::Action>& actions);
Result<std::vector<flow::Action>> decode_actions(BufReader& r,
                                                 std::size_t byte_len);

inline constexpr std::size_t kPortSize = 64;
void encode_port(BufWriter& w, const PortDesc& port);
Result<PortDesc> decode_port(BufReader& r);

/// 16-bit reserved port numbers (flood/controller/...) <-> 32-bit OF1.3.
std::uint32_t port_to_of13(std::uint16_t port);
std::uint16_t port_from_of13(std::uint32_t port);

}  // namespace yanc::ofp::oxm
