#include "yanc/ofp/codec.hpp"

#include "yanc/ofp/oxm.hpp"
#include "yanc/ofp/wire10.hpp"
#include "yanc/util/bytes.hpp"

namespace yanc::ofp {

namespace {

constexpr std::uint8_t kOf10StatsRequest = 16;
constexpr std::uint8_t kOf10StatsReply = 17;
constexpr std::uint8_t kOf10Barrier = 18;
constexpr std::uint8_t kOf13Multipart = 18;
constexpr std::uint8_t kOf13Barrier = 20;

std::uint8_t wire_type(Version v, const Message& m) {
  struct Visitor {
    Version v;
    std::uint8_t operator()(const Hello&) { return 0; }
    std::uint8_t operator()(const Error&) { return 1; }
    std::uint8_t operator()(const EchoRequest&) { return 2; }
    std::uint8_t operator()(const EchoReply&) { return 3; }
    std::uint8_t operator()(const FeaturesRequest&) { return 5; }
    std::uint8_t operator()(const FeaturesReply&) { return 6; }
    std::uint8_t operator()(const PacketIn&) { return 10; }
    std::uint8_t operator()(const FlowRemoved&) { return 11; }
    std::uint8_t operator()(const PortStatus&) { return 12; }
    std::uint8_t operator()(const PacketOut&) { return 13; }
    std::uint8_t operator()(const FlowMod&) { return 14; }
    std::uint8_t operator()(const StatsRequest&) {
      return v == Version::of10 ? kOf10StatsRequest : kOf13Multipart;
    }
    std::uint8_t operator()(const StatsReply&) {
      return v == Version::of10 ? kOf10StatsReply
                                : static_cast<std::uint8_t>(kOf13Multipart + 1);
    }
    std::uint8_t operator()(const BarrierRequest&) {
      return v == Version::of10 ? kOf10Barrier : kOf13Barrier;
    }
    std::uint8_t operator()(const BarrierReply&) {
      return v == Version::of10 ? static_cast<std::uint8_t>(kOf10Barrier + 1)
                                : static_cast<std::uint8_t>(kOf13Barrier + 1);
    }
    std::uint8_t operator()(const PortMod&) {
      return v == Version::of10 ? 15 : 16;
    }
  };
  return std::visit(Visitor{v}, m);
}

Status encode_body(BufWriter& w, Version v, const Message& m);

Status encode_features_reply(BufWriter& w, Version v,
                             const FeaturesReply& f) {
  w.u64(f.datapath_id);
  w.u32(f.n_buffers);
  w.u8(f.n_tables);
  if (v == Version::of10) {
    w.zeros(3);
    w.u32(f.capabilities);
    w.u32(f.actions);
    for (const auto& port : f.ports) wire10::encode_phy_port(w, port);
  } else {
    w.u8(0);  // auxiliary_id
    w.zeros(2);
    w.u32(f.capabilities);
    w.u32(0);  // reserved
  }
  return ok_status();
}

Status encode_flow_mod(BufWriter& w, Version v, const FlowMod& fm) {
  const auto& spec = fm.spec;
  if (v == Version::of10) {
    if (spec.table_id != 0)
      return make_error_code(Errc::not_supported);  // 1.0 has one table
    wire10::encode_match(w, spec.match);
    w.u64(spec.cookie);
    w.u16(static_cast<std::uint16_t>(fm.command));
    w.u16(spec.idle_timeout);
    w.u16(spec.hard_timeout);
    w.u16(spec.priority);
    w.u32(fm.buffer_id);
    w.u16(fm.out_port);
    w.u16(fm.flags);
    auto len = wire10::encode_actions(w, spec.actions);
    return len ? ok_status() : len.error();
  }
  w.u64(spec.cookie);
  w.u64(0);  // cookie_mask
  w.u8(spec.table_id);
  w.u8(static_cast<std::uint8_t>(fm.command));
  w.u16(spec.idle_timeout);
  w.u16(spec.hard_timeout);
  w.u16(spec.priority);
  w.u32(fm.buffer_id);
  w.u32(oxm::port_to_of13(fm.out_port));
  w.u32(0xffffffff);  // out_group: OFPG_ANY
  w.u16(fm.flags);
  w.zeros(2);
  oxm::encode_match(w, spec.match);
  auto len = oxm::encode_instructions(w, spec.actions, spec.goto_table);
  return len ? ok_status() : len.error();
}

Status encode_port_mod(BufWriter& w, Version v, const PortMod& pm) {
  std::uint32_t config = (pm.port_down ? 1u : 0u) |
                         (pm.no_flood ? 1u << 4 : 0u);
  if (v == Version::of10) {
    w.u16(pm.port_no);
    w.bytes(pm.hw_addr.bytes());
    w.u32(config);
    w.u32(0xffffffff);  // mask: change everything we model
    w.u32(0);           // advertise
    w.zeros(4);
  } else {
    w.u32(oxm::port_to_of13(pm.port_no));
    w.zeros(4);
    w.bytes(pm.hw_addr.bytes());
    w.zeros(2);
    w.u32(config);
    w.u32(0xffffffff);
    w.u32(0);
    w.zeros(4);
  }
  return ok_status();
}

Status encode_packet_in(BufWriter& w, Version v, const PacketIn& pi) {
  w.u32(pi.buffer_id);
  w.u16(pi.total_len);
  if (v == Version::of10) {
    w.u16(pi.in_port);
    w.u8(static_cast<std::uint8_t>(pi.reason));
    w.zeros(1);
  } else {
    w.u8(static_cast<std::uint8_t>(pi.reason));
    w.u8(pi.table_id);
    w.u64(0);  // cookie
    flow::Match m;
    m.in_port = pi.in_port;
    oxm::encode_match(w, m);
    w.zeros(2);
  }
  w.bytes(pi.data);
  return ok_status();
}

Status encode_packet_out(BufWriter& w, Version v, const PacketOut& po) {
  w.u32(po.buffer_id);
  if (v == Version::of10) {
    w.u16(po.in_port);
    std::size_t len_pos = w.size();
    w.u16(0);
    auto alen = wire10::encode_actions(w, po.actions);
    if (!alen) return alen.error();
    w.patch_u16(len_pos, *alen);
  } else {
    w.u32(oxm::port_to_of13(po.in_port));
    std::size_t len_pos = w.size();
    w.u16(0);
    w.zeros(6);
    auto alen = oxm::encode_actions(w, po.actions);
    if (!alen) return alen.error();
    w.patch_u16(len_pos, *alen);
  }
  if (po.buffer_id == kNoBuffer) w.bytes(po.data);
  return ok_status();
}

Status encode_flow_removed(BufWriter& w, Version v, const FlowRemoved& fr) {
  if (v == Version::of10) {
    wire10::encode_match(w, fr.match);
    w.u64(fr.cookie);
    w.u16(fr.priority);
    w.u8(static_cast<std::uint8_t>(fr.reason));
    w.zeros(1);
    w.u32(fr.duration_sec);
    w.u32(0);  // duration_nsec
    w.u16(0);  // idle_timeout
    w.zeros(2);
    w.u64(fr.packet_count);
    w.u64(fr.byte_count);
  } else {
    w.u64(fr.cookie);
    w.u16(fr.priority);
    w.u8(static_cast<std::uint8_t>(fr.reason));
    w.u8(fr.table_id);
    w.u32(fr.duration_sec);
    w.u32(0);
    w.u16(0);  // idle_timeout
    w.u16(0);  // hard_timeout
    w.u64(fr.packet_count);
    w.u64(fr.byte_count);
    oxm::encode_match(w, fr.match);
  }
  return ok_status();
}

// StatsKind::queue is wire type 5 in 1.0 but 9 in 1.3.
std::uint16_t stats_kind_to_wire(Version v, StatsKind kind) {
  if (kind == StatsKind::queue && v == Version::of13) return 9;
  return static_cast<std::uint16_t>(kind);
}

StatsKind stats_kind_from_wire(Version v, std::uint16_t wire) {
  if (wire == 9 && v == Version::of13) return StatsKind::queue;
  return static_cast<StatsKind>(wire);
}

Status encode_stats_request(BufWriter& w, Version v, const StatsRequest& sr) {
  w.u16(stats_kind_to_wire(v, sr.kind));
  w.u16(0);  // flags
  if (v == Version::of10) {
    switch (sr.kind) {
      case StatsKind::desc:
        return ok_status();
      case StatsKind::flow:
        wire10::encode_match(w, sr.match);
        w.u8(sr.table_id);
        w.zeros(1);
        w.u16(0xffff);  // out_port: none
        return ok_status();
      case StatsKind::port:
        w.u16(sr.port_no);
        w.zeros(6);
        return ok_status();
      case StatsKind::queue:
        w.u16(sr.port_no);
        w.zeros(2);
        w.u32(sr.queue_id);
        return ok_status();
      case StatsKind::port_desc:
        return make_error_code(Errc::not_supported);  // 1.0: use features
    }
    return make_error_code(Errc::not_supported);
  }
  w.zeros(4);
  switch (sr.kind) {
    case StatsKind::desc:
    case StatsKind::port_desc:
      return ok_status();
    case StatsKind::flow:
      w.u8(sr.table_id);
      w.zeros(3);
      w.u32(0xffffffff);  // out_port: any
      w.u32(0xffffffff);  // out_group: any
      w.zeros(4);
      w.u64(0);  // cookie
      w.u64(0);  // cookie_mask
      oxm::encode_match(w, sr.match);
      return ok_status();
    case StatsKind::port:
      w.u32(sr.port_no == 0xffff ? 0xffffffffu
                                 : oxm::port_to_of13(sr.port_no));
      w.zeros(4);
      return ok_status();
    case StatsKind::queue:
      w.u32(sr.port_no == 0xffff ? 0xffffffffu
                                 : oxm::port_to_of13(sr.port_no));
      w.u32(sr.queue_id);
      return ok_status();
  }
  return make_error_code(Errc::not_supported);
}

Status encode_stats_reply(BufWriter& w, Version v, const StatsReply& sr) {
  w.u16(stats_kind_to_wire(v, sr.kind));
  w.u16(0);  // flags
  if (v != Version::of10) w.zeros(4);
  switch (sr.kind) {
    case StatsKind::desc:
      w.padded_string(sr.manufacturer, 256);
      w.padded_string(sr.hw_desc, 256);
      w.padded_string(sr.sw_desc, 256);
      w.padded_string(sr.serial, 32);
      w.padded_string(sr.dp_desc, 256);
      return ok_status();
    case StatsKind::flow:
      for (const auto& e : sr.flows) {
        std::size_t entry_start = w.size();
        std::size_t len_pos = w.size();
        if (v == Version::of10) {
          w.u16(0);  // length, patched
          w.u8(e.table_id);
          w.zeros(1);
          wire10::encode_match(w, e.spec.match);
          w.u32(e.duration_sec);
          w.u32(0);
          w.u16(e.spec.priority);
          w.u16(e.spec.idle_timeout);
          w.u16(e.spec.hard_timeout);
          w.zeros(6);
          w.u64(e.spec.cookie);
          w.u64(e.packet_count);
          w.u64(e.byte_count);
          auto alen = wire10::encode_actions(w, e.spec.actions);
          if (!alen) return alen.error();
        } else {
          w.u16(0);
          w.u8(e.table_id);
          w.zeros(1);
          w.u32(e.duration_sec);
          w.u32(0);
          w.u16(e.spec.priority);
          w.u16(e.spec.idle_timeout);
          w.u16(e.spec.hard_timeout);
          w.u16(0);  // flags
          w.zeros(4);
          w.u64(e.spec.cookie);
          w.u64(e.packet_count);
          w.u64(e.byte_count);
          oxm::encode_match(w, e.spec.match);
          auto ilen = oxm::encode_instructions(w, e.spec.actions);
          if (!ilen) return ilen.error();
        }
        w.patch_u16(len_pos,
                    static_cast<std::uint16_t>(w.size() - entry_start));
      }
      return ok_status();
    case StatsKind::port:
      for (const auto& p : sr.ports) {
        if (v == Version::of10) {
          w.u16(p.port_no);
          w.zeros(6);
        } else {
          w.u32(oxm::port_to_of13(p.port_no));
          w.zeros(4);
        }
        w.u64(p.rx_packets);
        w.u64(p.tx_packets);
        w.u64(p.rx_bytes);
        w.u64(p.tx_bytes);
        w.u64(p.rx_dropped);
        w.u64(p.tx_dropped);
        w.u64(p.rx_errors);
        w.u64(p.tx_errors);
        // rx_frame_err, rx_over_err, rx_crc_err, collisions
        for (int i = 0; i < 4; ++i) w.u64(0);
        if (v != Version::of10) {
          w.u32(0);  // duration_sec
          w.u32(0);  // duration_nsec
        }
      }
      return ok_status();
    case StatsKind::queue:
      for (const auto& q : sr.queues) {
        if (v == Version::of10) {
          w.u16(q.port_no);
          w.zeros(2);
          w.u32(q.queue_id);
        } else {
          w.u32(oxm::port_to_of13(q.port_no));
          w.u32(q.queue_id);
        }
        w.u64(q.tx_bytes);
        w.u64(q.tx_packets);
        w.u64(q.tx_errors);
        if (v != Version::of10) {
          w.u32(0);  // duration_sec
          w.u32(0);  // duration_nsec
        }
      }
      return ok_status();
    case StatsKind::port_desc:
      if (v == Version::of10) return make_error_code(Errc::not_supported);
      for (const auto& port : sr.port_descs) oxm::encode_port(w, port);
      return ok_status();
  }
  return make_error_code(Errc::not_supported);
}

Status encode_body(BufWriter& w, Version v, const Message& m) {
  struct Visitor {
    BufWriter& w;
    Version v;
    Status operator()(const Hello&) { return ok_status(); }
    Status operator()(const Error& e) {
      w.u16(e.type);
      w.u16(e.code);
      w.bytes(e.data);
      return ok_status();
    }
    Status operator()(const EchoRequest& e) {
      w.bytes(e.data);
      return ok_status();
    }
    Status operator()(const EchoReply& e) {
      w.bytes(e.data);
      return ok_status();
    }
    Status operator()(const FeaturesRequest&) { return ok_status(); }
    Status operator()(const FeaturesReply& f) {
      return encode_features_reply(w, v, f);
    }
    Status operator()(const FlowMod& fm) { return encode_flow_mod(w, v, fm); }
    Status operator()(const PacketIn& pi) {
      return encode_packet_in(w, v, pi);
    }
    Status operator()(const PacketOut& po) {
      return encode_packet_out(w, v, po);
    }
    Status operator()(const PortStatus& ps) {
      w.u8(static_cast<std::uint8_t>(ps.reason));
      w.zeros(7);
      if (v == Version::of10)
        wire10::encode_phy_port(w, ps.desc);
      else
        oxm::encode_port(w, ps.desc);
      return ok_status();
    }
    Status operator()(const FlowRemoved& fr) {
      return encode_flow_removed(w, v, fr);
    }
    Status operator()(const StatsRequest& sr) {
      return encode_stats_request(w, v, sr);
    }
    Status operator()(const StatsReply& sr) {
      return encode_stats_reply(w, v, sr);
    }
    Status operator()(const BarrierRequest&) { return ok_status(); }
    Status operator()(const BarrierReply&) { return ok_status(); }
    Status operator()(const PortMod& pm) { return encode_port_mod(w, v, pm); }
  };
  return std::visit(Visitor{w, v}, m);
}

// --- decode -------------------------------------------------------------------

Result<Message> decode_features_reply(BufReader& r, Version v) {
  FeaturesReply f;
  f.datapath_id = r.u64();
  f.n_buffers = r.u32();
  f.n_tables = r.u8();
  if (v == Version::of10) {
    r.skip(3);
    f.capabilities = r.u32();
    f.actions = r.u32();
    while (r.remaining() >= wire10::kPhyPortSize) {
      auto port = wire10::decode_phy_port(r);
      if (!port) return port.error();
      f.ports.push_back(*port);
    }
  } else {
    r.skip(3);
    f.capabilities = r.u32();
    r.skip(4);
  }
  if (!r.ok()) return Errc::protocol_error;
  return Message{f};
}

Result<Message> decode_flow_mod(BufReader& r, Version v) {
  FlowMod fm;
  if (v == Version::of10) {
    auto match = wire10::decode_match(r);
    if (!match) return match.error();
    fm.spec.match = *match;
    fm.spec.cookie = r.u64();
    fm.command = static_cast<FlowMod::Command>(r.u16());
    fm.spec.idle_timeout = r.u16();
    fm.spec.hard_timeout = r.u16();
    fm.spec.priority = r.u16();
    fm.buffer_id = r.u32();
    fm.out_port = r.u16();
    fm.flags = r.u16();
    if (!r.ok()) return Errc::protocol_error;
    auto actions = wire10::decode_actions(r, r.remaining());
    if (!actions) return actions.error();
    fm.spec.actions = *actions;
  } else {
    fm.spec.cookie = r.u64();
    r.skip(8);  // cookie_mask
    fm.spec.table_id = r.u8();
    fm.command = static_cast<FlowMod::Command>(r.u8());
    fm.spec.idle_timeout = r.u16();
    fm.spec.hard_timeout = r.u16();
    fm.spec.priority = r.u16();
    fm.buffer_id = r.u32();
    fm.out_port = oxm::port_from_of13(r.u32());
    r.skip(4);  // out_group
    fm.flags = r.u16();
    r.skip(2);
    if (!r.ok()) return Errc::protocol_error;
    auto match = oxm::decode_match(r);
    if (!match) return match.error();
    fm.spec.match = *match;
    int goto_table = -1;
    auto actions = oxm::decode_instructions(r, r.remaining(), &goto_table);
    if (!actions) return actions.error();
    fm.spec.actions = *actions;
    fm.spec.goto_table = goto_table;
  }
  return Message{fm};
}

Result<Message> decode_packet_in(BufReader& r, Version v) {
  PacketIn pi;
  pi.buffer_id = r.u32();
  pi.total_len = r.u16();
  if (v == Version::of10) {
    pi.in_port = r.u16();
    pi.reason = static_cast<PacketIn::Reason>(r.u8());
    r.skip(1);
  } else {
    pi.reason = static_cast<PacketIn::Reason>(r.u8());
    pi.table_id = r.u8();
    r.skip(8);  // cookie
    auto match = oxm::decode_match(r);
    if (!match) return match.error();
    if (match->in_port) pi.in_port = *match->in_port;
    r.skip(2);
  }
  if (!r.ok()) return Errc::protocol_error;
  pi.data = r.bytes(r.remaining());
  return Message{pi};
}

Result<Message> decode_packet_out(BufReader& r, Version v) {
  PacketOut po;
  po.buffer_id = r.u32();
  std::uint16_t actions_len;
  if (v == Version::of10) {
    po.in_port = r.u16();
    actions_len = r.u16();
    if (!r.ok()) return Errc::protocol_error;
    auto actions = wire10::decode_actions(r, actions_len);
    if (!actions) return actions.error();
    po.actions = *actions;
  } else {
    po.in_port = oxm::port_from_of13(r.u32());
    actions_len = r.u16();
    r.skip(6);
    if (!r.ok()) return Errc::protocol_error;
    auto actions = oxm::decode_actions(r, actions_len);
    if (!actions) return actions.error();
    po.actions = *actions;
  }
  po.data = r.bytes(r.remaining());
  return Message{po};
}

Result<Message> decode_flow_removed(BufReader& r, Version v) {
  FlowRemoved fr;
  if (v == Version::of10) {
    auto match = wire10::decode_match(r);
    if (!match) return match.error();
    fr.match = *match;
    fr.cookie = r.u64();
    fr.priority = r.u16();
    fr.reason = static_cast<FlowRemoved::Reason>(r.u8());
    r.skip(1);
    fr.duration_sec = r.u32();
    r.skip(4 + 2 + 2);
    fr.packet_count = r.u64();
    fr.byte_count = r.u64();
  } else {
    fr.cookie = r.u64();
    fr.priority = r.u16();
    fr.reason = static_cast<FlowRemoved::Reason>(r.u8());
    fr.table_id = r.u8();
    fr.duration_sec = r.u32();
    r.skip(4 + 2 + 2);
    fr.packet_count = r.u64();
    fr.byte_count = r.u64();
    auto match = oxm::decode_match(r);
    if (!match) return match.error();
    fr.match = *match;
  }
  if (!r.ok()) return Errc::protocol_error;
  return Message{fr};
}

Result<Message> decode_stats_request(BufReader& r, Version v) {
  StatsRequest sr;
  sr.kind = stats_kind_from_wire(v, r.u16());
  r.skip(2);  // flags
  if (v != Version::of10) r.skip(4);
  switch (sr.kind) {
    case StatsKind::desc:
    case StatsKind::port_desc:
      break;
    case StatsKind::flow:
      if (v == Version::of10) {
        auto match = wire10::decode_match(r);
        if (!match) return match.error();
        sr.match = *match;
        sr.table_id = r.u8();
        r.skip(3);
      } else {
        sr.table_id = r.u8();
        r.skip(3 + 4 + 4 + 4 + 8 + 8);
        auto match = oxm::decode_match(r);
        if (!match) return match.error();
        sr.match = *match;
      }
      break;
    case StatsKind::port:
      if (v == Version::of10) {
        sr.port_no = r.u16();
        r.skip(6);
      } else {
        std::uint32_t p = r.u32();
        sr.port_no = p == 0xffffffffu ? 0xffff : oxm::port_from_of13(p);
        r.skip(4);
      }
      break;
    case StatsKind::queue:
      if (v == Version::of10) {
        sr.port_no = r.u16();
        r.skip(2);
        sr.queue_id = r.u32();
      } else {
        std::uint32_t p = r.u32();
        sr.port_no = p == 0xffffffffu ? 0xffff : oxm::port_from_of13(p);
        sr.queue_id = r.u32();
      }
      break;
    default:
      return Errc::not_supported;
  }
  if (!r.ok()) return Errc::protocol_error;
  return Message{sr};
}

Result<Message> decode_stats_reply(BufReader& r, Version v) {
  StatsReply sr;
  sr.kind = stats_kind_from_wire(v, r.u16());
  r.skip(2);
  if (v != Version::of10) r.skip(4);
  switch (sr.kind) {
    case StatsKind::desc:
      sr.manufacturer = r.padded_string(256);
      sr.hw_desc = r.padded_string(256);
      sr.sw_desc = r.padded_string(256);
      sr.serial = r.padded_string(32);
      sr.dp_desc = r.padded_string(256);
      break;
    case StatsKind::flow:
      while (r.ok() && r.remaining() >= 2) {
        FlowStatsEntry e;
        std::uint16_t len = r.u16();
        if (len < 2 || static_cast<std::size_t>(len - 2) > r.remaining()) return Errc::protocol_error;
        BufReader entry = r.sub(len - 2);
        e.table_id = entry.u8();
        entry.skip(1);
        if (v == Version::of10) {
          auto match = wire10::decode_match(entry);
          if (!match) return match.error();
          e.spec.match = *match;
          e.duration_sec = entry.u32();
          entry.skip(4);
          e.spec.priority = entry.u16();
          e.spec.idle_timeout = entry.u16();
          e.spec.hard_timeout = entry.u16();
          entry.skip(6);
          e.spec.cookie = entry.u64();
          e.packet_count = entry.u64();
          e.byte_count = entry.u64();
          auto actions = wire10::decode_actions(entry, entry.remaining());
          if (!actions) return actions.error();
          e.spec.actions = *actions;
        } else {
          e.duration_sec = entry.u32();
          entry.skip(4);
          e.spec.priority = entry.u16();
          e.spec.idle_timeout = entry.u16();
          e.spec.hard_timeout = entry.u16();
          entry.skip(2 + 4);
          e.spec.cookie = entry.u64();
          e.packet_count = entry.u64();
          e.byte_count = entry.u64();
          auto match = oxm::decode_match(entry);
          if (!match) return match.error();
          e.spec.match = *match;
          int gt = -1;
          auto actions =
              oxm::decode_instructions(entry, entry.remaining(), &gt);
          if (!actions) return actions.error();
          e.spec.actions = *actions;
        }
        if (!entry.ok()) return Errc::protocol_error;
        sr.flows.push_back(std::move(e));
      }
      break;
    case StatsKind::port: {
      std::size_t entry_size = v == Version::of10 ? 104 : 112;
      while (r.ok() && r.remaining() >= entry_size) {
        PortStatsEntry p;
        if (v == Version::of10) {
          p.port_no = r.u16();
          r.skip(6);
        } else {
          p.port_no = oxm::port_from_of13(r.u32());
          r.skip(4);
        }
        p.rx_packets = r.u64();
        p.tx_packets = r.u64();
        p.rx_bytes = r.u64();
        p.tx_bytes = r.u64();
        p.rx_dropped = r.u64();
        p.tx_dropped = r.u64();
        p.rx_errors = r.u64();
        p.tx_errors = r.u64();
        r.skip(32);
        if (v != Version::of10) r.skip(8);
        sr.ports.push_back(p);
      }
      break;
    }
    case StatsKind::queue: {
      std::size_t entry_size = v == Version::of10 ? 32 : 40;
      while (r.ok() && r.remaining() >= entry_size) {
        QueueStatsEntry q;
        if (v == Version::of10) {
          q.port_no = r.u16();
          r.skip(2);
          q.queue_id = r.u32();
        } else {
          q.port_no = oxm::port_from_of13(r.u32());
          q.queue_id = r.u32();
        }
        q.tx_bytes = r.u64();
        q.tx_packets = r.u64();
        q.tx_errors = r.u64();
        if (v != Version::of10) r.skip(8);
        sr.queues.push_back(q);
      }
      break;
    }
    case StatsKind::port_desc:
      if (v == Version::of10) return Errc::not_supported;
      while (r.ok() && r.remaining() >= oxm::kPortSize) {
        auto port = oxm::decode_port(r);
        if (!port) return port.error();
        sr.port_descs.push_back(*port);
      }
      break;
    default:
      return Errc::not_supported;
  }
  if (!r.ok()) return Errc::protocol_error;
  return Message{sr};
}

}  // namespace

std::string version_name(Version v) {
  return v == Version::of10 ? "1.0" : "1.3";
}

std::string message_name(const Message& m) {
  struct Visitor {
    std::string operator()(const Hello&) { return "hello"; }
    std::string operator()(const Error&) { return "error"; }
    std::string operator()(const EchoRequest&) { return "echo_request"; }
    std::string operator()(const EchoReply&) { return "echo_reply"; }
    std::string operator()(const FeaturesRequest&) {
      return "features_request";
    }
    std::string operator()(const FeaturesReply&) { return "features_reply"; }
    std::string operator()(const FlowMod&) { return "flow_mod"; }
    std::string operator()(const PacketIn&) { return "packet_in"; }
    std::string operator()(const PacketOut&) { return "packet_out"; }
    std::string operator()(const PortStatus&) { return "port_status"; }
    std::string operator()(const FlowRemoved&) { return "flow_removed"; }
    std::string operator()(const StatsRequest&) { return "stats_request"; }
    std::string operator()(const StatsReply&) { return "stats_reply"; }
    std::string operator()(const BarrierRequest&) { return "barrier_request"; }
    std::string operator()(const BarrierReply&) { return "barrier_reply"; }
    std::string operator()(const PortMod&) { return "port_mod"; }
  };
  return std::visit(Visitor{}, m);
}

Result<std::vector<std::uint8_t>> encode(Version v, std::uint32_t xid,
                                         const Message& message) {
  // One message is a batch of one: sharing the framing code keeps the two
  // paths byte-identical (the batch round-trip tests rely on it).
  BatchEncoder batch(v);
  if (auto ec = batch.append(xid, message); ec) return ec;
  return batch.take();
}

Status BatchEncoder::append(std::uint32_t xid, const Message& message) {
  std::size_t base = w_.size();
  w_.u8(static_cast<std::uint8_t>(version_));
  w_.u8(wire_type(version_, message));
  w_.u16(0);  // length, patched
  w_.u32(xid);
  if (auto ec = encode_body(w_, version_, message); ec) {
    w_.truncate(base);
    return ec;
  }
  std::size_t length = w_.size() - base;
  if (length > 0xffff) {
    w_.truncate(base);
    return make_error_code(Errc::overflow);
  }
  w_.patch_u16(base + 2, static_cast<std::uint16_t>(length));
  ++count_;
  return ok_status();
}

std::vector<std::uint8_t> BatchEncoder::take() {
  count_ = 0;
  auto out = w_.take();
  w_ = BufWriter{};
  return out;
}

Result<std::vector<std::span<const std::uint8_t>>> split_frames(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::span<const std::uint8_t>> frames;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    auto header = peek_header(bytes.subspan(pos));
    if (!header) return header.error();
    if (header->length < kHeaderSize || header->length > bytes.size() - pos)
      return Errc::protocol_error;
    frames.push_back(bytes.subspan(pos, header->length));
    pos += header->length;
  }
  return frames;
}

Result<Header> peek_header(std::span<const std::uint8_t> bytes) {
  BufReader r(bytes);
  Header h;
  std::uint8_t version = r.u8();
  h.type = r.u8();
  h.length = r.u16();
  h.xid = r.u32();
  if (!r.ok()) return Errc::protocol_error;
  if (version != static_cast<std::uint8_t>(Version::of10) &&
      version != static_cast<std::uint8_t>(Version::of13))
    return Errc::not_supported;
  h.version = static_cast<Version>(version);
  return h;
}

Result<Decoded> decode(std::span<const std::uint8_t> bytes) {
  auto header = peek_header(bytes);
  if (!header) return header.error();
  if (header->length != bytes.size()) return Errc::protocol_error;
  BufReader r(bytes);
  r.skip(kHeaderSize);
  Version v = header->version;

  auto finish = [&](Message m) -> Result<Decoded> {
    return Decoded{*header, std::move(m)};
  };

  std::uint8_t t = header->type;
  if (t == 0) return finish(Hello{});
  if (t == 1) {
    Error e;
    e.type = r.u16();
    e.code = r.u16();
    e.data = r.bytes(r.remaining());
    if (!r.ok()) return Errc::protocol_error;
    return finish(e);
  }
  if (t == 2) return finish(EchoRequest{r.bytes(r.remaining())});
  if (t == 3) return finish(EchoReply{r.bytes(r.remaining())});
  if (t == 5) return finish(FeaturesRequest{});
  if (t == 6) {
    auto m = decode_features_reply(r, v);
    return m ? finish(*m) : m.error();
  }
  if (t == 10) {
    auto m = decode_packet_in(r, v);
    return m ? finish(*m) : m.error();
  }
  if (t == 11) {
    auto m = decode_flow_removed(r, v);
    return m ? finish(*m) : m.error();
  }
  if (t == 12) {
    PortStatus ps;
    ps.reason = static_cast<PortStatus::Reason>(r.u8());
    r.skip(7);
    if (v == Version::of10) {
      auto port = wire10::decode_phy_port(r);
      if (!port) return port.error();
      ps.desc = *port;
    } else {
      auto port = oxm::decode_port(r);
      if (!port) return port.error();
      ps.desc = *port;
    }
    return finish(ps);
  }
  if (t == 13) {
    auto m = decode_packet_out(r, v);
    return m ? finish(*m) : m.error();
  }
  if (t == 14) {
    auto m = decode_flow_mod(r, v);
    return m ? finish(*m) : m.error();
  }
  if ((v == Version::of10 && t == kOf10StatsRequest) ||
      (v == Version::of13 && t == kOf13Multipart)) {
    auto m = decode_stats_request(r, v);
    return m ? finish(*m) : m.error();
  }
  if ((v == Version::of10 && t == kOf10StatsReply) ||
      (v == Version::of13 && t == kOf13Multipart + 1)) {
    auto m = decode_stats_reply(r, v);
    return m ? finish(*m) : m.error();
  }
  if ((v == Version::of10 && t == kOf10Barrier) ||
      (v == Version::of13 && t == kOf13Barrier))
    return finish(BarrierRequest{});
  if ((v == Version::of10 && t == kOf10Barrier + 1) ||
      (v == Version::of13 && t == kOf13Barrier + 1))
    return finish(BarrierReply{});
  if ((v == Version::of10 && t == 15) || (v == Version::of13 && t == 16)) {
    PortMod pm;
    std::uint32_t config;
    std::array<std::uint8_t, 6> mac{};
    if (v == Version::of10) {
      pm.port_no = r.u16();
      r.bytes(mac);
      config = r.u32();
    } else {
      pm.port_no = oxm::port_from_of13(r.u32());
      r.skip(4);
      r.bytes(mac);
      r.skip(2);
      config = r.u32();
    }
    if (!r.ok()) return Errc::protocol_error;
    pm.hw_addr = MacAddress(mac);
    pm.port_down = config & 1u;
    pm.no_flood = config & (1u << 4);
    return finish(pm);
  }

  return Errc::not_supported;
}

}  // namespace yanc::ofp
