#include "yanc/ofp/wire10.hpp"

namespace yanc::ofp::wire10 {

using flow::Action;
using flow::ActionKind;
using flow::Match;

namespace {

// OF1.0 action type ids.
enum ActType : std::uint16_t {
  kOutput = 0,
  kSetVlanVid = 1,
  kSetVlanPcp = 2,
  kStripVlan = 3,
  kSetDlSrc = 4,
  kSetDlDst = 5,
  kSetNwSrc = 6,
  kSetNwDst = 7,
  kSetNwTos = 8,
  kSetTpSrc = 9,
  kSetTpDst = 10,
  kEnqueue = 11,
};

void write_mac(BufWriter& w, const MacAddress& mac) { w.bytes(mac.bytes()); }

MacAddress read_mac(BufReader& r) {
  std::array<std::uint8_t, 6> b{};
  r.bytes(b);
  return MacAddress(b);
}

}  // namespace

void encode_match(BufWriter& w, const Match& m) {
  std::uint32_t wc = 0;
  if (!m.in_port) wc |= wildcard::in_port;
  if (!m.dl_vlan) wc |= wildcard::dl_vlan;
  if (!m.dl_src) wc |= wildcard::dl_src;
  if (!m.dl_dst) wc |= wildcard::dl_dst;
  if (!m.dl_type) wc |= wildcard::dl_type;
  if (!m.nw_proto) wc |= wildcard::nw_proto;
  if (!m.tp_src) wc |= wildcard::tp_src;
  if (!m.tp_dst) wc |= wildcard::tp_dst;
  if (!m.dl_vlan_pcp) wc |= wildcard::dl_vlan_pcp;
  if (!m.nw_tos) wc |= wildcard::nw_tos;
  // nw_src/nw_dst wildcard the *low* (32 - prefix) bits; 32+ = full wild.
  std::uint32_t src_wild = m.nw_src ? 32u - static_cast<std::uint32_t>(
                                                m.nw_src->prefix_len())
                                    : 32u;
  std::uint32_t dst_wild = m.nw_dst ? 32u - static_cast<std::uint32_t>(
                                                m.nw_dst->prefix_len())
                                    : 32u;
  wc |= src_wild << wildcard::nw_src_shift;
  wc |= dst_wild << wildcard::nw_dst_shift;

  w.u32(wc);
  w.u16(m.in_port.value_or(0));
  write_mac(w, m.dl_src.value_or(MacAddress{}));
  write_mac(w, m.dl_dst.value_or(MacAddress{}));
  w.u16(m.dl_vlan.value_or(0));
  w.u8(m.dl_vlan_pcp.value_or(0));
  w.zeros(1);
  w.u16(m.dl_type.value_or(0));
  w.u8(m.nw_tos.value_or(0));
  w.u8(m.nw_proto.value_or(0));
  w.zeros(2);
  w.u32(m.nw_src ? m.nw_src->address().value() : 0);
  w.u32(m.nw_dst ? m.nw_dst->address().value() : 0);
  w.u16(m.tp_src.value_or(0));
  w.u16(m.tp_dst.value_or(0));
}

Result<Match> decode_match(BufReader& r) {
  std::uint32_t wc = r.u32();
  std::uint16_t in_port = r.u16();
  MacAddress dl_src = read_mac(r);
  MacAddress dl_dst = read_mac(r);
  std::uint16_t dl_vlan = r.u16();
  std::uint8_t dl_vlan_pcp = r.u8();
  r.skip(1);
  std::uint16_t dl_type = r.u16();
  std::uint8_t nw_tos = r.u8();
  std::uint8_t nw_proto = r.u8();
  r.skip(2);
  std::uint32_t nw_src = r.u32();
  std::uint32_t nw_dst = r.u32();
  std::uint16_t tp_src = r.u16();
  std::uint16_t tp_dst = r.u16();
  if (!r.ok()) return Errc::protocol_error;

  Match m;
  if (!(wc & wildcard::in_port)) m.in_port = in_port;
  if (!(wc & wildcard::dl_vlan)) m.dl_vlan = dl_vlan;
  if (!(wc & wildcard::dl_src)) m.dl_src = dl_src;
  if (!(wc & wildcard::dl_dst)) m.dl_dst = dl_dst;
  if (!(wc & wildcard::dl_type)) m.dl_type = dl_type;
  if (!(wc & wildcard::nw_proto)) m.nw_proto = nw_proto;
  if (!(wc & wildcard::tp_src)) m.tp_src = tp_src;
  if (!(wc & wildcard::tp_dst)) m.tp_dst = tp_dst;
  if (!(wc & wildcard::dl_vlan_pcp)) m.dl_vlan_pcp = dl_vlan_pcp;
  if (!(wc & wildcard::nw_tos)) m.nw_tos = nw_tos;
  std::uint32_t src_wild = (wc >> wildcard::nw_src_shift) & 0x3f;
  std::uint32_t dst_wild = (wc >> wildcard::nw_dst_shift) & 0x3f;
  if (src_wild < 32)
    m.nw_src = Cidr(Ipv4Address(nw_src), static_cast<int>(32 - src_wild));
  if (dst_wild < 32)
    m.nw_dst = Cidr(Ipv4Address(nw_dst), static_cast<int>(32 - dst_wild));
  return m;
}

Result<std::uint16_t> encode_actions(BufWriter& w,
                                     const std::vector<Action>& actions) {
  std::size_t start = w.size();
  for (const auto& a : actions) {
    switch (a.kind) {
      case ActionKind::output:
        w.u16(kOutput);
        w.u16(8);
        w.u16(a.port());
        w.u16(0xffff);  // max_len for controller sends
        break;
      case ActionKind::set_vlan:
        w.u16(kSetVlanVid);
        w.u16(8);
        w.u16(a.port());
        w.zeros(2);
        break;
      case ActionKind::strip_vlan:
        w.u16(kStripVlan);
        w.u16(8);
        w.zeros(4);
        break;
      case ActionKind::set_dl_src:
      case ActionKind::set_dl_dst:
        w.u16(a.kind == ActionKind::set_dl_src ? kSetDlSrc : kSetDlDst);
        w.u16(16);
        w.bytes(a.mac().bytes());
        w.zeros(6);
        break;
      case ActionKind::set_nw_src:
      case ActionKind::set_nw_dst:
        w.u16(a.kind == ActionKind::set_nw_src ? kSetNwSrc : kSetNwDst);
        w.u16(8);
        w.u32(a.ip().value());
        break;
      case ActionKind::set_nw_tos:
        w.u16(kSetNwTos);
        w.u16(8);
        w.u8(std::get<std::uint8_t>(a.value));
        w.zeros(3);
        break;
      case ActionKind::set_tp_src:
      case ActionKind::set_tp_dst:
        w.u16(a.kind == ActionKind::set_tp_src ? kSetTpSrc : kSetTpDst);
        w.u16(8);
        w.u16(a.port());
        w.zeros(2);
        break;
      case ActionKind::enqueue: {
        std::uint32_t packed = std::get<std::uint32_t>(a.value);
        w.u16(kEnqueue);
        w.u16(16);
        w.u16(static_cast<std::uint16_t>(packed >> 16));
        w.zeros(6);
        w.u32(packed & 0xffff);
        break;
      }
      case ActionKind::drop:
        // Drop is the absence of actions in OpenFlow; nothing on the wire.
        break;
    }
  }
  return static_cast<std::uint16_t>(w.size() - start);
}

Result<std::vector<Action>> decode_actions(BufReader& r,
                                           std::size_t byte_len) {
  BufReader body = r.sub(byte_len);
  if (!r.ok()) return Errc::protocol_error;
  std::vector<Action> out;
  while (body.remaining() >= 4) {
    std::uint16_t type = body.u16();
    std::uint16_t len = body.u16();
    if (len < 4 || static_cast<std::size_t>(len - 4) > body.remaining()) return Errc::protocol_error;
    BufReader payload = body.sub(len - 4);
    switch (type) {
      case kOutput: {
        std::uint16_t port = payload.u16();
        out.push_back(Action::output(port));
        break;
      }
      case kSetVlanVid:
        out.push_back(Action{ActionKind::set_vlan, payload.u16()});
        break;
      case kSetVlanPcp:
        // PCP-only rewrite is not in our model; ignore (valid per spec to
        // skip unknown processing in a soft switch reproduction).
        break;
      case kStripVlan:
        out.push_back(Action{ActionKind::strip_vlan, std::monostate{}});
        break;
      case kSetDlSrc:
      case kSetDlDst: {
        std::array<std::uint8_t, 6> b{};
        payload.bytes(b);
        out.push_back(Action{type == kSetDlSrc ? ActionKind::set_dl_src
                                               : ActionKind::set_dl_dst,
                             MacAddress(b)});
        break;
      }
      case kSetNwSrc:
      case kSetNwDst:
        out.push_back(Action{type == kSetNwSrc ? ActionKind::set_nw_src
                                               : ActionKind::set_nw_dst,
                             Ipv4Address(payload.u32())});
        break;
      case kSetNwTos:
        out.push_back(Action{ActionKind::set_nw_tos, payload.u8()});
        break;
      case kSetTpSrc:
      case kSetTpDst:
        out.push_back(Action{type == kSetTpSrc ? ActionKind::set_tp_src
                                               : ActionKind::set_tp_dst,
                             payload.u16()});
        break;
      case kEnqueue: {
        std::uint16_t port = payload.u16();
        payload.skip(6);
        std::uint32_t queue = payload.u32();
        out.push_back(Action{
            ActionKind::enqueue,
            static_cast<std::uint32_t>((static_cast<std::uint32_t>(port)
                                        << 16) |
                                       (queue & 0xffff))});
        break;
      }
      default:
        return Errc::protocol_error;
    }
    if (!payload.ok()) return Errc::protocol_error;
  }
  return out;
}

void encode_phy_port(BufWriter& w, const PortDesc& port) {
  w.u16(port.port_no);
  w.bytes(port.hw_addr.bytes());
  w.padded_string(port.name, 16);
  std::uint32_t config = 0;
  if (port.port_down) config |= 1u;       // OFPPC_PORT_DOWN
  if (port.no_flood) config |= 1u << 4;   // OFPPC_NO_FLOOD
  w.u32(config);
  w.u32(port.link_down ? 1u : 0u);  // OFPPS_LINK_DOWN
  // curr/advertised/supported/peer feature bitmaps: report 10GbE-FD.
  for (int i = 0; i < 4; ++i) w.u32(1u << 6);
}

Result<PortDesc> decode_phy_port(BufReader& r) {
  PortDesc port;
  port.port_no = r.u16();
  std::array<std::uint8_t, 6> mac{};
  r.bytes(mac);
  port.hw_addr = MacAddress(mac);
  port.name = r.padded_string(16);
  std::uint32_t config = r.u32();
  std::uint32_t state = r.u32();
  r.skip(16);
  if (!r.ok()) return Errc::protocol_error;
  port.port_down = config & 1u;
  port.no_flood = config & (1u << 4);
  port.link_down = state & 1u;
  return port;
}

}  // namespace yanc::ofp::wire10
