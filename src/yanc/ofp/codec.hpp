// OpenFlow codec: serialize/deserialize Message values for a given wire
// version.  One decoded model, two wire dialects — the per-version delta
// lives here and in the thin drivers, nowhere else (§4.1).
#pragma once

#include <span>

#include "yanc/ofp/messages.hpp"

namespace yanc::ofp {

/// Serializes `message` as version `v` with transaction id `xid`.
/// Fails with ENOTSUP for combinations the dialect cannot express.
Result<std::vector<std::uint8_t>> encode(Version v, std::uint32_t xid,
                                         const Message& message);

struct Decoded {
  Header header;
  Message message;
};

/// Decodes one complete message (the buffer must hold exactly one).
Result<Decoded> decode(std::span<const std::uint8_t> bytes);

/// Peeks at the header without decoding the body.
Result<Header> peek_header(std::span<const std::uint8_t> bytes);

}  // namespace yanc::ofp
