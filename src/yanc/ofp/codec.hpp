// OpenFlow codec: serialize/deserialize Message values for a given wire
// version.  One decoded model, two wire dialects — the per-version delta
// lives here and in the thin drivers, nowhere else (§4.1).
#pragma once

#include <span>

#include "yanc/ofp/messages.hpp"
#include "yanc/util/bytes.hpp"

namespace yanc::ofp {

/// Serializes `message` as version `v` with transaction id `xid`.
/// Fails with ENOTSUP for combinations the dialect cannot express.
Result<std::vector<std::uint8_t>> encode(Version v, std::uint32_t xid,
                                         const Message& message);

/// Packs several messages into one wire buffer (vectored egress).  Each
/// message is length-framed by its own header exactly as encode() frames
/// it — byte for byte — so a receiver splits the train with
/// split_frames() and runs each frame through the unchanged decode().
class BatchEncoder {
 public:
  explicit BatchEncoder(Version v) : version_(v) {}

  /// Appends one message framed with `xid`.  On failure the buffer is
  /// unchanged (the partial trailing message is rolled back).
  [[nodiscard]] Status append(std::uint32_t xid, const Message& message);

  std::size_t count() const noexcept { return count_; }
  std::size_t size_bytes() const noexcept { return w_.size(); }
  bool empty() const noexcept { return count_ == 0; }

  /// Returns the packed train; the encoder is empty again and reusable.
  std::vector<std::uint8_t> take();

 private:
  Version version_;
  BufWriter w_;
  std::size_t count_ = 0;
};

/// Splits a buffer holding one or more length-framed messages into
/// per-message sub-spans (no copying; the spans borrow `bytes`).  Fails
/// when a header is malformed or a length field overruns the buffer.
Result<std::vector<std::span<const std::uint8_t>>> split_frames(
    std::span<const std::uint8_t> bytes);

struct Decoded {
  Header header;
  Message message;
};

/// Decodes one complete message (the buffer must hold exactly one).
Result<Decoded> decode(std::span<const std::uint8_t> bytes);

/// Peeks at the header without decoding the body.
Result<Header> peek_header(std::span<const std::uint8_t> bytes);

}  // namespace yanc::ofp
