#include "yanc/ofp/oxm.hpp"

#include <functional>
#include <optional>

namespace yanc::ofp::oxm {

using flow::Action;
using flow::ActionKind;
using flow::Match;

namespace {

// 1.3 action type ids.
enum ActType : std::uint16_t {
  kOutput = 0,
  kSetQueue = 21,
  kPopVlan = 18,
  kPushVlan = 17,
  kSetField = 25,
};

// 1.3 instruction type ids.
enum InstrType : std::uint16_t {
  kGotoTable = 1,
  kApplyActions = 4,
};

void oxm_header(BufWriter& w, Field field, std::uint8_t payload_len,
                bool has_mask = false) {
  w.u16(kOpenFlowBasic);
  w.u8(static_cast<std::uint8_t>((field << 1) | (has_mask ? 1 : 0)));
  w.u8(payload_len);
}

void pad_to_8(BufWriter& w, std::size_t content_start) {
  std::size_t len = w.size() - content_start;
  w.zeros((8 - len % 8) % 8);
}

// Writes one set-field action (header + OXM + pad to 8).
void set_field_action(BufWriter& w, Field field,
                      const std::function<void()>& write_value,
                      std::uint8_t value_len) {
  std::size_t start = w.size();
  w.u16(kSetField);
  std::size_t len_pos = w.size();
  w.u16(0);  // patched
  oxm_header(w, field, value_len);
  write_value();
  pad_to_8(w, start);
  w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size() - start));
}

}  // namespace

std::uint32_t port_to_of13(std::uint16_t port) {
  return port >= 0xff00 ? 0xffffff00u | (port & 0xff)
                        : static_cast<std::uint32_t>(port);
}

std::uint16_t port_from_of13(std::uint32_t port) {
  return port >= 0xffffff00u
             ? static_cast<std::uint16_t>(0xff00 | (port & 0xff))
             : static_cast<std::uint16_t>(port & 0xffff);
}

void encode_match(BufWriter& w, const Match& m) {
  std::size_t start = w.size();
  w.u16(1);  // OFPMT_OXM
  std::size_t len_pos = w.size();
  w.u16(0);  // patched below (length includes this 4-byte preamble)

  if (m.in_port) {
    oxm_header(w, in_port, 4);
    w.u32(port_to_of13(*m.in_port));
  }
  if (m.dl_dst) {
    oxm_header(w, eth_dst, 6);
    w.bytes(m.dl_dst->bytes());
  }
  if (m.dl_src) {
    oxm_header(w, eth_src, 6);
    w.bytes(m.dl_src->bytes());
  }
  if (m.dl_type) {
    oxm_header(w, eth_type, 2);
    w.u16(*m.dl_type);
  }
  if (m.dl_vlan) {
    oxm_header(w, vlan_vid, 2);
    // 0xffff in our model = untagged = OFPVID_NONE (0x0000).
    w.u16(*m.dl_vlan == 0xffff
              ? 0
              : static_cast<std::uint16_t>(kVidPresent | *m.dl_vlan));
  }
  if (m.dl_vlan_pcp) {
    oxm_header(w, vlan_pcp, 1);
    w.u8(*m.dl_vlan_pcp);
  }
  if (m.nw_tos) {
    oxm_header(w, ip_dscp, 1);
    w.u8(static_cast<std::uint8_t>(*m.nw_tos >> 2));
  }
  if (m.nw_proto) {
    oxm_header(w, ip_proto, 1);
    w.u8(*m.nw_proto);
  }
  if (m.nw_src) {
    bool masked = m.nw_src->prefix_len() < 32;
    oxm_header(w, ipv4_src, masked ? 8 : 4, masked);
    w.u32(m.nw_src->address().value());
    if (masked) w.u32(m.nw_src->mask());
  }
  if (m.nw_dst) {
    bool masked = m.nw_dst->prefix_len() < 32;
    oxm_header(w, ipv4_dst, masked ? 8 : 4, masked);
    w.u32(m.nw_dst->address().value());
    if (masked) w.u32(m.nw_dst->mask());
  }
  bool udp = m.nw_proto && *m.nw_proto == 17;
  if (m.tp_src) {
    oxm_header(w, udp ? udp_src : tcp_src, 2);
    w.u16(*m.tp_src);
  }
  if (m.tp_dst) {
    oxm_header(w, udp ? udp_dst : tcp_dst, 2);
    w.u16(*m.tp_dst);
  }

  w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size() - start));
  pad_to_8(w, start);
}

namespace {

int mask_to_prefix(std::uint32_t mask) {
  int bits = 0;
  while (mask & 0x80000000u) {
    ++bits;
    mask <<= 1;
  }
  return mask == 0 ? bits : -1;  // -1: non-contiguous (rejected)
}

}  // namespace

Result<Match> decode_match(BufReader& r) {
  std::size_t start_pos = r.pos();
  std::uint16_t type = r.u16();
  std::uint16_t total_len = r.u16();
  if (!r.ok() || type != 1 || total_len < 4) return Errc::protocol_error;
  BufReader fields = r.sub(total_len - 4);
  if (!r.ok()) return Errc::protocol_error;
  // Consume pad to 8.
  std::size_t consumed = r.pos() - start_pos;
  r.skip((8 - consumed % 8) % 8);

  Match m;
  while (fields.remaining() >= 4) {
    std::uint16_t oxm_class = fields.u16();
    std::uint8_t field_hm = fields.u8();
    std::uint8_t len = fields.u8();
    BufReader value = fields.sub(len);
    if (!fields.ok()) return Errc::protocol_error;
    if (oxm_class != kOpenFlowBasic) continue;  // skip experimenter fields
    Field field = static_cast<Field>(field_hm >> 1);
    bool has_mask = field_hm & 1;
    switch (field) {
      case in_port:
        m.in_port = port_from_of13(value.u32());
        break;
      case eth_dst:
      case eth_src: {
        std::array<std::uint8_t, 6> b{};
        value.bytes(b);
        if (field == eth_dst)
          m.dl_dst = MacAddress(b);
        else
          m.dl_src = MacAddress(b);
        break;
      }
      case eth_type:
        m.dl_type = value.u16();
        break;
      case vlan_vid: {
        std::uint16_t vid = value.u16();
        m.dl_vlan = (vid & kVidPresent) ? (vid & 0x0fff) : 0xffff;
        break;
      }
      case vlan_pcp:
        m.dl_vlan_pcp = value.u8();
        break;
      case ip_dscp:
        m.nw_tos = static_cast<std::uint8_t>(value.u8() << 2);
        break;
      case ip_proto:
        m.nw_proto = value.u8();
        break;
      case ipv4_src:
      case ipv4_dst: {
        std::uint32_t addr = value.u32();
        int prefix = 32;
        if (has_mask) {
          prefix = mask_to_prefix(value.u32());
          if (prefix < 0) return Errc::protocol_error;
        }
        Cidr cidr(Ipv4Address(addr), prefix);
        if (field == ipv4_src)
          m.nw_src = cidr;
        else
          m.nw_dst = cidr;
        break;
      }
      case tcp_src:
      case udp_src:
        m.tp_src = value.u16();
        break;
      case tcp_dst:
      case udp_dst:
        m.tp_dst = value.u16();
        break;
      default:
        break;  // tolerate unknown basic fields
    }
    if (!value.ok()) return Errc::protocol_error;
  }
  return m;
}

Result<std::uint16_t> encode_actions(BufWriter& w,
                                     const std::vector<Action>& actions) {
  std::size_t start = w.size();
  for (const auto& a : actions) {
    switch (a.kind) {
      case ActionKind::output:
        w.u16(kOutput);
        w.u16(16);
        w.u32(port_to_of13(a.port()));
        w.u16(0xffff);  // max_len
        w.zeros(6);
        break;
      case ActionKind::set_vlan:
        // 1.3 models VLAN id rewrite as push (if untagged) + set-field;
        // we emit push_vlan followed by set_field(VLAN_VID), the common
        // controller idiom.
        w.u16(kPushVlan);
        w.u16(8);
        w.u16(0x8100);
        w.zeros(2);
        set_field_action(
            w, vlan_vid,
            [&] { w.u16(static_cast<std::uint16_t>(kVidPresent | a.port())); },
            2);
        break;
      case ActionKind::strip_vlan:
        w.u16(kPopVlan);
        w.u16(8);
        w.zeros(4);
        break;
      case ActionKind::set_dl_src:
        set_field_action(w, eth_src, [&] { w.bytes(a.mac().bytes()); }, 6);
        break;
      case ActionKind::set_dl_dst:
        set_field_action(w, eth_dst, [&] { w.bytes(a.mac().bytes()); }, 6);
        break;
      case ActionKind::set_nw_src:
        set_field_action(w, ipv4_src, [&] { w.u32(a.ip().value()); }, 4);
        break;
      case ActionKind::set_nw_dst:
        set_field_action(w, ipv4_dst, [&] { w.u32(a.ip().value()); }, 4);
        break;
      case ActionKind::set_nw_tos:
        set_field_action(
            w, ip_dscp,
            [&] { w.u8(static_cast<std::uint8_t>(
                      std::get<std::uint8_t>(a.value) >> 2)); },
            1);
        break;
      case ActionKind::set_tp_src:
        set_field_action(w, tcp_src, [&] { w.u16(a.port()); }, 2);
        break;
      case ActionKind::set_tp_dst:
        set_field_action(w, tcp_dst, [&] { w.u16(a.port()); }, 2);
        break;
      case ActionKind::enqueue: {
        std::uint32_t packed = std::get<std::uint32_t>(a.value);
        w.u16(kSetQueue);
        w.u16(8);
        w.u32(packed & 0xffff);
        // Follow with the output to the port half.
        w.u16(kOutput);
        w.u16(16);
        w.u32(port_to_of13(static_cast<std::uint16_t>(packed >> 16)));
        w.u16(0xffff);
        w.zeros(6);
        break;
      }
      case ActionKind::drop:
        break;  // drop = no actions
    }
  }
  return static_cast<std::uint16_t>(w.size() - start);
}

Result<std::vector<Action>> decode_actions(BufReader& r,
                                           std::size_t byte_len) {
  BufReader body = r.sub(byte_len);
  if (!r.ok()) return Errc::protocol_error;
  std::vector<Action> out;
  std::optional<std::uint16_t> pending_queue;
  while (body.remaining() >= 4) {
    std::uint16_t type = body.u16();
    std::uint16_t len = body.u16();
    if (len < 4 || static_cast<std::size_t>(len - 4) > body.remaining()) return Errc::protocol_error;
    BufReader payload = body.sub(len - 4);
    switch (type) {
      case kOutput: {
        std::uint16_t port = port_from_of13(payload.u32());
        if (pending_queue) {
          out.push_back(Action{
              ActionKind::enqueue,
              static_cast<std::uint32_t>((static_cast<std::uint32_t>(port)
                                          << 16) |
                                         *pending_queue)});
          pending_queue.reset();
        } else {
          out.push_back(Action::output(port));
        }
        break;
      }
      case kSetQueue:
        pending_queue = static_cast<std::uint16_t>(payload.u32() & 0xffff);
        break;
      case kPushVlan:
        break;  // folded into the following set_field(VLAN_VID)
      case kPopVlan:
        out.push_back(Action{ActionKind::strip_vlan, std::monostate{}});
        break;
      case kSetField: {
        std::uint16_t oxm_class = payload.u16();
        std::uint8_t field_hm = payload.u8();
        std::uint8_t vlen = payload.u8();
        (void)vlen;
        if (oxm_class != kOpenFlowBasic) break;
        switch (static_cast<Field>(field_hm >> 1)) {
          case vlan_vid:
            out.push_back(Action{
                ActionKind::set_vlan,
                static_cast<std::uint16_t>(payload.u16() & 0x0fff)});
            break;
          case eth_src:
          case eth_dst: {
            std::array<std::uint8_t, 6> b{};
            payload.bytes(b);
            out.push_back(
                Action{(field_hm >> 1) == eth_src ? ActionKind::set_dl_src
                                                  : ActionKind::set_dl_dst,
                       MacAddress(b)});
            break;
          }
          case ipv4_src:
          case ipv4_dst:
            out.push_back(Action{(field_hm >> 1) == ipv4_src
                                     ? ActionKind::set_nw_src
                                     : ActionKind::set_nw_dst,
                                 Ipv4Address(payload.u32())});
            break;
          case ip_dscp:
            out.push_back(Action{
                ActionKind::set_nw_tos,
                static_cast<std::uint8_t>(payload.u8() << 2)});
            break;
          case tcp_src:
          case udp_src:
            out.push_back(Action{ActionKind::set_tp_src, payload.u16()});
            break;
          case tcp_dst:
          case udp_dst:
            out.push_back(Action{ActionKind::set_tp_dst, payload.u16()});
            break;
          default:
            break;
        }
        break;
      }
      default:
        return Errc::protocol_error;
    }
    if (!payload.ok()) return Errc::protocol_error;
  }
  return out;
}

Result<std::uint16_t> encode_instructions(BufWriter& w,
                                          const std::vector<Action>& actions,
                                          int goto_table) {
  std::size_t start = w.size();
  {
    std::size_t instr_start = w.size();
    w.u16(kApplyActions);
    std::size_t len_pos = w.size();
    w.u16(0);
    w.zeros(4);
    auto alen = encode_actions(w, actions);
    if (!alen) return alen.error();
    w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size() - instr_start));
  }
  if (goto_table >= 0) {
    w.u16(kGotoTable);
    w.u16(8);
    w.u8(static_cast<std::uint8_t>(goto_table));
    w.zeros(3);
  }
  return static_cast<std::uint16_t>(w.size() - start);
}

Result<std::vector<Action>> decode_instructions(BufReader& r,
                                                std::size_t byte_len,
                                                int* goto_table) {
  if (goto_table) *goto_table = -1;
  BufReader body = r.sub(byte_len);
  if (!r.ok()) return Errc::protocol_error;
  std::vector<Action> out;
  while (body.remaining() >= 4) {
    std::uint16_t type = body.u16();
    std::uint16_t len = body.u16();
    if (len < 4 || static_cast<std::size_t>(len - 4) > body.remaining()) return Errc::protocol_error;
    BufReader payload = body.sub(len - 4);
    if (type == kApplyActions) {
      payload.skip(4);  // pad
      auto actions = decode_actions(payload, payload.remaining());
      if (!actions) return actions.error();
      out.insert(out.end(), actions->begin(), actions->end());
    } else if (type == kGotoTable) {
      std::uint8_t table = payload.u8();
      if (goto_table) *goto_table = table;
    }
    // Other instruction kinds tolerated and ignored.
  }
  return out;
}

void encode_port(BufWriter& w, const PortDesc& port) {
  w.u32(port_to_of13(port.port_no));
  w.zeros(4);
  w.bytes(port.hw_addr.bytes());
  w.zeros(2);
  w.padded_string(port.name, 16);
  std::uint32_t config = port.port_down ? 1u : 0u;
  w.u32(config);
  w.u32(port.link_down ? 1u : 0u);
  w.u32(1u << 6);  // curr features
  w.u32(1u << 6);  // advertised
  w.u32(1u << 6);  // supported
  w.u32(1u << 6);  // peer
  w.u32(port.curr_speed_kbps);
  w.u32(port.max_speed_kbps);
}

Result<PortDesc> decode_port(BufReader& r) {
  PortDesc port;
  port.port_no = port_from_of13(r.u32());
  r.skip(4);
  std::array<std::uint8_t, 6> mac{};
  r.bytes(mac);
  port.hw_addr = MacAddress(mac);
  r.skip(2);
  port.name = r.padded_string(16);
  std::uint32_t config = r.u32();
  std::uint32_t state = r.u32();
  r.skip(16);
  port.curr_speed_kbps = r.u32();
  port.max_speed_kbps = r.u32();
  if (!r.ok()) return Errc::protocol_error;
  port.port_down = config & 1u;
  port.link_down = state & 1u;
  return port;
}

}  // namespace yanc::ofp::oxm
