// OpenFlow message model.
//
// Decoded, version-neutral representations of the control messages the
// yanc drivers (§4.1) exchange with switches.  The same Message value can
// be serialized as OpenFlow 1.0 or OpenFlow 1.3 wire bytes by the codec —
// that is precisely the paper's driver argument: protocol (and protocol
// version) differences live entirely inside thin drivers, while the file
// system above sees one model.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "yanc/flow/flowspec.hpp"
#include "yanc/util/result.hpp"

namespace yanc::ofp {

enum class Version : std::uint8_t {
  of10 = 0x01,
  of13 = 0x04,
};

std::string version_name(Version v);  // "1.0" / "1.3"

/// Message type ids (identical across 1.0/1.3 for everything we use,
/// except stats/multipart and barrier which the codec maps per version).
enum class MsgType : std::uint8_t {
  hello = 0,
  error = 1,
  echo_request = 2,
  echo_reply = 3,
  features_request = 5,
  features_reply = 6,
  packet_in = 10,
  flow_removed = 11,
  port_status = 12,
  packet_out = 13,
  flow_mod = 14,
  stats_request = 16,  // OF1.3: multipart_request (18); codec translates
  stats_reply = 17,    // OF1.3: multipart_reply (19)
  barrier_request = 18,  // OF1.3: 20
  barrier_reply = 19,    // OF1.3: 21
};

struct Header {
  Version version = Version::of10;
  std::uint8_t type = 0;
  std::uint16_t length = 0;
  std::uint32_t xid = 0;
};
inline constexpr std::size_t kHeaderSize = 8;

/// No buffered packet (OFP_NO_BUFFER).
inline constexpr std::uint32_t kNoBuffer = 0xffffffff;

// --- payloads --------------------------------------------------------------

struct Hello {};

struct Error {
  std::uint16_t type = 0;
  std::uint16_t code = 0;
  std::vector<std::uint8_t> data;  // first bytes of the offending message
};

struct EchoRequest {
  std::vector<std::uint8_t> data;
};
struct EchoReply {
  std::vector<std::uint8_t> data;
};

struct FeaturesRequest {};

/// Port description — ofp_phy_port (1.0) / ofp_port (1.3).
struct PortDesc {
  std::uint16_t port_no = 0;
  MacAddress hw_addr;
  std::string name;
  bool port_down = false;  // config: administratively down
  bool no_flood = false;   // config (1.0 only on the wire)
  bool link_down = false;  // state
  std::uint32_t curr_speed_kbps = 10'000'000;
  std::uint32_t max_speed_kbps = 10'000'000;

  bool operator==(const PortDesc&) const = default;
};

struct FeaturesReply {
  std::uint64_t datapath_id = 0;
  std::uint32_t n_buffers = 0;
  std::uint8_t n_tables = 1;
  std::uint32_t capabilities = 0;
  std::uint32_t actions = 0;  // 1.0 only
  /// 1.0 carries ports in the features reply; 1.3 reports them via the
  /// port-desc multipart instead.  The decoded model always uses this
  /// field; the codec puts them where each version wants them.
  std::vector<PortDesc> ports;
};

struct FlowMod {
  enum class Command : std::uint8_t {
    add = 0,
    modify = 1,
    modify_strict = 2,
    remove = 3,
    remove_strict = 4,
  };
  Command command = Command::add;
  flow::FlowSpec spec;
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t out_port = 0xffff;  // filter for delete commands
  std::uint16_t flags = 0;          // OFPFF_SEND_FLOW_REM = 1
};
inline constexpr std::uint16_t kFlagSendFlowRemoved = 1;

struct PacketIn {
  enum class Reason : std::uint8_t { no_match = 0, action = 1 };
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t total_len = 0;
  std::uint16_t in_port = 0;
  Reason reason = Reason::no_match;
  std::uint8_t table_id = 0;  // 1.3 only
  std::vector<std::uint8_t> data;
};

struct PacketOut {
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t in_port = 0xfff8;  // OFPP_CONTROLLER semantics: none
  std::vector<flow::Action> actions;
  std::vector<std::uint8_t> data;  // used when buffer_id == kNoBuffer
};

struct PortStatus {
  enum class Reason : std::uint8_t { add = 0, remove = 1, modify = 2 };
  Reason reason = Reason::add;
  PortDesc desc;
};

struct FlowRemoved {
  enum class Reason : std::uint8_t {
    idle_timeout = 0,
    hard_timeout = 1,
    removed = 2,
  };
  flow::Match match;
  std::uint64_t cookie = 0;
  std::uint16_t priority = 0;
  Reason reason = Reason::idle_timeout;
  std::uint8_t table_id = 0;
  std::uint32_t duration_sec = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

/// Stats (1.0) / multipart (1.3).
enum class StatsKind : std::uint16_t {
  desc = 0,
  flow = 1,
  port = 4,
  queue = 5,       // wire id 5 under 1.0, 9 under 1.3 (codec maps)
  port_desc = 13,  // 1.3 only on the wire; 1.0 answers from features
};

struct StatsRequest {
  StatsKind kind = StatsKind::desc;
  // flow stats filter:
  flow::Match match;
  std::uint8_t table_id = 0xff;  // all tables
  // port stats filter (also used by queue stats):
  std::uint16_t port_no = 0xffff;  // all ports
  // queue stats filter:
  std::uint32_t queue_id = 0xffffffff;  // OFPQ_ALL
};

struct FlowStatsEntry {
  std::uint8_t table_id = 0;
  flow::FlowSpec spec;
  std::uint32_t duration_sec = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

struct PortStatsEntry {
  std::uint16_t port_no = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;
  std::uint64_t rx_errors = 0;
  std::uint64_t tx_errors = 0;
};

struct QueueStatsEntry {
  std::uint16_t port_no = 0;
  std::uint32_t queue_id = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_errors = 0;
};

struct StatsReply {
  StatsKind kind = StatsKind::desc;
  // desc:
  std::string manufacturer, hw_desc, sw_desc, serial, dp_desc;
  // flow:
  std::vector<FlowStatsEntry> flows;
  // port:
  std::vector<PortStatsEntry> ports;
  // queue:
  std::vector<QueueStatsEntry> queues;
  // port_desc:
  std::vector<PortDesc> port_descs;
};

struct BarrierRequest {};
struct BarrierReply {};

/// Port configuration change (how the driver propagates a write to
/// config.port_down, §3.1).
struct PortMod {
  std::uint16_t port_no = 0;
  MacAddress hw_addr;
  bool port_down = false;
  bool no_flood = false;
};

using Message =
    std::variant<Hello, Error, EchoRequest, EchoReply, FeaturesRequest,
                 FeaturesReply, FlowMod, PacketIn, PacketOut, PortStatus,
                 FlowRemoved, StatsRequest, StatsReply, BarrierRequest,
                 BarrierReply, PortMod>;

/// Human-readable name of the active alternative ("flow_mod", ...).
std::string message_name(const Message& m);

}  // namespace yanc::ofp
