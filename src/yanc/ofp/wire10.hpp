// OpenFlow 1.0 wire building blocks: the 40-byte ofp_match, the action
// list encoding, and the 48-byte ofp_phy_port.  Used by the codec; exposed
// for the wire-level tests.
#pragma once

#include "yanc/ofp/messages.hpp"
#include "yanc/util/bytes.hpp"

namespace yanc::ofp::wire10 {

inline constexpr std::size_t kMatchSize = 40;
inline constexpr std::size_t kPhyPortSize = 48;

// ofp_flow_wildcards bits.
namespace wildcard {
inline constexpr std::uint32_t in_port = 1u << 0;
inline constexpr std::uint32_t dl_vlan = 1u << 1;
inline constexpr std::uint32_t dl_src = 1u << 2;
inline constexpr std::uint32_t dl_dst = 1u << 3;
inline constexpr std::uint32_t dl_type = 1u << 4;
inline constexpr std::uint32_t nw_proto = 1u << 5;
inline constexpr std::uint32_t tp_src = 1u << 6;
inline constexpr std::uint32_t tp_dst = 1u << 7;
inline constexpr int nw_src_shift = 8;   // 6-bit "ignored bits" count
inline constexpr int nw_dst_shift = 14;
inline constexpr std::uint32_t dl_vlan_pcp = 1u << 20;
inline constexpr std::uint32_t nw_tos = 1u << 21;
inline constexpr std::uint32_t all = 0x3fffff;
}  // namespace wildcard

void encode_match(BufWriter& w, const flow::Match& match);
Result<flow::Match> decode_match(BufReader& r);

/// Encodes an action list; returns its byte length.
Result<std::uint16_t> encode_actions(BufWriter& w,
                                     const std::vector<flow::Action>& actions);
Result<std::vector<flow::Action>> decode_actions(BufReader& r,
                                                 std::size_t byte_len);

void encode_phy_port(BufWriter& w, const PortDesc& port);
Result<PortDesc> decode_phy_port(BufReader& r);

}  // namespace yanc::ofp::wire10
