#include "yanc/topo/graph.hpp"

#include <algorithm>
#include <deque>

#include "yanc/util/strings.hpp"

namespace yanc::topo {

std::string PortRef::path(const std::string& net_root) const {
  return net_root + "/switches/" + switch_name + "/ports/" +
         std::to_string(port_no);
}

std::optional<PortRef> PortRef::from_path(std::string_view path) {
  auto comps = split_nonempty(path, '/');
  // ... switches <sw> ports <port>
  if (comps.size() < 4) return std::nullopt;
  std::size_t n = comps.size();
  if (comps[n - 2] != "ports" || comps[n - 4] != "switches")
    return std::nullopt;
  auto port = parse_u64(comps[n - 1]);
  if (!port || *port > 0xffff) return std::nullopt;
  return PortRef{comps[n - 3], static_cast<std::uint16_t>(*port)};
}

void Graph::add_link(const PortRef& a, const PortRef& b) {
  adjacency_[a.switch_name][a.port_no] = b;
  adjacency_[b.switch_name][b.port_no] = a;
  links_.push_back(Link{a, b});
}

void Graph::add_host(HostAttachment host) {
  adjacency_[host.location.switch_name];
  hosts_.push_back(std::move(host));
}

std::vector<std::string> Graph::switch_names() const {
  std::vector<std::string> names;
  names.reserve(adjacency_.size());
  for (const auto& [name, edges] : adjacency_) names.push_back(name);
  return names;
}

const HostAttachment* Graph::find_host(const MacAddress& mac) const {
  for (const auto& h : hosts_)
    if (h.mac == mac) return &h;
  return nullptr;
}

const HostAttachment* Graph::find_host(const Ipv4Address& ip) const {
  for (const auto& h : hosts_)
    if (h.ip == ip) return &h;
  return nullptr;
}

std::optional<Path> Graph::shortest_path(const std::string& from,
                                         const std::string& to) const {
  if (!adjacency_.count(from) || !adjacency_.count(to)) return std::nullopt;
  if (from == to) return Path{};

  // BFS over switches; remember the (switch, egress port) that discovered
  // each node so the hop list can be reconstructed.
  std::map<std::string, PortRef> discovered_via;
  std::deque<std::string> frontier{from};
  std::map<std::string, std::string> parent;
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    auto edges = adjacency_.find(current);
    if (edges == adjacency_.end()) continue;
    for (const auto& [port, peer] : edges->second) {
      const std::string& next = peer.switch_name;
      if (next == from || parent.count(next)) continue;
      parent[next] = current;
      discovered_via[next] = PortRef{current, port};
      if (next == to) {
        // Walk back to build the hop list.
        Path path;
        std::string node = to;
        while (node != from) {
          path.push_back(discovered_via[node]);
          node = parent[node];
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

std::optional<Path> Graph::host_path(const HostAttachment& src,
                                     const HostAttachment& dst) const {
  auto inter = shortest_path(src.location.switch_name,
                             dst.location.switch_name);
  if (!inter) return std::nullopt;
  Path path = *inter;
  // The final hop delivers to the destination host's port.
  path.push_back(dst.location);
  return path;
}

Result<Graph> read_topology(vfs::Vfs& vfs, const std::string& net_root,
                            const vfs::Credentials& creds) {
  Graph graph;
  auto switches = vfs.readdir(net_root + "/switches", creds);
  if (!switches) return switches.error();

  for (const auto& sw : *switches) {
    if (sw.type != vfs::FileType::directory) continue;
    graph.add_switch(sw.name);
    std::string ports_dir = net_root + "/switches/" + sw.name + "/ports";
    auto ports = vfs.readdir(ports_dir, creds);
    if (!ports) continue;
    for (const auto& port : *ports) {
      auto target = vfs.readlink(ports_dir + "/" + port.name + "/peer",
                                 creds);
      if (!target) continue;
      auto peer = PortRef::from_path(*target);
      auto port_no = parse_u64(port.name);
      if (!peer || !port_no) continue;
      PortRef self{sw.name, static_cast<std::uint16_t>(*port_no)};
      // Each link appears twice (once per direction); record it when seen
      // from its lexicographically smaller end to avoid duplicates, but
      // trust a one-sided link too (discovery may be half done).
      if (self < *peer || !vfs.readlink(peer->path(net_root) + "/peer",
                                        creds))
        graph.add_link(self, *peer);
    }
  }

  auto hosts = vfs.readdir(net_root + "/hosts", creds);
  if (hosts) {
    for (const auto& h : *hosts) {
      if (h.type != vfs::FileType::directory) continue;
      std::string host_dir = net_root + "/hosts/" + h.name;
      auto mac_text = vfs.read_file(host_dir + "/mac", creds);
      auto ip_text = vfs.read_file(host_dir + "/ip", creds);
      auto loc = vfs.readlink(host_dir + "/location", creds);
      if (!mac_text || !ip_text || !loc) continue;
      auto mac = MacAddress::parse(trim(*mac_text));
      auto ip = Ipv4Address::parse(trim(*ip_text));
      auto port = PortRef::from_path(*loc);
      if (!mac || !ip || !port) continue;
      graph.add_host(HostAttachment{h.name, *mac, *ip, *port});
    }
  }
  return graph;
}

}  // namespace yanc::topo
