// The topology discovery daemon (§4.3): "A topology application will
// handle LLDP messages for discovery and create symbolic links which
// connect source to destination ports."
//
// Pure yanc application: it talks to the network exclusively through the
// file system — packet_out/ directories to emit LLDP probes, an events/
// buffer to receive LLDP packet-ins, and peer symlinks as its output.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "yanc/netfs/handles.hpp"
#include "yanc/topo/graph.hpp"

namespace yanc::topo {

struct DiscoveryOptions {
  std::string net_root = "/net";
  std::string app_name = "topology";
  /// Link is forgotten when not re-confirmed within this many ns.
  std::uint64_t link_ttl_ns = 10'000'000'000ull;  // 10 s
};

class DiscoveryDaemon {
 public:
  DiscoveryDaemon(std::shared_ptr<vfs::Vfs> vfs,
                  DiscoveryOptions options = {});

  /// One duty cycle at virtual time `now_ns`: floods LLDP probes out of
  /// every switch port, consumes received LLDP packet-ins into peer
  /// symlinks, and expires stale links.  Returns links currently known.
  Result<std::size_t> step(std::uint64_t now_ns);

  /// Only consume pending packet-ins (no new probes).
  Result<std::size_t> consume(std::uint64_t now_ns);

  std::size_t known_links() const noexcept { return last_seen_.size(); }

 private:
  Status send_probes();
  Status record_link(const PortRef& src, const PortRef& dst,
                     std::uint64_t now_ns);
  void expire_links(std::uint64_t now_ns);

  std::shared_ptr<vfs::Vfs> vfs_;
  DiscoveryOptions options_;
  std::optional<netfs::EventBufferHandle> events_;
  std::uint64_t next_probe_ = 1;
  // Directed link (src -> dst) -> last confirmation time.
  std::map<std::pair<PortRef, PortRef>, std::uint64_t> last_seen_;
};

}  // namespace yanc::topo
