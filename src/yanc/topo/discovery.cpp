#include "yanc/topo/discovery.hpp"

#include "yanc/net/packet.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::topo {

DiscoveryDaemon::DiscoveryDaemon(std::shared_ptr<vfs::Vfs> vfs,
                                 DiscoveryOptions options)
    : vfs_(std::move(vfs)), options_(std::move(options)) {}

Result<std::size_t> DiscoveryDaemon::step(std::uint64_t now_ns) {
  if (auto ec = send_probes(); ec) return ec;
  return consume(now_ns);
}

Status DiscoveryDaemon::send_probes() {
  netfs::NetDir net(vfs_, options_.net_root);
  auto switches = net.switch_names();
  if (!switches) return switches.error();
  for (const auto& sw_name : *switches) {
    auto sw = net.switch_at(sw_name);
    auto ports = sw.port_names();
    if (!ports) continue;
    for (const auto& port_name : *ports) {
      // LLDP chassis/port identify the *sender* so the receiver learns the
      // remote end of the link.
      auto frame = net::build_lldp(sw_name, port_name);
      std::string dir = sw.path() + "/packet_out/lldp_" +
                        std::to_string(next_probe_++);
      if (auto ec = vfs_->mkdir(dir); ec) continue;
      (void)vfs_->write_file(dir + "/out", port_name);
      (void)vfs_->write_file(
          dir + "/data",
          std::string_view(reinterpret_cast<const char*>(frame.data()),
                           frame.size()));
      (void)vfs_->write_file(dir + "/send", "1");
    }
  }
  return ok_status();
}

Result<std::size_t> DiscoveryDaemon::consume(std::uint64_t now_ns) {
  if (!events_) {
    netfs::NetDir net(vfs_, options_.net_root);
    auto buf = net.open_events(options_.app_name);
    if (!buf) return buf.error();
    events_ = *buf;
  }
  auto pending = events_->drain();
  if (!pending) return pending.error();
  for (const auto& pkt : *pending) {
    net::Frame frame(pkt.data.begin(), pkt.data.end());
    auto lldp = net::parse_lldp(frame);
    if (!lldp) continue;  // not ours
    auto src_port = parse_u64(lldp->port_id);
    if (!src_port || *src_port > 0xffff) continue;
    PortRef src{lldp->chassis_id, static_cast<std::uint16_t>(*src_port)};
    PortRef dst{pkt.datapath, pkt.in_port};
    if (auto ec = record_link(src, dst, now_ns); ec) continue;
  }
  expire_links(now_ns);
  return last_seen_.size();
}

Status DiscoveryDaemon::record_link(const PortRef& src, const PortRef& dst,
                                    std::uint64_t now_ns) {
  last_seen_[{src, dst}] = now_ns;
  // The probe travelled src -> dst, so dst's peer is src (and the reverse
  // probe will set the other direction).
  std::string link_path = dst.path(options_.net_root) + "/peer";
  std::string target = src.path(options_.net_root);
  auto current = vfs_->readlink(link_path);
  if (current && *current == target) return ok_status();
  (void)vfs_->unlink(link_path);
  return vfs_->symlink(target, link_path);
}

void DiscoveryDaemon::expire_links(std::uint64_t now_ns) {
  for (auto it = last_seen_.begin(); it != last_seen_.end();) {
    if (now_ns - it->second > options_.link_ttl_ns) {
      const auto& [src, dst] = it->first;
      (void)vfs_->unlink(dst.path(options_.net_root) + "/peer");
      it = last_seen_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace yanc::topo
