// Network topology as read from the yanc file system (§3.3, §4.3).
//
// Topology is not a separate database: it *is* the peer symlinks between
// port directories, plus host location links.  This module parses that
// representation into a graph and computes paths for applications like the
// reactive router.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "yanc/util/net_types.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::topo {

/// One end of a link: (switch directory name, port number).
struct PortRef {
  std::string switch_name;
  std::uint16_t port_no = 0;

  auto operator<=>(const PortRef&) const = default;

  /// The port's directory path under `net_root`.
  std::string path(const std::string& net_root) const;
  /// Parses ".../switches/<sw>/ports/<port>" (absolute or relative).
  static std::optional<PortRef> from_path(std::string_view path);
};

/// A bidirectional switch-to-switch link.
struct Link {
  PortRef a, b;
};

/// A host attachment: host name -> the port it hangs off.
struct HostAttachment {
  std::string host_name;
  MacAddress mac;
  Ipv4Address ip;
  PortRef location;
};

/// One forwarding hop: leave `via.switch_name` through port `via.port_no`.
using Path = std::vector<PortRef>;

class Graph {
 public:
  void add_switch(const std::string& name) { adjacency_[name]; }
  void add_link(const PortRef& a, const PortRef& b);
  void add_host(HostAttachment host);

  const std::vector<Link>& links() const noexcept { return links_; }
  const std::vector<HostAttachment>& hosts() const noexcept {
    return hosts_;
  }
  std::vector<std::string> switch_names() const;
  bool has_switch(const std::string& name) const {
    return adjacency_.count(name) != 0;
  }

  /// Host lookup by MAC / IP.
  const HostAttachment* find_host(const MacAddress& mac) const;
  const HostAttachment* find_host(const Ipv4Address& ip) const;

  /// Shortest path (hop count, BFS) from one switch to another.  The
  /// result lists the egress port per switch; empty when from == to;
  /// nullopt when unreachable.
  std::optional<Path> shortest_path(const std::string& from,
                                    const std::string& to) const;

  /// Full forwarding path between two attached hosts: egress ports on
  /// every switch from src's switch to dst's, ending with dst's port.
  std::optional<Path> host_path(const HostAttachment& src,
                                const HostAttachment& dst) const;

 private:
  // switch -> (egress port -> peer)
  std::map<std::string, std::map<std::uint16_t, PortRef>> adjacency_;
  std::vector<Link> links_;
  std::vector<HostAttachment> hosts_;
};

/// Builds the graph from the FS: switch dirs, peer symlinks, host
/// locations.
Result<Graph> read_topology(vfs::Vfs& vfs, const std::string& net_root = "/net",
                            const vfs::Credentials& creds = {});

}  // namespace yanc::topo
