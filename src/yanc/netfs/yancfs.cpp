#include "yanc/netfs/yancfs.hpp"

#include "yanc/util/strings.hpp"

namespace yanc::netfs {

using vfs::Credentials;
using vfs::NodeId;

YancFs::YancFs(vfs::MemFsOptions options) : MemFs(options) {
  MutationScope scope(*this);
  dir_specs_[root()] = &root_spec();
  populate_locked(root(), root_spec(), Credentials::root());
}

const ObjectSpec* YancFs::spec_of(NodeId node) const {
  dbg::SharedLock lock(mu_);
  auto it = dir_specs_.find(node);
  return it == dir_specs_.end() ? nullptr : it->second;
}

void YancFs::populate_locked(NodeId node, const ObjectSpec& spec,
                             const Credentials& creds) {
  for (const auto& fd : spec.fixed_dirs) {
    // mkdir_locked fires on_mkdir, which registers the child's spec and
    // recursively populates it.
    (void)mkdir_locked(node, fd.name, 0755, creds);
  }
  for (const auto& f : spec.files) {
    if (!f.default_value) continue;
    auto id = create_locked(node, f.name, 0644, creds);
    if (!id) continue;
    file_specs_[*id] = &f;
    (void)write_locked(*id, 0, f.default_value, creds);
  }
}

void YancFs::on_mkdir(NodeId node, NodeId parent, const std::string& name,
                      const Credentials& creds) {
  auto parent_it = dir_specs_.find(parent);
  if (parent_it == dir_specs_.end()) return;  // plain directory territory
  const ObjectSpec* parent_spec = parent_it->second;

  for (const auto& fd : parent_spec->fixed_dirs) {
    if (name == fd.name) {
      dir_specs_[node] = fd.spec;
      fixed_nodes_[node] = true;
      populate_locked(node, *fd.spec, creds);
      return;
    }
  }
  // Hidden subtrees are plain directory territory: no spec, no
  // auto-population, free-form files below.
  if (parent_spec->allow_hidden && !name.empty() && name[0] == '.') return;
  if (parent_spec->mkdir_child) {
    dir_specs_[node] = parent_spec->mkdir_child;
    populate_locked(node, *parent_spec->mkdir_child, creds);
  }
}

Result<NodeId> YancFs::mkdir(NodeId parent, const std::string& name,
                             std::uint32_t mode, const Credentials& creds) {
  MutationScope scope(*this);
  auto it = dir_specs_.find(parent);
  if (it != dir_specs_.end()) {
    const ObjectSpec* spec = it->second;
    bool is_fixed_name = false;
    for (const auto& fd : spec->fixed_dirs)
      if (name == fd.name) is_fixed_name = true;
    bool hidden = spec->allow_hidden && !name.empty() && name[0] == '.';
    // Only collections admit new objects; recreating a (deleted) fixed dir
    // is also allowed so the schema can be repaired, and specs with
    // allow_hidden admit dot-prefixed plain subtrees (/net/.cluster).
    if (!spec->mkdir_child && !is_fixed_name && !hidden)
      return Errc::not_permitted;
  }
  return mkdir_locked(parent, name, mode, creds);
}

Result<NodeId> YancFs::create(NodeId parent, const std::string& name,
                              std::uint32_t mode, const Credentials& creds) {
  MutationScope scope(*this);
  auto it = dir_specs_.find(parent);
  const FileSpec* fspec = nullptr;
  if (it != dir_specs_.end()) {
    const ObjectSpec* spec = it->second;
    fspec = spec->find_file(name);
    if (!fspec && spec->strict_files) return Errc::not_permitted;
  }
  auto id = create_locked(parent, name, mode, creds);
  if (id && fspec) file_specs_[*id] = fspec;
  return id;
}

void YancFs::bind_metrics(obs::Registry& registry) {
  typed_write_metric_ = registry.counter("netfs/typed_write_total");
  validation_fail_metric_ = registry.counter("netfs/validation_fail_total");
}

Status YancFs::on_write(NodeId node, const std::string& content) {
  auto it = file_specs_.find(node);
  if (it == file_specs_.end()) return ok_status();
  if (typed_write_metric_) typed_write_metric_->add();
  // Empty content is always acceptable: O_TRUNC makes every write-file
  // sequence pass through the empty state (echo x > file truncates first).
  // Readers treat an empty typed file as unset.
  if (content.empty()) return ok_status();
  auto ec = validate_field(it->second->type, content);
  if (ec && validation_fail_metric_) validation_fail_metric_->add();
  return ec;
}

bool YancFs::rmdir_recursive_allowed(NodeId node) {
  auto it = dir_specs_.find(node);
  return it != dir_specs_.end() && it->second->recursive_rmdir;
}

Status YancFs::rmdir(NodeId parent, const std::string& name,
                     const Credentials& creds) {
  MutationScope scope(*this);
  auto victim = lookup_locked(parent, name);
  if (victim && is_fixed_dir(*victim))
    return make_error_code(Errc::not_permitted);
  return rmdir_locked(parent, name, creds);
}

Status YancFs::unlink(NodeId parent, const std::string& name,
                      const Credentials& creds) {
  MutationScope scope(*this);
  // Files are always removable: deleting a match.* file widens the flow to
  // a wildcard (§3.4); deleting an auto-created file reverts it to its
  // schema default on the next read.
  return unlink_locked(parent, name, creds);
}

Status YancFs::rename(NodeId old_parent, const std::string& old_name,
                      NodeId new_parent, const std::string& new_name,
                      const Credentials& creds) {
  MutationScope scope(*this);
  auto moving = lookup_locked(old_parent, old_name);
  if (moving) {
    if (is_fixed_dir(*moving)) return make_error_code(Errc::not_permitted);
    // Typed files keep their meaning through their name; renaming one
    // would silently change its type, so forbid it.
    if (file_specs_.count(*moving))
      return make_error_code(Errc::not_permitted);
    // An object directory may only move into a place that accepts its
    // type (a switch stays among switches, a view among views, §3.2).
    auto spec_it = dir_specs_.find(*moving);
    if (spec_it != dir_specs_.end()) {
      auto dest_it = dir_specs_.find(new_parent);
      const ObjectSpec* accepts =
          dest_it == dir_specs_.end() ? nullptr : dest_it->second->mkdir_child;
      if (accepts != spec_it->second)
        return make_error_code(Errc::not_permitted);
    }
  }
  auto target = lookup_locked(new_parent, new_name);
  if (target && (is_fixed_dir(*target) || file_specs_.count(*target) ||
                 dir_specs_.count(*target)))
    // Never clobber schema objects implicitly; delete them first.
    return make_error_code(Errc::exists);
  return rename_locked(old_parent, old_name, new_parent, new_name, creds);
}

Status YancFs::on_symlink(NodeId parent, const std::string& name,
                          const std::string& target) {
  auto it = dir_specs_.find(parent);
  if (it == dir_specs_.end()) return ok_status();
  const ObjectSpec* spec = it->second;
  if (!spec->symlink_allowed(name))
    return make_error_code(Errc::not_permitted);
  // `peer` and `location` must point at a port: .../ports/<port> (§3.3).
  auto comps = split_nonempty(target, '/');
  if (comps.size() < 2 || comps[comps.size() - 2] != paths::ports)
    return make_error_code(Errc::invalid_argument);
  return ok_status();
}

void YancFs::on_remove_node(NodeId node) {
  dir_specs_.erase(node);
  file_specs_.erase(node);
  fixed_nodes_.erase(node);
}

Result<std::shared_ptr<YancFs>> mount_yanc_fs(vfs::Vfs& vfs,
                                              const std::string& mount_path) {
  auto fs = std::make_shared<YancFs>();
  fs->bind_metrics(*vfs.metrics());
  if (auto ec = vfs.mkdir_p(mount_path); ec) return ec;
  if (auto ec = vfs.mount(mount_path, fs); ec) return ec;
  return fs;
}

}  // namespace yanc::netfs
