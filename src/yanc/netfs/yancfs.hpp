// YancFs: the yanc file system (§3) — MemFs plus network-object semantics
// driven by the schema in schema.hpp.
//
// Behaviour beyond a plain filesystem:
//   * mkdir in a collection creates a fully-populated object: the paper's
//     "each directory which contains a list of objects automatically
//     creates an object of the appropriate type on mkdir()" (§3.1).
//     `mkdir views/new_view` therefore yields hosts/, switches/, views/
//     inside it.
//   * writes to typed files are validated atomically against the schema
//     (priority is a u16, match.nw_src takes CIDR, §3.4) — a bad value
//     never becomes visible.
//   * rmdir on an object is automatically recursive (§3.2); fixed schema
//     directories (ports/, flows/, counters/) cannot be removed or
//     renamed away.
//   * the `peer` symlink of a port may only point at another port (§3.3);
//     a host's `location` likewise.
//
// Typically constructed via make_yanc_root() and mounted at /net.
#pragma once

#include <unordered_map>

#include "yanc/netfs/schema.hpp"
#include "yanc/vfs/memfs.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::netfs {

class YancFs : public vfs::MemFs {
 public:
  explicit YancFs(vfs::MemFsOptions options = {});

  /// Object/collection spec governing a directory node (nullptr = plain).
  const ObjectSpec* spec_of(vfs::NodeId node) const;

  /// Registers netfs counters (typed writes, validation failures) in
  /// `registry`.  mount_yanc_fs wires this to the owning Vfs's registry.
  void bind_metrics(obs::Registry& registry);

  // Overridden namespace operations enforcing schema rules.
  Result<vfs::NodeId> mkdir(vfs::NodeId parent, const std::string& name,
                            std::uint32_t mode,
                            const vfs::Credentials& creds) override;
  Result<vfs::NodeId> create(vfs::NodeId parent, const std::string& name,
                             std::uint32_t mode,
                             const vfs::Credentials& creds) override;
  [[nodiscard]] Status rename(vfs::NodeId old_parent, const std::string& old_name,
                vfs::NodeId new_parent, const std::string& new_name,
                const vfs::Credentials& creds) override;
  [[nodiscard]] Status unlink(vfs::NodeId parent, const std::string& name,
                const vfs::Credentials& creds) override;
  [[nodiscard]] Status rmdir(vfs::NodeId parent, const std::string& name,
               const vfs::Credentials& creds) override;

 protected:
  [[nodiscard]] Status on_write(vfs::NodeId node, const std::string& content) override;
  void on_mkdir(vfs::NodeId node, vfs::NodeId parent, const std::string& name,
                const vfs::Credentials& creds) override;
  bool rmdir_recursive_allowed(vfs::NodeId node) override;
  [[nodiscard]] Status on_symlink(vfs::NodeId parent, const std::string& name,
                    const std::string& target) override;
  void on_remove_node(vfs::NodeId node) override;

 private:
  /// Creates the fixed dirs and default files of `spec` inside `node`.
  /// Called with mu_ held.
  void populate_locked(vfs::NodeId node, const ObjectSpec& spec,
                       const vfs::Credentials& creds);
  bool is_fixed_dir(vfs::NodeId node) const {
    return fixed_nodes_.count(node) != 0;
  }

  std::unordered_map<vfs::NodeId, const ObjectSpec*> dir_specs_;
  std::unordered_map<vfs::NodeId, const FileSpec*> file_specs_;
  std::unordered_map<vfs::NodeId, bool> fixed_nodes_;  // schema-owned dirs
  obs::Counter* typed_write_metric_ = nullptr;
  obs::Counter* validation_fail_metric_ = nullptr;
};

/// Creates a YancFs and mounts it at `mount_path` (default "/net").
/// Returns the filesystem so callers can also reach it directly.
Result<std::shared_ptr<YancFs>> mount_yanc_fs(vfs::Vfs& vfs,
                                              const std::string& mount_path =
                                                  "/net");

}  // namespace yanc::netfs
