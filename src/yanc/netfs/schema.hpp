// The yanc file-system schema: the declarative description of the /net
// hierarchy from Figures 2 and 3 of the paper.
//
// Every directory in the yanc FS is an instance of an ObjectSpec:
//   net root      hosts/ switches/ views/ events/            (Fig. 2)
//   switch        counters/ flows/ ports/ actions capabilities id ... (Fig. 3)
//   flow          counters/ match.* action.* priority timeout version
//   port          counters/ hw_addr config.port_down peer -> ...
//   view          hosts/ switches/ views/ events/  (same spec as the root:
//                 views nest arbitrarily, §4.2)
//   event buffer  one per application; packet-in dirs appear inside (§3.5)
//
// The spec drives YancFs's semantic behaviour: mkdir in a collection
// auto-populates the object's children (§3.1), file writes are validated
// against the declared field type (match.nw_src takes CIDR, §3.4), rmdir
// on an object is automatically recursive (§3.2), and `peer` symlinks must
// point at ports (§3.3).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "yanc/util/result.hpp"

namespace yanc::netfs {

/// Value type of a typed file; writes are rejected unless they parse.
enum class FieldType : std::uint8_t {
  u64,      // decimal unsigned
  u16,      // decimal, <= 65535
  u8,       // decimal, <= 255
  flag,     // "0" or "1"
  hex64,    // hex with or without 0x
  hex16,    // hex, <= 0xffff (dl_type)
  mac,      // aa:bb:cc:dd:ee:ff
  ipv4,     // dotted quad
  cidr,     // dotted quad [/len]
  port_ref, // output port: number or controller|flood|all|in_port|local,
            // whitespace-separated list allowed (multi-output)
  enqueue,  // "port:queue"
  text,     // free-form single-line text
  blob,     // arbitrary bytes (packet payloads)
};

/// Validates `value` (as written to a file) against a field type.
[[nodiscard]] Status validate_field(FieldType type, std::string_view value);

struct FileSpec {
  const char* name;
  FieldType type;
  /// Content the file is created with at object creation; nullptr means
  /// the file is not auto-created (e.g. match.* — absence = wildcard).
  const char* default_value;
};

struct ObjectSpec;

/// A fixed child directory that always exists inside an object
/// (counters/, ports/, flows/, hosts/...).  Cannot be removed or renamed.
struct FixedDir {
  const char* name;
  const ObjectSpec* spec;
};

struct ObjectSpec {
  const char* type_name;
  std::vector<FileSpec> files;
  std::vector<FixedDir> fixed_dirs;
  /// Object type created by mkdir() directly inside this directory;
  /// nullptr forbids mkdir here.  (switches/ creates switch objects,
  /// an event buffer creates packet-in dirs, ...)
  const ObjectSpec* mkdir_child = nullptr;
  /// When true, create() may only make files named in `files`.
  bool strict_files = true;
  /// rmdir on an instance of this object removes its whole subtree (§3.2).
  bool recursive_rmdir = false;
  /// When true, mkdir of a dot-prefixed name is admitted as plain
  /// (schema-free) directory territory even though this spec would
  /// otherwise forbid or type the child.  The root sets it so runtime
  /// subtrees like /net/.cluster can live inside the replicated FS and
  /// ride its op log (ISSUE 7) without appearing in the Fig. 2 schema.
  bool allow_hidden = false;
  /// Symlink names permitted inside this object ("peer", "location").
  std::vector<const char*> symlinks;

  const FileSpec* find_file(std::string_view name) const;
  bool symlink_allowed(std::string_view name) const;
};

/// The spec of the yanc FS root — also the spec of every view (§4.2).
const ObjectSpec& root_spec();
const ObjectSpec& switch_spec();
const ObjectSpec& port_spec();
const ObjectSpec& flow_spec();
const ObjectSpec& host_spec();
const ObjectSpec& event_buffer_spec();
const ObjectSpec& packet_in_spec();

/// Canonical directory names (Fig. 2).
namespace paths {
inline constexpr const char* switches = "switches";
inline constexpr const char* hosts = "hosts";
inline constexpr const char* views = "views";
inline constexpr const char* events = "events";
inline constexpr const char* ports = "ports";
inline constexpr const char* flows = "flows";
inline constexpr const char* counters = "counters";
}  // namespace paths

}  // namespace yanc::netfs
