// flowio: conversion between flow directories (§3.4, Fig. 3) and FlowSpec.
//
// This is the contract shared by applications (which write match.* /
// action.* files and bump `version`) and drivers (which read the directory
// back into a FlowSpec once the version changes and push it to hardware).
// Absent match files are wildcards; absent action files mean the action is
// not part of the entry; an action.drop=1 overrides everything else.
//
// Actions have a canonical execution order (header rewrites before
// outputs), matching how OpenFlow 1.0 switches apply action lists:
//   set_vlan, strip_vlan, set_dl_*, set_nw_*, set_tp_*, enqueue, out.
#pragma once

#include <string>

#include "yanc/flow/flowspec.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::netfs {

/// Reads a committed flow directory into a FlowSpec (including `version`).
Result<flow::FlowSpec> read_flow(vfs::Vfs& vfs, const std::string& flow_dir,
                                 const vfs::Credentials& creds = {});

/// Like read_flow, but lists the directory once and reads only the files
/// the listing contains, so the ~20 absent-field probes of a typically
/// sparse flow become set lookups.  Returns the same FlowSpec as
/// read_flow for any directory state; used by the driver's batched
/// pipeline (docs/PERFORMANCE.md "Batching").
Result<flow::FlowSpec> read_flow_sparse(vfs::Vfs& vfs,
                                        const std::string& flow_dir,
                                        const vfs::Credentials& creds = {});

/// Writes `spec` into `flow_dir`, creating the directory if needed,
/// removing match/action files the spec no longer carries, and — when
/// `commit` is true — incrementing the version file so drivers pick the
/// entry up atomically.
[[nodiscard]] Status write_flow(vfs::Vfs& vfs, const std::string& flow_dir,
                  const flow::FlowSpec& spec,
                  const vfs::Credentials& creds = {}, bool commit = true);

/// Increments the version file (the §3.4 commit protocol) and returns the
/// new version.
Result<std::uint64_t> commit_flow(vfs::Vfs& vfs, const std::string& flow_dir,
                                  const vfs::Credentials& creds = {});

/// Reads the flow's counters/ directory.
Result<flow::FlowStats> read_flow_stats(vfs::Vfs& vfs,
                                        const std::string& flow_dir,
                                        const vfs::Credentials& creds = {});

/// Writes the flow's counters/ directory (driver-side stats sync).
[[nodiscard]] Status write_flow_stats(vfs::Vfs& vfs, const std::string& flow_dir,
                        const flow::FlowStats& stats,
                        const vfs::Credentials& creds = {});

}  // namespace yanc::netfs
