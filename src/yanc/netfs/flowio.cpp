#include "yanc/netfs/flowio.hpp"

#include <map>
#include <set>

#include "yanc/obs/tracer.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::netfs {

using flow::Action;
using flow::ActionKind;
using flow::FlowSpec;
using flow::FlowStats;
using flow::Match;
using vfs::Credentials;
using vfs::Vfs;

namespace {

// Reads <dir>/<name>; nullopt when the file does not exist or is empty
// (absent and empty both mean "unset": wildcard / schema default).
std::optional<std::string> read_field(Vfs& vfs, const std::string& dir,
                                      const char* name,
                                      const Credentials& creds) {
  auto data = vfs.read_file(dir + "/" + name, creds);
  if (!data) return std::nullopt;
  auto trimmed = trim(*data);
  if (trimmed.empty()) return std::nullopt;
  return std::string(trimmed);
}

// Field access for the two read_flow variants.  The dense reader probes
// every file (each absent field is a negative VFS lookup); the sparse
// reader consults a readdir() snapshot first, so absent fields cost a
// set lookup instead of a path resolution.  Either way the value read is
// read_field's, so both variants parse byte-identical inputs.
struct FieldReader {
  Vfs& vfs;
  const std::string& dir;
  const Credentials& creds;
  const std::set<std::string, std::less<>>* present = nullptr;

  std::optional<std::string> operator()(const char* name) const {
    if (present && !present->count(name)) return std::nullopt;
    return read_field(vfs, dir, name, creds);
  }
};

template <typename T, typename Parser>
Status load(const FieldReader& field, const char* name, std::optional<T>& out,
            Parser parse) {
  auto text = field(name);
  if (!text) return ok_status();
  auto v = parse(*text);
  if (!v) return v.error();
  out = *v;
  return ok_status();
}

Result<std::uint16_t> parse_u16_field(const std::string& s) {
  auto v = parse_u64(s);
  if (!v || *v > 0xffff) return Errc::invalid_argument;
  return static_cast<std::uint16_t>(*v);
}

Result<std::uint8_t> parse_u8_field(const std::string& s) {
  auto v = parse_u64(s);
  if (!v || *v > 0xff) return Errc::invalid_argument;
  return static_cast<std::uint8_t>(*v);
}

Result<std::uint16_t> parse_hex16_field(const std::string& s) {
  auto v = parse_hex_u64(s);
  if (!v || *v > 0xffff) return Errc::invalid_argument;
  return static_cast<std::uint16_t>(*v);
}

// Appends an action parsed from action.<name> if that file exists.
Status load_action(const FieldReader& field, const char* name,
                   std::vector<Action>& out) {
  auto text = field((std::string("action.") + name).c_str());
  if (!text) return ok_status();
  if ((std::string_view(name) == "strip_vlan") && trim(*text) == "0")
    return ok_status();  // flag explicitly off
  auto action = flow::parse_action(name, *text);
  if (!action) return action.error();
  out.push_back(*action);
  return ok_status();
}

Status write_or_remove(Vfs& vfs, const std::string& dir, const std::string& name,
                       const std::optional<std::string>& value,
                       const Credentials& creds) {
  std::string path = dir + "/" + name;
  if (value) return vfs.write_file(path, *value, creds);
  auto ec = vfs.unlink(path, creds);
  if (ec == make_error_code(Errc::not_found)) return ok_status();
  return ec;
}

Result<FlowSpec> read_flow_impl(const FieldReader& field) {
  FlowSpec spec;

  // Entry metadata (fall back to schema defaults when the file is absent).
  if (auto t = field("priority")) {
    auto v = parse_u16_field(*t);
    if (!v) return v.error();
    spec.priority = *v;
  }
  if (auto t = field("idle_timeout")) {
    auto v = parse_u16_field(*t);
    if (!v) return v.error();
    spec.idle_timeout = *v;
  }
  if (auto t = field("hard_timeout")) {
    auto v = parse_u16_field(*t);
    if (!v) return v.error();
    spec.hard_timeout = *v;
  }
  if (auto t = field("cookie")) {
    auto v = parse_hex_u64(*t);
    if (!v) return v.error();
    spec.cookie = *v;
  }
  if (auto t = field("table_id")) {
    auto v = parse_u8_field(*t);
    if (!v) return v.error();
    spec.table_id = *v;
  }
  if (auto t = field("goto_table")) {
    auto v = parse_u8_field(*t);
    if (!v) return v.error();
    spec.goto_table = *v;
  }
  if (auto t = field("version")) {
    auto v = parse_u64(*t);
    if (!v) return v.error();
    spec.version = *v;
  }

  // Match fields: absence = wildcard (§3.4).
  Match& m = spec.match;
  if (auto ec = load(field, "match.in_port", m.in_port, parse_u16_field); ec)
    return ec;
  if (auto ec = load(field, "match.dl_src", m.dl_src,
                     [](const std::string& s) { return MacAddress::parse(s); });
      ec)
    return ec;
  if (auto ec = load(field, "match.dl_dst", m.dl_dst,
                     [](const std::string& s) { return MacAddress::parse(s); });
      ec)
    return ec;
  if (auto ec = load(field, "match.dl_type", m.dl_type, parse_hex16_field); ec)
    return ec;
  if (auto ec = load(field, "match.dl_vlan", m.dl_vlan, parse_u16_field); ec)
    return ec;
  if (auto ec = load(field, "match.dl_vlan_pcp", m.dl_vlan_pcp,
                     parse_u8_field); ec)
    return ec;
  if (auto ec = load(field, "match.nw_src", m.nw_src,
                     [](const std::string& s) { return Cidr::parse(s); });
      ec)
    return ec;
  if (auto ec = load(field, "match.nw_dst", m.nw_dst,
                     [](const std::string& s) { return Cidr::parse(s); });
      ec)
    return ec;
  if (auto ec = load(field, "match.nw_proto", m.nw_proto, parse_u8_field); ec)
    return ec;
  if (auto ec = load(field, "match.nw_tos", m.nw_tos, parse_u8_field); ec)
    return ec;
  if (auto ec = load(field, "match.tp_src", m.tp_src, parse_u16_field); ec)
    return ec;
  if (auto ec = load(field, "match.tp_dst", m.tp_dst, parse_u16_field); ec)
    return ec;

  // action.drop wins outright: the entry drops.
  if (auto t = field("action.drop"); t && *t == "1") {
    spec.actions.clear();
    return spec;
  }

  // Canonical order: header rewrites, then enqueue/outputs.
  for (const char* name :
       {"set_vlan", "strip_vlan", "set_dl_src", "set_dl_dst", "set_nw_src",
        "set_nw_dst", "set_nw_tos", "set_tp_src", "set_tp_dst", "enqueue"}) {
    if (auto ec = load_action(field, name, spec.actions); ec)
      return ec;
  }
  // action.out may list several ports ("1 2 controller").
  if (auto t = field("action.out")) {
    for (const auto& tok : split_nonempty(*t, ' ')) {
      auto a = flow::parse_action("out", tok);
      if (!a) return a.error();
      spec.actions.push_back(*a);
    }
  }
  return spec;
}

}  // namespace

Result<FlowSpec> read_flow(Vfs& vfs, const std::string& dir,
                           const Credentials& creds) {
  if (auto st = vfs.stat(dir, creds); !st)
    return st.error();
  return read_flow_impl(FieldReader{vfs, dir, creds, nullptr});
}

Result<FlowSpec> read_flow_sparse(Vfs& vfs, const std::string& dir,
                                  const Credentials& creds) {
  // The listing doubles as the existence check stat() performs on the
  // dense path, so a deleted flow still reports not_found here.
  auto entries = vfs.readdir(dir, creds);
  if (!entries) return entries.error();
  std::set<std::string, std::less<>> present;
  for (auto& e : *entries) present.insert(std::move(e.name));
  return read_flow_impl(FieldReader{vfs, dir, creds, &present});
}

Status write_flow(Vfs& vfs, const std::string& dir, const FlowSpec& spec,
                  const Credentials& creds, bool commit) {
  vfs.metrics()->counter("netfs/flow_write_total")->add();
  // A user write into the FS *is* the API (§3.1), which makes it a trace
  // ingress: if the thread carries no context, start one here so the
  // chain runs write -> watch event -> driver commit -> wire.  A caller
  // already inside a span (an app handling a packet-in) keeps its own.
  obs::TraceRef root;
  if (!obs::current_trace() && obs::tracer().enabled())
    root = obs::tracer().mint("netfs", "write_flow", dir);
  obs::TraceScope trace_scope(root);
  if (auto st = vfs.stat(dir, creds); !st) {
    if (st.error() != make_error_code(Errc::not_found)) return st.error();
    if (auto ec = vfs.mkdir(dir, 0755, creds); ec) return ec;
  }

  if (auto ec = vfs.write_file(dir + "/priority",
                               std::to_string(spec.priority), creds); ec)
    return ec;
  if (auto ec = vfs.write_file(dir + "/idle_timeout",
                               std::to_string(spec.idle_timeout), creds); ec)
    return ec;
  if (auto ec = vfs.write_file(dir + "/hard_timeout",
                               std::to_string(spec.hard_timeout), creds); ec)
    return ec;
  if (auto ec = vfs.write_file(dir + "/cookie", "0x" + to_hex(spec.cookie, 8),
                               creds); ec)
    return ec;
  if (auto ec = vfs.write_file(dir + "/table_id",
                               std::to_string(spec.table_id), creds); ec)
    return ec;
  if (auto ec = write_or_remove(
          vfs, dir, "goto_table",
          spec.goto_table >= 0
              ? std::optional<std::string>(std::to_string(spec.goto_table))
              : std::nullopt,
          creds);
      ec)
    return ec;

  const Match& m = spec.match;
  auto opt = [](auto field, auto format) -> std::optional<std::string> {
    if (!field) return std::nullopt;
    return format(*field);
  };
  auto dec = [](auto v) { return std::to_string(v); };
  struct Field {
    const char* name;
    std::optional<std::string> value;
  };
  const Field match_fields[] = {
      {"match.in_port", opt(m.in_port, dec)},
      {"match.dl_src", opt(m.dl_src, [](auto v) { return v.to_string(); })},
      {"match.dl_dst", opt(m.dl_dst, [](auto v) { return v.to_string(); })},
      {"match.dl_type",
       opt(m.dl_type, [](auto v) { return "0x" + to_hex(v, 2); })},
      {"match.dl_vlan", opt(m.dl_vlan, dec)},
      {"match.dl_vlan_pcp", opt(m.dl_vlan_pcp, dec)},
      {"match.nw_src", opt(m.nw_src, [](auto v) { return v.to_string(); })},
      {"match.nw_dst", opt(m.nw_dst, [](auto v) { return v.to_string(); })},
      {"match.nw_proto", opt(m.nw_proto, dec)},
      {"match.nw_tos", opt(m.nw_tos, dec)},
      {"match.tp_src", opt(m.tp_src, dec)},
      {"match.tp_dst", opt(m.tp_dst, dec)},
  };
  for (const auto& f : match_fields)
    if (auto ec = write_or_remove(vfs, dir, f.name, f.value, creds); ec)
      return ec;

  // Group actions by their file: action.out accumulates all outputs.
  std::map<std::string, std::string> action_files;
  bool drop = spec.actions.empty();
  for (const auto& a : spec.actions) {
    if (a.kind == ActionKind::drop) {
      drop = true;
      continue;
    }
    std::string file = "action." + flow::action_file_name(a.kind);
    std::string value = a.value_text();
    if (a.kind == ActionKind::output && !action_files[file].empty())
      action_files[file] += " " + value;
    else
      action_files[file] = value;
  }
  if (drop) action_files = {{"action.drop", "1"}};

  // Remove stale action files, then write current ones.
  static const char* kAllActionFiles[] = {
      "action.out",        "action.drop",       "action.set_vlan",
      "action.strip_vlan", "action.set_dl_src", "action.set_dl_dst",
      "action.set_nw_src", "action.set_nw_dst", "action.set_nw_tos",
      "action.set_tp_src", "action.set_tp_dst", "action.enqueue"};
  for (const char* name : kAllActionFiles) {
    auto it = action_files.find(name);
    if (it == action_files.end()) {
      if (auto ec = write_or_remove(vfs, dir, name, std::nullopt, creds); ec)
        return ec;
    } else {
      if (auto ec = vfs.write_file(dir + "/" + it->first, it->second, creds);
          ec)
        return ec;
    }
  }

  if (commit) {
    auto v = commit_flow(vfs, dir, creds);
    if (!v) return v.error();
  }
  return ok_status();
}

Result<std::uint64_t> commit_flow(Vfs& vfs, const std::string& dir,
                                  const Credentials& creds) {
  vfs.metrics()->counter("netfs/flow_commit_total")->add();
  // Same ingress rule as write_flow: a bare commit (bumping version on an
  // already-written flow) starts its own trace when none is active.
  obs::TraceRef root;
  if (!obs::current_trace() && obs::tracer().enabled())
    root = obs::tracer().mint("netfs", "commit_flow", dir);
  obs::TraceScope trace_scope(root);
  std::uint64_t current = 0;
  if (auto t = read_field(vfs, dir, "version", creds)) {
    auto v = parse_u64(*t);
    if (v) current = *v;
  }
  std::uint64_t next = current + 1;
  if (auto ec = vfs.write_file(dir + "/version", std::to_string(next), creds);
      ec)
    return ec;
  return next;
}

Result<FlowStats> read_flow_stats(Vfs& vfs, const std::string& dir,
                                  const Credentials& creds) {
  FlowStats stats;
  auto p = read_field(vfs, dir, "counters/packets", creds);
  auto b = read_field(vfs, dir, "counters/bytes", creds);
  if (p)
    if (auto v = parse_u64(*p)) stats.packets = *v;
  if (b)
    if (auto v = parse_u64(*b)) stats.bytes = *v;
  return stats;
}

Status write_flow_stats(Vfs& vfs, const std::string& dir,
                        const FlowStats& stats, const Credentials& creds) {
  if (auto ec = vfs.write_file(dir + "/counters/packets",
                               std::to_string(stats.packets), creds); ec)
    return ec;
  return vfs.write_file(dir + "/counters/bytes", std::to_string(stats.bytes),
                        creds);
}

}  // namespace yanc::netfs
