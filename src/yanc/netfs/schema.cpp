#include "yanc/netfs/schema.hpp"

// The ObjectSpec literals below use designated initializers and rely on the
// members' default values for everything unnamed; GCC's
// -Wmissing-field-initializers flags that style even though it is exactly
// the intent.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

#include "yanc/flow/action.hpp"
#include "yanc/util/net_types.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::netfs {
namespace {

Status invalid() { return make_error_code(Errc::invalid_argument); }

Status validate_unsigned(std::string_view value, std::uint64_t max) {
  auto v = parse_u64(trim(value));
  if (!v) return v.error();
  if (*v > max) return invalid();
  return ok_status();
}

}  // namespace

Status validate_field(FieldType type, std::string_view value) {
  switch (type) {
    case FieldType::u64:
      return validate_unsigned(value, ~0ull);
    case FieldType::u16:
      return validate_unsigned(value, 0xffff);
    case FieldType::u8:
      return validate_unsigned(value, 0xff);
    case FieldType::flag: {
      auto t = trim(value);
      return (t == "0" || t == "1") ? ok_status() : invalid();
    }
    case FieldType::hex64: {
      auto v = parse_hex_u64(trim(value));
      return v ? ok_status() : v.error();
    }
    case FieldType::hex16: {
      auto v = parse_hex_u64(trim(value));
      if (!v) return v.error();
      return *v <= 0xffff ? ok_status() : invalid();
    }
    case FieldType::mac: {
      auto v = MacAddress::parse(value);
      return v ? ok_status() : v.error();
    }
    case FieldType::ipv4: {
      auto v = Ipv4Address::parse(value);
      return v ? ok_status() : v.error();
    }
    case FieldType::cidr: {
      auto v = Cidr::parse(value);
      return v ? ok_status() : v.error();
    }
    case FieldType::port_ref: {
      auto t = trim(value);
      if (t.empty()) return invalid();
      for (const auto& tok : split_nonempty(t, ' ')) {
        auto a = flow::parse_action("out", tok);
        if (!a) return a.error();
      }
      return ok_status();
    }
    case FieldType::enqueue: {
      auto a = flow::parse_action("enqueue", trim(value));
      return a ? ok_status() : a.error();
    }
    case FieldType::text: {
      // Single logical line of printable text.
      auto t = trim(value);
      for (char c : t)
        if (c == '\n' || c == '\0') return invalid();
      return ok_status();
    }
    case FieldType::blob:
      return ok_status();
  }
  return invalid();
}

const FileSpec* ObjectSpec::find_file(std::string_view name) const {
  for (const auto& f : files)
    if (name == f.name) return &f;
  return nullptr;
}

bool ObjectSpec::symlink_allowed(std::string_view name) const {
  for (const char* s : symlinks)
    if (name == s) return true;
  return false;
}

namespace {

// Leaf collections of counters.  Drivers keep these in sync with hardware.
const ObjectSpec kSwitchCounters{
    .type_name = "switch_counters",
    .files = {{"packet_ins", FieldType::u64, "0"},
              {"flow_mods", FieldType::u64, "0"},
              {"packet_outs", FieldType::u64, "0"},
              {"flow_expirations", FieldType::u64, "0"}},
};

const ObjectSpec kPortCounters{
    .type_name = "port_counters",
    .files = {{"rx_packets", FieldType::u64, "0"},
              {"tx_packets", FieldType::u64, "0"},
              {"rx_bytes", FieldType::u64, "0"},
              {"tx_bytes", FieldType::u64, "0"},
              {"rx_dropped", FieldType::u64, "0"},
              {"tx_dropped", FieldType::u64, "0"},
              {"rx_errors", FieldType::u64, "0"},
              {"tx_errors", FieldType::u64, "0"}},
};

const ObjectSpec kFlowCounters{
    .type_name = "flow_counters",
    .files = {{"packets", FieldType::u64, "0"},
              {"bytes", FieldType::u64, "0"}},
};

// A flow entry (Fig. 3 right).  match.* / action.* files appear on demand;
// their absence means wildcard / no such action (§3.4).
const ObjectSpec kFlow{
    .type_name = "flow",
    .files =
        {
            {"priority", FieldType::u16, "32768"},
            {"idle_timeout", FieldType::u16, "0"},
            {"hard_timeout", FieldType::u16, "0"},
            {"cookie", FieldType::hex64, "0"},
            {"table_id", FieldType::u8, "0"},
            {"goto_table", FieldType::u8, nullptr},
            {"version", FieldType::u64, "0"},
            {"match.in_port", FieldType::u16, nullptr},
            {"match.dl_src", FieldType::mac, nullptr},
            {"match.dl_dst", FieldType::mac, nullptr},
            {"match.dl_type", FieldType::hex16, nullptr},
            {"match.dl_vlan", FieldType::u16, nullptr},
            {"match.dl_vlan_pcp", FieldType::u8, nullptr},
            {"match.nw_src", FieldType::cidr, nullptr},
            {"match.nw_dst", FieldType::cidr, nullptr},
            {"match.nw_proto", FieldType::u8, nullptr},
            {"match.nw_tos", FieldType::u8, nullptr},
            {"match.tp_src", FieldType::u16, nullptr},
            {"match.tp_dst", FieldType::u16, nullptr},
            {"action.out", FieldType::port_ref, nullptr},
            {"action.drop", FieldType::flag, nullptr},
            {"action.set_vlan", FieldType::u16, nullptr},
            {"action.strip_vlan", FieldType::flag, nullptr},
            {"action.set_dl_src", FieldType::mac, nullptr},
            {"action.set_dl_dst", FieldType::mac, nullptr},
            {"action.set_nw_src", FieldType::ipv4, nullptr},
            {"action.set_nw_dst", FieldType::ipv4, nullptr},
            {"action.set_nw_tos", FieldType::u8, nullptr},
            {"action.set_tp_src", FieldType::u16, nullptr},
            {"action.set_tp_dst", FieldType::u16, nullptr},
            {"action.enqueue", FieldType::enqueue, nullptr},
        },
    .fixed_dirs = {{"counters", &kFlowCounters}},
    .recursive_rmdir = true,
};

const ObjectSpec kFlowsCollection{
    .type_name = "flows",
    .mkdir_child = &kFlow,
};

// A transmit queue on a port (§8 lists queues among what the paper's
// prototype had NOT yet implemented; this completes it).  min_rate and
// max_rate are in tenths of a percent of link rate, like OpenFlow's
// queue properties.
const ObjectSpec kQueueCounters{
    .type_name = "queue_counters",
    .files = {{"tx_packets", FieldType::u64, "0"},
              {"tx_bytes", FieldType::u64, "0"},
              {"tx_errors", FieldType::u64, "0"}},
};

const ObjectSpec kQueue{
    .type_name = "queue",
    .files = {{"queue_id", FieldType::u64, "0"},
              {"min_rate", FieldType::u16, "0"},
              {"max_rate", FieldType::u16, "1000"}},
    .fixed_dirs = {{"counters", &kQueueCounters}},
    .recursive_rmdir = true,
};

const ObjectSpec kQueuesCollection{
    .type_name = "queues",
    .mkdir_child = &kQueue,
};

// A port (§3.3): status/config files, counters, and the `peer` symlink
// that encodes topology.
const ObjectSpec kPort{
    .type_name = "port",
    .files = {{"port_no", FieldType::u16, "0"},
              {"hw_addr", FieldType::mac, "00:00:00:00:00:00"},
              {"name", FieldType::text, ""},
              {"config.port_down", FieldType::flag, "0"},
              {"config.no_flood", FieldType::flag, "0"},
              {"state.link_down", FieldType::flag, "0"},
              {"state.blocked", FieldType::flag, "0"},
              {"curr_speed", FieldType::u64, "10000000"},
              {"max_speed", FieldType::u64, "10000000"}},
    .fixed_dirs = {{"counters", &kPortCounters},
                   {"queues", &kQueuesCollection}},
    .recursive_rmdir = true,
    .symlinks = {"peer"},
};

const ObjectSpec kPortsCollection{
    .type_name = "ports",
    .mkdir_child = &kPort,
};

// One pending packet-out request: an application fills in the frame and
// output ports, then writes send=1; the driver transmits and consumes the
// directory (the outbound mirror of the events/ packet-in buffers).
const ObjectSpec kPacketOut{
    .type_name = "packet_out",
    .files = {{"in_port", FieldType::u16, "0"},
              {"out", FieldType::port_ref, nullptr},
              {"data", FieldType::blob, ""},
              {"send", FieldType::flag, "0"}},
    .recursive_rmdir = true,
};

const ObjectSpec kPacketOutCollection{
    .type_name = "packet_out_queue",
    .mkdir_child = &kPacketOut,
};

// A switch (Fig. 3 left).  Drivers populate the identity fields after the
// OpenFlow handshake.
const ObjectSpec kSwitch{
    .type_name = "switch",
    .files = {{"id", FieldType::hex64, "0"},
              {"capabilities", FieldType::hex64, "0"},
              {"actions", FieldType::hex64, "0"},
              {"num_buffers", FieldType::u64, "0"},
              {"num_tables", FieldType::u64, "1"},
              {"manufacturer", FieldType::text, ""},
              {"hw_desc", FieldType::text, ""},
              {"sw_desc", FieldType::text, ""},
              {"protocol_version", FieldType::text, ""},
              {"connected", FieldType::flag, "0"},
              // Liveness verdict maintained by the driver's keepalive:
              // "up" after the handshake, "down" on timeout/disconnect.
              {"status", FieldType::text, "down"}},
    .fixed_dirs = {{"counters", &kSwitchCounters},
                   {"flows", &kFlowsCollection},
                   {"packet_out", &kPacketOutCollection},
                   {"ports", &kPortsCollection}},
    .recursive_rmdir = true,
};

const ObjectSpec kSwitchesCollection{
    .type_name = "switches",
    .mkdir_child = &kSwitch,
};

// A host: learned or administratively declared endpoints; `location`
// symlinks to the port the host is attached to.
const ObjectSpec kHost{
    .type_name = "host",
    .files = {{"mac", FieldType::mac, "00:00:00:00:00:00"},
              {"ip", FieldType::ipv4, "0.0.0.0"}},
    .recursive_rmdir = true,
    .symlinks = {"location"},
};

const ObjectSpec kHostsCollection{
    .type_name = "hosts",
    .mkdir_child = &kHost,
};

// A middlebox (§7.2): fixed-function or programmable, its state exposed
// through the file system by a middlebox driver.  The state/ directory is
// deliberately *unstructured* (strict_files = false): each middlebox kind
// stores whatever records it has, and elastic scaling is `cp`/`mv` of
// state files between instances — "we can use command line utilities such
// as cp or mv to move state around rather than custom protocols."
const ObjectSpec kMiddleboxState{
    .type_name = "middlebox_state",
    .strict_files = false,
    .recursive_rmdir = true,
};

const ObjectSpec kMiddlebox{
    .type_name = "middlebox",
    .files = {{"kind", FieldType::text, ""},
              {"vendor", FieldType::text, ""},
              {"instances", FieldType::u64, "1"},
              {"connected", FieldType::flag, "0"}},
    .fixed_dirs = {{"state", &kMiddleboxState}},
    .recursive_rmdir = true,
    .symlinks = {"attachment"},  // the port the box hangs off
};

const ObjectSpec kMiddleboxesCollection{
    .type_name = "middleboxes",
    .mkdir_child = &kMiddlebox,
};

// One packet-in message inside an application's private event buffer
// (§3.5): created by the driver, consumed (rmdir'ed) by the application.
const ObjectSpec kPacketIn{
    .type_name = "packet_in",
    .files = {{"datapath", FieldType::text, ""},
              {"in_port", FieldType::u16, "0"},
              {"reason", FieldType::text, "no_match"},
              {"buffer_id", FieldType::u64, "0"},
              {"total_len", FieldType::u64, "0"},
              {"data", FieldType::blob, ""}},
    .recursive_rmdir = true,
};

// An application's private packet-in buffer: mkdir events/<app> creates
// one; the driver then feeds packet-in dirs into every buffer (§3.5).
const ObjectSpec kEventBuffer{
    .type_name = "event_buffer",
    .mkdir_child = &kPacketIn,
    .recursive_rmdir = true,
};

const ObjectSpec kEventsCollection{
    .type_name = "events",
    .mkdir_child = &kEventBuffer,
};

// The root spec and the views collection refer to each other (a view is a
// nested root, §4.2), so both live in one lazily-built bundle.
struct RootBundle {
  ObjectSpec views_collection;
  ObjectSpec root;
};

const RootBundle& root_bundle() {
  static const RootBundle* bundle = [] {
    auto* b = new RootBundle;
    b->views_collection.type_name = "views";
    b->root.type_name = "net";
    b->root.fixed_dirs = {{"hosts", &kHostsCollection},
                          {"middleboxes", &kMiddleboxesCollection},
                          {"switches", &kSwitchesCollection},
                          {"views", &b->views_collection},
                          {"events", &kEventsCollection}};
    // A view (same spec as the root) is removable as a unit.
    b->root.recursive_rmdir = true;
    // Runtime subtrees (/net/.cluster lease files) live beside the schema
    // dirs so the replicated FS carries them; see ObjectSpec::allow_hidden.
    b->root.allow_hidden = true;
    b->views_collection.mkdir_child = &b->root;
    return b;
  }();
  return *bundle;
}

}  // namespace

const ObjectSpec& root_spec() { return root_bundle().root; }
const ObjectSpec& switch_spec() { return kSwitch; }
const ObjectSpec& port_spec() { return kPort; }
const ObjectSpec& flow_spec() { return kFlow; }
const ObjectSpec& host_spec() { return kHost; }
const ObjectSpec& event_buffer_spec() { return kEventBuffer; }
const ObjectSpec& packet_in_spec() { return kPacketIn; }

}  // namespace yanc::netfs
