// Typed convenience handles over the yanc file system — the non-shared-
// memory half of "libyanc" (§8.1): network-centric calls that compile down
// to ordinary file I/O, so applications using them still interoperate with
// shell scripts, cron jobs and every other process poking the same files.
//
// A NetDir points at a yanc root: "/net" for the master view, or
// "/net/views/<v>" for any nested view — the API is identical either way,
// which is how view transparency (§4.2) manifests in code.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "yanc/flow/flowspec.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/obs/tracer.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::netfs {

class SwitchHandle;
class PortHandle;
class FlowHandle;
class HostHandle;
class EventBufferHandle;

/// One decoded packet-in event (§3.5): the files of a pkt_* directory.
struct PacketInInfo {
  std::string name;      // directory name inside the buffer
  std::string datapath;  // switch name
  std::uint16_t in_port = 0;
  std::string reason;    // "no_match" | "action"
  std::uint32_t buffer_id = 0;
  std::string data;      // raw frame bytes

  // Causal context the driver handed over with this pkt_* directory
  // (zero when the packet-in was untraced).  `trace_queue_ns` is how long
  // the event sat in the buffer before this app read it — the app's span
  // should pass it as queue_ns so wait and service stay separated.
  obs::TraceRef trace;
  std::uint64_t trace_queue_ns = 0;
};

class NetDir {
 public:
  NetDir(std::shared_ptr<vfs::Vfs> vfs, std::string base = "/net",
         vfs::Credentials creds = {});

  const std::string& base() const noexcept { return base_; }
  vfs::Vfs& vfs() noexcept { return *vfs_; }
  const vfs::Credentials& credentials() const noexcept { return creds_; }

  // switches/
  Result<std::vector<std::string>> switch_names() const;
  [[nodiscard]] Status add_switch(const std::string& name);
  [[nodiscard]] Status remove_switch(const std::string& name);
  SwitchHandle switch_at(const std::string& name) const;

  // hosts/
  Result<std::vector<std::string>> host_names() const;
  [[nodiscard]] Status add_host(const std::string& name, const MacAddress& mac,
                  const Ipv4Address& ip);
  HostHandle host_at(const std::string& name) const;

  // views/ — a view is just another NetDir rooted deeper (§4.2).
  Result<std::vector<std::string>> view_names() const;
  [[nodiscard]] Status create_view(const std::string& name);
  NetDir view(const std::string& name) const;

  // events/ — private packet-in buffers (§3.5).
  Result<EventBufferHandle> open_events(const std::string& app_name);

 private:
  std::shared_ptr<vfs::Vfs> vfs_;
  std::string base_;
  vfs::Credentials creds_;
};

/// A switch directory (Fig. 3 left).
class SwitchHandle {
 public:
  SwitchHandle(std::shared_ptr<vfs::Vfs> vfs, std::string path,
               vfs::Credentials creds);

  const std::string& path() const noexcept { return path_; }
  bool exists() const;

  Result<std::uint64_t> datapath_id() const;
  [[nodiscard]] Status set_datapath_id(std::uint64_t id);
  Result<bool> connected() const;
  [[nodiscard]] Status set_connected(bool up);
  Result<std::string> protocol_version() const;
  [[nodiscard]] Status set_protocol_version(const std::string& version);

  // ports/
  Result<std::vector<std::string>> port_names() const;
  [[nodiscard]] Status add_port(std::uint16_t port_no, const MacAddress& mac,
                  const std::string& if_name);
  PortHandle port_at(const std::string& name) const;
  PortHandle port_at(std::uint16_t port_no) const;

  // flows/
  Result<std::vector<std::string>> flow_names() const;
  FlowHandle flow_at(const std::string& name) const;
  /// Creates flows/<name> and writes `spec` (committed when commit=true).
  [[nodiscard]] Status add_flow(const std::string& name, const flow::FlowSpec& spec,
                  bool commit = true);
  [[nodiscard]] Status remove_flow(const std::string& name);

  /// Reads a file directly under the switch dir ("capabilities", ...).
  Result<std::string> read_field(const std::string& file) const;
  [[nodiscard]] Status write_field(const std::string& file, const std::string& value);

 private:
  std::shared_ptr<vfs::Vfs> vfs_;
  std::string path_;
  vfs::Credentials creds_;
};

/// A port directory (§3.3).
class PortHandle {
 public:
  PortHandle(std::shared_ptr<vfs::Vfs> vfs, std::string path,
             vfs::Credentials creds);

  const std::string& path() const noexcept { return path_; }
  bool exists() const;

  Result<std::uint16_t> port_no() const;
  Result<MacAddress> hw_addr() const;

  /// Topology: the `peer` symlink (§3.3).
  [[nodiscard]] Status set_peer(const std::string& peer_port_path);
  Result<std::string> peer() const;  // ENOENT when no link
  [[nodiscard]] Status clear_peer();

  Result<bool> link_down() const;
  [[nodiscard]] Status set_link_down(bool down);
  [[nodiscard]] Status set_port_down(bool down);
  Result<bool> port_down() const;

  Result<std::uint64_t> counter(const std::string& name) const;
  [[nodiscard]] Status bump_counter(const std::string& name, std::uint64_t delta);

 private:
  std::shared_ptr<vfs::Vfs> vfs_;
  std::string path_;
  vfs::Credentials creds_;
};

/// A flow directory (Fig. 3 right) with the §3.4 commit protocol.
class FlowHandle {
 public:
  FlowHandle(std::shared_ptr<vfs::Vfs> vfs, std::string path,
             vfs::Credentials creds);

  const std::string& path() const noexcept { return path_; }
  bool exists() const;

  Result<flow::FlowSpec> read() const;
  [[nodiscard]] Status write(const flow::FlowSpec& spec, bool commit = true);
  Result<std::uint64_t> commit();
  Result<std::uint64_t> version() const;
  Result<flow::FlowStats> stats() const;

 private:
  std::shared_ptr<vfs::Vfs> vfs_;
  std::string path_;
  vfs::Credentials creds_;
};

/// A host directory with its `location` link.
class HostHandle {
 public:
  HostHandle(std::shared_ptr<vfs::Vfs> vfs, std::string path,
             vfs::Credentials creds);

  const std::string& path() const noexcept { return path_; }
  bool exists() const;
  Result<MacAddress> mac() const;
  Result<Ipv4Address> ip() const;
  [[nodiscard]] Status set_location(const std::string& port_path);
  Result<std::string> location() const;

 private:
  std::shared_ptr<vfs::Vfs> vfs_;
  std::string path_;
  vfs::Credentials creds_;
};

/// An application's private packet-in buffer (events/<app>/, §3.5).
/// Drivers deposit pkt_* directories; the application polls or watches,
/// then consumes them.
class EventBufferHandle {
 public:
  EventBufferHandle() = default;
  EventBufferHandle(std::shared_ptr<vfs::Vfs> vfs, std::string path,
                    vfs::Credentials creds);

  const std::string& path() const noexcept { return path_; }

  /// Names of pending packet-in directories (oldest-first by name).
  Result<std::vector<std::string>> pending() const;
  /// Reads one packet-in.
  Result<PacketInInfo> read(const std::string& name) const;
  /// Removes a consumed packet-in.
  [[nodiscard]] Status consume(const std::string& name);
  /// Reads and consumes everything pending.
  Result<std::vector<PacketInInfo>> drain();
  /// Registers a watch for new packet-ins.
  Result<std::shared_ptr<vfs::WatchHandle>> watch(vfs::WatchQueuePtr queue);

 private:
  std::shared_ptr<vfs::Vfs> vfs_;
  std::string path_;
  vfs::Credentials creds_;
};

}  // namespace yanc::netfs
