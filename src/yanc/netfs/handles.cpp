#include "yanc/netfs/handles.hpp"

#include <algorithm>

#include "yanc/util/strings.hpp"

namespace yanc::netfs {

using vfs::Credentials;
using vfs::Vfs;

namespace {

Result<std::vector<std::string>> dir_names(Vfs& vfs, const std::string& path,
                                           const Credentials& creds) {
  auto entries = vfs.readdir(path, creds);
  if (!entries) return entries.error();
  std::vector<std::string> names;
  for (const auto& e : *entries)
    if (e.type == vfs::FileType::directory) names.push_back(e.name);
  return names;
}

Result<std::uint64_t> read_u64_file(Vfs& vfs, const std::string& path,
                                    const Credentials& creds) {
  auto data = vfs.read_file(path, creds);
  if (!data) return data.error();
  return parse_u64(trim(*data));
}

Result<bool> read_flag_file(Vfs& vfs, const std::string& path,
                            const Credentials& creds) {
  auto data = vfs.read_file(path, creds);
  if (!data) return data.error();
  return trim(*data) == "1";
}

}  // namespace

// --- NetDir ------------------------------------------------------------------

NetDir::NetDir(std::shared_ptr<Vfs> vfs, std::string base, Credentials creds)
    : vfs_(std::move(vfs)), base_(vfs::normalize_path(base)),
      creds_(std::move(creds)) {}

Result<std::vector<std::string>> NetDir::switch_names() const {
  return dir_names(*vfs_, base_ + "/switches", creds_);
}

Status NetDir::add_switch(const std::string& name) {
  return vfs_->mkdir(base_ + "/switches/" + name, 0755, creds_);
}

Status NetDir::remove_switch(const std::string& name) {
  return vfs_->rmdir(base_ + "/switches/" + name, creds_);
}

SwitchHandle NetDir::switch_at(const std::string& name) const {
  return SwitchHandle(vfs_, base_ + "/switches/" + name, creds_);
}

Result<std::vector<std::string>> NetDir::host_names() const {
  return dir_names(*vfs_, base_ + "/hosts", creds_);
}

Status NetDir::add_host(const std::string& name, const MacAddress& mac,
                        const Ipv4Address& ip) {
  std::string path = base_ + "/hosts/" + name;
  if (auto ec = vfs_->mkdir(path, 0755, creds_); ec) return ec;
  if (auto ec = vfs_->write_file(path + "/mac", mac.to_string(), creds_); ec)
    return ec;
  return vfs_->write_file(path + "/ip", ip.to_string(), creds_);
}

HostHandle NetDir::host_at(const std::string& name) const {
  return HostHandle(vfs_, base_ + "/hosts/" + name, creds_);
}

Result<std::vector<std::string>> NetDir::view_names() const {
  return dir_names(*vfs_, base_ + "/views", creds_);
}

Status NetDir::create_view(const std::string& name) {
  return vfs_->mkdir(base_ + "/views/" + name, 0755, creds_);
}

NetDir NetDir::view(const std::string& name) const {
  return NetDir(vfs_, base_ + "/views/" + name, creds_);
}

Result<EventBufferHandle> NetDir::open_events(const std::string& app_name) {
  std::string path = base_ + "/events/" + app_name;
  auto ec = vfs_->mkdir(path, 0755, creds_);
  if (ec && ec != make_error_code(Errc::exists)) return ec;
  return EventBufferHandle(vfs_, path, creds_);
}

// --- SwitchHandle -----------------------------------------------------------

SwitchHandle::SwitchHandle(std::shared_ptr<Vfs> vfs, std::string path,
                           Credentials creds)
    : vfs_(std::move(vfs)), path_(std::move(path)), creds_(std::move(creds)) {}

bool SwitchHandle::exists() const {
  auto st = vfs_->stat(path_, creds_);
  return st.ok() && st->is_dir();
}

Result<std::uint64_t> SwitchHandle::datapath_id() const {
  auto data = vfs_->read_file(path_ + "/id", creds_);
  if (!data) return data.error();
  return parse_hex_u64(trim(*data));
}

Status SwitchHandle::set_datapath_id(std::uint64_t id) {
  return vfs_->write_file(path_ + "/id", "0x" + to_hex(id, 8), creds_);
}

Result<bool> SwitchHandle::connected() const {
  return read_flag_file(*vfs_, path_ + "/connected", creds_);
}

Status SwitchHandle::set_connected(bool up) {
  return vfs_->write_file(path_ + "/connected", up ? "1" : "0", creds_);
}

Result<std::string> SwitchHandle::protocol_version() const {
  auto data = vfs_->read_file(path_ + "/protocol_version", creds_);
  if (!data) return data.error();
  return std::string(trim(*data));
}

Status SwitchHandle::set_protocol_version(const std::string& version) {
  return vfs_->write_file(path_ + "/protocol_version", version, creds_);
}

Result<std::vector<std::string>> SwitchHandle::port_names() const {
  return dir_names(*vfs_, path_ + "/ports", creds_);
}

Status SwitchHandle::add_port(std::uint16_t port_no, const MacAddress& mac,
                              const std::string& if_name) {
  std::string port_path = path_ + "/ports/" + std::to_string(port_no);
  if (auto ec = vfs_->mkdir(port_path, 0755, creds_); ec) return ec;
  if (auto ec = vfs_->write_file(port_path + "/port_no",
                                 std::to_string(port_no), creds_); ec)
    return ec;
  if (auto ec = vfs_->write_file(port_path + "/hw_addr", mac.to_string(),
                                 creds_); ec)
    return ec;
  return vfs_->write_file(port_path + "/name", if_name, creds_);
}

PortHandle SwitchHandle::port_at(const std::string& name) const {
  return PortHandle(vfs_, path_ + "/ports/" + name, creds_);
}

PortHandle SwitchHandle::port_at(std::uint16_t port_no) const {
  return port_at(std::to_string(port_no));
}

Result<std::vector<std::string>> SwitchHandle::flow_names() const {
  return dir_names(*vfs_, path_ + "/flows", creds_);
}

FlowHandle SwitchHandle::flow_at(const std::string& name) const {
  return FlowHandle(vfs_, path_ + "/flows/" + name, creds_);
}

Status SwitchHandle::add_flow(const std::string& name,
                              const flow::FlowSpec& spec, bool commit) {
  return write_flow(*vfs_, path_ + "/flows/" + name, spec, creds_, commit);
}

Status SwitchHandle::remove_flow(const std::string& name) {
  return vfs_->rmdir(path_ + "/flows/" + name, creds_);
}

Result<std::string> SwitchHandle::read_field(const std::string& file) const {
  auto data = vfs_->read_file(path_ + "/" + file, creds_);
  if (!data) return data.error();
  return std::string(trim(*data));
}

Status SwitchHandle::write_field(const std::string& file,
                                 const std::string& value) {
  return vfs_->write_file(path_ + "/" + file, value, creds_);
}

// --- PortHandle --------------------------------------------------------------

PortHandle::PortHandle(std::shared_ptr<Vfs> vfs, std::string path,
                       Credentials creds)
    : vfs_(std::move(vfs)), path_(std::move(path)), creds_(std::move(creds)) {}

bool PortHandle::exists() const {
  auto st = vfs_->stat(path_, creds_);
  return st.ok() && st->is_dir();
}

Result<std::uint16_t> PortHandle::port_no() const {
  auto v = read_u64_file(*vfs_, path_ + "/port_no", creds_);
  if (!v) return v.error();
  if (*v > 0xffff) return Errc::invalid_argument;
  return static_cast<std::uint16_t>(*v);
}

Result<MacAddress> PortHandle::hw_addr() const {
  auto data = vfs_->read_file(path_ + "/hw_addr", creds_);
  if (!data) return data.error();
  return MacAddress::parse(trim(*data));
}

Status PortHandle::set_peer(const std::string& peer_port_path) {
  (void)vfs_->unlink(path_ + "/peer", creds_);
  return vfs_->symlink(peer_port_path, path_ + "/peer", creds_);
}

Result<std::string> PortHandle::peer() const {
  return vfs_->readlink(path_ + "/peer", creds_);
}

Status PortHandle::clear_peer() {
  return vfs_->unlink(path_ + "/peer", creds_);
}

Result<bool> PortHandle::link_down() const {
  return read_flag_file(*vfs_, path_ + "/state.link_down", creds_);
}

Status PortHandle::set_link_down(bool down) {
  return vfs_->write_file(path_ + "/state.link_down", down ? "1" : "0",
                          creds_);
}

Status PortHandle::set_port_down(bool down) {
  return vfs_->write_file(path_ + "/config.port_down", down ? "1" : "0",
                          creds_);
}

Result<bool> PortHandle::port_down() const {
  return read_flag_file(*vfs_, path_ + "/config.port_down", creds_);
}

Result<std::uint64_t> PortHandle::counter(const std::string& name) const {
  return read_u64_file(*vfs_, path_ + "/counters/" + name, creds_);
}

Status PortHandle::bump_counter(const std::string& name, std::uint64_t delta) {
  auto current = counter(name);
  std::uint64_t value = current ? *current : 0;
  return vfs_->write_file(path_ + "/counters/" + name,
                          std::to_string(value + delta), creds_);
}

// --- FlowHandle --------------------------------------------------------------

FlowHandle::FlowHandle(std::shared_ptr<Vfs> vfs, std::string path,
                       Credentials creds)
    : vfs_(std::move(vfs)), path_(std::move(path)), creds_(std::move(creds)) {}

bool FlowHandle::exists() const {
  auto st = vfs_->stat(path_, creds_);
  return st.ok() && st->is_dir();
}

Result<flow::FlowSpec> FlowHandle::read() const {
  return read_flow(*vfs_, path_, creds_);
}

Status FlowHandle::write(const flow::FlowSpec& spec, bool commit) {
  return write_flow(*vfs_, path_, spec, creds_, commit);
}

Result<std::uint64_t> FlowHandle::commit() {
  return commit_flow(*vfs_, path_, creds_);
}

Result<std::uint64_t> FlowHandle::version() const {
  return read_u64_file(*vfs_, path_ + "/version", creds_);
}

Result<flow::FlowStats> FlowHandle::stats() const {
  return read_flow_stats(*vfs_, path_, creds_);
}

// --- HostHandle --------------------------------------------------------------

HostHandle::HostHandle(std::shared_ptr<Vfs> vfs, std::string path,
                       Credentials creds)
    : vfs_(std::move(vfs)), path_(std::move(path)), creds_(std::move(creds)) {}

bool HostHandle::exists() const {
  auto st = vfs_->stat(path_, creds_);
  return st.ok() && st->is_dir();
}

Result<MacAddress> HostHandle::mac() const {
  auto data = vfs_->read_file(path_ + "/mac", creds_);
  if (!data) return data.error();
  return MacAddress::parse(trim(*data));
}

Result<Ipv4Address> HostHandle::ip() const {
  auto data = vfs_->read_file(path_ + "/ip", creds_);
  if (!data) return data.error();
  return Ipv4Address::parse(trim(*data));
}

Status HostHandle::set_location(const std::string& port_path) {
  (void)vfs_->unlink(path_ + "/location", creds_);
  return vfs_->symlink(port_path, path_ + "/location", creds_);
}

Result<std::string> HostHandle::location() const {
  return vfs_->readlink(path_ + "/location", creds_);
}

// --- EventBufferHandle -------------------------------------------------------

EventBufferHandle::EventBufferHandle(std::shared_ptr<Vfs> vfs,
                                     std::string path, Credentials creds)
    : vfs_(std::move(vfs)), path_(std::move(path)), creds_(std::move(creds)) {}

Result<std::vector<std::string>> EventBufferHandle::pending() const {
  return dir_names(*vfs_, path_, creds_);
}

Result<PacketInInfo> EventBufferHandle::read(const std::string& name) const {
  std::string dir = path_ + "/" + name;
  PacketInInfo info;
  info.name = name;
  auto dp = vfs_->read_file(dir + "/datapath", creds_);
  if (!dp) return dp.error();
  info.datapath = trim(*dp);
  if (auto v = read_u64_file(*vfs_, dir + "/in_port", creds_))
    info.in_port = static_cast<std::uint16_t>(*v);
  if (auto r = vfs_->read_file(dir + "/reason", creds_))
    info.reason = trim(*r);
  if (auto v = read_u64_file(*vfs_, dir + "/buffer_id", creds_))
    info.buffer_id = static_cast<std::uint32_t>(*v);
  if (auto d = vfs_->read_file(dir + "/data", creds_)) info.data = *d;
  // Claim the causal context the driver staged under this directory's
  // path (first reader wins — matching consume(), which also races at
  // most one winner).  The elapsed time since the driver's put is the
  // event's buffer wait.
  if (obs::tracer().enabled()) {
    if (auto handoff = obs::tracer().path_take(dir)) {
      info.trace = handoff.ref;
      std::uint64_t now = obs::Tracer::now_ns();
      info.trace_queue_ns = now > handoff.ts_ns ? now - handoff.ts_ns : 0;
    }
  }
  return info;
}

Status EventBufferHandle::consume(const std::string& name) {
  return vfs_->rmdir(path_ + "/" + name, creds_);
}

Result<std::vector<PacketInInfo>> EventBufferHandle::drain() {
  auto names = pending();
  if (!names) return names.error();
  std::sort(names->begin(), names->end());
  std::vector<PacketInInfo> out;
  for (const auto& name : *names) {
    auto info = read(name);
    if (!info) return info.error();
    out.push_back(std::move(*info));
    if (auto ec = consume(name); ec) return ec;
  }
  return out;
}

Result<std::shared_ptr<vfs::WatchHandle>> EventBufferHandle::watch(
    vfs::WatchQueuePtr queue) {
  return vfs_->watch(path_, vfs::event::created, std::move(queue), creds_);
}

}  // namespace yanc::netfs
