// TraceRing: a bounded in-memory ring of timestamped spans and events.
//
// Subsystems record what happened and when against the simulation's
// VirtualClock (or any other nanosecond timestamp source); the ring keeps
// the most recent `capacity` records and counts what it had to drop.
// StatsFs exposes the ring as the `/yanc/.stats/trace` file, so
// `cat /yanc/.stats/trace` answers "what did the controller just do" the
// same way the rest of the paper's state model answers "what is the
// controller's state".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "yanc/dbg/lockdep.hpp"

namespace yanc::obs {

/// One trace record.  `dur_ns == 0` means an instantaneous event; anything
/// else is a span that ended at `ts_ns + dur_ns`.
struct TraceEvent {
  std::uint64_t seq = 0;    // global record ordinal (never wraps)
  std::uint64_t ts_ns = 0;  // virtual-clock start time
  std::uint64_t dur_ns = 0;
  std::string component;    // "driver", "dist", "vfs", ...
  std::string name;         // "packet_in", "replicate/apply", ...
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Records an instantaneous event.
  void event(std::uint64_t ts_ns, std::string_view component,
             std::string_view name) {
    record(ts_ns, 0, component, name);
  }
  /// Records a span of `dur_ns` starting at `ts_ns`.
  void span(std::uint64_t ts_ns, std::uint64_t dur_ns,
            std::string_view component, std::string_view name) {
    record(ts_ns, dur_ns, component, name);
  }

  /// Oldest-to-newest copy of the retained records.
  std::vector<TraceEvent> snapshot() const;

  /// Records evicted because the ring was full.
  std::uint64_t dropped() const;
  /// Total records ever written.
  std::uint64_t recorded() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

  void clear();

  /// Text rendering, one record per line:
  ///   "<seq> <ts_ns> <dur_ns> <component> <name>\n"
  std::string dump() const;

 private:
  void record(std::uint64_t ts_ns, std::uint64_t dur_ns,
              std::string_view component, std::string_view name);

  mutable dbg::Mutex<dbg::Rank::obs_trace> mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // grows to capacity_, then wraps
  std::size_t next_ = 0;          // write cursor once wrapped
  std::uint64_t seq_ = 0;
};

}  // namespace yanc::obs
