// TraceRing: a bounded in-memory ring of timestamped spans and events.
//
// Subsystems record what happened and when against the simulation's
// VirtualClock (or any other nanosecond timestamp source); the ring keeps
// the most recent `capacity` records and counts what it had to drop.
// StatsFs exposes the ring as the `/yanc/.stats/trace` file, so
// `cat /yanc/.stats/trace` answers "what did the controller just do" the
// same way the rest of the paper's state model answers "what is the
// controller's state".
//
// Records optionally carry causal linkage (trace_id / span_id /
// parent_span_id, plus the queue-wait preceding the span's service time):
// the Tracer (yanc/obs/tracer.hpp) threads these through the pipeline and
// TraceFs reconstructs per-trace span trees from them.  Legacy records
// leave the linkage fields zero and render exactly as before.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "yanc/dbg/lockdep.hpp"

namespace yanc::obs {

/// One trace record.  `dur_ns == 0` means an instantaneous event; anything
/// else is a span that ended at `ts_ns + dur_ns`.
struct TraceEvent {
  std::uint64_t seq = 0;    // global record ordinal (never wraps)
  std::uint64_t ts_ns = 0;  // start time (virtual or steady clock)
  std::uint64_t dur_ns = 0;
  std::string component;    // "driver", "dist", "vfs", ...
  std::string name;         // "packet_in", "replicate/apply", ...

  // Causal linkage (all zero for untraced records).  `queue_ns` is how
  // long the work waited in a queue before `dur_ns` of service began:
  // the span's wall interval is [ts_ns - queue_ns, ts_ns + dur_ns].
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t queue_ns = 0;
  std::string note;  // free-form annotation ("retry 2", "absorbed=3", ...)
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Records an instantaneous event.
  void event(std::uint64_t ts_ns, std::string_view component,
             std::string_view name) {
    TraceEvent e;
    e.ts_ns = ts_ns;
    e.component.assign(component);
    e.name.assign(name);
    record(std::move(e));
  }
  /// Records a span of `dur_ns` starting at `ts_ns`.
  void span(std::uint64_t ts_ns, std::uint64_t dur_ns,
            std::string_view component, std::string_view name) {
    TraceEvent e;
    e.ts_ns = ts_ns;
    e.dur_ns = dur_ns;
    e.component.assign(component);
    e.name.assign(name);
    record(std::move(e));
  }
  /// Records a fully-populated record (linkage fields included).  `seq`
  /// is assigned by the ring; any caller-provided value is overwritten.
  void record(TraceEvent e);

  /// Oldest-to-newest copy of the retained records: seq values in the
  /// returned vector are strictly increasing, whether or not the ring
  /// has wrapped.
  std::vector<TraceEvent> snapshot() const;

  /// Records evicted because the ring was full.
  std::uint64_t dropped() const;
  /// Total records ever written.
  std::uint64_t recorded() const;
  std::size_t size() const;
  std::size_t capacity() const;

  void clear();
  /// Resizes the ring, keeping the newest records that still fit.
  void set_capacity(std::size_t capacity);

  /// Text rendering, one record per line, oldest first:
  ///   "<seq> <ts_ns> <dur_ns> <component> <name>\n"
  /// Records with causal linkage append
  ///   " trace=<id> span=<id> parent=<id> queue_ns=<n>[ note=<text>]".
  std::string dump() const;

 private:
  /// Caller holds mu_.  Oldest retained record; 0 until the ring wraps.
  std::size_t head_locked() const { return head_; }

  mutable dbg::Mutex<dbg::Rank::obs_trace> mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // grows to capacity_, then wraps
  std::size_t head_ = 0;          // index of the oldest record once wrapped
  std::uint64_t seq_ = 0;
};

}  // namespace yanc::obs
