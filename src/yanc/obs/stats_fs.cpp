#include "yanc/obs/stats_fs.hpp"

#include "yanc/dbg/lockdep.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::obs {

using vfs::Credentials;
using vfs::NodeId;

StatsFs::StatsFs(std::shared_ptr<Registry> registry,
                 std::shared_ptr<TraceRing> trace)
    : registry_(std::move(registry)), trace_(std::move(trace)) {
  Node root;
  root.type = vfs::FileType::directory;
  root.name = "/";
  nodes_.emplace(kRootNode, std::move(root));
  dbg::LockGuard lock(mu_);
  if (trace_) {
    NodeId id = next_node_++;
    Node file;
    file.type = vfs::FileType::regular;
    file.name = "trace";
    file.parent = kRootNode;
    file.provider = [ring = trace_] { return ring->dump(); };
    file.last_value = file.provider();
    nodes_.emplace(id, std::move(file));
    nodes_[kRootNode].children.emplace("trace", id);
  }
  // The runtime lock-order graph, as a file: `cat .../dbg/lock_edges`
  // shows every acquired-while-held edge the process has observed, and
  // yanc-analyze diffs it against the statically derived edge set.
  // Empty (not absent) in release builds.
  if (NodeId edges = ensure_path_locked("dbg/lock_edges");
      edges != vfs::kInvalidNode) {
    Node& node = nodes_[edges];
    node.metric_path.clear();
    node.provider = [] { return dbg::dump_lock_edges(); };
    node.last_value = node.provider();
  }
  sync_tree_locked();
}

NodeId StatsFs::ensure_path_locked(const std::string& metric_path) {
  NodeId cur = kRootNode;
  auto components = split_nonempty(metric_path, '/');
  for (std::size_t i = 0; i < components.size(); ++i) {
    bool leaf = i + 1 == components.size();
    Node& dir = nodes_[cur];
    auto it = dir.children.find(components[i]);
    if (it != dir.children.end()) {
      // A name can't be both a metric file and a directory; skip the
      // conflicting registration rather than corrupt the tree.
      if (leaf || nodes_[it->second].type != vfs::FileType::directory)
        return leaf ? it->second : vfs::kInvalidNode;
      cur = it->second;
      continue;
    }
    NodeId id = next_node_++;
    Node child;
    child.type = leaf ? vfs::FileType::regular : vfs::FileType::directory;
    child.name = components[i];
    child.parent = cur;
    if (leaf) {
      child.metric_path = metric_path;
      child.last_value = registry_->value_of(metric_path).value_or("");
    }
    nodes_.emplace(id, std::move(child));
    nodes_[cur].children.emplace(components[i], id);
    // New entries appearing in a watched directory are observable, like
    // procfs gaining a node.
    watches_.emit(cur, vfs::event::created, components[i]);
    cur = id;
  }
  return cur;
}

void StatsFs::sync_tree_locked() {
  std::uint64_t generation = registry_->generation();
  if (generation == synced_generation_) return;
  for (const auto& path : registry_->export_paths())
    if (by_metric_path_.find(path) == by_metric_path_.end()) {
      NodeId id = ensure_path_locked(path);
      if (id != vfs::kInvalidNode) by_metric_path_.emplace(path, id);
    }
  synced_generation_ = generation;
}

const StatsFs::Node* StatsFs::find_synced(NodeId id) {
  sync_tree_locked();
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::string StatsFs::content_of(const Node& node) const {
  if (node.provider) return node.provider();
  auto value = registry_->value_of(node.metric_path);
  return value ? *value + "\n" : std::string();
}

Result<NodeId> StatsFs::lookup(NodeId parent, const std::string& name) {
  dbg::LockGuard lock(mu_);
  const Node* dir = find_synced(parent);
  if (!dir) return Errc::not_found;
  if (dir->type != vfs::FileType::directory) return Errc::not_dir;
  auto it = dir->children.find(name);
  if (it == dir->children.end()) return Errc::not_found;
  return it->second;
}

Result<vfs::Stat> StatsFs::getattr(NodeId node) {
  dbg::LockGuard lock(mu_);
  const Node* n = find_synced(node);
  if (!n) return Errc::not_found;
  vfs::Stat st;
  st.ino = node;
  st.type = n->type;
  st.mode = n->type == vfs::FileType::directory ? 0555 : 0444;
  st.nlink = 1;
  st.size = n->type == vfs::FileType::directory ? n->children.size()
                                                : content_of(*n).size();
  st.version = n->version;
  st.mtime_ns = refresh_tick_;
  st.ctime_ns = 0;
  return st;
}

Result<std::vector<vfs::DirEntry>> StatsFs::readdir(NodeId dir) {
  dbg::LockGuard lock(mu_);
  const Node* n = find_synced(dir);
  if (!n) return Errc::not_found;
  if (n->type != vfs::FileType::directory) return Errc::not_dir;
  std::vector<vfs::DirEntry> out;
  out.reserve(n->children.size());
  for (const auto& [name, id] : n->children)
    out.push_back({name, id, nodes_.at(id).type});
  return out;
}

Result<std::string> StatsFs::readlink(NodeId) { return Errc::invalid_argument; }

Result<std::string> StatsFs::read(NodeId node, std::uint64_t offset,
                                  std::uint64_t size, const Credentials&) {
  dbg::LockGuard lock(mu_);
  const Node* n = find_synced(node);
  if (!n) return Errc::not_found;
  if (n->type == vfs::FileType::directory) return Errc::is_dir;
  std::string content = content_of(*n);
  if (offset >= content.size()) return std::string();
  return content.substr(offset, size);
}

Result<std::vector<std::uint8_t>> StatsFs::getxattr(NodeId,
                                                    const std::string&) {
  return Errc::not_found;
}

Result<std::vector<std::string>> StatsFs::listxattr(NodeId) {
  return std::vector<std::string>{};
}

Status StatsFs::access(NodeId node, std::uint8_t want, const Credentials&) {
  dbg::LockGuard lock(mu_);
  if (!find_synced(node)) return Errc::not_found;
  // World-readable, nothing writable — procfs semantics.
  if (want & 2) return Errc::access_denied;
  return ok_status();
}

Result<NodeId> StatsFs::mkdir(NodeId, const std::string&, std::uint32_t,
                              const Credentials&) {
  return Errc::read_only;
}
Result<NodeId> StatsFs::create(NodeId, const std::string&, std::uint32_t,
                               const Credentials&) {
  return Errc::read_only;
}
Result<NodeId> StatsFs::symlink(NodeId, const std::string&,
                                const std::string&, const Credentials&) {
  return Errc::read_only;
}
Status StatsFs::link(NodeId, NodeId, const std::string&, const Credentials&) {
  return Errc::read_only;
}
Status StatsFs::unlink(NodeId, const std::string&, const Credentials&) {
  return Errc::read_only;
}
Status StatsFs::rmdir(NodeId, const std::string&, const Credentials&) {
  return Errc::read_only;
}
Status StatsFs::rename(NodeId, const std::string&, NodeId,
                       const std::string&, const Credentials&) {
  return Errc::read_only;
}
Result<std::uint64_t> StatsFs::write(NodeId, std::uint64_t, std::string_view,
                                     const Credentials&) {
  return Errc::read_only;
}
Status StatsFs::truncate(NodeId, std::uint64_t, const Credentials&) {
  return Errc::read_only;
}
Status StatsFs::chmod(NodeId, std::uint32_t, const Credentials&) {
  return Errc::read_only;
}
Status StatsFs::chown(NodeId, vfs::Uid, vfs::Gid, const Credentials&) {
  return Errc::read_only;
}
Status StatsFs::setxattr(NodeId, const std::string&,
                         std::vector<std::uint8_t>, const Credentials&) {
  return Errc::read_only;
}
Status StatsFs::removexattr(NodeId, const std::string&, const Credentials&) {
  return Errc::read_only;
}

Result<vfs::WatchRegistry::WatchId> StatsFs::watch(NodeId node,
                                                   std::uint32_t mask,
                                                   vfs::WatchQueuePtr queue) {
  dbg::LockGuard lock(mu_);
  if (!find_synced(node)) return Errc::not_found;
  return watches_.add(node, mask, std::move(queue));
}

void StatsFs::unwatch(vfs::WatchRegistry::WatchId id) { watches_.remove(id); }

std::size_t StatsFs::refresh() {
  dbg::LockGuard lock(mu_);
  sync_tree_locked();
  ++refresh_tick_;
  std::size_t changed = 0;
  for (auto& [id, node] : nodes_) {
    if (node.type != vfs::FileType::regular) continue;
    std::string content = content_of(node);
    if (content == node.last_value) continue;
    node.last_value = std::move(content);
    ++node.version;
    ++changed;
    watches_.emit(id, vfs::event::modified);
    if (node.parent != vfs::kInvalidNode)
      watches_.emit(node.parent, vfs::event::modified, node.name);
  }
  return changed;
}

Result<std::shared_ptr<StatsFs>> mount_stats_fs(
    vfs::Vfs& vfs, const std::string& mount_path,
    std::shared_ptr<TraceRing> trace) {
  if (auto ec = vfs.mkdir_p(mount_path, 0555, Credentials::root())) return ec;
  auto fs = std::make_shared<StatsFs>(vfs.metrics(), std::move(trace));
  if (auto ec = vfs.mount(mount_path, fs)) return ec;
  return fs;
}

}  // namespace yanc::obs
