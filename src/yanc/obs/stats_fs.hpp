// StatsFs: the obs registry materialized as a procfs-style file system.
//
// The paper's prescription is that *every* piece of controller state is a
// file; StatsFs applies that to the controller's own telemetry.  Each
// metric path ("driver/of/packet_in_total") becomes a read-only file in a
// directory tree, values are formatted at read time (so `cat` always sees
// the live number), histograms fan out into `_count`/`_p50`/`_p90`/`_p99`
// files, an attached TraceRing is exposed as a top-level `trace` file, and
// the dbg lock-order edge graph is exposed at `dbg/lock_edges` (empty in
// release builds, where no graph is recorded).
//
// Mounted at /yanc/.stats (mount_stats_fs), the whole subtree is readable
// and watchable with the ordinary shell coreutils and vfs::WatchQueue
// machinery — `cat /yanc/.stats/vfs/lookup_total`, `tree /yanc/.stats`,
// watch + refresh() for change notification.
//
// The tree only ever grows: metrics register once and never unregister,
// so NodeIds handed out (and watch registrations against them) stay valid
// for the life of the file system.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "yanc/obs/metrics.hpp"
#include "yanc/obs/trace.hpp"
#include "yanc/vfs/filesystem.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::obs {

class StatsFs : public vfs::Filesystem {
 public:
  explicit StatsFs(std::shared_ptr<Registry> registry,
                   std::shared_ptr<TraceRing> trace = nullptr);

  vfs::NodeId root() const override { return kRootNode; }

  // --- namespace (read side) ---------------------------------------------
  Result<vfs::NodeId> lookup(vfs::NodeId parent,
                             const std::string& name) override;
  Result<vfs::Stat> getattr(vfs::NodeId node) override;
  Result<std::vector<vfs::DirEntry>> readdir(vfs::NodeId dir) override;
  Result<std::string> readlink(vfs::NodeId node) override;
  Result<std::string> read(vfs::NodeId node, std::uint64_t offset,
                           std::uint64_t size,
                           const vfs::Credentials& creds) override;
  Result<std::vector<std::uint8_t>> getxattr(vfs::NodeId node,
                                             const std::string& name) override;
  Result<std::vector<std::string>> listxattr(vfs::NodeId node) override;
  Status access(vfs::NodeId node, std::uint8_t want,
                const vfs::Credentials& creds) override;

  // --- mutations: everything is EROFS ------------------------------------
  Result<vfs::NodeId> mkdir(vfs::NodeId, const std::string&, std::uint32_t,
                            const vfs::Credentials&) override;
  Result<vfs::NodeId> create(vfs::NodeId, const std::string&, std::uint32_t,
                             const vfs::Credentials&) override;
  Result<vfs::NodeId> symlink(vfs::NodeId, const std::string&,
                              const std::string&,
                              const vfs::Credentials&) override;
  Status link(vfs::NodeId, vfs::NodeId, const std::string&,
              const vfs::Credentials&) override;
  Status unlink(vfs::NodeId, const std::string&,
                const vfs::Credentials&) override;
  Status rmdir(vfs::NodeId, const std::string&,
               const vfs::Credentials&) override;
  Status rename(vfs::NodeId, const std::string&, vfs::NodeId,
                const std::string&, const vfs::Credentials&) override;
  Result<std::uint64_t> write(vfs::NodeId, std::uint64_t, std::string_view,
                              const vfs::Credentials&) override;
  Status truncate(vfs::NodeId, std::uint64_t,
                  const vfs::Credentials&) override;
  Status chmod(vfs::NodeId, std::uint32_t, const vfs::Credentials&) override;
  Status chown(vfs::NodeId, vfs::Uid, vfs::Gid,
               const vfs::Credentials&) override;
  Status setxattr(vfs::NodeId, const std::string&,
                  std::vector<std::uint8_t>, const vfs::Credentials&) override;
  Status removexattr(vfs::NodeId, const std::string&,
                     const vfs::Credentials&) override;

  // --- monitoring ---------------------------------------------------------
  Result<vfs::WatchRegistry::WatchId> watch(vfs::NodeId node,
                                            std::uint32_t mask,
                                            vfs::WatchQueuePtr queue) override;
  void unwatch(vfs::WatchRegistry::WatchId id) override;

  /// Emits a `modified` event for every metric file whose formatted value
  /// changed since the previous refresh (and for `trace` when the ring
  /// advanced).  Watch-based consumers pair a WatchQueue with a periodic
  /// refresh() — the paper's inotify loop over controller state.  Returns
  /// the number of files that changed.
  std::size_t refresh();

  const std::shared_ptr<Registry>& registry() const noexcept {
    return registry_;
  }
  const std::shared_ptr<TraceRing>& trace_ring() const noexcept {
    return trace_;
  }

 private:
  static constexpr vfs::NodeId kRootNode = 1;

  struct Node {
    vfs::FileType type = vfs::FileType::directory;
    std::string name;
    vfs::NodeId parent = vfs::kInvalidNode;
    std::string metric_path;  // full registry export path (files only)
    // Synthetic files (trace, dbg/lock_edges): content comes from the
    // provider instead of the registry.  refresh() diffing works the same
    // way, so provider files are watchable like any metric file.
    std::function<std::string()> provider;
    std::map<std::string, vfs::NodeId> children;  // dirs only, sorted
    std::string last_value;   // last refresh()-observed content
    std::uint64_t version = 0;
  };

  /// Folds newly registered metrics into the tree.  Called (cheap
  /// generation check) at every namespace entry point.
  void sync_tree_locked();
  vfs::NodeId ensure_path_locked(const std::string& metric_path);
  std::string content_of(const Node& node) const;
  const Node* find_synced(vfs::NodeId id);

  mutable dbg::Mutex<dbg::Rank::stats_fs> mu_;
  std::shared_ptr<Registry> registry_;
  std::shared_ptr<TraceRing> trace_;
  std::unordered_map<vfs::NodeId, Node> nodes_;
  std::unordered_map<std::string, vfs::NodeId> by_metric_path_;
  vfs::NodeId next_node_ = kRootNode + 1;
  std::uint64_t synced_generation_ = 0;
  std::uint64_t refresh_tick_ = 0;
  vfs::WatchRegistry watches_;
};

/// Creates a StatsFs over `vfs`'s own metrics registry and mounts it at
/// `mount_path` (default "/yanc/.stats"), creating the mount point.
/// `trace` optionally exposes a trace ring as `<mount_path>/trace`.
Result<std::shared_ptr<StatsFs>> mount_stats_fs(
    vfs::Vfs& vfs, const std::string& mount_path = "/yanc/.stats",
    std::shared_ptr<TraceRing> trace = nullptr);

}  // namespace yanc::obs
