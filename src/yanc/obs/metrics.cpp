#include "yanc/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace yanc::obs {

std::uint64_t Histogram::bucket_mid(int index) noexcept {
  if (index < kSubCount) return static_cast<std::uint64_t>(index);
  int decade = index / kSubCount - 1 + kSubBits;  // msb of values in bucket
  int sub = index % kSubCount;
  std::uint64_t lo = (std::uint64_t{1} << decade) +
                     (static_cast<std::uint64_t>(sub) << (decade - kSubBits));
  std::uint64_t width = std::uint64_t{1} << (decade - kSubBits);
  return lo + width / 2;
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  std::uint64_t total = count();
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  auto rank = static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                                   static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_mid(i);
  }
  return bucket_mid(kBucketCount - 1);  // racing writers; report the tail
}

template <typename T>
T* Registry::find_or_create(std::string_view name, MetricKind kind,
                            std::deque<T>& storage, T* Entry::*slot) {
  dbg::LockGuard lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end())
    return it->second.kind == kind ? it->second.*slot : nullptr;
  storage.emplace_back();
  Entry entry;
  entry.kind = kind;
  entry.*slot = &storage.back();
  entries_.emplace(std::string(name), entry);
  generation_.fetch_add(1, std::memory_order_release);
  return &storage.back();
}

Counter* Registry::counter(std::string_view name) {
  return find_or_create(name, MetricKind::counter, counters_,
                        &Entry::counter);
}

Gauge* Registry::gauge(std::string_view name) {
  return find_or_create(name, MetricKind::gauge, gauges_, &Entry::gauge);
}

Histogram* Registry::histogram(std::string_view name) {
  return find_or_create(name, MetricKind::histogram, histograms_,
                        &Entry::histogram);
}

bool Registry::contains(std::string_view name) const {
  dbg::LockGuard lock(mu_);
  return entries_.find(name) != entries_.end();
}

std::size_t Registry::size() const {
  dbg::LockGuard lock(mu_);
  return entries_.size();
}

void Registry::export_entry(const std::string& name, const Entry& entry,
                            std::vector<ExportedValue>& out) {
  switch (entry.kind) {
    case MetricKind::counter:
      out.push_back({name, std::to_string(entry.counter->value())});
      break;
    case MetricKind::gauge:
      out.push_back({name, std::to_string(entry.gauge->value())});
      break;
    case MetricKind::histogram:
      out.push_back(
          {name + "_count", std::to_string(entry.histogram->count())});
      out.push_back(
          {name + "_p50", std::to_string(entry.histogram->percentile(50))});
      out.push_back(
          {name + "_p90", std::to_string(entry.histogram->percentile(90))});
      out.push_back(
          {name + "_p99", std::to_string(entry.histogram->percentile(99))});
      break;
  }
}

std::vector<ExportedValue> Registry::export_values() const {
  std::vector<ExportedValue> out;
  dbg::LockGuard lock(mu_);
  for (const auto& [name, entry] : entries_) export_entry(name, entry, out);
  return out;
}

std::vector<std::string> Registry::export_paths() const {
  std::vector<std::string> out;
  dbg::LockGuard lock(mu_);
  for (const auto& [name, entry] : entries_) {
    if (entry.kind == MetricKind::histogram) {
      for (const char* suffix : {"_count", "_p50", "_p90", "_p99"})
        out.push_back(name + suffix);
    } else {
      out.push_back(name);
    }
  }
  return out;
}

std::optional<std::string> Registry::value_of(const std::string& path) const {
  dbg::LockGuard lock(mu_);
  auto it = entries_.find(path);
  if (it != entries_.end()) {
    switch (it->second.kind) {
      case MetricKind::counter:
        return std::to_string(it->second.counter->value());
      case MetricKind::gauge:
        return std::to_string(it->second.gauge->value());
      case MetricKind::histogram:
        break;  // histograms export only suffixed paths
    }
    return std::nullopt;
  }
  // Histogram sub-file: strip a known suffix and look the base name up.
  for (const char* suffix : {"_count", "_p50", "_p90", "_p99"}) {
    std::string_view sv(suffix);
    if (path.size() <= sv.size() ||
        path.compare(path.size() - sv.size(), sv.size(), sv) != 0)
      continue;
    auto base = entries_.find(path.substr(0, path.size() - sv.size()));
    if (base == entries_.end() ||
        base->second.kind != MetricKind::histogram)
      continue;
    const Histogram* h = base->second.histogram;
    if (sv == "_count") return std::to_string(h->count());
    if (sv == "_p50") return std::to_string(h->percentile(50));
    if (sv == "_p90") return std::to_string(h->percentile(90));
    return std::to_string(h->percentile(99));
  }
  return std::nullopt;
}

}  // namespace yanc::obs
