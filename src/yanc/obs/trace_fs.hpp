// TraceFs: causal-trace capture and export as a file system.
//
// The yanc way to control anything is a file write, so tracing is driven
// from the shell like everything else:
//
//   $ echo start > /yanc/.trace/ctl               # arm capture
//   $ echo 'sample_every=8' > /yanc/.trace/ctl    # 1-in-8 ingress sampling
//   $ echo 'trigger=dur_ns>1ms' > /yanc/.trace/ctl  # keep only slow spans
//   $ cat /yanc/.trace/status                     # what is in force
//   $ ls /yanc/.trace/by-id                       # captured trace ids
//   $ cat /yanc/.trace/by-id/42                   # one trace, span tree
//   $ cat /yanc/.trace/export.json                # Chrome trace_event JSON
//
// Writes parse-then-apply: an invalid ctl line fails with EINVAL and
// changes nothing.  Mounted at /yanc/.trace, a sibling of /yanc/.stats
// (where the per-stage pipeline/<stage>/{queue_ns,service_ns} histograms
// this subtree's tracer feeds are visible) and /yanc/.faults.
#pragma once

#include <memory>

#include "yanc/obs/tracer.hpp"
#include "yanc/vfs/filesystem.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::obs {

class TraceFs : public vfs::Filesystem {
 public:
  /// Serves `tracer` (defaults to the process tracer; tests inject their
  /// own so runs stay isolated).
  explicit TraceFs(Tracer* tracer = nullptr);

  vfs::NodeId root() const override { return kRoot; }

  // --- namespace ----------------------------------------------------------
  Result<vfs::NodeId> lookup(vfs::NodeId parent,
                             const std::string& name) override;
  Result<vfs::Stat> getattr(vfs::NodeId node) override;
  Result<std::vector<vfs::DirEntry>> readdir(vfs::NodeId dir) override;
  Result<std::string> readlink(vfs::NodeId node) override;
  Result<std::string> read(vfs::NodeId node, std::uint64_t offset,
                           std::uint64_t size,
                           const vfs::Credentials& creds) override;
  Result<std::vector<std::uint8_t>> getxattr(vfs::NodeId node,
                                             const std::string& name) override;
  Result<std::vector<std::string>> listxattr(vfs::NodeId node) override;
  Status access(vfs::NodeId node, std::uint8_t want,
                const vfs::Credentials& creds) override;

  // --- control writes -----------------------------------------------------
  Result<std::uint64_t> write(vfs::NodeId node, std::uint64_t offset,
                              std::string_view data,
                              const vfs::Credentials& creds) override;
  Status truncate(vfs::NodeId node, std::uint64_t size,
                  const vfs::Credentials& creds) override;

  // --- namespace mutations: the tree is read-only -------------------------
  Result<vfs::NodeId> mkdir(vfs::NodeId, const std::string&, std::uint32_t,
                            const vfs::Credentials&) override;
  Result<vfs::NodeId> create(vfs::NodeId, const std::string&, std::uint32_t,
                             const vfs::Credentials&) override;
  Result<vfs::NodeId> symlink(vfs::NodeId, const std::string&,
                              const std::string&,
                              const vfs::Credentials&) override;
  Status link(vfs::NodeId, vfs::NodeId, const std::string&,
              const vfs::Credentials&) override;
  Status unlink(vfs::NodeId, const std::string&,
                const vfs::Credentials&) override;
  Status rmdir(vfs::NodeId, const std::string&,
               const vfs::Credentials&) override;
  Status rename(vfs::NodeId, const std::string&, vfs::NodeId,
                const std::string&, const vfs::Credentials&) override;
  Status chmod(vfs::NodeId, std::uint32_t, const vfs::Credentials&) override;
  Status chown(vfs::NodeId, vfs::Uid, vfs::Gid,
               const vfs::Credentials&) override;
  Status setxattr(vfs::NodeId, const std::string&,
                  std::vector<std::uint8_t>, const vfs::Credentials&) override;
  Status removexattr(vfs::NodeId, const std::string&,
                     const vfs::Credentials&) override;

  // --- monitoring ---------------------------------------------------------
  Result<vfs::WatchRegistry::WatchId> watch(vfs::NodeId node,
                                            std::uint32_t mask,
                                            vfs::WatchQueuePtr queue) override;
  void unwatch(vfs::WatchRegistry::WatchId id) override;

 private:
  // Fixed nodes; by-id entries get dynamic ids from kByIdBase up.
  static constexpr vfs::NodeId kRoot = 1;
  static constexpr vfs::NodeId kCtl = 2;
  static constexpr vfs::NodeId kStatus = 3;
  static constexpr vfs::NodeId kExport = 4;
  static constexpr vfs::NodeId kByIdDir = 5;
  static constexpr vfs::NodeId kByIdBase = 100;

  static bool is_dir(vfs::NodeId node) {
    return node == kRoot || node == kByIdDir;
  }
  static bool is_fixed_file(vfs::NodeId node) {
    return node == kCtl || node == kStatus || node == kExport;
  }

  std::string content_of(vfs::NodeId node) const;
  Status apply_ctl(std::string_view text);
  /// Assigns (or returns) the stable NodeId serving `trace_id`.
  vfs::NodeId node_for_trace(std::uint64_t trace_id);
  /// The trace a dynamic node serves, or 0.
  std::uint64_t trace_for_node(vfs::NodeId node) const;

  Tracer* tracer_;
  mutable dbg::Mutex<dbg::Rank::trace_fs> mu_;
  vfs::NodeId next_dynamic_ = kByIdBase;
  std::map<std::uint64_t, vfs::NodeId> trace_nodes_;
  std::map<vfs::NodeId, std::uint64_t> node_traces_;
  vfs::WatchRegistry watches_;
};

/// Creates a TraceFs over the process tracer, binds the tracer's
/// per-stage histograms into `vfs`'s metrics registry, and mounts it at
/// `mount_path` (creating the mount point).  Sibling of mount_stats_fs.
Result<std::shared_ptr<TraceFs>> mount_trace_fs(
    vfs::Vfs& vfs, const std::string& mount_path = "/yanc/.trace");

}  // namespace yanc::obs
