#include "yanc/obs/tracer.hpp"

#include <chrono>

namespace yanc::obs {

Tracer& tracer() noexcept {
  static Tracer instance;
  return instance;
}

std::uint64_t Tracer::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::clear() {
  ring_.clear();
  dbg::LockGuard lock(mu_);
  wire_.clear();
  wire_order_.clear();
  path_.clear();
  path_order_.clear();
}

void Tracer::set_sample_every(std::uint32_t n) {
  sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

TraceRef Tracer::mint(std::string_view component, std::string_view name,
                      std::string note) {
  if (!enabled()) return {};
  std::uint32_t every = sample_every();
  if (every > 1 &&
      sample_counter_.fetch_add(1, std::memory_order_relaxed) % every != 0)
    return {};
  std::uint64_t id = next_id();
  TraceRef ref{id, id};  // the root span carries its trace's id
  TraceEvent e;
  e.ts_ns = now_ns();
  e.component.assign(component);
  e.name.assign(name);
  e.trace_id = ref.trace_id;
  e.span_id = ref.span_id;
  e.note = std::move(note);
  ring_.record(std::move(e));
  return ref;
}

TraceRef Tracer::child(TraceRef parent, std::string_view component,
                       std::string_view name, std::uint64_t start_ns,
                       std::uint64_t end_ns, std::uint64_t queue_ns,
                       std::string note) {
  if (!parent) return {};
  TraceRef self{parent.trace_id, next_id()};
  record_span(parent, self, component, name, start_ns, end_ns, queue_ns,
              std::move(note));
  return self;
}

void Tracer::annotate(TraceRef parent, std::string_view component,
                      std::string_view name, std::string note) {
  if (!parent) return;
  TraceEvent e;
  e.ts_ns = now_ns();
  e.component.assign(component);
  e.name.assign(name);
  e.trace_id = parent.trace_id;
  e.span_id = next_id();
  e.parent_span_id = parent.span_id;
  e.note = std::move(note);
  ring_.record(std::move(e));
}

void Tracer::record_span(TraceRef parent, TraceRef self,
                         std::string_view component, std::string_view name,
                         std::uint64_t start_ns, std::uint64_t end_ns,
                         std::uint64_t queue_ns, std::string note) {
  std::uint64_t dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  record_stage(component, name, queue_ns, dur_ns);
  std::uint64_t trigger = trigger_ns();
  if (trigger != 0 && queue_ns + dur_ns < trigger) return;
  TraceEvent e;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.component.assign(component);
  e.name.assign(name);
  e.trace_id = self.trace_id;
  e.span_id = self.span_id;
  e.parent_span_id = parent.span_id;
  e.queue_ns = queue_ns;
  e.note = std::move(note);
  ring_.record(std::move(e));
}

void Tracer::record_stage(std::string_view component, std::string_view name,
                          std::uint64_t queue_ns, std::uint64_t service_ns) {
  StageHandles handles;
  {
    dbg::LockGuard lock(mu_);
    if (!registry_) return;
    std::string stage;
    stage.reserve(component.size() + name.size() + 1);
    stage.assign(component);
    stage += '/';
    stage += name;
    auto it = stages_.find(stage);
    if (it == stages_.end()) {
      StageHandles fresh;
      fresh.queue = registry_->histogram("pipeline/" + stage + "/queue_ns");
      fresh.service =
          registry_->histogram("pipeline/" + stage + "/service_ns");
      it = stages_.emplace(std::move(stage), fresh).first;
    }
    handles = it->second;
  }
  if (handles.queue) handles.queue->record(queue_ns);
  if (handles.service) handles.service->record(service_ns);
}

void Tracer::wire_put(std::uint64_t dpid, std::uint32_t xid, TraceRef ref) {
  if (!ref) return;
  dbg::LockGuard lock(mu_);
  WireKey key{dpid, xid};
  if (wire_.emplace(key, Handoff{ref, now_ns()}).second) {
    wire_order_.push_back(key);
    // Shed keys already claimed by take() (amortized O(1): each pushed
    // key is popped at most once), then evict true overflow FIFO.
    while (!wire_order_.empty() && !wire_.count(wire_order_.front()))
      wire_order_.pop_front();
    while (wire_.size() > kMaxInflight && !wire_order_.empty()) {
      wire_.erase(wire_order_.front());
      wire_order_.pop_front();
    }
  }
}

Tracer::Handoff Tracer::wire_take(std::uint64_t dpid, std::uint32_t xid) {
  dbg::LockGuard lock(mu_);
  auto it = wire_.find(WireKey{dpid, xid});
  if (it == wire_.end()) return {};
  Handoff out = it->second;
  wire_.erase(it);
  return out;  // the stale wire_order_ entry is skipped by future evictions
}

void Tracer::path_put(const std::string& path, TraceRef ref) {
  if (!ref) return;
  dbg::LockGuard lock(mu_);
  if (path_.emplace(path, Handoff{ref, now_ns()}).second) {
    path_order_.push_back(path);
    while (!path_order_.empty() && !path_.count(path_order_.front()))
      path_order_.pop_front();
    while (path_.size() > kMaxInflight && !path_order_.empty()) {
      path_.erase(path_order_.front());
      path_order_.pop_front();
    }
  }
}

Tracer::Handoff Tracer::path_take(const std::string& path) {
  dbg::LockGuard lock(mu_);
  auto it = path_.find(path);
  if (it == path_.end()) return {};
  Handoff out = it->second;
  path_.erase(it);
  return out;
}

std::size_t Tracer::inflight() const {
  dbg::LockGuard lock(mu_);
  return wire_.size() + path_.size();
}

void Tracer::bind_metrics(std::shared_ptr<Registry> reg) {
  dbg::LockGuard lock(mu_);
  registry_ = std::move(reg);
  stages_.clear();
}

Span::Span(TraceRef parent, std::string_view component, std::string_view name,
           std::uint64_t queue_ns) {
  if (!parent) return;
  parent_ = parent;
  ref_ = TraceRef{parent.trace_id, tracer().next_id()};
  start_ns_ = Tracer::now_ns();
  queue_ns_ = queue_ns;
  component_.assign(component);
  name_.assign(name);
}

Span::~Span() {
  if (!ref_) return;
  tracer().record_span(parent_, ref_, component_, name_, start_ns_,
                       Tracer::now_ns(), queue_ns_, std::move(note_));
}

void Span::note(std::string_view text) {
  if (!ref_) return;
  if (!note_.empty()) note_ += ',';
  note_ += text;
}

}  // namespace yanc::obs
