#include "yanc/obs/trace.hpp"

namespace yanc::obs {

void TraceRing::record(std::uint64_t ts_ns, std::uint64_t dur_ns,
                       std::string_view component, std::string_view name) {
  dbg::LockGuard lock(mu_);
  TraceEvent e;
  e.seq = seq_++;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.component.assign(component);
  e.name.assign(name);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  dbg::LockGuard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once wrapped, next_ points at the oldest record.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

std::uint64_t TraceRing::dropped() const {
  dbg::LockGuard lock(mu_);
  return seq_ - ring_.size();
}

std::uint64_t TraceRing::recorded() const {
  dbg::LockGuard lock(mu_);
  return seq_;
}

std::size_t TraceRing::size() const {
  dbg::LockGuard lock(mu_);
  return ring_.size();
}

void TraceRing::clear() {
  dbg::LockGuard lock(mu_);
  ring_.clear();
  next_ = 0;
}

std::string TraceRing::dump() const {
  std::string out;
  for (const auto& e : snapshot()) {
    out += std::to_string(e.seq);
    out += ' ';
    out += std::to_string(e.ts_ns);
    out += ' ';
    out += std::to_string(e.dur_ns);
    out += ' ';
    out += e.component;
    out += ' ';
    out += e.name;
    out += '\n';
  }
  return out;
}

}  // namespace yanc::obs
