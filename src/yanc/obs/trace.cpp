#include "yanc/obs/trace.hpp"

namespace yanc::obs {

void TraceRing::record(TraceEvent e) {
  dbg::LockGuard lock(mu_);
  e.seq = seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  // Overwrite the oldest record; its successor becomes the new oldest.
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  dbg::LockGuard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::uint64_t TraceRing::dropped() const {
  dbg::LockGuard lock(mu_);
  return seq_ - ring_.size();
}

std::uint64_t TraceRing::recorded() const {
  dbg::LockGuard lock(mu_);
  return seq_;
}

std::size_t TraceRing::size() const {
  dbg::LockGuard lock(mu_);
  return ring_.size();
}

std::size_t TraceRing::capacity() const {
  dbg::LockGuard lock(mu_);
  return capacity_;
}

void TraceRing::clear() {
  dbg::LockGuard lock(mu_);
  ring_.clear();
  head_ = 0;
}

void TraceRing::set_capacity(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  dbg::LockGuard lock(mu_);
  if (capacity == capacity_) return;
  // Rotate into oldest-first order, then keep the newest `capacity`.
  std::vector<TraceEvent> ordered;
  ordered.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    ordered.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
  if (ordered.size() > capacity)
    ordered.erase(ordered.begin(),
                  ordered.begin() +
                      static_cast<std::ptrdiff_t>(ordered.size() - capacity));
  capacity_ = capacity;
  ring_ = std::move(ordered);
  head_ = 0;
}

std::string TraceRing::dump() const {
  std::string out;
  for (const auto& e : snapshot()) {
    out += std::to_string(e.seq);
    out += ' ';
    out += std::to_string(e.ts_ns);
    out += ' ';
    out += std::to_string(e.dur_ns);
    out += ' ';
    out += e.component;
    out += ' ';
    out += e.name;
    if (e.trace_id != 0) {
      out += " trace=";
      out += std::to_string(e.trace_id);
      out += " span=";
      out += std::to_string(e.span_id);
      out += " parent=";
      out += std::to_string(e.parent_span_id);
      out += " queue_ns=";
      out += std::to_string(e.queue_ns);
      if (!e.note.empty()) {
        out += " note=";
        out += e.note;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace yanc::obs
