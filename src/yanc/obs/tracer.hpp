// Causal tracing for the controller pipeline.
//
// A TraceRef (trace_id, span_id) is minted at an ingress point — a
// packet-in arriving at the software switch, or a user write into the
// yanc FS — and carried through every stage the work crosses: the
// OpenFlow channel, the driver's watch shards, vfs watch events
// (surviving coalescing: a merged event keeps the refs it absorbed),
// app event buffers, and the FLOW_MOD egress train.  Each stage records
// a child span into the process TraceRing, splitting the time the work
// *waited* in a queue (queue_ns) from the time the stage *worked* on it
// (dur_ns), so `/yanc/.trace/by-id/<id>` can answer "where did this
// flow's four milliseconds go" stage by stage.
//
// Propagation uses two mechanisms:
//
//  - A thread-local current ref (TraceScope).  Everything the pipeline
//    does synchronously on the ingress thread — FS writes, watch emits —
//    inherits the ref with no plumbing: WatchRegistry::emit stamps the
//    current ref onto the events it fans out.
//
//  - Side-band correlation maps for the two asynchronous handoffs whose
//    carriers cannot grow a context field: raw OpenFlow bytes crossing a
//    net::Channel (keyed by (datapath_id, xid); fault hooks mutate those
//    byte queues directly, so metadata cannot ride alongside) and pkt_*
//    event directories crossing from the driver to an app (keyed by the
//    directory path).  put() stamps an enqueue timestamp; take() on the
//    consuming side yields the ref plus the measured queue-wait.  Maps
//    are bounded: entries whose consumer never arrives (a dropped
//    message) are evicted FIFO, so faults cannot leak memory.
//
// Cost when tracing is off: every hook is gated on one relaxed atomic
// load, mint() returns a zero ref, and a zero ref makes every downstream
// call a no-op — the same "pay only when armed" discipline yanc::dbg
// established for lock checking.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "yanc/dbg/lockdep.hpp"
#include "yanc/obs/metrics.hpp"
#include "yanc/obs/trace.hpp"

namespace yanc::obs {

/// A causal context: which trace this work belongs to and which span is
/// its parent.  Zero-initialized means "untraced" and disarms every
/// tracing call it is passed to.
struct TraceRef {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  explicit operator bool() const noexcept { return trace_id != 0; }
};

namespace detail {
inline thread_local TraceRef t_current_trace{};
}  // namespace detail

/// The calling thread's current context (zero when none is active).
inline TraceRef current_trace() noexcept { return detail::t_current_trace; }

/// RAII: installs `ref` as the thread's current context, restoring the
/// previous one on destruction.  A zero ref installs nothing and leaves
/// any active context in place — so the ingress pattern ("mint only when
/// no context is active, then open a scope") composes when nested: the
/// inner ingress's zero scope must not sever the outer trace from the
/// watch events emitted under it.
class TraceScope {
 public:
  explicit TraceScope(TraceRef ref) noexcept
      : prev_(detail::t_current_trace) {
    if (ref) detail::t_current_trace = ref;
  }
  ~TraceScope() { detail::t_current_trace = prev_; }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRef prev_;
};

class Tracer;

/// Process-global tracer.  One pipeline, one tracer: the switch side and
/// the controller side of a channel must share the correlation maps.
Tracer& tracer() noexcept;

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096) : ring_(capacity) {}

  // --- capture control (driven by TraceFs's ctl file) ---------------------
  void start() { enabled_.store(true, std::memory_order_relaxed); }
  void stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Clears the ring and both correlation maps (not the id counter: refs
  /// already in flight stay unique).
  void clear();

  /// Mint one trace per N ingress events (1 = every event).
  void set_sample_every(std::uint32_t n);
  std::uint32_t sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Trigger predicate: when nonzero, a timed span is recorded into the
  /// ring only if queue_ns + dur_ns >= trigger.  Anchors (mint) and
  /// annotations always record, so a filtered trace keeps its skeleton.
  void set_trigger_ns(std::uint64_t ns) {
    trigger_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t trigger_ns() const noexcept {
    return trigger_ns_.load(std::memory_order_relaxed);
  }

  void set_capacity(std::size_t capacity) { ring_.set_capacity(capacity); }

  /// Wall time for span boundaries.  Deliberately the steady clock, not
  /// the simulation's virtual clock: queue-wait vs service attribution
  /// measures the controller process, which runs in real time even when
  /// the data plane it serves is simulated.
  static std::uint64_t now_ns() noexcept;

  // --- span recording -----------------------------------------------------
  /// Mints a root context at an ingress point, honoring sampling.
  /// Returns a zero ref (disarming all downstream calls) when tracing is
  /// off or this ingress lost the sampling draw.
  TraceRef mint(std::string_view component, std::string_view name,
                std::string note = {});

  /// Records a completed child span of `parent` and returns the child's
  /// ref (so later stages can parent to it).  `start_ns`..`end_ns` is the
  /// service interval; `queue_ns` is the wait that preceded it.  No-op
  /// returning zero when `parent` is zero.
  TraceRef child(TraceRef parent, std::string_view component,
                 std::string_view name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint64_t queue_ns,
                 std::string note = {});

  /// Records an instantaneous annotation under `parent` (fault events:
  /// "retry 2", "connection lost").  Bypasses the trigger filter.
  void annotate(TraceRef parent, std::string_view component,
                std::string_view name, std::string note);

  // --- side-band correlation ----------------------------------------------
  struct Handoff {
    TraceRef ref;
    std::uint64_t ts_ns = 0;  // when the producer enqueued the work
    explicit operator bool() const noexcept { return bool(ref); }
  };

  /// Associates an in-flight OpenFlow message with a ref.  No-op for a
  /// zero ref.
  void wire_put(std::uint64_t dpid, std::uint32_t xid, TraceRef ref);
  /// Claims (and removes) the association; zero Handoff when absent.
  Handoff wire_take(std::uint64_t dpid, std::uint32_t xid);

  /// Same for a pkt_* event directory handed from driver to apps.
  void path_put(const std::string& path, TraceRef ref);
  Handoff path_take(const std::string& path);

  /// Outstanding correlation entries (leak check for fault tests).
  std::size_t inflight() const;

  // --- plumbing ------------------------------------------------------------
  TraceRing& ring() noexcept { return ring_; }
  const TraceRing& ring() const noexcept { return ring_; }

  /// Binds per-stage latency histograms
  /// (`pipeline/<component>/<name>/{queue_ns,service_ns}`) into `reg`.
  /// The registry is retained; rebinding drops cached stage handles.
  void bind_metrics(std::shared_ptr<Registry> reg);

 private:
  friend class Span;  // records under its pre-allocated ref

  std::uint64_t next_id() noexcept {
    return ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Shared record path: `self` is the already-assigned child ref.
  void record_span(TraceRef parent, TraceRef self, std::string_view component,
                   std::string_view name, std::uint64_t start_ns,
                   std::uint64_t end_ns, std::uint64_t queue_ns,
                   std::string note);
  void record_stage(std::string_view component, std::string_view name,
                    std::uint64_t queue_ns, std::uint64_t service_ns);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sample_every_{1};
  std::atomic<std::uint64_t> sample_counter_{0};
  std::atomic<std::uint64_t> trigger_ns_{0};
  std::atomic<std::uint64_t> ids_{0};
  TraceRing ring_;

  // Bounded so a consumer that never arrives (dropped message, app that
  // never drains) cannot grow the maps without limit.
  static constexpr std::size_t kMaxInflight = 4096;

  using WireKey = std::pair<std::uint64_t, std::uint32_t>;
  mutable dbg::Mutex<dbg::Rank::obs_tracer> mu_;
  std::map<WireKey, Handoff> wire_;
  std::deque<WireKey> wire_order_;
  std::map<std::string, Handoff> path_;
  std::deque<std::string> path_order_;
  std::shared_ptr<Registry> registry_;
  struct StageHandles {
    Histogram* queue = nullptr;
    Histogram* service = nullptr;
  };
  std::map<std::string, StageHandles, std::less<>> stages_;
};

/// RAII service-time span: measures from construction to destruction and
/// records a child of `parent` at destruction.  Inert (no clock reads, no
/// allocation) when constructed with a zero parent.  `ref()` is valid
/// immediately, so nested stages can parent to a still-open span.
///
/// Span guards time a *stage*; holding one across a blocking wait or a
/// `co_` suspension would book the wait as service time, so yanc-lint's
/// span-wait rule rejects that pattern.
class Span {
 public:
  Span(TraceRef parent, std::string_view component, std::string_view name,
       std::uint64_t queue_ns = 0);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The child span's ref (zero when the span is inert).
  TraceRef ref() const noexcept { return ref_; }
  explicit operator bool() const noexcept { return bool(ref_); }

  /// Appends an annotation to the note recorded at destruction.
  void note(std::string_view text);

 private:
  TraceRef parent_{};
  TraceRef ref_{};
  std::uint64_t start_ns_ = 0;
  std::uint64_t queue_ns_ = 0;
  std::string component_;
  std::string name_;
  std::string note_;
};

}  // namespace yanc::obs
