// yanc::obs metrics: a lock-cheap registry of named Counters, Gauges and
// fixed-bucket latency Histograms.
//
// The paper's thesis is that *all* controller state should be observable
// through the file system; this registry is the in-memory half of that
// story, and StatsFs (stats_fs.hpp) is the procfs-style subtree that
// materializes it at /yanc/.stats.
//
// Usage contract:
//   * registration (`registry.counter("vfs/lookup_total")`) takes a mutex
//     and is meant to happen once, at subsystem construction.  The returned
//     handle is a plain pointer with registry lifetime — hot paths keep it
//     and never touch the registry again.
//   * updates through handles are single relaxed atomic ops; concurrent
//     writers never block each other or readers.
//   * metric names are '/'-separated paths ("subsystem/metric_total");
//     StatsFs turns each segment into a directory level.  Counters end in
//     `_total`, gauges describe a level (`_depth`, `_bytes`), histograms
//     end in their unit (`_ns`) and export `<name>_{count,p50,p90,p99}`.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "yanc/dbg/lockdep.hpp"

namespace yanc::obs {

/// Monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, connected switches, bytes resident).
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log-linear histogram (HdrHistogram-style): values are
/// binned into powers of two, each split into 16 linear sub-buckets, so
/// any reported percentile is within ~6% of the true value.  record() is
/// three relaxed atomic adds; percentile() walks the (fixed-size) bucket
/// array and may be called concurrently with recording.
class Histogram {
 public:
  static constexpr int kSubBits = 4;                      // 16 sub-buckets
  static constexpr int kSubCount = 1 << kSubBits;
  static constexpr int kMaxExp = 40;                      // tracks up to ~2^40
  static constexpr int kBucketCount =
      kSubCount + (kMaxExp - kSubBits) * kSubCount;

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t mean() const noexcept {
    auto n = count();
    return n == 0 ? 0 : sum() / n;
  }

  /// Value at percentile `p` in [0, 100]: the representative (midpoint)
  /// value of the bucket holding the rank-th sample.  0 when empty.
  std::uint64_t percentile(double p) const noexcept;

  static int bucket_of(std::uint64_t value) noexcept {
    if (value < kSubCount) return static_cast<int>(value);
    int msb = std::bit_width(value) - 1;
    if (msb >= kMaxExp) msb = kMaxExp - 1;  // clamp outliers into last decade
    auto sub = static_cast<int>((value >> (msb - kSubBits)) & (kSubCount - 1));
    return (msb - kSubBits + 1) * kSubCount + sub;
  }
  /// Midpoint of the value range bucket `index` covers.
  static std::uint64_t bucket_mid(int index) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind : std::uint8_t { counter, gauge, histogram };

/// One exported (path, value) pair — what StatsFs turns into a file.
struct ExportedValue {
  std::string path;  // e.g. "vfs/lookup_total", "vfs/op_ns_p99"
  std::string value;
};

/// Named metric storage.  Handles returned by counter()/gauge()/histogram()
/// stay valid (and stable in memory) for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create.  A name registered as one kind cannot be re-registered
  /// as another; the mismatched call returns nullptr.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Kind of a registered name, or nullopt.
  bool contains(std::string_view name) const;
  std::size_t size() const;

  /// Bumped on every registration; lets StatsFs cache its tree until the
  /// name set actually changes.
  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Flat export of every metric: counters and gauges one row each,
  /// histograms expanded to _count/_p50/_p90/_p99 rows.  Sorted by path.
  std::vector<ExportedValue> export_values() const;

  /// Export paths only (values are formatted on demand by value_of) —
  /// this is what StatsFs builds its directory tree from.
  std::vector<std::string> export_paths() const;

  /// Current formatted value of one exported path ("vfs/op_ns_p99"),
  /// or nullopt if no metric exports that path.
  std::optional<std::string> value_of(const std::string& path) const;

 private:
  struct Entry {
    MetricKind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };
  template <typename T>
  T* find_or_create(std::string_view name, MetricKind kind,
                    std::deque<T>& storage, T* Entry::*slot);
  static void export_entry(const std::string& name, const Entry& entry,
                           std::vector<ExportedValue>& out);

  mutable dbg::Mutex<dbg::Rank::obs_metrics> mu_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace yanc::obs
