#include "yanc/obs/trace_fs.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "yanc/util/strings.hpp"

namespace yanc::obs {

using vfs::Credentials;
using vfs::NodeId;

namespace {

/// Minimal JSON string escaper for component/name/note fields.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Parses a duration token: digits with an optional ns/us/ms/s suffix.
std::optional<std::uint64_t> parse_duration_ns(std::string_view text) {
  std::uint64_t scale = 1;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "ns") {
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    text.remove_suffix(2);
    scale = 1000;
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    text.remove_suffix(2);
    scale = 1000000;
  } else if (text.size() >= 1 && text.back() == 's') {
    text.remove_suffix(1);
    scale = 1000000000;
  }
  auto value = parse_u64(text);
  if (!value) return std::nullopt;
  return *value * scale;
}

/// One trace's events rendered as an indented span tree, oldest first.
/// Children may be *recorded* before their parent (a RAII parent span
/// closes after the stages nested in it), so the tree is rebuilt from the
/// linkage fields rather than ring order.
std::string render_trace(const std::vector<TraceEvent>& events,
                         std::uint64_t trace_id) {
  std::vector<const TraceEvent*> mine;
  std::uint64_t t0 = UINT64_MAX;
  for (const auto& e : events) {
    if (e.trace_id != trace_id) continue;
    mine.push_back(&e);
    std::uint64_t start = e.ts_ns - std::min(e.queue_ns, e.ts_ns);
    t0 = std::min(t0, start);
  }
  if (mine.empty()) return {};

  std::set<std::uint64_t> span_ids;
  for (const auto* e : mine) span_ids.insert(e->span_id);
  std::map<std::uint64_t, std::vector<const TraceEvent*>> children;
  std::vector<const TraceEvent*> roots;
  for (const auto* e : mine) {
    if (e->parent_span_id != 0 && span_ids.count(e->parent_span_id))
      children[e->parent_span_id].push_back(e);
    else
      roots.push_back(e);
  }
  auto by_start = [](const TraceEvent* a, const TraceEvent* b) {
    return a->ts_ns - std::min(a->queue_ns, a->ts_ns) <
           b->ts_ns - std::min(b->queue_ns, b->ts_ns);
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [id, kids] : children)
    std::sort(kids.begin(), kids.end(), by_start);

  std::string out = "trace " + std::to_string(trace_id) + ": " +
                    std::to_string(mine.size()) + " spans\n";
  // Iterative DFS; depth capped so a pathological parent cycle (ids
  // reused after a clear()) cannot recurse away the stack.
  struct Frame {
    const TraceEvent* e;
    std::size_t depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it)
    stack.push_back({*it, 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    out += std::string(2 * f.depth, ' ');
    out += f.e->component + "/" + f.e->name;
    out += " span=" + std::to_string(f.e->span_id);
    std::uint64_t start = f.e->ts_ns - std::min(f.e->queue_ns, f.e->ts_ns);
    out += " start=+" + std::to_string(start - t0) + "ns";
    out += " queue=" + std::to_string(f.e->queue_ns) + "ns";
    out += " dur=" + std::to_string(f.e->dur_ns) + "ns";
    if (!f.e->note.empty()) out += " note=" + f.e->note;
    out += '\n';
    if (f.depth >= 64) continue;
    auto kids = children.find(f.e->span_id);
    if (kids == children.end()) continue;
    for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it)
      stack.push_back({*it, f.depth + 1});
  }
  return out;
}

/// The whole ring as Chrome trace_event JSON (load in chrome://tracing or
/// Perfetto).  Each span is one complete ("X") event; ts/dur are in
/// microseconds per the format, args keep full-precision nanoseconds.
/// Traces map to tid rows so concurrent traces render as parallel tracks.
std::string render_chrome_json(const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, std::uint64_t> tids;
  for (const auto& e : events)
    tids.emplace(e.trace_id, tids.size() + 1);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ',';
    first = false;
    std::uint64_t start = e.ts_ns - std::min(e.queue_ns, e.ts_ns);
    out += "{\"ph\":\"X\",\"name\":\"" + json_escape(e.component) + "/" +
           json_escape(e.name) + "\"";
    out += ",\"cat\":\"" + json_escape(e.component) + "\"";
    out += ",\"pid\":1,\"tid\":" + std::to_string(tids[e.trace_id]);
    out += ",\"ts\":" + std::to_string(start / 1000) + "." +
           std::to_string(start % 1000);
    std::uint64_t total = e.queue_ns + e.dur_ns;
    out += ",\"dur\":" + std::to_string(total / 1000) + "." +
           std::to_string(total % 1000);
    out += ",\"args\":{\"trace_id\":" + std::to_string(e.trace_id) +
           ",\"span_id\":" + std::to_string(e.span_id) +
           ",\"parent_span_id\":" + std::to_string(e.parent_span_id) +
           ",\"queue_ns\":" + std::to_string(e.queue_ns) +
           ",\"service_ns\":" + std::to_string(e.dur_ns) +
           ",\"note\":\"" + json_escape(e.note) + "\"}}";
  }
  out += "]}\n";
  return out;
}

}  // namespace

TraceFs::TraceFs(Tracer* t) : tracer_(t ? t : &tracer()) {}

std::string TraceFs::content_of(NodeId node) const {
  switch (node) {
    case kCtl:
      // Reading ctl shows the accepted grammar (self-documenting knob).
      return "# start | stop | clear | sample_every=N | capacity=N |"
             " trigger=dur_ns>DUR | trigger=off\n";
    case kStatus: {
      std::string out;
      out += "enabled " + std::to_string(tracer_->enabled() ? 1 : 0) + "\n";
      out += "sample_every " + std::to_string(tracer_->sample_every()) + "\n";
      out += "trigger_ns " + std::to_string(tracer_->trigger_ns()) + "\n";
      out += "capacity " + std::to_string(tracer_->ring().capacity()) + "\n";
      out +=
          "events " + std::to_string(tracer_->ring().snapshot().size()) + "\n";
      out += "inflight " + std::to_string(tracer_->inflight()) + "\n";
      return out;
    }
    case kExport:
      return render_chrome_json(tracer_->ring().snapshot());
    default: {
      std::uint64_t trace_id = trace_for_node(node);
      if (trace_id == 0) return {};
      return render_trace(tracer_->ring().snapshot(), trace_id);
    }
  }
}

NodeId TraceFs::node_for_trace(std::uint64_t trace_id) {
  dbg::LockGuard lock(mu_);
  auto it = trace_nodes_.find(trace_id);
  if (it != trace_nodes_.end()) return it->second;
  NodeId node = next_dynamic_++;
  trace_nodes_.emplace(trace_id, node);
  node_traces_.emplace(node, trace_id);
  return node;
}

std::uint64_t TraceFs::trace_for_node(NodeId node) const {
  dbg::LockGuard lock(mu_);
  auto it = node_traces_.find(node);
  return it == node_traces_.end() ? 0 : it->second;
}

Result<NodeId> TraceFs::lookup(NodeId parent, const std::string& name) {
  if (parent == kRoot) {
    if (name == "ctl") return kCtl;
    if (name == "status") return kStatus;
    if (name == "export.json") return kExport;
    if (name == "by-id") return kByIdDir;
    return Errc::not_found;
  }
  if (parent == kByIdDir) {
    auto id = parse_u64(name);
    if (!id || *id == 0) return Errc::not_found;
    for (const auto& e : tracer_->ring().snapshot())
      if (e.trace_id == *id) return node_for_trace(*id);
    return Errc::not_found;
  }
  return is_fixed_file(parent) || trace_for_node(parent) ? Errc::not_dir
                                                         : Errc::not_found;
}

Result<vfs::Stat> TraceFs::getattr(NodeId node) {
  bool file = is_fixed_file(node) || trace_for_node(node) != 0;
  if (!is_dir(node) && !file) return Errc::not_found;
  vfs::Stat st;
  st.ino = node;
  st.type = is_dir(node) ? vfs::FileType::directory : vfs::FileType::regular;
  st.mode = is_dir(node) ? 0755 : (node == kCtl ? 0644 : 0444);
  st.nlink = 1;
  st.size = is_dir(node) ? 1 : content_of(node).size();
  st.version = 1;
  return st;
}

Result<std::vector<vfs::DirEntry>> TraceFs::readdir(NodeId dir) {
  std::vector<vfs::DirEntry> out;
  if (dir == kRoot) {
    out.push_back({"by-id", kByIdDir, vfs::FileType::directory});
    out.push_back({"ctl", kCtl, vfs::FileType::regular});
    out.push_back({"export.json", kExport, vfs::FileType::regular});
    out.push_back({"status", kStatus, vfs::FileType::regular});
    return out;
  }
  if (dir == kByIdDir) {
    std::set<std::uint64_t> ids;
    for (const auto& e : tracer_->ring().snapshot())
      if (e.trace_id != 0) ids.insert(e.trace_id);
    for (std::uint64_t id : ids)
      out.push_back({std::to_string(id), node_for_trace(id),
                     vfs::FileType::regular});
    return out;
  }
  if (is_fixed_file(dir) || trace_for_node(dir)) return Errc::not_dir;
  return Errc::not_found;
}

Result<std::string> TraceFs::readlink(NodeId) {
  return Errc::invalid_argument;
}

Result<std::string> TraceFs::read(NodeId node, std::uint64_t offset,
                                  std::uint64_t size, const Credentials&) {
  if (is_dir(node)) return Errc::is_dir;
  if (!is_fixed_file(node) && trace_for_node(node) == 0)
    return Errc::not_found;
  std::string content = content_of(node);
  if (offset >= content.size()) return std::string();
  return content.substr(offset, size);
}

Result<std::vector<std::uint8_t>> TraceFs::getxattr(NodeId,
                                                    const std::string&) {
  return Errc::not_found;
}

Result<std::vector<std::string>> TraceFs::listxattr(NodeId) {
  return std::vector<std::string>{};
}

Status TraceFs::access(NodeId node, std::uint8_t want, const Credentials&) {
  bool file = is_fixed_file(node) || trace_for_node(node) != 0;
  if (!is_dir(node) && !file) return Errc::not_found;
  if ((want & 2) && node != kCtl) return Errc::access_denied;
  return ok_status();
}

Status TraceFs::apply_ctl(std::string_view text) {
  // Parse every token before applying any (echo of FaultsFs: an invalid
  // line is EINVAL and changes nothing).
  struct Pending {
    bool start = false, stop = false, clear = false;
    std::optional<std::uint32_t> sample_every;
    std::optional<std::size_t> capacity;
    std::optional<std::uint64_t> trigger_ns;
  } pending;
  std::string normalized(text);
  for (char& c : normalized)
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  for (const auto& raw : split_nonempty(normalized, ' ')) {
    std::string_view token = trim(raw);
    if (token.empty()) continue;
    if (token == "start") {
      pending.start = true;
    } else if (token == "stop") {
      pending.stop = true;
    } else if (token == "clear") {
      pending.clear = true;
    } else if (token.rfind("sample_every=", 0) == 0) {
      auto n = parse_u64(token.substr(13));
      if (!n || *n == 0 || *n > UINT32_MAX)
        return make_error_code(Errc::invalid_argument);
      pending.sample_every = static_cast<std::uint32_t>(*n);
    } else if (token.rfind("capacity=", 0) == 0) {
      auto n = parse_u64(token.substr(9));
      if (!n || *n == 0 || *n > (1u << 24))
        return make_error_code(Errc::invalid_argument);
      pending.capacity = static_cast<std::size_t>(*n);
    } else if (token == "trigger=off") {
      pending.trigger_ns = 0;
    } else if (token.rfind("trigger=dur_ns>", 0) == 0) {
      auto ns = parse_duration_ns(token.substr(15));
      if (!ns) return make_error_code(Errc::invalid_argument);
      pending.trigger_ns = *ns;
    } else {
      return make_error_code(Errc::invalid_argument);
    }
  }
  if (pending.start && pending.stop)
    return make_error_code(Errc::invalid_argument);

  if (pending.clear) {
    tracer_->clear();
    dbg::LockGuard lock(mu_);
    trace_nodes_.clear();
    node_traces_.clear();
  }
  if (pending.capacity) tracer_->set_capacity(*pending.capacity);
  if (pending.sample_every) tracer_->set_sample_every(*pending.sample_every);
  if (pending.trigger_ns) tracer_->set_trigger_ns(*pending.trigger_ns);
  if (pending.stop) tracer_->stop();
  if (pending.start) tracer_->start();

  dbg::LockGuard lock(mu_);
  watches_.emit(kCtl, vfs::event::modified);
  watches_.emit(kStatus, vfs::event::modified);
  watches_.emit(kRoot, vfs::event::modified, "ctl");
  return ok_status();
}

Result<std::uint64_t> TraceFs::write(NodeId node, std::uint64_t offset,
                                     std::string_view data,
                                     const Credentials&) {
  if (is_dir(node)) return Errc::is_dir;
  if (!is_fixed_file(node) && trace_for_node(node) == 0)
    return Errc::not_found;
  if (node != kCtl) return Errc::access_denied;
  // Control writes are whole-value (echo > ctl); offset writes have no
  // sensible parse.
  if (offset != 0) return Errc::invalid_argument;
  if (auto ec = apply_ctl(data)) return ec;
  return static_cast<std::uint64_t>(data.size());
}

Status TraceFs::truncate(NodeId node, std::uint64_t size, const Credentials&) {
  if (is_dir(node)) return Errc::is_dir;
  if (!is_fixed_file(node) && trace_for_node(node) == 0)
    return Errc::not_found;
  if (node != kCtl) return Errc::access_denied;
  // O_TRUNC on open: accepted as a no-op so `echo start > ctl` works.
  return size == 0 ? ok_status() : make_error_code(Errc::invalid_argument);
}

Result<NodeId> TraceFs::mkdir(NodeId, const std::string&, std::uint32_t,
                              const Credentials&) {
  return Errc::not_permitted;
}
Result<NodeId> TraceFs::create(NodeId, const std::string&, std::uint32_t,
                               const Credentials&) {
  return Errc::not_permitted;
}
Result<NodeId> TraceFs::symlink(NodeId, const std::string&, const std::string&,
                                const Credentials&) {
  return Errc::not_permitted;
}
Status TraceFs::link(NodeId, NodeId, const std::string&, const Credentials&) {
  return Errc::not_permitted;
}
Status TraceFs::unlink(NodeId, const std::string&, const Credentials&) {
  return Errc::not_permitted;
}
Status TraceFs::rmdir(NodeId, const std::string&, const Credentials&) {
  return Errc::not_permitted;
}
Status TraceFs::rename(NodeId, const std::string&, NodeId, const std::string&,
                       const Credentials&) {
  return Errc::not_permitted;
}
Status TraceFs::chmod(NodeId, std::uint32_t, const Credentials&) {
  return Errc::not_permitted;
}
Status TraceFs::chown(NodeId, vfs::Uid, vfs::Gid, const Credentials&) {
  return Errc::not_permitted;
}
Status TraceFs::setxattr(NodeId, const std::string&, std::vector<std::uint8_t>,
                         const Credentials&) {
  return Errc::not_permitted;
}
Status TraceFs::removexattr(NodeId, const std::string&, const Credentials&) {
  return Errc::not_permitted;
}

Result<vfs::WatchRegistry::WatchId> TraceFs::watch(NodeId node,
                                                   std::uint32_t mask,
                                                   vfs::WatchQueuePtr queue) {
  if (!is_dir(node) && !is_fixed_file(node) && trace_for_node(node) == 0)
    return Errc::not_found;
  dbg::LockGuard lock(mu_);
  return watches_.add(node, mask, std::move(queue));
}

void TraceFs::unwatch(vfs::WatchRegistry::WatchId id) {
  dbg::LockGuard lock(mu_);
  watches_.remove(id);
}

Result<std::shared_ptr<TraceFs>> mount_trace_fs(vfs::Vfs& vfs,
                                                const std::string& mount_path) {
  tracer().bind_metrics(vfs.metrics());
  if (auto ec = vfs.mkdir_p(mount_path, 0755, Credentials::root())) return ec;
  auto fs = std::make_shared<TraceFs>();
  if (auto ec = vfs.mount(mount_path, fs)) return ec;
  return fs;
}

}  // namespace yanc::obs
