// Coreutils over the yanc file system (§5.4): "From simple one-liners to
// more elaborate shell scripts, these common utilities are tools that
// system administrators use and know."
//
// These are the in-process equivalents of ls/cat/tree/find/grep running
// against a Vfs — usable from examples, tests, and the yancsh example
// binary.  They take Credentials so permission checks behave exactly as
// they would for a real process.
#pragma once

#include <string>
#include <vector>

#include "yanc/vfs/vfs.hpp"

namespace yanc::shell {

/// `ls [-l] path` — names one per line; long format adds type/mode/size
/// ("drwxr-xr-x  3 sw1" style).
Result<std::string> ls(vfs::Vfs& vfs, const std::string& path,
                       bool long_format = false,
                       const vfs::Credentials& creds = {});

/// `cat path`.
Result<std::string> cat(vfs::Vfs& vfs, const std::string& path,
                        const vfs::Credentials& creds = {});

/// `echo text > path` (creates or truncates).
Status echo_to(vfs::Vfs& vfs, const std::string& path, std::string_view text,
               const vfs::Credentials& creds = {});

/// `tree path` — recursive pretty listing; symlinks shown as "name -> tgt".
Result<std::string> tree(vfs::Vfs& vfs, const std::string& path,
                         const vfs::Credentials& creds = {});

/// `find root -name glob` — paths of every entry whose *name* matches the
/// shell glob, depth-first, sorted.
Result<std::vector<std::string>> find_name(
    vfs::Vfs& vfs, const std::string& root, const std::string& name_glob,
    const vfs::Credentials& creds = {});

/// One grep hit: the file and the matching content.
struct GrepHit {
  std::string path;
  std::string line;
};

/// `grep pattern file...` over regular files; `pattern` is a substring.
Result<std::vector<GrepHit>> grep(vfs::Vfs& vfs,
                                  const std::vector<std::string>& files,
                                  const std::string& pattern,
                                  const vfs::Credentials& creds = {});

/// `grep -r pattern root` — recursive grep over a subtree.
Result<std::vector<GrepHit>> grep_recursive(
    vfs::Vfs& vfs, const std::string& root, const std::string& pattern,
    const vfs::Credentials& creds = {});

/// `cp [-r] from to` — copies a file (or, recursively, a directory tree,
/// including symlinks).  `to` names the destination itself, not a parent.
Status cp(vfs::Vfs& vfs, const std::string& from, const std::string& to,
          const vfs::Credentials& creds = {});

/// `mv from to` — rename(2) wrapper.
Status mv(vfs::Vfs& vfs, const std::string& from, const std::string& to,
          const vfs::Credentials& creds = {});

/// The paper's §5.4 example: "find /net -name tp.dst -exec grep 22" —
/// flows matching ssh traffic.  Returns the flow directories whose
/// `match.tp_dst` file contains `port`.
Result<std::vector<std::string>> flows_matching_port(
    vfs::Vfs& vfs, const std::string& net_root, std::uint16_t port,
    const vfs::Credentials& creds = {});

/// `trace WHAT` — causal-trace inspection over the /yanc/.trace subtree.
/// If WHAT names a captured trace id, prints that trace's span tree;
/// otherwise WHAT is a filter (a path, flow name, or dpid) and every
/// captured trace whose span tree mentions it is printed.  Fails with
/// not_found when nothing matches.
Result<std::string> trace_show(vfs::Vfs& vfs, const std::string& what,
                               const vfs::Credentials& creds = {},
                               const std::string& trace_root = "/yanc/.trace");

}  // namespace yanc::shell
