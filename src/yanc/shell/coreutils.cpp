#include "yanc/shell/coreutils.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "yanc/util/strings.hpp"

namespace yanc::shell {

using vfs::Credentials;
using vfs::Vfs;

namespace {

char type_char(vfs::FileType type) {
  switch (type) {
    case vfs::FileType::directory: return 'd';
    case vfs::FileType::symlink: return 'l';
    case vfs::FileType::regular: return '-';
  }
  return '?';
}

std::string mode_string(std::uint32_t mode) {
  std::string out = "---------";
  static const char* bits = "rwxrwxrwx";
  for (int i = 0; i < 9; ++i)
    if (mode & (1u << (8 - i))) out[static_cast<std::size_t>(i)] = bits[i];
  return out;
}

std::string join_path(const std::string& dir, const std::string& name) {
  return dir == "/" ? "/" + name : dir + "/" + name;
}

Status walk(Vfs& vfs, const std::string& path, const Credentials& creds,
            const std::function<void(const std::string&, const vfs::Stat&)>&
                visit) {
  auto st = vfs.lstat(path, creds);
  if (!st) return st.error();
  visit(path, *st);
  if (!st->is_dir()) return ok_status();
  auto entries = vfs.readdir(path, creds);
  if (!entries) return entries.error();
  for (const auto& e : *entries)
    if (auto ec = walk(vfs, join_path(path, e.name), creds, visit); ec)
      return ec;
  return ok_status();
}

}  // namespace

Result<std::string> ls(Vfs& vfs, const std::string& path, bool long_format,
                       const Credentials& creds) {
  auto st = vfs.stat(path, creds);
  if (!st) return st.error();
  std::ostringstream out;
  auto emit = [&](const std::string& name, const vfs::Stat& stat) {
    if (long_format) {
      out << type_char(stat.type) << mode_string(stat.mode) << ' '
          << stat.nlink << ' ' << stat.uid << ':' << stat.gid << ' '
          << stat.size << ' ';
    }
    out << name << '\n';
  };
  if (!st->is_dir()) {
    emit(path, *st);
    return out.str();
  }
  auto entries = vfs.readdir(path, creds);
  if (!entries) return entries.error();
  for (const auto& e : *entries) {
    auto child = vfs.lstat(join_path(path, e.name), creds);
    emit(e.name, child ? *child : vfs::Stat{});
  }
  return out.str();
}

Result<std::string> cat(Vfs& vfs, const std::string& path,
                        const Credentials& creds) {
  return vfs.read_file(path, creds);
}

Status echo_to(Vfs& vfs, const std::string& path, std::string_view text,
               const Credentials& creds) {
  return vfs.write_file(path, text, creds);
}

namespace {

Status tree_walk(Vfs& vfs, const std::string& path, const Credentials& creds,
                 const std::string& prefix, std::ostringstream& out) {
  auto entries = vfs.readdir(path, creds);
  if (!entries) return entries.error();
  for (std::size_t i = 0; i < entries->size(); ++i) {
    const auto& e = (*entries)[i];
    bool last = i + 1 == entries->size();
    out << prefix << (last ? "└── " : "├── ") << e.name;
    std::string child = join_path(path, e.name);
    auto st = vfs.lstat(child, creds);
    if (st && st->is_symlink()) {
      if (auto target = vfs.readlink(child, creds))
        out << " -> " << *target;
      out << '\n';
      continue;
    }
    out << '\n';
    if (st && st->is_dir()) {
      if (auto ec = tree_walk(vfs, child, creds,
                              prefix + (last ? "    " : "│   "), out);
          ec)
        return ec;
    }
  }
  return ok_status();
}

}  // namespace

Result<std::string> tree(Vfs& vfs, const std::string& path,
                         const Credentials& creds) {
  auto st = vfs.stat(path, creds);
  if (!st) return st.error();
  std::ostringstream out;
  out << path << '\n';
  if (st->is_dir())
    if (auto ec = tree_walk(vfs, path, creds, "", out); ec) return ec;
  return out.str();
}

Result<std::vector<std::string>> find_name(Vfs& vfs, const std::string& root,
                                           const std::string& name_glob,
                                           const Credentials& creds) {
  std::vector<std::string> hits;
  auto ec = walk(vfs, vfs::normalize_path(root), creds,
                 [&](const std::string& path, const vfs::Stat&) {
                   auto slash = path.rfind('/');
                   std::string name = path.substr(slash + 1);
                   if (glob_match(name_glob, name)) hits.push_back(path);
                 });
  if (ec) return ec;
  std::sort(hits.begin(), hits.end());
  return hits;
}

Result<std::vector<GrepHit>> grep(Vfs& vfs,
                                  const std::vector<std::string>& files,
                                  const std::string& pattern,
                                  const Credentials& creds) {
  std::vector<GrepHit> hits;
  for (const auto& file : files) {
    auto content = vfs.read_file(file, creds);
    if (!content) continue;  // like grep: skip unreadable
    for (const auto& line : split(*content, '\n')) {
      if (line.find(pattern) != std::string::npos)
        hits.push_back(GrepHit{file, line});
    }
  }
  return hits;
}

Result<std::vector<GrepHit>> grep_recursive(Vfs& vfs, const std::string& root,
                                            const std::string& pattern,
                                            const Credentials& creds) {
  std::vector<std::string> files;
  auto ec = walk(vfs, vfs::normalize_path(root), creds,
                 [&](const std::string& path, const vfs::Stat& st) {
                   if (st.is_file()) files.push_back(path);
                 });
  if (ec) return ec;
  return grep(vfs, files, pattern, creds);
}

Status cp(Vfs& vfs, const std::string& from, const std::string& to,
          const Credentials& creds) {
  auto st = vfs.lstat(from, creds);
  if (!st) return st.error();
  if (st->is_symlink()) {
    auto target = vfs.readlink(from, creds);
    if (!target) return target.error();
    return vfs.symlink(*target, to, creds);
  }
  if (st->is_file()) {
    auto data = vfs.read_file(from, creds);
    if (!data) return data.error();
    return vfs.write_file(to, *data, creds);
  }
  if (auto ec = vfs.mkdir(to, st->mode, creds);
      ec && ec != make_error_code(Errc::exists))
    return ec;
  auto entries = vfs.readdir(from, creds);
  if (!entries) return entries.error();
  for (const auto& e : *entries) {
    if (auto ec = cp(vfs, join_path(from, e.name), join_path(to, e.name),
                     creds);
        ec)
      return ec;
  }
  return ok_status();
}

Status mv(Vfs& vfs, const std::string& from, const std::string& to,
          const Credentials& creds) {
  return vfs.rename(from, to, creds);
}

Result<std::vector<std::string>> flows_matching_port(
    Vfs& vfs, const std::string& net_root, std::uint16_t port,
    const Credentials& creds) {
  // find <net_root> -name match.tp_dst -exec grep <port>
  auto files = find_name(vfs, net_root, "match.tp_dst", creds);
  if (!files) return files.error();
  auto hits = grep(vfs, *files, std::to_string(port), creds);
  if (!hits) return hits.error();
  std::vector<std::string> flow_dirs;
  for (const auto& hit : *hits) {
    auto slash = hit.path.rfind('/');
    flow_dirs.push_back(hit.path.substr(0, slash));
  }
  return flow_dirs;
}

Result<std::string> trace_show(Vfs& vfs, const std::string& what,
                               const Credentials& creds,
                               const std::string& trace_root) {
  const std::string by_id = trace_root + "/by-id";
  // A captured trace id resolves directly.
  if (auto exact = vfs.read_file(by_id + "/" + what, creds)) return *exact;
  // Otherwise treat `what` as a filter over every captured trace: a flow
  // path, a pkt_* dir, a dpid — anything a span tree mentions.
  auto ids = vfs.readdir(by_id, creds);
  if (!ids) return ids.error();
  std::string out;
  for (const auto& entry : *ids) {
    auto rendered = vfs.read_file(by_id + "/" + entry.name, creds);
    if (!rendered) continue;
    if (rendered->find(what) == std::string::npos) continue;
    if (!out.empty()) out += '\n';
    out += *rendered;
  }
  if (out.empty()) return Errc::not_found;
  return out;
}

}  // namespace yanc::shell
