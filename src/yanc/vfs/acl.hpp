// POSIX-style access control lists (paper §5.1).
//
// An Acl augments the owner/group/other mode bits with per-user and
// per-group entries plus a mask, following the POSIX.1e access-check
// algorithm.  ACLs are serialized into the node's extended attribute
// "system.posix_acl_access", exactly where Linux keeps them, so they
// replicate through the distributed FS like any other metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "yanc/util/result.hpp"
#include "yanc/vfs/types.hpp"

namespace yanc::vfs {

enum class AclTag : std::uint8_t {
  user_obj,   // the file owner ("user::")
  user,       // a named user ("user:alice:")
  group_obj,  // the owning group ("group::")
  group,      // a named group
  mask,       // upper bound for user/group/group_obj entries
  other,      // everyone else
};

struct AclEntry {
  AclTag tag = AclTag::other;
  std::uint32_t id = 0;  // uid or gid for named entries; unused otherwise
  std::uint8_t perms = 0;  // rwx bits, values 0..7

  bool operator==(const AclEntry&) const = default;
};

/// An access ACL.  A valid ACL has exactly one user_obj, group_obj and
/// other entry, at most one mask, and a mask is required when named
/// entries are present (mirrors acl_valid(3)).
class Acl {
 public:
  Acl() = default;
  explicit Acl(std::vector<AclEntry> entries) : entries_(std::move(entries)) {}

  /// Minimal ACL equivalent to plain mode bits.
  static Acl from_mode(std::uint32_t mode);

  /// Validates structure per acl_valid(3).
  [[nodiscard]] Status validate() const;

  const std::vector<AclEntry>& entries() const noexcept { return entries_; }
  void add(AclEntry e) { entries_.push_back(e); }

  /// POSIX.1e access check: returns true if `creds` is granted `want`
  /// (rwx bits) on a file owned by uid/gid.
  bool permits(const Credentials& creds, Uid owner, Gid group,
               std::uint8_t want) const;

  /// Compact binary encoding for xattr storage (versioned).
  std::vector<std::uint8_t> encode() const;
  static Result<Acl> decode(const std::vector<std::uint8_t>& data);

  /// Human-readable "user::rw-,user:1000:r--,..." form (getfacl-like).
  std::string to_text() const;
  static Result<Acl> parse_text(std::string_view text);

  bool operator==(const Acl&) const = default;

 private:
  std::vector<AclEntry> entries_;
};

/// Name of the xattr holding the access ACL.
inline constexpr const char* kAclXattr = "system.posix_acl_access";

}  // namespace yanc::vfs
